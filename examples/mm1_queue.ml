(* A bounded single-server queue (M/M/1/K) as a SAN: arrivals, service,
   blocking — with simulation estimates validated against the closed-form
   stationary distribution and the exact transient CTMC solution.

     dune exec examples/mm1_queue.exe *)

let lambda = 4.0 (* arrivals per hour *)
let mu = 5.0 (* services per hour *)
let k = 8 (* waiting room bound *)

let build () =
  let b = San.Model.Builder.create "mm1k" in
  let customers = San.Model.Builder.int_place b "customers" in
  let served = San.Model.Builder.int_place b "served" in
  let blocked = San.Model.Builder.int_place b "blocked" in
  San.Model.Builder.timed_exp b ~name:"arrive"
    ~rate:(fun _ -> lambda)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P customers ]
    (fun _ m ->
      if San.Marking.get m customers < k then San.Marking.add m customers 1
      else San.Marking.add m blocked 1);
  San.Model.Builder.timed_exp b ~name:"serve"
    ~rate:(fun _ -> mu)
    ~enabled:(fun m -> San.Marking.get m customers > 0)
    ~reads:[ San.Place.P customers ]
    (fun _ m ->
      San.Marking.add m customers (-1);
      San.Marking.add m served 1);
  (San.Model.Builder.build b, customers, served, blocked)

let () =
  let model, customers, served, blocked = build () in
  let horizon = 200.0 in
  let queue_len m = float_of_int (San.Marking.get m customers) in
  let rewards =
    [
      (* Warmed-up time average approximates the stationary mean. *)
      Sim.Reward.time_average ~name:"mean queue length (warm)" ~from_:50.0
        ~until:horizon queue_len;
      Sim.Reward.probability_in_interval ~name:"P(full) (warm)" ~from_:50.0
        ~until:horizon (fun m -> San.Marking.get m customers = k);
      Sim.Reward.final ~name:"throughput (jobs/h)" (fun m ->
          float_of_int (San.Marking.get m served) /. horizon);
      Sim.Reward.final ~name:"blocked (jobs/h)" (fun m ->
          float_of_int (San.Marking.get m blocked) /. horizon);
    ]
  in
  let spec = Sim.Runner.spec ~model ~horizon rewards in
  let results = Sim.Runner.run ~seed:7L ~reps:2000 spec in
  Format.printf "Simulation (2000 replications, horizon %.0fh):@." horizon;
  List.iter
    (fun (r : Sim.Runner.result) ->
      Format.printf "  %-26s %a@." r.name Stats.Ci.pp r.ci)
    results;

  (* Closed form: pi_i proportional to rho^i on 0..k. *)
  let rho = lambda /. mu in
  let raw = Array.init (k + 1) (fun i -> rho ** float_of_int i) in
  let z = Array.fold_left ( +. ) 0.0 raw in
  let pi = Array.map (fun x -> x /. z) raw in
  let mean_len =
    Array.to_list pi
    |> List.mapi (fun i p -> float_of_int i *. p)
    |> List.fold_left ( +. ) 0.0
  in
  Format.printf "@.Closed form:@.";
  Format.printf "  %-26s %.6f@." "mean queue length" mean_len;
  Format.printf "  %-26s %.6f@." "P(full)" pi.(k);
  Format.printf "  %-26s %.6f@." "throughput (jobs/h)"
    (lambda *. (1.0 -. pi.(k)));

  (* Exact transient comparison at a short horizon via uniformization.
     The counting places are unbounded over long runs, so explore a
     variant without them. *)
  let b = San.Model.Builder.create "mm1k_core" in
  let c2 = San.Model.Builder.int_place b "customers" in
  San.Model.Builder.timed_exp b ~name:"arrive"
    ~rate:(fun _ -> lambda)
    ~enabled:(fun m -> San.Marking.get m c2 < k)
    ~reads:[ San.Place.P c2 ]
    (fun _ m -> San.Marking.add m c2 1);
  San.Model.Builder.timed_exp b ~name:"serve"
    ~rate:(fun _ -> mu)
    ~enabled:(fun m -> San.Marking.get m c2 > 0)
    ~reads:[ San.Place.P c2 ]
    (fun _ m -> San.Marking.add m c2 (-1));
  let core = San.Model.Builder.build b in
  let chain = Ctmc.Explore.explore core in
  let exact_at_1 =
    Ctmc.Measure.instant chain ~at:1.0 (fun m ->
        float_of_int (San.Marking.get m c2))
  in
  let sim_spec =
    Sim.Runner.spec ~model:core ~horizon:1.0
      [
        Sim.Reward.instant ~name:"len@1h" ~at:1.0 (fun m ->
            float_of_int (San.Marking.get m c2));
      ]
  in
  let sim_at_1 = List.hd (Sim.Runner.run ~seed:9L ~reps:5000 sim_spec) in
  Format.printf "@.Transient check at t=1h: exact %.5f, simulated %a@."
    exact_at_1 Stats.Ci.pp sim_at_1.Sim.Runner.ci
