(* Tour of the analysis tooling on a custom model: the multi-pass model
   checker, batch-means steady-state estimation, and exact absorption
   analysis.

     dune exec examples/analysis_tools.exe

   The model is a small intrusion-response loop: a service alternates
   between clean and compromised; each compromise is either cleaned
   (repair) or, with small probability, escalates to a permanent breach
   (absorbing). *)

let build () =
  let b = San.Model.Builder.create "response_loop" in
  (* 0 = clean, 1 = compromised, 2 = breached (absorbing).  Keep the
     state space finite: no unbounded counters (the CTMC path explores
     every reachable marking). *)
  let state = San.Model.Builder.int_place b "state" in
  San.Model.Builder.timed_exp b ~name:"compromise"
    ~rate:(fun _ -> 0.5)
    ~enabled:(fun m -> San.Marking.get m state = 0)
    ~reads:[ San.Place.P state ]
    (fun _ m -> San.Marking.set m state 1);
  San.Model.Builder.timed_exp_cases b ~name:"respond"
    ~rate:(fun _ -> 2.0)
    ~enabled:(fun m -> San.Marking.get m state = 1)
    ~reads:[ San.Place.P state ]
    [
      (0.92, fun _ m -> San.Marking.set m state 0);
      (0.08, fun _ m -> San.Marking.set m state 2);
    ];
  (San.Model.Builder.build b, state)

let () =
  let model, state = build () in
  Format.printf "%a@.@." San.Model.pp_summary model;

  (* 1. Check: read sets, liveness, instantaneous hazards — the space is
     finite, so the walk is exhaustive and "never happens" findings are
     proofs. *)
  Format.printf "%a@." Analysis.Check.pp (Analysis.Check.run model);

  (* 2. Exact absorption analysis. *)
  let chain = Ctmc.Explore.explore model in
  Format.printf "@.Exact analysis (%d states):@." (Ctmc.Explore.n_states chain);
  Format.printf "  mean time to permanent breach: %.3f h@."
    (Ctmc.Absorb.mean_time_to_absorption chain);
  Format.printf "  P(breached by 24h):            %.4f@."
    (Ctmc.Measure.ever chain ~until:24.0 (fun m -> San.Marking.get m state = 2));

  (* Cross-check the mean time to absorption by simulation. *)
  let breached m = San.Marking.get m state = 2 in
  let spec =
    Sim.Runner.spec ~model ~horizon:1000.0 ~stop:breached
      [ Sim.Reward.first_passage ~name:"breach time" breached ]
  in
  let r = List.hd (Sim.Runner.run ~seed:11L ~reps:4000 spec) in
  Format.printf "  simulated breach time:         %a@." Stats.Ci.pp
    r.Sim.Runner.ci;

  (* 3. Batch-means steady state of the compromised fraction, on the
     repairable variant (no breach case). *)
  let b = San.Model.Builder.create "repair_only" in
  let st = San.Model.Builder.int_place b "state" in
  San.Model.Builder.timed_exp b ~name:"compromise"
    ~rate:(fun _ -> 0.5)
    ~enabled:(fun m -> San.Marking.get m st = 0)
    ~reads:[ San.Place.P st ]
    (fun _ m -> San.Marking.set m st 1);
  San.Model.Builder.timed_exp b ~name:"respond"
    ~rate:(fun _ -> 2.0)
    ~enabled:(fun m -> San.Marking.get m st = 1)
    ~reads:[ San.Place.P st ]
    (fun _ m -> San.Marking.set m st 0);
  let repairable = San.Model.Builder.build b in
  let result =
    Sim.Steady.estimate ~model:repairable
      ~f:(fun m -> if San.Marking.get m st = 1 then 1.0 else 0.0)
      ~warmup:20.0 ~batch_length:50.0 ~batches:40
      ~stream:(Prng.Stream.create ~seed:3L)
      ()
  in
  Format.printf
    "@.Batch means (40 x 50h): compromised fraction %a (exact %.4f)@."
    Stats.Ci.pp result.Sim.Steady.ci
    (0.5 /. (0.5 +. 2.0))
