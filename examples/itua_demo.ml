(* Tour of the ITUA intrusion-tolerant replication model: build the
   composed model, show its structure, estimate the paper's measures with
   confidence intervals, and compare the two exclusion policies on one
   configuration.

     dune exec examples/itua_demo.exe *)

let run_measures params label =
  let h = Itua.Model.build params in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
      [
        Itua.Measures.unavailability h ~until:10.0;
        Itua.Measures.unreliability h ~until:10.0;
        Itua.Measures.fraction_corrupt_in_excluded h;
        Itua.Measures.fraction_domains_excluded h ~at:10.0;
        Itua.Measures.replicas_running h ~at:10.0;
        Itua.Measures.load_per_host h ~at:10.0;
      ]
  in
  let results =
    Sim.Runner.run ~domains:(Sim.Runner.default_domains ()) ~seed:2003L
      ~reps:2000 spec
  in
  Format.printf "@.%s:@." label;
  List.iter
    (fun (r : Sim.Runner.result) ->
      Format.printf "  %-34s %a  (defined in %d/%d runs)@." r.name Stats.Ci.pp
        r.ci r.n_defined r.n_runs)
    results

let () =
  let params = Itua.Params.default in
  let h = Itua.Model.build params in
  Format.printf "%a@.@." Itua.Params.pp params;
  Format.printf "Composed model structure (paper Figure 2(a)):@.%s@."
    h.Itua.Model.structure;
  Format.printf "%a@." San.Model.pp_summary h.Itua.Model.model;

  run_measures params "Baseline (domain exclusion, first 10 hours)";
  run_measures
    { params with Itua.Params.policy = Itua.Params.Host_exclusion }
    "Host exclusion variant";
  run_measures
    {
      params with
      Itua.Params.policy = Itua.Params.Host_exclusion;
      corruption_multiplier = 5.0;
      rate_scale = 1.0;
      spread_rate_domain = 8.0;
      spread_effect_domain = 8.0;
    }
    "Host exclusion under fast within-domain attack spread (study 4.3 regime)";

  (* Export the structure of a small instance for GraphViz rendering. *)
  let small =
    Itua.Model.build
      {
        params with
        Itua.Params.num_domains = 2;
        hosts_per_domain = 1;
        num_apps = 1;
        num_reps = 2;
      }
  in
  let path = Filename.temp_file "itua_small" ".dot" in
  San.Dot.write_file path small.Itua.Model.model;
  Format.printf "@.DOT export of a minimal instance written to %s@." path
