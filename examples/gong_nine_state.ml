(* The Gong et al. nine-state model of an intrusion-tolerant system
   (DISCEX'01), cited by the ITUA paper as an early state-transition
   approach to intrusion-tolerance validation.  This example shows the
   modeling stack applied to a second system: the model is written as a
   SAN, solved exactly as a CTMC, and cross-checked by simulation.

     dune exec examples/gong_nine_state.exe

   States (encoded in one place):
     0 G   good
     1 V   vulnerable (penetration attempt in progress)
     2 A   active attack (exploitation began)
     3 MC  masked compromise (redundancy hides the damage)
     4 UC  undetected compromise
     5 TR  triage (attack detected, response being chosen)
     6 GD  graceful degradation
     7 FS  fail-secure operation
     8 F   failure
   Repairs return the system to G. Rates are illustrative (per hour). *)

let g, v, a, mc, uc, tr, gd, fs, f = (0, 1, 2, 3, 4, 5, 6, 7, 8)

let transitions =
  [
    (* from, to, rate, label *)
    (g, v, 0.30, "probe_finds_vulnerability");
    (v, g, 0.50, "vulnerability_patched");
    (v, a, 0.40, "exploitation_starts");
    (a, mc, 0.25, "redundancy_masks");
    (a, uc, 0.10, "compromise_undetected");
    (a, tr, 0.60, "attack_detected");
    (mc, g, 0.80, "masked_repair");
    (uc, f, 0.30, "undetected_failure");
    (uc, tr, 0.15, "late_detection");
    (tr, gd, 0.35, "degrade_gracefully");
    (tr, fs, 0.35, "fail_secure");
    (tr, g, 0.20, "full_recovery");
    (gd, g, 0.50, "restore_from_degraded");
    (fs, g, 0.40, "restore_from_fail_secure");
    (f, g, 0.125, "manual_repair");
  ]

let build () =
  let b = San.Model.Builder.create "gong_nine_state" in
  let state = San.Model.Builder.int_place b ~init:g "state" in
  List.iter
    (fun (src, dst, rate, label) ->
      San.Model.Builder.timed_exp b ~name:label
        ~rate:(fun _ -> rate)
        ~enabled:(fun m -> San.Marking.get m state = src)
        ~reads:[ San.Place.P state ]
        (fun _ m -> San.Marking.set m state dst))
    transitions;
  (San.Model.Builder.build b, state)

let () =
  let model, state = build () in
  Format.printf "%a@.@." San.Model.pp_summary model;
  let chain = Ctmc.Explore.explore model in
  Format.printf "CTMC: %d states (all nine reachable)@.@."
    (Ctmc.Explore.n_states chain);

  (* Long-run behaviour. *)
  let pi_of s =
    Ctmc.Measure.steady_average chain (fun m ->
        if San.Marking.get m state = s then 1.0 else 0.0)
  in
  let names = [ "G"; "V"; "A"; "MC"; "UC"; "TR"; "GD"; "FS"; "F" ] in
  Format.printf "Steady state distribution:@.";
  List.iteri (fun s name -> Format.printf "  %-3s %.5f@." name (pi_of s)) names;

  (* The measures Gong et al. discuss: availability (not failed or
     fail-secure) and integrity (not operating compromised). *)
  let available m =
    let s = San.Marking.get m state in
    s <> f && s <> fs
  in
  let compromised m =
    let s = San.Marking.get m state in
    s = uc || s = f
  in
  Format.printf "@.Long-run availability:            %.5f@."
    (Ctmc.Measure.steady_average chain (fun m ->
         if available m then 1.0 else 0.0));
  Format.printf "Long-run integrity:               %.5f@."
    (Ctmc.Measure.steady_average chain (fun m ->
         if compromised m then 0.0 else 1.0));
  let by t =
    Ctmc.Measure.ever chain ~until:t (fun m -> San.Marking.get m state = f)
  in
  Format.printf "P(security failure by 24h):       %.5f@." (by 24.0);
  Format.printf "P(security failure by 168h):      %.5f@." (by 168.0);

  (* Simulation cross-check on the 24h first-passage probability. *)
  let spec =
    Sim.Runner.spec ~model ~horizon:24.0
      [
        Sim.Reward.ever ~name:"failed by 24h" ~until:24.0 (fun m ->
            San.Marking.get m state = f);
        Sim.Reward.probability_in_interval ~name:"available [0,24h]"
          ~until:24.0 available;
      ]
  in
  let results = Sim.Runner.run ~seed:4L ~reps:20_000 spec in
  Format.printf "@.Simulation cross-check (20000 replications):@.";
  List.iter
    (fun (r : Sim.Runner.result) ->
      Format.printf "  %-22s %a@." r.name Stats.Ci.pp r.ci)
    results
