(* Compile-checked mirrors of every ```ocaml snippet in doc/*.md.

   tools/check_docs.ml verifies (whitespace-normalized, `...` lines in a
   snippet acting as wildcards) that each documented snippet appears
   contiguously in this file, and this file is compiled by every build —
   so a doc snippet cannot silently drift away from the real API. When
   you edit a snippet in doc/, edit its mirror here (and vice versa).

   Nothing here runs: the functions exist to be type-checked. Warnings
   are disabled in dune (unused values, statement-discarded results) so
   the snippets can stay exactly as the docs render them. *)

(* --- doc/MODELING.md --- *)

let _modeling_pair () =
  let b = San.Model.Builder.create "pair" in
  let working = San.Model.Builder.int_place b ~init:2 "working" in
  San.Model.Builder.timed_exp b ~name:"fail"
    ~rate:(fun m -> 0.1 *. float_of_int (San.Marking.get m working))
    ~enabled:(fun m -> San.Marking.get m working > 0)
    ~reads:[ San.Place.P working ]
    (fun _ctx m -> San.Marking.add m working (-1));
  let enabled m = San.Marking.get m working > 0 in
  let reads = [ San.Place.P working ] in
  let convict m = San.Marking.add m working (-1) in
  let miss _m = () in
  San.Model.Builder.timed_exp_cases b ~name:"detect"
    ~rate:(fun _ -> 4.0) ~enabled ~reads
    [ (0.8, fun _ m -> convict m); (0.2, fun _ m -> miss m) ];
  let model = San.Model.Builder.build b in
  let rewards =
    let up m = San.Marking.get m working > 0 in
    [ Sim.Reward.probability_in_interval ~name:"availability" ~until:24.0 up;
      Sim.Reward.ever ~name:"P(outage)" ~until:24.0 (fun m -> not (up m));
      Sim.Reward.instant ~name:"E[working]" ~at:24.0
        (fun m -> float_of_int (San.Marking.get m working)) ]
  in
  let spec = Sim.Runner.spec ~model ~horizon:24.0 rewards in
  let results = Sim.Runner.run ~seed:42L ~reps:10_000 spec in
  ignore results;
  model

let _modeling_ctmc model =
  let reward_fn _ = 1.0 in
  let pred _ = false in
  let chain = Ctmc.Explore.explore model in
  Ctmc.Measure.interval_average chain ~until:24.0 reward_fn;
  Ctmc.Measure.ever chain ~until:24.0 pred;          (* exact unreliability *)
  Ctmc.Absorb.mean_time_to_absorption chain;
  ()

let _modeling_compose () =
  let b = San.Model.Builder.create "system_of_nodes" in
  let root = Compose.Ctx.root b "system" in
  let total = Compose.Ctx.int_place root "total" in        (* shared *)
  let nodes =
    Compose.replicate root "node" ~n:10 (fun ctx i ->
        let local = Compose.Ctx.int_place ctx "tokens" in  (* per copy *)
        ignore (total, local, i))
  in
  ignore nodes

let _modeling_check model =
  assert (not (Analysis.Check.has_errors (Analysis.Check.run model)));
  ()

let _modeling_metrics ~model ~spec () =
  let metrics = Sim.Metrics.create ~model in
  let _results = Sim.Runner.run ~metrics ~seed:1L ~reps:1000 spec in
  Format.printf "%a" (Sim.Metrics.pp_activities ~limit:30) metrics

let _modeling_trace ~model () =
  let observer = Sim.Trace.observer ~show_marking:true ~model Format.std_formatter in
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~model
      ~config:(Sim.Executor.config ~horizon:10.0 ())
      ~stream:(Prng.Stream.create ~seed:7L) ~observer ()
  in
  ()

(* --- doc/OBSERVABILITY.md --- *)

let _observability_metrics ~model ~spec () =
  let metrics = Sim.Metrics.create ~model in
  let results = Sim.Runner.run ~metrics ~seed:42L ~reps:10_000 spec in
  Format.printf "%a" Sim.Metrics.pp_summary metrics;
  Format.printf "%a" (Sim.Metrics.pp_activities ~limit:25) metrics

let _observability_csv metrics =
  Report.write_csv_rows "telemetry.csv" ~header:Sim.Metrics.csv_header
    (Sim.Metrics.csv_rows metrics)

(* The progress record as OBSERVABILITY.md renders it; the real one is
   Sim.Runner.progress, whose fields this must keep matching. *)
type progress = {
  completed : int;            (* replications finished so far *)
  target : int;               (* reps (run) or max_reps (run_until) *)
  elapsed : float;            (* seconds since the call started *)
  eta : float option;         (* extrapolated seconds remaining *)
  worst_rel_hw : float;       (* the widest interval's badness *)
  cis : (string * Stats.Ci.t) list;  (* current CI per measure *)
}

let _observability_progress_matches_runner (p : Sim.Runner.progress) : progress
    =
  {
    completed = p.Sim.Runner.completed;
    target = p.Sim.Runner.target;
    elapsed = p.Sim.Runner.elapsed;
    eta = p.Sim.Runner.eta;
    worst_rel_hw = p.Sim.Runner.worst_rel_hw;
    cis = p.Sim.Runner.cis;
  }

let _observability_trace ~model ~config ~stream () =
  let observer = Sim.Trace.observer ~show_marking:true ~model Format.std_formatter in
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~model ~config ~stream ~observer ()
  in
  ()

let _observability_registry () =
  let reg = Obs.Registry.create () in
  let engine = Obs.Registry.scope reg "engine" in
  let events = Obs.Registry.counter engine "events" in
  Obs.Registry.add events 1;
  let depth = Obs.Registry.histogram engine "heap_depth" in
  Obs.Registry.observe depth 12.0;
  Obs.Registry.write "metrics.json" reg

let _observability_snapshot ~model ~spec () =
  let metrics = Sim.Metrics.create ~model in
  let profile = Obs.Profile.create () in
  let convergence = Obs.Convergence.create () in
  let results =
    Sim.Runner.run ~metrics ~profile ~convergence ~seed:42L ~reps:10_000 spec
  in
  let reg = Obs.Registry.create () in
  Sim.Metrics.export metrics ~into:reg;
  Obs.Profile.export profile ~into:reg;
  Obs.Registry.write
    ~extra:[ ("convergence", Obs.Convergence.to_json convergence) ]
    "metrics.json" reg

let _observability_convergence_csv convergence =
  Obs.Convergence.write_csv "convergence.csv" convergence

let _observability_forensics ~seed ~spec () =
  let h = Itua.Model.build Itua.Params.default in
  let sink =
    Sim.Trajectory.sink ~k:20
      ~predicate:(Itua.Forensics.failed_now h)   (* latched: "ever held" *)
      ~model:h.Itua.Model.model ()
  in
  let results = Sim.Runner.run ~seed ~reps:20_000 ~record:sink spec in
  let failures = Sim.Trajectory.matching sink in
  let stats = Sim.Trajectory.occupancy sink in
  ignore (results, failures, stats)

(* --- doc/ANALYSIS.md --- *)

let _analysis_gate () =
  let h = Itua.Model.build Itua.Params.default in
  let model = h.Itua.Model.model in
  let composition = h.Itua.Model.composition in
  let report = Analysis.Check.run ~composition model in
  Format.printf "%a@." Analysis.Check.pp report;
  if Analysis.Check.has_errors report then exit 1

let _analysis_certificate () =
  let h = Itua.Model.build Itua.Params.default in
  let report =
    Analysis.Check.run
      ~composition:h.Itua.Model.composition
      ~laws:(Itua.Invariant.conservation_laws h)
      h.Itua.Model.model
  in
  Format.printf "%a@." Analysis.Structure.pp report.Analysis.Check.structure;
  exit (Analysis.Check.exit_code report)

let _analysis_lumping ~model ~root () =
  let groups = Analysis.Symmetry.detect model (Compose.info root) in
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Symmetry.canon groups) model
  in
  Format.printf "%d -> %d states@." (Ctmc.Explore.n_states full)
    (Ctmc.Explore.n_states lumped)

let _analysis_orbit model root =
  let rep = Analysis.Orbit.analyse model (Compose.info root) in
  List.iter
    (fun d -> Format.printf "%a@." Analysis.Diagnostic.pp d)
    (Analysis.Orbit.diagnostics rep);
  (* Orbit-restricted quotient, with every merge audited against the
     one-step rates of the states it collapses. *)
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  (* A019 probe: would the legacy whole-family sort be sound here? *)
  let groups = Analysis.Symmetry.detect model (Compose.info root) in
  let a019 = Analysis.Orbit.check_canon rep (Analysis.Symmetry.canon groups) in
  ignore (lumped, a019)

let _analysis_guard ~config ~stream ~observer () =
  let h = Itua.Model.build Itua.Params.default in
  let guard =
    Analysis.Structure.guard
      ~laws:(Itua.Invariant.conservation_laws h)
      h.Itua.Model.model
  in
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~model:h.Itua.Model.model ~config ~stream ~observer
      ~check_invariants:guard ()
  in
  ()

let _analysis_ir_migration b =
  let working = San.Model.Builder.int_place b ~init:2 "working" in
  (* before: opaque closure — analysis can only observe it *)
  San.Model.Builder.timed_exp b ~name:"fail"
    ~rate:(fun _ -> 0.1)
    ~enabled:(fun m -> San.Marking.get m working > 0)
    ~reads:[ San.Place.P working ]
    (fun _ctx m -> San.Marking.add m working (-1));
  (* after: declarative IR — guard and delta read off the syntax tree *)
  San.Model.Builder.timed_exp_ir b ~name:"fail"
    ~rate:(fun _ -> 0.1)
    ~guard:San.Effect.(Cmp (Mark working, Gt, Int 0))
    ~reads:[ San.Place.P working ]
    San.Effect.(Ops [ Inc (working, Int (-1)) ])

let _analysis_ir_checked working =
  San.Effect.Checked
    {
      ir = San.Effect.(Ops [ Inc (working, Int (-1)) ]);
      reference =
        { oname = "fail/legacy";
          run = (fun _ctx m -> San.Marking.add m working (-1)) };
    }

(* --- doc/FORMAT.md --- *)

let _format_save ~params () =
  let h = Itua.Model.build params in
  let doc =
    Serial.to_json
      ~composition:h.Itua.Model.composition
      ~annotations:[ ("params", Itua.Params.to_json params) ]
      h.Itua.Model.model
  in
  Serial.save "itua.model.json" doc

let _format_load () =
  match Serial.load "itua.model.json" with
  | Error e -> prerr_endline e; exit 2
  | Ok l ->
      let model = l.Serial.model in
      ignore model

let _format_mini () =
  let b = San.Model.Builder.create "two_state" in
  let up = San.Model.Builder.int_place b ~init:1 "up" in
  San.Model.Builder.timed_exp_rate_ir b ~name:"fail"
    ~rate:(San.Effect.RConst 0.2)
    ~guard:San.Effect.(Cmp (Mark up, Eq, Int 1))
    ~reads:[ San.Place.P up ]
    San.Effect.(Ops [ Set (up, Int 0) ]);
  San.Model.Builder.timed_exp_rate_ir b ~name:"repair"
    ~rate:(San.Effect.RConst 1.0)
    ~guard:San.Effect.(Cmp (Mark up, Eq, Int 0))
    ~reads:[ San.Place.P up ]
    San.Effect.(Ops [ Set (up, Int 1) ]);
  print_string (Serial.emit (San.Model.Builder.build b))

let _format_diff ~doc_a ~doc_b () =
  let entries = Serial.Diff.diff doc_a doc_b in
  Format.printf "%a" Serial.Diff.pp entries

(* --- doc/RARE_EVENTS.md --- *)

let _rare_library params =
  let h = Itua.Model.build params in
  let importance = Itua.Rare.unreliability ~app:0 h ~levels:6 in
  let r =
    Sim.Splitting.run ~model:h.Itua.Model.model
      ~config:(Sim.Executor.config ~horizon:5.0 ())
      ~importance ~levels:6 ~clones:4 ~initial:2000 ~seed:1L ()
  in
  Format.printf "%a@." Stats.Ci.pp r.Sim.Splitting.estimate.Stats.Splitting.ci

let _rare_two_state_importance up =
  let importance m = if San.Marking.get m up = 1 then 0 else 1
  in
  importance
