(* Quickstart: model a repairable redundant pair as a stochastic activity
   network, estimate its availability by simulation, and check the answer
   against the exact CTMC solution.

     dune exec examples/quickstart.exe

   The system has two components; each fails at rate 0.1/h and a single
   repair crew fixes one failed component at a time at rate 1.0/h. Service
   is up while at least one component works. *)

let () =
  (* 1. Build the SAN: one int place, two timed activities. *)
  let b = San.Model.Builder.create "repairable_pair" in
  let working = San.Model.Builder.int_place b ~init:2 "working" in
  San.Model.Builder.timed_exp b ~name:"fail"
    ~rate:(fun m -> 0.1 *. float_of_int (San.Marking.get m working))
    ~enabled:(fun m -> San.Marking.get m working > 0)
    ~reads:[ San.Place.P working ]
    (fun _ m -> San.Marking.add m working (-1));
  San.Model.Builder.timed_exp b ~name:"repair"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m working < 2)
    ~reads:[ San.Place.P working ]
    (fun _ m -> San.Marking.add m working 1);
  let model = San.Model.Builder.build b in
  Format.printf "%a@.@." San.Model.pp_summary model;

  (* 2. Define measures as reward variables. *)
  let up m = San.Marking.get m working > 0 in
  let rewards =
    [
      Sim.Reward.probability_in_interval ~name:"availability [0,24h]"
        ~until:24.0 up;
      Sim.Reward.ever ~name:"P(total outage by 24h)" ~until:24.0 (fun m ->
          not (up m));
      Sim.Reward.instant ~name:"E[working at 24h]" ~at:24.0 (fun m ->
          float_of_int (San.Marking.get m working));
    ]
  in

  (* 3. Estimate by simulation: 10_000 independent replications. *)
  let spec = Sim.Runner.spec ~model ~horizon:24.0 rewards in
  let results = Sim.Runner.run ~seed:42L ~reps:10_000 spec in
  Format.printf "Simulation (10000 replications):@.";
  List.iter
    (fun (r : Sim.Runner.result) ->
      Format.printf "  %-28s %a@." r.name Stats.Ci.pp r.ci)
    results;

  (* 4. Solve the same model analytically and compare. *)
  let chain = Ctmc.Explore.explore model in
  Format.printf "@.Exact CTMC solution (%d states):@."
    (Ctmc.Explore.n_states chain);
  let avail =
    Ctmc.Measure.interval_average chain ~until:24.0 (fun m ->
        if up m then 1.0 else 0.0)
  in
  let outage = Ctmc.Measure.ever chain ~until:24.0 (fun m -> not (up m)) in
  let expected =
    Ctmc.Measure.instant chain ~at:24.0 (fun m ->
        float_of_int (San.Marking.get m working))
  in
  Format.printf "  %-28s %.6f@." "availability [0,24h]" avail;
  Format.printf "  %-28s %.6f@." "P(total outage by 24h)" outage;
  Format.printf "  %-28s %.6f@." "E[working at 24h]" expected;
  Format.printf "@.The confidence intervals above should cover these values.@."
