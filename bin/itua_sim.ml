(* itua-sim: command-line interface to the ITUA reproduction.

   Subcommands:
     run        simulate one configuration and print the measures
     rare       sharp tail estimates by RESTART/importance splitting
     explain    render forensics chains from a --record-failures file
     study      regenerate the paper's figures (tables + CSV)
     structure  show the composed-model structure, optionally DOT export
     check      run every model-checking pass
     mtta       exact CTMC analysis of the minimal configuration
     save       export the model as a versioned itua-model/1 JSON file
     load       validate a model file and report on it
     diff       structural diff between two model files

   run/rare/check/mtta accept --model FILE to operate on a saved model
   instead of building one in-process; see doc/FORMAT.md. *)

open Cmdliner

(* --- shared parameter flags --- *)

let domains_arg =
  Arg.(value & opt int 10 & info [ "domains" ] ~docv:"N"
         ~doc:"Number of security domains.")

let hosts_arg =
  Arg.(value & opt int 3 & info [ "hosts-per-domain" ] ~docv:"N"
         ~doc:"Hosts in each security domain.")

let apps_arg =
  Arg.(value & opt int 4 & info [ "apps" ] ~docv:"N"
         ~doc:"Number of replicated applications.")

let reps_per_app_arg =
  Arg.(value & opt int 7 & info [ "replicas" ] ~docv:"N"
         ~doc:"Replicas per application.")

let policy_arg =
  let policy_conv =
    Arg.enum
      [ ("domain", Itua.Params.Domain_exclusion);
        ("host", Itua.Params.Host_exclusion) ]
  in
  Arg.(value & opt policy_conv Itua.Params.Domain_exclusion
       & info [ "policy" ] ~docv:"domain|host"
           ~doc:"Exclusion policy on detection of a corruption.")

let multiplier_arg =
  Arg.(value & opt float 2.0 & info [ "multiplier" ] ~docv:"M"
         ~doc:"Vulnerability multiplier for replicas/managers on corrupt \
               hosts.")

let spread_arg =
  Arg.(value & opt float 1.0 & info [ "spread" ] ~docv:"RATE"
         ~doc:"Within-domain attack spread rate (and spread effect).")

let scale_arg =
  Arg.(value & opt float 0.4 & info [ "rate-scale" ] ~docv:"S"
         ~doc:"Calibration factor on the derived per-entity rates; 1.0 is \
               the literal reading of the paper's cumulative rates.")

let horizon_arg =
  Arg.(value & opt float 10.0 & info [ "horizon" ] ~docv:"HOURS"
         ~doc:"Length of the observed interval.")

let n_reps_arg =
  Arg.(value & opt int 2000 & info [ "reps" ] ~docv:"N"
         ~doc:"Independent simulation replications.")

let seed_arg =
  Arg.(value & opt int64 20030622L & info [ "seed" ] ~docv:"SEED"
         ~doc:"Random seed; replication i always uses substream i.")

let cores_arg =
  Arg.(value & opt int (Sim.Runner.default_domains ())
       & info [ "cores" ] ~docv:"N"
           ~doc:"OCaml domains used to parallelize replications.")

let params_of domains hosts apps replicas policy multiplier spread scale =
  let p =
    {
      Itua.Params.default with
      Itua.Params.num_domains = domains;
      hosts_per_domain = hosts;
      num_apps = apps;
      num_reps = replicas;
      policy;
      corruption_multiplier = multiplier;
      spread_rate_domain = spread;
      spread_effect_domain = spread;
      rate_scale = scale;
    }
  in
  match Itua.Params.validate p with
  | Ok () -> p
  | Error msg ->
      Format.eprintf "invalid parameters: %s@." msg;
      exit 2

(* --- model files (save / load / diff / --model) --- *)

let model_arg =
  Arg.(value & opt (some file) None & info [ "model" ] ~docv:"FILE"
         ~doc:"Operate on the itua-model/1 file $(docv) (written by \
               $(b,itua-sim save)) instead of building the model \
               in-process. The file must carry the \"params\" annotation; \
               the topology and rate flags are ignored in its favor.")

(* Load a model file, recover its parameter block from the "params"
   annotation, and rebind the ITUA handles by place-name lookup — the
   reloaded model then flows through the executor, the measures, the
   checker, and the splitting estimator exactly like a built one. *)
let handles_of_file path =
  let ( let* ) = Result.bind in
  let* l = Serial.load path in
  let* composition =
    match l.Serial.composition with
    | Some c -> Ok c
    | None -> Error (path ^ ": file embeds no composition tree")
  in
  let* params_json =
    match List.assoc_opt "params" l.Serial.annotations with
    | Some j -> Ok j
    | None -> Error (path ^ ": file carries no \"params\" annotation")
  in
  let* p =
    Result.map_error (fun e -> path ^ ": " ^ e)
      (Itua.Params.of_json params_json)
  in
  match Itua.Model.rebind p ~model:l.Serial.model ~composition with
  | h -> Ok (p, h)
  | exception Invalid_argument msg -> Error (path ^ ": " ^ msg)

(* --- run --- *)

let telemetry_arg =
  Arg.(value & flag & info [ "telemetry" ]
         ~doc:"Collect engine telemetry during the run and print a summary \
               (events/sec, heap and stabilization statistics) plus a \
               per-activity firing-count table afterwards.")

let telemetry_csv_arg =
  Arg.(value & opt (some string) None & info [ "telemetry-csv" ] ~docv:"FILE"
         ~doc:"Write the full per-activity telemetry table to $(docv) as \
               CSV (requires $(b,--telemetry)).")

let record_arg =
  Arg.(value & opt (some string) None
       & info [ "record-failures" ] ~docv:"FILE"
           ~doc:"Record every replication and retain the trajectories of up \
                 to K failing runs (some application improper — the \
                 unreliability event) and K non-failing runs, written to \
                 $(docv) as JSONL together with per-place occupancy \
                 statistics. Render with $(b,itua-sim explain).")

let record_max_arg =
  Arg.(value & opt (some int) None & info [ "record-max" ] ~docv:"K"
         ~doc:"Retain at most $(docv) trajectories per class (default 10; \
               requires $(b,--record-failures)).")

let dot_heat_arg =
  Arg.(value & opt (some string) None & info [ "dot-heat" ] ~docv:"FILE"
         ~doc:"After the run, write a GraphViz rendering of the model to \
               $(docv) with activities weighted by their firing counts \
               (hot activities thick, never-fired activities grey).")

let progress_arg =
  Arg.(value & flag & info [ "progress" ]
         ~doc:"Report live progress on stderr while replications run: \
               completed count, elapsed time, ETA, and the widest current \
               confidence interval.")

let precision_arg =
  Arg.(value & opt (some float) None & info [ "rel-precision" ] ~docv:"P"
         ~doc:"Run replications in batches until every measure's relative \
               confidence-interval half-width is at most $(docv) (Möbius \
               sequential stopping), instead of a fixed replication count; \
               --reps then bounds the total.")

(* --- observability sinks (run / rare / mtta) --- *)

let metrics_out_arg =
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE"
         ~doc:"Write an itua-metrics/1 JSON snapshot (engine counters, \
               phase self-times, GC statistics, convergence trajectories) \
               to $(docv) after the run. Enables phase profiling.")

let metrics_interval_arg =
  Arg.(value & opt (some float) None
       & info [ "metrics-interval" ] ~docv:"SECS"
           ~doc:"Rewrite the $(b,--metrics-out) snapshot roughly every \
                 $(docv) seconds while replications run, so a long run can \
                 be watched live (requires $(b,--metrics-out)).")

let trace_spans_arg =
  Arg.(value & opt (some string) None & info [ "trace-spans" ] ~docv:"FILE"
         ~doc:"Record every profiled phase interval and write Chrome \
               trace-event JSON lines to $(docv) (open in Perfetto or \
               chrome://tracing).")

let convergence_csv_arg =
  Arg.(value & opt (some string) None
       & info [ "convergence-csv" ] ~docv:"FILE"
           ~doc:"Write the estimator-convergence trajectory (measure, n, \
                 value, CI half-width per chunk) to $(docv) as CSV.")

(* One snapshot: export the engine sinks into a fresh registry and write
   it with the convergence block appended. Export is re-runnable, so the
   interval flusher calls this repeatedly on the live sinks. *)
let write_snapshot path ~metrics ~profile ~convergence =
  let reg = Obs.Registry.create () in
  Option.iter (fun m -> Sim.Metrics.export m ~into:reg) metrics;
  Option.iter (fun p -> Obs.Profile.export p ~into:reg) profile;
  let extra =
    match convergence with
    | Some conv when not (Obs.Convergence.is_empty conv) ->
        [ ("convergence", Obs.Convergence.to_json conv) ]
    | Some _ | None -> []
  in
  Obs.Registry.write ~extra path reg

(* One-line stderr progress display, overwritten in place. *)
let render_progress (p : Sim.Runner.progress) =
  let eta =
    match p.Sim.Runner.eta with
    | Some s when Float.is_finite s ->
        Printf.sprintf "  ETA %.0fs" (Float.max 0.0 s)
    | Some _ | None -> ""
  in
  let worst =
    if Float.is_finite p.Sim.Runner.worst_rel_hw then
      Printf.sprintf "  worst CI half-width %.3g (rel.)"
        p.Sim.Runner.worst_rel_hw
    else ""
  in
  Printf.eprintf "\r%6d/%d reps  %6.1fs elapsed%s%s   %!"
    p.Sim.Runner.completed p.Sim.Runner.target p.Sim.Runner.elapsed eta worst

let finish_progress () = Printf.eprintf "\n%!"

let policy_string = function
  | Itua.Params.Domain_exclusion -> "domain"
  | Itua.Params.Host_exclusion -> "host"

let run_cmd =
  let run domains hosts apps replicas policy multiplier spread scale model
      horizon reps seed cores telemetry telemetry_csv progress rel_precision
      record_failures record_max dot_heat metrics_out metrics_interval
      trace_spans convergence_csv =
    let ( let* ) = Result.bind in
    let check cond msg = if cond then Ok () else Error (`Msg msg) in
    let* () = check (cores >= 1) "--cores must be >= 1" in
    let* () =
      check
        (match rel_precision with Some p -> p > 0.0 | None -> true)
        "--rel-precision must be > 0"
    in
    let* () =
      check
        (telemetry || telemetry_csv = None)
        "--telemetry-csv requires --telemetry"
    in
    let* () =
      check
        (metrics_interval = None || metrics_out <> None)
        "--metrics-interval requires --metrics-out"
    in
    let* () =
      check
        (match metrics_interval with Some s -> s > 0.0 | None -> true)
        "--metrics-interval must be > 0"
    in
    let* () =
      check
        (record_max = None || record_failures <> None)
        "--record-max requires --record-failures"
    in
    let* () =
      check
        (match record_max with Some k -> k > 0 | None -> true)
        "--record-max must be >= 1"
    in
    let* p, h =
      match model with
      | None ->
          let p =
            params_of domains hosts apps replicas policy multiplier spread
              scale
          in
          Ok (p, Itua.Model.build p)
      | Some path ->
          Result.map_error (fun e -> `Msg e) (handles_of_file path)
    in
    Format.printf "%a@.@." Itua.Params.pp p;
    let spec =
      Sim.Runner.spec ~model:h.Itua.Model.model ~horizon
        [
          Itua.Measures.unavailability h ~until:horizon;
          Itua.Measures.unreliability h ~until:horizon;
          Itua.Measures.fraction_corrupt_in_excluded h;
          Itua.Measures.fraction_domains_excluded h ~at:horizon;
          Itua.Measures.replicas_running h ~at:horizon;
          Itua.Measures.load_per_host h ~at:horizon;
        ]
    in
    let metrics =
      if telemetry || dot_heat <> None || metrics_out <> None then
        Some (Sim.Metrics.create ~model:h.Itua.Model.model)
      else None
    in
    let profile =
      if metrics_out <> None || trace_spans <> None then
        Some (Obs.Profile.create ~spans:(trace_spans <> None) ())
      else None
    in
    let convergence =
      if convergence_csv <> None || metrics_out <> None then
        Some (Obs.Convergence.create ())
      else None
    in
    let record =
      match record_failures with
      | None -> None
      | Some _ ->
          Some
            (Sim.Trajectory.sink
               ~k:(Option.value record_max ~default:10)
               ~predicate:(Itua.Forensics.failed_now h)
               ~model:h.Itua.Model.model ())
    in
    (* The interval flusher rides on the progress callback: consume has
       already merged every per-domain sink when it fires, so the
       snapshot it writes is the current merged state. *)
    let flusher =
      match (metrics_out, metrics_interval) with
      | Some path, Some interval ->
          let last = ref (Obs.Clock.now_ns ()) in
          Some
            (fun (_ : Sim.Runner.progress) ->
              if Obs.Clock.seconds_since !last >= interval then begin
                last := Obs.Clock.now_ns ();
                write_snapshot path ~metrics ~profile ~convergence
              end)
      | _ -> None
    in
    let progress_cb =
      match ((if progress then Some render_progress else None), flusher) with
      | None, None -> None
      | (Some _ as f), None -> f
      | None, (Some _ as g) -> g
      | Some f, Some g ->
          Some
            (fun p ->
              f p;
              g p)
    in
    let results =
      match rel_precision with
      | None ->
          Sim.Runner.run ~domains:cores ?metrics ?profile ?convergence
            ?progress:progress_cb ?record ~seed ~reps spec
      | Some prec ->
          Sim.Runner.run_until ~domains:cores ?metrics ?profile ?convergence
            ?progress:progress_cb ?record ~batch:(Int.min reps 500)
            ~max_reps:reps ~rel_precision:prec ~seed spec
    in
    if progress then finish_progress ();
    let n_runs = (List.hd results).Sim.Runner.n_runs in
    (match rel_precision with
    | None ->
        Format.printf "Measures over [0, %g] hours (%d replications):@."
          horizon reps
    | Some prec ->
        Format.printf
          "Measures over [0, %g] hours (%d replications, sequential stopping \
           at %g relative precision):@."
          horizon n_runs prec);
    List.iter
      (fun (r : Sim.Runner.result) ->
        Format.printf "  %-34s %a  (defined %d/%d)@." r.name Stats.Ci.pp r.ci
          r.n_defined r.n_runs)
      results;
    (if telemetry then
       match metrics with
       | None -> ()
       | Some m ->
           Format.printf "@.Engine telemetry:@.%a" Sim.Metrics.pp_summary m;
           Format.printf "@.%a" (Sim.Metrics.pp_activities ~limit:25) m;
           (match telemetry_csv with
           | None -> ()
           | Some path ->
               Report.write_csv_rows path ~header:Sim.Metrics.csv_header
                 (Sim.Metrics.csv_rows m);
               Format.printf "  [telemetry csv: %s]@." path));
    (match (dot_heat, metrics) with
    | Some path, Some m ->
        let firings =
          Array.to_list
            (Array.map2
               (fun n c -> (n, c))
               m.Sim.Metrics.names m.Sim.Metrics.firings)
        in
        San.Dot.write_file ~firings path h.Itua.Model.model;
        Format.printf "@.[dot heat graph: %s]@." path
    | _ -> ());
    (match (record_failures, record) with
    | Some path, Some sink ->
        let module T = Sim.Trajectory in
        let module J = Report.Json in
        let occupancy =
          List.filter (fun (s : T.place_stats) -> s.hit_runs > 0)
            (T.occupancy sink)
        in
        let header =
          J.Obj
            [
              ("schema", J.Str "itua-trajectories/1");
              ("seed", J.Str (Int64.to_string seed));
              ("reps", J.int (T.runs sink));
              ("matched_runs", J.int (T.matched_runs sink));
              ("record_max", J.int (Option.value record_max ~default:10));
              ("horizon", J.Num horizon);
              ( "params",
                J.Obj
                  [
                    ("num_domains", J.int p.Itua.Params.num_domains);
                    ("hosts_per_domain", J.int p.Itua.Params.hosts_per_domain);
                    ("num_apps", J.int p.Itua.Params.num_apps);
                    ("num_reps", J.int p.Itua.Params.num_reps);
                    ("policy", J.Str (policy_string p.Itua.Params.policy));
                    ( "corruption_multiplier",
                      J.Num p.Itua.Params.corruption_multiplier );
                    ("spread", J.Num p.Itua.Params.spread_rate_domain);
                    ("rate_scale", J.Num p.Itua.Params.rate_scale);
                  ] );
              ("occupancy", T.occupancy_to_json occupancy);
            ]
        in
        Report.write_jsonl path
          (header :: List.map T.to_json (T.retained sink));
        Format.printf
          "@.[trajectories: %s — retained %d failing + %d other; %d of %d \
           runs hit the failure predicate]@."
          path
          (List.length (T.matching sink))
          (List.length (T.non_matching sink))
          (T.matched_runs sink) (T.runs sink)
    | _ -> ());
    (match metrics_out with
    | None -> ()
    | Some path ->
        write_snapshot path ~metrics ~profile ~convergence;
        Format.printf "@.[metrics snapshot: %s]@." path);
    (match (trace_spans, profile) with
    | Some path, Some prof ->
        Obs.Profile.write_trace path prof;
        Format.printf "[trace spans: %s]@." path
    | _ -> ());
    (match (convergence_csv, convergence) with
    | Some path, Some conv ->
        Obs.Convergence.write_csv path conv;
        Format.printf "[convergence csv: %s]@." path
    | _ -> ());
    (match (telemetry, profile) with
    | true, Some prof -> Format.printf "@.Phase profile:@.%a" Obs.Profile.pp prof
    | _ -> ());
    Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate one ITUA configuration")
    Term.(
      term_result
        (const run $ domains_arg $ hosts_arg $ apps_arg $ reps_per_app_arg
        $ policy_arg $ multiplier_arg $ spread_arg $ scale_arg $ model_arg
        $ horizon_arg $ n_reps_arg $ seed_arg $ cores_arg $ telemetry_arg
        $ telemetry_csv_arg $ progress_arg $ precision_arg $ record_arg
        $ record_max_arg $ dot_heat_arg $ metrics_out_arg
        $ metrics_interval_arg $ trace_spans_arg $ convergence_csv_arg))

(* --- rare --- *)

let rare_cmd =
  let levels_arg =
    Arg.(value & opt int Itua.Rare.default_levels
         & info [ "levels" ] ~docv:"L"
             ~doc:"Importance levels between the initial marking and the \
                   failure event; more levels mean easier per-stage \
                   crossings but more stages.")
  in
  let clones_arg =
    Arg.(value & opt int 4 & info [ "clones" ] ~docv:"C"
           ~doc:"Clones launched per level crossing. Aim for C ≈ 1/p̂ of a \
                 typical stage; much larger values make the trial \
                 population explode.")
  in
  let initial_arg =
    Arg.(value & opt int 2000 & info [ "initial" ] ~docv:"N"
           ~doc:"Replications launched at level 0.")
  in
  let measure_arg =
    Arg.(value
         & opt (enum
             [ ("unreliability", Itua.Study.Unreliability);
               ("unavailability", Itua.Study.Unavailability) ])
             Itua.Study.Unreliability
         & info [ "measure" ] ~docv:"unreliability|unavailability"
             ~doc:"Failure event to estimate the tail probability of: ever \
                   improper, or ever improper-or-starved.")
  in
  let app_arg =
    Arg.(value & opt int 0 & info [ "app" ] ~docv:"A"
           ~doc:"Application whose failure is targeted. By exchangeability \
                 over applications the result matches the study panels' \
                 per-app average.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable estimate (stage counts, CI, \
                 work) to $(docv).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Write the per-stage table (level, trials, hits, ratio) to \
                 $(docv) as CSV.")
  in
  let run domains hosts apps replicas policy multiplier spread scale model
      horizon seed cores levels clones initial measure app json csv
      metrics_out convergence_csv =
    let ( let* ) = Result.bind in
    let check cond msg = if cond then Ok () else Error (`Msg msg) in
    let* () = check (cores >= 1) "--cores must be >= 1" in
    let* () = check (levels >= 1) "--levels must be >= 1" in
    let* () = check (clones >= 1) "--clones must be >= 1" in
    let* () = check (initial >= 2) "--initial must be >= 2" in
    let* p, handles =
      match model with
      | None ->
          Ok
            ( params_of domains hosts apps replicas policy multiplier spread
                scale,
              None )
      | Some path ->
          Result.map_error
            (fun e -> `Msg e)
            (Result.map (fun (p, h) -> (p, Some h)) (handles_of_file path))
    in
    let* () =
      check
        (app >= 0 && app < p.Itua.Params.num_apps)
        "--app must name an application"
    in
    Format.printf "%a@.@." Itua.Params.pp p;
    let config = { Itua.Study.reps = initial; seed; domains = cores } in
    let r =
      try
        Ok
          (Itua.Study.rare_point ~config ~levels ~clones ~initial ~measure
             ~app ?handles ~params:p ~until:horizon ())
      with Invalid_argument msg -> Error (`Msg msg)
    in
    let* r = r in
    let est = r.Sim.Splitting.estimate in
    let measure_name =
      match measure with
      | Itua.Study.Unreliability -> "improper"
      | Itua.Study.Unavailability -> "improper or starved"
    in
    Format.printf
      "Splitting estimate of P(app %d ever %s in [0, %g]) — %d levels, %d \
       clones per crossing:@."
      app measure_name horizon levels clones;
    Format.printf "  %-12s %8s %8s %8s@." "stage" "trials" "hits" "ratio";
    Array.iteri
      (fun k (s : Stats.Splitting.stage) ->
        Format.printf "  %2d -> %-6d %8d %8d %8.4f@." k (k + 1) s.trials
          s.hits
          (float_of_int s.hits /. float_of_int s.trials))
      est.Stats.Splitting.stages;
    Format.printf "  estimate: %a@." Stats.Ci.pp est.Stats.Splitting.ci;
    Format.printf "  work: %d activity firings over %d trials@."
      r.Sim.Splitting.total_events r.Sim.Splitting.total_trials;
    (match csv with
    | None -> ()
    | Some path ->
        Report.write_csv_rows path
          ~header:[ "level"; "trials"; "hits"; "ratio" ]
          (Array.to_list
             (Array.mapi
                (fun k (s : Stats.Splitting.stage) ->
                  [
                    string_of_int (k + 1);
                    string_of_int s.trials;
                    string_of_int s.hits;
                    Printf.sprintf "%.6f"
                      (float_of_int s.hits /. float_of_int s.trials);
                  ])
                est.Stats.Splitting.stages));
        Format.printf "  [stage csv: %s]@." path);
    (match json with
    | None -> ()
    | Some path ->
        let module J = Report.Json in
        let stages =
          J.Arr
            (Array.to_list
               (Array.mapi
                  (fun k (s : Stats.Splitting.stage) ->
                    J.Obj
                      [
                        ("level", J.int (k + 1));
                        ("trials", J.int s.trials);
                        ("hits", J.int s.hits);
                      ])
                  est.Stats.Splitting.stages))
        in
        Report.write_jsonl path
          [
            J.Obj
              [
                ("schema", J.Str "itua-rare/1");
                ("measure", J.Str measure_name);
                ("app", J.int app);
                ("horizon", J.Num horizon);
                ("seed", J.Str (Int64.to_string seed));
                ("levels", J.int levels);
                ("clones", J.int clones);
                ("initial", J.int initial);
                ( "params",
                  J.Obj
                    [
                      ("num_domains", J.int p.Itua.Params.num_domains);
                      ( "hosts_per_domain",
                        J.int p.Itua.Params.hosts_per_domain );
                      ("num_apps", J.int p.Itua.Params.num_apps);
                      ("num_reps", J.int p.Itua.Params.num_reps);
                      ("policy", J.Str (policy_string p.Itua.Params.policy));
                      ( "corruption_multiplier",
                        J.Num p.Itua.Params.corruption_multiplier );
                      ("spread", J.Num p.Itua.Params.spread_rate_domain);
                      ("rate_scale", J.Num p.Itua.Params.rate_scale);
                    ] );
                ("stages", stages);
                ("probability", J.Num est.Stats.Splitting.probability);
                ( "ci_half_width",
                  J.Num est.Stats.Splitting.ci.Stats.Ci.half_width );
                ("confidence", J.Num est.Stats.Splitting.ci.Stats.Ci.confidence);
                ("rel_variance", J.Num est.Stats.Splitting.rel_variance);
                ("total_trials", J.int r.Sim.Splitting.total_trials);
                ("total_events", J.int r.Sim.Splitting.total_events);
              ];
          ];
        Format.printf "  [json: %s]@." path);
    (match (metrics_out, convergence_csv) with
    | None, None -> ()
    | _ ->
        let conv = Obs.Convergence.create () in
        let reg = Obs.Registry.create () in
        Sim.Splitting.export ~convergence:conv r ~into:reg;
        (match metrics_out with
        | None -> ()
        | Some path ->
            Obs.Registry.write
              ~extra:[ ("convergence", Obs.Convergence.to_json conv) ]
              path reg;
            Format.printf "  [metrics snapshot: %s]@." path);
        match convergence_csv with
        | None -> ()
        | Some path ->
            Obs.Convergence.write_csv path conv;
            Format.printf "  [convergence csv: %s]@." path);
    Ok ()
  in
  Cmd.v
    (Cmd.info "rare"
       ~doc:"Estimate a failure tail probability sharply by \
             RESTART/importance splitting (see doc/RARE_EVENTS.md)")
    Term.(
      term_result
        (const run $ domains_arg $ hosts_arg $ apps_arg $ reps_per_app_arg
        $ policy_arg $ multiplier_arg $ spread_arg $ scale_arg $ model_arg
        $ horizon_arg $ seed_arg $ cores_arg $ levels_arg $ clones_arg
        $ initial_arg $ measure_arg $ app_arg $ json_arg $ csv_arg
        $ metrics_out_arg $ convergence_csv_arg))

(* --- explain --- *)

let explain_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE.jsonl"
             ~doc:"Trajectory file written by $(b,run --record-failures).")
  in
  let limit_arg =
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N"
           ~doc:"Print at most $(docv) chains per class.")
  in
  let occ_limit_arg =
    Arg.(value & opt int 30 & info [ "occupancy-rows" ] ~docv:"N"
           ~doc:"Rows of the first-hit/occupancy table.")
  in
  let run file limit occ_limit =
    let ( let* ) = Result.bind in
    let module T = Sim.Trajectory in
    let module J = Report.Json in
    let* lines =
      Result.map_error (fun e -> `Msg e) (Report.read_jsonl file)
    in
    let* header, body =
      match lines with
      | [] -> Error (`Msg (file ^ ": empty file"))
      | first :: rest -> (
          match J.member "schema" first with
          | Some (J.Str "itua-trajectories/1") -> Ok (Some first, rest)
          | Some (J.Str s) ->
              Error (`Msg (Printf.sprintf "%s: unknown schema %S" file s))
          | Some _ | None ->
              (* headerless file: every line is a trajectory *)
              Ok (None, lines))
    in
    let* trajectories =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | j :: rest -> (
            match T.of_json j with
            | Ok t -> go (t :: acc) rest
            | Error e -> Error (`Msg (Printf.sprintf "%s: %s" file e)))
      in
      go [] body
    in
    let chains = List.map Itua.Forensics.chain_of_trajectory trajectories in
    let failing, other =
      List.partition (fun (c : Itua.Forensics.chain) -> c.matched) chains
    in
    let print_class label cs =
      if cs <> [] then begin
        Format.printf "@.%s (%d):@." label (List.length cs);
        List.iteri
          (fun i c ->
            if i < limit then Format.printf "  %a@." Itua.Forensics.pp_chain c)
          cs;
        if List.length cs > limit then
          Format.printf "  … %d more (raise --limit)@." (List.length cs - limit)
      end
    in
    print_class "Failing runs" failing;
    print_class "Non-failing runs" other;
    Format.printf "@.%a@." Itua.Forensics.pp_summary
      (Itua.Forensics.summarize chains);
    (match header with
    | None -> Ok ()
    | Some h ->
        (match (J.member "reps" h, J.member "matched_runs" h) with
        | Some (J.Num reps), Some (J.Num matched) ->
            Format.printf
              "recorded from %.0f replications, %.0f hit the failure \
               predicate@."
              reps matched
        | _ -> ());
        (match J.member "occupancy" h with
        | None -> Ok ()
        | Some occ_json ->
            let* occupancy =
              Result.map_error (fun e -> `Msg (file ^ ": " ^ e))
                (T.occupancy_of_json occ_json)
            in
            (* Places that were zero after setup and became non-zero later
               are the event outcomes (intrusions, corruptions,
               exclusions); order by how often they were hit. *)
            let eventful =
              List.filter
                (fun (s : T.place_stats) ->
                  s.hit_runs > 0 && s.mean_first_hit > 0.0)
                occupancy
            in
            let sorted =
              List.sort
                (fun (a : T.place_stats) (b : T.place_stats) ->
                  match compare b.hit_runs a.hit_runs with
                  | 0 -> compare a.place b.place
                  | c -> c)
                eventful
            in
            Format.printf
              "@.First-hit / occupancy (places that became non-zero during \
               runs):@.";
            Format.printf "  %-52s %9s %7s %8s %14s@." "place" "hit-runs"
              "max" "mean" "mean 1st hit";
            List.iteri
              (fun i (s : T.place_stats) ->
                if i < occ_limit then
                  Format.printf "  %-52s %9d %7g %8.4f %13.2fh@." s.place
                    s.hit_runs s.max_tokens s.mean_tokens s.mean_first_hit)
              sorted;
            if List.length sorted > occ_limit then
              Format.printf "  … %d more (raise --occupancy-rows)@."
                (List.length sorted - occ_limit);
            Ok ()))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Render forensics chains from a recorded trajectory file")
    Term.(term_result (const run $ file_arg $ limit_arg $ occ_limit_arg))

(* --- study --- *)

let study_cmd =
  let figure_arg =
    Arg.(required & pos 0 (some (enum
      [ ("fig3", `Fig3); ("fig4", `Fig4); ("fig5", `Fig5); ("all", `All) ]))
      None
      & info [] ~docv:"fig3|fig4|fig5|all")
  in
  let csv_dir_arg =
    Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR"
           ~doc:"Also write one CSV per panel into $(docv).")
  in
  let run figure reps seed cores csv_dir =
    let config = { Itua.Study.reps; seed; domains = cores } in
    let panels =
      match figure with
      | `Fig3 -> Itua.Study.fig3 ~config ()
      | `Fig4 -> Itua.Study.fig4 ~config ()
      | `Fig5 -> Itua.Study.fig5 ~config ()
      | `All -> Itua.Study.all ~config ()
    in
    List.iter
      (fun (id, table) ->
        Format.printf "@.%a" Report.pp_text table;
        match csv_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let path = Filename.concat dir (id ^ ".csv") in
            Report.write_csv path table;
            Format.printf "  [csv: %s]@." path)
      panels;
    Format.printf "@.Shape checks against the paper:@.";
    List.iter
      (fun (label, ok) ->
        Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") label)
      (Itua.Study.shape_checks panels)
  in
  Cmd.v
    (Cmd.info "study" ~doc:"Regenerate the paper's design studies (Section 4)")
    Term.(const run $ figure_arg $ n_reps_arg $ seed_arg $ cores_arg
          $ csv_dir_arg)

(* --- check --- *)

let check_json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Write the machine-readable report to $(docv) (one JSON \
               object per line).")

let check_invariants_arg =
  Arg.(value & flag & info [ "invariants" ]
         ~doc:"Print the structural certificate: incidence modes, \
               P/T-semiflows, declared conservation-law verdicts, and \
               place bounds.")

let check_strict_arg =
  Arg.(value & flag & info [ "strict" ]
         ~doc:"Exit nonzero on warnings too, not just errors.")

let check_ir_dump_arg =
  Arg.(value & flag & info [ "ir-dump" ]
         ~doc:"Print the compiled effect IR: per-activity guard reads, \
               static read/write sets, and the exact per-case delta \
               rows the incidence analysis is built from. With \
               $(b,--json), the dump is embedded in the report under \
               the $(b,ir_dump) key.")

let check_symmetry_arg =
  Arg.(value & flag & info [ "symmetry" ]
         ~doc:"Run the orbit pass (partition refinement over the effect \
               IR): report the automorphism orbits of every replicate \
               family with generator witnesses (A017), name the \
               splitting element of any broken symmetry (A018), and \
               embed the orbit report under the $(b,symmetry) key of \
               the $(b,--json) document.")

let check_run domains hosts apps replicas policy multiplier
    spread scale model invariants strict ir_dump symmetry json =
  let h =
    match model with
    | None ->
        Itua.Model.build
          (params_of domains hosts apps replicas policy multiplier spread
             scale)
    | Some path -> (
        match handles_of_file path with
        | Ok (_, h) -> h
        | Error e ->
            Format.eprintf "%s@." e;
            exit 2)
  in
  let report =
    Analysis.Check.run ~composition:h.Itua.Model.composition
      ~laws:(Itua.Invariant.conservation_laws h)
      h.Itua.Model.model
  in
  (* The orbit pass merges into the main report BEFORE printing, so its
     A017/A018 diagnostics appear in the tally and drive the exit code
     like any other pass. *)
  let orbits =
    if symmetry then
      Some (Analysis.Orbit.analyse h.Itua.Model.model h.Itua.Model.composition)
    else None
  in
  let report =
    match orbits with
    | None -> report
    | Some rep ->
        {
          report with
          Analysis.Check.diagnostics =
            List.sort Analysis.Diagnostic.compare
              (report.Analysis.Check.diagnostics
              @ Analysis.Orbit.diagnostics rep);
        }
  in
  Format.printf "%a" Analysis.Check.pp report;
  (match orbits with
  | Some rep -> Format.printf "@.%s@." (Analysis.Orbit.describe rep)
  | None -> ());
  if invariants then
    Format.printf "@.%a" Analysis.Structure.pp
      report.Analysis.Check.structure;
  let dump =
    if ir_dump then Some (Analysis.Ir_dump.dump h.Itua.Model.model) else None
  in
  (match dump with
  | Some d -> Format.printf "@.%a" Analysis.Ir_dump.pp d
  | None -> ());
  (match json with
  | None -> ()
  | Some path ->
      let extra =
        (match orbits with
        | Some rep -> [ ("symmetry", Analysis.Orbit.to_json rep) ]
        | None -> [])
        @
        match dump with
        | Some d -> [ ("ir_dump", Analysis.Ir_dump.to_json d) ]
        | None -> []
      in
      let obj =
        match Analysis.Check.to_json report with
        | Report.Json.Obj fields -> Report.Json.Obj (fields @ extra)
        | j -> j
      in
      Report.write_jsonl path [ obj ];
      Format.printf "JSON report written to %s@." path);
  exit (Analysis.Check.exit_code ~strict report)

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check the model: undeclared reads and writes, negative \
             markings, dead activities and places, instantaneous loops and \
             ties, unused shared places, unbounded places, dead effects, \
             and declared-invariant violations. Exits nonzero if any \
             error-level diagnostic is reported ($(b,--strict) promotes \
             warnings).")
    Term.(
      const check_run $ domains_arg $ hosts_arg $ apps_arg
      $ reps_per_app_arg $ policy_arg $ multiplier_arg $ spread_arg
      $ scale_arg $ model_arg $ check_invariants_arg $ check_strict_arg
      $ check_ir_dump_arg $ check_symmetry_arg $ check_json_arg)

(* --- mtta (exact, tiny configurations) --- *)

let mtta_lump_arg =
  Arg.(value
       & opt (enum [ ("auto", `Auto); ("off", `Off); ("full", `Full) ]) `Off
       & info [ "lump" ] ~docv:"MODE"
           ~doc:"State-space lumping before the exact solve. $(b,off) \
                 (default) explores the flat chain. $(b,auto) quotients \
                 by the automorphism orbits the $(b,check --symmetry) \
                 pass certifies — sound for heterogeneous fleets, with \
                 the exploration audit cross-checking every merge \
                 (raises on an unsound canon). $(b,full) uses the \
                 whole-family canonical sort, which assumes every \
                 replicate family is fully exchangeable.")

let mtta_cmd =
  let run multiplier scale model lump metrics_out =
    (* Only forced-choice configurations are analytically explorable. *)
    let h =
      match model with
      | None ->
          Itua.Model.build
            (params_of 1 1 1 1 Itua.Params.Domain_exclusion multiplier 1.0
               scale)
      | Some path -> (
          match handles_of_file path with
          | Ok (_, h) -> h
          | Error e ->
              Format.eprintf "%s@." e;
              exit 2)
    in
    let canon, audit =
      match lump with
      | `Off -> (None, false)
      | `Auto ->
          let rep =
            Analysis.Orbit.analyse h.Itua.Model.model
              h.Itua.Model.composition
          in
          Format.printf "%s@." (Analysis.Orbit.describe rep);
          (Some (Analysis.Orbit.canon rep), true)
      | `Full ->
          let groups =
            Analysis.Symmetry.detect h.Itua.Model.model
              h.Itua.Model.composition
          in
          (Some (Analysis.Symmetry.canon groups), false)
    in
    let obs = Option.map (fun _ -> Obs.Registry.create ()) metrics_out in
    let profile = Option.map (fun _ -> Obs.Profile.create ()) metrics_out in
    Format.printf
      "Exact CTMC analysis of the 1-domain/1-host/1-app/1-replica system@.";
    (match Ctmc.Explore.explore ?canon ~audit ?obs ?profile h.Itua.Model.model
     with
    | c ->
        Format.printf "  states: %d@." (Ctmc.Explore.n_states c);
        Format.printf "  mean time to full degradation: %.4f hours@."
          (Ctmc.Absorb.mean_time_to_absorption c);
        List.iter
          (fun t ->
            Format.printf "  unreliability [0,%g]: %.6f@." t
              (Ctmc.Measure.ever c ~until:t (fun m ->
                   Itua.Model.improper h 0 m)))
          [ 5.0; 10.0; 24.0 ];
        (match (metrics_out, obs) with
        | Some path, Some reg ->
            Option.iter (fun pr -> Obs.Profile.export pr ~into:reg) profile;
            Obs.Registry.write path reg;
            Format.printf "  [metrics snapshot: %s]@." path
        | _ -> ())
    | exception Ctmc.Explore.Non_markovian msg ->
        Format.eprintf "model is not Markovian: %s@." msg;
        exit 1
    | exception Ctmc.Explore.Unsound_canon msg ->
        Format.eprintf "lumping audit failed: %s@." msg;
        exit 1)
  in
  Cmd.v
    (Cmd.info "mtta"
       ~doc:"Exact mean time to full degradation of the minimal system")
    Term.(const run $ multiplier_arg $ scale_arg $ model_arg $ mtta_lump_arg
          $ metrics_out_arg)

(* --- structure --- *)

let structure_cmd =
  let dot_arg =
    Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE"
           ~doc:"Write a GraphViz rendering of the flattened SAN to $(docv).")
  in
  let run domains hosts apps replicas policy multiplier spread scale dot =
    let p = params_of domains hosts apps replicas policy multiplier spread scale in
    let h = Itua.Model.build p in
    Format.printf "%a@.@." Itua.Params.pp p;
    Format.printf "Composition tree:@.%s@." h.Itua.Model.structure;
    Format.printf "%a@." San.Model.pp_summary h.Itua.Model.model;
    match dot with
    | None -> ()
    | Some path ->
        San.Dot.write_file path h.Itua.Model.model;
        Format.printf "DOT written to %s@." path
  in
  Cmd.v
    (Cmd.info "structure" ~doc:"Show the composed model's structure")
    Term.(
      const run $ domains_arg $ hosts_arg $ apps_arg $ reps_per_app_arg
      $ policy_arg $ multiplier_arg $ spread_arg $ scale_arg $ dot_arg)

(* --- save / load / diff --- *)

let save_cmd =
  let out_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Destination path of the itua-model/1 JSON document.")
  in
  let run domains hosts apps replicas policy multiplier spread scale out =
    let p =
      params_of domains hosts apps replicas policy multiplier spread scale
    in
    let h = Itua.Model.build p in
    let doc =
      Serial.to_json ~composition:h.Itua.Model.composition
        ~annotations:[ ("params", Itua.Params.to_json p) ]
        h.Itua.Model.model
    in
    Serial.save out doc;
    Format.printf "%a@." San.Model.pp_summary h.Itua.Model.model;
    Format.printf "model written to %s@." out
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Export the configured ITUA model as a versioned, deterministic \
             itua-model/1 JSON file (see doc/FORMAT.md). The parameter \
             block rides along as the \"params\" annotation, so \
             $(b,--model) can rebuild the measures around the file.")
    Term.(
      const run $ domains_arg $ hosts_arg $ apps_arg $ reps_per_app_arg
      $ policy_arg $ multiplier_arg $ spread_arg $ scale_arg $ out_arg)

let load_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"An itua-model/1 file.")
  in
  let run file =
    match Serial.load file with
    | Error e -> Error (`Msg e)
    | Ok l ->
        Format.printf "%a@." San.Model.pp_summary l.Serial.model;
        (match l.Serial.composition with
        | Some c ->
            Format.printf "@.Composition tree:@.%s" (Compose.render_info c)
        | None -> Format.printf "@.(no composition tree embedded)@.");
        (match List.assoc_opt "params" l.Serial.annotations with
        | None -> ()
        | Some j -> (
            match Itua.Params.of_json j with
            | Ok p -> Format.printf "@.%a@." Itua.Params.pp p
            | Error e ->
                Format.printf "@.(unreadable \"params\" annotation: %s)@." e));
        (* Stability gate: re-emitting the reloaded model must reproduce
           the file byte for byte (modulo the trailing newline). *)
        let reemitted =
          Serial.emit ?composition:l.Serial.composition
            ~bounds:l.Serial.bounds ~annotations:l.Serial.annotations
            l.Serial.model
        in
        let original =
          let ic = open_in_bin file in
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        if String.trim original = reemitted then begin
          Format.printf "@.re-emits byte-identically: yes@.";
          Ok ()
        end
        else Error (`Msg (file ^ ": re-emission differs from the file"))
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Parse and validate a model file: summarize it, render its \
             composition tree and parameters, and verify that re-emitting \
             the reloaded model reproduces the file byte for byte.")
    Term.(term_result (const run $ file_arg))

let diff_cmd =
  let a_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"A" ~doc:"First model file.")
  in
  let b_arg =
    Arg.(required & pos 1 (some file) None
         & info [] ~docv:"B" ~doc:"Second model file.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the machine-readable diff report to $(docv).")
  in
  let run a b json =
    let ( let* ) = Result.bind in
    let read path =
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Result.map_error (fun e -> `Msg (path ^ ": " ^ e))
        (Report.Json.of_string contents)
    in
    let* ja = read a in
    let* jb = read b in
    let entries = Serial.Diff.diff ja jb in
    (match json with
    | None -> ()
    | Some path ->
        Report.write_jsonl path [ Serial.Diff.to_json entries ];
        Format.printf "[diff json: %s]@." path);
    match entries with
    | [] ->
        Format.printf "models are structurally identical@.";
        Ok ()
    | es ->
        Format.printf "%a" Serial.Diff.pp es;
        Format.printf "%d difference(s)@." (List.length es);
        exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Structural diff between two model files: per-place and \
             per-activity changes, matched by name. Exits 1 when the \
             models differ.")
    Term.(term_result (const run $ a_arg $ b_arg $ json_arg))

let () =
  let doc =
    "probabilistic validation of the ITUA intrusion-tolerant replication \
     system (Singh, Cukier & Sanders, DSN 2003)"
  in
  let info = Cmd.info "itua-sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; rare_cmd; explain_cmd; study_cmd; structure_cmd;
            check_cmd; mtta_cmd; save_cmd; load_cmd; diff_cmd;
          ]))
