(* Tests for the sim library: event heap, executor semantics (timing,
   instantaneous priority, reactivation policies), reward estimators, and
   the replication runner validated against closed-form results. *)

let stream seed = Prng.Stream.create ~seed:(Int64.of_int seed)

(* --- event heap --- *)

let test_heap_ordering () =
  let h = Sim.Event_heap.create () in
  List.iteri
    (fun i t -> Sim.Event_heap.push h ~time:t ~act:i ~version:0)
    [ 5.0; 1.0; 3.0; 0.5; 4.0; 2.0 ];
  let rec drain acc =
    match Sim.Event_heap.pop h with
    | None -> List.rev acc
    | Some e -> drain (e.Sim.Event_heap.time :: acc)
  in
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 0.5; 1.0; 2.0; 3.0; 4.0; 5.0 ] (drain [])

let test_heap_fifo_ties () =
  let h = Sim.Event_heap.create () in
  for i = 0 to 9 do
    Sim.Event_heap.push h ~time:1.0 ~act:i ~version:0
  done;
  let rec drain acc =
    match Sim.Event_heap.pop h with
    | None -> List.rev acc
    | Some e -> drain (e.Sim.Event_heap.act :: acc)
  in
  Alcotest.(check (list int))
    "insertion order on equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (drain [])

let test_heap_rejects_bad_time () =
  let h = Sim.Event_heap.create () in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "time %g rejected" t)
        true
        (match Sim.Event_heap.push h ~time:t ~act:0 ~version:0 with
        | () -> false
        | exception Invalid_argument _ -> true))
    [ -1.0; Float.nan; Float.infinity ]

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops sorted" ~count:300
    QCheck2.Gen.(list_size (int_range 0 200) (float_range 0.0 1e6))
    (fun times ->
      let h = Sim.Event_heap.create () in
      List.iter (fun t -> Sim.Event_heap.push h ~time:t ~act:0 ~version:0) times;
      let rec drain acc =
        match Sim.Event_heap.pop h with
        | None -> List.rev acc
        | Some e -> drain (e.Sim.Event_heap.time :: acc)
      in
      let popped = drain [] in
      popped = List.stable_sort compare times)

(* --- deterministic executor semantics --- *)

(* A clock that fires every [period] and counts firings. *)
let clock_model ~period =
  let b = San.Model.Builder.create "clock" in
  let count = San.Model.Builder.int_place b "count" in
  San.Model.Builder.timed b ~name:"tick"
    ~dist:(fun _ -> Dist.Deterministic { value = period })
    ~enabled:(fun _ -> true)
    ~reads:[]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Inc (count, San.Effect.Int 1) ]);
    ];
  (San.Model.Builder.build b, count)

let run_simple ?stop model ~horizon ~seed ~observer =
  let cfg = Sim.Executor.config ?stop ~horizon () in
  Sim.Executor.run ~model ~config:cfg ~stream:(stream seed) ~observer ()

let test_deterministic_clock () =
  let model, count = clock_model ~period:1.0 in
  let outcome = run_simple model ~horizon:5.5 ~seed:1 ~observer:Sim.Observer.nop in
  Alcotest.(check int) "five ticks in 5.5" 5
    (San.Marking.get outcome.Sim.Executor.final count);
  Alcotest.(check int) "events counted" 5 outcome.Sim.Executor.events;
  Alcotest.(check (float 1e-9)) "last event at t=5" 5.0
    outcome.Sim.Executor.end_time;
  Alcotest.(check bool) "not stopped early" false
    outcome.Sim.Executor.stopped_early

let test_stop_predicate () =
  let model, count = clock_model ~period:1.0 in
  let place = San.Model.find_place model "count" in
  let outcome =
    run_simple model ~horizon:100.0 ~seed:1 ~observer:Sim.Observer.nop
      ~stop:(fun m -> San.Marking.get m place >= 3)
  in
  Alcotest.(check bool) "stopped early" true outcome.Sim.Executor.stopped_early;
  Alcotest.(check int) "stopped at 3" 3
    (San.Marking.get outcome.Sim.Executor.final count)

(* Instantaneous priority: a timed firing enables a chain of instantaneous
   activities that must complete before any further time passes. *)
let test_instantaneous_chain () =
  let b = San.Model.Builder.create "chain" in
  let trigger = San.Model.Builder.int_place b "trigger" in
  let s1 = San.Model.Builder.int_place b "s1" in
  let s2 = San.Model.Builder.int_place b "s2" in
  San.Model.Builder.timed b ~name:"pulse"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun m -> San.Marking.get m trigger = 0)
    ~reads:[ San.Place.P trigger ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (trigger, San.Effect.Int 1) ]);
    ];
  San.Model.Builder.instantaneous b ~name:"step1"
    ~enabled:(fun m -> San.Marking.get m trigger = 1 && San.Marking.get m s1 = 0)
    ~reads:[ San.Place.P trigger; San.Place.P s1 ]
    (fun _ m -> San.Marking.set m s1 1);
  San.Model.Builder.instantaneous b ~name:"step2"
    ~enabled:(fun m -> San.Marking.get m s1 = 1 && San.Marking.get m s2 = 0)
    ~reads:[ San.Place.P s1; San.Place.P s2 ]
    (fun _ m -> San.Marking.set m s2 1);
  let model = San.Model.Builder.build b in
  (* Observe that both instantaneous firings happen at exactly t=1. *)
  let inst_times = ref [] in
  let observer =
    {
      Sim.Observer.nop with
      on_fire =
        (fun t a _ _ ->
          if San.Activity.is_instantaneous a then
            inst_times := t :: !inst_times);
    }
  in
  let outcome = run_simple model ~horizon:2.0 ~seed:3 ~observer in
  Alcotest.(check (list (float 1e-12)))
    "instantaneous at the pulse time" [ 1.0; 1.0 ] !inst_times;
  Alcotest.(check int) "s2 set" 1 (San.Marking.get outcome.Sim.Executor.final s2)

let test_stabilization_divergence_detected () =
  let b = San.Model.Builder.create "loop" in
  let p = San.Model.Builder.int_place b ~init:1 "p" in
  (* Always-enabled instantaneous activity: a modeling bug. *)
  San.Model.Builder.instantaneous b ~name:"spin"
    ~enabled:(fun m -> San.Marking.get m p = 1)
    ~reads:[ San.Place.P p ]
    (fun _ m ->
      (* Toggle twice: net no change, stays enabled. *)
      San.Marking.set m p 1);
  let model = San.Model.Builder.build b in
  let cfg = Sim.Executor.config ~max_inst_chain:1000 ~horizon:1.0 () in
  Alcotest.(check bool) "divergence raises" true
    (match
       Sim.Executor.run ~model ~config:cfg ~stream:(stream 4)
         ~observer:Sim.Observer.nop ()
     with
    | (_ : Sim.Executor.outcome) -> false
    | exception Sim.Executor.Stabilization_diverged _ -> true)

(* Reactivation policies: activity B (Det 2.0) depends on a place changed
   by activity A at t=1.  Under Keep, B still fires at t=2; under
   Resample, B's clock restarts at t=1 and fires at t=3. *)
let policy_model ~policy =
  let b = San.Model.Builder.create "policy" in
  let kick = San.Model.Builder.int_place b "kick" in
  let done_ = San.Model.Builder.int_place b "done" in
  San.Model.Builder.timed b ~name:"kicker"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun m -> San.Marking.get m kick = 0)
    ~reads:[ San.Place.P kick ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (kick, San.Effect.Int 1) ]);
    ];
  San.Model.Builder.timed b ~name:"slow" ~policy
    ~dist:(fun _ -> Dist.Deterministic { value = 2.0 })
    ~enabled:(fun m -> San.Marking.get m done_ = 0)
    ~reads:[ San.Place.P kick; San.Place.P done_ ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (done_, San.Effect.Int 1) ]);
    ];
  (San.Model.Builder.build b, done_)

let first_done_time model done_ =
  let t = ref nan in
  let observer =
    {
      Sim.Observer.nop with
      on_fire =
        (fun time _ _ m ->
          if Float.is_nan !t && San.Marking.get m done_ = 1 then t := time);
    }
  in
  let (_ : Sim.Executor.outcome) =
    run_simple model ~horizon:10.0 ~seed:5 ~observer
  in
  !t

let test_policy_keep () =
  let model, done_ = policy_model ~policy:San.Activity.Keep in
  Alcotest.(check (float 1e-9)) "keep: fires at 2" 2.0
    (first_done_time model done_)

let test_policy_resample () =
  let model, done_ = policy_model ~policy:San.Activity.Resample in
  Alcotest.(check (float 1e-9)) "resample: restarted at 1, fires at 3" 3.0
    (first_done_time model done_)

(* Regression: an activity enabled during the t = 0 instantaneous setup
   must be scheduled exactly once — double scheduling doubles its
   effective rate (caught by cross-validating the ITUA model against its
   exact CTMC solution). *)
let test_no_double_scheduling_after_setup () =
  let b = San.Model.Builder.create "setup_race" in
  let armed = San.Model.Builder.int_place b "armed" in
  let fires = San.Model.Builder.int_place b "fires" in
  (* Instantaneous setup arms the timed activity at t = 0. *)
  San.Model.Builder.instantaneous b ~name:"arm"
    ~enabled:(fun m -> San.Marking.get m armed = 0)
    ~reads:[ San.Place.P armed ]
    (fun _ m -> San.Marking.set m armed 1);
  San.Model.Builder.timed_exp b ~name:"fire"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m armed = 1)
    ~reads:[ San.Place.P armed; San.Place.P fires ]
    (fun _ m -> San.Marking.add m fires 1);
  let model = San.Model.Builder.build b in
  (* E[firings in 20h] = 20; with the double-scheduling bug it was 40.
     Average over replications and require a tight band. *)
  let spec =
    Sim.Runner.spec ~model ~horizon:20.0
      [
        Sim.Reward.final ~name:"fires" (fun m ->
            float_of_int (San.Marking.get m fires));
      ]
  in
  let r = List.hd (Sim.Runner.run ~seed:8L ~reps:2000 spec) in
  let mean = r.Sim.Runner.ci.Stats.Ci.mean in
  Alcotest.(check bool)
    (Printf.sprintf "mean firings %.2f within [19, 21]" mean)
    true
    (19.0 < mean && mean < 21.0)

(* Disabled activities are aborted: B (Det 2.0) is disabled by A at t=1
   and never fires. *)
let test_disabling_aborts () =
  let b = San.Model.Builder.create "abort" in
  let blocked = San.Model.Builder.int_place b "blocked" in
  let fired = San.Model.Builder.int_place b "fired" in
  San.Model.Builder.timed b ~name:"blocker"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun m -> San.Marking.get m blocked = 0)
    ~reads:[ San.Place.P blocked ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (blocked, San.Effect.Int 1) ]);
    ];
  San.Model.Builder.timed b ~name:"victim"
    ~dist:(fun _ -> Dist.Deterministic { value = 2.0 })
    ~enabled:(fun m -> San.Marking.get m blocked = 0)
    ~reads:[ San.Place.P blocked ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Inc (fired, San.Effect.Int 1) ]);
    ];
  let model = San.Model.Builder.build b in
  let outcome = run_simple model ~horizon:10.0 ~seed:6 ~observer:Sim.Observer.nop in
  Alcotest.(check int) "victim never fired" 0
    (San.Marking.get outcome.Sim.Executor.final fired)

(* Observer advance intervals tile [0, horizon] exactly. *)
let test_advance_tiling () =
  let q = Test_models.mm1k ~lambda:3.0 ~mu:4.0 ~k:5 in
  let total = ref 0.0 in
  let last_end = ref 0.0 in
  let observer =
    {
      Sim.Observer.nop with
      on_advance =
        (fun t0 t1 _ ->
          Alcotest.(check (float 1e-12)) "contiguous" !last_end t0;
          Alcotest.(check bool) "positive" true (t1 > t0);
          last_end := t1;
          total := !total +. (t1 -. t0));
    }
  in
  let (_ : Sim.Executor.outcome) =
    run_simple q.Test_models.q_model ~horizon:7.0 ~seed:7 ~observer
  in
  Alcotest.(check (float 1e-9)) "tiles horizon" 7.0 !total

(* --- rewards --- *)

let test_reward_instant_right_continuous () =
  let model, count = clock_model ~period:1.0 in
  let spec =
    Sim.Runner.spec ~model ~horizon:3.5
      [
        Sim.Reward.instant ~name:"at1" ~at:1.0 (fun m ->
            float_of_int (San.Marking.get m count));
        Sim.Reward.instant ~name:"at0" ~at:0.0 (fun m ->
            float_of_int (San.Marking.get m count));
        Sim.Reward.instant ~name:"at_end" ~at:3.5 (fun m ->
            float_of_int (San.Marking.get m count));
      ]
  in
  let values = Sim.Runner.run_one spec (stream 8) in
  Alcotest.(check (float 0.0)) "value at 1.0 includes the t=1 tick" 1.0
    values.(0);
  Alcotest.(check (float 0.0)) "value at 0" 0.0 values.(1);
  Alcotest.(check (float 0.0)) "value at horizon" 3.0 values.(2)

let test_reward_time_average_and_integral () =
  (* count(t) = floor(t); integral over [0,3] of floor(t) dt = 0+1+2 = 3. *)
  let model, count = clock_model ~period:1.0 in
  let f m = float_of_int (San.Marking.get m count) in
  let spec =
    Sim.Runner.spec ~model ~horizon:3.0
      [
        Sim.Reward.time_average ~name:"avg" ~until:3.0 f;
        { Sim.Reward.name = "int";
          kind = Sim.Reward.Integral { f; from_ = 0.0; until = 3.0 } };
        { Sim.Reward.name = "int13";
          kind = Sim.Reward.Integral { f; from_ = 1.0; until = 3.0 } };
      ]
  in
  let values = Sim.Runner.run_one spec (stream 9) in
  Alcotest.(check (float 1e-9)) "time average" 1.0 values.(0);
  Alcotest.(check (float 1e-9)) "integral" 3.0 values.(1);
  Alcotest.(check (float 1e-9)) "window integral" 3.0 values.(2)

let test_reward_ever_and_first_passage () =
  let model, count = clock_model ~period:1.0 in
  let pred k m = San.Marking.get m count >= k in
  let spec =
    Sim.Runner.spec ~model ~horizon:10.0
      [
        Sim.Reward.ever ~name:"ever3by2.5" ~until:2.5 (pred 3);
        Sim.Reward.ever ~name:"ever2by2.5" ~until:2.5 (pred 2);
        Sim.Reward.first_passage ~name:"fp3" (pred 3);
        Sim.Reward.first_passage ~name:"fp99" (pred 99);
      ]
  in
  let values = Sim.Runner.run_one spec (stream 10) in
  Alcotest.(check (float 0.0)) "not reached in window" 0.0 values.(0);
  Alcotest.(check (float 0.0)) "reached in window" 1.0 values.(1);
  Alcotest.(check (float 1e-9)) "first passage at 3" 3.0 values.(2);
  Alcotest.(check bool) "undefined first passage" true (Float.is_nan values.(3))

let test_reward_impulse () =
  let model, _count = clock_model ~period:1.0 in
  let spec =
    Sim.Runner.spec ~model ~horizon:5.5
      [
        Sim.Reward.impulse ~name:"ticks in [2,4]" ~from_:2.0 ~until:4.0
          (fun a _ _ ->
            if a.San.Activity.name = "tick" then 1.0 else 0.0);
      ]
  in
  let values = Sim.Runner.run_one spec (stream 11) in
  Alcotest.(check (float 0.0)) "impulse count" 3.0 values.(0)

let test_reward_window_validation () =
  let model, _ = clock_model ~period:1.0 in
  Alcotest.(check bool) "window beyond horizon rejected" true
    (match
       Sim.Runner.spec ~model ~horizon:2.0
         [ Sim.Reward.ever ~name:"x" ~until:5.0 (fun _ -> false) ]
     with
    | (_ : Sim.Runner.spec) -> false
    | exception Invalid_argument _ -> true)

(* --- statistical validation against closed forms --- *)

let test_two_state_availability () =
  let lambda = 1.0 and mu = 4.0 in
  let ts = Test_models.two_state ~lambda ~mu in
  let avail m = San.Marking.get m ts.Test_models.up = 1 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:2.0
      [
        Sim.Reward.instant ~name:"avail@0.5" ~at:0.5 (fun m ->
            if avail m then 1.0 else 0.0);
        Sim.Reward.probability_in_interval ~name:"avg avail [0,2]" ~until:2.0
          avail;
      ]
  in
  let results = Sim.Runner.run ~seed:42L ~reps:4000 spec in
  let expected_inst = Test_models.two_state_availability ~lambda ~mu 0.5 in
  let r0 = List.nth results 0 in
  if not (Stats.Ci.contains r0.Sim.Runner.ci expected_inst) then
    Alcotest.failf "availability at 0.5: CI %s misses %.5f"
      (Format.asprintf "%a" Stats.Ci.pp r0.Sim.Runner.ci)
      expected_inst;
  (* Interval average = (1/T) ∫ A(t) dt, closed form. *)
  let s = lambda +. mu in
  let t = 2.0 in
  let expected_avg =
    ((mu /. s *. t) +. (lambda /. (s *. s) *. (1.0 -. exp (-.s *. t)))) /. t
  in
  let r1 = List.nth results 1 in
  if not (Stats.Ci.contains r1.Sim.Runner.ci expected_avg) then
    Alcotest.failf "interval availability: CI %s misses %.5f"
      (Format.asprintf "%a" Stats.Ci.pp r1.Sim.Runner.ci)
      expected_avg

let test_tandem_unreliability () =
  let r1 = 2.0 and r2 = 5.0 in
  let td = Test_models.tandem ~r1 ~r2 in
  let spec =
    Sim.Runner.spec ~model:td.Test_models.td_model ~horizon:1.0
      ~stop:(fun m -> San.Marking.get m td.Test_models.stage = 2)
      [
        Sim.Reward.ever ~name:"absorbed by 1.0" ~until:1.0 (fun m ->
            San.Marking.get m td.Test_models.stage = 2);
      ]
  in
  let results = Sim.Runner.run ~seed:7L ~reps:4000 spec in
  let expected = Test_models.tandem_absorbed ~r1 ~r2 1.0 in
  let r = List.hd results in
  if not (Stats.Ci.contains r.Sim.Runner.ci expected) then
    Alcotest.failf "tandem absorption: CI %s misses %.5f"
      (Format.asprintf "%a" Stats.Ci.pp r.Sim.Runner.ci)
      expected

let test_mm1k_mean_queue () =
  let lambda = 2.0 and mu = 3.0 and k = 4 in
  let q = Test_models.mm1k ~lambda ~mu ~k in
  let pi = Test_models.mm1k_steady ~lambda ~mu ~k in
  let expected_mean =
    Array.to_list pi
    |> List.mapi (fun i p -> float_of_int i *. p)
    |> List.fold_left ( +. ) 0.0
  in
  (* Long horizon, discard a warmup prefix by averaging over [20, 120]. *)
  let spec =
    Sim.Runner.spec ~model:q.Test_models.q_model ~horizon:120.0
      [
        Sim.Reward.time_average ~name:"mean queue" ~from_:20.0 ~until:120.0
          (fun m -> float_of_int (San.Marking.get m q.Test_models.q_len));
      ]
  in
  let results = Sim.Runner.run ~seed:11L ~reps:400 spec in
  let r = List.hd results in
  if not (Stats.Ci.contains r.Sim.Runner.ci expected_mean) then
    Alcotest.failf "M/M/1/K mean queue: CI %s misses %.5f"
      (Format.asprintf "%a" Stats.Ci.pp r.Sim.Runner.ci)
      expected_mean

(* --- non-exponential timing end-to-end --- *)

let test_erlang_first_passage_distribution () =
  (* A single Erlang(3, 6) activity: its firing time must follow the
     Erlang cdf (checked by Kolmogorov-Smirnov over replications). *)
  let dist = Dist.Erlang { k = 3; rate = 6.0 } in
  let b = San.Model.Builder.create "erlang_once" in
  let done_ = San.Model.Builder.int_place b "done" in
  San.Model.Builder.timed b ~name:"go" ~policy:San.Activity.Keep
    ~dist:(fun _ -> dist)
    ~enabled:(fun m -> San.Marking.get m done_ = 0)
    ~reads:[ San.Place.P done_ ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (done_, San.Effect.Int 1) ]);
    ];
  let model = San.Model.Builder.build b in
  let spec =
    Sim.Runner.spec ~model ~horizon:100.0
      ~stop:(fun m -> San.Marking.get m done_ = 1)
      [
        Sim.Reward.first_passage ~name:"t" (fun m ->
            San.Marking.get m done_ = 1);
      ]
  in
  let n = 4000 in
  (* Derive substreams incrementally (one jump each); [substream root i]
     would cost i jumps. *)
  let base = ref (Prng.Stream.create ~seed:271L) in
  let samples =
    Array.init n (fun i ->
        if i > 0 then base := Prng.Stream.successor !base;
        (Sim.Runner.run_one spec (Prng.Stream.substream !base 0)).(0))
  in
  let stat = Stats.Ks.statistic ~cdf:(Dist.cdf dist) samples in
  let p = Stats.Ks.significance ~n stat in
  if p < 0.005 then
    Alcotest.failf "Erlang firing time rejected by KS: D=%.4f p=%.4g" stat p

(* --- trace observer --- *)

let test_trace_output () =
  let model, _count = clock_model ~period:1.0 in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let observer = Sim.Trace.observer ~model ppf in
  let (_ : Sim.Executor.outcome) =
    run_simple model ~horizon:2.5 ~seed:12 ~observer
  in
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let contains needle =
    let nl = String.length needle and hl = String.length out in
    let rec scan i =
      i + nl <= hl && (String.sub out i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle ->
      if not (contains needle) then
        Alcotest.failf "trace missing %S in:\n%s" needle out)
    [ "init"; "fire tick"; "end" ]

let test_trace_show_marking () =
  let model, _count = clock_model ~period:1.0 in
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let observer = Sim.Trace.observer ~show_marking:true ~model ppf in
  let (_ : Sim.Executor.outcome) =
    run_simple model ~horizon:2.5 ~seed:12 ~observer
  in
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let lines = String.split_on_char '\n' out in
  (* After the first tick the marking dump must show count = 1, indented. *)
  Alcotest.(check bool) "marking dumped" true
    (List.exists (fun l -> String.trim l = "count = 1") lines);
  Alcotest.(check bool) "dump lines indented" true
    (List.for_all
       (fun l ->
         String.length l = 0
         || (not (String.length l >= 5 && String.sub l 0 5 = "count"))
         || String.length l > 0 && l.[0] = ' ')
       lines)

(* --- trajectory recording --- *)

let test_trajectory_records_clock () =
  let model, _count = clock_model ~period:1.0 in
  let sink = Sim.Trajectory.sink ~model () in
  let (_ : Sim.Executor.outcome) =
    run_simple model ~horizon:5.5 ~seed:1
      ~observer:(Sim.Trajectory.observer sink)
  in
  Sim.Trajectory.offer sink ~rep:0;
  (match Sim.Trajectory.retained sink with
  | [ t ] ->
      Alcotest.(check int) "rep" 0 t.Sim.Trajectory.rep;
      Alcotest.(check bool) "no predicate, never matched" false
        t.Sim.Trajectory.matched;
      Alcotest.(check int) "events" 5 t.Sim.Trajectory.events;
      Alcotest.(check (float 1e-9)) "horizon" 5.5 t.Sim.Trajectory.horizon;
      Alcotest.(check int) "count starts at zero: empty init" 0
        (List.length t.Sim.Trajectory.init);
      Alcotest.(check int) "five steps" 5 (List.length t.Sim.Trajectory.steps);
      List.iteri
        (fun i (s : Sim.Trajectory.step) ->
          Alcotest.(check string) "activity" "tick" s.activity;
          Alcotest.(check (float 1e-9)) "firing time" (float_of_int (i + 1))
            s.time;
          match s.changes with
          | [ (c : Sim.Trajectory.change) ] ->
              Alcotest.(check string) "changed place" "count" c.place;
              Alcotest.(check (float 0.0)) "post-firing value"
                (float_of_int (i + 1))
                c.value
          | cs -> Alcotest.failf "step %d: %d changes" i (List.length cs))
        t.Sim.Trajectory.steps
  | ts -> Alcotest.failf "retained %d trajectories" (List.length ts));
  match Sim.Trajectory.occupancy sink with
  | [ (s : Sim.Trajectory.place_stats) ] ->
      Alcotest.(check string) "stats place" "count" s.place;
      (* count(t) = floor(t); ∫ over [0,5.5] = 0+1+2+3+4+2.5 = 12.5 *)
      Alcotest.(check (float 1e-9)) "time-weighted mean" (12.5 /. 5.5)
        s.mean_tokens;
      Alcotest.(check (float 0.0)) "max" 5.0 s.max_tokens;
      Alcotest.(check int) "hit in the one run" 1 s.hit_runs;
      Alcotest.(check (float 1e-9)) "first non-zero at t=1" 1.0
        s.mean_first_hit
  | ss -> Alcotest.failf "%d occupancy rows" (List.length ss)

(* Two-state model with a "was ever down" predicate: a mixed population of
   matching and non-matching replications. *)
let trajectory_run ~domains ~reps =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"a" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let sink =
    Sim.Trajectory.sink ~k:5
      ~predicate:(fun m -> San.Marking.get m ts.Test_models.up = 0)
      ~model:ts.Test_models.ts_model ()
  in
  let (_ : Sim.Runner.result list) =
    Sim.Runner.run ~domains ~seed:5L ~reps ~record:sink spec
  in
  sink

let trajectory_fingerprint sink =
  ( Sim.Trajectory.runs sink,
    Sim.Trajectory.matched_runs sink,
    List.map
      (fun t -> Report.Json.to_string (Sim.Trajectory.to_json t))
      (Sim.Trajectory.retained sink),
    Report.Json.to_string
      (Sim.Trajectory.occupancy_to_json (Sim.Trajectory.occupancy sink)) )

(* The bit-identical [--cores 1] vs [--cores N] guarantee: retained
   trajectories AND occupancy statistics (float sums included) must agree
   byte-for-byte. 130 reps crosses the 64-rep segment boundary. *)
let test_trajectory_cross_core_identical () =
  let r1, m1, t1, o1 = trajectory_fingerprint (trajectory_run ~domains:1 ~reps:130) in
  let r4, m4, t4, o4 = trajectory_fingerprint (trajectory_run ~domains:4 ~reps:130) in
  Alcotest.(check int) "runs" r1 r4;
  Alcotest.(check int) "matched runs" m1 m4;
  Alcotest.(check (list string)) "retained trajectories byte-identical" t1 t4;
  Alcotest.(check string) "occupancy byte-identical" o1 o4

let test_trajectory_retention_bounds () =
  let sink = trajectory_run ~domains:1 ~reps:130 in
  Alcotest.(check int) "all runs offered" 130 (Sim.Trajectory.runs sink);
  let matching = Sim.Trajectory.matching sink in
  let non_matching = Sim.Trajectory.non_matching sink in
  let matched = Sim.Trajectory.matched_runs sink in
  Alcotest.(check bool) "some runs matched" true (matched > 5);
  Alcotest.(check int) "matching sample capped at k" 5 (List.length matching);
  Alcotest.(check int) "every non-matching run retained under k"
    (Int.min 5 (130 - matched))
    (List.length non_matching);
  List.iter
    (fun (t : Sim.Trajectory.t) ->
      Alcotest.(check bool) "matching flagged" true t.matched)
    matching;
  List.iter
    (fun (t : Sim.Trajectory.t) ->
      Alcotest.(check bool) "non-matching flagged" false t.matched)
    non_matching;
  let reps = List.map (fun (t : Sim.Trajectory.t) -> t.rep) (Sim.Trajectory.retained sink) in
  Alcotest.(check bool) "retained sorted by rep" true
    (List.sort compare reps = reps)

let test_trajectory_json_roundtrip () =
  let sink = trajectory_run ~domains:1 ~reps:130 in
  List.iter
    (fun t ->
      let s = Report.Json.to_string (Sim.Trajectory.to_json t) in
      match Report.Json.of_string s with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok j -> (
          match Sim.Trajectory.of_json j with
          | Error e -> Alcotest.failf "of_json failed: %s" e
          | Ok t2 ->
              Alcotest.(check string) "trajectory round-trips" s
                (Report.Json.to_string (Sim.Trajectory.to_json t2))))
    (Sim.Trajectory.retained sink);
  let s =
    Report.Json.to_string
      (Sim.Trajectory.occupancy_to_json (Sim.Trajectory.occupancy sink))
  in
  match Report.Json.of_string s with
  | Error e -> Alcotest.failf "occupancy reparse failed: %s" e
  | Ok j -> (
      match Sim.Trajectory.occupancy_of_json j with
      | Error e -> Alcotest.failf "occupancy of_json failed: %s" e
      | Ok stats ->
          Alcotest.(check string) "occupancy round-trips" s
            (Report.Json.to_string (Sim.Trajectory.occupancy_to_json stats)))

let test_trajectory_validation () =
  let model, _ = clock_model ~period:1.0 in
  List.iter
    (fun (label, f) ->
      Alcotest.(check bool) label true
        (match f () with
        | (_ : Sim.Trajectory.sink) -> false
        | exception Invalid_argument _ -> true))
    [
      ("negative k rejected", fun () -> Sim.Trajectory.sink ~k:(-1) ~model ());
      ( "negative max_steps rejected",
        fun () -> Sim.Trajectory.sink ~max_steps:(-1) ~model () );
    ]

(* --- metrics --- *)

let test_metrics_counters_match_outcome () =
  let model, _count = clock_model ~period:1.0 in
  let metrics = Sim.Metrics.create ~model in
  let cfg = Sim.Executor.config ~horizon:5.5 () in
  let outcome =
    Sim.Executor.run ~metrics ~model ~config:cfg ~stream:(stream 1)
      ~observer:Sim.Observer.nop ()
  in
  Alcotest.(check int) "events counted" outcome.Sim.Executor.events
    metrics.Sim.Metrics.events;
  Alcotest.(check int) "one run" 1 metrics.Sim.Metrics.runs;
  Alcotest.(check int) "no setup firings" 0 metrics.Sim.Metrics.setup_events;
  (* The clock has a single activity; all firings are its. *)
  Alcotest.(check int) "per-activity firings sum to events"
    outcome.Sim.Executor.events
    (Array.fold_left ( + ) 0 metrics.Sim.Metrics.firings);
  (* 5 ticks plus the past-horizon completion popped and discarded. *)
  Alcotest.(check int) "heap pops" 6 metrics.Sim.Metrics.pops;
  Alcotest.(check int) "no stale pops" 0 metrics.Sim.Metrics.stale_pops;
  Alcotest.(check int) "singleton heap" 1 metrics.Sim.Metrics.max_depth

let test_metrics_cancellations_and_never_fired () =
  (* The abort model: "victim" is scheduled, then disabled at t=1 by
     "blocker" and never fires. *)
  let b = San.Model.Builder.create "abort" in
  let blocked = San.Model.Builder.int_place b "blocked" in
  let fired = San.Model.Builder.int_place b "fired" in
  San.Model.Builder.timed b ~name:"blocker"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun m -> San.Marking.get m blocked = 0)
    ~reads:[ San.Place.P blocked ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (blocked, San.Effect.Int 1) ]);
    ];
  San.Model.Builder.timed b ~name:"victim"
    ~dist:(fun _ -> Dist.Deterministic { value = 2.0 })
    ~enabled:(fun m -> San.Marking.get m blocked = 0)
    ~reads:[ San.Place.P blocked ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Inc (fired, San.Effect.Int 1) ]);
    ];
  let model = San.Model.Builder.build b in
  let metrics = Sim.Metrics.create ~model in
  let cfg = Sim.Executor.config ~horizon:10.0 () in
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~metrics ~model ~config:cfg ~stream:(stream 6)
      ~observer:Sim.Observer.nop ()
  in
  let victim = (San.Model.find_activity model "victim").San.Activity.id in
  let blocker = (San.Model.find_activity model "blocker").San.Activity.id in
  Alcotest.(check int) "victim canceled once" 1
    metrics.Sim.Metrics.cancellations.(victim);
  Alcotest.(check int) "victim never fired" 0
    metrics.Sim.Metrics.firings.(victim);
  Alcotest.(check int) "blocker fired once" 1
    metrics.Sim.Metrics.firings.(blocker);
  Alcotest.(check (list string)) "never_fired lists the victim" [ "victim" ]
    (Sim.Metrics.never_fired metrics);
  (* The victim's canceled completion is popped stale (lazy deletion). *)
  Alcotest.(check int) "stale pop observed" 1 metrics.Sim.Metrics.stale_pops

let runner_metrics_totals ~domains =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"a" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let metrics = Sim.Metrics.create ~model:ts.Test_models.ts_model in
  let (_ : Sim.Runner.result list) =
    Sim.Runner.run ~domains ~metrics ~seed:5L ~reps:101 spec
  in
  metrics

let test_metrics_domain_merge () =
  let seq = runner_metrics_totals ~domains:1 in
  let par = runner_metrics_totals ~domains:4 in
  (* Replication [i] uses substream [i] regardless of the domain split, so
     the merged counters must agree exactly. *)
  Alcotest.(check int) "events equal" seq.Sim.Metrics.events
    par.Sim.Metrics.events;
  Alcotest.(check int) "runs equal" seq.Sim.Metrics.runs par.Sim.Metrics.runs;
  Alcotest.(check (array int)) "per-activity firings equal"
    seq.Sim.Metrics.firings par.Sim.Metrics.firings;
  Alcotest.(check (array int)) "per-activity cancellations equal"
    seq.Sim.Metrics.cancellations par.Sim.Metrics.cancellations;
  Alcotest.(check int) "heap pops equal" seq.Sim.Metrics.pops
    par.Sim.Metrics.pops;
  Alcotest.(check bool) "wall clock recorded" true
    (par.Sim.Metrics.wall_seconds > 0.0)

let test_metrics_merge_and_reset () =
  let a = runner_metrics_totals ~domains:1 in
  let b = runner_metrics_totals ~domains:1 in
  let events_one = a.Sim.Metrics.events in
  Sim.Metrics.merge ~into:a b;
  Alcotest.(check int) "merge doubles events" (2 * events_one)
    a.Sim.Metrics.events;
  Sim.Metrics.reset a;
  Alcotest.(check int) "reset zeroes events" 0 a.Sim.Metrics.events;
  Alcotest.(check int) "reset zeroes firings" 0
    (Array.fold_left ( + ) 0 a.Sim.Metrics.firings)

(* --- progress reporting --- *)

let progress_spec () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
    [
      Sim.Reward.probability_in_interval ~name:"avail" ~until:5.0 (fun m ->
          San.Marking.get m ts.Test_models.up = 1);
    ]

let test_run_progress () =
  let spec = progress_spec () in
  let seen = ref [] in
  let baseline = Sim.Runner.run ~seed:5L ~reps:101 spec in
  let results =
    Sim.Runner.run ~seed:5L ~reps:101
      ~progress:(fun p -> seen := p :: !seen)
      spec
  in
  let seen = List.rev !seen in
  Alcotest.(check bool) "several reports" true (List.length seen > 1);
  let completions = List.map (fun p -> p.Sim.Runner.completed) seen in
  Alcotest.(check bool) "monotone" true
    (List.sort compare completions = completions);
  let last = List.nth seen (List.length seen - 1) in
  Alcotest.(check int) "final report complete" 101 last.Sim.Runner.completed;
  Alcotest.(check int) "target is reps" 101 last.Sim.Runner.target;
  Alcotest.(check int) "one ci per reward" 1
    (List.length last.Sim.Runner.cis);
  (* Chunked execution uses the same replication substreams; means agree
     to floating-point merge order. *)
  Alcotest.(check bool) "estimate unchanged by chunking" true
    (Float.abs
       ((List.hd baseline).Sim.Runner.ci.Stats.Ci.mean
       -. (List.hd results).Sim.Runner.ci.Stats.Ci.mean)
    < 1e-12)

let test_run_until_progress () =
  let spec = progress_spec () in
  let seen = ref [] in
  let r =
    List.hd
      (Sim.Runner.run_until ~batch:200 ~rel_precision:0.02 ~seed:9L
         ~progress:(fun p -> seen := p :: !seen)
         spec)
  in
  let seen = List.rev !seen in
  Alcotest.(check bool) "one report per batch" true
    (List.length seen = r.Sim.Runner.n_runs / 200);
  let last = List.nth seen (List.length seen - 1) in
  Alcotest.(check int) "last report covers the run" r.Sim.Runner.n_runs
    last.Sim.Runner.completed;
  Alcotest.(check bool) "stopping criterion visible" true
    (last.Sim.Runner.worst_rel_hw <= 0.02);
  Alcotest.(check bool) "eta present" true
    (List.for_all (fun p -> p.Sim.Runner.eta <> None) seen)

(* --- batch-means steady state --- *)

let test_steady_mm1k_batch_means () =
  let lambda = 2.0 and mu = 3.0 and k = 5 in
  let q = Test_models.mm1k ~lambda ~mu ~k in
  let pi = Test_models.mm1k_steady ~lambda ~mu ~k in
  let expected =
    Array.to_list pi
    |> List.mapi (fun i p -> float_of_int i *. p)
    |> List.fold_left ( +. ) 0.0
  in
  let result =
    Sim.Steady.estimate ~model:q.Test_models.q_model
      ~f:(fun m -> float_of_int (San.Marking.get m q.Test_models.q_len))
      ~warmup:50.0 ~batch_length:100.0 ~batches:30
      ~stream:(stream 301) ()
  in
  Alcotest.(check int) "30 batch means" 30
    (Array.length result.Sim.Steady.batch_means);
  if not (Stats.Ci.contains result.Sim.Steady.ci expected) then
    Alcotest.failf "batch means CI %s misses exact %.5f"
      (Format.asprintf "%a" Stats.Ci.pp result.Sim.Steady.ci)
      expected;
  Alcotest.(check bool) "warmup mean recorded" true
    (not (Float.is_nan result.Sim.Steady.warmup_mean))

let test_steady_validation () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:3 in
  let run ~warmup ~batch_length ~batches =
    match
      Sim.Steady.estimate ~model:q.Test_models.q_model
        ~f:(fun _ -> 1.0)
        ~warmup ~batch_length ~batches ~stream:(stream 1) ()
    with
    | (_ : Sim.Steady.result) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "batches >= 2" true
    (run ~warmup:1.0 ~batch_length:1.0 ~batches:1);
  Alcotest.(check bool) "positive batch length" true
    (run ~warmup:1.0 ~batch_length:0.0 ~batches:4);
  Alcotest.(check bool) "non-negative warmup" true
    (run ~warmup:(-1.0) ~batch_length:1.0 ~batches:4)

let test_steady_constant_reward () =
  (* A constant-1 reward must produce batch means of exactly 1. *)
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let result =
    Sim.Steady.estimate ~model:ts.Test_models.ts_model
      ~f:(fun _ -> 1.0)
      ~warmup:1.0 ~batch_length:2.0 ~batches:5 ~stream:(stream 2) ()
  in
  Array.iter
    (fun m -> Alcotest.(check (float 1e-9)) "batch mean 1" 1.0 m)
    result.Sim.Steady.batch_means

(* --- runner mechanics --- *)

let test_runner_reproducible () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"a" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let run () =
    (List.hd (Sim.Runner.run ~seed:123L ~reps:50 spec)).Sim.Runner.ci.Stats.Ci.mean
  in
  Alcotest.(check (float 0.0)) "same seed, same estimate" (run ()) (run ())

let test_runner_parallel_matches_counts () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"a" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let seq = List.hd (Sim.Runner.run ~domains:1 ~seed:5L ~reps:101 spec) in
  let par = List.hd (Sim.Runner.run ~domains:4 ~seed:5L ~reps:101 spec) in
  Alcotest.(check int) "counts match" seq.Sim.Runner.n_runs par.Sim.Runner.n_runs;
  (* Same replication substreams are used either way; means agree to
     floating-point merge order. *)
  Alcotest.(check bool) "means agree" true
    (Float.abs (seq.Sim.Runner.ci.Stats.Ci.mean -. par.Sim.Runner.ci.Stats.Ci.mean)
    < 1e-12)

let test_run_until_precision () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"avail" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let r =
    List.hd
      (Sim.Runner.run_until ~batch:200 ~rel_precision:0.02 ~seed:9L spec)
  in
  Alcotest.(check bool) "precision reached" true
    (Stats.Ci.relative_half_width r.Sim.Runner.ci <= 0.02);
  Alcotest.(check int) "whole batches" 0 (r.Sim.Runner.n_runs mod 200);
  Alcotest.(check bool) "took more than one batch" true
    (r.Sim.Runner.n_runs >= 200)

let test_run_until_caps_at_max () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"avail" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let r =
    List.hd
      (Sim.Runner.run_until ~batch:100 ~max_reps:300 ~rel_precision:1e-6
         ~seed:9L spec)
  in
  Alcotest.(check int) "capped" 300 r.Sim.Runner.n_runs

let test_run_until_deterministic () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:5.0
      [
        Sim.Reward.probability_in_interval ~name:"avail" ~until:5.0 (fun m ->
            San.Marking.get m ts.Test_models.up = 1);
      ]
  in
  let go () =
    let r =
      List.hd
        (Sim.Runner.run_until ~batch:150 ~rel_precision:0.05 ~seed:31L spec)
    in
    (r.Sim.Runner.n_runs, r.Sim.Runner.ci.Stats.Ci.mean)
  in
  Alcotest.(check (pair int (float 0.0))) "same stopping point" (go ()) (go ())

let test_runner_nan_handling () =
  (* First passage to an unreachable predicate: undefined in every rep. *)
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let spec =
    Sim.Runner.spec ~model:ts.Test_models.ts_model ~horizon:1.0
      [ Sim.Reward.first_passage ~name:"never" (fun _ -> false) ]
  in
  let r = List.hd (Sim.Runner.run ~seed:1L ~reps:20 spec) in
  Alcotest.(check int) "none defined" 0 r.Sim.Runner.n_defined;
  Alcotest.(check int) "all ran" 20 r.Sim.Runner.n_runs

(* --- checkpointing and the splitting engine --- *)

let test_checkpoint_roundtrip () =
  (* A run halted at a level and resumed with the same stream object must
     be bit-identical to the uninterrupted run on that stream. *)
  let q = Test_models.mm1k ~lambda:1.0 ~mu:1.2 ~k:8 in
  let model = q.Test_models.q_model and len = q.Test_models.q_len in
  let cfg = Sim.Executor.config ~horizon:50.0 () in
  let full =
    Sim.Executor.run ~model ~config:cfg ~stream:(stream 99)
      ~observer:Sim.Observer.nop ()
  in
  let s2 = stream 99 in
  let importance m = San.Marking.get m len in
  match
    Sim.Executor.run_to_level ~model ~config:cfg ~stream:s2
      ~observer:Sim.Observer.nop ~importance ~threshold:3 ()
  with
  | Sim.Executor.Finished _ -> Alcotest.fail "expected a crossing"
  | Sim.Executor.Crossed { checkpoint; events } ->
      Alcotest.(check int) "captured at the level" 3
        (importance (Sim.Executor.checkpoint_marking checkpoint));
      Alcotest.(check bool) "some events before the crossing" true (events > 0);
      let resumed =
        Sim.Executor.resume ~model ~config:cfg ~stream:s2
          ~observer:Sim.Observer.nop checkpoint
      in
      Alcotest.(check int) "final marking identical"
        (San.Marking.get full.Sim.Executor.final len)
        (San.Marking.get resumed.Sim.Executor.final len);
      Alcotest.(check int) "events partition the full run"
        full.Sim.Executor.events
        (events + resumed.Sim.Executor.events);
      Alcotest.(check (float 0.0)) "same last-event time"
        full.Sim.Executor.end_time resumed.Sim.Executor.end_time

let test_checkpoint_clones_independent () =
  (* A checkpoint can be resumed many times: same stream seed gives the
     same continuation, different seeds explore different futures. *)
  let q = Test_models.mm1k ~lambda:1.0 ~mu:1.2 ~k:8 in
  let model = q.Test_models.q_model and len = q.Test_models.q_len in
  let cfg = Sim.Executor.config ~horizon:50.0 () in
  match
    Sim.Executor.run_to_level ~model ~config:cfg ~stream:(stream 99)
      ~observer:Sim.Observer.nop
      ~importance:(fun m -> San.Marking.get m len)
      ~threshold:3 ()
  with
  | Sim.Executor.Finished _ -> Alcotest.fail "expected a crossing"
  | Sim.Executor.Crossed { checkpoint; _ } ->
      let resume seed =
        let o =
          Sim.Executor.resume ~model ~config:cfg ~stream:(stream seed)
            ~observer:Sim.Observer.nop checkpoint
        in
        (San.Marking.get o.Sim.Executor.final len, o.Sim.Executor.events)
      in
      Alcotest.(check (pair int int))
        "same seed, same continuation" (resume 7) (resume 7);
      let different = List.init 5 (fun i -> resume (100 + i)) in
      Alcotest.(check bool) "seeds diverge" true
        (List.exists (fun r -> r <> List.hd different) different)

let test_splitting_two_state_agrees_with_crude () =
  (* Non-rare event, P(ever down by t) = 1 - exp(-λt) ≈ 0.39: splitting
     must agree with the closed form and with a crude-MC estimate. *)
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let model = ts.Test_models.ts_model and up = ts.Test_models.up in
  let horizon = 0.5 in
  let exact = 1.0 -. exp (-.horizon) in
  let importance m = if San.Marking.get m up = 0 then 1 else 0 in
  let r =
    Sim.Splitting.run ~model
      ~config:(Sim.Executor.config ~horizon ())
      ~importance ~levels:1 ~clones:2 ~initial:4000 ~seed:7L ()
  in
  let est = r.Sim.Splitting.estimate in
  if not (Stats.Ci.contains est.Stats.Splitting.ci exact) then
    Alcotest.failf "splitting CI %s misses exact %.4f"
      (Format.asprintf "%a" Stats.Ci.pp est.Stats.Splitting.ci)
      exact;
  (* Crude MC of the same event on an independent seed. *)
  let n = 4000 in
  let root = Prng.Stream.create ~seed:8L in
  let cfg =
    Sim.Executor.config ~horizon
      ~stop:(fun m -> San.Marking.get m up = 0)
      ()
  in
  let hits = ref 0 in
  let base = ref (Prng.Stream.substream root 0) in
  for i = 0 to n - 1 do
    if i > 0 then base := Prng.Stream.successor !base;
    let o =
      Sim.Executor.run ~model ~config:cfg
        ~stream:(Prng.Stream.substream !base 0)
        ~observer:Sim.Observer.nop ()
    in
    if o.Sim.Executor.stopped_early then incr hits
  done;
  let crude = float_of_int !hits /. float_of_int n in
  let sigma_crude = sqrt (crude *. (1.0 -. crude) /. float_of_int n) in
  let sigma_split = sqrt (Stats.Splitting.variance est) in
  let gap = Float.abs (crude -. est.Stats.Splitting.probability) in
  let bound = 3.0 *. sqrt ((sigma_crude ** 2.0) +. (sigma_split ** 2.0)) in
  if gap > bound then
    Alcotest.failf "crude %.4f vs splitting %.4f: gap %.4f > 3σ %.4f" crude
      est.Stats.Splitting.probability gap bound

let test_splitting_mm1k_matches_ctmc () =
  (* Multi-level run against the exact CTMC: P(queue ever reaches 5
     within t=10) for M/M/1/8 at ρ = 0.5. *)
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:8 in
  let model = q.Test_models.q_model and len = q.Test_models.q_len in
  let target = 5 in
  let c = Ctmc.Explore.explore model in
  let exact =
    Ctmc.Measure.ever c ~until:10.0 (fun m -> San.Marking.get m len >= target)
  in
  let r =
    Sim.Splitting.run ~model
      ~config:(Sim.Executor.config ~horizon:10.0 ())
      ~importance:(fun m -> Int.min target (San.Marking.get m len))
      ~levels:target ~clones:3 ~initial:2000 ~seed:11L ()
  in
  let est = r.Sim.Splitting.estimate in
  Alcotest.(check int) "one stage per level" target
    (Array.length est.Stats.Splitting.stages);
  let sigma = sqrt (Stats.Splitting.variance est) in
  let gap = Float.abs (est.Stats.Splitting.probability -. exact) in
  if gap > 3.0 *. sigma then
    Alcotest.failf "splitting %.5g vs exact %.5g: gap %.3g > 3σ = %.3g"
      est.Stats.Splitting.probability exact gap (3.0 *. sigma)

let test_splitting_deterministic_across_domains () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:8 in
  let model = q.Test_models.q_model and len = q.Test_models.q_len in
  let go domains =
    let r =
      Sim.Splitting.run ~domains ~model
        ~config:(Sim.Executor.config ~horizon:10.0 ())
        ~importance:(fun m -> Int.min 5 (San.Marking.get m len))
        ~levels:5 ~clones:3 ~initial:500 ~seed:11L ()
    in
    ( r.Sim.Splitting.estimate.Stats.Splitting.probability,
      r.Sim.Splitting.total_events,
      Array.to_list
        (Array.map
           (fun s -> (s.Stats.Splitting.trials, s.Stats.Splitting.hits))
           r.Sim.Splitting.estimate.Stats.Splitting.stages) )
  in
  let p1, e1, s1 = go 1 and p4, e4, s4 = go 4 in
  Alcotest.(check (float 0.0)) "identical probability" p1 p4;
  Alcotest.(check int) "identical total events" e1 e4;
  Alcotest.(check (list (pair int int))) "identical stage counts" s1 s4

let test_splitting_validation () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:8 in
  let model = q.Test_models.q_model and len = q.Test_models.q_len in
  let cfg = Sim.Executor.config ~horizon:1.0 () in
  let importance m = San.Marking.get m len in
  let rejects name f =
    Alcotest.(check bool) name true
      (match f () with
      | (_ : Sim.Splitting.result) -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "levels 0" (fun () ->
      Sim.Splitting.run ~model ~config:cfg ~importance ~levels:0 ~clones:2
        ~initial:10 ~seed:1L ());
  rejects "clones 0" (fun () ->
      Sim.Splitting.run ~model ~config:cfg ~importance ~levels:2 ~clones:0
        ~initial:10 ~seed:1L ());
  rejects "initial 1" (fun () ->
      Sim.Splitting.run ~model ~config:cfg ~importance ~levels:2 ~clones:2
        ~initial:1 ~seed:1L ());
  rejects "stage explosion" (fun () ->
      Sim.Splitting.run ~model ~config:cfg ~importance ~max_stage_trials:16
        ~levels:3 ~clones:100 ~initial:16 ~seed:1L ())

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_heap_sorts ] in
  Alcotest.run "sim"
    [
      ( "event-heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "bad times" `Quick test_heap_rejects_bad_time;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "checkpoint round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "clones independent" `Quick
            test_checkpoint_clones_independent;
          Alcotest.test_case "two-state vs crude MC" `Slow
            test_splitting_two_state_agrees_with_crude;
          Alcotest.test_case "mm1k vs exact ctmc" `Slow
            test_splitting_mm1k_matches_ctmc;
          Alcotest.test_case "cross-core identical" `Slow
            test_splitting_deterministic_across_domains;
          Alcotest.test_case "validation" `Quick test_splitting_validation;
        ] );
      ( "executor",
        [
          Alcotest.test_case "deterministic clock" `Quick
            test_deterministic_clock;
          Alcotest.test_case "stop predicate" `Quick test_stop_predicate;
          Alcotest.test_case "instantaneous chain" `Quick
            test_instantaneous_chain;
          Alcotest.test_case "stabilization divergence" `Quick
            test_stabilization_divergence_detected;
          Alcotest.test_case "policy keep" `Quick test_policy_keep;
          Alcotest.test_case "policy resample" `Quick test_policy_resample;
          Alcotest.test_case "disabling aborts" `Quick test_disabling_aborts;
          Alcotest.test_case "no double scheduling after setup" `Slow
            test_no_double_scheduling_after_setup;
          Alcotest.test_case "advance tiling" `Quick test_advance_tiling;
        ] );
      ( "rewards",
        [
          Alcotest.test_case "instant right-continuous" `Quick
            test_reward_instant_right_continuous;
          Alcotest.test_case "time average and integral" `Quick
            test_reward_time_average_and_integral;
          Alcotest.test_case "ever and first passage" `Quick
            test_reward_ever_and_first_passage;
          Alcotest.test_case "impulse" `Quick test_reward_impulse;
          Alcotest.test_case "window validation" `Quick
            test_reward_window_validation;
        ] );
      ( "validation",
        [
          Alcotest.test_case "two-state availability" `Slow
            test_two_state_availability;
          Alcotest.test_case "tandem absorption" `Slow
            test_tandem_unreliability;
          Alcotest.test_case "M/M/1/K mean queue" `Slow test_mm1k_mean_queue;
        ] );
      ( "non-exponential",
        [
          Alcotest.test_case "erlang first passage (KS)" `Slow
            test_erlang_first_passage_distribution;
        ] );
      ( "trace",
        [
          Alcotest.test_case "output" `Quick test_trace_output;
          Alcotest.test_case "show marking" `Quick test_trace_show_marking;
        ] );
      ( "trajectory",
        [
          Alcotest.test_case "records the clock" `Quick
            test_trajectory_records_clock;
          Alcotest.test_case "cross-core identical" `Quick
            test_trajectory_cross_core_identical;
          Alcotest.test_case "retention bounds" `Quick
            test_trajectory_retention_bounds;
          Alcotest.test_case "json round-trip" `Quick
            test_trajectory_json_roundtrip;
          Alcotest.test_case "validation" `Quick test_trajectory_validation;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters match outcome" `Quick
            test_metrics_counters_match_outcome;
          Alcotest.test_case "cancellations and never_fired" `Quick
            test_metrics_cancellations_and_never_fired;
          Alcotest.test_case "domain merge" `Slow test_metrics_domain_merge;
          Alcotest.test_case "merge and reset" `Quick
            test_metrics_merge_and_reset;
        ] );
      ( "progress",
        [
          Alcotest.test_case "run reports" `Quick test_run_progress;
          Alcotest.test_case "run_until reports" `Slow
            test_run_until_progress;
        ] );
      ( "steady-state",
        [
          Alcotest.test_case "mm1k batch means" `Slow
            test_steady_mm1k_batch_means;
          Alcotest.test_case "validation" `Quick test_steady_validation;
          Alcotest.test_case "constant reward" `Quick
            test_steady_constant_reward;
        ] );
      ( "runner",
        [
          Alcotest.test_case "reproducible" `Quick test_runner_reproducible;
          Alcotest.test_case "parallel matches" `Slow
            test_runner_parallel_matches_counts;
          Alcotest.test_case "nan handling" `Quick test_runner_nan_handling;
          Alcotest.test_case "run_until precision" `Slow
            test_run_until_precision;
          Alcotest.test_case "run_until cap" `Quick test_run_until_caps_at_max;
          Alcotest.test_case "run_until deterministic" `Slow
            test_run_until_deterministic;
        ] );
      ("properties", props);
    ]
