(* Tests for the stats library: special functions against known values,
   Student-t critical values against tables, Welford against naive moments,
   confidence intervals, and histograms. *)

let close ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %g)" msg expected actual
      tol

(* --- special functions --- *)

let test_log_gamma_known () =
  close "lgamma(1)" 0.0 (Stats.Specfun.log_gamma 1.0);
  close "lgamma(2)" 0.0 (Stats.Specfun.log_gamma 2.0);
  close "lgamma(5) = ln 24" (log 24.0) (Stats.Specfun.log_gamma 5.0);
  close "lgamma(0.5) = ln sqrt(pi)"
    (0.5 *. log Float.pi)
    (Stats.Specfun.log_gamma 0.5);
  (* Γ(10.5) via Γ(x+1) = xΓ(x) down from Γ(0.5). *)
  let g105 =
    List.fold_left
      (fun acc k -> acc +. log (float_of_int k +. 0.5))
      (0.5 *. log Float.pi)
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  close ~tol:1e-8 "lgamma(10.5)" g105 (Stats.Specfun.log_gamma 10.5)

let test_log_gamma_factorials () =
  (* lgamma(n+1) = ln n! for a range of n. *)
  let fact = ref 1.0 in
  for n = 1 to 20 do
    fact := !fact *. float_of_int n;
    close ~tol:1e-8
      (Printf.sprintf "lgamma(%d)" (n + 1))
      (log !fact)
      (Stats.Specfun.log_gamma (float_of_int (n + 1)))
  done

let test_gamma_p_exponential () =
  (* P(1, x) = 1 - e^-x. *)
  List.iter
    (fun x ->
      close ~tol:1e-10
        (Printf.sprintf "P(1,%g)" x)
        (1.0 -. exp (-.x))
        (Stats.Specfun.gamma_p 1.0 x))
    [ 0.0; 0.1; 0.5; 1.0; 2.0; 5.0; 10.0; 50.0 ]

let test_gamma_p_erlang2 () =
  (* P(2, x) = 1 - e^-x (1 + x). *)
  List.iter
    (fun x ->
      close ~tol:1e-10
        (Printf.sprintf "P(2,%g)" x)
        (1.0 -. (exp (-.x) *. (1.0 +. x)))
        (Stats.Specfun.gamma_p 2.0 x))
    [ 0.0; 0.3; 1.0; 3.0; 8.0; 30.0 ]

let test_gamma_p_monotone () =
  let prev = ref (-1.0) in
  for i = 0 to 100 do
    let x = float_of_int i /. 10.0 in
    let p = Stats.Specfun.gamma_p 3.7 x in
    if p < !prev then Alcotest.failf "gamma_p not monotone at %g" x;
    prev := p
  done;
  close ~tol:1e-6 "P(3.7, large) -> 1" 1.0 (Stats.Specfun.gamma_p 3.7 100.0)

let test_beta_inc_uniform () =
  (* I_x(1,1) = x. *)
  List.iter
    (fun x -> close (Printf.sprintf "I_%g(1,1)" x) x (Stats.Specfun.beta_inc 1.0 1.0 x))
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

let test_beta_inc_closed_form () =
  (* I_x(2,2) = 3x^2 - 2x^3. *)
  List.iter
    (fun x ->
      close ~tol:1e-10
        (Printf.sprintf "I_%g(2,2)" x)
        ((3.0 *. x *. x) -. (2.0 *. x *. x *. x))
        (Stats.Specfun.beta_inc 2.0 2.0 x))
    [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let test_beta_inc_symmetry () =
  List.iter
    (fun (a, b, x) ->
      close ~tol:1e-10
        (Printf.sprintf "symmetry a=%g b=%g x=%g" a b x)
        1.0
        (Stats.Specfun.beta_inc a b x +. Stats.Specfun.beta_inc b a (1.0 -. x)))
    [ (2.0, 3.0, 0.2); (0.5, 0.5, 0.7); (5.0, 1.5, 0.45); (10.0, 10.0, 0.9) ]

let test_normal_cdf_known () =
  close ~tol:1e-7 "Phi(0)" 0.5 (Stats.Specfun.std_normal_cdf 0.0);
  close ~tol:1e-7 "Phi(1.959964)" 0.975
    (Stats.Specfun.std_normal_cdf 1.959963984540054);
  close ~tol:1e-7 "Phi(-1)" 0.15865525393145707
    (Stats.Specfun.std_normal_cdf (-1.0));
  close ~tol:1e-7 "Phi(2.326348)" 0.99
    (Stats.Specfun.std_normal_cdf 2.3263478740408408)

let test_normal_quantile_roundtrip () =
  List.iter
    (fun p ->
      close ~tol:1e-9
        (Printf.sprintf "Phi(Phi^-1(%g))" p)
        p
        (Stats.Specfun.std_normal_cdf (Stats.Specfun.std_normal_quantile p)))
    [ 1e-6; 0.001; 0.025; 0.2; 0.5; 0.8; 0.975; 0.999; 1.0 -. 1e-6 ]

let test_erf_known () =
  close ~tol:1e-9 "erf(0)" 0.0 (Stats.Specfun.erf 0.0);
  close ~tol:1e-7 "erf(1)" 0.8427007929497149 (Stats.Specfun.erf 1.0);
  close ~tol:1e-7 "erf(-1)" (-0.8427007929497149) (Stats.Specfun.erf (-1.0));
  close ~tol:1e-7 "erfc(2)" 0.004677734981063127 (Stats.Specfun.erfc 2.0)

(* --- Student t --- *)

let test_t_critical_table () =
  (* Values from standard t tables, two-sided 95%. *)
  List.iter
    (fun (df, expected) ->
      close ~tol:2e-3
        (Printf.sprintf "t(df=%g)" df)
        expected
        (Stats.Student_t.critical ~df ~confidence:0.95))
    [
      (1.0, 12.706); (2.0, 4.303); (5.0, 2.571); (10.0, 2.228); (29.0, 2.045);
      (100.0, 1.984); (1000.0, 1.962);
    ]

let test_t_critical_99 () =
  List.iter
    (fun (df, expected) ->
      close ~tol:2e-3
        (Printf.sprintf "t99(df=%g)" df)
        expected
        (Stats.Student_t.critical ~df ~confidence:0.99))
    [ (5.0, 4.032); (10.0, 3.169); (30.0, 2.750) ]

let test_t_cdf_symmetry () =
  List.iter
    (fun x ->
      close ~tol:1e-10
        (Printf.sprintf "cdf(%g)+cdf(-%g)=1" x x)
        1.0
        (Stats.Student_t.cdf ~df:7.0 x +. Stats.Student_t.cdf ~df:7.0 (-.x)))
    [ 0.0; 0.5; 1.3; 2.6; 10.0 ]

let test_t_quantile_roundtrip () =
  List.iter
    (fun p ->
      close ~tol:1e-8
        (Printf.sprintf "cdf(q(%g))" p)
        p
        (Stats.Student_t.cdf ~df:12.0 (Stats.Student_t.quantile ~df:12.0 p)))
    [ 0.01; 0.1; 0.5; 0.9; 0.99 ]

(* --- Welford --- *)

let naive_mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let naive_var xs =
  let m = naive_mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs - 1)

let test_welford_simple () =
  let acc = Stats.Welford.create () in
  List.iter (Stats.Welford.add acc) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  close "mean" 5.0 (Stats.Welford.mean acc);
  close ~tol:1e-9 "variance" (32.0 /. 7.0) (Stats.Welford.variance acc);
  close "min" 2.0 (Stats.Welford.min_value acc);
  close "max" 9.0 (Stats.Welford.max_value acc);
  Alcotest.(check int) "count" 8 (Stats.Welford.count acc)

let test_welford_empty () =
  let acc = Stats.Welford.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Welford.mean acc));
  Alcotest.(check bool) "variance nan" true
    (Float.is_nan (Stats.Welford.variance acc))

let prop_welford_matches_naive =
  QCheck2.Test.make ~name:"welford matches naive moments" ~count:200
    QCheck2.Gen.(array_size (int_range 2 200) (float_range (-1e4) 1e4))
    (fun xs ->
      let acc = Stats.Welford.create () in
      Array.iter (Stats.Welford.add acc) xs;
      Float.abs (Stats.Welford.mean acc -. naive_mean xs) < 1e-6
      && Float.abs (Stats.Welford.variance acc -. naive_var xs)
         < 1e-4 *. (1.0 +. naive_var xs))

let prop_welford_merge =
  QCheck2.Test.make ~name:"merge equals concatenation" ~count:200
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 100) (float_range (-1e3) 1e3))
        (array_size (int_range 1 100) (float_range (-1e3) 1e3)))
    (fun (xs, ys) ->
      let a = Stats.Welford.create () in
      Array.iter (Stats.Welford.add a) xs;
      let b = Stats.Welford.create () in
      Array.iter (Stats.Welford.add b) ys;
      let merged = Stats.Welford.merge a b in
      let whole = Stats.Welford.create () in
      Array.iter (Stats.Welford.add whole) (Array.append xs ys);
      Stats.Welford.count merged = Stats.Welford.count whole
      && Float.abs (Stats.Welford.mean merged -. Stats.Welford.mean whole)
         < 1e-8 *. (1.0 +. Float.abs (Stats.Welford.mean whole))
      && (Stats.Welford.count whole < 2
         || Float.abs
              (Stats.Welford.variance merged -. Stats.Welford.variance whole)
            < 1e-6 *. (1.0 +. Stats.Welford.variance whole)))

(* --- confidence intervals --- *)

let test_ci_known_sample () =
  (* n=4, mean 5, sd = sqrt(20/3); t(3, .95) = 3.182. *)
  let ci = Stats.Ci.of_samples [| 2.0; 4.0; 6.0; 8.0 |] in
  close "ci mean" 5.0 ci.Stats.Ci.mean;
  let sd = sqrt (20.0 /. 3.0) in
  close ~tol:1e-3 "ci half width" (3.182 *. sd /. 2.0) ci.Stats.Ci.half_width;
  Alcotest.(check bool) "contains mean" true (Stats.Ci.contains ci 5.0);
  Alcotest.(check bool) "excludes far point" false (Stats.Ci.contains ci 50.0)

let test_ci_single_sample () =
  let ci = Stats.Ci.of_samples [| 3.5 |] in
  close "mean of single" 3.5 ci.Stats.Ci.mean;
  Alcotest.(check bool) "half width nan" true
    (Float.is_nan ci.Stats.Ci.half_width)

let test_ci_coverage () =
  (* 95% CI over standard-normal samples should contain 0 about 95% of the
     time; with 400 trials the count should land well inside [355, 399]. *)
  let s = Prng.Stream.create ~seed:2024L in
  let trials = 400 in
  let hits = ref 0 in
  for _ = 1 to trials do
    let samples =
      Array.init 20 (fun _ ->
          Dist.sample (Dist.Normal { mean = 0.0; stddev = 1.0 }) s)
    in
    if Stats.Ci.contains (Stats.Ci.of_samples samples) 0.0 then incr hits
  done;
  Alcotest.(check bool)
    (Printf.sprintf "coverage %d/400 in [355,400]" !hits)
    true
    (!hits >= 355)

(* --- splitting estimator --- *)

let test_splitting_point_estimate () =
  let e =
    Stats.Splitting.estimate
      [|
        { Stats.Splitting.trials = 1000; hits = 100 };
        { trials = 400; hits = 40 };
        { trials = 80; hits = 8 };
      |]
  in
  close "product of ratios" 1e-3 e.Stats.Splitting.probability;
  close "ci mean is the estimate" 1e-3 e.Stats.Splitting.ci.Stats.Ci.mean;
  (* Σ (1-p)/(n·p) with p = 0.1 at n = 1000, 400, 80. *)
  let expect_rv = (0.9 /. 100.0) +. (0.9 /. 40.0) +. (0.9 /. 8.0) in
  close "relative variance" expect_rv e.Stats.Splitting.rel_variance;
  close "absolute variance" (expect_rv *. 1e-6) (Stats.Splitting.variance e);
  (* Smallest stage has 80 trials: t(79) ≈ 1.99. *)
  let t = Stats.Student_t.critical ~df:79.0 ~confidence:0.95 in
  close ~tol:1e-12 "half width"
    (t *. 1e-3 *. sqrt expect_rv)
    e.Stats.Splitting.ci.Stats.Ci.half_width

let test_splitting_single_stage_matches_binomial () =
  (* One stage is a plain binomial proportion: relative variance
     (1-p)/(np). *)
  let e =
    Stats.Splitting.estimate [| { Stats.Splitting.trials = 500; hits = 50 } |]
  in
  close "p" 0.1 e.Stats.Splitting.probability;
  close "binomial rel var" (0.9 /. 50.0) e.Stats.Splitting.rel_variance

let test_splitting_zero_hits () =
  let e =
    Stats.Splitting.estimate ~confidence:0.95
      [|
        { Stats.Splitting.trials = 1000; hits = 200 }; { trials = 600; hits = 0 };
      |]
  in
  close "estimate is zero" 0.0 e.Stats.Splitting.probability;
  Alcotest.(check bool) "rel variance undefined" true
    (Float.is_nan e.Stats.Splitting.rel_variance);
  close "variance zero" 0.0 (Stats.Splitting.variance e);
  (* Upper bound: 0.2 · (-ln 0.05)/600 — the rule of three. *)
  close ~tol:1e-12 "rule-of-three upper bound"
    (0.2 *. -.log 0.05 /. 600.0)
    (Stats.Ci.upper e.Stats.Splitting.ci)

let test_splitting_validation () =
  let rejects name stages =
    Alcotest.(check bool) name true
      (match Stats.Splitting.estimate stages with
      | (_ : Stats.Splitting.estimate) -> false
      | exception Invalid_argument _ -> true)
  in
  rejects "empty" [||];
  rejects "zero trials" [| { Stats.Splitting.trials = 0; hits = 0 } |];
  rejects "hits above trials" [| { Stats.Splitting.trials = 5; hits = 6 } |];
  rejects "negative hits" [| { Stats.Splitting.trials = 5; hits = -1 } |];
  rejects "stage after a dry stage"
    [|
      { Stats.Splitting.trials = 10; hits = 0 }; { trials = 10; hits = 1 };
    |]

(* --- Kolmogorov-Smirnov --- *)

let test_ks_perfect_grid () =
  (* Sample exactly at the (i - 0.5)/n quantiles of U(0,1): D = 1/(2n). *)
  let n = 100 in
  let xs = Array.init n (fun i -> (float_of_int i +. 0.5) /. float_of_int n) in
  close ~tol:1e-12 "grid statistic" (0.5 /. float_of_int n)
    (Stats.Ks.statistic ~cdf:(fun x -> x) xs)

let test_ks_accepts_true_distribution () =
  let s = Prng.Stream.create ~seed:271L in
  let d = Dist.Exponential { rate = 2.0 } in
  let xs = Array.init 5_000 (fun _ -> Dist.sample d s) in
  let stat = Stats.Ks.statistic ~cdf:(Dist.cdf d) xs in
  let p = Stats.Ks.significance ~n:5_000 stat in
  if p < 0.01 then
    Alcotest.failf "true distribution rejected: D=%.4f p=%.4g" stat p

let test_ks_rejects_wrong_distribution () =
  let s = Prng.Stream.create ~seed:271L in
  let xs =
    Array.init 5_000 (fun _ ->
        Dist.sample (Dist.Exponential { rate = 2.0 }) s)
  in
  let wrong = Dist.Exponential { rate = 2.5 } in
  let stat = Stats.Ks.statistic ~cdf:(Dist.cdf wrong) xs in
  let p = Stats.Ks.significance ~n:5_000 stat in
  if p > 1e-4 then
    Alcotest.failf "wrong distribution accepted: D=%.4f p=%.4g" stat p

let test_ks_significance_monotone () =
  let prev = ref 1.1 in
  List.iter
    (fun d ->
      let p = Stats.Ks.significance ~n:1000 d in
      if p > !prev +. 1e-12 then Alcotest.failf "p not decreasing at D=%g" d;
      prev := p)
    [ 0.001; 0.01; 0.02; 0.05; 0.1; 0.2 ]

(* --- histogram --- *)

let test_histogram_basic () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.9; 9.99; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "total" 7 (Stats.Histogram.count h);
  Alcotest.(check int) "bin 0" 1 (Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "bin 1" 2 (Stats.Histogram.bin_count h 1);
  Alcotest.(check int) "bin 9" 1 (Stats.Histogram.bin_count h 9);
  Alcotest.(check int) "underflow" 1 (Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Stats.Histogram.overflow h)

let test_histogram_fraction_below () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:20 in
  let s = Prng.Stream.create ~seed:99L in
  for _ = 1 to 50_000 do
    Stats.Histogram.add h (Prng.Stream.float s)
  done;
  List.iter
    (fun x ->
      let f = Stats.Histogram.fraction_below h x in
      if Float.abs (f -. x) > 0.01 then
        Alcotest.failf "empirical cdf at %g is %g" x f)
    [ 0.1; 0.25; 0.5; 0.75; 0.9 ]

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_welford_matches_naive; prop_welford_merge ]
  in
  Alcotest.run "stats"
    [
      ( "specfun",
        [
          Alcotest.test_case "log_gamma known" `Quick test_log_gamma_known;
          Alcotest.test_case "log_gamma factorials" `Quick
            test_log_gamma_factorials;
          Alcotest.test_case "gamma_p exponential" `Quick
            test_gamma_p_exponential;
          Alcotest.test_case "gamma_p erlang-2" `Quick test_gamma_p_erlang2;
          Alcotest.test_case "gamma_p monotone" `Quick test_gamma_p_monotone;
          Alcotest.test_case "beta_inc uniform" `Quick test_beta_inc_uniform;
          Alcotest.test_case "beta_inc closed form" `Quick
            test_beta_inc_closed_form;
          Alcotest.test_case "beta_inc symmetry" `Quick test_beta_inc_symmetry;
          Alcotest.test_case "normal cdf known" `Quick test_normal_cdf_known;
          Alcotest.test_case "normal quantile roundtrip" `Quick
            test_normal_quantile_roundtrip;
          Alcotest.test_case "erf known" `Quick test_erf_known;
        ] );
      ( "student-t",
        [
          Alcotest.test_case "critical values 95%" `Quick test_t_critical_table;
          Alcotest.test_case "critical values 99%" `Quick test_t_critical_99;
          Alcotest.test_case "cdf symmetry" `Quick test_t_cdf_symmetry;
          Alcotest.test_case "quantile roundtrip" `Quick
            test_t_quantile_roundtrip;
        ] );
      ( "welford",
        [
          Alcotest.test_case "known sample" `Quick test_welford_simple;
          Alcotest.test_case "empty accumulator" `Quick test_welford_empty;
        ] );
      ( "ci",
        [
          Alcotest.test_case "known sample" `Quick test_ci_known_sample;
          Alcotest.test_case "single sample" `Quick test_ci_single_sample;
          Alcotest.test_case "coverage" `Slow test_ci_coverage;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "point estimate and ci" `Quick
            test_splitting_point_estimate;
          Alcotest.test_case "single stage is binomial" `Quick
            test_splitting_single_stage_matches_binomial;
          Alcotest.test_case "zero hits" `Quick test_splitting_zero_hits;
          Alcotest.test_case "validation" `Quick test_splitting_validation;
        ] );
      ( "kolmogorov-smirnov",
        [
          Alcotest.test_case "grid statistic" `Quick test_ks_perfect_grid;
          Alcotest.test_case "accepts true" `Slow
            test_ks_accepts_true_distribution;
          Alcotest.test_case "rejects wrong" `Slow
            test_ks_rejects_wrong_distribution;
          Alcotest.test_case "significance monotone" `Quick
            test_ks_significance_monotone;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "binning" `Quick test_histogram_basic;
          Alcotest.test_case "empirical cdf" `Slow test_histogram_fraction_below;
        ] );
      ("properties", props);
    ]
