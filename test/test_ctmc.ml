(* Tests for the ctmc library: state-space generation (including vanishing
   markings), uniformization against closed forms, steady state, reward
   measures, and cross-validation against the simulator. *)

let stream seed = Prng.Stream.create ~seed:(Int64.of_int seed)

let close ?(tol = 1e-8) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g (tol %g)" msg expected actual
      tol

(* --- exploration --- *)

let test_two_state_space () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:2.0 in
  let c = Ctmc.Explore.explore ts.Test_models.ts_model in
  Alcotest.(check int) "two states" 2 (Ctmc.Explore.n_states c);
  Alcotest.(check int) "deterministic initial" 1
    (List.length (Ctmc.Explore.initial_dist c));
  let up_flags =
    Ctmc.Explore.eval c (fun m ->
        float_of_int (San.Marking.get m ts.Test_models.up))
  in
  (* One up state, one down state, each with one outgoing transition. *)
  let n_up = Array.fold_left ( +. ) 0.0 up_flags in
  close "one up state" 1.0 n_up;
  for i = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "state %d has one transition" i)
      1
      (List.length (Ctmc.Explore.transitions c i))
  done

let test_mm1k_space_and_rates () =
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:5 in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  Alcotest.(check int) "k+1 states" 6 (Ctmc.Explore.n_states c);
  (* Interior states have exit rate lambda + mu; boundaries one of them. *)
  let lens =
    Ctmc.Explore.eval c (fun m ->
        float_of_int (San.Marking.get m q.Test_models.q_len))
  in
  Array.iteri
    (fun i len ->
      let expected =
        if len = 0.0 then 2.0 else if len = 5.0 then 3.0 else 5.0
      in
      close (Printf.sprintf "exit rate of state %d" i) expected
        (Ctmc.Explore.exit_rate c i))
    lens

let test_non_markovian_rejected () =
  let b = San.Model.Builder.create "det" in
  let p = San.Model.Builder.int_place b "p" in
  San.Model.Builder.timed b ~name:"d"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun m -> San.Marking.get m p = 0)
    ~reads:[ San.Place.P p ]
    [
      San.Activity.make_case ~weight:(fun _ -> 1.0)
        (San.Effect.Ops [ San.Effect.Set (p, San.Effect.Int 1) ]);
    ];
  let model = San.Model.Builder.build b in
  Alcotest.(check bool) "raises Non_markovian" true
    (match Ctmc.Explore.explore model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Ctmc.Explore.Non_markovian _ -> true)

let test_state_limit () =
  (* Unbounded birth process: exploration must hit the cap. *)
  let b = San.Model.Builder.create "birth" in
  let p = San.Model.Builder.int_place b "n" in
  San.Model.Builder.timed_exp b ~name:"birth"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P p ]
    (fun _ m -> San.Marking.add m p 1);
  let model = San.Model.Builder.build b in
  Alcotest.(check bool) "raises Too_many_states" true
    (match Ctmc.Explore.explore ~max_states:100 model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Ctmc.Explore.Too_many_states 100 -> true
    | exception Ctmc.Explore.Too_many_states _ -> true)

let test_vanishing_loop_detected () =
  let b = San.Model.Builder.create "vloop" in
  let p = San.Model.Builder.int_place b ~init:1 "p" in
  San.Model.Builder.instantaneous b ~name:"spin"
    ~enabled:(fun m -> San.Marking.get m p = 1)
    ~reads:[ San.Place.P p ]
    (fun _ m -> San.Marking.set m p 1);
  let model = San.Model.Builder.build b in
  Alcotest.(check bool) "raises Vanishing_loop" true
    (match Ctmc.Explore.explore model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Ctmc.Explore.Vanishing_loop _ -> true)

(* Vanishing markings with probabilistic branching: a timed event enables
   an instantaneous activity with two cases (0.25 / 0.75) leading to two
   different stable states. *)
let branching_model () =
  let b = San.Model.Builder.create "branch" in
  let fired = San.Model.Builder.int_place b "fired" in
  let sort = San.Model.Builder.int_place b "sort" in
  San.Model.Builder.timed_exp b ~name:"pulse"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m fired = 0)
    ~reads:[ San.Place.P fired ]
    (fun _ m -> San.Marking.set m fired 1);
  San.Model.Builder.activity b ~name:"classify"
    ~timing:San.Activity.Instantaneous
    ~enabled:(fun m -> San.Marking.get m fired = 1 && San.Marking.get m sort = 0)
    ~reads:[ San.Place.P fired; San.Place.P sort ]
    [
      San.Activity.make_case ~weight:(fun _ -> 0.25)
        (San.Effect.Ops [ San.Effect.Set (sort, San.Effect.Int 1) ]);
      San.Activity.make_case ~weight:(fun _ -> 0.75)
        (San.Effect.Ops [ San.Effect.Set (sort, San.Effect.Int 2) ]);
    ];
  (San.Model.Builder.build b, sort)

let test_vanishing_branching () =
  let model, sort = branching_model () in
  let c = Ctmc.Explore.explore model in
  (* States: initial, sort=1, sort=2 (fired=1 & sort=0 is vanishing). *)
  Alcotest.(check int) "three stable states" 3 (Ctmc.Explore.n_states c);
  let p1 =
    Ctmc.Measure.instant c ~at:50.0 (fun m ->
        if San.Marking.get m sort = 1 then 1.0 else 0.0)
  in
  let p2 =
    Ctmc.Measure.instant c ~at:50.0 (fun m ->
        if San.Marking.get m sort = 2 then 1.0 else 0.0)
  in
  close ~tol:1e-6 "case 1 probability" 0.25 p1;
  close ~tol:1e-6 "case 2 probability" 0.75 p2

(* --- transient --- *)

let test_transient_two_state () =
  let lambda = 1.0 and mu = 4.0 in
  let ts = Test_models.two_state ~lambda ~mu in
  let c = Ctmc.Explore.explore ts.Test_models.ts_model in
  List.iter
    (fun t ->
      let avail =
        Ctmc.Measure.instant c ~at:t (fun m ->
            if San.Marking.get m ts.Test_models.up = 1 then 1.0 else 0.0)
      in
      close ~tol:1e-8
        (Printf.sprintf "availability at %g" t)
        (Test_models.two_state_availability ~lambda ~mu t)
        avail)
    [ 0.0; 0.1; 0.5; 1.0; 2.0; 10.0; 100.0 ]

let test_transient_tandem () =
  let r1 = 2.0 and r2 = 5.0 in
  let td = Test_models.tandem ~r1 ~r2 in
  let c = Ctmc.Explore.explore td.Test_models.td_model in
  List.iter
    (fun t ->
      let absorbed =
        Ctmc.Measure.instant c ~at:t (fun m ->
            if San.Marking.get m td.Test_models.stage = 2 then 1.0 else 0.0)
      in
      close ~tol:1e-8
        (Printf.sprintf "absorbed by %g" t)
        (Test_models.tandem_absorbed ~r1 ~r2 t)
        absorbed)
    [ 0.2; 0.5; 1.0; 3.0 ]

let test_accumulated_two_state () =
  (* Expected up-time over [0, t], closed form. *)
  let lambda = 1.0 and mu = 4.0 in
  let ts = Test_models.two_state ~lambda ~mu in
  let c = Ctmc.Explore.explore ts.Test_models.ts_model in
  let t = 2.0 in
  let avg =
    Ctmc.Measure.interval_average c ~until:t (fun m ->
        if San.Marking.get m ts.Test_models.up = 1 then 1.0 else 0.0)
  in
  let s = lambda +. mu in
  let expected =
    ((mu /. s *. t) +. (lambda /. (s *. s) *. (1.0 -. exp (-.s *. t)))) /. t
  in
  close ~tol:1e-8 "interval availability" expected avg

let test_interval_average_window () =
  (* Windowed average [a,b] = (acc(b) - acc(a)) / (b - a); check it against
     the closed form for the two-state model. *)
  let lambda = 1.0 and mu = 4.0 in
  let ts = Test_models.two_state ~lambda ~mu in
  let c = Ctmc.Explore.explore ts.Test_models.ts_model in
  let a = 1.0 and bnd = 3.0 in
  let avg =
    Ctmc.Measure.interval_average c ~from_:a ~until:bnd (fun m ->
        if San.Marking.get m ts.Test_models.up = 1 then 1.0 else 0.0)
  in
  (* closed form: integral of A(t) over [a,b] / (b-a). *)
  let s = lambda +. mu in
  let integral t =
    (mu /. s *. t) +. (lambda /. (s *. s) *. (1.0 -. exp (-.s *. t)))
  in
  close ~tol:1e-8 "windowed availability"
    ((integral bnd -. integral a) /. (bnd -. a))
    avg

let test_accumulated_sums_to_t () =
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:4 in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  List.iter
    (fun t ->
      let acc = Ctmc.Transient.accumulated c ~t in
      close ~tol:1e-9
        (Printf.sprintf "accumulated mass at %g" t)
        t
        (Array.fold_left ( +. ) 0.0 acc))
    [ 0.5; 3.0; 25.0 ]

(* --- steady state --- *)

let test_steady_mm1k () =
  let lambda = 2.0 and mu = 3.0 and k = 5 in
  let q = Test_models.mm1k ~lambda ~mu ~k in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  let pi = Ctmc.Steady.distribution c in
  let lens =
    Ctmc.Explore.eval c (fun m ->
        float_of_int (San.Marking.get m q.Test_models.q_len))
  in
  let expected = Test_models.mm1k_steady ~lambda ~mu ~k in
  Array.iteri
    (fun i p ->
      close ~tol:1e-8
        (Printf.sprintf "pi(%d customers)" (int_of_float lens.(i)))
        expected.(int_of_float lens.(i))
        p)
    pi

let test_steady_absorbing () =
  let td = Test_models.tandem ~r1:2.0 ~r2:5.0 in
  let c = Ctmc.Explore.explore td.Test_models.td_model in
  let absorbed =
    Ctmc.Measure.steady_average c (fun m ->
        if San.Marking.get m td.Test_models.stage = 2 then 1.0 else 0.0)
  in
  close ~tol:1e-6 "absorbing chain ends absorbed" 1.0 absorbed

(* --- measures: ever / unreliability --- *)

let test_ever_equals_transient_absorbed () =
  (* For the M/M/1/K queue, P(queue ever full by t) via the absorbing
     transform must dominate P(queue full at t) and be monotone in t. *)
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:3 in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  let full m = San.Marking.get m q.Test_models.q_len = 3 in
  let prev = ref 0.0 in
  List.iter
    (fun t ->
      let ever = Ctmc.Measure.ever c ~until:t full in
      let at =
        Ctmc.Measure.instant c ~at:t (fun m -> if full m then 1.0 else 0.0)
      in
      Alcotest.(check bool)
        (Printf.sprintf "ever >= instant at %g" t)
        true (ever +. 1e-12 >= at);
      Alcotest.(check bool)
        (Printf.sprintf "monotone at %g" t)
        true
        (ever +. 1e-12 >= !prev);
      prev := ever)
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ]

let test_ever_tandem_exact () =
  let r1 = 2.0 and r2 = 5.0 in
  let td = Test_models.tandem ~r1 ~r2 in
  let c = Ctmc.Explore.explore td.Test_models.td_model in
  List.iter
    (fun t ->
      close ~tol:1e-8
        (Printf.sprintf "ever absorbed by %g" t)
        (Test_models.tandem_absorbed ~r1 ~r2 t)
        (Ctmc.Measure.ever c ~until:t (fun m ->
             San.Marking.get m td.Test_models.stage = 2)))
    [ 0.3; 1.0; 2.0 ]

(* --- absorption analysis --- *)

let test_mtta_tandem () =
  (* Mean time to absorption of the 0 -> 1 -> 2 chain: 1/r1 + 1/r2. *)
  let td = Test_models.tandem ~r1:2.0 ~r2:5.0 in
  let c = Ctmc.Explore.explore td.Test_models.td_model in
  Alcotest.(check int) "one absorbing state" 1
    (List.length (Ctmc.Absorb.absorbing_states c));
  close ~tol:1e-9 "MTTA" (0.5 +. 0.2) (Ctmc.Absorb.mean_time_to_absorption c)

let test_mtta_repairable_detour () =
  (* 0 -> 1 at rate a; from 1, repair back to 0 at rate b or absorb at
     rate d.  MTTA from 0 solves t0 = 1/a + t1, t1 = 1/(b+d) + b/(b+d) t0:
     t0 = ((b+d)/d) (1/a) + 1/d. *)
  let a = 2.0 and b = 3.0 and d = 1.0 in
  let bld = San.Model.Builder.create "detour" in
  let st = San.Model.Builder.int_place bld "st" in
  let move name rate src dst =
    San.Model.Builder.timed_exp bld ~name
      ~rate:(fun _ -> rate)
      ~enabled:(fun m -> San.Marking.get m st = src)
      ~reads:[ San.Place.P st ]
      (fun _ m -> San.Marking.set m st dst)
  in
  move "go" a 0 1;
  move "back" b 1 0;
  move "die" d 1 2;
  let c = Ctmc.Explore.explore (San.Model.Builder.build bld) in
  let expected = ((b +. d) /. d /. a) +. (1.0 /. d) in
  close ~tol:1e-9 "MTTA with repair detour" expected
    (Ctmc.Absorb.mean_time_to_absorption c)

let test_absorption_probabilities () =
  (* From 0: absorb left at rate 1 or right at rate 3 -> P(right) = 0.75. *)
  let bld = San.Model.Builder.create "race" in
  let st = San.Model.Builder.int_place bld ~init:1 "st" in
  San.Model.Builder.timed_exp bld ~name:"left"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m st = 1)
    ~reads:[ San.Place.P st ]
    (fun _ m -> San.Marking.set m st 0);
  San.Model.Builder.timed_exp bld ~name:"right"
    ~rate:(fun _ -> 3.0)
    ~enabled:(fun m -> San.Marking.get m st = 1)
    ~reads:[ San.Place.P st ]
    (fun _ m -> San.Marking.set m st 2);
  let model = San.Model.Builder.build bld in
  let c = Ctmc.Explore.explore model in
  let value_of i =
    San.Marking.get (Ctmc.Explore.marking c i) (San.Model.find_place model "st")
  in
  close ~tol:1e-9 "P(absorb right)" 0.75
    (Ctmc.Absorb.absorption_probabilities c ~target:(fun i -> value_of i = 2));
  close ~tol:1e-9 "P(absorb left)" 0.25
    (Ctmc.Absorb.absorption_probabilities c ~target:(fun i -> value_of i = 0));
  Alcotest.(check int) "two absorbing states" 2
    (List.length (Ctmc.Absorb.absorbing_states c))

let test_mtta_requires_absorbing () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:3 in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  Alcotest.(check bool) "irreducible chain rejected" true
    (match Ctmc.Absorb.mean_time_to_absorption c with
    | (_ : float) -> false
    | exception Failure _ -> true)

let test_mtta_matches_simulation () =
  let td = Test_models.tandem ~r1:1.5 ~r2:0.8 in
  let c = Ctmc.Explore.explore td.Test_models.td_model in
  let exact = Ctmc.Absorb.mean_time_to_absorption c in
  let spec =
    Sim.Runner.spec ~model:td.Test_models.td_model ~horizon:200.0
      ~stop:(fun m -> San.Marking.get m td.Test_models.stage = 2)
      [
        Sim.Reward.first_passage ~name:"absorption time" (fun m ->
            San.Marking.get m td.Test_models.stage = 2);
      ]
  in
  let r = List.hd (Sim.Runner.run ~seed:77L ~reps:4000 spec) in
  if not (Stats.Ci.contains r.Sim.Runner.ci exact) then
    Alcotest.failf "MTTA: CI %s misses exact %.5f"
      (Format.asprintf "%a" Stats.Ci.pp r.Sim.Runner.ci)
      exact

(* --- cross-validation: simulator vs analytical solution --- *)

let test_sim_matches_ctmc_mm1k () =
  let q = Test_models.mm1k ~lambda:3.0 ~mu:4.0 ~k:4 in
  let c = Ctmc.Explore.explore q.Test_models.q_model in
  let mean_len m = float_of_int (San.Marking.get m q.Test_models.q_len) in
  let exact_at_2 = Ctmc.Measure.instant c ~at:2.0 mean_len in
  let exact_avg = Ctmc.Measure.interval_average c ~until:5.0 mean_len in
  let exact_ever_full =
    Ctmc.Measure.ever c ~until:5.0 (fun m ->
        San.Marking.get m q.Test_models.q_len = 4)
  in
  let spec =
    Sim.Runner.spec ~model:q.Test_models.q_model ~horizon:5.0
      [
        Sim.Reward.instant ~name:"len@2" ~at:2.0 mean_len;
        Sim.Reward.time_average ~name:"avg len" ~until:5.0 mean_len;
        Sim.Reward.ever ~name:"ever full" ~until:5.0 (fun m ->
            San.Marking.get m q.Test_models.q_len = 4);
      ]
  in
  let results = Sim.Runner.run ~seed:2025L ~reps:20_000 spec in
  List.iter2
    (fun (label, exact) (r : Sim.Runner.result) ->
      if not (Stats.Ci.contains r.ci exact) then
        Alcotest.failf "%s: CI %s misses exact %.6f" label
          (Format.asprintf "%a" Stats.Ci.pp r.ci)
          exact)
    [
      ("instant mean length", exact_at_2);
      ("interval mean length", exact_avg);
      ("ever full", exact_ever_full);
    ]
    results

let test_sim_matches_ctmc_branching () =
  let model, sort = branching_model () in
  let c = Ctmc.Explore.explore model in
  let pred m = San.Marking.get m sort = 1 in
  let exact = Ctmc.Measure.ever c ~until:3.0 pred in
  let spec =
    Sim.Runner.spec ~model ~horizon:3.0
      [ Sim.Reward.ever ~name:"sort=1" ~until:3.0 pred ]
  in
  let r = List.hd (Sim.Runner.run ~seed:31L ~reps:4000 spec) in
  if not (Stats.Ci.contains r.Sim.Runner.ci exact) then
    Alcotest.failf "branching: CI %s misses exact %.6f"
      (Format.asprintf "%a" Stats.Ci.pp r.Sim.Runner.ci)
      exact

(* Randomized cross-validation: for random bounded queues, the simulated
   instant queue length must sit near the exact transient solution.  The
   tolerance is 5 standard errors plus a little slack, so a false alarm is
   vanishingly unlikely while real bias (like the double-scheduling bug
   this harness once caught) trips it immediately. *)
let prop_random_queue_sim_matches_ctmc =
  QCheck2.Test.make ~name:"random M/M/1/K: sim matches CTMC" ~count:20
    QCheck2.Gen.(
      tup4 (float_range 0.5 4.0) (float_range 0.5 4.0) (int_range 2 5)
        (float_range 0.3 4.0))
    (fun (lambda, mu, k, t) ->
      let q = Test_models.mm1k ~lambda ~mu ~k in
      let c = Ctmc.Explore.explore q.Test_models.q_model in
      let f m = float_of_int (San.Marking.get m q.Test_models.q_len) in
      let exact = Ctmc.Measure.instant c ~at:t f in
      let spec =
        Sim.Runner.spec ~model:q.Test_models.q_model ~horizon:t
          [ Sim.Reward.instant ~name:"len" ~at:t f ]
      in
      let r = List.hd (Sim.Runner.run ~seed:99L ~reps:1500 spec) in
      let sem = Stats.Welford.sem r.Sim.Runner.welford in
      let err = Float.abs (r.Sim.Runner.ci.Stats.Ci.mean -. exact) in
      if err <= (5.0 *. sem) +. 1e-3 then true
      else
        QCheck2.Test.fail_reportf
          "lambda=%.2f mu=%.2f k=%d t=%.2f: exact %.4f, sim %.4f (err %.4f,            sem %.4f)"
          lambda mu k t exact r.Sim.Runner.ci.Stats.Ci.mean err sem)

let test_stream_sampling_effect_rejected () =
  (* An effect that consumes randomness cannot be explored analytically. *)
  let b = San.Model.Builder.create "rngeff" in
  let p = San.Model.Builder.int_place b "p" in
  San.Model.Builder.timed_exp b ~name:"draw"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m p = 0)
    ~reads:[ San.Place.P p ]
    (fun ctx m ->
      let s = San.Activity.stream_exn ctx in
      San.Marking.set m p (1 + Prng.Stream.int s 3));
  let model = San.Model.Builder.build b in
  Alcotest.(check bool) "raises" true
    (match Ctmc.Explore.explore model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Failure _ -> true);
  (* ... but simulates fine. *)
  let cfg = Sim.Executor.config ~horizon:10.0 () in
  let outcome =
    Sim.Executor.run ~model ~config:cfg ~stream:(stream 3)
      ~observer:Sim.Observer.nop ()
  in
  Alcotest.(check bool) "simulated" true
    (San.Marking.get outcome.Sim.Executor.final p >= 1)

(* --- symmetry-driven lumping --- *)

(* [n] exchangeable two-state machines composed with Compose.replicate:
   the full chain has 2^n states, the canonical-ordering quotient n+1. *)
let replicated_farm n =
  let b = San.Model.Builder.create "farm" in
  let root = Compose.Ctx.root b "farm" in
  let ups =
    Compose.replicate root "node" ~n (fun ctx _ ->
        let up = Compose.Ctx.int_place ctx ~init:1 "up" in
        Compose.Ctx.timed_exp ctx ~name:"fail"
          ~rate:(fun _ -> 1.0)
          ~enabled:(fun m -> San.Marking.get m up = 1)
          ~reads:[ San.Place.P up ]
          (fun _ m -> San.Marking.set m up 0);
        Compose.Ctx.timed_exp ctx ~name:"repair"
          ~rate:(fun _ -> 2.5)
          ~enabled:(fun m -> San.Marking.get m up = 0)
          ~reads:[ San.Place.P up ]
          (fun _ m -> San.Marking.set m up 1);
        up)
  in
  (San.Model.Builder.build b, Compose.info root, ups)

let test_lumped_measures_agree () =
  let n = 6 in
  let model, info, ups = replicated_farm n in
  let groups = Analysis.Symmetry.detect model info in
  (match groups with
  | [ g ] -> Alcotest.(check int) "six copies" n g.Analysis.Symmetry.copies
  | gs -> Alcotest.failf "expected one group, got %d" (List.length gs));
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Symmetry.canon groups) model
  in
  Alcotest.(check int) "full chain: 2^6" 64 (Ctmc.Explore.n_states full);
  Alcotest.(check int) "lumped chain: n+1" 7 (Ctmc.Explore.n_states lumped);
  (* Symmetric rewards must agree between the chains to solver accuracy:
     the lumping is exact, not approximate. *)
  let n_up m =
    Array.fold_left
      (fun acc up -> acc +. float_of_int (San.Marking.get m up))
      0.0 ups
  in
  let all_down m = n_up m = 0.0 in
  List.iter
    (fun t ->
      close ~tol:1e-9
        (Printf.sprintf "E[up] at t=%g" t)
        (Ctmc.Measure.instant full ~at:t n_up)
        (Ctmc.Measure.instant lumped ~at:t n_up);
      close ~tol:1e-9
        (Printf.sprintf "P(ever all down) by t=%g" t)
        (Ctmc.Measure.ever full ~until:t all_down)
        (Ctmc.Measure.ever lumped ~until:t all_down))
    [ 0.3; 1.0; 4.0 ];
  close ~tol:1e-9 "steady E[up]"
    (Ctmc.Measure.steady_average full n_up)
    (Ctmc.Measure.steady_average lumped n_up)

(* --- orbit refinement (partial symmetry) --- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Like [replicated_farm], but fully declarative (IR guards, rates and
   effects) so the orbit pass can verify exchangeability — with an
   optional per-copy failure rate to break it. *)
let ir_farm ?(rates = fun _ -> 1.0) ?note n =
  let module E = San.Effect in
  let b = San.Model.Builder.create "irfarm" in
  let root = Compose.Ctx.root b "irfarm" in
  let ups =
    Compose.replicate root "node" ~n (fun ctx i ->
        (match note with
        | None -> ()
        | Some f -> Compose.Ctx.note ctx "fail_rate" (f i));
        let up = Compose.Ctx.int_place ctx ~init:1 "up" in
        Compose.Ctx.timed_exp_rate_ir ctx ~name:"fail"
          ~rate:(E.RConst (rates i))
          ~guard:(E.Cmp (E.Mark up, E.Eq, E.Int 1))
          ~reads:[ San.Place.P up ]
          (E.Ops [ E.Set (up, E.Int 0) ]);
        Compose.Ctx.timed_exp_rate_ir ctx ~name:"repair" ~rate:(E.RConst 2.5)
          ~guard:(E.Cmp (E.Mark up, E.Eq, E.Int 0))
          ~reads:[ San.Place.P up ]
          (E.Ops [ E.Set (up, E.Int 1) ]);
        up)
  in
  (San.Model.Builder.build b, Compose.info root, ups)

let test_orbit_full_symmetry () =
  let n = 6 in
  let model, info, ups = ir_farm n in
  let rep = Analysis.Orbit.analyse model info in
  Alcotest.(check bool) "pure" true rep.Analysis.Orbit.pure;
  (match rep.Analysis.Orbit.families with
  | [ f ] ->
      Alcotest.(check int) "one orbit" 1 (List.length f.Analysis.Orbit.fa_orbits);
      Alcotest.(check int) "star witnesses" (n - 1)
        (List.length f.Analysis.Orbit.fa_witnesses);
      Alcotest.(check int) "no breaks" 0 (List.length f.Analysis.Orbit.fa_breaks)
  | fs -> Alcotest.failf "expected one family, got %d" (List.length fs));
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  Alcotest.(check int) "full chain: 2^6" 64 (Ctmc.Explore.n_states full);
  Alcotest.(check int) "lumped chain: n+1" 7 (Ctmc.Explore.n_states lumped);
  let n_up m =
    Array.fold_left
      (fun acc up -> acc +. float_of_int (San.Marking.get m up))
      0.0 ups
  in
  List.iter
    (fun t ->
      close ~tol:1e-9
        (Printf.sprintf "E[up] at t=%g" t)
        (Ctmc.Measure.instant full ~at:t n_up)
        (Ctmc.Measure.instant lumped ~at:t n_up))
    [ 0.3; 1.0; 4.0 ]

let test_orbit_partial_symmetry () =
  let n = 6 in
  let rates i = if i < 3 then 1.0 else 4.0 in
  let model, info, ups = ir_farm ~rates n in
  let rep = Analysis.Orbit.analyse model info in
  (match rep.Analysis.Orbit.families with
  | [ f ] -> (
      match f.Analysis.Orbit.fa_orbits with
      | [ a; b ] ->
          Alcotest.(check (list int))
            "slow orbit" [ 0; 1; 2 ] a.Analysis.Orbit.ob_members;
          Alcotest.(check (list int))
            "fast orbit" [ 3; 4; 5 ] b.Analysis.Orbit.ob_members;
          (match f.Analysis.Orbit.fa_breaks with
          | [ bk ] ->
              Alcotest.(check bool)
                "break names the differing component" true
                (contains bk.Analysis.Orbit.bk_reason "differs")
          | bks -> Alcotest.failf "expected one break, got %d" (List.length bks))
      | os -> Alcotest.failf "expected two orbits, got %d" (List.length os))
  | fs -> Alcotest.failf "expected one family, got %d" (List.length fs));
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  Alcotest.(check int) "full chain: 2^6" 64 (Ctmc.Explore.n_states full);
  Alcotest.(check int) "lumped chain: 4*4" 16 (Ctmc.Explore.n_states lumped);
  let n_up m =
    Array.fold_left
      (fun acc up -> acc +. float_of_int (San.Marking.get m up))
      0.0 ups
  in
  List.iter
    (fun t ->
      close ~tol:1e-9
        (Printf.sprintf "E[up] at t=%g" t)
        (Ctmc.Measure.instant full ~at:t n_up)
        (Ctmc.Measure.instant lumped ~at:t n_up))
    [ 0.3; 1.0; 4.0 ];
  (* The structural pass cannot see the rate difference, so its
     whole-family sort is unsound here — A019 names it, and the explore
     audit refuses to build the quotient. *)
  let groups = Analysis.Symmetry.detect model info in
  Alcotest.(check int) "structural detect still groups" 1 (List.length groups);
  let bad = Analysis.Symmetry.canon groups in
  (match Analysis.Orbit.check_canon rep bad with
  | [] -> Alcotest.fail "expected an A019 diagnostic"
  | d :: _ ->
      Alcotest.(check string)
        "code" Analysis.Diagnostic.unsound_canon d.Analysis.Diagnostic.code);
  Alcotest.(check bool) "sound canon passes check_canon" true
    (Analysis.Orbit.check_canon rep (Analysis.Orbit.canon rep) = []);
  Alcotest.(check bool) "audit rejects unsound canon" true
    (match Ctmc.Explore.explore ~canon:bad ~audit:true model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Ctmc.Explore.Unsound_canon _ -> true)

let test_orbit_params_split () =
  (* Equal rates, but an explicit per-copy parameter note: the coloring
     splits conservatively and the break names the parameter. *)
  let n = 4 in
  let note i = if i = 0 then "gold" else "steel" in
  let model, info, _ = ir_farm ~note n in
  let rep = Analysis.Orbit.analyse model info in
  match rep.Analysis.Orbit.families with
  | [ f ] -> (
      match f.Analysis.Orbit.fa_orbits with
      | [ a; b ] ->
          Alcotest.(check (list int)) "noted copy alone" [ 0 ]
            a.Analysis.Orbit.ob_members;
          Alcotest.(check (list int)) "rest together" [ 1; 2; 3 ]
            b.Analysis.Orbit.ob_members;
          (match f.Analysis.Orbit.fa_breaks with
          | bk :: _ ->
              Alcotest.(check bool) "break names the parameter" true
                (contains bk.Analysis.Orbit.bk_reason "fail_rate")
          | [] -> Alcotest.fail "expected a break")
      | os -> Alcotest.failf "expected two orbits, got %d" (List.length os))
  | fs -> Alcotest.failf "expected one family, got %d" (List.length fs)

let test_orbit_impure_degrades () =
  (* Closure-built copies cannot be verified: singleton orbits, honest
     blockers, identity canon. *)
  let model, info, _ = replicated_farm 3 in
  let rep = Analysis.Orbit.analyse model info in
  Alcotest.(check bool) "not pure" false rep.Analysis.Orbit.pure;
  Alcotest.(check bool) "has blockers" true (rep.Analysis.Orbit.blockers <> []);
  Alcotest.(check bool) "trivial" true (Analysis.Orbit.trivial rep)

let test_symmetry_join_of_replicate () =
  (* Two Rep families under the branches of a Join: detection must keep
     them separate — one group per family, each lumpable on its own. *)
  let module E = San.Effect in
  let b = San.Model.Builder.create "joined" in
  let root = Compose.Ctx.root b "joined" in
  let farm ctx label n =
    Compose.replicate ctx label ~n (fun ctx _ ->
        let up = Compose.Ctx.int_place ctx ~init:1 "up" in
        Compose.Ctx.timed_exp_rate_ir ctx ~name:"toggle" ~rate:(E.RConst 1.0)
          ~guard:(E.Cmp (E.Mark up, E.Ge, E.Int 0))
          ~reads:[ San.Place.P up ]
          (E.Ops [ E.Set (up, E.Sub (E.Int 1, E.Mark up)) ]))
  in
  let (_ : unit array) = Compose.join root "left" (fun ctx -> farm ctx "node" 3) in
  let (_ : unit array) = Compose.join root "right" (fun ctx -> farm ctx "cell" 2) in
  let model = San.Model.Builder.build b in
  let info = Compose.info root in
  let groups = Analysis.Symmetry.detect model info in
  Alcotest.(check (list int)) "two groups, 3 and 2 copies" [ 2; 3 ]
    (List.sort compare
       (List.map (fun g -> g.Analysis.Symmetry.copies) groups));
  (* The orbit pass agrees: both families are single full orbits. *)
  let rep = Analysis.Orbit.analyse model info in
  Alcotest.(check bool) "pure" true rep.Analysis.Orbit.pure;
  Alcotest.(check (list int)) "one orbit per family" [ 1; 1 ]
    (List.map
       (fun f -> List.length f.Analysis.Orbit.fa_orbits)
       rep.Analysis.Orbit.families);
  (* Joint quotient: 2^5 = 32 states down to 4 x 3 = 12 multisets. *)
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  Alcotest.(check int) "full chain" 32 (Ctmc.Explore.n_states full);
  Alcotest.(check int) "lumped chain" 12 (Ctmc.Explore.n_states lumped)

let test_symmetry_nested_replicate () =
  (* Replicate of Replicate: the outer family and each inner family are
     all detected; the joint canon lumps multisets of multisets. *)
  let module E = San.Effect in
  let b = San.Model.Builder.create "nested" in
  let root = Compose.Ctx.root b "nested" in
  let ups = ref [] in
  let (_ : unit array array) =
    Compose.replicate root "domain" ~n:2 (fun ctx _ ->
        Compose.replicate ctx "host" ~n:3 (fun ctx _ ->
            let up = Compose.Ctx.int_place ctx ~init:1 "up" in
            ups := up :: !ups;
            Compose.Ctx.timed_exp_rate_ir ctx ~name:"fail" ~rate:(E.RConst 1.0)
              ~guard:(E.Cmp (E.Mark up, E.Eq, E.Int 1))
              ~reads:[ San.Place.P up ]
              (E.Ops [ E.Set (up, E.Int 0) ]);
            Compose.Ctx.timed_exp_rate_ir ctx ~name:"repair"
              ~rate:(E.RConst 2.5)
              ~guard:(E.Cmp (E.Mark up, E.Eq, E.Int 0))
              ~reads:[ San.Place.P up ]
              (E.Ops [ E.Set (up, E.Int 1) ])))
  in
  let model = San.Model.Builder.build b in
  let info = Compose.info root in
  let groups = Analysis.Symmetry.detect model info in
  Alcotest.(check (list int)) "outer family + one inner per copy"
    [ 2; 3; 3 ]
    (List.sort compare
       (List.map (fun g -> g.Analysis.Symmetry.copies) groups));
  let rep = Analysis.Orbit.analyse model info in
  Alcotest.(check bool) "pure" true rep.Analysis.Orbit.pure;
  Alcotest.(check (list int)) "full orbits everywhere" [ 1; 1; 1 ]
    (List.map
       (fun f -> List.length f.Analysis.Orbit.fa_orbits)
       rep.Analysis.Orbit.families);
  (* 2^6 = 64 flat states; sorting hosts within each domain and then the
     two domain subvectors leaves unordered pairs of host multisets:
     C(4+1, 2) = 10. *)
  let full = Ctmc.Explore.explore model in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  Alcotest.(check int) "full chain" 64 (Ctmc.Explore.n_states full);
  Alcotest.(check int) "lumped chain" 10 (Ctmc.Explore.n_states lumped);
  let n_up m =
    List.fold_left
      (fun acc up -> acc +. float_of_int (San.Marking.get m up))
      0.0 !ups
  in
  List.iter
    (fun t ->
      close ~tol:1e-9
        (Printf.sprintf "E[up] at t=%g" t)
        (Ctmc.Measure.instant full ~at:t n_up)
        (Ctmc.Measure.instant lumped ~at:t n_up))
    [ 0.5; 2.0 ]

let test_orbit_report_deterministic () =
  (* The rendered orbit report — what [check --symmetry --json] embeds —
     must be byte-identical across repeated analyses and across domains:
     no hashtable iteration order, wall clock, or domain id may leak. *)
  let render () =
    let model, info, _ = ir_farm ~rates:(fun i -> if i < 2 then 1.0 else 3.0) 5 in
    let rep = Analysis.Orbit.analyse model info in
    Report.Json.to_string (Analysis.Orbit.to_json rep)
    ^ "\n" ^ Analysis.Orbit.describe rep
    ^ String.concat "\n"
        (List.map
           (fun d -> Format.asprintf "%a" Analysis.Diagnostic.pp d)
           (Analysis.Orbit.diagnostics rep))
  in
  let reference = render () in
  Alcotest.(check string) "same bytes on re-analysis" reference (render ());
  let spawned =
    Array.init 2 (fun _ -> Domain.spawn (fun () -> render ()))
  in
  Array.iter
    (fun d ->
      Alcotest.(check string) "same bytes across domains" reference
        (Domain.join d))
    spawned

let test_symmetry_detect_rejects_asymmetry () =
  (* Copies that differ structurally (different initial marking) must
     not be reported as exchangeable. *)
  let b = San.Model.Builder.create "skewed" in
  let root = Compose.Ctx.root b "skewed" in
  let (_ : unit array) =
    Compose.replicate root "node" ~n:3 (fun ctx i ->
        let up = Compose.Ctx.int_place ctx ~init:(if i = 0 then 0 else 1) "up" in
        Compose.Ctx.timed_exp ctx ~name:"toggle"
          ~rate:(fun _ -> 1.0)
          ~enabled:(fun _ -> true)
          ~reads:[ San.Place.P up ]
          (fun _ m -> San.Marking.set m up (1 - San.Marking.get m up)))
  in
  let model = San.Model.Builder.build b in
  Alcotest.(check int) "no exchangeable groups" 0
    (List.length (Analysis.Symmetry.detect model (Compose.info root)))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest [ prop_random_queue_sim_matches_ctmc ]
  in
  Alcotest.run "ctmc"
    [
      ("randomized-cross-validation", props);
      ( "explore",
        [
          Alcotest.test_case "two-state space" `Quick test_two_state_space;
          Alcotest.test_case "mm1k space and rates" `Quick
            test_mm1k_space_and_rates;
          Alcotest.test_case "non-markovian rejected" `Quick
            test_non_markovian_rejected;
          Alcotest.test_case "state limit" `Quick test_state_limit;
          Alcotest.test_case "vanishing loop" `Quick
            test_vanishing_loop_detected;
          Alcotest.test_case "vanishing branching" `Quick
            test_vanishing_branching;
          Alcotest.test_case "sampling effect rejected" `Quick
            test_stream_sampling_effect_rejected;
        ] );
      ( "lumping",
        [
          Alcotest.test_case "lumped measures agree" `Quick
            test_lumped_measures_agree;
          Alcotest.test_case "asymmetry rejected" `Quick
            test_symmetry_detect_rejects_asymmetry;
          Alcotest.test_case "orbit: full symmetry" `Quick
            test_orbit_full_symmetry;
          Alcotest.test_case "orbit: partial symmetry" `Quick
            test_orbit_partial_symmetry;
          Alcotest.test_case "orbit: params split" `Quick
            test_orbit_params_split;
          Alcotest.test_case "orbit: impure degrades" `Quick
            test_orbit_impure_degrades;
          Alcotest.test_case "join of replicate" `Quick
            test_symmetry_join_of_replicate;
          Alcotest.test_case "nested replicate" `Quick
            test_symmetry_nested_replicate;
          Alcotest.test_case "orbit report deterministic" `Quick
            test_orbit_report_deterministic;
        ] );
      ( "transient",
        [
          Alcotest.test_case "two-state closed form" `Quick
            test_transient_two_state;
          Alcotest.test_case "tandem closed form" `Quick test_transient_tandem;
          Alcotest.test_case "accumulated closed form" `Quick
            test_accumulated_two_state;
          Alcotest.test_case "accumulated mass" `Quick
            test_accumulated_sums_to_t;
          Alcotest.test_case "windowed interval average" `Quick
            test_interval_average_window;
        ] );
      ( "steady",
        [
          Alcotest.test_case "mm1k distribution" `Quick test_steady_mm1k;
          Alcotest.test_case "absorbing chain" `Quick test_steady_absorbing;
        ] );
      ( "measures",
        [
          Alcotest.test_case "ever bounds" `Quick
            test_ever_equals_transient_absorbed;
          Alcotest.test_case "ever exact (tandem)" `Quick
            test_ever_tandem_exact;
        ] );
      ( "absorption",
        [
          Alcotest.test_case "tandem MTTA" `Quick test_mtta_tandem;
          Alcotest.test_case "MTTA with repair detour" `Quick
            test_mtta_repairable_detour;
          Alcotest.test_case "absorption probabilities" `Quick
            test_absorption_probabilities;
          Alcotest.test_case "requires absorbing state" `Quick
            test_mtta_requires_absorbing;
          Alcotest.test_case "MTTA vs simulation" `Slow
            test_mtta_matches_simulation;
        ] );
      ( "cross-validation",
        [
          Alcotest.test_case "simulator vs CTMC (mm1k)" `Slow
            test_sim_matches_ctmc_mm1k;
          Alcotest.test_case "simulator vs CTMC (branching)" `Slow
            test_sim_matches_ctmc_branching;
        ] );
    ]
