(* Tests for the prng library: determinism, substream independence, and
   statistical sanity of the sampling primitives. *)

let stream seed = Prng.Stream.create ~seed:(Int64.of_int seed)

let draws s n = List.init n (fun _ -> Prng.Stream.bits64 s)

let test_determinism () =
  let a = draws (stream 42) 64 in
  let b = draws (stream 42) 64 in
  Alcotest.(check (list int64)) "same seed, same sequence" a b

let test_seed_sensitivity () =
  let a = draws (stream 42) 16 in
  let b = draws (stream 43) 16 in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_substream_zero_is_identity () =
  let root = stream 7 in
  let sub = Prng.Stream.substream root 0 in
  Alcotest.(check (list int64))
    "substream 0 equals root sequence" (draws root 32) (draws sub 32)

let test_substream_successor_agree () =
  let root = stream 7 in
  let by_index = Prng.Stream.substream root 3 in
  let by_succ =
    Prng.Stream.successor
      (Prng.Stream.successor (Prng.Stream.successor root))
  in
  Alcotest.(check (list int64))
    "substream 3 = successor^3" (draws by_index 32) (draws by_succ 32)

let test_substreams_distinct () =
  let root = stream 11 in
  let s1 = draws (Prng.Stream.substream root 1) 16 in
  let s2 = draws (Prng.Stream.substream root 2) 16 in
  Alcotest.(check bool) "substreams 1 and 2 differ" true (s1 <> s2)

let test_substream_does_not_disturb_root () =
  let root = stream 13 in
  let before = draws (Prng.Stream.substream root 0) 8 in
  ignore (Prng.Stream.substream root 5);
  let after = draws (Prng.Stream.substream root 0) 8 in
  Alcotest.(check (list int64)) "root untouched by substream" before after

let test_split_differs_from_parent () =
  let root = stream 17 in
  let child = Prng.Stream.split root in
  Alcotest.(check bool)
    "split stream differs" true
    (draws root 16 <> draws child 16)

let test_float_range_unit () =
  let s = stream 5 in
  for _ = 1 to 10_000 do
    let x = Prng.Stream.float s in
    if not (0.0 <= x && x < 1.0) then
      Alcotest.failf "float out of [0,1): %g" x
  done

let test_float_moments () =
  let s = stream 23 in
  let n = 200_000 in
  let acc = Stats.Welford.create () in
  for _ = 1 to n do
    Stats.Welford.add acc (Prng.Stream.float s)
  done;
  let mean = Stats.Welford.mean acc in
  let var = Stats.Welford.variance acc in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.005);
  Alcotest.(check bool)
    "variance near 1/12" true
    (Float.abs (var -. (1.0 /. 12.0)) < 0.005)

let test_float_pos_positive () =
  let s = stream 29 in
  for _ = 1 to 10_000 do
    let x = Prng.Stream.float_pos s in
    if not (0.0 < x && x <= 1.0) then
      Alcotest.failf "float_pos out of (0,1]: %g" x
  done

let test_int_uniformity () =
  let s = stream 31 in
  let n_buckets = 7 in
  let counts = Array.make n_buckets 0 in
  let n = 70_000 in
  for _ = 1 to n do
    let i = Prng.Stream.int s n_buckets in
    counts.(i) <- counts.(i) + 1
  done;
  let expected = float_of_int n /. float_of_int n_buckets in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.05 then
        Alcotest.failf "bucket %d deviates %.1f%% from uniform" i (100. *. dev))
    counts

let test_bernoulli_frequency () =
  let s = stream 37 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.Stream.bernoulli s 0.3 then incr hits
  done;
  let f = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "freq near 0.3" true (Float.abs (f -. 0.3) < 0.01)

let test_categorical_frequencies () =
  let s = stream 41 in
  let w = [| 1.0; 2.0; 3.0; 4.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Prng.Stream.categorical s w in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = w.(i) /. 10.0 in
      let f = float_of_int c /. float_of_int n in
      if Float.abs (f -. expected) > 0.01 then
        Alcotest.failf "category %d: freq %.4f expected %.4f" i f expected)
    counts

let test_categorical_zero_weight_never_chosen () =
  let s = stream 43 in
  for _ = 1 to 10_000 do
    let i = Prng.Stream.categorical s [| 0.0; 1.0; 0.0; 2.0 |] in
    if i = 0 || i = 2 then Alcotest.failf "picked zero-weight category %d" i
  done

let test_shuffle_is_permutation () =
  let s = stream 47 in
  let a = Array.init 20 (fun i -> i) in
  Prng.Stream.shuffle_in_place s a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 20 (fun i -> i))
    sorted

let test_shuffle_uniform_on_three () =
  let s = stream 53 in
  let tbl = Hashtbl.create 6 in
  let n = 60_000 in
  for _ = 1 to n do
    let a = [| 0; 1; 2 |] in
    Prng.Stream.shuffle_in_place s a;
    let key = (a.(0) * 100) + (a.(1) * 10) + a.(2) in
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  done;
  Alcotest.(check int) "six permutations observed" 6 (Hashtbl.length tbl);
  Hashtbl.iter
    (fun key c ->
      let f = float_of_int c /. float_of_int n in
      if Float.abs (f -. (1.0 /. 6.0)) > 0.01 then
        Alcotest.failf "permutation %d: freq %.4f not near 1/6" key f)
    tbl

let test_invalid_arguments () =
  let s = stream 59 in
  Alcotest.check_raises "int 0 rejected" (Invalid_argument "Stream.int: bound must be positive")
    (fun () -> ignore (Prng.Stream.int s 0));
  Alcotest.check_raises "negative substream rejected"
    (Invalid_argument "Stream.substream: negative index") (fun () ->
      ignore (Prng.Stream.substream s (-1)));
  Alcotest.check_raises "empty choose rejected"
    (Invalid_argument "Stream.choose: empty array") (fun () ->
      ignore (Prng.Stream.choose s [||]))

let test_seed_of () =
  let s = stream 61 in
  Alcotest.(check int64) "seed recorded" 61L (Prng.Stream.seed_of s);
  Alcotest.(check int64) "substream keeps family seed" 61L
    (Prng.Stream.seed_of (Prng.Stream.substream s 4))

(* qcheck properties *)

let prop_int_in_range =
  QCheck2.Test.make ~name:"int s n lies in [0, n)" ~count:500
    QCheck2.Gen.(pair (int_range 1 1_000_000) (int_range 0 10_000))
    (fun (n, seed) ->
      let s = stream seed in
      let x = Prng.Stream.int s n in
      0 <= x && x < n)

let prop_float_range_bounds =
  QCheck2.Test.make ~name:"float_range within bounds" ~count:500
    QCheck2.Gen.(
      triple (float_range (-1e6) 1e6) (float_range 0.0 1e6) (int_range 0 10_000))
    (fun (lo, width, seed) ->
      let s = stream seed in
      let x = Prng.Stream.float_range s lo (lo +. width) in
      lo <= x && (x < lo +. width || width = 0.0))

let prop_choose_member =
  QCheck2.Test.make ~name:"choose returns a member" ~count:300
    QCheck2.Gen.(pair (array_size (int_range 1 50) int) (int_range 0 10_000))
    (fun (a, seed) ->
      let s = stream seed in
      let chosen = Prng.Stream.choose s a in
      Array.exists (fun y -> y = chosen) a)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ prop_int_in_range; prop_float_range_bounds; prop_choose_member ]
  in
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "substream 0 identity" `Quick
            test_substream_zero_is_identity;
          Alcotest.test_case "substream/successor agree" `Quick
            test_substream_successor_agree;
          Alcotest.test_case "substreams distinct" `Quick
            test_substreams_distinct;
          Alcotest.test_case "substream preserves root" `Quick
            test_substream_does_not_disturb_root;
          Alcotest.test_case "split differs" `Quick
            test_split_differs_from_parent;
          Alcotest.test_case "seed_of" `Quick test_seed_of;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "float in [0,1)" `Quick test_float_range_unit;
          Alcotest.test_case "float moments" `Slow test_float_moments;
          Alcotest.test_case "float_pos in (0,1]" `Quick test_float_pos_positive;
          Alcotest.test_case "int uniformity" `Slow test_int_uniformity;
          Alcotest.test_case "bernoulli frequency" `Slow
            test_bernoulli_frequency;
          Alcotest.test_case "categorical frequencies" `Slow
            test_categorical_frequencies;
          Alcotest.test_case "categorical zero weights" `Quick
            test_categorical_zero_weight_never_chosen;
          Alcotest.test_case "shuffle permutation" `Quick
            test_shuffle_is_permutation;
          Alcotest.test_case "shuffle uniform" `Slow
            test_shuffle_uniform_on_three;
        ] );
      ("properties", qsuite);
    ]
