(* Tests for the compose library: namespacing, replicate/join structure,
   and sharing via lexical capture. *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let test_namespacing () =
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "sys" in
  let places =
    Compose.replicate root "node" ~n:3 (fun ctx i ->
        ignore i;
        Compose.Ctx.int_place ctx "tokens")
  in
  let model = San.Model.Builder.build b in
  Alcotest.(check int) "three places" 3 (Array.length (San.Model.places model));
  Array.iteri
    (fun i p ->
      Alcotest.(check string)
        (Printf.sprintf "name %d" i)
        (Printf.sprintf "node[%d].tokens" i)
        (San.Place.name p))
    places

let test_nested_namespacing () =
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "sys" in
  let nested =
    Compose.replicate root "domain" ~n:2 (fun dom _ ->
        Compose.replicate dom "host" ~n:2 (fun host _ ->
            Compose.Ctx.int_place host "ok"))
  in
  Alcotest.(check string)
    "deep name" "domain[1].host[0].ok"
    (San.Place.name nested.(1).(0))

let test_sharing_by_capture () =
  (* A shared counter place incremented by an activity in each replica:
     replicate-level sharing exactly as in Mobius. *)
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "sys" in
  let shared = Compose.Ctx.int_place root "total" in
  let (_ : unit array) =
    Compose.replicate root "worker" ~n:4 (fun ctx i ->
        ignore i;
        let started = Compose.Ctx.int_place ctx ~init:1 "pending" in
        Compose.Ctx.instantaneous ctx ~name:"go"
          ~enabled:(fun m -> San.Marking.get m started = 1)
          ~reads:[ San.Place.P started ]
          (fun _ m ->
            San.Marking.set m started 0;
            San.Marking.add m shared 1))
  in
  let model = San.Model.Builder.build b in
  let cfg = Sim.Executor.config ~horizon:1.0 () in
  let outcome =
    Sim.Executor.run ~model ~config:cfg
      ~stream:(Prng.Stream.create ~seed:1L)
      ~observer:Sim.Observer.nop ()
  in
  Alcotest.(check int)
    "all four replicas incremented the shared place" 4
    (San.Marking.get outcome.Sim.Executor.final shared)

let test_join_and_structure () =
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "itua" in
  let () =
    Compose.join root "apps" (fun apps ->
        let (_ : unit array) =
          Compose.replicate apps "app" ~n:2 (fun app _ ->
              let (_ : San.Place.t array) =
                Compose.replicate app "replica" ~n:3 (fun r _ ->
                    Compose.Ctx.int_place r "corrupt")
              in
              ())
        in
        ())
  in
  let () =
    Compose.join root "domains" (fun domains ->
        let (_ : San.Place.t array) =
          Compose.replicate domains "domain" ~n:2 (fun d _ ->
              Compose.Ctx.int_place d "excluded")
        in
        ())
  in
  let rendering = Compose.structure root in
  List.iter
    (fun needle ->
      if not (contains ~needle rendering) then
        Alcotest.failf "structure rendering missing %S in:\n%s" needle
          rendering)
    [ "itua"; "apps"; "app[0] (Rep, 2 copies)"; "replica[0] (Rep, 3 copies)";
      "domains"; "domain[0] (Rep, 2 copies)" ];
  (* Rep siblings beyond the first copy are collapsed in the rendering. *)
  Alcotest.(check bool) "app[1] collapsed" false
    (contains ~needle:"app[1]" rendering);
  ignore (San.Model.Builder.build b)

let test_replicate_zero_rejected () =
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "sys" in
  Alcotest.(check bool) "n=0 rejected" true
    (match Compose.replicate root "x" ~n:0 (fun _ _ -> ()) with
    | (_ : unit array) -> false
    | exception Invalid_argument _ -> true)

let test_qualify () =
  let b = San.Model.Builder.create "sys" in
  let root = Compose.Ctx.root b "sys" in
  Alcotest.(check string) "root path is empty" "" (Compose.Ctx.path root);
  Alcotest.(check string) "root qualify" "x" (Compose.Ctx.qualify root "x");
  Compose.join root "sub" (fun sub ->
      Alcotest.(check string) "child path" "sub" (Compose.Ctx.path sub);
      Alcotest.(check string) "child qualify" "sub.x"
        (Compose.Ctx.qualify sub "x"))

let () =
  Alcotest.run "compose"
    [
      ( "compose",
        [
          Alcotest.test_case "namespacing" `Quick test_namespacing;
          Alcotest.test_case "nested namespacing" `Quick
            test_nested_namespacing;
          Alcotest.test_case "sharing by capture" `Quick
            test_sharing_by_capture;
          Alcotest.test_case "join and structure" `Quick
            test_join_and_structure;
          Alcotest.test_case "replicate n=0" `Quick
            test_replicate_zero_rejected;
          Alcotest.test_case "qualify" `Quick test_qualify;
        ] );
    ]
