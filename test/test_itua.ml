(* Tests for the ITUA model library: parameter validation, model
   construction, initial placement, exclusion semantics for both policies,
   measures, invariants under randomized configurations, and regression of
   the paper's qualitative shapes. *)

module M = San.Marking

let base_params = Itua.Params.default

let small_params =
  {
    base_params with
    Itua.Params.num_domains = 4;
    hosts_per_domain = 2;
    num_apps = 2;
    num_reps = 3;
  }

(* --- parameters --- *)

let test_params_default_valid () =
  match Itua.Params.validate base_params with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "default params rejected: %s" msg

let test_params_rejects () =
  let cases =
    [
      ("zero domains", { base_params with Itua.Params.num_domains = 0 });
      ("zero hosts", { base_params with Itua.Params.hosts_per_domain = 0 });
      ("zero apps", { base_params with Itua.Params.num_apps = 0 });
      ("zero reps", { base_params with Itua.Params.num_reps = 0 });
      ("zero attack", { base_params with Itua.Params.attack_rate_system = 0.0 });
      ( "bad class fractions",
        { base_params with Itua.Params.frac_script = 0.5 } );
      ( "bad attack shares",
        { base_params with Itua.Params.attack_share_host = 0.9 } );
      ( "multiplier < 1",
        { base_params with Itua.Params.corruption_multiplier = 0.5 } );
      ( "negative spread",
        { base_params with Itua.Params.spread_rate_domain = -1.0 } );
      ( "detection prob > 1",
        { base_params with Itua.Params.p_detect_script = 1.5 } );
      ("zero ids rate", { base_params with Itua.Params.ids_decision_rate = 0.0 });
      ("zero scale", { base_params with Itua.Params.rate_scale = 0.0 });
      ( "bad fa share",
        { base_params with Itua.Params.false_alarm_share_host = 2.0 } );
    ]
  in
  List.iter
    (fun (label, p) ->
      match Itua.Params.validate p with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s accepted" label)
    cases

let test_params_derived_rates () =
  let p = base_params in
  (* 10 x 3 hosts, 4 apps x min(10,7) replicas = 28 placed. *)
  Alcotest.(check int) "hosts" 30 (Itua.Params.num_hosts p);
  Alcotest.(check int) "placed per app" 7 (Itua.Params.placed_replicas_per_app p);
  Alcotest.(check int) "total placed" 28 (Itua.Params.total_placed_replicas p);
  let close msg a b =
    if Float.abs (a -. b) > 1e-12 then Alcotest.failf "%s: %g vs %g" msg a b
  in
  close "host rate"
    (p.Itua.Params.rate_scale *. 3.0 *. 0.7 /. 30.0)
    (Itua.Params.host_attack_rate p);
  close "replica rate"
    (p.Itua.Params.rate_scale *. 3.0 *. 0.15 /. 28.0)
    (Itua.Params.replica_attack_rate p);
  close "manager rate"
    (p.Itua.Params.rate_scale *. 3.0 *. 0.15 /. 30.0)
    (Itua.Params.manager_attack_rate p);
  close "host fa"
    (p.Itua.Params.rate_scale *. 2.0 *. 0.5 /. 30.0)
    (Itua.Params.host_false_alarm_rate p);
  close "replica fa"
    (p.Itua.Params.rate_scale *. 2.0 *. 0.5 /. 28.0)
    (Itua.Params.replica_false_alarm_rate p);
  (* Per-entity exposure is a constant, independent of the topology
     (Section 4.2's normalization). *)
  let bigger = { p with Itua.Params.num_domains = 20; num_apps = 8 } in
  close "per-host rate independent of topology"
    (Itua.Params.host_attack_rate p)
    (Itua.Params.host_attack_rate bigger);
  close "per-replica rate independent of topology"
    (Itua.Params.replica_attack_rate p)
    (Itua.Params.replica_attack_rate bigger)

let test_fewer_domains_than_replicas () =
  let p = { base_params with Itua.Params.num_domains = 3 } in
  Alcotest.(check int) "placement capped by domains" 3
    (Itua.Params.placed_replicas_per_app p)

(* --- model construction --- *)

let test_model_sizes () =
  let h = Itua.Model.build small_params in
  Alcotest.(check int) "apps" 2 (Array.length h.Itua.Model.apps);
  Alcotest.(check int) "domains" 4 (Array.length h.Itua.Model.domains);
  Array.iter
    (fun (ap : Itua.Model.app_places) ->
      Alcotest.(check int) "slots" 3 (Array.length ap.Itua.Model.slots))
    h.Itua.Model.apps;
  Array.iter
    (fun (dp : Itua.Model.domain_places) ->
      Alcotest.(check int) "hosts" 2 (Array.length dp.Itua.Model.hosts);
      Alcotest.(check int) "has_app" 2 (Array.length dp.Itua.Model.has_app))
    h.Itua.Model.domains;
  (* Unique names guaranteed by the builder; just sanity check counts. *)
  let model = h.Itua.Model.model in
  Alcotest.(check bool) "has activities" true
    (Array.length (San.Model.activities model) > 40)

let test_structure_rendering () =
  let h = Itua.Model.build small_params in
  let s = h.Itua.Model.structure in
  List.iter
    (fun needle ->
      let found =
        let nl = String.length needle and hl = String.length s in
        let rec scan i =
          i + nl <= hl && (String.sub s i nl = needle || scan (i + 1))
        in
        scan 0
      in
      if not found then Alcotest.failf "structure missing %S in:\n%s" needle s)
    [ "itua"; "apps"; "app[0] (Rep, 2 copies)"; "replica[0] (Rep, 3 copies)";
      "security_domains"; "domain[0] (Rep, 4 copies)"; "host[0] (Rep, 2 copies)" ]

(* --- initial placement --- *)

let final_marking ?(seed = 5) ?(horizon = 1e-6) params =
  let h = Itua.Model.build params in
  let cfg = Sim.Executor.config ~horizon () in
  let outcome =
    Sim.Executor.run ~model:h.Itua.Model.model ~config:cfg
      ~stream:(Prng.Stream.create ~seed:(Int64.of_int seed))
      ~observer:Sim.Observer.nop ()
  in
  (h, outcome.Sim.Executor.final)

let test_initial_placement () =
  let h, m = final_marking small_params in
  Array.iter
    (fun (ap : Itua.Model.app_places) ->
      (* 3 replicas over 4 domains: all placed. *)
      Alcotest.(check int) "replicas running" 3
        (M.get m ap.Itua.Model.replicas_running);
      Alcotest.(check int) "nothing pending" 0 (M.get m ap.Itua.Model.to_start))
    h.Itua.Model.apps;
  (* One replica of an app per domain at most. *)
  Array.iter
    (fun (dp : Itua.Model.domain_places) ->
      Array.iter
        (fun p ->
          Alcotest.(check bool) "has_app is 0/1" true (M.get m p <= 1))
        dp.Itua.Model.has_app)
    h.Itua.Model.domains;
  Itua.Invariant.check_now h m

let test_initial_placement_capped () =
  (* 7 replicas but only 3 domains: 3 placed, 4 forever pending. *)
  let p =
    { base_params with Itua.Params.num_domains = 3; hosts_per_domain = 2 }
  in
  let h, m = final_marking p in
  Array.iter
    (fun (ap : Itua.Model.app_places) ->
      Alcotest.(check int) "replicas running" 3
        (M.get m ap.Itua.Model.replicas_running);
      Alcotest.(check int) "pending remainder" 4
        (M.get m ap.Itua.Model.to_start))
    h.Itua.Model.apps;
  Itua.Invariant.check_now h m

let test_initial_managers () =
  let h, m = final_marking small_params in
  Alcotest.(check int) "managers running" 8
    (M.get m h.Itua.Model.mgrs_running);
  Alcotest.(check int) "no corrupt managers" 0
    (M.get m h.Itua.Model.undetected_corr_mgrs)

(* --- exclusion policies --- *)

let count_alive h m =
  let alive = ref 0 in
  Array.iter
    (fun (dp : Itua.Model.domain_places) ->
      Array.iter
        (fun (hp : Itua.Model.host_places) ->
          if M.get m hp.Itua.Model.alive = 1 then incr alive)
        dp.Itua.Model.hosts)
    h.Itua.Model.domains;
  !alive

let test_domain_exclusion_kills_whole_domains () =
  let p = { small_params with Itua.Params.policy = Itua.Params.Domain_exclusion } in
  let h, m = final_marking ~horizon:20.0 ~seed:3 p in
  let excl = M.get m h.Itua.Model.excl_domains in
  Alcotest.(check bool) "something was excluded in 20h" true (excl > 0);
  (* Hosts die only with whole domains: alive = 2 * live domains. *)
  Alcotest.(check int) "host deaths match domain exclusions"
    ((4 - excl) * 2)
    (count_alive h m);
  Itua.Invariant.check_now h m

let test_host_exclusion_never_marks_domains () =
  let p = { small_params with Itua.Params.policy = Itua.Params.Host_exclusion } in
  let h, m = final_marking ~horizon:20.0 ~seed:3 p in
  Alcotest.(check int) "no domain-level exclusions" 0
    (M.get m h.Itua.Model.excl_domains);
  Array.iter
    (fun (dp : Itua.Model.domain_places) ->
      Alcotest.(check int) "excluded place stays 0" 0
        (M.get m dp.Itua.Model.excluded))
    h.Itua.Model.domains;
  Itua.Invariant.check_now h m

let test_false_alarms_exclude_clean_domains () =
  (* With negligible attacks, every exclusion stems from a false alarm, so
     excluded domains contain no corrupt hosts. *)
  let p =
    {
      small_params with
      Itua.Params.attack_rate_system = 1e-9;
      false_alarm_rate_system = 50.0;
    }
  in
  let h, m = final_marking ~horizon:10.0 ~seed:11 p in
  Alcotest.(check bool) "false alarms excluded domains" true
    (M.get m h.Itua.Model.excl_domains > 0);
  Alcotest.(check int) "no corrupt host was excluded" 0
    (M.get m h.Itua.Model.excl_corrupt_hosts);
  Alcotest.(check (float 1e-9)) "corrupt fraction sum is zero" 0.0
    (M.fget m h.Itua.Model.excl_frac_sum)

let test_no_attacks_no_byzantine () =
  let p =
    {
      small_params with
      Itua.Params.attack_rate_system = 1e-9;
      false_alarm_rate_system = 0.0;
    }
  in
  let h = Itua.Model.build p in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
      [
        Itua.Measures.unavailability h ~until:10.0;
        Itua.Measures.unreliability h ~until:10.0;
      ]
  in
  List.iter
    (fun (r : Sim.Runner.result) ->
      if r.ci.Stats.Ci.mean > 1e-6 then
        Alcotest.failf "%s nonzero without attacks" r.name)
    (Sim.Runner.run ~seed:13L ~reps:50 spec)

(* --- measures --- *)

let test_measures_in_range () =
  let h = Itua.Model.build small_params in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0
      (Itua.Measures.all h ~until:5.0)
  in
  let rs = Sim.Runner.run ~seed:17L ~reps:200 spec in
  List.iter
    (fun (r : Sim.Runner.result) ->
      let m = r.ci.Stats.Ci.mean in
      match r.name with
      | name when String.length name >= 8 && String.sub name 0 8 = "replicas" ->
          if m < 0.0 || m > 3.0 then
            Alcotest.failf "%s out of [0, num_reps]: %g" name m
      | name ->
          if r.n_defined > 0 && (m < -1e-9 || m > 1.0 +. 1e-9) then
            Alcotest.failf "%s out of [0,1]: %g" name m)
    rs

let test_unreliability_dominates_final_unavailability () =
  (* For any fixed window, time-average of the improper indicator is at
     most the probability the window ever saw an improper instant (both
     averaged over apps): unavailability <= unreliability + starvation
     effects.  Check the pure Byzantine part by disabling starvation:
     plenty of domains, host exclusion. *)
  let p =
    {
      base_params with
      Itua.Params.policy = Itua.Params.Host_exclusion;
      num_domains = 10;
      hosts_per_domain = 2;
      num_apps = 2;
    }
  in
  let h = Itua.Model.build p in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0
      [
        Itua.Measures.unavailability h ~until:5.0;
        Itua.Measures.unreliability h ~until:5.0;
      ]
  in
  match Sim.Runner.run ~seed:19L ~reps:300 spec with
  | [ ua; ur ] ->
      Alcotest.(check bool)
        (Printf.sprintf "ua %.5f <= ur %.5f" ua.ci.Stats.Ci.mean
           ur.ci.Stats.Ci.mean)
        true
        (ua.ci.Stats.Ci.mean <= ur.ci.Stats.Ci.mean +. 1e-9)
  | _ -> Alcotest.fail "wrong result arity"

let test_fraction_corrupt_undefined_without_exclusions () =
  let p =
    {
      small_params with
      Itua.Params.attack_rate_system = 1e-9;
      false_alarm_rate_system = 0.0;
    }
  in
  let h = Itua.Model.build p in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:2.0
      [ Itua.Measures.fraction_corrupt_in_excluded h ]
  in
  let r = List.hd (Sim.Runner.run ~seed:23L ~reps:20 spec) in
  Alcotest.(check int) "undefined in every replication" 0 r.Sim.Runner.n_defined

let test_determinism () =
  let h = Itua.Model.build small_params in
  let run () =
    let spec =
      Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0
        (Itua.Measures.all h ~until:5.0)
    in
    List.map
      (fun (r : Sim.Runner.result) -> r.ci.Stats.Ci.mean)
      (Sim.Runner.run ~seed:99L ~reps:60 spec)
  in
  Alcotest.(check (list (float 0.0))) "same seed, same estimates" (run ()) (run ())

(* --- ablation switches --- *)

let ur10 p seed =
  let h = Itua.Model.build p in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
      [ Itua.Measures.unreliability h ~until:10.0;
        Itua.Measures.unavailability h ~until:10.0 ]
  in
  match Sim.Runner.run ~seed ~reps:400 spec with
  | [ ur; ua ] -> (ur.ci.Stats.Ci.mean, ua.ci.Stats.Ci.mean)
  | _ -> Alcotest.fail "arity"

let fig5_hot =
  {
    base_params with
    Itua.Params.policy = Itua.Params.Host_exclusion;
    corruption_multiplier = 5.0;
    rate_scale = 1.0;
    spread_rate_domain = 8.0;
    spread_effect_domain = 8.0;
  }

let test_ablation_retrying_ids_detects_more () =
  (* With retrying (non-sticky) misses every intrusion is eventually
     detected, so fewer corruptions linger and unreliability falls. *)
  let sticky, _ = ur10 fig5_hot 31L in
  let retrying, _ =
    ur10 { fig5_hot with Itua.Params.ids_misses_sticky = false } 31L
  in
  Alcotest.(check bool)
    (Printf.sprintf "retrying %.4f < sticky %.4f" retrying sticky)
    true (retrying < sticky)

let test_ablation_spread_persistence_matters () =
  (* Quenching the spread on host exclusion must reduce the damage at a
     high spread rate. *)
  let persist, _ = ur10 fig5_hot 32L in
  let quenched, _ =
    ur10 { fig5_hot with Itua.Params.spread_outlives_host = false } 32L
  in
  Alcotest.(check bool)
    (Printf.sprintf "quenched %.4f < persistent %.4f" quenched persist)
    true (quenched < persist)

let test_ablation_ungated_recovery_not_worse () =
  (* Removing the quorum gate can only make recovery easier; measured
     unavailability must not increase beyond noise. *)
  let p =
    { base_params with
      Itua.Params.rate_scale = 1.0; corruption_multiplier = 5.0 }
  in
  let _, gated = ur10 p 33L in
  let _, ungated =
    ur10 { p with Itua.Params.quorum_gates_recovery = false } 33L
  in
  Alcotest.(check bool)
    (Printf.sprintf "ungated %.4f <= gated %.4f (+noise)" ungated gated)
    true
    (ungated <= gated +. 0.02)

let test_itua_model_passes_check () =
  (* The model checker reports no error-level diagnostics for either
     policy: declared read sets cover every enabled/dist/weight read, no
     effect underflows a place, and instantaneous firings stabilize.
     (Warnings are expected — e.g. effect-only reads of shared state —
     and are not part of this contract.) *)
  List.iter
    (fun policy ->
      let h =
        Itua.Model.build
          { small_params with Itua.Params.policy; rate_scale = 2.0 }
      in
      let r =
        Analysis.Check.run ~runs:2 ~composition:h.Itua.Model.composition
          h.Itua.Model.model
      in
      match Analysis.Check.errors r with
      | [] -> ()
      | es ->
          Alcotest.failf "check errors: %s"
            (String.concat "; "
               (List.map
                  (Format.asprintf "%a" Analysis.Diagnostic.pp)
                  es)))
    [ Itua.Params.Domain_exclusion; Itua.Params.Host_exclusion ]

(* --- invariants under randomized configurations --- *)

let prop_invariants_hold =
  QCheck2.Test.make ~name:"ITUA invariants hold along random runs" ~count:60
    QCheck2.Gen.(
      tup6 (int_range 1 5) (int_range 1 3) (int_range 1 3) (int_range 1 5)
        bool (int_range 0 1_000_000))
    (fun (nd, nh, na, nr, host_policy, seed) ->
      let p =
        {
          base_params with
          Itua.Params.num_domains = nd;
          hosts_per_domain = nh;
          num_apps = na;
          num_reps = nr;
          policy =
            (if host_policy then Itua.Params.Host_exclusion
             else Itua.Params.Domain_exclusion);
          (* Hot rates so short runs still exercise the machinery. *)
          rate_scale = 2.0;
          corruption_multiplier = 5.0;
          spread_rate_domain = 5.0;
          spread_effect_domain = 5.0;
        }
      in
      let h = Itua.Model.build p in
      let spec =
        Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:8.0
          ~extra_observers:[ Itua.Invariant.observer h ]
          [ Itua.Measures.unavailability h ~until:8.0 ]
      in
      match Sim.Runner.run_one spec (Prng.Stream.create ~seed:(Int64.of_int seed)) with
      | (_ : float array) -> true
      | exception Itua.Invariant.Violation msg ->
          QCheck2.Test.fail_reportf "invariant violated: %s" msg)

(* --- non-exponential IDS latency (the paper's non-Markovian regime) --- *)

let test_erlang_ids_runs_with_invariants () =
  let p = { small_params with Itua.Params.ids_latency_stages = 4 } in
  let h = Itua.Model.build p in
  Alcotest.(check bool) "model is not all-exponential" false
    (San.Model.all_exponential h.Itua.Model.model);
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
      ~extra_observers:[ Itua.Invariant.observer h ]
      [ Itua.Measures.unavailability h ~until:10.0 ]
  in
  let r = List.hd (Sim.Runner.run ~seed:41L ~reps:100 spec) in
  Alcotest.(check bool) "measure in range" true
    (0.0 <= r.ci.Stats.Ci.mean && r.ci.Stats.Ci.mean <= 1.0)

let test_erlang_ids_rejected_by_ctmc () =
  let p =
    {
      base_params with
      Itua.Params.num_domains = 1;
      hosts_per_domain = 1;
      num_apps = 1;
      num_reps = 1;
      ids_latency_stages = 3;
    }
  in
  let h = Itua.Model.build p in
  Alcotest.(check bool) "non-Markovian model rejected" true
    (match Ctmc.Explore.explore h.Itua.Model.model with
    | (_ : Ctmc.Explore.t) -> false
    | exception Ctmc.Explore.Non_markovian _ -> true)

let test_erlang_ids_less_variable_detection () =
  (* Same mean IDS latency but lower variance: early detections become
     rarer, so the fraction of corrupt time in the first moments shifts;
     sanity-check the knob changes behaviour at all while keeping the
     measure in range. *)
  let measure stages =
    let p =
      { small_params with
        Itua.Params.ids_latency_stages = stages; rate_scale = 2.0 }
    in
    let h = Itua.Model.build p in
    let spec =
      Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
        [ Itua.Measures.fraction_domains_excluded h ~at:10.0 ]
    in
    (List.hd (Sim.Runner.run ~seed:43L ~reps:400 spec)).ci.Stats.Ci.mean
  in
  let exp1 = measure 1 and erl8 = measure 8 in
  Alcotest.(check bool)
    (Printf.sprintf "both in range (%.3f, %.3f)" exp1 erl8)
    true
    (0.0 < exp1 && exp1 < 1.0 && 0.0 < erl8 && erl8 < 1.0)

(* --- exact CTMC cross-validation of a tiny configuration --- *)

let test_tiny_config_matches_ctmc () =
  (* With one domain, one host, one application and one replica, the
     placement choices are forced, no effect consumes randomness, and the
     full ITUA model is explorable analytically.  The simulator must agree
     with the exact transient solution. *)
  let p =
    {
      base_params with
      Itua.Params.num_domains = 1;
      hosts_per_domain = 1;
      num_apps = 1;
      num_reps = 1;
      rate_scale = 1.0;
    }
  in
  let h = Itua.Model.build p in
  let c = Ctmc.Explore.explore h.Itua.Model.model in
  Alcotest.(check bool) "nontrivial state space" true
    (Ctmc.Explore.n_states c > 50);
  let improper m = Itua.Model.improper h 0 m in
  let unavailable m = Itua.Model.unavailable h 0 m in
  let exact_ur = Ctmc.Measure.ever c ~until:5.0 improper in
  let exact_ua =
    Ctmc.Measure.interval_average c ~until:5.0 (fun m ->
        if unavailable m then 1.0 else 0.0)
  in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0
      [
        Itua.Measures.unreliability h ~until:5.0;
        Itua.Measures.unavailability h ~until:5.0;
      ]
  in
  match Sim.Runner.run ~seed:5L ~reps:20_000 spec with
  | [ ur; ua ] ->
      if not (Stats.Ci.contains ur.ci exact_ur) then
        Alcotest.failf "unreliability: CI %s misses exact %.5f"
          (Format.asprintf "%a" Stats.Ci.pp ur.ci)
          exact_ur;
      if not (Stats.Ci.contains ua.ci exact_ua) then
        Alcotest.failf "unavailability: CI %s misses exact %.5f"
          (Format.asprintf "%a" Stats.Ci.pp ua.ci)
          exact_ua
  | _ -> Alcotest.fail "arity"

(* --- rare-event splitting against the exact CTMC --- *)

let test_splitting_matches_ctmc () =
  (* The same minimal configuration as the CTMC cross-validation above:
     the splitting engine with the ITUA importance function must
     reproduce the exact unreliability tail. *)
  let p =
    {
      base_params with
      Itua.Params.num_domains = 1;
      hosts_per_domain = 1;
      num_apps = 1;
      num_reps = 1;
      rate_scale = 1.0;
    }
  in
  let h = Itua.Model.build p in
  let c = Ctmc.Explore.explore h.Itua.Model.model in
  let exact =
    Ctmc.Measure.ever c ~until:5.0 (fun m -> Itua.Model.improper h 0 m)
  in
  let levels = Itua.Rare.default_levels in
  let r =
    Sim.Splitting.run ~model:h.Itua.Model.model
      ~config:(Sim.Executor.config ~horizon:5.0 ())
      ~importance:(Itua.Rare.unreliability ~app:0 h ~levels)
      ~levels ~clones:2 ~initial:4000 ~seed:20030622L ()
  in
  let est = r.Sim.Splitting.estimate in
  let sigma = sqrt (Stats.Splitting.variance est) in
  let gap = Float.abs (est.Stats.Splitting.probability -. exact) in
  if gap > 3.0 *. sigma then
    Alcotest.failf "splitting %.5g vs exact %.5g: gap %.3g > 3σ = %.3g"
      est.Stats.Splitting.probability exact gap (3.0 *. sigma);
  if not (Stats.Ci.contains est.Stats.Splitting.ci exact) then
    Alcotest.failf "reported CI %s misses exact %.5g"
      (Format.asprintf "%a" Stats.Ci.pp est.Stats.Splitting.ci)
      exact

let test_rare_point_runs () =
  (* Study wiring smoke: a small splitting run on a non-degenerate
     configuration returns a sane estimate and stage profile. *)
  let params =
    {
      base_params with
      Itua.Params.num_domains = 2;
      hosts_per_domain = 1;
      num_apps = 1;
      num_reps = 2;
    }
  in
  let config = { Itua.Study.quick_config with reps = 400 } in
  let r =
    Itua.Study.rare_point ~config ~measure:Itua.Study.Unreliability ~params
      ~until:5.0 ()
  in
  let est = r.Sim.Splitting.estimate in
  Alcotest.(check bool) "probability in (0, 1)" true
    (est.Stats.Splitting.probability >= 0.0
    && est.Stats.Splitting.probability < 1.0);
  Alcotest.(check bool) "ran all levels or went dry" true
    (Array.length est.Stats.Splitting.stages <= Itua.Rare.default_levels);
  Alcotest.(check bool) "counted work" true (r.Sim.Splitting.total_events > 0)

(* --- trace observer on an ITUA model --- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let tiny_params =
  {
    base_params with
    Itua.Params.num_domains = 1;
    hosts_per_domain = 1;
    num_apps = 1;
    num_reps = 1;
  }

let test_trace_on_itua () =
  let h = Itua.Model.build tiny_params in
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  let observer =
    Sim.Trace.observer ~show_marking:true ~model:h.Itua.Model.model ppf
  in
  (* The tiny config averages only ~0.1 firings/hour; a long horizon makes
     at least one firing (and its marking dump) all but certain. *)
  let cfg = Sim.Executor.config ~horizon:200.0 () in
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~model:h.Itua.Model.model ~config:cfg
      ~stream:(Prng.Stream.create ~seed:42L)
      ~observer ()
  in
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  let lines = String.split_on_char '\n' out in
  let starts_with p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  Alcotest.(check bool) "timestamped init line first" true
    (match lines with
    | l :: _ -> starts_with "t=" l && contains ~needle:"init" l
    | [] -> false);
  Alcotest.(check bool) "end line present" true
    (List.exists
       (fun l -> starts_with "t=" l && contains ~needle:"end" l)
       lines);
  Alcotest.(check bool) "firing lines present" true
    (List.exists
       (fun l -> starts_with "t=" l && contains ~needle:"fire " l)
       lines);
  (* Marking dumps list composed ITUA place names, indented. *)
  let dump_lines = List.filter (starts_with "    ") lines in
  Alcotest.(check bool) "marking dumped" true (dump_lines <> []);
  Alcotest.(check bool) "dump shows place = value" true
    (List.exists
       (fun l ->
         contains ~needle:" = " l
         && contains ~needle:"security_domains.domain[0].host[0]." l)
       dump_lines)

(* --- failure forensics --- *)

let event =
  Alcotest.testable Itua.Forensics.pp_event (fun a b -> a = b)

let test_forensics_synthetic_chain () =
  let change place value = { Sim.Trajectory.place; value } in
  let step time activity changes =
    { Sim.Trajectory.time; activity; case = 0; changes }
  in
  let t =
    {
      Sim.Trajectory.rep = 7;
      matched = true;
      events = 6;
      horizon = 10.0;
      init =
        [
          change "apps.app[0].replicas_running" 3.0;
          change "security_domains.domain[0].host[0].alive" 1.0;
        ];
      steps =
        [
          step 1.5 "attack"
            [ change "security_domains.domain[0].host[0].attacked" 2.0 ];
          step 2.0 "ids"
            [ change "security_domains.domain[0].host[0].host_detected" 1.0 ];
          step 3.0 "exclude"
            [
              change "security_domains.domain[0].excluded" 1.0;
              change "excluded_hosts" 2.0;
              change "excluded_corrupt_hosts" 1.0;
              change "security_domains.domain[0].host[0].alive" 0.0;
            ];
          step 4.0 "app[1].management.recovery"
            [ change "apps.app[1].replica[2].corrupt" 1.0 ];
          step 5.0 "vote"
            [
              change "apps.app[0].rep_corr_undetected" 1.0;
              change "apps.app[0].rep_grp_failure" 1.0;
            ];
          step 6.0 "starve" [ change "apps.app[0].replicas_running" 0.0 ];
        ];
    }
  in
  let c = Itua.Forensics.chain_of_trajectory t in
  Alcotest.(check int) "rep" 7 c.Itua.Forensics.rep;
  Alcotest.(check bool) "matched" true c.Itua.Forensics.matched;
  Alcotest.(check (list event)) "labeled attack chain"
    [
      Itua.Forensics.Host_intrusion
        { domain = 0; host = 0; klass = "exploratory"; time = 1.5 };
      Itua.Forensics.Host_detected { domain = 0; host = 0; time = 2.0 };
      (* The exclusion tallies come from the same-step deltas of the
         measure accumulators. *)
      Itua.Forensics.Domain_excluded
        { domain = 0; corrupt = 1; hosts = 2; time = 3.0 };
      Itua.Forensics.Host_excluded { domain = 0; host = 0; time = 3.0 };
      Itua.Forensics.Recovery { app = 1; time = 4.0 };
      Itua.Forensics.Replica_corrupted { app = 1; replica = 2; time = 4.0 };
      Itua.Forensics.App_improper
        { app = 0; corrupt = 1; running = 3; time = 5.0 };
      Itua.Forensics.App_starved { app = 0; time = 6.0 };
    ]
    c.Itua.Forensics.events;
  Alcotest.(check bool) "ttf is the first failure event" true
    (c.Itua.Forensics.time_to_failure = Some 5.0);
  let s = Itua.Forensics.summarize [ c ] in
  Alcotest.(check int) "one chain" 1 s.Itua.Forensics.chains;
  Alcotest.(check int) "one failed" 1 s.Itua.Forensics.failed;
  Alcotest.(check (float 0.0)) "ttf mean" 5.0 s.Itua.Forensics.ttf_mean;
  Alcotest.(check (float 0.0)) "ttf min" 5.0 s.Itua.Forensics.ttf_min;
  Alcotest.(check (float 0.0)) "ttf max" 5.0 s.Itua.Forensics.ttf_max

let test_forensics_summary_empty () =
  let s = Itua.Forensics.summarize [] in
  Alcotest.(check int) "no chains" 0 s.Itua.Forensics.chains;
  Alcotest.(check bool) "nan mean" true (Float.is_nan s.Itua.Forensics.ttf_mean)

(* End-to-end: record failing small-config runs through the runner and
   compress every retained trajectory into a chain. *)
let test_forensics_end_to_end () =
  let h = Itua.Model.build small_params in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:10.0
      [ Itua.Measures.unreliability h ~until:10.0 ]
  in
  let sink =
    Sim.Trajectory.sink ~k:4
      ~predicate:(Itua.Forensics.failed_now h)
      ~model:h.Itua.Model.model ()
  in
  let rs = Sim.Runner.run ~seed:23L ~reps:300 ~record:sink spec in
  let unrel = (List.hd rs).Sim.Runner.ci.Stats.Ci.mean in
  Alcotest.(check int) "all runs offered" 300 (Sim.Trajectory.runs sink);
  (* Unreliability averages the per-app indicators, so the fraction of
     runs where ANY app failed (the capture predicate) bounds it above. *)
  Alcotest.(check bool) "matched fraction >= unreliability" true
    (float_of_int (Sim.Trajectory.matched_runs sink) /. 300.0
    >= unrel -. 1e-9);
  let matching = Sim.Trajectory.matching sink in
  Alcotest.(check bool) "retained some failures" true (matching <> []);
  Alcotest.(check bool) "bounded by k" true (List.length matching <= 4);
  List.iter
    (fun t ->
      let c = Itua.Forensics.chain_of_trajectory t in
      Alcotest.(check bool) "failing chain has events" true
        (c.Itua.Forensics.events <> []);
      (* A run the predicate matched must show a replication-group
         failure in its chain. *)
      Alcotest.(check bool) "chain contains an improper-group event" true
        (List.exists
           (function
             | Itua.Forensics.App_improper _ -> true
             | _ -> false)
           c.Itua.Forensics.events))
    matching

let test_failed_now_initially_false () =
  let h = Itua.Model.build small_params in
  let m = San.Model.initial_marking h.Itua.Model.model in
  Alcotest.(check bool) "healthy at t=0" false (Itua.Forensics.failed_now h m)

(* --- qualitative shapes from the paper (regression) --- *)

let panels =
  lazy (Itua.Study.all ~config:Itua.Study.quick_config ())

let test_shapes () =
  let checks = Itua.Study.shape_checks (Lazy.force panels) in
  Alcotest.(check bool) "produced checks" true (List.length checks >= 8);
  List.iter
    (fun (label, ok) -> if not ok then Alcotest.failf "shape check failed: %s" label)
    checks

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_invariants_hold ] in
  Alcotest.run "itua"
    [
      ( "params",
        [
          Alcotest.test_case "default valid" `Quick test_params_default_valid;
          Alcotest.test_case "rejections" `Quick test_params_rejects;
          Alcotest.test_case "derived rates" `Quick test_params_derived_rates;
          Alcotest.test_case "domain-capped placement" `Quick
            test_fewer_domains_than_replicas;
        ] );
      ( "model",
        [
          Alcotest.test_case "sizes" `Quick test_model_sizes;
          Alcotest.test_case "structure rendering" `Quick
            test_structure_rendering;
        ] );
      ( "placement",
        [
          Alcotest.test_case "initial placement" `Quick test_initial_placement;
          Alcotest.test_case "capped by domains" `Quick
            test_initial_placement_capped;
          Alcotest.test_case "managers start" `Quick test_initial_managers;
        ] );
      ( "exclusion",
        [
          Alcotest.test_case "domain exclusion is whole-domain" `Quick
            test_domain_exclusion_kills_whole_domains;
          Alcotest.test_case "host exclusion spares domains" `Quick
            test_host_exclusion_never_marks_domains;
          Alcotest.test_case "false alarms hit clean domains" `Quick
            test_false_alarms_exclude_clean_domains;
          Alcotest.test_case "no attacks, no failures" `Quick
            test_no_attacks_no_byzantine;
        ] );
      ( "measures",
        [
          Alcotest.test_case "ranges" `Quick test_measures_in_range;
          Alcotest.test_case "unavailability below unreliability" `Slow
            test_unreliability_dominates_final_unavailability;
          Alcotest.test_case "conditional measure undefined" `Quick
            test_fraction_corrupt_undefined_without_exclusions;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "retrying IDS detects more" `Slow
            test_ablation_retrying_ids_detects_more;
          Alcotest.test_case "spread persistence matters" `Slow
            test_ablation_spread_persistence_matters;
          Alcotest.test_case "ungated recovery not worse" `Slow
            test_ablation_ungated_recovery_not_worse;
          Alcotest.test_case "model passes check" `Slow
            test_itua_model_passes_check;
        ] );
      ("properties", props);
      ( "non-exponential",
        [
          Alcotest.test_case "erlang IDS with invariants" `Slow
            test_erlang_ids_runs_with_invariants;
          Alcotest.test_case "rejected by CTMC path" `Quick
            test_erlang_ids_rejected_by_ctmc;
          Alcotest.test_case "latency shape knob" `Slow
            test_erlang_ids_less_variable_detection;
        ] );
      ( "ctmc-cross-validation",
        [
          Alcotest.test_case "tiny config exact" `Slow
            test_tiny_config_matches_ctmc;
        ] );
      ( "rare-events",
        [
          Alcotest.test_case "splitting matches exact ctmc" `Slow
            test_splitting_matches_ctmc;
          Alcotest.test_case "study rare_point" `Slow test_rare_point_runs;
        ] );
      ( "trace",
        [ Alcotest.test_case "show marking on ITUA" `Quick test_trace_on_itua ] );
      ( "forensics",
        [
          Alcotest.test_case "synthetic chain" `Quick
            test_forensics_synthetic_chain;
          Alcotest.test_case "empty summary" `Quick test_forensics_summary_empty;
          Alcotest.test_case "end to end" `Slow test_forensics_end_to_end;
          Alcotest.test_case "healthy at start" `Quick
            test_failed_now_initially_false;
        ] );
      ( "paper-shapes",
        [ Alcotest.test_case "figure shapes" `Slow test_shapes ] );
    ]
