type two_state = { ts_model : San.Model.t; up : San.Place.t }

let two_state ~lambda ~mu =
  let b = San.Model.Builder.create "two_state" in
  let up = San.Model.Builder.int_place b ~init:1 "up" in
  San.Model.Builder.timed_exp_rate_ir b ~name:"fail"
    ~rate:(San.Effect.RConst lambda)
    ~guard:San.Effect.(Cmp (Mark up, Eq, Int 1))
    ~reads:[ San.Place.P up ]
    San.Effect.(Ops [ Set (up, Int 0) ]);
  San.Model.Builder.timed_exp_rate_ir b ~name:"repair"
    ~rate:(San.Effect.RConst mu)
    ~guard:San.Effect.(Cmp (Mark up, Eq, Int 0))
    ~reads:[ San.Place.P up ]
    San.Effect.(Ops [ Set (up, Int 1) ]);
  { ts_model = San.Model.Builder.build b; up }

let two_state_availability ~lambda ~mu t =
  let s = lambda +. mu in
  (mu /. s) +. (lambda /. s *. exp (-.s *. t))

type queue = { q_model : San.Model.t; q_len : San.Place.t }

let mm1k ~lambda ~mu ~k =
  let b = San.Model.Builder.create "mm1k" in
  let q_len = San.Model.Builder.int_place b "customers" in
  San.Model.Builder.timed_exp_rate_ir b ~name:"arrive"
    ~rate:(San.Effect.RConst lambda)
    ~guard:San.Effect.(Cmp (Mark q_len, Lt, Int k))
    ~reads:[ San.Place.P q_len ]
    San.Effect.(Ops [ Inc (q_len, Int 1) ]);
  San.Model.Builder.timed_exp_rate_ir b ~name:"serve"
    ~rate:(San.Effect.RConst mu)
    ~guard:San.Effect.(Cmp (Mark q_len, Gt, Int 0))
    ~reads:[ San.Place.P q_len ]
    San.Effect.(Ops [ Inc (q_len, Int (-1)) ]);
  { q_model = San.Model.Builder.build b; q_len }

let mm1k_steady ~lambda ~mu ~k =
  let rho = lambda /. mu in
  let raw = Array.init (k + 1) (fun i -> rho ** float_of_int i) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun x -> x /. total) raw

type tandem = { td_model : San.Model.t; stage : San.Place.t }

let tandem ~r1 ~r2 =
  let b = San.Model.Builder.create "tandem" in
  let stage = San.Model.Builder.int_place b "stage" in
  San.Model.Builder.timed_exp_rate_ir b ~name:"step1"
    ~rate:(San.Effect.RConst r1)
    ~guard:San.Effect.(Cmp (Mark stage, Eq, Int 0))
    ~reads:[ San.Place.P stage ]
    San.Effect.(Ops [ Set (stage, Int 1) ]);
  San.Model.Builder.timed_exp_rate_ir b ~name:"step2"
    ~rate:(San.Effect.RConst r2)
    ~guard:San.Effect.(Cmp (Mark stage, Eq, Int 1))
    ~reads:[ San.Place.P stage ]
    San.Effect.(Ops [ Set (stage, Int 2) ]);
  { td_model = San.Model.Builder.build b; stage }

let tandem_absorbed ~r1 ~r2 t =
  (* P(T1 + T2 <= t) for independent exponentials with distinct rates:
     1 - (r2 e^{-r1 t} - r1 e^{-r2 t}) / (r2 - r1). *)
  if Float.abs (r1 -. r2) < 1e-9 then
    invalid_arg "tandem_absorbed: rates must be distinct";
  1.0 -. (((r2 *. exp (-.r1 *. t)) -. (r1 *. exp (-.r2 *. t))) /. (r2 -. r1))

type gong = { g_model : San.Model.t; g_state : San.Place.t }

let gong_transitions =
  [
    (0, 1, 0.30, "probe_finds_vulnerability");
    (1, 0, 0.50, "vulnerability_patched");
    (1, 2, 0.40, "exploitation_starts");
    (2, 3, 0.25, "redundancy_masks");
    (2, 4, 0.10, "compromise_undetected");
    (2, 5, 0.60, "attack_detected");
    (3, 0, 0.80, "masked_repair");
    (4, 8, 0.30, "undetected_failure");
    (4, 5, 0.15, "late_detection");
    (5, 6, 0.35, "degrade_gracefully");
    (5, 7, 0.35, "fail_secure");
    (5, 0, 0.20, "full_recovery");
    (6, 0, 0.50, "restore_from_degraded");
    (7, 0, 0.40, "restore_from_fail_secure");
    (8, 0, 0.125, "manual_repair");
  ]

let gong () =
  let b = San.Model.Builder.create "gong_nine_state" in
  let g_state = San.Model.Builder.int_place b "state" in
  List.iter
    (fun (src, dst, rate, label) ->
      San.Model.Builder.timed_exp_rate_ir b ~name:label
        ~rate:(San.Effect.RConst rate)
        ~guard:San.Effect.(Cmp (Mark g_state, Eq, Int src))
        ~reads:[ San.Place.P g_state ]
        San.Effect.(Ops [ Set (g_state, Int dst) ]))
    gong_transitions;
  { g_model = San.Model.Builder.build b; g_state }
