(** Small SAN models with known analytical behaviour, shared by the
    simulator and CTMC test suites. *)

type two_state = {
  ts_model : San.Model.t;
  up : San.Place.t;  (** 1 while the component works *)
}

val two_state : lambda:float -> mu:float -> two_state
(** Repairable component: fails at rate [lambda], repairs at rate [mu].
    Availability at time t is
    mu/(lambda+mu) + lambda/(lambda+mu) · exp (-(lambda+mu) t). *)

val two_state_availability : lambda:float -> mu:float -> float -> float
(** The closed-form availability above. *)

type queue = {
  q_model : San.Model.t;
  q_len : San.Place.t;  (** number of customers in the system *)
}

val mm1k : lambda:float -> mu:float -> k:int -> queue
(** M/M/1/K queue: Poisson arrivals (blocked when [k] customers present),
    exponential service. *)

val mm1k_steady : lambda:float -> mu:float -> k:int -> float array
(** Closed-form stationary distribution of the M/M/1/K queue,
    index = number in system. *)

type tandem = {
  td_model : San.Model.t;
  stage : San.Place.t;  (** 0, 1 or 2 *)
}

val tandem : r1:float -> r2:float -> tandem
(** Pure-death chain 0 → 1 → 2 with rates [r1] then [r2]; state 2 is
    absorbing. P(in state 2 by t) has a closed form, see
    {!tandem_absorbed}. *)

val tandem_absorbed : r1:float -> r2:float -> float -> float
(** P(absorbed by time t) for {!tandem} (distinct rates required). *)

type gong = { g_model : San.Model.t; g_state : San.Place.t }

val gong : unit -> gong
(** The Gong et al. nine-state intrusion-tolerance model (DISCEX'01),
    the same chain as [examples/gong_nine_state.ml]: nine states encoded
    in one place, every state reachable, state 0 initial. Useful as a
    known-size exhaustive-exploration target. *)
