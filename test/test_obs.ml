(* Tests for lib/obs: the metrics registry (kinds, merging, snapshot
   schema and determinism), the phase profiler (self-time accounting,
   spans, GC capture) and the convergence recorder — plus their
   integration with the runner, the splitting engine and the CTMC
   solvers. *)

module R = Obs.Registry
module P = Obs.Profile
module C = Obs.Convergence

(* --- registry --- *)

let test_counter_and_gauge () =
  let reg = R.create () in
  let s = R.scope reg "s" in
  let c = R.counter s "c" in
  R.incr c;
  R.add c 41;
  Alcotest.(check int) "counter" 42 (R.counter_value c);
  Alcotest.(check int) "same handle" 42 (R.counter_value (R.counter s "c"));
  let g = R.gauge s "g" in
  R.set g 2.5;
  R.gauge_add g 0.5;
  Alcotest.(check (float 1e-12)) "gauge" 3.0 (R.gauge_value g);
  let g2 = R.gauge s "g2" in
  R.gauge_add g2 1.5;
  Alcotest.(check (float 1e-12)) "gauge_add from nan" 1.5 (R.gauge_value g2)

let test_kind_mismatch () =
  let reg = R.create () in
  let s = R.scope reg "s" in
  let (_ : R.counter) = R.counter s "x" in
  (match R.gauge s "x" with
  | _ -> Alcotest.fail "gauge over counter should raise"
  | exception Invalid_argument _ -> ());
  match R.histogram s "x" with
  | _ -> Alcotest.fail "histogram over counter should raise"
  | exception Invalid_argument _ -> ()

(* Pins the itua-metrics/1 schema byte-for-byte on a tiny registry:
   sorted scopes/metrics, integer-rendered floats, power-of-two bucket
   upper bounds, non-zero buckets only. *)
let test_snapshot_schema () =
  let reg = R.create () in
  let s = R.scope reg "h" in
  let h = R.histogram s "lat" in
  List.iter (fun v -> R.observe h v) [ 1.0; 2.0; 3.0 ];
  Alcotest.(check string)
    "snapshot"
    "{\"schema\":\"itua-metrics/1\",\"scopes\":[{\"scope\":\"h\",\"metrics\":\
     [{\"name\":\"lat\",\"kind\":\"histogram\",\"count\":3,\"sum\":6,\"min\":\
     1,\"max\":3,\"buckets\":[{\"le\":1,\"count\":1},{\"le\":2,\"count\":1},\
     {\"le\":4,\"count\":1}]}]}]}"
    (Report.Json.to_string (R.to_json reg))

let test_volatile_filter () =
  let reg = R.create () in
  let s = R.scope reg "s" in
  R.add (R.counter s "kept") 1;
  R.set (R.gauge ~volatile:true s "dropped") 1.23;
  let full = Report.Json.to_string (R.to_json reg) in
  let core = Report.Json.to_string (R.to_json ~volatile:false reg) in
  let has needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "full has volatile" true (has "dropped" full);
  Alcotest.(check bool) "full flags volatile" true
    (has "\"volatile\":true" full);
  Alcotest.(check bool) "core drops volatile" false (has "dropped" core);
  Alcotest.(check bool) "core keeps counter" true (has "kept" core)

let test_merge_policies () =
  let a = R.create () and b = R.create () in
  let fill reg cv gmax gsum gmin =
    let s = R.scope reg "s" in
    R.add (R.counter s "c") cv;
    R.set (R.gauge s "gmax") gmax;
    R.set (R.gauge ~merge:`Sum s "gsum") gsum;
    R.set (R.gauge ~merge:`Min s "gmin") gmin;
    R.observe (R.histogram s "h") (float_of_int cv)
  in
  fill a 3 1.0 1.0 1.0;
  fill b 4 2.0 2.0 2.0;
  R.merge ~into:a b;
  let s = R.scope a "s" in
  Alcotest.(check int) "counters add" 7 (R.counter_value (R.counter s "c"));
  Alcotest.(check (float 0.0)) "max" 2.0 (R.gauge_value (R.gauge s "gmax"));
  Alcotest.(check (float 0.0)) "sum" 3.0 (R.gauge_value (R.gauge s "gsum"));
  Alcotest.(check (float 0.0))
    "min" 1.0
    (R.gauge_value (R.gauge ~merge:`Min s "gmin"));
  (* the missing-scope path: merging into an empty registry copies *)
  let c = R.create () in
  R.merge ~into:c a;
  Alcotest.(check string)
    "copy merge equals source"
    (Report.Json.to_string (R.to_json a))
    (Report.Json.to_string (R.to_json c))

let test_merge_order_independent () =
  (* integer-only metrics merge identically in any order — the
     structural basis of the cross-cores determinism claim *)
  let mk cv hv =
    let reg = R.create () in
    let s = R.scope reg "s" in
    R.add (R.counter s "c") cv;
    R.observe (R.histogram s "h") hv;
    reg
  in
  let render regs =
    let into = R.create () in
    List.iter (fun r -> R.merge ~into r) regs;
    Report.Json.to_string (R.to_json into)
  in
  let r1 = mk 1 1.0 and r2 = mk 2 7.0 and r3 = mk 4 100.0 in
  Alcotest.(check string)
    "permuted merge"
    (render [ r1; r2; r3 ])
    (render [ r3; r1; r2 ])

(* --- engine metrics guard --- *)

let test_events_per_sec_guard () =
  let model = (Test_models.two_state ~lambda:1.0 ~mu:10.0).Test_models.ts_model in
  let m = Sim.Metrics.create ~model in
  Alcotest.(check bool)
    "nan with no wall time" true
    (Float.is_nan (Sim.Metrics.events_per_sec m));
  Sim.Metrics.add_wall m 1e-9;
  Alcotest.(check bool)
    "nan below a microsecond, not inf" true
    (Float.is_nan (Sim.Metrics.events_per_sec m));
  Sim.Metrics.add_wall m 2.0;
  let (_ : Sim.Executor.outcome) =
    Sim.Executor.run ~metrics:m ~model
      ~config:(Sim.Executor.config ~horizon:10.0 ())
      ~stream:(Prng.Stream.create ~seed:7L)
      ~observer:Sim.Observer.nop ()
  in
  Alcotest.(check bool)
    "finite once real wall time recorded" true
    (Float.is_finite (Sim.Metrics.events_per_sec m))

(* --- cross-cores snapshot determinism --- *)

let spec_two_state () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:10.0 in
  let model = ts.Test_models.ts_model in
  Sim.Runner.spec ~model ~horizon:20.0
    [
      Sim.Reward.time_average ~name:"avail" ~until:20.0 (fun m ->
          float_of_int (San.Marking.get m ts.Test_models.up));
    ]

let snapshot_core ~domains =
  let spec = spec_two_state () in
  let metrics = Sim.Metrics.create ~model:spec.Sim.Runner.model in
  let profile = P.create () in
  let (_ : Sim.Runner.result list) =
    Sim.Runner.run ~domains ~metrics ~profile ~seed:42L ~reps:256 spec
  in
  let reg = R.create () in
  Sim.Metrics.export metrics ~into:reg;
  P.export profile ~into:reg;
  Report.Json.to_string (R.to_json ~volatile:false reg)

let test_snapshot_deterministic_across_cores () =
  let one = snapshot_core ~domains:1 in
  let four = snapshot_core ~domains:4 in
  Alcotest.(check string) "1 vs 4 domains, volatile excluded" one four

(* --- profiler --- *)

let test_profiler_self_time_accounting () =
  let p = P.create () in
  let t0 = Obs.Clock.now_ns () in
  let spin () =
    let s = ref 0.0 in
    for i = 1 to 200_000 do
      s := !s +. sqrt (float_of_int i)
    done;
    ignore (Sys.opaque_identity !s)
  in
  P.span p P.Propagate (fun () ->
      spin ();
      P.span p P.Sample spin);
  P.span p P.Heap_push spin;
  let wall = Obs.Clock.seconds_since t0 in
  Alcotest.(check int) "propagate count" 1 (P.count p P.Propagate);
  Alcotest.(check int) "sample count" 1 (P.count p P.Sample);
  Alcotest.(check int) "heap_push count" 1 (P.count p P.Heap_push);
  Alcotest.(check int) "stabilize untouched" 0 (P.count p P.Stabilize);
  Alcotest.(check bool)
    "every phase self-time non-negative" true
    (Array.for_all (fun ph -> P.self_seconds p ph >= 0.0) P.phases);
  Alcotest.(check bool)
    "attributed <= wall" true
    (P.attributed_seconds p <= wall);
  Alcotest.(check bool)
    "attributed is the phase sum" true
    (Float.abs
       (P.attributed_seconds p
       -. Array.fold_left (fun acc ph -> acc +. P.self_seconds p ph) 0.0
            P.phases)
    < 1e-12)

let test_profiler_span_exception_safe () =
  let p = P.create () in
  (try P.span p P.Checkpoint (fun () -> failwith "boom") with Failure _ -> ());
  (* the phase stack must have been popped: a further span still nests *)
  P.span p P.Checkpoint (fun () -> ());
  Alcotest.(check int) "both spans counted" 2 (P.count p P.Checkpoint)

let test_profiler_merge_and_gc () =
  let a = P.create () in
  let b = P.fork ~tid:3 a in
  P.span a P.Propagate (fun () -> ());
  P.span b P.Propagate (fun () -> ());
  P.span b P.Stabilize (fun () -> ());
  let (_ : float array) = Array.make 100_000 0.0 in
  P.gc_capture b;
  P.merge ~into:a b;
  Alcotest.(check int) "propagate counts add" 2 (P.count a P.Propagate);
  Alcotest.(check int) "stabilize arrives" 1 (P.count a P.Stabilize);
  Alcotest.(check bool)
    "allocated words captured" true
    (P.gc_allocated_words a > 0.0)

let test_executor_profile_sums_below_wall () =
  let ts = Test_models.two_state ~lambda:1.0 ~mu:10.0 in
  let p = P.create () in
  let t0 = Obs.Clock.now_ns () in
  for seed = 1 to 20 do
    let (_ : Sim.Executor.outcome) =
      Sim.Executor.run ~profile:p ~model:ts.Test_models.ts_model
        ~config:(Sim.Executor.config ~horizon:50.0 ())
        ~stream:(Prng.Stream.create ~seed:(Int64.of_int seed))
        ~observer:Sim.Observer.nop ()
    in
    ()
  done;
  let wall = Obs.Clock.seconds_since t0 in
  Alcotest.(check bool)
    "phases were hit" true
    (P.count p P.Sample > 0 && P.count p P.Heap_pop > 0
    && P.count p P.Propagate > 0);
  Alcotest.(check bool)
    "self-times sum at most measured wall" true
    (P.attributed_seconds p <= wall)

let test_trace_spans_jsonl () =
  let p = P.create ~spans:true () in
  P.span p P.Propagate (fun () -> P.span p P.Sample (fun () -> ()));
  P.span p P.Stabilize (fun () -> ());
  let path = Filename.temp_file "obs_trace" ".jsonl" in
  P.write_trace path p;
  let lines =
    match Report.read_jsonl path with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  Sys.remove path;
  Alcotest.(check int) "one event per completed span" 3 (List.length lines);
  List.iter
    (fun j ->
      let module J = Report.Json in
      Alcotest.(check (option string))
        "complete event" (Some "X")
        (Option.bind (J.member "ph" j) J.str);
      let field k = Option.bind (J.member k j) J.num in
      Alcotest.(check bool)
        "ts and dur non-negative" true
        (match (field "ts", field "dur") with
        | Some ts, Some dur -> ts >= 0.0 && dur >= 0.0
        | _ -> false))
    lines

(* --- convergence recorder --- *)

let test_convergence_recorder () =
  let c = C.create () in
  Alcotest.(check bool) "fresh is empty" true (C.is_empty c);
  C.record c ~measure:"m" ~n:10 ~value:0.5 ~half_width:0.2 ~confidence:0.95;
  C.record c ~measure:"m" ~n:20 ~value:0.45;
  let pts = C.points c in
  Alcotest.(check int) "two points" 2 (List.length pts);
  let p2 = List.nth pts 1 in
  Alcotest.(check bool)
    "defaults are nan" true
    (Float.is_nan p2.C.half_width && Float.is_nan p2.C.confidence);
  Alcotest.(check (list string))
    "csv row renders nan as empty"
    [ "m"; "20"; "0.45"; ""; "" ]
    (List.nth (C.csv_rows c) 1);
  Alcotest.(check string)
    "json nulls non-finite"
    "[{\"measure\":\"m\",\"n\":10,\"value\":0.5,\"half_width\":0.2,\
     \"confidence\":0.95},{\"measure\":\"m\",\"n\":20,\"value\":0.45,\
     \"half_width\":null,\"confidence\":null}]"
    (Report.Json.to_string (C.to_json c))

let test_runner_convergence_trajectory () =
  let spec = spec_two_state () in
  let conv = C.create () in
  let (_ : Sim.Runner.result list) =
    Sim.Runner.run ~convergence:conv ~seed:11L ~reps:200 spec
  in
  let pts = C.points conv in
  Alcotest.(check bool)
    "chunked even without progress" true
    (List.length pts > 1);
  let ns = List.map (fun p -> p.C.n) pts in
  Alcotest.(check bool)
    "n non-decreasing up to the rep count" true
    (List.for_all (fun n -> n >= 1 && n <= 200) ns
    && List.sort compare ns = ns);
  Alcotest.(check int)
    "last point covers every replication" 200
    (List.fold_left Int.max 0 ns);
  Alcotest.(check bool)
    "half-widths defined once n >= 2" true
    (List.for_all
       (fun p -> p.C.n < 2 || Float.is_finite p.C.half_width)
       pts)

(* --- splitting export --- *)

let test_splitting_export () =
  let td = Test_models.tandem ~r1:2.0 ~r2:1.0 in
  let importance m = San.Marking.get m td.Test_models.stage in
  let r =
    Sim.Splitting.run ~model:td.Test_models.td_model
      ~config:(Sim.Executor.config ~horizon:1.0 ())
      ~importance ~levels:2 ~clones:2 ~initial:64 ~seed:5L ()
  in
  let conv = C.create () in
  let reg = R.create () in
  Sim.Splitting.export ~convergence:conv r ~into:reg;
  let stages = Array.length r.Sim.Splitting.estimate.Stats.Splitting.stages in
  Alcotest.(check int)
    "one convergence point per stage" stages
    (List.length (C.points conv));
  let s = R.scope reg "splitting" in
  Alcotest.(check int)
    "stage count exported" stages
    (R.counter_value (R.counter s "stages"));
  Alcotest.(check int)
    "trial total exported" r.Sim.Splitting.total_trials
    (R.counter_value (R.counter s "trials"));
  let last = List.nth (C.points conv) (stages - 1) in
  Alcotest.(check (float 1e-12))
    "last point is the final estimate"
    r.Sim.Splitting.estimate.Stats.Splitting.probability last.C.value

(* --- CTMC instrumentation --- *)

let test_ctmc_steady_obs () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:4 in
  let reg = R.create () in
  let conv = C.create () in
  let p = P.create () in
  let chain = Ctmc.Explore.explore ~obs:reg ~profile:p q.Test_models.q_model in
  let (_ : float array) =
    Ctmc.Steady.distribution ~obs:reg ~convergence:conv ~profile:p chain
  in
  let s = R.scope reg "ctmc" in
  Alcotest.(check int)
    "states counted" 5
    (R.counter_value (R.counter s "explore_states"));
  Alcotest.(check bool)
    "solver iterated" true
    (R.counter_value (R.counter s "steady_iterations") > 0);
  Alcotest.(check bool)
    "delta trajectory recorded and shrinking" true
    (match C.points conv with
    | [] -> false
    | pts ->
        let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
        last.C.value <= first.C.value);
  Alcotest.(check bool)
    "explore and solve phases attributed" true
    (P.count p P.Ctmc_explore = 1 && P.count p P.Ctmc_solve = 1)

let test_ctmc_transient_obs () =
  let q = Test_models.mm1k ~lambda:1.0 ~mu:2.0 ~k:4 in
  let chain = Ctmc.Explore.explore q.Test_models.q_model in
  let reg = R.create () in
  let (_ : float array) = Ctmc.Transient.probabilities ~obs:reg chain ~t:2.0 in
  let s = R.scope reg "ctmc" in
  Alcotest.(check bool)
    "uniformization steps counted" true
    (R.counter_value (R.counter s "uniformization_steps") > 0)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_and_gauge;
          Alcotest.test_case "kind mismatch" `Quick test_kind_mismatch;
          Alcotest.test_case "snapshot schema" `Quick test_snapshot_schema;
          Alcotest.test_case "volatile filter" `Quick test_volatile_filter;
          Alcotest.test_case "merge policies" `Quick test_merge_policies;
          Alcotest.test_case "merge order-independent" `Quick
            test_merge_order_independent;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "events/sec guard" `Quick
            test_events_per_sec_guard;
          Alcotest.test_case "snapshot deterministic across cores" `Slow
            test_snapshot_deterministic_across_cores;
        ] );
      ( "profiler",
        [
          Alcotest.test_case "self-time accounting" `Quick
            test_profiler_self_time_accounting;
          Alcotest.test_case "span exception-safe" `Quick
            test_profiler_span_exception_safe;
          Alcotest.test_case "merge and gc" `Quick test_profiler_merge_and_gc;
          Alcotest.test_case "executor sums below wall" `Quick
            test_executor_profile_sums_below_wall;
          Alcotest.test_case "trace spans jsonl" `Quick test_trace_spans_jsonl;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "recorder" `Quick test_convergence_recorder;
          Alcotest.test_case "runner trajectory" `Quick
            test_runner_convergence_trajectory;
          Alcotest.test_case "splitting export" `Quick test_splitting_export;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "steady obs" `Quick test_ctmc_steady_obs;
          Alcotest.test_case "transient obs" `Quick test_ctmc_transient_obs;
        ] );
    ]
