(* Tests for the report library: table construction, lookups, text and CSV
   rendering. *)

let ci mean =
  {
    Stats.Ci.mean;
    half_width = 0.01;
    confidence = 0.95;
    n = 100;
  }

let sample_table () =
  let t =
    Report.create ~title:"demo" ~x_label:"x" ~series:[ "alpha"; "beta" ]
  in
  Report.add_row t ~x:1.0 [ Some (ci 0.5); None ];
  Report.add_row t ~x:2.0 [ Some (ci 0.25); Some (ci 0.75) ];
  t

let test_lookup () =
  let t = sample_table () in
  Alcotest.(check string) "title" "demo" (Report.title t);
  Alcotest.(check (list (float 0.0))) "x values" [ 1.0; 2.0 ]
    (Report.x_values t);
  (match Report.value t ~x:1.0 ~series:"alpha" with
  | Some c -> Alcotest.(check (float 1e-12)) "cell mean" 0.5 c.Stats.Ci.mean
  | None -> Alcotest.fail "expected a defined cell");
  Alcotest.(check bool) "undefined cell" true
    (Report.value t ~x:1.0 ~series:"beta" = None);
  Alcotest.(check bool) "unknown series raises" true
    (match Report.value t ~x:1.0 ~series:"nope" with
    | (_ : Report.cell) -> false
    | exception Not_found -> true);
  Alcotest.(check bool) "unknown x raises" true
    (match Report.value t ~x:9.0 ~series:"alpha" with
    | (_ : Report.cell) -> false
    | exception Not_found -> true)

let test_arity_checked () =
  let t = sample_table () in
  Alcotest.(check bool) "wrong arity rejected" true
    (match Report.add_row t ~x:3.0 [ Some (ci 1.0) ] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_no_series_rejected () =
  Alcotest.(check bool) "empty series rejected" true
    (match Report.create ~title:"t" ~x_label:"x" ~series:[] with
    | (_ : Report.table) -> false
    | exception Invalid_argument _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let test_text_rendering () =
  let out = Format.asprintf "%a" Report.pp_text (sample_table ()) in
  List.iter
    (fun needle ->
      if not (contains ~needle out) then
        Alcotest.failf "text output missing %S in:\n%s" needle out)
    [ "demo"; "alpha"; "beta"; "0.5"; "0.75"; "-" ]

let test_csv_rendering () =
  let out = Format.asprintf "%a" Report.pp_csv (sample_table ()) in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,alpha,alpha_halfwidth,beta,beta_halfwidth"
    (List.hd lines);
  Alcotest.(check bool) "undefined cells are empty" true
    (contains ~needle:"1,0.5,0.01,," (List.nth lines 1))

let test_csv_escaping () =
  let t =
    Report.create ~title:"t" ~x_label:"x,y" ~series:[ "a\"b" ]
  in
  Report.add_row t ~x:1.0 [ Some (ci 1.0) ];
  let out = Format.asprintf "%a" Report.pp_csv t in
  Alcotest.(check bool) "comma quoted" true (contains ~needle:"\"x,y\"" out);
  Alcotest.(check bool) "quote doubled" true (contains ~needle:"\"a\"\"b\"" out)

let test_write_csv () =
  let path = Filename.temp_file "report" ".csv" in
  Report.write_csv path (sample_table ());
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file written" "x,alpha,alpha_halfwidth,beta,beta_halfwidth" first

let test_csv_rows () =
  let header = [ "activity"; "firings" ] in
  let rows = [ [ "tick"; "5" ]; [ "a,b"; "0" ] ] in
  let out =
    Format.asprintf "%a" (Report.pp_csv_rows ~header) rows
  in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check (list string)) "rendered and escaped"
    [ "activity,firings"; "tick,5"; "\"a,b\",0" ]
    lines;
  Alcotest.(check bool) "row width checked" true
    (match Format.asprintf "%a" (Report.pp_csv_rows ~header) [ [ "x" ] ] with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true)

let test_write_csv_rows () =
  let path = Filename.temp_file "telemetry" ".csv" in
  Report.write_csv_rows path ~header:[ "a"; "b" ] [ [ "1"; "2" ] ];
  let ic = open_in path in
  let first = input_line ic in
  let second = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a,b" first;
  Alcotest.(check string) "row" "1,2" second

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "arity checked" `Quick test_arity_checked;
          Alcotest.test_case "no series rejected" `Quick
            test_no_series_rejected;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "text" `Quick test_text_rendering;
          Alcotest.test_case "csv" `Quick test_csv_rendering;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write_csv" `Quick test_write_csv;
          Alcotest.test_case "csv rows" `Quick test_csv_rows;
          Alcotest.test_case "write_csv_rows" `Quick test_write_csv_rows;
        ] );
    ]
