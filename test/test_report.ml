(* Tests for the report library: table construction, lookups, text and CSV
   rendering. *)

let ci mean =
  {
    Stats.Ci.mean;
    half_width = 0.01;
    confidence = 0.95;
    n = 100;
  }

let sample_table () =
  let t =
    Report.create ~title:"demo" ~x_label:"x" ~series:[ "alpha"; "beta" ]
  in
  Report.add_row t ~x:1.0 [ Some (ci 0.5); None ];
  Report.add_row t ~x:2.0 [ Some (ci 0.25); Some (ci 0.75) ];
  t

let test_lookup () =
  let t = sample_table () in
  Alcotest.(check string) "title" "demo" (Report.title t);
  Alcotest.(check (list (float 0.0))) "x values" [ 1.0; 2.0 ]
    (Report.x_values t);
  (match Report.value t ~x:1.0 ~series:"alpha" with
  | Some c -> Alcotest.(check (float 1e-12)) "cell mean" 0.5 c.Stats.Ci.mean
  | None -> Alcotest.fail "expected a defined cell");
  Alcotest.(check bool) "undefined cell" true
    (Report.value t ~x:1.0 ~series:"beta" = None);
  Alcotest.(check bool) "unknown series raises" true
    (match Report.value t ~x:1.0 ~series:"nope" with
    | (_ : Report.cell) -> false
    | exception Not_found -> true);
  Alcotest.(check bool) "unknown x raises" true
    (match Report.value t ~x:9.0 ~series:"alpha" with
    | (_ : Report.cell) -> false
    | exception Not_found -> true)

let test_arity_checked () =
  let t = sample_table () in
  Alcotest.(check bool) "wrong arity rejected" true
    (match Report.add_row t ~x:3.0 [ Some (ci 1.0) ] with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_no_series_rejected () =
  Alcotest.(check bool) "empty series rejected" true
    (match Report.create ~title:"t" ~x_label:"x" ~series:[] with
    | (_ : Report.table) -> false
    | exception Invalid_argument _ -> true)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let test_text_rendering () =
  let out = Format.asprintf "%a" Report.pp_text (sample_table ()) in
  List.iter
    (fun needle ->
      if not (contains ~needle out) then
        Alcotest.failf "text output missing %S in:\n%s" needle out)
    [ "demo"; "alpha"; "beta"; "0.5"; "0.75"; "-" ]

let test_csv_rendering () =
  let out = Format.asprintf "%a" Report.pp_csv (sample_table ()) in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "x,alpha,alpha_halfwidth,beta,beta_halfwidth"
    (List.hd lines);
  Alcotest.(check bool) "undefined cells are empty" true
    (contains ~needle:"1,0.5,0.01,," (List.nth lines 1))

let test_csv_escaping () =
  let t =
    Report.create ~title:"t" ~x_label:"x,y" ~series:[ "a\"b" ]
  in
  Report.add_row t ~x:1.0 [ Some (ci 1.0) ];
  let out = Format.asprintf "%a" Report.pp_csv t in
  Alcotest.(check bool) "comma quoted" true (contains ~needle:"\"x,y\"" out);
  Alcotest.(check bool) "quote doubled" true (contains ~needle:"\"a\"\"b\"" out)

let test_write_csv () =
  let path = Filename.temp_file "report" ".csv" in
  Report.write_csv path (sample_table ());
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file written" "x,alpha,alpha_halfwidth,beta,beta_halfwidth" first

let test_csv_rows () =
  let header = [ "activity"; "firings" ] in
  let rows = [ [ "tick"; "5" ]; [ "a,b"; "0" ] ] in
  let out =
    Format.asprintf "%a" (Report.pp_csv_rows ~header) rows
  in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check (list string)) "rendered and escaped"
    [ "activity,firings"; "tick,5"; "\"a,b\",0" ]
    lines;
  Alcotest.(check bool) "row width checked" true
    (match Format.asprintf "%a" (Report.pp_csv_rows ~header) [ [ "x" ] ] with
    | (_ : string) -> false
    | exception Invalid_argument _ -> true)

let test_write_csv_rows () =
  let path = Filename.temp_file "telemetry" ".csv" in
  Report.write_csv_rows path ~header:[ "a"; "b" ] [ [ "1"; "2" ] ];
  let ic = open_in path in
  let first = input_line ic in
  let second = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a,b" first;
  Alcotest.(check string) "row" "1,2" second

(* --- JSON --- *)

module J = Report.Json

let test_json_emit () =
  List.iter
    (fun (expected, value) ->
      Alcotest.(check string) expected expected (J.to_string value))
    [
      ("null", J.Null);
      ("true", J.Bool true);
      ("1", J.int 1);
      ("-3", J.Num (-3.0));
      ("0.5", J.Num 0.5);
      ("null", J.Num Float.nan);
      ("null", J.Num Float.infinity);
      ("\"a\\\"b\\n\"", J.Str "a\"b\n");
      ("[]", J.Arr []);
      ("{}", J.Obj []);
      ( "{\"a\":[1,2.5],\"b\":{\"c\":false}}",
        J.Obj
          [
            ("a", J.Arr [ J.int 1; J.Num 2.5 ]);
            ("b", J.Obj [ ("c", J.Bool false) ]);
          ] );
    ]

let test_json_float_determinism () =
  (* The deterministic float rendering must round-trip exactly — the
     trajectory cross-core guarantee depends on it. *)
  List.iter
    (fun f ->
      let s = J.float_to_string f in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s round-trips" s)
        f (float_of_string s))
    [ 0.1; 1.0 /. 3.0; 12.5 /. 5.5; 1e-300; 6.02214076e23; 21190.6 ]

let test_json_parse_roundtrip () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error e -> Alcotest.failf "parse %S failed: %s" s e
      | Ok v -> Alcotest.(check string) "re-emits identically" s (J.to_string v))
    [
      "null";
      "[1,-2,0.5,1e+300]";
      "{\"k\":\"v\",\"nested\":[{\"x\":null},true]}";
      "\"tab\\tnewline\\nquote\\\"\"";
      "[[[]]]";
    ]

let test_json_parse_escapes_and_ws () =
  (match J.of_string " { \"a\" :\t[ 1 ,\n 2 ] } " with
  | Ok (J.Obj [ ("a", J.Arr [ J.Num 1.0; J.Num 2.0 ]) ]) -> ()
  | Ok v -> Alcotest.failf "unexpected parse: %s" (J.to_string v)
  | Error e -> Alcotest.failf "whitespace parse failed: %s" e);
  match J.of_string "\"\\u0041\\u00e9\"" with
  | Ok (J.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "unicode parse failed: %s" e

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok v -> Alcotest.failf "%S accepted as %s" s (J.to_string v))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 garbage"; "\"unterminated";
      "{\"a\" 1}"; "nan" ]

let test_json_accessors () =
  let v =
    J.Obj [ ("n", J.Num 2.0); ("s", J.Str "x"); ("a", J.Arr [ J.Null ]) ]
  in
  Alcotest.(check bool) "member hit" true (J.member "n" v <> None);
  Alcotest.(check bool) "member miss" true (J.member "zz" v = None);
  Alcotest.(check bool) "num" true (J.num (J.Num 2.0) = Some 2.0);
  Alcotest.(check bool) "str" true (J.str (J.Str "x") = Some "x");
  Alcotest.(check bool) "arr" true (J.arr (J.Arr [ J.Null ]) = Some [ J.Null ]);
  Alcotest.(check bool) "wrong kind" true (J.num (J.Str "x") = None)

let test_jsonl_roundtrip () =
  let path = Filename.temp_file "traj" ".jsonl" in
  let lines = [ J.Obj [ ("a", J.int 1) ]; J.Arr [ J.Str "two" ]; J.Null ] in
  Report.write_jsonl path lines;
  let back = Report.read_jsonl path in
  Sys.remove path;
  match back with
  | Error e -> Alcotest.failf "read_jsonl failed: %s" e
  | Ok vs ->
      Alcotest.(check (list string))
        "values round-trip"
        (List.map J.to_string lines)
        (List.map J.to_string vs)

let test_jsonl_error_location () =
  let path = Filename.temp_file "traj" ".jsonl" in
  let oc = open_out path in
  output_string oc "{\"ok\":true}\nnot json\n";
  close_out oc;
  let back = Report.read_jsonl path in
  Sys.remove path;
  match back with
  | Ok _ -> Alcotest.fail "bad line accepted"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error names the line: %s" e)
        true
        (contains ~needle:".jsonl:2:" e)

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "lookup" `Quick test_lookup;
          Alcotest.test_case "arity checked" `Quick test_arity_checked;
          Alcotest.test_case "no series rejected" `Quick
            test_no_series_rejected;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "text" `Quick test_text_rendering;
          Alcotest.test_case "csv" `Quick test_csv_rendering;
          Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
          Alcotest.test_case "write_csv" `Quick test_write_csv;
          Alcotest.test_case "csv rows" `Quick test_csv_rows;
          Alcotest.test_case "write_csv_rows" `Quick test_write_csv_rows;
        ] );
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "float determinism" `Quick
            test_json_float_determinism;
          Alcotest.test_case "parse round-trip" `Quick
            test_json_parse_roundtrip;
          Alcotest.test_case "escapes and whitespace" `Quick
            test_json_parse_escapes_and_ws;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl error location" `Quick
            test_jsonl_error_location;
        ] );
    ]
