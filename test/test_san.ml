(* Tests for the san library: markings, journalling, builder validation,
   model queries, and DOT export. *)

let build_pair () =
  let b = San.Model.Builder.create "m" in
  let p = San.Model.Builder.int_place b ~init:2 "tokens" in
  let q = San.Model.Builder.float_place b ~init:1.5 "level" in
  (b, p, q)

let test_initial_marking () =
  let b, p, q = build_pair () in
  San.Model.Builder.instantaneous b ~name:"noop"
    ~enabled:(fun _ -> false)
    ~reads:[] (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  let m = San.Model.initial_marking model in
  Alcotest.(check int) "int init" 2 (San.Marking.get m p);
  Alcotest.(check (float 0.0)) "float init" 1.5 (San.Marking.fget m q);
  Alcotest.(check (list int)) "journal cleared" [] (San.Marking.journal m)

let test_marking_journal () =
  let b, p, q = build_pair () in
  San.Model.Builder.instantaneous b ~name:"noop"
    ~enabled:(fun _ -> false)
    ~reads:[] (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  let m = San.Model.initial_marking model in
  San.Marking.set m p 2;
  Alcotest.(check (list int)) "no-op write not journalled" []
    (San.Marking.journal m);
  San.Marking.set m p 3;
  San.Marking.fset m q 2.5;
  San.Marking.set m p 4;
  let journal = List.sort compare (San.Marking.journal m) in
  Alcotest.(check (list int))
    "changed places journalled once"
    (List.sort compare [ San.Place.uid p; San.Place.fuid q ])
    journal;
  San.Marking.clear_journal m;
  Alcotest.(check (list int)) "journal clears" [] (San.Marking.journal m)

let test_marking_negative_rejected () =
  let b, p, _ = build_pair () in
  San.Model.Builder.instantaneous b ~name:"noop"
    ~enabled:(fun _ -> false)
    ~reads:[] (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  let m = San.Model.initial_marking model in
  (match San.Marking.add m p (-2) with
  | () -> ()
  | exception Invalid_argument _ -> Alcotest.fail "decrement to 0 rejected");
  Alcotest.(check bool) "negative write raises" true
    (match San.Marking.add m p (-1) with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_marking_copy_independent () =
  let b, p, q = build_pair () in
  San.Model.Builder.instantaneous b ~name:"noop"
    ~enabled:(fun _ -> false)
    ~reads:[] (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  let m = San.Model.initial_marking model in
  let m' = San.Marking.copy m in
  San.Marking.set m' p 9;
  San.Marking.fadd m' q 1.0;
  Alcotest.(check int) "original int unchanged" 2 (San.Marking.get m p);
  Alcotest.(check (float 0.0)) "original float unchanged" 1.5
    (San.Marking.fget m q);
  Alcotest.(check bool) "markings now differ" false (San.Marking.equal m m')

let test_builder_duplicate_place () =
  let b = San.Model.Builder.create "m" in
  let (_ : San.Place.t) = San.Model.Builder.int_place b "x" in
  Alcotest.(check bool) "duplicate rejected" true
    (match San.Model.Builder.float_place b "x" with
    | (_ : San.Place.fl) -> false
    | exception Invalid_argument _ -> true)

let test_builder_duplicate_activity () =
  let b = San.Model.Builder.create "m" in
  let mk () =
    San.Model.Builder.instantaneous b ~name:"a"
      ~enabled:(fun _ -> false)
      ~reads:[] (fun _ _ -> ())
  in
  mk ();
  Alcotest.(check bool) "duplicate activity rejected" true
    (match mk () with () -> false | exception Invalid_argument _ -> true)

let test_builder_no_cases () =
  let b = San.Model.Builder.create "m" in
  Alcotest.(check bool) "zero cases rejected" true
    (match
       San.Model.Builder.activity b ~name:"a" ~timing:San.Activity.Instantaneous
         ~enabled:(fun _ -> false)
         ~reads:[] []
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_builder_negative_init () =
  let b = San.Model.Builder.create "m" in
  Alcotest.(check bool) "negative init rejected" true
    (match San.Model.Builder.int_place b ~init:(-1) "x" with
    | (_ : San.Place.t) -> false
    | exception Invalid_argument _ -> true)

let test_model_queries () =
  let b, p, _q = build_pair () in
  San.Model.Builder.timed_exp b ~name:"tick"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P p ]
    (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  Alcotest.(check int) "place count" 2 (San.Model.n_places model);
  Alcotest.(check bool) "find_place" true
    (San.Place.equal (San.Model.find_place model "tokens") p);
  Alcotest.(check bool) "find_place_opt miss" true
    (San.Model.find_place_opt model "nope" = None);
  Alcotest.(check bool) "float place not an int place" true
    (San.Model.find_place_opt model "level" = None);
  Alcotest.(check bool) "find float place" true
    (San.Model.find_float_place_opt model "level" <> None);
  let act = San.Model.find_activity model "tick" in
  Alcotest.(check string) "activity name" "tick" act.San.Activity.name;
  Alcotest.(check bool) "all exponential" true (San.Model.all_exponential model);
  let deps = San.Model.dependents model (San.Place.uid p) in
  Alcotest.(check int) "dependency index" 1 (List.length deps)

let test_all_exponential_false () =
  let b = San.Model.Builder.create "m" in
  let p = San.Model.Builder.int_place b "x" in
  San.Model.Builder.timed b ~name:"det"
    ~dist:(fun _ -> Dist.Deterministic { value = 1.0 })
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P p ]
    [ San.Activity.make_case San.Effect.Skip ];
  let model = San.Model.Builder.build b in
  Alcotest.(check bool) "deterministic detected" false
    (San.Model.all_exponential model)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else if String.sub haystack i nl = needle then true
    else scan (i + 1)
  in
  nl = 0 || scan 0

let test_dot_export () =
  let b, p, _ = build_pair () in
  San.Model.Builder.timed_exp b ~name:"tick"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P p ]
    (fun _ _ -> ());
  San.Model.Builder.instantaneous b ~name:"instant"
    ~enabled:(fun _ -> false)
    ~reads:[ San.Place.P p ]
    (fun _ _ -> ());
  let model = San.Model.Builder.build b in
  let dot =
    Format.asprintf "%a" (fun ppf -> San.Dot.to_dot ppf) model
  in
  List.iter
    (fun needle ->
      if not (contains ~needle dot) then
        Alcotest.failf "dot output missing %S" needle)
    [ "digraph"; "tokens"; "level"; "tick"; "instant"; "->" ];
  (* Firing-heat overlay: counted activities get a pen width and tooltip,
     uncounted ones render thin and grey. *)
  let heated =
    Format.asprintf "%a"
      (fun ppf -> San.Dot.to_dot ~firings:[ ("tick", 25) ] ppf)
      model
  in
  List.iter
    (fun needle ->
      if not (contains ~needle heated) then
        Alcotest.failf "heated dot output missing %S" needle)
    [ "penwidth=6.00"; "tooltip=\"25 firings\""; "penwidth=0.5 color=gray60" ]

let () =
  Alcotest.run "san"
    [
      ( "marking",
        [
          Alcotest.test_case "initial marking" `Quick test_initial_marking;
          Alcotest.test_case "journal" `Quick test_marking_journal;
          Alcotest.test_case "negative rejected" `Quick
            test_marking_negative_rejected;
          Alcotest.test_case "copy independent" `Quick
            test_marking_copy_independent;
        ] );
      ( "builder",
        [
          Alcotest.test_case "duplicate place" `Quick
            test_builder_duplicate_place;
          Alcotest.test_case "duplicate activity" `Quick
            test_builder_duplicate_activity;
          Alcotest.test_case "no cases" `Quick test_builder_no_cases;
          Alcotest.test_case "negative init" `Quick test_builder_negative_init;
        ] );
      ( "model",
        [
          Alcotest.test_case "queries" `Quick test_model_queries;
          Alcotest.test_case "all_exponential" `Quick
            test_all_exponential_false;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
    ]
