(* Tests for the dist library: validation, sampled moments against the
   analytical mean/variance, CDF correctness via probability-integral
   transform, and scaling laws. *)

let stream seed = Prng.Stream.create ~seed:(Int64.of_int seed)

let all_valid =
  [
    Dist.Exponential { rate = 2.0 };
    Dist.Deterministic { value = 3.5 };
    Dist.Uniform { lo = 1.0; hi = 4.0 };
    Dist.Erlang { k = 3; rate = 1.5 };
    Dist.Gamma { shape = 2.7; rate = 0.8 };
    Dist.Gamma { shape = 0.4; rate = 2.0 };
    Dist.Weibull { shape = 1.8; scale = 2.0 };
    Dist.Lognormal { mu = 0.2; sigma = 0.5 };
    Dist.Normal { mean = 1.0; stddev = 2.0 };
  ]

let test_validate_accepts () =
  List.iter
    (fun d ->
      match Dist.validate d with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "unexpected rejection: %s" msg)
    all_valid

let test_validate_rejects () =
  let invalid =
    [
      Dist.Exponential { rate = 0.0 };
      Dist.Exponential { rate = -1.0 };
      Dist.Deterministic { value = -0.1 };
      Dist.Uniform { lo = 2.0; hi = 1.0 };
      Dist.Erlang { k = 0; rate = 1.0 };
      Dist.Erlang { k = 2; rate = 0.0 };
      Dist.Gamma { shape = 0.0; rate = 1.0 };
      Dist.Weibull { shape = 1.0; scale = 0.0 };
      Dist.Lognormal { mu = 0.0; sigma = 0.0 };
      Dist.Normal { mean = 0.0; stddev = 0.0 };
    ]
  in
  List.iter
    (fun d ->
      match Dist.validate d with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted invalid %s" (Format.asprintf "%a" Dist.pp d))
    invalid

let test_sample_moments () =
  let s = stream 101 in
  let n = 200_000 in
  List.iter
    (fun d ->
      let acc = Stats.Welford.create () in
      for _ = 1 to n do
        Stats.Welford.add acc (Dist.sample d s)
      done;
      let m = Dist.mean d and v = Dist.variance d in
      let m_hat = Stats.Welford.mean acc in
      let v_hat = Stats.Welford.variance acc in
      (* 6-sigma tolerance on the mean estimator, generous one on var. *)
      let m_tol = 6.0 *. sqrt (v /. float_of_int n) +. 1e-12 in
      if Float.abs (m_hat -. m) > m_tol then
        Alcotest.failf "%s: mean %.5g expected %.5g"
          (Format.asprintf "%a" Dist.pp d)
          m_hat m;
      if v > 0.0 && Float.abs (v_hat -. v) > 0.1 *. v then
        Alcotest.failf "%s: variance %.5g expected %.5g"
          (Format.asprintf "%a" Dist.pp d)
          v_hat v)
    all_valid

let test_samples_nonnegative () =
  let s = stream 103 in
  let nonneg =
    List.filter (function Dist.Normal _ -> false | _ -> true) all_valid
  in
  List.iter
    (fun d ->
      for _ = 1 to 5_000 do
        let x = Dist.sample d s in
        if x < 0.0 then
          Alcotest.failf "%s produced negative sample %g"
            (Format.asprintf "%a" Dist.pp d)
            x
      done)
    nonneg

let test_probability_integral_transform () =
  (* cdf(X) for X ~ d must be uniform on [0,1]: check mean and variance. *)
  let s = stream 107 in
  let n = 100_000 in
  let continuous =
    List.filter (function Dist.Deterministic _ -> false | _ -> true) all_valid
  in
  List.iter
    (fun d ->
      let acc = Stats.Welford.create () in
      for _ = 1 to n do
        Stats.Welford.add acc (Dist.cdf d (Dist.sample d s))
      done;
      let m = Stats.Welford.mean acc in
      let v = Stats.Welford.variance acc in
      if Float.abs (m -. 0.5) > 0.01 then
        Alcotest.failf "%s: PIT mean %.4g" (Format.asprintf "%a" Dist.pp d) m;
      if Float.abs (v -. (1.0 /. 12.0)) > 0.01 then
        Alcotest.failf "%s: PIT variance %.4g" (Format.asprintf "%a" Dist.pp d) v)
    continuous

let test_cdf_monotone_and_bounded () =
  List.iter
    (fun d ->
      let prev = ref (-0.001) in
      for i = -20 to 200 do
        let x = float_of_int i /. 10.0 in
        let p = Dist.cdf d x in
        if p < 0.0 || p > 1.0 then
          Alcotest.failf "%s: cdf out of [0,1] at %g"
            (Format.asprintf "%a" Dist.pp d)
            x;
        if p < !prev -. 1e-12 then
          Alcotest.failf "%s: cdf not monotone at %g"
            (Format.asprintf "%a" Dist.pp d)
            x;
        prev := p
      done)
    all_valid

let test_erlang_equals_exponential_sum () =
  (* Erlang(k=1) must coincide with Exponential in mean, var and cdf. *)
  let e = Dist.Exponential { rate = 3.0 } in
  let g = Dist.Erlang { k = 1; rate = 3.0 } in
  Alcotest.(check (float 1e-12)) "mean" (Dist.mean e) (Dist.mean g);
  Alcotest.(check (float 1e-12)) "var" (Dist.variance e) (Dist.variance g);
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "cdf %g" x) (Dist.cdf e x) (Dist.cdf g x))
    [ 0.1; 0.5; 1.0; 2.0 ]

let test_gamma_integer_shape_is_erlang () =
  let g = Dist.Gamma { shape = 4.0; rate = 2.0 } in
  let e = Dist.Erlang { k = 4; rate = 2.0 } in
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "cdf %g" x) (Dist.cdf e x) (Dist.cdf g x))
    [ 0.2; 1.0; 2.0; 4.0 ]

let test_exponential_memoryless () =
  (* Empirically: P(X > s + t | X > s) = P(X > t). *)
  let s = stream 109 in
  let d = Dist.Exponential { rate = 1.0 } in
  let n = 200_000 in
  let survivors = ref 0 and beyond = ref 0 in
  for _ = 1 to n do
    let x = Dist.sample d s in
    if x > 0.7 then begin
      incr survivors;
      if x > 0.7 +. 0.9 then incr beyond
    end
  done;
  let conditional = float_of_int !beyond /. float_of_int !survivors in
  let unconditional = exp (-0.9) in
  Alcotest.(check bool)
    (Printf.sprintf "memoryless: %.4f vs %.4f" conditional unconditional)
    true
    (Float.abs (conditional -. unconditional) < 0.01)

let test_quantile_roundtrip () =
  List.iter
    (fun d ->
      List.iter
        (fun p ->
          let x = Dist.quantile d p in
          let back = Dist.cdf d x in
          if Float.abs (back -. p) > 1e-7 then
            Alcotest.failf "%s: cdf(quantile %g) = %g"
              (Format.asprintf "%a" Dist.pp d)
              p back)
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ])
    (List.filter (function Dist.Deterministic _ -> false | _ -> true) all_valid)

let test_quantile_known_medians () =
  let close msg a b =
    if Float.abs (a -. b) > 1e-9 then Alcotest.failf "%s: %g vs %g" msg a b
  in
  close "exp median" (log 2.0 /. 3.0)
    (Dist.quantile (Dist.Exponential { rate = 3.0 }) 0.5);
  close "uniform median" 2.5
    (Dist.quantile (Dist.Uniform { lo = 1.0; hi = 4.0 }) 0.5);
  close "normal median" 1.0
    (Dist.quantile (Dist.Normal { mean = 1.0; stddev = 2.0 }) 0.5);
  close "lognormal median" (exp 0.2)
    (Dist.quantile (Dist.Lognormal { mu = 0.2; sigma = 0.5 }) 0.5)

let test_quantile_invalid () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%g rejected" p)
        true
        (match Dist.quantile (Dist.Exponential { rate = 1.0 }) p with
        | (_ : float) -> false
        | exception Invalid_argument _ -> true))
    [ 0.0; 1.0; -0.3; 1.5 ]

let test_samplers_pass_ks () =
  (* End-to-end sampler vs cdf via Kolmogorov-Smirnov at n = 5000. *)
  let s = stream 211 in
  List.iter
    (fun d ->
      let xs = Array.init 5_000 (fun _ -> Dist.sample d s) in
      let stat = Stats.Ks.statistic ~cdf:(Dist.cdf d) xs in
      let p = Stats.Ks.significance ~n:5_000 stat in
      if p < 0.005 then
        Alcotest.failf "%s: KS rejects sampler (D=%.4f, p=%.4g)"
          (Format.asprintf "%a" Dist.pp d)
          stat p)
    (List.filter (function Dist.Deterministic _ -> false | _ -> true) all_valid)

let test_rate_of_exponential () =
  Alcotest.(check (option (float 0.0)))
    "exp rate" (Some 2.0)
    (Dist.rate_of_exponential (Dist.Exponential { rate = 2.0 }));
  Alcotest.(check (option (float 0.0)))
    "non-exp" None
    (Dist.rate_of_exponential (Dist.Uniform { lo = 0.0; hi = 1.0 }))

let prop_scale_mean =
  QCheck2.Test.make ~name:"mean (scale d c) = c * mean d" ~count:300
    QCheck2.Gen.(
      pair (float_range 0.01 100.0) (int_range 0 (List.length all_valid - 1)))
    (fun (c, i) ->
      let d = List.nth all_valid i in
      let scaled = Dist.scale d c in
      Float.abs (Dist.mean scaled -. (c *. Dist.mean d))
      < 1e-6 *. (1.0 +. Float.abs (c *. Dist.mean d)))

let prop_scale_variance =
  QCheck2.Test.make ~name:"var (scale d c) = c^2 * var d" ~count:300
    QCheck2.Gen.(
      pair (float_range 0.01 100.0) (int_range 0 (List.length all_valid - 1)))
    (fun (c, i) ->
      let d = List.nth all_valid i in
      let scaled = Dist.scale d c in
      Float.abs (Dist.variance scaled -. (c *. c *. Dist.variance d))
      < 1e-6 *. (1.0 +. (c *. c *. Dist.variance d)))

let prop_cdf_at_mean_reasonable =
  (* For the unimodal positive distributions used here, the CDF at the mean
     lies strictly inside (0,1). *)
  QCheck2.Test.make ~name:"cdf at mean in (0,1)" ~count:100
    QCheck2.Gen.(int_range 0 (List.length all_valid - 1))
    (fun i ->
      let d = List.nth all_valid i in
      match d with
      | Dist.Deterministic _ -> true
      | _ ->
          let p = Dist.cdf d (Dist.mean d) in
          0.0 < p && p < 1.0)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_scale_mean; prop_scale_variance; prop_cdf_at_mean_reasonable ]
  in
  Alcotest.run "dist"
    [
      ( "validation",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_accepts;
          Alcotest.test_case "rejects invalid" `Quick test_validate_rejects;
          Alcotest.test_case "rate_of_exponential" `Quick
            test_rate_of_exponential;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "moments" `Slow test_sample_moments;
          Alcotest.test_case "non-negative support" `Quick
            test_samples_nonnegative;
          Alcotest.test_case "memorylessness" `Slow test_exponential_memoryless;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "probability integral transform" `Slow
            test_probability_integral_transform;
          Alcotest.test_case "monotone and bounded" `Quick
            test_cdf_monotone_and_bounded;
          Alcotest.test_case "erlang-1 = exponential" `Quick
            test_erlang_equals_exponential_sum;
          Alcotest.test_case "gamma integer shape = erlang" `Quick
            test_gamma_integer_shape_is_erlang;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "roundtrip" `Quick test_quantile_roundtrip;
          Alcotest.test_case "known medians" `Quick test_quantile_known_medians;
          Alcotest.test_case "invalid p" `Quick test_quantile_invalid;
          Alcotest.test_case "samplers pass KS" `Slow test_samplers_pass_ks;
        ] );
      ("properties", props);
    ]
