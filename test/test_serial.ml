(* Tests for the [itua-model/1] serializer (lib/serial): round trips,
   committed golden files, malformed-input corpus, structural diff, and
   bit-identity of the loaded model (trajectories and analysis
   certificates) against the in-code one. *)

module B = San.Model.Builder
module E = San.Effect
module M = San.Marking
module J = Report.Json
module T = Test_models

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_exn s =
  match Serial.parse s with
  | Ok l -> l
  | Error e -> Alcotest.failf "parse failed: %s" e

(* The fixture parameters here must match tools/gen_golden.ml, which
   writes the committed test/golden/*.model.json files. *)
let fixtures =
  [
    ("two_state", fun () -> (T.two_state ~lambda:0.2 ~mu:1.0).T.ts_model);
    ("mm1k", fun () -> (T.mm1k ~lambda:0.8 ~mu:1.0 ~k:5).T.q_model);
    ("tandem", fun () -> (T.tandem ~r1:1.0 ~r2:0.5).T.td_model);
    ("gong", fun () -> (T.gong ()).T.g_model);
  ]

(* Small ITUA configuration; must match tools/gen_golden.ml and the CI
   golden gate (itua_sim save --domains 2 --hosts-per-domain 2 --apps 2
   --replicas 2). *)
let small_params =
  {
    Itua.Params.default with
    num_domains = 2;
    hosts_per_domain = 2;
    num_apps = 2;
    num_reps = 2;
  }

let itua_doc () =
  let h = Itua.Model.build small_params in
  ( h,
    Serial.to_json
      ~composition:h.Itua.Model.composition
      ~annotations:[ ("params", Itua.Params.to_json small_params) ]
      h.Itua.Model.model )

(* --- round trips: parse after emit is the identity, byte for byte --- *)

let test_fixture_roundtrip (name, make) () =
  let m = make () in
  let s1 = Serial.emit m in
  let l = parse_exn s1 in
  let s2 = Serial.emit l.Serial.model in
  Alcotest.(check string) (name ^ ": emit/parse/emit fixpoint") s1 s2;
  Alcotest.(check string)
    "model name preserved" (San.Model.name m)
    (San.Model.name l.Serial.model)

let test_itua_roundtrip () =
  let h, doc = itua_doc () in
  let s1 = J.to_string doc in
  let l = parse_exn s1 in
  let comp =
    match l.Serial.composition with
    | Some c -> c
    | None -> Alcotest.fail "composition tree lost"
  in
  let s2 =
    Serial.emit ~composition:comp ~annotations:l.Serial.annotations
      l.Serial.model
  in
  Alcotest.(check string) "itua: emit/parse/emit fixpoint" s1 s2;
  Alcotest.(check string) "composition tree preserved"
    (Compose.render_info h.Itua.Model.composition)
    (Compose.render_info comp)

let test_bounds_annotations_roundtrip () =
  let t = T.two_state ~lambda:0.2 ~mu:1.0 in
  let bounds = [ (San.Place.name t.T.up, 1) ] in
  let annotations = [ ("n", J.int 3); ("note", J.Str "hello") ] in
  let doc = Serial.to_json ~bounds ~annotations t.T.ts_model in
  let l = parse_exn (J.to_string doc) in
  Alcotest.(check (list (pair string int))) "bounds survive" bounds
    l.Serial.bounds;
  (match l.Serial.annotations with
  | [ ("n", J.Num 3.0); ("note", J.Str "hello") ] -> ()
  | _ -> Alcotest.fail "annotations not preserved verbatim");
  let s2 =
    Serial.emit ~bounds:l.Serial.bounds ~annotations:l.Serial.annotations
      l.Serial.model
  in
  Alcotest.(check string) "fixpoint with bounds and annotations"
    (J.to_string doc) s2

(* --- golden files: emission is byte-stable across sessions --- *)

let test_fixture_golden (name, make) () =
  let expected = read_file (Filename.concat "golden" (name ^ ".model.json")) in
  Alcotest.(check string)
    (name ^ ": matches committed golden")
    expected
    (Serial.emit (make ()) ^ "\n")

let test_itua_golden () =
  let _, doc = itua_doc () in
  let expected = read_file "../examples/itua.model.json" in
  Alcotest.(check string) "matches committed examples/itua.model.json"
    expected
    (J.to_string doc ^ "\n")

(* --- malformed inputs: precise error locations --- *)

let expect_error name s subs () =
  match Serial.parse s with
  | Ok _ -> Alcotest.failf "%s: parse unexpectedly succeeded" name
  | Error e ->
      List.iter
        (fun sub ->
          if not (contains e sub) then
            Alcotest.failf "%s: error %S lacks %S" name e sub)
        subs

let envelope places activities =
  Printf.sprintf
    {|{"schema":"itua-model/1","name":"x","places":[%s],"activities":[%s]}|}
    places activities

let act_with_effect eff =
  Printf.sprintf
    {|{"name":"a","timing":{"type":"instantaneous"},"guard":true,"reads":[],"cases":[{"weight":1,"effect":%s}]}|}
    eff

let malformed =
  [
    ( "syntax error",
      "{",
      [ "offset" ] );
    ( "unknown schema",
      {|{"schema":"itua-model/99","name":"x","places":[],"activities":[]}|},
      [ "$.schema"; "unsupported schema" ] );
    ( "missing name",
      {|{"schema":"itua-model/1","places":[],"activities":[]}|},
      [ {|missing field "name"|} ] );
    ( "bad place kind",
      envelope {|{"name":"p","kind":"complex"}|} "",
      [ "$.places[0].kind"; "unknown place kind" ] );
    ( "duplicate place",
      envelope {|{"name":"p","kind":"int"},{"name":"p","kind":"int"}|} "",
      [ "$.places[1]"; "duplicate" ] );
    ( "unknown place in op",
      envelope {|{"name":"p","kind":"int"}|}
        (act_with_effect {|{"ops":[["set","q",1]]}|}),
      [ "$.activities[0].cases[0].effect.ops[0]"; {|unknown place "q"|} ] );
    ( "float op on int place",
      envelope {|{"name":"p","kind":"int"}|}
        (act_with_effect {|{"ops":[["fset","p",1.5]]}|}),
      [ "is an int place, expected a float place" ] );
    ( "missing guard",
      envelope {|{"name":"p","kind":"int"}|}
        {|{"name":"a","timing":{"type":"instantaneous"},"reads":[],"cases":[{"weight":1,"effect":"skip"}]}|},
      [ "$.activities[0]"; {|missing field "guard"|} ] );
    ( "bad timing type",
      envelope ""
        {|{"name":"a","timing":{"type":"sometimes"},"guard":true,"reads":[],"cases":[{"weight":1,"effect":"skip"}]}|},
      [ "$.activities[0].timing" ] );
    ( "unknown composition place",
      {|{"schema":"itua-model/1","name":"x","places":[],"activities":[],"composition":{"label":"root","places":["ghost"],"activities":[],"children":[]}}|},
      [ "$.composition"; {|unknown place "ghost"|} ] );
  ]

(* --- structural diff --- *)

let tiny ?(extra = false) ~init () =
  let b = B.create "tiny" in
  let p = B.int_place b ~init "p" in
  B.timed_exp_rate_ir b ~name:"go" ~rate:(E.RConst 1.0)
    ~guard:E.(Cmp (Mark p, Gt, Int 0))
    ~reads:[ San.Place.P p ]
    E.(Ops [ Inc (p, Int (-1)) ]);
  if extra then
    B.timed_exp_rate_ir b ~name:"reset" ~rate:(E.RConst 0.5)
      ~guard:E.(Cmp (Mark p, Eq, Int 0))
      ~reads:[ San.Place.P p ]
      E.(Ops [ Set (p, Int init) ]);
  B.build b

let test_diff_self_empty () =
  let _, doc = itua_doc () in
  Alcotest.(check int) "self diff is empty" 0
    (List.length (Serial.Diff.diff doc doc))

let test_diff_init_change () =
  let a = Serial.to_json (tiny ~init:1 ()) in
  let b = Serial.to_json (tiny ~init:2 ()) in
  let entries = Serial.Diff.diff a b in
  Alcotest.(check bool) "detected" true (entries <> []);
  Alcotest.(check bool) "names the place field" true
    (List.exists
       (fun e ->
         contains e.Serial.Diff.at {|places["p"].init|}
         && contains e.Serial.Diff.change "1 -> 2")
       entries)

let test_diff_rate_change () =
  let a = Serial.to_json (T.two_state ~lambda:0.2 ~mu:1.0).T.ts_model in
  let b = Serial.to_json (T.two_state ~lambda:0.3 ~mu:1.0).T.ts_model in
  let entries = Serial.Diff.diff a b in
  Alcotest.(check bool) "only the rate differs" true
    (entries <> []
    && List.for_all
         (fun e -> contains e.Serial.Diff.at {|activities["fail"]|})
         entries)

let test_diff_removed_activity () =
  let a = Serial.to_json (tiny ~extra:true ~init:1 ()) in
  let b = Serial.to_json (tiny ~init:1 ()) in
  let entries = Serial.Diff.diff a b in
  Alcotest.(check bool) "reports the removal by name" true
    (List.exists
       (fun e ->
         contains e.Serial.Diff.at {|activities["reset"]|}
         && contains e.Serial.Diff.change "removed")
       entries)

(* --- bit-identity: the loaded model is the in-code model --- *)

let trajectory ~horizon model =
  let events = ref [] in
  let observer =
    {
      Sim.Observer.nop with
      on_fire =
        (fun t a case m ->
          events :=
            (t, a.San.Activity.name, case, M.int_snapshot m, M.float_snapshot m)
            :: !events);
    }
  in
  let config = Sim.Executor.config ~horizon () in
  let out =
    Sim.Executor.run ~model ~config
      ~stream:(Prng.Stream.create ~seed:42L)
      ~observer ()
  in
  (List.rev !events, out.Sim.Executor.events, out.Sim.Executor.final)

let test_loaded_trajectory_bit_identical () =
  let h, doc = itua_doc () in
  let l = parse_exn (J.to_string doc) in
  let ev_a, n_a, fin_a = trajectory ~horizon:5.0 h.Itua.Model.model in
  let ev_b, n_b, fin_b = trajectory ~horizon:5.0 l.Serial.model in
  Alcotest.(check int) "same event count" n_a n_b;
  Alcotest.(check bool) "some events fired" true (n_a > 0);
  Alcotest.(check bool) "identical event sequence" true (ev_a = ev_b);
  Alcotest.(check bool) "identical final marking" true (M.equal fin_a fin_b)

let test_loaded_certificate_identical () =
  let h, doc = itua_doc () in
  let l = parse_exn (J.to_string doc) in
  let comp =
    match l.Serial.composition with
    | Some c -> c
    | None -> Alcotest.fail "composition tree lost"
  in
  let cert ~composition model =
    J.to_string
      (Analysis.Check.to_json
         (Analysis.Check.run ~composition ~runs:20 ~horizon:1.0
            ~max_states:2000 ~seed:7L model))
  in
  Alcotest.(check string) "identical analysis certificate"
    (cert ~composition:h.Itua.Model.composition h.Itua.Model.model)
    (cert ~composition:comp l.Serial.model)

(* --- portability gate --- *)

let test_unportable_closure () =
  let b = B.create "closure" in
  let p = B.int_place b ~init:1 "p" in
  B.timed_exp b ~name:"opaque_rate"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m p > 0)
    ~reads:[ San.Place.P p ]
    (fun _ m -> M.set m p 0);
  let m = B.build b in
  match Serial.to_json m with
  | exception Serial.Unportable msg ->
      Alcotest.(check bool) "names the offending activity" true
        (contains msg "opaque_rate")
  | _ -> Alcotest.fail "expected Unportable for a closure-built activity"

(* Several closure escapes of different kinds must surface in ONE
   aggregated error naming every offending activity with its reasons —
   not just the first blocker hit during emission. *)
let test_unportable_aggregates () =
  let b = B.create "closures" in
  let p = B.int_place b ~init:1 "p" in
  let q = B.int_place b ~init:0 "q" in
  (* Offender 1: closure rate, closure guard, opaque effect. *)
  B.timed_exp b ~name:"bad_rate"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m p > 0)
    ~reads:[ San.Place.P p ]
    (fun _ m -> M.set m p 0);
  (* Offender 2: declarative guard/effect but closure-only timing. *)
  B.timed_exp_ir b ~name:"bad_timing"
    ~rate:(fun _ -> 2.0)
    ~guard:(E.Cmp (E.Mark q, E.Eq, E.Int 0))
    ~reads:[ San.Place.P q ]
    (E.Ops [ E.Set (q, E.Int 1) ]);
  (* Fully declarative — must NOT be blamed. *)
  B.timed_exp_rate_ir b ~name:"fine"
    ~rate:(E.RConst 0.5)
    ~guard:(E.Cmp (E.Mark q, E.Eq, E.Int 1))
    ~reads:[ San.Place.P q ]
    (E.Ops [ E.Set (q, E.Int 0) ]);
  let m = B.build b in
  match Serial.to_json m with
  | exception Serial.Unportable msg ->
      List.iter
        (fun sub ->
          Alcotest.(check bool)
            (Printf.sprintf "message mentions %S" sub)
            true (contains msg sub))
        [
          "2 unportable activities";
          "bad_rate";
          "bad_timing";
          "closure enabling predicate";
          "opaque effect";
          "closure-only timing distribution";
        ];
      Alcotest.(check bool) "portable activity not blamed" false
        (contains msg "fine")
  | _ -> Alcotest.fail "expected aggregated Unportable"

let () =
  Alcotest.run "serial"
    [
      ( "roundtrip",
        List.map
          (fun (name, make) ->
            Alcotest.test_case name `Quick
              (test_fixture_roundtrip (name, make)))
          fixtures
        @ [
            Alcotest.test_case "itua small" `Quick test_itua_roundtrip;
            Alcotest.test_case "bounds and annotations" `Quick
              test_bounds_annotations_roundtrip;
          ] );
      ( "golden",
        List.map
          (fun (name, make) ->
            Alcotest.test_case name `Quick (test_fixture_golden (name, make)))
          fixtures
        @ [ Alcotest.test_case "itua small" `Quick test_itua_golden ] );
      ( "malformed",
        List.map
          (fun (name, s, subs) ->
            Alcotest.test_case name `Quick (expect_error name s subs))
          malformed );
      ( "diff",
        [
          Alcotest.test_case "self diff empty" `Quick test_diff_self_empty;
          Alcotest.test_case "init change" `Quick test_diff_init_change;
          Alcotest.test_case "rate change" `Quick test_diff_rate_change;
          Alcotest.test_case "removed activity" `Quick
            test_diff_removed_activity;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "trajectory" `Quick
            test_loaded_trajectory_bit_identical;
          Alcotest.test_case "analysis certificate" `Quick
            test_loaded_certificate_identical;
        ] );
      ( "portability",
        [
          Alcotest.test_case "closure rejected" `Quick test_unportable_closure;
          Alcotest.test_case "all offenders aggregated" `Quick
            test_unportable_aggregates;
        ] );
    ]
