(* Tests for the Byzantine agreement substrate: the Lamport-Shostak-Pease
   oral-messages bound (n > 3m) that justifies the ITUA model's
   one-third consensus threshold, and the signed-messages algorithm that
   removes it. *)

let check_ic ~n ~rounds ~traitors ~strategy ~commander_value =
  let decisions =
    Byzantine.Om.decide ~n ~rounds ~traitors ~strategy ~commander_value
  in
  Byzantine.Om.interactive_consistency ~decisions ~traitors ~commander_value

let sm_ic ~n ~rounds ~traitors ~strategy ~commander_value =
  let decisions =
    Byzantine.Sm.decide ~n ~rounds ~traitors ~strategy ~commander_value
  in
  Byzantine.Om.interactive_consistency ~decisions ~traitors ~commander_value

let traitor_sets ~n ~m =
  (* All subsets of {0..n-1} of size exactly m, as traitor arrays. *)
  let rec subsets k from =
    if k = 0 then [ [] ]
    else if from >= n then []
    else
      List.map (fun s -> from :: s) (subsets (k - 1) (from + 1))
      @ subsets k (from + 1)
  in
  List.map
    (fun ids ->
      let t = Array.make n false in
      List.iter (fun i -> t.(i) <- true) ids;
      t)
    (subsets m 0)

let adversaries stream =
  [ ("inverting", Byzantine.inverting_strategy);
    ("split", Byzantine.split_strategy);
    ("random", Byzantine.random_strategy stream) ]

(* --- OM: the positive side of the bound --- *)

let test_om_no_traitors () =
  List.iter
    (fun n ->
      List.iter
        (fun v ->
          let traitors = Array.make n false in
          Alcotest.(check bool)
            (Printf.sprintf "n=%d honest run" n)
            true
            (check_ic ~n ~rounds:1 ~traitors
               ~strategy:Byzantine.loyal_strategy ~commander_value:v))
        [ Byzantine.Attack; Byzantine.Retreat ])
    [ 2; 3; 4; 5; 7 ]

let test_om_tolerates_one_of_four () =
  (* n = 4, m = 1: every single-traitor placement, every adversary. *)
  let stream = Prng.Stream.create ~seed:11L in
  List.iter
    (fun traitors ->
      List.iter
        (fun (name, strategy) ->
          List.iter
            (fun v ->
              if not (check_ic ~n:4 ~rounds:1 ~traitors ~strategy ~commander_value:v)
              then
                Alcotest.failf "n=4 m=1 broken by %s (traitor %s)" name
                  (String.concat ","
                     (List.filteri (fun i _ -> traitors.(i)) [ "0"; "1"; "2"; "3" ])))
            [ Byzantine.Attack; Byzantine.Retreat ])
        (adversaries stream))
    (traitor_sets ~n:4 ~m:1)

let test_om_tolerates_two_of_seven () =
  let stream = Prng.Stream.create ~seed:13L in
  List.iter
    (fun traitors ->
      List.iter
        (fun (name, strategy) ->
          if
            not
              (check_ic ~n:7 ~rounds:2 ~traitors ~strategy
                 ~commander_value:Byzantine.Attack)
          then Alcotest.failf "n=7 m=2 broken by %s" name)
        (adversaries stream))
    (traitor_sets ~n:7 ~m:2)

(* --- OM: the negative side (why ITUA needs < 1/3) --- *)

let test_om_three_generals_impossible () =
  (* n = 3, m = 1: the classic impossibility.  A traitorous lieutenant
     relays the inverted order; the loyal lieutenant sees a tie, falls back
     to the default, and disobeys its loyal commander (IC2 violated). *)
  let traitors = [| false; false; true |] in
  Alcotest.(check bool) "three generals fail" false
    (check_ic ~n:3 ~rounds:1 ~traitors ~strategy:Byzantine.inverting_strategy
       ~commander_value:Byzantine.Attack)

let test_om_six_with_two_traitors_breakable () =
  (* n = 6 = 3m with m = 2: some traitor placement + strategy must break
     interactive consistency even with 2 rounds. *)
  let stream = Prng.Stream.create ~seed:17L in
  let broken =
    List.exists
      (fun traitors ->
        List.exists
          (fun (_, strategy) ->
            not
              (check_ic ~n:6 ~rounds:2 ~traitors ~strategy
                 ~commander_value:Byzantine.Attack))
          (adversaries stream)
        (* try a few random strategies too *)
        || List.exists
             (fun seed ->
               let s = Prng.Stream.create ~seed:(Int64.of_int seed) in
               not
                 (check_ic ~n:6 ~rounds:2 ~traitors
                    ~strategy:(Byzantine.random_strategy s)
                    ~commander_value:Byzantine.Attack))
             (List.init 30 (fun i -> 100 + i)))
      (traitor_sets ~n:6 ~m:2)
  in
  Alcotest.(check bool) "n = 3m is breakable" true broken

(* --- SM: authentication removes the bound --- *)

let test_sm_three_generals_works () =
  (* The same three-generals scenario succeeds with signed messages. *)
  let traitors = [| true; false; false |] in
  List.iter
    (fun (name, strategy) ->
      if
        not
          (sm_ic ~n:3 ~rounds:1 ~traitors ~strategy
             ~commander_value:Byzantine.Attack)
      then Alcotest.failf "signed three generals broken by %s" name)
    (adversaries (Prng.Stream.create ~seed:19L))

let test_sm_majority_traitors () =
  (* n = 4 with 2 traitors (half!): SM(2) still achieves IC. *)
  let stream = Prng.Stream.create ~seed:23L in
  List.iter
    (fun traitors ->
      List.iter
        (fun (name, strategy) ->
          List.iter
            (fun v ->
              if not (sm_ic ~n:4 ~rounds:2 ~traitors ~strategy ~commander_value:v)
              then Alcotest.failf "SM n=4 m=2 broken by %s" name)
            [ Byzantine.Attack; Byzantine.Retreat ])
        (adversaries stream))
    (traitor_sets ~n:4 ~m:2)

let test_sm_loyal_commander_valid () =
  (* IC2 under a loyal commander, regardless of relay traitors. *)
  let stream = Prng.Stream.create ~seed:29L in
  List.iter
    (fun traitors ->
      if not traitors.(0) then
        List.iter
          (fun (name, strategy) ->
            let decisions =
              Byzantine.Sm.decide ~n:5 ~rounds:2 ~traitors ~strategy
                ~commander_value:Byzantine.Attack
            in
            for i = 1 to 4 do
              if (not traitors.(i)) && decisions.(i) <> Byzantine.Attack then
                Alcotest.failf "SM IC2 broken by %s at lieutenant %d" name i
            done)
          (adversaries stream))
    (traitor_sets ~n:5 ~m:2)

(* --- randomized property: the OM bound, both directions --- *)

let prop_om_bound =
  QCheck2.Test.make ~name:"OM(m) achieves IC whenever n > 3m" ~count:120
    QCheck2.Gen.(
      tup4 (int_range 1 2) (int_range 0 100) (int_range 0 1_000_000) bool)
    (fun (m, placement_seed, strat_seed, attack) ->
      let n = (3 * m) + 1 + (placement_seed mod 2) in
      (* Pick a random traitor set of size m. *)
      let stream =
        Prng.Stream.create ~seed:(Int64.of_int (placement_seed * 7 + 1))
      in
      let ids = Array.init n (fun i -> i) in
      Prng.Stream.shuffle_in_place stream ids;
      let traitors = Array.make n false in
      for k = 0 to m - 1 do
        traitors.(ids.(k)) <- true
      done;
      let strategy =
        Byzantine.random_strategy
          (Prng.Stream.create ~seed:(Int64.of_int strat_seed))
      in
      check_ic ~n ~rounds:m ~traitors ~strategy
        ~commander_value:(if attack then Byzantine.Attack else Byzantine.Retreat))

let prop_sm_any_traitors =
  QCheck2.Test.make ~name:"SM(m) achieves IC with up to m traitors, any n"
    ~count:120
    QCheck2.Gen.(tup3 (int_range 3 6) (int_range 0 1_000_000) bool)
    (fun (n, seed, attack) ->
      let stream = Prng.Stream.create ~seed:(Int64.of_int seed) in
      let m = Prng.Stream.int stream (n - 1) in
      let ids = Array.init n (fun i -> i) in
      Prng.Stream.shuffle_in_place stream ids;
      let traitors = Array.make n false in
      for k = 0 to m - 1 do
        traitors.(ids.(k)) <- true
      done;
      sm_ic ~n ~rounds:m ~traitors
        ~strategy:(Byzantine.random_strategy stream)
        ~commander_value:(if attack then Byzantine.Attack else Byzantine.Retreat))

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest [ prop_om_bound; prop_sm_any_traitors ]
  in
  Alcotest.run "byzantine"
    [
      ( "oral-messages",
        [
          Alcotest.test_case "no traitors" `Quick test_om_no_traitors;
          Alcotest.test_case "tolerates 1 of 4" `Quick
            test_om_tolerates_one_of_four;
          Alcotest.test_case "tolerates 2 of 7" `Slow
            test_om_tolerates_two_of_seven;
          Alcotest.test_case "three generals impossible" `Quick
            test_om_three_generals_impossible;
          Alcotest.test_case "n = 3m breakable" `Slow
            test_om_six_with_two_traitors_breakable;
        ] );
      ( "signed-messages",
        [
          Alcotest.test_case "three generals works" `Quick
            test_sm_three_generals_works;
          Alcotest.test_case "majority traitors" `Quick
            test_sm_majority_traitors;
          Alcotest.test_case "loyal commander validity" `Quick
            test_sm_loyal_commander_valid;
        ] );
      ("properties", props);
    ]
