(* Tests for the analysis library: one deliberately broken fixture per
   diagnostic code (pinned to the code and message), clean models that
   must check clean, exhaustive-coverage proofs on models of known size,
   and report determinism. *)

module B = San.Model.Builder
module M = San.Marking
module D = Analysis.Diagnostic

let check ?composition ?runs model =
  Analysis.Check.run ?composition ?runs model

let diags (r : Analysis.Check.t) = r.Analysis.Check.diagnostics

let with_code code r =
  List.filter (fun (d : D.t) -> d.D.code = code) (diags r)

let message_mentions ~needle (d : D.t) =
  let hay = d.D.message and n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let pp_report r = Format.asprintf "%a" Analysis.Check.pp r

(* --- clean models check clean --- *)

let test_clean_mm1k () =
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:4 in
  let r = check q.Test_models.q_model in
  Alcotest.(check bool)
    "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  (* K = 4 queue: exactly the 5 markings 0..4, proving full coverage. *)
  Alcotest.(check int) "five stable markings" 5 r.Analysis.Check.n_stable;
  Alcotest.(check string) "no diagnostics" ""
    (String.concat "; " (List.map (Format.asprintf "%a" D.pp) (diags r)))

let test_clean_gong () =
  let g = Test_models.gong () in
  let r = check g.Test_models.g_model in
  Alcotest.(check bool)
    "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  Alcotest.(check int) "nine stable markings" 9 r.Analysis.Check.n_stable;
  (* Cross-check the coverage claim against the CTMC generator. *)
  Alcotest.(check int) "matches the CTMC state count"
    (Ctmc.Explore.n_states (Ctmc.Explore.explore g.Test_models.g_model))
    r.Analysis.Check.n_stable;
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map (Format.asprintf "%a" D.pp) (diags r))

(* --- A001: undeclared reads, one fixture per via --- *)

let test_a001_enabled () =
  let b = B.create "buggy" in
  let gate = B.int_place b ~init:1 "gate" in
  let tokens = B.int_place b "tokens" in
  (* Bug: [enabled] reads [gate] but declares only [tokens]. *)
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m gate = 1 && M.get m tokens < 5)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  match with_code D.undeclared_read r with
  | [ d ] ->
      Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
      Alcotest.(check bool) "source is the activity" true
        (d.D.source = D.Activity "produce");
      Alcotest.(check bool) "names the via and place" true
        (message_mentions ~needle:"enabled" d
        && message_mentions ~needle:"\"gate\"" d)
  | ds -> Alcotest.failf "expected exactly one A001, got %d:\n%s"
            (List.length ds) (pp_report r)

let test_a001_dist () =
  let b = B.create "buggy_rate" in
  let speed = B.int_place b ~init:2 "speed" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun m -> float_of_int (1 + M.get m speed))
    ~enabled:(fun m -> M.get m tokens < 5)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "dist violation reported" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Error
         && message_mentions ~needle:"dist" d
         && message_mentions ~needle:"\"speed\"" d)
       (with_code D.undeclared_read r))

let test_a001_weight () =
  let b = B.create "buggy_weight" in
  let bias = B.int_place b ~init:3 "bias" in
  let fired = B.int_place b "fired" in
  B.timed b ~name:"choose"
    ~dist:(fun _ -> Dist.Exponential { rate = 1.0 })
    ~enabled:(fun m -> M.get m fired = 0)
    ~reads:[ San.Place.P fired ]
    [
      {
        San.Activity.case_weight = (fun m -> float_of_int (M.get m bias));
        effect = (fun _ m -> M.set m fired 1);
      };
      {
        San.Activity.case_weight = (fun _ -> 1.0);
        effect = (fun _ m -> M.set m fired 1);
      };
    ];
  let r = check (B.build b) in
  Alcotest.(check bool) "weight violation reported" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Error
         && message_mentions ~needle:"weight" d
         && message_mentions ~needle:"\"bias\"" d)
       (with_code D.undeclared_read r))

let test_a001_effect_regression () =
  (* Regression: reads performed inside a case effect. Sim.Lint (the
     predecessor of this library) only traced enabled/dist/weight, so
     this model linted clean; the effect read of [burst] must now be
     reported (as a warning: firing-time reads are not stale, but the
     read-set omission breaks the input-gate discipline). *)
  let b = B.create "buggy_effect" in
  let burst = B.int_place b ~init:2 "burst" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m tokens = 0)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.set m tokens (M.get m burst));
  let r = check (B.build b) in
  match with_code D.undeclared_read r with
  | [ d ] ->
      Alcotest.(check bool) "warning severity" true
        (d.D.severity = D.Warning);
      Alcotest.(check bool) "names the effect read" true
        (message_mentions ~needle:"effect" d
        && message_mentions ~needle:"\"burst\"" d)
  | ds -> Alcotest.failf "expected exactly one A001, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A002: undeclared writes (stale wake-up, writer side) --- *)

let test_a002_undeclared_write () =
  let b = B.create "buggy_writer" in
  let flag = B.int_place b "flag" in
  let done_ = B.int_place b "done" in
  (* [raise_flag] writes [flag]; [consume] reads it in [enabled] without
     declaring it, so the write cannot wake [consume]. *)
  B.timed_exp b ~name:"raise_flag"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m flag = 0 && M.get m done_ = 0)
    ~reads:[ San.Place.P flag; San.Place.P done_ ]
    (fun _ m -> M.set m flag 1);
  B.timed_exp b ~name:"consume"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m flag = 1)
    ~reads:[ San.Place.P done_ ]
    (fun _ m -> M.set m done_ 1);
  let r = check (B.build b) in
  match with_code D.undeclared_write r with
  | [ d ] ->
      Alcotest.(check bool) "error at the writer" true
        (d.D.severity = D.Error && d.D.source = D.Activity "raise_flag");
      Alcotest.(check bool) "names place and reader" true
        (message_mentions ~needle:"\"flag\"" d
        && message_mentions ~needle:"consume" d)
  | ds -> Alcotest.failf "expected exactly one A002, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A003: negative-marking writes --- *)

let test_a003_negative_write () =
  let b = B.create "buggy_negative" in
  let stock = B.int_place b "stock" in
  (* Enabled regardless of stock, so the effect underflows at 0. *)
  B.timed_exp b ~name:"take"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P stock ]
    (fun _ m -> M.add m stock (-1));
  let r = check (B.build b) in
  match with_code D.negative_write r with
  | [ d ] ->
      Alcotest.(check bool) "error at the activity" true
        (d.D.severity = D.Error && d.D.source = D.Activity "take");
      Alcotest.(check bool) "carries the Marking.set message" true
        (message_mentions ~needle:"negative" d
        && message_mentions ~needle:"stock" d)
  | ds -> Alcotest.failf "expected exactly one A003, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A004/A005/A006: liveness --- *)

let test_a004_dead_activity () =
  let b = B.create "with_dead" in
  let lvl = B.int_place b "lvl" in
  B.timed_exp b ~name:"step"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m lvl < 3)
    ~reads:[ San.Place.P lvl ]
    (fun _ m -> M.add m lvl 1);
  (* Dead: [lvl] never exceeds 3, so the guard never holds. *)
  B.timed_exp b ~name:"overflow"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m lvl > 7)
    ~reads:[ San.Place.P lvl ]
    (fun _ m -> M.set m lvl 0);
  let r = check (B.build b) in
  match with_code D.dead_activity r with
  | [ d ] ->
      Alcotest.(check bool) "warning on the dead activity" true
        (d.D.severity = D.Warning && d.D.source = D.Activity "overflow")
  | ds -> Alcotest.failf "expected exactly one A004, got %d:\n%s"
            (List.length ds) (pp_report r)

let test_a005_a006_dead_places () =
  let b = B.create "with_dead_places" in
  let lvl = B.int_place b "lvl" in
  (* Never written: only ever read (by the rate). *)
  let speed = B.int_place b ~init:2 "speed" in
  (* Never read: only ever written. *)
  let echo = B.int_place b "echo" in
  B.timed_exp b ~name:"cycle"
    ~rate:(fun m -> float_of_int (M.get m speed))
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P lvl; San.Place.P speed ]
    (fun _ m ->
      M.set m lvl (1 - M.get m lvl);
      M.set m echo 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "A005 on speed" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Warning && d.D.source = D.Place "speed")
       (with_code D.never_written_place r));
  Alcotest.(check bool) "A006 on echo" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Warning && d.D.source = D.Place "echo")
       (with_code D.never_read_place r))

(* --- A007: instantaneous loop --- *)

let test_a007_instantaneous_loop () =
  let b = B.create "buggy_loop" in
  let hot = B.int_place b ~init:1 "hot" in
  (* Stays enabled after firing: the stabilization never terminates. *)
  B.instantaneous b ~name:"spin"
    ~enabled:(fun m -> M.get m hot = 1)
    ~reads:[ San.Place.P hot ]
    (fun _ m -> M.set m hot 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "falls back to sampling" true
    (r.Analysis.Check.mode = Analysis.Space.Sampled);
  match with_code D.instantaneous_loop r with
  | [ d ] -> Alcotest.(check bool) "error" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected exactly one A007, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A008: instantaneous tie --- *)

let test_a008_instantaneous_tie () =
  let b = B.create "tied" in
  let pending = B.int_place b ~init:1 "pending" in
  let a_won = B.int_place b "a_won" in
  let b_won = B.int_place b "b_won" in
  (* Both enabled at the initial (vanishing) marking: the executor must
     flip a coin, which the modeler may not have intended. *)
  B.instantaneous b ~name:"claim_a"
    ~enabled:(fun m -> M.get m pending = 1)
    ~reads:[ San.Place.P pending ]
    (fun _ m ->
      M.set m pending 0;
      M.set m a_won 1);
  B.instantaneous b ~name:"claim_b"
    ~enabled:(fun m -> M.get m pending = 1)
    ~reads:[ San.Place.P pending ]
    (fun _ m ->
      M.set m pending 0;
      M.set m b_won 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  match with_code D.instantaneous_tie r with
  | [ d ] ->
      Alcotest.(check bool) "warning naming both" true
        (d.D.severity = D.Warning
        && message_mentions ~needle:"claim_a" d
        && message_mentions ~needle:"claim_b" d)
  | ds -> Alcotest.failf "expected exactly one A008, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A009: unused shared place (composition audit) --- *)

let composed_fixture ~touch_shared () =
  let b = B.create "composed" in
  let root = Compose.Ctx.root b "sys" in
  let shared = Compose.Ctx.int_place root "mailbox" in
  let (_ : unit array) =
    Compose.replicate root "unit" ~n:2 (fun ctx i ->
        let tok = Compose.Ctx.int_place ctx ~init:1 "tok" in
        let reads =
          if touch_shared && i = 0 then [ San.Place.P tok; San.Place.P shared ]
          else [ San.Place.P tok ]
        in
        Compose.Ctx.timed_exp ctx ~name:"tick"
          ~rate:(fun _ -> 1.0)
          ~enabled:(fun m -> M.get m tok = 1)
          ~reads
          (fun _ m ->
            M.set m tok 0;
            if touch_shared && i = 0 then M.set m shared 1))
  in
  (B.build b, Compose.info root)

let test_a009_unused_shared_place () =
  let model, info = composed_fixture ~touch_shared:false () in
  let r = check ~composition:info model in
  (match with_code D.unused_shared_place r with
  | [ d ] ->
      Alcotest.(check bool) "warning at the root node" true
        (d.D.severity = D.Warning && d.D.source = D.Composition "sys");
      Alcotest.(check bool) "names the place" true
        (message_mentions ~needle:"\"mailbox\"" d)
  | ds ->
      Alcotest.failf "expected exactly one A009, got %d:\n%s"
        (List.length ds) (pp_report r));
  (* Touched by one copy's activity: the audit is satisfied. *)
  let model, info = composed_fixture ~touch_shared:true () in
  let r = check ~composition:info model in
  Alcotest.(check (list string)) "no A009 when shared place is used" []
    (List.map (Format.asprintf "%a" D.pp) (with_code D.unused_shared_place r))

(* --- report plumbing --- *)

let test_deterministic_json () =
  let run () =
    let model, info = composed_fixture ~touch_shared:false () in
    Report.Json.to_string
      (Analysis.Check.to_json (check ~composition:info model))
  in
  Alcotest.(check string) "same bytes across runs" (run ()) (run ())

let test_exit_contract () =
  let b = B.create "buggy" in
  let gate = B.int_place b ~init:1 "gate" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m gate = 1 && M.get m tokens < 2)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "has_errors" true (Analysis.Check.has_errors r);
  Alcotest.(check bool) "errors listed" true
    (List.length (Analysis.Check.errors r) >= 1);
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:3 in
  Alcotest.(check bool) "clean model has no errors" false
    (Analysis.Check.has_errors (check q.Test_models.q_model))

let test_catalogue_covers_all_codes () =
  let catalogued = List.map fst D.catalogue in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " catalogued") true
        (List.mem code catalogued))
    [
      D.undeclared_read; D.undeclared_write; D.negative_write;
      D.dead_activity; D.never_written_place; D.never_read_place;
      D.instantaneous_loop; D.instantaneous_tie; D.unused_shared_place;
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "clean models",
        [
          Alcotest.test_case "mm1k, exhaustive, 5 markings" `Quick
            test_clean_mm1k;
          Alcotest.test_case "gong, exhaustive, 9 markings" `Quick
            test_clean_gong;
        ] );
      ( "A001 undeclared reads",
        [
          Alcotest.test_case "enabled" `Quick test_a001_enabled;
          Alcotest.test_case "dist" `Quick test_a001_dist;
          Alcotest.test_case "weight" `Quick test_a001_weight;
          Alcotest.test_case "effect (Sim.Lint regression)" `Quick
            test_a001_effect_regression;
        ] );
      ( "A002 undeclared writes",
        [ Alcotest.test_case "stale wake-up" `Quick test_a002_undeclared_write ] );
      ( "A003 negative writes",
        [ Alcotest.test_case "underflow" `Quick test_a003_negative_write ] );
      ( "liveness",
        [
          Alcotest.test_case "A004 dead activity" `Quick
            test_a004_dead_activity;
          Alcotest.test_case "A005/A006 dead places" `Quick
            test_a005_a006_dead_places;
        ] );
      ( "instantaneous",
        [
          Alcotest.test_case "A007 loop" `Quick test_a007_instantaneous_loop;
          Alcotest.test_case "A008 tie" `Quick test_a008_instantaneous_tie;
        ] );
      ( "composition",
        [
          Alcotest.test_case "A009 unused shared place" `Quick
            test_a009_unused_shared_place;
        ] );
      ( "report",
        [
          Alcotest.test_case "deterministic JSON" `Quick
            test_deterministic_json;
          Alcotest.test_case "exit contract" `Quick test_exit_contract;
          Alcotest.test_case "catalogue complete" `Quick
            test_catalogue_covers_all_codes;
        ] );
    ]
