(* Tests for the analysis library: one deliberately broken fixture per
   diagnostic code (pinned to the code and message), clean models that
   must check clean, exhaustive-coverage proofs on models of known size,
   and report determinism. *)

module B = San.Model.Builder
module M = San.Marking
module D = Analysis.Diagnostic

let check ?composition ?runs model =
  Analysis.Check.run ?composition ?runs model

let diags (r : Analysis.Check.t) = r.Analysis.Check.diagnostics

let with_code code r =
  List.filter (fun (d : D.t) -> d.D.code = code) (diags r)

let message_mentions ~needle (d : D.t) =
  let hay = d.D.message and n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

let pp_report r = Format.asprintf "%a" Analysis.Check.pp r

(* --- clean models check clean --- *)

let test_clean_mm1k () =
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:4 in
  let r = check q.Test_models.q_model in
  Alcotest.(check bool)
    "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  (* K = 4 queue: exactly the 5 markings 0..4, proving full coverage. *)
  Alcotest.(check int) "five stable markings" 5 r.Analysis.Check.n_stable;
  Alcotest.(check string) "no diagnostics" ""
    (String.concat "; " (List.map (Format.asprintf "%a" D.pp) (diags r)))

let test_clean_gong () =
  let g = Test_models.gong () in
  let r = check g.Test_models.g_model in
  Alcotest.(check bool)
    "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  Alcotest.(check int) "nine stable markings" 9 r.Analysis.Check.n_stable;
  (* Cross-check the coverage claim against the CTMC generator. *)
  Alcotest.(check int) "matches the CTMC state count"
    (Ctmc.Explore.n_states (Ctmc.Explore.explore g.Test_models.g_model))
    r.Analysis.Check.n_stable;
  Alcotest.(check (list string)) "no diagnostics" []
    (List.map (Format.asprintf "%a" D.pp) (diags r))

(* --- A001: undeclared reads, one fixture per via --- *)

let test_a001_enabled () =
  let b = B.create "buggy" in
  let gate = B.int_place b ~init:1 "gate" in
  let tokens = B.int_place b "tokens" in
  (* Bug: [enabled] reads [gate] but declares only [tokens]. *)
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m gate = 1 && M.get m tokens < 5)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  match with_code D.undeclared_read r with
  | [ d ] ->
      Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
      Alcotest.(check bool) "source is the activity" true
        (d.D.source = D.Activity "produce");
      Alcotest.(check bool) "names the via and place" true
        (message_mentions ~needle:"enabled" d
        && message_mentions ~needle:"\"gate\"" d)
  | ds -> Alcotest.failf "expected exactly one A001, got %d:\n%s"
            (List.length ds) (pp_report r)

let test_a001_dist () =
  let b = B.create "buggy_rate" in
  let speed = B.int_place b ~init:2 "speed" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun m -> float_of_int (1 + M.get m speed))
    ~enabled:(fun m -> M.get m tokens < 5)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "dist violation reported" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Error
         && message_mentions ~needle:"dist" d
         && message_mentions ~needle:"\"speed\"" d)
       (with_code D.undeclared_read r))

let test_a001_weight () =
  let b = B.create "buggy_weight" in
  let bias = B.int_place b ~init:3 "bias" in
  let fired = B.int_place b "fired" in
  B.timed b ~name:"choose"
    ~dist:(fun _ -> Dist.Exponential { rate = 1.0 })
    ~enabled:(fun m -> M.get m fired = 0)
    ~reads:[ San.Place.P fired ]
    [
      San.Activity.make_case
        ~weight:(fun m -> float_of_int (M.get m bias))
        (San.Effect.Ops [ San.Effect.Set (fired, San.Effect.Int 1) ]);
      San.Activity.make_case
        (San.Effect.Ops [ San.Effect.Set (fired, San.Effect.Int 1) ]);
    ];
  let r = check (B.build b) in
  Alcotest.(check bool) "weight violation reported" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Error
         && message_mentions ~needle:"weight" d
         && message_mentions ~needle:"\"bias\"" d)
       (with_code D.undeclared_read r))

let test_a001_effect_regression () =
  (* Regression: reads performed inside a case effect. Sim.Lint (the
     predecessor of this library) only traced enabled/dist/weight, so
     this model linted clean; the effect read of [burst] must now be
     reported (as a warning: firing-time reads are not stale, but the
     read-set omission breaks the input-gate discipline). *)
  let b = B.create "buggy_effect" in
  let burst = B.int_place b ~init:2 "burst" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m tokens = 0)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.set m tokens (M.get m burst));
  let r = check (B.build b) in
  match with_code D.undeclared_read r with
  | [ d ] ->
      Alcotest.(check bool) "warning severity" true
        (d.D.severity = D.Warning);
      Alcotest.(check bool) "names the effect read" true
        (message_mentions ~needle:"effect" d
        && message_mentions ~needle:"\"burst\"" d)
  | ds -> Alcotest.failf "expected exactly one A001, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A002: undeclared writes (stale wake-up, writer side) --- *)

let test_a002_undeclared_write () =
  let b = B.create "buggy_writer" in
  let flag = B.int_place b "flag" in
  let done_ = B.int_place b "done" in
  (* [raise_flag] writes [flag]; [consume] reads it in [enabled] without
     declaring it, so the write cannot wake [consume]. *)
  B.timed_exp b ~name:"raise_flag"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m flag = 0 && M.get m done_ = 0)
    ~reads:[ San.Place.P flag; San.Place.P done_ ]
    (fun _ m -> M.set m flag 1);
  B.timed_exp b ~name:"consume"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m flag = 1)
    ~reads:[ San.Place.P done_ ]
    (fun _ m -> M.set m done_ 1);
  let r = check (B.build b) in
  match with_code D.undeclared_write r with
  | [ d ] ->
      Alcotest.(check bool) "error at the writer" true
        (d.D.severity = D.Error && d.D.source = D.Activity "raise_flag");
      Alcotest.(check bool) "names place and reader" true
        (message_mentions ~needle:"\"flag\"" d
        && message_mentions ~needle:"consume" d)
  | ds -> Alcotest.failf "expected exactly one A002, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A003: negative-marking writes --- *)

let test_a003_negative_write () =
  let b = B.create "buggy_negative" in
  let stock = B.int_place b "stock" in
  (* Enabled regardless of stock, so the effect underflows at 0. *)
  B.timed_exp b ~name:"take"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P stock ]
    (fun _ m -> M.add m stock (-1));
  let r = check (B.build b) in
  match with_code D.negative_write r with
  | [ d ] ->
      Alcotest.(check bool) "error at the activity" true
        (d.D.severity = D.Error && d.D.source = D.Activity "take");
      Alcotest.(check bool) "carries the Marking.set message" true
        (message_mentions ~needle:"negative" d
        && message_mentions ~needle:"stock" d)
  | ds -> Alcotest.failf "expected exactly one A003, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A004/A005/A006: liveness --- *)

let test_a004_dead_activity () =
  let b = B.create "with_dead" in
  let lvl = B.int_place b "lvl" in
  B.timed_exp b ~name:"step"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m lvl < 3)
    ~reads:[ San.Place.P lvl ]
    (fun _ m -> M.add m lvl 1);
  (* Dead: [lvl] never exceeds 3, so the guard never holds. *)
  B.timed_exp b ~name:"overflow"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m lvl > 7)
    ~reads:[ San.Place.P lvl ]
    (fun _ m -> M.set m lvl 0);
  let r = check (B.build b) in
  match with_code D.dead_activity r with
  | [ d ] ->
      Alcotest.(check bool) "warning on the dead activity" true
        (d.D.severity = D.Warning && d.D.source = D.Activity "overflow")
  | ds -> Alcotest.failf "expected exactly one A004, got %d:\n%s"
            (List.length ds) (pp_report r)

let test_a005_a006_dead_places () =
  let b = B.create "with_dead_places" in
  let lvl = B.int_place b "lvl" in
  (* Never written: only ever read (by the rate). *)
  let speed = B.int_place b ~init:2 "speed" in
  (* Never read: only ever written. *)
  let echo = B.int_place b "echo" in
  B.timed_exp b ~name:"cycle"
    ~rate:(fun m -> float_of_int (M.get m speed))
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P lvl; San.Place.P speed ]
    (fun _ m ->
      M.set m lvl (1 - M.get m lvl);
      M.set m echo 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "A005 on speed" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Warning && d.D.source = D.Place "speed")
       (with_code D.never_written_place r));
  Alcotest.(check bool) "A006 on echo" true
    (List.exists
       (fun (d : D.t) ->
         d.D.severity = D.Warning && d.D.source = D.Place "echo")
       (with_code D.never_read_place r))

(* --- A007: instantaneous loop --- *)

let test_a007_instantaneous_loop () =
  let b = B.create "buggy_loop" in
  let hot = B.int_place b ~init:1 "hot" in
  (* Stays enabled after firing: the stabilization never terminates. *)
  B.instantaneous b ~name:"spin"
    ~enabled:(fun m -> M.get m hot = 1)
    ~reads:[ San.Place.P hot ]
    (fun _ m -> M.set m hot 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "falls back to sampling" true
    (r.Analysis.Check.mode = Analysis.Space.Sampled);
  match with_code D.instantaneous_loop r with
  | [ d ] -> Alcotest.(check bool) "error" true (d.D.severity = D.Error)
  | ds -> Alcotest.failf "expected exactly one A007, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A008: instantaneous tie --- *)

let test_a008_instantaneous_tie () =
  let b = B.create "tied" in
  let pending = B.int_place b ~init:1 "pending" in
  let a_won = B.int_place b "a_won" in
  let b_won = B.int_place b "b_won" in
  (* Both enabled at the initial (vanishing) marking: the executor must
     flip a coin, which the modeler may not have intended. *)
  B.instantaneous b ~name:"claim_a"
    ~enabled:(fun m -> M.get m pending = 1)
    ~reads:[ San.Place.P pending ]
    (fun _ m ->
      M.set m pending 0;
      M.set m a_won 1);
  B.instantaneous b ~name:"claim_b"
    ~enabled:(fun m -> M.get m pending = 1)
    ~reads:[ San.Place.P pending ]
    (fun _ m ->
      M.set m pending 0;
      M.set m b_won 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "exhaustive mode" true
    (r.Analysis.Check.mode = Analysis.Space.Exhaustive);
  match with_code D.instantaneous_tie r with
  | [ d ] ->
      Alcotest.(check bool) "warning naming both" true
        (d.D.severity = D.Warning
        && message_mentions ~needle:"claim_a" d
        && message_mentions ~needle:"claim_b" d)
  | ds -> Alcotest.failf "expected exactly one A008, got %d:\n%s"
            (List.length ds) (pp_report r)

(* --- A009: unused shared place (composition audit) --- *)

let composed_fixture ~touch_shared () =
  let b = B.create "composed" in
  let root = Compose.Ctx.root b "sys" in
  let shared = Compose.Ctx.int_place root "mailbox" in
  let (_ : unit array) =
    Compose.replicate root "unit" ~n:2 (fun ctx i ->
        let tok = Compose.Ctx.int_place ctx ~init:1 "tok" in
        let reads =
          if touch_shared && i = 0 then [ San.Place.P tok; San.Place.P shared ]
          else [ San.Place.P tok ]
        in
        Compose.Ctx.timed_exp ctx ~name:"tick"
          ~rate:(fun _ -> 1.0)
          ~enabled:(fun m -> M.get m tok = 1)
          ~reads
          (fun _ m ->
            M.set m tok 0;
            if touch_shared && i = 0 then M.set m shared 1))
  in
  (B.build b, Compose.info root)

let test_a009_unused_shared_place () =
  let model, info = composed_fixture ~touch_shared:false () in
  let r = check ~composition:info model in
  (match with_code D.unused_shared_place r with
  | [ d ] ->
      Alcotest.(check bool) "warning at the root node" true
        (d.D.severity = D.Warning && d.D.source = D.Composition "sys");
      Alcotest.(check bool) "names the place" true
        (message_mentions ~needle:"\"mailbox\"" d)
  | ds ->
      Alcotest.failf "expected exactly one A009, got %d:\n%s"
        (List.length ds) (pp_report r));
  (* Touched by one copy's activity: the audit is satisfied. *)
  let model, info = composed_fixture ~touch_shared:true () in
  let r = check ~composition:info model in
  Alcotest.(check (list string)) "no A009 when shared place is used" []
    (List.map (Format.asprintf "%a" D.pp) (with_code D.unused_shared_place r))

(* --- structural analysis: semiflows, certificates, A010-A012 --- *)

module St = Analysis.Structure

let structure (r : Analysis.Check.t) = r.Analysis.Check.structure

let test_structure_mm1k () =
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:4 in
  let s = structure (check q.Test_models.q_model) in
  Alcotest.(check (list string))
    "two modes" [ "arrive"; "serve" ]
    (Array.to_list (Array.map (fun md -> md.St.label) s.St.modes));
  Alcotest.(check bool) "arrive adds one" true
    (s.St.modes.(0).St.delta = [ (0, 1) ]);
  Alcotest.(check bool) "serve removes one" true
    (s.St.modes.(1).St.delta = [ (0, -1) ]);
  (* A single place whose row is [+1 -1] admits no non-negative
     conservation, but firing arrive and serve once each is neutral. *)
  Alcotest.(check int) "no P-semiflows" 0 (List.length s.St.p_semiflows);
  Alcotest.(check bool) "one T-semiflow: {arrive, serve}" true
    (s.St.t_semiflows = [ [ (0, 1); (1, 1) ] ]);
  Alcotest.(check int) "rank 1" 1 s.St.rank;
  Alcotest.(check int) "no invariant dimension" 0 s.St.invariant_dim

let test_structure_gong () =
  let g = Test_models.gong () in
  let s = structure (check g.Test_models.g_model) in
  Alcotest.(check int) "fifteen modes" 15 (Array.length s.St.modes);
  Alcotest.(check int) "no P-semiflows" 0 (List.length s.St.p_semiflows);
  (* The nine-state graph lives in one integer place, so to the
     incidence abstraction a T-semiflow is any cancelling pair: 9
     value-increasing transitions times 6 value-decreasing ones. *)
  Alcotest.(check int) "54 T-semiflows" 54 (List.length s.St.t_semiflows);
  let label i = s.St.modes.(i).St.label in
  Alcotest.(check bool) "probe/patch is one of them" true
    (List.exists
       (fun tf ->
         List.map (fun (i, k) -> (label i, k)) tf
         = [ ("probe_finds_vulnerability", 1); ("vulnerability_patched", 1) ])
       s.St.t_semiflows)

let ring_fixture () =
  let b = B.create "ring" in
  let a = B.int_place b ~init:1 "a" in
  let c = B.int_place b "b" in
  B.timed_exp b ~name:"move_ab"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m a = 1)
    ~reads:[ San.Place.P a ]
    (fun _ m ->
      M.add m a (-1);
      M.add m c 1);
  B.timed_exp b ~name:"move_ba"
    ~rate:(fun _ -> 2.0)
    ~enabled:(fun m -> M.get m c = 1)
    ~reads:[ San.Place.P c ]
    (fun _ m ->
      M.add m c (-1);
      M.add m a 1);
  (B.build b, a, c)

let covered_all s = List.for_all (fun i -> St.covered s i)

let test_p_semiflow_ring () =
  let model, _, _ = ring_fixture () in
  let s = structure (check model) in
  (match s.St.p_semiflows with
  | [ f ] ->
      Alcotest.(check bool) "a + b" true (f.St.flow_terms = [ (0, 1); (1, 1) ]);
      Alcotest.(check int) "token count one" 1 f.St.flow_value
  | fs -> Alcotest.failf "expected one P-semiflow, got %d" (List.length fs));
  Alcotest.(check bool) "both places covered" true
    (covered_all s [ 0; 1 ]);
  Alcotest.(check bool) "both bounded by the flow" true
    (s.St.structural_bound.(0) = Some 1 && s.St.structural_bound.(1) = Some 1)

let test_a010_unbounded () =
  let b = B.create "birth" in
  let pop = B.int_place b "births" in
  B.timed_exp b ~name:"arrive"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun _ -> true)
    ~reads:[ San.Place.P pop ]
    (fun _ m -> M.add m pop 1);
  (* Exhaustive walking aborts at 40 states and falls back to sampling,
     which cannot bound [births]; no P-semiflow covers it either. *)
  let r = Analysis.Check.run ~max_states:40 (B.build b) in
  Alcotest.(check bool) "sampled mode" true
    (r.Analysis.Check.mode = Analysis.Space.Sampled);
  match with_code D.unbounded_place r with
  | [ d ] ->
      Alcotest.(check bool) "warning on the place" true
        (d.D.severity = D.Warning && d.D.source = D.Place "births")
  | ds ->
      Alcotest.failf "expected exactly one A010, got %d:\n%s" (List.length ds)
        (pp_report r)

let test_a010_not_on_clean_sampled () =
  (* A bounded model forced into sampled mode must not warn when its
     places are covered by a P-semiflow. *)
  let model, _, _ = ring_fixture () in
  let r = Analysis.Check.run ~max_states:1 model in
  Alcotest.(check bool) "sampled mode" true
    (r.Analysis.Check.mode = Analysis.Space.Sampled);
  Alcotest.(check (list string)) "no A010" []
    (List.map (Format.asprintf "%a" D.pp) (with_code D.unbounded_place r))

let test_a011_dead_effect () =
  let b = B.create "noop" in
  let tick = B.int_place b "tick" in
  B.timed_exp b ~name:"advance"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m tick >= 0)
    ~reads:[ San.Place.P tick ]
    (fun _ _ -> ());
  let r = check (B.build b) in
  match with_code D.dead_effect r with
  | [ d ] ->
      Alcotest.(check bool) "warning on the activity" true
        (d.D.severity = D.Warning && d.D.source = D.Activity "advance")
  | ds ->
      Alcotest.failf "expected exactly one A011, got %d:\n%s" (List.length ds)
        (pp_report r)

let leaky_fixture () =
  let b = B.create "leaky" in
  let pool = B.int_place b ~init:3 "pool" in
  let used = B.int_place b "used" in
  (* Bug: [take] consumes from the pool without accounting in [used]. *)
  B.timed_exp b ~name:"take"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m pool > 0)
    ~reads:[ San.Place.P pool ]
    (fun _ m -> M.add m pool (-1));
  let law =
    { St.law_name = "pool-conserved"; law_terms = [ (pool, 1); (used, 1) ] }
  in
  (B.build b, law)

let test_a012_invariant_violated () =
  let model, law = leaky_fixture () in
  let r = Analysis.Check.run ~laws:[ law ] model in
  (match with_code D.invariant_violated r with
  | [ d ] ->
      Alcotest.(check bool) "error at the activity" true
        (d.D.severity = D.Error && d.D.source = D.Activity "take");
      Alcotest.(check bool) "names the law and the drift" true
        (message_mentions ~needle:"pool-conserved" d
        && message_mentions ~needle:"-1" d)
  | ds ->
      Alcotest.failf "expected exactly one A012, got %d:\n%s" (List.length ds)
        (pp_report r));
  Alcotest.(check int) "exit code 1" 1 (Analysis.Check.exit_code r)

let test_exit_code_strict () =
  (* Warnings only: exit 0, promoted to 1 under --strict. *)
  let b = B.create "noop" in
  let tick = B.int_place b "tick" in
  B.timed_exp b ~name:"advance"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m tick >= 0)
    ~reads:[ San.Place.P tick ]
    (fun _ _ -> ());
  let r = check (B.build b) in
  Alcotest.(check bool) "warnings present" true
    (Analysis.Check.count D.Warning r > 0);
  Alcotest.(check int) "default exit 0" 0 (Analysis.Check.exit_code r);
  Alcotest.(check int) "strict exit 1" 1
    (Analysis.Check.exit_code ~strict:true r);
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:3 in
  let clean = check q.Test_models.q_model in
  Alcotest.(check int) "clean stays 0 under strict" 0
    (Analysis.Check.exit_code ~strict:true clean)

let test_itua_certificate () =
  let p =
    {
      Itua.Params.default with
      Itua.Params.num_domains = 2;
      hosts_per_domain = 2;
      num_apps = 1;
      num_reps = 2;
    }
  in
  let h = Itua.Model.build p in
  let r =
    Analysis.Check.run ~composition:h.Itua.Model.composition
      ~laws:(Itua.Invariant.conservation_laws h)
      h.Itua.Model.model
  in
  let s = structure r in
  (* The certificate the paper's model is expected to carry: hosts are
     conserved across corrupt/excluded/good states, replicas across
     running/recovering/waiting, and the manager counters agree. *)
  Alcotest.(check (list string))
    "declared laws, in order"
    [
      "hosts-conserved"; "app[0]-replicas-conserved"; "managers-consistent";
      "domain-managers-consistent"; "corrupt-managers-consistent";
    ]
    (List.map (fun lr -> lr.St.lr_name) s.St.laws);
  List.iter
    (fun lr ->
      Alcotest.(check bool)
        (lr.St.lr_name ^ " holds across every mode")
        true (lr.St.lr_violations = []))
    s.St.laws;
  let hosts = List.hd s.St.laws in
  Alcotest.(check int) "four hosts conserved" 4 hosts.St.lr_value;
  Alcotest.(check (list string)) "no A012" []
    (List.map (Format.asprintf "%a" D.pp) (with_code D.invariant_violated r))

(* --- the executor's invariant-guard mode --- *)

let test_executor_guard_holds () =
  let model, a, c = ring_fixture () in
  let laws = [ { St.law_name = "token"; law_terms = [ (a, 1); (c, 1) ] } ] in
  let cfg = Sim.Executor.config ~horizon:5.0 () in
  let outcome =
    Sim.Executor.run
      ~check_invariants:(St.guard ~laws model)
      ~model ~config:cfg
      ~stream:(Prng.Stream.create ~seed:11L)
      ~observer:Sim.Observer.nop ()
  in
  Alcotest.(check bool) "events happened" true (outcome.Sim.Executor.events > 0)

let test_executor_guard_raises () =
  let model, law = leaky_fixture () in
  let cfg = Sim.Executor.config ~horizon:50.0 () in
  match
    Sim.Executor.run
      ~check_invariants:(St.guard ~laws:[ law ] model)
      ~model ~config:cfg
      ~stream:(Prng.Stream.create ~seed:11L)
      ~observer:Sim.Observer.nop ()
  with
  | (_ : Sim.Executor.outcome) ->
      Alcotest.fail "the leak must trip the invariant guard"
  | exception St.Invariant_violation msg ->
      Alcotest.(check bool) "message names the law" true
        (let n = String.length "pool-conserved" in
         let rec go i =
           i + n <= String.length msg
           && (String.sub msg i n = "pool-conserved" || go (i + 1))
         in
         go 0)

(* --- report plumbing --- *)

let test_deterministic_json () =
  let run () =
    let model, info = composed_fixture ~touch_shared:false () in
    Report.Json.to_string
      (Analysis.Check.to_json (check ~composition:info model))
  in
  Alcotest.(check string) "same bytes across runs" (run ()) (run ())

let test_exit_contract () =
  let b = B.create "buggy" in
  let gate = B.int_place b ~init:1 "gate" in
  let tokens = B.int_place b "tokens" in
  B.timed_exp b ~name:"produce"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m gate = 1 && M.get m tokens < 2)
    ~reads:[ San.Place.P tokens ]
    (fun _ m -> M.add m tokens 1);
  let r = check (B.build b) in
  Alcotest.(check bool) "has_errors" true (Analysis.Check.has_errors r);
  Alcotest.(check bool) "errors listed" true
    (List.length (Analysis.Check.errors r) >= 1);
  let q = Test_models.mm1k ~lambda:2.0 ~mu:3.0 ~k:3 in
  Alcotest.(check bool) "clean model has no errors" false
    (Analysis.Check.has_errors (check q.Test_models.q_model))

let test_catalogue_covers_all_codes () =
  let catalogued = List.map fst D.catalogue in
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " catalogued") true
        (List.mem code catalogued))
    [
      D.undeclared_read; D.undeclared_write; D.negative_write;
      D.dead_activity; D.never_written_place; D.never_read_place;
      D.instantaneous_loop; D.instantaneous_tie; D.unused_shared_place;
      D.unbounded_place; D.dead_effect; D.invariant_violated;
    ]

let () =
  Alcotest.run "analysis"
    [
      ( "clean models",
        [
          Alcotest.test_case "mm1k, exhaustive, 5 markings" `Quick
            test_clean_mm1k;
          Alcotest.test_case "gong, exhaustive, 9 markings" `Quick
            test_clean_gong;
        ] );
      ( "A001 undeclared reads",
        [
          Alcotest.test_case "enabled" `Quick test_a001_enabled;
          Alcotest.test_case "dist" `Quick test_a001_dist;
          Alcotest.test_case "weight" `Quick test_a001_weight;
          Alcotest.test_case "effect (Sim.Lint regression)" `Quick
            test_a001_effect_regression;
        ] );
      ( "A002 undeclared writes",
        [ Alcotest.test_case "stale wake-up" `Quick test_a002_undeclared_write ] );
      ( "A003 negative writes",
        [ Alcotest.test_case "underflow" `Quick test_a003_negative_write ] );
      ( "liveness",
        [
          Alcotest.test_case "A004 dead activity" `Quick
            test_a004_dead_activity;
          Alcotest.test_case "A005/A006 dead places" `Quick
            test_a005_a006_dead_places;
        ] );
      ( "instantaneous",
        [
          Alcotest.test_case "A007 loop" `Quick test_a007_instantaneous_loop;
          Alcotest.test_case "A008 tie" `Quick test_a008_instantaneous_tie;
        ] );
      ( "composition",
        [
          Alcotest.test_case "A009 unused shared place" `Quick
            test_a009_unused_shared_place;
        ] );
      ( "structure",
        [
          Alcotest.test_case "mm1k incidence and T-semiflow" `Quick
            test_structure_mm1k;
          Alcotest.test_case "gong cancelling pairs" `Quick
            test_structure_gong;
          Alcotest.test_case "token ring P-semiflow" `Quick
            test_p_semiflow_ring;
          Alcotest.test_case "A010 unbounded birth" `Quick
            test_a010_unbounded;
          Alcotest.test_case "A010 silent when covered" `Quick
            test_a010_not_on_clean_sampled;
          Alcotest.test_case "A011 dead effect" `Quick test_a011_dead_effect;
          Alcotest.test_case "A012 violated law" `Quick
            test_a012_invariant_violated;
          Alcotest.test_case "exit code strictness" `Quick
            test_exit_code_strict;
          Alcotest.test_case "ITUA conservation certificate" `Quick
            test_itua_certificate;
        ] );
      ( "executor guard",
        [
          Alcotest.test_case "proven invariant holds" `Quick
            test_executor_guard_holds;
          Alcotest.test_case "leak trips the guard" `Quick
            test_executor_guard_raises;
        ] );
      ( "report",
        [
          Alcotest.test_case "deterministic JSON" `Quick
            test_deterministic_json;
          Alcotest.test_case "exit contract" `Quick test_exit_contract;
          Alcotest.test_case "catalogue complete" `Quick
            test_catalogue_covers_all_codes;
        ] );
    ]
