(* Tests for the effect IR: interpreter semantics, static read/write
   extraction, the compiled flat-array executor path (pinned
   bit-identical against the interpreted path), the exact A013-A016
   diagnostics (one deliberately broken fixture per code), exact-law
   span skipping, and Rat normalization edge cases. *)

module B = San.Model.Builder
module M = San.Marking
module E = San.Effect
module D = Analysis.Diagnostic
module St = Analysis.Structure

let with_code code (r : Analysis.Check.t) =
  List.filter
    (fun (d : D.t) -> d.D.code = code)
    r.Analysis.Check.diagnostics

let message_mentions ~needle (d : D.t) =
  let hay = d.D.message and n = String.length needle in
  let rec go i =
    i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
  in
  go 0

(* --- IR interpreter semantics --- *)

let two_places () =
  let b = B.create "ir" in
  let p = B.int_place b ~init:3 "p" in
  let q = B.int_place b "q" in
  (b, p, q)

let marking b =
  let model = B.build b in
  (model, San.Model.initial_marking model)

let test_eval_holds () =
  let b, p, q = two_places () in
  B.instantaneous_ir b ~name:"noop" ~guard:(E.Const false) ~reads:[] E.Skip;
  let _, m = marking b in
  Alcotest.(check int) "arith" 7 (E.eval m E.(Add (Mark p, Mul (Int 2, Int 2))));
  Alcotest.(check int) "sub" 3 (E.eval m E.(Sub (Mark p, Mark q)));
  Alcotest.(check int) "indicator true" 1
    (E.eval m E.(Ind (Cmp (Mark p, Ge, Int 3))));
  Alcotest.(check int) "indicator false" 0
    (E.eval m E.(Ind (Cmp (Mark p, Lt, Int 3))));
  Alcotest.(check bool) "all" true
    (E.holds m E.(All [ Cmp (Mark p, Eq, Int 3); Not (Cmp (Mark q, Ne, Int 0)) ]));
  Alcotest.(check bool) "any empty is false" false (E.holds m (E.Any []))

let test_apply_ops_order () =
  let b, p, q = two_places () in
  B.instantaneous_ir b ~name:"noop" ~guard:(E.Const false) ~reads:[] E.Skip;
  let _, m = marking b in
  (* Ops run in order: the Inc sees the Set's value. *)
  E.apply E.null_ctx
    E.(Ops [ Set (p, Int 10); Inc (q, Mark p) ])
    m;
  Alcotest.(check int) "set then inc" 10 (M.get m q)

let test_outcomes_pick () =
  let b, p, _ = two_places () in
  B.instantaneous_ir b ~name:"noop" ~guard:(E.Const false) ~reads:[] E.Skip;
  let _, m = marking b in
  let outs =
    E.outcomes
      E.(
        Pick
          [
            (Const true, Ops [ Set (p, Int 0) ]);
            (Const false, Ops [ Set (p, Int 1) ]);
            (Const true, Ops [ Set (p, Int 2) ]);
          ])
      m
  in
  let outs =
    List.sort compare
      (List.map (fun (w, m') -> (M.get m' p, w)) outs)
  in
  Alcotest.(check (list (pair int (float 1e-9))))
    "feasible branches, uniform" [ (0, 0.5); (2, 0.5) ] outs

let test_static_reads_writes () =
  let b, p, q = two_places () in
  B.instantaneous_ir b ~name:"noop" ~guard:(E.Const false) ~reads:[] E.Skip;
  let _, _ = marking b in
  let eff = E.(Ops [ Inc (p, Mark q) ]) in
  Alcotest.(check (option (list int)))
    "inc reads its target and the expression"
    (Some (List.sort compare [ San.Place.uid p; San.Place.uid q ]))
    (E.static_reads eff);
  Alcotest.(check (option (list int)))
    "writes" (Some [ San.Place.uid p ]) (E.static_writes eff);
  let opaque = E.(Seq [ eff; Opaque { oname = "x"; run = (fun _ _ -> ()) } ]) in
  Alcotest.(check (option (list int))) "opaque reads" None
    (E.static_reads opaque);
  Alcotest.(check bool) "is_pure" false (E.is_pure opaque)

(* --- compiled vs interpreted executor paths, bit-identical --- *)

(* A model that exercises every IR feature the compiler touches:
   marking-dependent branches, Picks (stream draws), case weights and
   multiple cases, plus float writes. *)
let branching_model () =
  let b = B.create "branching" in
  let p = B.int_place b ~init:5 "p" in
  let q = B.int_place b "q" in
  let acc = B.float_place b "acc" in
  B.timed_exp_cases_ir b ~name:"churn"
    ~rate:(fun m -> 1.0 +. (0.1 *. float_of_int (M.get m p)))
    ~guard:E.(Cmp (Mark p, Gt, Int 0))
    ~reads:[ San.Place.P p; San.Place.P q ]
    [
      ( 2.0,
        E.(
          Seq
            [
              If
                ( Cmp (Mark q, Lt, Int 3),
                  Ops [ Inc (q, Int 1) ],
                  Ops [ Set (q, Int 0) ] );
              Ops [ FInc (acc, OfInt (Mark q)) ];
            ]) );
      ( 1.0,
        E.(
          Pick
            [
              (Cmp (Mark p, Gt, Int 1), Ops [ Inc (p, Int (-1)) ]);
              (Const true, Ops [ Inc (q, Int 2) ]);
            ]) );
    ];
  B.timed_exp_ir b ~name:"refill"
    ~rate:(fun _ -> 0.7)
    ~guard:E.(Cmp (Mark p, Lt, Int 5))
    ~reads:[ San.Place.P p ]
    E.(Ops [ Inc (p, Int 1) ]);
  B.build b

let trajectory ~compile model =
  let events = ref [] in
  let observer =
    {
      Sim.Observer.nop with
      on_fire =
        (fun t a case m ->
          events :=
            (t, a.San.Activity.name, case, M.int_snapshot m,
             M.float_snapshot m)
            :: !events);
    }
  in
  let config =
    Sim.Executor.config ~compile_effects:compile ~horizon:50.0 ()
  in
  let out =
    Sim.Executor.run ~model ~config
      ~stream:(Prng.Stream.create ~seed:42L)
      ~observer ()
  in
  (List.rev !events, out.Sim.Executor.events, out.Sim.Executor.final)

let test_compiled_path_bit_identical () =
  let model = branching_model () in
  let ev_i, n_i, final_i = trajectory ~compile:false model in
  let ev_c, n_c, final_c = trajectory ~compile:true model in
  Alcotest.(check int) "same event count" n_i n_c;
  Alcotest.(check bool) "some events fired" true (n_i > 10);
  Alcotest.(check bool) "identical final marking" true
    (M.equal final_i final_c);
  List.iter2
    (fun (t1, a1, c1, s1, f1) (t2, a2, c2, s2, f2) ->
      Alcotest.(check string) "same activity" a1 a2;
      Alcotest.(check int) "same case" c1 c2;
      (* Bit-identical: exact float equality on times and marks. *)
      Alcotest.(check bool) "same time" true (t1 = t2);
      Alcotest.(check bool) "same ints" true (s1 = s2);
      Alcotest.(check bool) "same floats" true (f1 = f2))
    ev_i ev_c

(* --- A013: declared-reads/writes vs IR, exact --- *)

let test_a013_guard_read_undeclared () =
  let b = B.create "a013-guard" in
  let gate = B.int_place b ~init:1 "gate" in
  let tokens = B.int_place b ~init:1 "tokens" in
  (* Bug: the guard reads [gate] but declares only [tokens]. *)
  B.timed_exp_ir b ~name:"tick"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(All [ Cmp (Mark gate, Eq, Int 1); Cmp (Mark tokens, Gt, Int 0) ])
    ~reads:[ San.Place.P tokens ]
    E.(Ops [ Inc (tokens, Int (-1)) ]);
  let r = Analysis.Check.run (B.build b) in
  match
    List.filter
      (fun d -> d.D.severity = D.Error)
      (with_code D.ir_mismatch r)
  with
  | [ d ] ->
      Alcotest.(check bool) "names the place" true
        (message_mentions ~needle:"\"gate\"" d);
      Alcotest.(check bool) "says guard" true
        (message_mentions ~needle:"guard reads" d)
  | ds -> Alcotest.failf "expected one A013 error, got %d" (List.length ds)

let test_a013_effect_reads_aggregated () =
  let b = B.create "a013-effect" in
  let src1 = B.int_place b ~init:2 "src1" in
  let src2 = B.int_place b ~init:2 "src2" in
  let dst = B.int_place b "dst" in
  (* The effect reads src1/src2 without declaring them: one aggregated
     Info, not two warnings. *)
  B.timed_exp_ir b ~name:"sum"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark dst, Eq, Int 0))
    ~reads:[ San.Place.P dst ]
    E.(Ops [ Set (dst, Add (Mark src1, Mark src2)) ]);
  let r = Analysis.Check.run (B.build b) in
  (match with_code D.ir_mismatch r with
  | [ d ] ->
      Alcotest.(check bool) "info severity" true (d.D.severity = D.Info);
      Alcotest.(check bool) "aggregated count" true
        (message_mentions ~needle:"2 place(s)" d)
  | ds -> Alcotest.failf "expected one A013 info, got %d" (List.length ds));
  (* The sampled A001 effect-read warning is subsumed, not duplicated. *)
  Alcotest.(check (list string)) "no A001 for IR activity" []
    (List.map
       (fun d -> d.D.message)
       (with_code D.undeclared_read r))

let test_a013_stale_wakeup_write () =
  let b = B.create "a013-write" in
  let sem = B.int_place b ~init:1 "sem" in
  let work = B.int_place b ~init:1 "work" in
  (* IR writer flips [sem]; the closure reader's [enabled] reads [sem]
     without declaring it, so the write cannot wake it — exact A002. *)
  B.timed_exp_ir b ~name:"writer"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark work, Gt, Int 0))
    ~reads:[ San.Place.P work ]
    E.(Ops [ Inc (work, Int (-1)); Set (sem, Int 0) ]);
  B.timed_exp b ~name:"reader"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> M.get m sem = 1)
    ~reads:[] (* bug: sem missing *)
    (fun _ _ -> ());
  let r = Analysis.Check.run (B.build b) in
  let errors =
    List.filter
      (fun d ->
        d.D.severity = D.Error
        && message_mentions ~needle:"cannot wake" d)
      (with_code D.ir_mismatch r)
  in
  match errors with
  | [ d ] ->
      Alcotest.(check bool) "names sem" true
        (message_mentions ~needle:"\"sem\"" d);
      Alcotest.(check bool) "names the reader" true
        (message_mentions ~needle:"reader" d)
  | ds ->
      Alcotest.failf "expected one A013 stale-wake-up error, got %d: %s"
        (List.length ds)
        (String.concat "; " (List.map (fun d -> d.D.message) ds))

(* --- A014: statically dead branch --- *)

let test_a014_dead_branch () =
  let b = B.create "a014" in
  let p = B.int_place b ~init:1 "p" in
  B.timed_exp_ir b ~name:"tick"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark p, Gt, Int 0))
    ~reads:[ San.Place.P p ]
    (* The then-branch is statically unreachable. *)
    E.(If (Const false, Ops [ Set (p, Int 9) ], Ops [ Set (p, Int 0) ]));
  let r = Analysis.Check.run (B.build b) in
  match with_code D.dead_branch r with
  | [ d ] ->
      Alcotest.(check bool) "info severity" true (d.D.severity = D.Info);
      Alcotest.(check bool) "says statically dead" true
        (message_mentions ~needle:"statically dead" d)
  | ds -> Alcotest.failf "expected one A014, got %d" (List.length ds)

(* --- A015: delta that can drive a place negative --- *)

let test_a015_negative_capable () =
  let b = B.create "a015" in
  let p = B.int_place b "p" in
  let tick = B.int_place b ~init:1 "tick" in
  (* The guard pins p = 0, and the effect decrements it anyway. *)
  B.timed_exp_ir b ~name:"drain"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(All [ Cmp (Mark p, Eq, Int 0); Cmp (Mark tick, Gt, Int 0) ])
    ~reads:[ San.Place.P p; San.Place.P tick ]
    E.(Ops [ Inc (p, Int (-1)) ]);
  let r = Analysis.Check.run (B.build b) in
  match with_code D.negative_capable r with
  | [ d ] ->
      Alcotest.(check bool) "warning severity" true
        (d.D.severity = D.Warning);
      Alcotest.(check bool) "explains the pin" true
        (message_mentions ~needle:"guard pins it at 0" d)
  | ds -> Alcotest.failf "expected one A015, got %d" (List.length ds)

(* --- A016: IR / reference-closure divergence --- *)

let test_a016_divergence () =
  let b = B.create "a016" in
  let p = B.int_place b "p" in
  let on = B.int_place b ~init:1 "on" in
  (* The IR adds 1; the reference closure adds 2. *)
  B.timed_exp_ir b ~name:"drift"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark on, Eq, Int 1))
    ~reads:[ San.Place.P on; San.Place.P p ]
    (E.Checked
       {
         ir = E.(Ops [ Inc (p, Int 1) ]);
         reference = { E.oname = "add2"; run = (fun _ m -> M.add m p 2) };
       });
  let r = Analysis.Check.run (B.build b) in
  match with_code D.ir_divergence r with
  | [ d ] ->
      Alcotest.(check bool) "error severity" true (d.D.severity = D.Error);
      Alcotest.(check bool) "says markings differ" true
        (message_mentions ~needle:"markings differ" d)
  | ds -> Alcotest.failf "expected one A016, got %d" (List.length ds)

let test_a016_agreement_silent () =
  let b = B.create "a016-ok" in
  let p = B.int_place b "p" in
  let on = B.int_place b ~init:1 "on" in
  B.timed_exp_ir b ~name:"ok"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark on, Eq, Int 1))
    ~reads:[ San.Place.P on; San.Place.P p ]
    (E.Checked
       {
         ir = E.(Ops [ Inc (p, Int 1) ]);
         reference = { E.oname = "add1"; run = (fun _ m -> M.add m p 1) };
       });
  let r = Analysis.Check.run (B.build b) in
  Alcotest.(check (list string)) "no divergence" []
    (List.map (fun d -> d.D.message) (with_code D.ir_divergence r))

(* --- exact laws: span test skips re-validation --- *)

let test_law_implied_by_basis () =
  let b = B.create "conserved" in
  let here = B.int_place b ~init:1 "here" in
  let there = B.int_place b "there" in
  B.timed_exp_ir b ~name:"go"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark here, Gt, Int 0))
    ~reads:[ San.Place.P here; San.Place.P there ]
    E.(Ops [ Inc (here, Int (-1)); Inc (there, Int 1) ]);
  B.timed_exp_ir b ~name:"back"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark there, Gt, Int 0))
    ~reads:[ San.Place.P here; San.Place.P there ]
    E.(Ops [ Inc (there, Int (-1)); Inc (here, Int 1) ]);
  let law =
    { St.law_name = "token"; law_terms = [ (here, 1); (there, 1) ] }
  in
  let r = Analysis.Check.run ~laws:[ law ] (B.build b) in
  let s = r.Analysis.Check.structure in
  Alcotest.(check bool) "exact incidence" true (s.St.incidence = St.Exact);
  (match s.St.laws with
  | [ lr ] ->
      Alcotest.(check string) "skipped re-validation"
        "implied by the invariant basis; re-validation skipped" lr.St.lr_how;
      Alcotest.(check (list (triple string int int))) "no violations" [] lr.St.lr_violations
  | _ -> Alcotest.fail "expected one law report");
  Alcotest.(check (list string)) "no sampled fallbacks" []
    r.Analysis.Check.sampled_fallbacks

let test_law_proven_symbolically () =
  (* A law that is NOT a semiflow of the atom rows taken separately
     per-branch would still be conserved; here we use a conditional
     effect whose branches both conserve, forcing the symbolic
     interpreter (not the span test) to answer. *)
  let b = B.create "cond-conserved" in
  let x = B.int_place b ~init:2 "x" in
  let y = B.int_place b "y" in
  let mode = B.int_place b ~init:1 "mode" in
  B.timed_exp_ir b ~name:"shuffle"
    ~rate:(fun _ -> 1.0)
    ~guard:E.(Cmp (Mark x, Gt, Int 0))
    ~reads:[ San.Place.P x; San.Place.P y; San.Place.P mode ]
    E.(
      If
        ( Cmp (Mark mode, Eq, Int 1),
          Ops [ Inc (x, Int (-1)); Inc (y, Int 1); Set (mode, Int 0) ],
          Ops [ Inc (x, Int (-1)); Inc (y, Int 1); Set (mode, Int 1) ] ));
  let law = { St.law_name = "xy"; law_terms = [ (x, 1); (y, 1) ] } in
  let r = Analysis.Check.run ~laws:[ law ] (B.build b) in
  let s = r.Analysis.Check.structure in
  match s.St.laws with
  | [ lr ] ->
      Alcotest.(check (list (triple string int int))) "no violations" [] lr.St.lr_violations;
      Alcotest.(check (list string)) "no sampled fallbacks" []
        r.Analysis.Check.sampled_fallbacks
  | _ -> Alcotest.fail "expected one law report"

(* --- ir dump determinism --- *)

let test_ir_dump_deterministic () =
  let model = branching_model () in
  let d1 = Analysis.Ir_dump.dump model in
  let d2 = Analysis.Ir_dump.dump model in
  let render d =
    Report.Json.to_string (Analysis.Ir_dump.to_json d)
  in
  Alcotest.(check string) "stable JSON" (render d1) (render d2);
  Alcotest.(check int) "both activities present" 2
    (List.length d1.Analysis.Ir_dump.activities);
  let churn = List.hd d1.Analysis.Ir_dump.activities in
  Alcotest.(check string) "name" "churn"
    churn.Analysis.Ir_dump.ad_name;
  Alcotest.(check bool) "guard reads p" true
    (List.mem "p" churn.Analysis.Ir_dump.ad_guard_reads)

(* --- Rat edge cases --- *)

let rat = Alcotest.testable Analysis.Rat.pp Analysis.Rat.equal

let test_rat_normalization () =
  let open Analysis.Rat in
  Alcotest.check rat "negative denominator" (make (-1) 2) (make 2 (-4));
  Alcotest.check rat "double negative" (make 1 2) (make (-3) (-6));
  Alcotest.(check string) "printed normalized" "-1/2"
    (to_string (make 3 (-6)));
  Alcotest.(check string) "integer form" "4" (to_string (make 12 3));
  Alcotest.check rat "zero normalizes" zero (make 0 (-7));
  Alcotest.(check int) "sign of negative" (-1) (sign (make 1 (-3)));
  Alcotest.(check bool) "equal is structural on normal forms" true
    (equal (make 2 4) (make 1 2));
  Alcotest.check rat "inv keeps den positive" (make (-2) 1) (inv (make 1 (-2)))

let test_rat_arithmetic_near_caps () =
  let open Analysis.Rat in
  (* Coefficient magnitudes near the Farkas enumeration caps (hundreds
     of modes, unit deltas): sums over ~512 distinct prime-ish
     denominators must stay exact on native ints. *)
  let dens = List.init 512 (fun i -> (2 * i) + 3) in
  let s = List.fold_left (fun acc d -> add acc (make 1 d)) zero dens in
  let s' = List.fold_left (fun acc d -> sub acc (make 1 d)) s dens in
  Alcotest.check rat "telescoping sum cancels exactly" zero s';
  (* Cross-multiplication in [compare] must not overflow for the
     magnitudes the incidence matrices produce. *)
  let big = make 1_000_003 999_983 in
  Alcotest.(check int) "compare exact near 1" 1 (compare big one);
  Alcotest.(check int) "compare symmetric" (-1) (compare one big);
  Alcotest.check rat "mul/div round-trips" big (div (mul big big) big)

let () =
  Alcotest.run "effect"
    [
      ( "ir semantics",
        [
          Alcotest.test_case "eval and holds" `Quick test_eval_holds;
          Alcotest.test_case "ops order" `Quick test_apply_ops_order;
          Alcotest.test_case "pick outcomes" `Quick test_outcomes_pick;
          Alcotest.test_case "static reads/writes" `Quick
            test_static_reads_writes;
        ] );
      ( "compiled executor",
        [
          Alcotest.test_case "bit-identical trajectories" `Quick
            test_compiled_path_bit_identical;
        ] );
      ( "A013",
        [
          Alcotest.test_case "guard read undeclared" `Quick
            test_a013_guard_read_undeclared;
          Alcotest.test_case "effect reads aggregated" `Quick
            test_a013_effect_reads_aggregated;
          Alcotest.test_case "stale wake-up write" `Quick
            test_a013_stale_wakeup_write;
        ] );
      ( "A014",
        [ Alcotest.test_case "dead branch" `Quick test_a014_dead_branch ] );
      ( "A015",
        [
          Alcotest.test_case "negative-capable delta" `Quick
            test_a015_negative_capable;
        ] );
      ( "A016",
        [
          Alcotest.test_case "divergence" `Quick test_a016_divergence;
          Alcotest.test_case "agreement silent" `Quick
            test_a016_agreement_silent;
        ] );
      ( "exact laws",
        [
          Alcotest.test_case "implied by basis, skipped" `Quick
            test_law_implied_by_basis;
          Alcotest.test_case "proven symbolically" `Quick
            test_law_proven_symbolically;
        ] );
      ( "ir dump",
        [
          Alcotest.test_case "deterministic" `Quick
            test_ir_dump_deterministic;
        ] );
      ( "rat",
        [
          Alcotest.test_case "normalization" `Quick test_rat_normalization;
          Alcotest.test_case "arithmetic near caps" `Quick
            test_rat_arithmetic_near_caps;
        ] );
    ]
