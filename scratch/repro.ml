let () =
  let b = San.Model.Builder.create "repro" in
  let p = San.Model.Builder.int_place b ~init:1 "p" in
  let q = San.Model.Builder.int_place b ~init:0 "q" in
  (* timed activity moves p -> intermediate, enabling the instantaneous one *)
  San.Model.Builder.timed_exp b ~name:"go" ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m p > 0)
    ~reads:[ San.Place.P p ]
    (fun _ m -> San.Marking.set m p 0; San.Marking.set m q 1);
  (* multi-case instantaneous activity with weights summing to 0 *)
  San.Model.Builder.activity b ~name:"bad" ~timing:San.Activity.Instantaneous
    ~enabled:(fun m -> San.Marking.get m q > 0)
    ~reads:[ San.Place.P q ]
    [ { San.Activity.case_weight = (fun _ -> 0.0);
        effect = (fun _ m -> San.Marking.set m q 0) };
      { San.Activity.case_weight = (fun _ -> 0.0);
        effect = (fun _ m -> San.Marking.set m q 0) } ];
  let model = San.Model.Builder.build b in
  let report = Analysis.Check.run model in
  Format.printf "%a@." Analysis.Check.pp report
