(* Benchmark / reproduction harness.

   Regenerates every figure of the paper's evaluation (Section 4) and runs
   Bechamel micro-benchmarks of the simulation engine.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe fig3 fig5b     -- selected figures/panels
     dune exec bench/main.exe perf           -- engine micro-benchmarks only
     ITUA_BENCH_REPS=500 dune exec bench/main.exe   -- cheaper runs

   Panel CSVs are written to results/ for external plotting. *)

let reps_from_env () =
  match Sys.getenv_opt "ITUA_BENCH_REPS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | Some _ | None ->
          prerr_endline "ITUA_BENCH_REPS must be a positive integer";
          exit 2)
  | None -> Itua.Study.default_config.Itua.Study.reps

let config () =
  { Itua.Study.default_config with Itua.Study.reps = reps_from_env () }

let ensure_results_dir () =
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755

let print_panels panels =
  ensure_results_dir ();
  List.iter
    (fun (id, table) ->
      Format.printf "@.%a" Report.pp_text table;
      let path = Filename.concat "results" (id ^ ".csv") in
      Report.write_csv path table;
      Format.printf "  [csv: %s]@." path)
    panels;
  let checks = Itua.Study.shape_checks panels in
  if checks <> [] then begin
    Format.printf "@.Shape checks against the paper:@.";
    List.iter
      (fun (label, ok) ->
        Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") label)
      checks
  end

(* --- Bechamel micro-benchmarks of the engine --- *)

let bench_two_state () =
  let b = San.Model.Builder.create "two_state" in
  let up = San.Model.Builder.int_place b ~init:1 "up" in
  San.Model.Builder.timed_exp b ~name:"fail"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m up = 1)
    ~reads:[ San.Place.P up ]
    (fun _ m -> San.Marking.set m up 0);
  San.Model.Builder.timed_exp b ~name:"repair"
    ~rate:(fun _ -> 10.0)
    ~enabled:(fun m -> San.Marking.get m up = 0)
    ~reads:[ San.Place.P up ]
    (fun _ m -> San.Marking.set m up 1);
  San.Model.Builder.build b

let perf_tests () =
  let two_state = bench_two_state () in
  let ts_cfg = Sim.Executor.config ~horizon:100.0 () in
  let itua_handles = Itua.Model.build Itua.Params.default in
  let itua_cfg = Sim.Executor.config ~horizon:10.0 () in
  let counter = ref 0 in
  let next_stream () =
    incr counter;
    Prng.Stream.create ~seed:(Int64.of_int !counter)
  in
  [
    Bechamel.Test.make ~name:"executor: two-state, 100h horizon"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sim.Executor.run ~model:two_state ~config:ts_cfg
                ~stream:(next_stream ()) ~observer:Sim.Observer.nop)));
    Bechamel.Test.make ~name:"executor: ITUA 10x3/4 apps, 10h replication"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sim.Executor.run ~model:itua_handles.Itua.Model.model
                ~config:itua_cfg ~stream:(next_stream ())
                ~observer:Sim.Observer.nop)));
    Bechamel.Test.make ~name:"model build: ITUA 10x3/4 apps"
      (Bechamel.Staged.stage (fun () ->
           ignore (Itua.Model.build Itua.Params.default)));
  ]

let run_perf () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      (List.map (fun t -> Test.make_grouped ~name:"engine" [ t ]) (perf_tests ()))
  in
  Format.printf "@.Engine micro-benchmarks (monotonic clock):@.";
  List.iter
    (fun results ->
      Hashtbl.iter
        (fun name raw_results ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est =
            Analyze.one ols Toolkit.Instance.monotonic_clock raw_results
          in
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] ->
              Format.printf "  %-45s %12.0f ns/run@." name ns_per_run
          | Some _ | None -> Format.printf "  %-45s (no estimate)@." name)
        results)
    raw

(* --- main --- *)

let usage () =
  print_endline
    "usage: main.exe [fig3|fig4|fig5|fig3a..fig5d|all|sens|ablate|traj|perf]...\n\
     default: all figures followed by perf";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let cfg = config () in
  Format.printf
    "ITUA reproduction harness: %d replications per point, seed %Ld, %d \
     domains@."
    cfg.Itua.Study.reps cfg.Itua.Study.seed cfg.Itua.Study.domains;
  let known_panels =
    [ "fig3a"; "fig3b"; "fig3c"; "fig3d"; "fig4a"; "fig4b"; "fig4c"; "fig4d";
      "fig5a"; "fig5b"; "fig5c"; "fig5d" ]
  in
  let valid =
    [ "all"; "perf"; "fig3"; "fig4"; "fig5"; "sens"; "ablate"; "traj" ] @ known_panels
  in
  List.iter (fun a -> if not (List.mem a valid) then usage ()) args;
  let args = if args = [] then [ "all"; "perf" ] else args in
  let wants_figure fig = List.exists (fun a ->
      a = "all" || a = fig
      || (String.length a > 4 && String.sub a 0 4 = fig)) args
  in
  let panels = ref [] in
  if wants_figure "fig3" then panels := !panels @ Itua.Study.fig3 ~config:cfg ();
  if wants_figure "fig4" then panels := !panels @ Itua.Study.fig4 ~config:cfg ();
  if wants_figure "fig5" then panels := !panels @ Itua.Study.fig5 ~config:cfg ();
  let selected =
    List.filter
      (fun (id, _) ->
        List.exists
          (fun a -> a = "all" || a = id || a = String.sub id 0 4)
          args)
      !panels
  in
  if selected <> [] then print_panels selected;
  if List.mem "sens" args then print_panels (Itua.Study.sensitivity ~config:cfg ());
  if List.mem "traj" args then print_panels (Itua.Study.trajectory ~config:cfg ());
  if List.mem "ablate" args then print_panels (Itua.Study.ablation ~config:cfg ());
  if List.mem "perf" args then run_perf ()
