(* Benchmark / reproduction harness.

   Regenerates every figure of the paper's evaluation (Section 4) and runs
   Bechamel micro-benchmarks of the simulation engine.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe fig3 fig5b     -- selected figures/panels
     dune exec bench/main.exe perf           -- engine micro-benchmarks only
     ITUA_BENCH_REPS=500 dune exec bench/main.exe   -- cheaper runs

   Panel CSVs are written to results/ for external plotting. Every
   invocation also writes BENCH_sim.json — a machine-readable perf record
   (engine micro-benchmarks, events/sec throughput, the rare-event
   crude-vs-splitting record, wall-clock per figure) that later
   optimization work is judged against; see doc/OBSERVABILITY.md and
   doc/RARE_EVENTS.md. *)

let reps_from_env () =
  match Sys.getenv_opt "ITUA_BENCH_REPS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n > 0 -> n
      | Some _ | None ->
          prerr_endline "ITUA_BENCH_REPS must be a positive integer";
          exit 2)
  | None -> Itua.Study.default_config.Itua.Study.reps

let config () =
  { Itua.Study.default_config with Itua.Study.reps = reps_from_env () }

let ensure_results_dir () =
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755

let print_panels panels =
  ensure_results_dir ();
  List.iter
    (fun (id, table) ->
      Format.printf "@.%a" Report.pp_text table;
      let path = Filename.concat "results" (id ^ ".csv") in
      Report.write_csv path table;
      Format.printf "  [csv: %s]@." path)
    panels;
  let checks = Itua.Study.shape_checks panels in
  if checks <> [] then begin
    Format.printf "@.Shape checks against the paper:@.";
    List.iter
      (fun (label, ok) ->
        Format.printf "  [%s] %s@." (if ok then "PASS" else "FAIL") label)
      checks
  end

(* --- Bechamel micro-benchmarks of the engine --- *)

let bench_two_state () =
  let b = San.Model.Builder.create "two_state" in
  let up = San.Model.Builder.int_place b ~init:1 "up" in
  San.Model.Builder.timed_exp b ~name:"fail"
    ~rate:(fun _ -> 1.0)
    ~enabled:(fun m -> San.Marking.get m up = 1)
    ~reads:[ San.Place.P up ]
    (fun _ m -> San.Marking.set m up 0);
  San.Model.Builder.timed_exp b ~name:"repair"
    ~rate:(fun _ -> 10.0)
    ~enabled:(fun m -> San.Marking.get m up = 0)
    ~reads:[ San.Place.P up ]
    (fun _ m -> San.Marking.set m up 1);
  San.Model.Builder.build b

let perf_tests () =
  let two_state = bench_two_state () in
  let ts_cfg = Sim.Executor.config ~horizon:100.0 () in
  let itua_handles = Itua.Model.build Itua.Params.default in
  let itua_cfg = Sim.Executor.config ~horizon:10.0 () in
  let counter = ref 0 in
  let next_stream () =
    incr counter;
    Prng.Stream.create ~seed:(Int64.of_int !counter)
  in
  [
    Bechamel.Test.make ~name:"executor: two-state, 100h horizon"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sim.Executor.run ~model:two_state ~config:ts_cfg
                ~stream:(next_stream ()) ~observer:Sim.Observer.nop ())));
    Bechamel.Test.make ~name:"executor: ITUA 10x3/4 apps, 10h replication"
      (Bechamel.Staged.stage (fun () ->
           ignore
             (Sim.Executor.run ~model:itua_handles.Itua.Model.model
                ~config:itua_cfg ~stream:(next_stream ())
                ~observer:Sim.Observer.nop ())));
    Bechamel.Test.make ~name:"model build: ITUA 10x3/4 apps"
      (Bechamel.Staged.stage (fun () ->
           ignore (Itua.Model.build Itua.Params.default)));
  ]

(* Returns [(name, ns_per_run)] — printed and recorded in BENCH_sim.json. *)
let run_perf () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 100) ()
  in
  let raw =
    List.map
      (fun test -> Benchmark.all cfg instances test)
      (List.map (fun t -> Test.make_grouped ~name:"engine" [ t ]) (perf_tests ()))
  in
  let estimates = ref [] in
  List.iter
    (fun results ->
      Hashtbl.iter
        (fun name raw_results ->
          let ols =
            Analyze.ols ~bootstrap:0 ~r_square:false
              ~predictors:[| Measure.run |]
          in
          let est =
            Analyze.one ols Toolkit.Instance.monotonic_clock raw_results
          in
          match Analyze.OLS.estimates est with
          | Some [ ns_per_run ] -> estimates := (name, ns_per_run) :: !estimates
          | Some _ | None -> ())
        results)
    raw;
  let micro = List.rev !estimates in
  Format.printf "@.Engine micro-benchmarks (monotonic clock):@.";
  List.iter
    (fun (name, ns) -> Format.printf "  %-45s %12.0f ns/run@." name ns)
    micro;
  micro

(* --- engine throughput (events/sec, via Sim.Metrics) --- *)

(* Monotonic, like every duration in the telemetry stack: a wall-clock
   step mid-benchmark must not corrupt the recorded timings. *)
let now () = Obs.Clock.ns_to_s (Obs.Clock.now_ns ())

(* Each row also carries a phase profile; its [itua-metrics/1] snapshot
   is embedded in BENCH_sim.json so the CI perf gate can show WHERE the
   time went when a row regresses (tools/perf_gate.py). The profile
   comes from a SEPARATE pass over the same runs: per-phase clock reads
   cost ~4x on tight event loops, so profiling the timed loop would
   corrupt the events/sec number being gated. The phase proportions are
   what the gate prints; only the gated throughput must be clean. *)
let profile_pass ~model ~config ~runs =
  let profile = Obs.Profile.create () in
  for i = 1 to runs do
    ignore
      (Sim.Executor.run ~profile ~model ~config
         ~stream:(Prng.Stream.create ~seed:(Int64.of_int i))
         ~observer:Sim.Observer.nop ())
  done;
  profile

let measure_throughput ~name ~model ~config ~runs =
  let metrics = Sim.Metrics.create ~model in
  let t0 = now () in
  for i = 1 to runs do
    ignore
      (Sim.Executor.run ~metrics ~model ~config
         ~stream:(Prng.Stream.create ~seed:(Int64.of_int i))
         ~observer:Sim.Observer.nop ())
  done;
  Sim.Metrics.add_wall metrics (now () -. t0);
  (name, metrics, profile_pass ~model ~config ~runs)

(* Same as [measure_throughput], but with a trajectory recorder attached —
   tracks the observer overhead of [--record-failures]. *)
let measure_throughput_recording ~name ~handles ~config ~runs =
  let model = handles.Itua.Model.model in
  let metrics = Sim.Metrics.create ~model in
  let sink =
    Sim.Trajectory.sink ~k:10
      ~predicate:(Itua.Forensics.failed_now handles)
      ~model ()
  in
  let observer = Sim.Trajectory.observer sink in
  let t0 = now () in
  for i = 1 to runs do
    ignore
      (Sim.Executor.run ~metrics ~model ~config
         ~stream:(Prng.Stream.create ~seed:(Int64.of_int i))
         ~observer ());
    Sim.Trajectory.offer sink ~rep:i
  done;
  Sim.Metrics.add_wall metrics (now () -. t0);
  (name, metrics, profile_pass ~model ~config ~runs)

let run_throughput () =
  let two_state = bench_two_state () in
  let itua_handles = Itua.Model.build Itua.Params.default in
  let records =
    [
      measure_throughput ~name:"two_state_100h" ~model:two_state
        ~config:(Sim.Executor.config ~horizon:100.0 ())
        ~runs:2000;
      measure_throughput ~name:"itua_default_10h"
        ~model:itua_handles.Itua.Model.model
        ~config:(Sim.Executor.config ~horizon:10.0 ())
        ~runs:50;
      measure_throughput_recording ~name:"itua_default_10h_recording"
        ~handles:itua_handles
        ~config:(Sim.Executor.config ~horizon:10.0 ())
        ~runs:50;
    ]
  in
  Format.printf "@.Engine throughput (telemetry on):@.";
  List.iter
    (fun (name, m, _profile) ->
      Format.printf "  %-45s %10.3g events/sec (%d events over %.2fs)@." name
        (Sim.Metrics.events_per_sec m)
        m.Sim.Metrics.events m.Sim.Metrics.wall_seconds)
    records;
  records

(* --- compiled-IR propagate speedup --- *)

type ir_bench = {
  ib_runs : int;
  ib_events : int;
  ib_closure_wall : float;
  ib_compiled_wall : float;
}

(* Same model, same seeds, the only difference being the executor's
   effect path: interpreted IR terms (closure dispatch per node) vs the
   compiled flat delta programs ([San.Effect.run_prog]). Trajectories
   are pinned bit-identical by the test suite; here we record the
   speedup so later engine work is judged against it. *)
let run_ir_speedup () =
  let handles = Itua.Model.build Itua.Params.default in
  let model = handles.Itua.Model.model in
  let runs = 50 in
  let measure ~compile =
    let config =
      Sim.Executor.config ~compile_effects:compile ~horizon:10.0 ()
    in
    let events = ref 0 in
    let t0 = now () in
    for i = 1 to runs do
      let out =
        Sim.Executor.run ~model ~config
          ~stream:(Prng.Stream.create ~seed:(Int64.of_int i))
          ~observer:Sim.Observer.nop ()
      in
      events := !events + out.Sim.Executor.events
    done;
    (now () -. t0, !events)
  in
  let closure_wall, ev_closure = measure ~compile:false in
  let compiled_wall, ev_compiled = measure ~compile:true in
  if ev_closure <> ev_compiled then
    Format.eprintf
      "  [warn] ir-speedup event counts differ: %d interpreted vs %d \
       compiled@."
      ev_closure ev_compiled;
  Format.printf
    "@.Compiled-IR effect path (ITUA default, %d runs to 10h):@." runs;
  Format.printf "  %-45s %10.3fs@." "interpreted (closure dispatch)"
    closure_wall;
  Format.printf "  %-45s %10.3fs (%.2fx)@." "compiled (flat delta arrays)"
    compiled_wall
    (closure_wall /. compiled_wall);
  {
    ib_runs = runs;
    ib_events = ev_compiled;
    ib_closure_wall = closure_wall;
    ib_compiled_wall = compiled_wall;
  }

(* --- rare-event tail: crude MC vs importance splitting --- *)

type rare_bench = {
  rb_label : string;
  rb_crude_reps : int;
  rb_crude_events : int;
  rb_crude_wall : float;
  rb_crude_ci : Stats.Ci.t;
  rb_split_wall : float;
  rb_split : Sim.Splitting.result;
  rb_wnv_crude : float;
  rb_wnv_split : float;
}

(* Study 4.2's sharpest tail: 10 domains x 1 host, 4 applications,
   unreliability over [0,5] — the panel point where crude MC at the
   study's replication count sees a handful of hits at best. The two
   estimators are compared by work-normalized variance (estimator
   variance x activity firings consumed, invariant to the budget split);
   see doc/RARE_EVENTS.md. *)
let run_rare ~cfg () =
  let params =
    {
      Itua.Params.default with
      Itua.Params.num_domains = 10;
      hosts_per_domain = 1;
      num_apps = 4;
    }
  in
  let h = Itua.Model.build params in
  let reps = Int.min cfg.Itua.Study.reps 2000 in
  let metrics = Sim.Metrics.create ~model:h.Itua.Model.model in
  let spec =
    Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0
      [ Itua.Measures.unreliability h ~until:5.0 ]
  in
  let t0 = now () in
  let crude =
    List.hd
      (Sim.Runner.run ~domains:cfg.Itua.Study.domains ~metrics
         ~seed:cfg.Itua.Study.seed ~reps spec)
  in
  let crude_wall = now () -. t0 in
  let t0 = now () in
  let split =
    Itua.Study.rare_point ~config:cfg ~initial:reps ~params ~until:5.0 ()
  in
  let split_wall = now () -. t0 in
  (* Work-normalized variance: what the estimator's variance would be
     after one unit of work (one activity firing). The crude per-rep
     variance is gamma(1-gamma) with gamma taken from the splitting
     estimate — the crude estimate itself is too coarse here to plug into
     its own variance. *)
  let gamma = split.Sim.Splitting.estimate.Stats.Splitting.probability in
  let crude_cost =
    float_of_int metrics.Sim.Metrics.events /. float_of_int reps
  in
  let wnv_crude = gamma *. (1.0 -. gamma) *. crude_cost in
  let wnv_split =
    Stats.Splitting.variance split.Sim.Splitting.estimate
    *. float_of_int split.Sim.Splitting.total_events
  in
  let r =
    {
      rb_label = "10x1 hosts, 4 apps, unreliability [0,5]";
      rb_crude_reps = reps;
      rb_crude_events = metrics.Sim.Metrics.events;
      rb_crude_wall = crude_wall;
      rb_crude_ci = crude.Sim.Runner.ci;
      rb_split_wall = split_wall;
      rb_split = split;
      rb_wnv_crude = wnv_crude;
      rb_wnv_split = wnv_split;
    }
  in
  Format.printf "@.Rare-event tail (%s):@." r.rb_label;
  Format.printf "  crude MC:  %d reps, %d events, estimate %a@."
    r.rb_crude_reps r.rb_crude_events Stats.Ci.pp r.rb_crude_ci;
  Format.printf "  splitting: %d levels x %d clones, %d trials, %d events, %a@."
    split.Sim.Splitting.levels split.Sim.Splitting.clones
    split.Sim.Splitting.total_trials split.Sim.Splitting.total_events
    Stats.Ci.pp split.Sim.Splitting.estimate.Stats.Splitting.ci;
  Format.printf
    "  work-normalized variance: crude %.3g, splitting %.3g (%.1fx reduction)@."
    wnv_crude wnv_split
    (wnv_crude /. wnv_split);
  r

(* Per-point wall clocks for the Figure 3 study: the six host
   distributions at 4 applications, run at a reduced replication count so
   even perf-only invocations populate the figures array with comparable
   numbers. *)
let fig3_point_times ~reps ~seed ~domains =
  List.map
    (fun (nd, nh) ->
      let params =
        {
          Itua.Params.default with
          Itua.Params.num_domains = nd;
          hosts_per_domain = nh;
          num_apps = 4;
        }
      in
      let h = Itua.Model.build params in
      let rewards =
        [
          Itua.Measures.unavailability h ~until:5.0;
          Itua.Measures.unreliability h ~until:5.0;
        ]
      in
      let spec =
        Sim.Runner.spec ~model:h.Itua.Model.model ~horizon:5.0 rewards
      in
      let t0 = now () in
      ignore (Sim.Runner.run ~domains ~seed ~reps spec);
      (Printf.sprintf "fig3_point_%dx%d" nd nh, now () -. t0))
    [ (12, 1); (6, 2); (4, 3); (3, 4); (2, 6); (1, 12) ]

(* --- exact-lumping benchmark --- *)

(* Orbit-driven lumping on the 10x1 study shape: ten single-host
   domains, each a three-state attack cycle (clean -> compromised ->
   excluded -> clean), built from declarative IR so [Analysis.Orbit]
   can read every guard, rate, and effect. [rate_of] gives the per-copy
   compromise rate: a constant fleet yields one orbit of ten (the flat
   3^10 chain lumps ~900x); a heterogeneous fleet splits into partial
   orbits and the quotient is restricted accordingly (doc/ANALYSIS.md,
   A017/A018). *)
let lumping_model ~n ~rate_of =
  let b = San.Model.Builder.create "hosts" in
  let root = Compose.Ctx.root b "hosts" in
  let states =
    Compose.replicate root "domain" ~n (fun ctx i ->
        let module E = San.Effect in
        let s = Compose.Ctx.int_place ctx "state" in
        let step name rate from to_ =
          Compose.Ctx.timed_exp_rate_ir ctx ~name ~rate:(E.RConst rate)
            ~guard:(E.Cmp (E.Mark s, E.Eq, E.Int from))
            ~reads:[ San.Place.P s ]
            (E.Ops [ E.Set (s, E.Int to_) ])
        in
        step "compromise" (rate_of i) 0 1;
        step "exclude" 0.8 1 2;
        step "restore" 0.5 2 0;
        s)
  in
  (San.Model.Builder.build b, Compose.info root, states)

type lump_bench = {
  lu_label : string;
  lu_orbits : int;  (** orbit count of the (single) replicate family *)
  lu_full_states : int;
  lu_full_wall : float;
  lu_lumped_states : int;
  lu_lumped_wall : float;
  lu_measure_delta : float;
}

(* One lumping run: orbit analysis, unlumped vs orbit-quotient
   exploration ([~audit:true] cross-checks the canon's soundness on
   every merged state), and the symmetric measure E[excluded at t=5]
   compared between the two chains. *)
let run_lumping_case ~label ~n ~rate_of () =
  let model, info, states = lumping_model ~n ~rate_of in
  let rep = Analysis.Orbit.analyse model info in
  let orbits =
    List.fold_left
      (fun acc f -> acc + List.length f.Analysis.Orbit.fa_orbits)
      0 rep.Analysis.Orbit.families
  in
  let excluded m =
    Array.fold_left
      (fun acc s -> if San.Marking.get m s = 2 then acc +. 1.0 else acc)
      0.0 states
  in
  let t0 = now () in
  let full = Ctmc.Explore.explore model in
  let full_at5 = Ctmc.Measure.instant full ~at:5.0 excluded in
  let full_wall = now () -. t0 in
  let t0 = now () in
  let lumped =
    Ctmc.Explore.explore ~canon:(Analysis.Orbit.canon rep) ~audit:true model
  in
  let lumped_at5 = Ctmc.Measure.instant lumped ~at:5.0 excluded in
  let lumped_wall = now () -. t0 in
  let r =
    {
      lu_label = label;
      lu_orbits = orbits;
      lu_full_states = Ctmc.Explore.n_states full;
      lu_full_wall = full_wall;
      lu_lumped_states = Ctmc.Explore.n_states lumped;
      lu_lumped_wall = lumped_wall;
      lu_measure_delta = Float.abs (full_at5 -. lumped_at5);
    }
  in
  Format.printf "@.CTMC lumping (%s):@." r.lu_label;
  Format.printf "  orbits:   %d over %d copies@." r.lu_orbits n;
  Format.printf "  unlumped: %d states, explore+solve %.2fs@." r.lu_full_states
    r.lu_full_wall;
  Format.printf "  lumped:   %d states, explore+solve %.2fs@."
    r.lu_lumped_states r.lu_lumped_wall;
  Format.printf "  E[excluded hosts at t=5] differs by %.3g@."
    r.lu_measure_delta;
  r

let run_lumping () =
  run_lumping_case ~label:"10x1 hosts, 3-state attack cycle" ~n:10
    ~rate_of:(fun _ -> 0.3)
    ()

(* The heterogeneous acceptance case: the [Itua.Study.hetero_fleet_params]
   fleet shape — ten hosts, five at the baseline compromise rate and five
   "soft" ones at 2.5x. Full-family symmetry is broken; the orbit pass
   must find the two partial orbits of five and still lump 3^10 = 59049
   states down to 21^2 = 441 (>=10x, gated below) with the measure exact
   to solver accuracy. *)
let run_lumping_hetero () =
  let p = Itua.Study.hetero_fleet_params () in
  let mult = p.Itua.Params.host_rate_multipliers in
  run_lumping_case
    ~label:"10x1 hosts, heterogeneous: 5 baseline + 5 soft (2.5x)"
    ~n:(Array.length mult)
    ~rate_of:(fun i -> 0.3 *. mult.(i))
    ()

(* --- BENCH_sim.json --- *)

let json_escape s = Printf.sprintf "%S" s

(* A non-finite float would render as "nan"/"inf" — not JSON. Emit null
   instead so the record always parses. *)
let json_num (fmt : (float -> string, unit, string) format) v =
  if Float.is_finite v then Printf.sprintf fmt v else "null"

(* The [itua-metrics/1] snapshot for one throughput row: engine counters
   and per-activity firings from [Sim.Metrics], phase self-times and GC
   deltas from the profiler. Embedded verbatim (it is already canonical
   [Report.Json] text) so tools/perf_gate.py can print the phase
   breakdown of a regressed row. *)
let throughput_metrics_json metrics profile =
  let reg = Obs.Registry.create () in
  Sim.Metrics.export metrics ~into:reg;
  Obs.Profile.export profile ~into:reg;
  Report.Json.to_string (Obs.Registry.to_json reg)

let write_bench_json ~reps ~micro ~throughput ~ir ~rare ~lumping ~lumping_hetero
    ~figures =
  let buf = Buffer.create 2048 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_list xs render =
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ",\n";
        render x)
      xs
  in
  addf "{\n";
  addf "  \"schema\": \"itua-bench/1\",\n";
  addf "  \"generated_unix\": %.0f,\n" (Unix.time ());
  addf "  \"reps_per_point\": %d,\n" reps;
  addf "  \"micro_benchmarks\": [\n";
  add_list micro (fun (name, ns) ->
      addf "    { \"name\": %s, \"ns_per_run\": %s }" (json_escape name)
        (json_num "%.1f" ns));
  addf "\n  ],\n";
  addf "  \"engine_throughput\": [\n";
  add_list throughput (fun (name, (m : Sim.Metrics.t), profile) ->
      addf
        "    { \"name\": %s, \"runs\": %d, \"events\": %d, \"wall_seconds\": \
         %.4f, \"events_per_sec\": %s, \"stale_pop_fraction\": %s, \
         \"mean_heap_depth\": %s, \"metrics\": %s }"
        (json_escape name) m.Sim.Metrics.runs m.Sim.Metrics.events
        m.Sim.Metrics.wall_seconds
        (json_num "%.1f" (Sim.Metrics.events_per_sec m))
        (json_num "%.4f" (Sim.Metrics.stale_fraction m))
        (json_num "%.2f" (Sim.Metrics.mean_heap_depth m))
        (throughput_metrics_json m profile));
  addf "\n  ],\n";
  addf "  \"ir_compilation\": {\n";
  addf "    \"model\": \"itua_default_10h\",\n";
  addf "    \"runs\": %d,\n" ir.ib_runs;
  addf "    \"events\": %d,\n" ir.ib_events;
  addf "    \"closure_wall_seconds\": %.4f,\n" ir.ib_closure_wall;
  addf "    \"compiled_wall_seconds\": %.4f,\n" ir.ib_compiled_wall;
  addf "    \"speedup\": %s\n"
    (json_num "%.3f" (ir.ib_closure_wall /. ir.ib_compiled_wall));
  addf "  },\n";
  (match rare with
  | None -> ()
  | Some r ->
      let e = r.rb_split.Sim.Splitting.estimate in
      addf "  \"rare_event\": {\n";
      addf "    \"config\": %s,\n" (json_escape r.rb_label);
      addf
        "    \"crude\": { \"reps\": %d, \"events\": %d, \"wall_seconds\": \
         %.2f, \"estimate\": %.6g, \"ci_half_width\": %.3g },\n"
        r.rb_crude_reps r.rb_crude_events r.rb_crude_wall
        r.rb_crude_ci.Stats.Ci.mean r.rb_crude_ci.Stats.Ci.half_width;
      addf
        "    \"splitting\": { \"levels\": %d, \"clones\": %d, \"trials\": \
         %d, \"events\": %d, \"wall_seconds\": %.2f, \"probability\": %.6g, \
         \"ci_half_width\": %.3g },\n"
        r.rb_split.Sim.Splitting.levels r.rb_split.Sim.Splitting.clones
        r.rb_split.Sim.Splitting.total_trials
        r.rb_split.Sim.Splitting.total_events r.rb_split_wall
        e.Stats.Splitting.probability e.Stats.Splitting.ci.Stats.Ci.half_width;
      addf
        "    \"work_normalized_variance\": { \"crude\": %.4g, \"splitting\": \
         %.4g, \"reduction\": %s }\n"
        r.rb_wnv_crude r.rb_wnv_split
        (json_num "%.1f" (r.rb_wnv_crude /. r.rb_wnv_split));
      addf "  },\n");
  let lump_record key l =
    addf "  %s: {\n" (json_escape key);
    addf "    \"config\": %s,\n" (json_escape l.lu_label);
    addf "    \"orbits\": %d,\n" l.lu_orbits;
    addf "    \"unlumped\": { \"states\": %d, \"wall_seconds\": %.4f },\n"
      l.lu_full_states l.lu_full_wall;
    addf "    \"lumped\": { \"states\": %d, \"wall_seconds\": %.4f },\n"
      l.lu_lumped_states l.lu_lumped_wall;
    addf "    \"state_reduction\": %.1f,\n"
      (float_of_int l.lu_full_states /. float_of_int l.lu_lumped_states);
    addf "    \"measure_delta\": %.3g\n" l.lu_measure_delta;
    addf "  },\n"
  in
  Option.iter (lump_record "ctmc_lumping") lumping;
  Option.iter (lump_record "ctmc_lumping_hetero") lumping_hetero;
  addf "  \"figures\": [\n";
  add_list figures (fun (id, wall) ->
      addf "    { \"id\": %s, \"wall_seconds\": %.2f }" (json_escape id) wall);
  addf "\n  ]\n";
  addf "}\n";
  let oc = open_out "BENCH_sim.json" in
  Buffer.output_buffer oc buf;
  close_out oc;
  Format.printf "@.[perf record: BENCH_sim.json]@."

(* --- main --- *)

let usage () =
  print_endline
    "usage: main.exe \
     [fig3|fig4|fig5|fig3a..fig5d|all|sens|ablate|traj|perf|rare]...\n\
     default: all figures followed by perf (which includes rare)";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let cfg = config () in
  Format.printf
    "ITUA reproduction harness: %d replications per point, seed %Ld, %d \
     domains@."
    cfg.Itua.Study.reps cfg.Itua.Study.seed cfg.Itua.Study.domains;
  let known_panels =
    [ "fig3a"; "fig3b"; "fig3c"; "fig3d"; "fig4a"; "fig4b"; "fig4c"; "fig4d";
      "fig5a"; "fig5b"; "fig5c"; "fig5d" ]
  in
  let valid =
    [ "all"; "perf"; "rare"; "fig3"; "fig4"; "fig5"; "sens"; "ablate"; "traj" ]
    @ known_panels
  in
  List.iter (fun a -> if not (List.mem a valid) then usage ()) args;
  let args = if args = [] then [ "all"; "perf" ] else args in
  let wants_figure fig = List.exists (fun a ->
      a = "all" || a = fig
      || (String.length a > 4 && String.sub a 0 4 = fig)) args
  in
  let figure_times = ref [] in
  let timed id f =
    let t0 = now () in
    let r = f () in
    figure_times := !figure_times @ [ (id, now () -. t0) ];
    r
  in
  let panels = ref [] in
  if wants_figure "fig3" then
    panels := !panels @ timed "fig3" (Itua.Study.fig3 ~config:cfg);
  if wants_figure "fig4" then
    panels := !panels @ timed "fig4" (Itua.Study.fig4 ~config:cfg);
  if wants_figure "fig5" then
    panels := !panels @ timed "fig5" (Itua.Study.fig5 ~config:cfg);
  let selected =
    List.filter
      (fun (id, _) ->
        List.exists
          (fun a -> a = "all" || a = id || a = String.sub id 0 4)
          args)
      !panels
  in
  if selected <> [] then print_panels selected;
  if List.mem "sens" args then
    print_panels (timed "sens" (Itua.Study.sensitivity ~config:cfg));
  if List.mem "traj" args then
    print_panels (timed "traj" (Itua.Study.trajectory ~config:cfg));
  if List.mem "ablate" args then
    print_panels (timed "ablate" (Itua.Study.ablation ~config:cfg));
  (* The perf record is the whole point of BENCH_sim.json: run the
     micro-benchmarks and throughput sweep on EVERY invocation, whatever
     figures were asked for, so the committed record can never regress
     to empty arrays (the CI gate rejects such a record). *)
  let micro = run_perf () in
  let throughput = run_throughput () in
  let ir = run_ir_speedup () in
  if List.mem "rare" args then
    print_panels (timed "fig4b_rare" (Itua.Study.fig4b_rare ~config:cfg));
  let rare =
    if List.mem "perf" args || List.mem "rare" args then
      Some (timed "rare_tail" (run_rare ~cfg))
    else None
  in
  let wants_lumping = List.mem "perf" args || List.mem "rare" args in
  let lumping =
    if wants_lumping then Some (timed "ctmc_lumping" run_lumping) else None
  in
  let lumping_hetero =
    if wants_lumping then Some (timed "ctmc_lumping_hetero" run_lumping_hetero)
    else None
  in
  let point_reps = Int.min cfg.Itua.Study.reps 200 in
  let fig3_points =
    fig3_point_times ~reps:point_reps ~seed:cfg.Itua.Study.seed
      ~domains:cfg.Itua.Study.domains
  in
  write_bench_json ~reps:cfg.Itua.Study.reps ~micro ~throughput ~ir ~rare
    ~lumping ~lumping_hetero ~figures:(!figure_times @ fig3_points);
  (* Record-completeness gate: an empty micro-benchmark or throughput
     array means the record is useless as a perf baseline. *)
  if micro = [] || throughput = [] then begin
    Format.eprintf
      "bench record gate FAILED: %d micro-benchmark and %d throughput \
       records (both must be non-empty)@."
      (List.length micro) (List.length throughput);
    exit 1
  end;
  (* Regression gate: splitting must beat crude MC by >=10x on the tail
     (doc/RARE_EVENTS.md). Counts are seed-deterministic, so this is a
     stable check, evaluated after the record is written. *)
  (match rare with
  | Some r when not (r.rb_wnv_crude >= 10.0 *. r.rb_wnv_split) ->
      Format.eprintf
        "rare-event gate FAILED: work-normalized variance reduction %.1fx < \
         10x@."
        (r.rb_wnv_crude /. r.rb_wnv_split);
      exit 1
  | _ -> ());
  (* Lumping gates: the orbit quotient must shrink the state space and
     leave the symmetric measure unchanged to solver accuracy
     (doc/ANALYSIS.md). Homogeneous 10x1 lumps to the full multiset
     quotient (3^10 = 59049 -> 66); the heterogeneous 5+5 fleet must
     still find its two partial orbits and shrink >=10x (21^2 = 441). *)
  (match lumping with
  | Some l
    when l.lu_full_states <> 59049 || l.lu_lumped_states <> 66
         || l.lu_orbits <> 1
         || not (l.lu_measure_delta <= 1e-9) ->
      Format.eprintf
        "ctmc-lumping gate FAILED: %d orbit(s), %d lumped vs %d full states \
         (want 1 orbit, 66 vs 59049), measure delta %.3g@."
        l.lu_orbits l.lu_lumped_states l.lu_full_states l.lu_measure_delta;
      exit 1
  | _ -> ());
  match lumping_hetero with
  | Some l
    when l.lu_orbits <> 2
         || float_of_int l.lu_full_states
            < 10.0 *. float_of_int l.lu_lumped_states
         || not (l.lu_measure_delta <= 1e-9) ->
      Format.eprintf
        "ctmc-lumping-hetero gate FAILED: %d orbit(s) (want 2 partial \
         orbits), %d lumped vs %d full states (want >=10x reduction), \
         measure delta %.3g@."
        l.lu_orbits l.lu_lumped_states l.lu_full_states l.lu_measure_delta;
      exit 1
  | _ -> ()
