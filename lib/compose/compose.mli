(** Möbius-style composed models: Replicate and Join over atomic SANs.

    In Möbius, a composed model is a tree whose leaves are atomic SANs and
    whose internal nodes are [Rep] (n structurally identical copies of a
    submodel) and [Join] (distinct submodels side by side); submodels
    communicate exclusively through {e shared places} held at an ancestor
    node. This module provides the same discipline on top of
    {!San.Model.Builder}:

    {ul
    {- a {!Ctx.t} carries the position in the composition tree and
       namespaces every place and activity it creates
       (["app[2].replica[3].corrupt"]), so generated names never collide;}
    {- places created at a node are {e shared} by every submodel built
       beneath it — sharing is expressed by ordinary lexical capture: build
       the place at the ancestor, pass it to the children;}
    {- {!replicate} and {!join} build the tree and record its shape, which
       {!structure} renders for inspection (mirroring the paper's
       Figure 2(a)).}}

    All submodels end up in one flat {!San.Model.t}, exactly like Möbius
    flattens a composed model before solution. *)

module Ctx : sig
  type t

  val root : San.Model.Builder.t -> string -> t
  (** [root builder name] is the composition-tree root. *)

  val builder : t -> San.Model.Builder.t
  val path : t -> string
  (** Dotted path of this node, e.g. ["itua.app[1].replica[4]"] (without
      the root name). *)

  val qualify : t -> string -> string
  (** [qualify ctx s] prefixes [s] with the node path. *)

  val int_place : t -> ?init:int -> string -> San.Place.t
  (** Creates a namespaced int place owned by this node. A place created on
      a node is shared by (visible to) everything built below that node. *)

  val float_place : t -> ?init:float -> string -> San.Place.fl

  val timed :
    t ->
    name:string ->
    ?policy:San.Activity.policy ->
    dist:(San.Marking.t -> Dist.t) ->
    enabled:(San.Marking.t -> bool) ->
    reads:San.Place.any list ->
    San.Activity.case list ->
    unit

  val timed_exp :
    t ->
    name:string ->
    ?policy:San.Activity.policy ->
    rate:(San.Marking.t -> float) ->
    enabled:(San.Marking.t -> bool) ->
    reads:San.Place.any list ->
    (San.Activity.ctx -> San.Marking.t -> unit) ->
    unit

  val timed_exp_cases :
    t ->
    name:string ->
    ?policy:San.Activity.policy ->
    rate:(San.Marking.t -> float) ->
    enabled:(San.Marking.t -> bool) ->
    reads:San.Place.any list ->
    (float * (San.Activity.ctx -> San.Marking.t -> unit)) list ->
    unit

  val instantaneous :
    t ->
    name:string ->
    enabled:(San.Marking.t -> bool) ->
    reads:San.Place.any list ->
    (San.Activity.ctx -> San.Marking.t -> unit) ->
    unit

  (** {2 Declarative (IR) activities}

      Namespaced counterparts of the {!San.Model.Builder} IR entry
      points: guard, rate and effect are declarative data, so composed
      submodels built through these are serializable and exactly
      analyzable (including the orbit pass of [Analysis.Orbit]). *)

  val timed_exp_rate_ir :
    t ->
    name:string ->
    ?policy:San.Activity.policy ->
    rate:San.Effect.rexpr ->
    guard:San.Effect.cond ->
    reads:San.Place.any list ->
    San.Effect.t ->
    unit

  val timed_exp_cases_rate_ir :
    t ->
    name:string ->
    ?policy:San.Activity.policy ->
    rate:San.Effect.rexpr ->
    guard:San.Effect.cond ->
    reads:San.Place.any list ->
    (float * San.Effect.t) list ->
    unit

  val instantaneous_ir :
    t ->
    name:string ->
    guard:San.Effect.cond ->
    reads:San.Place.any list ->
    San.Effect.t ->
    unit

  val note : t -> string -> string -> unit
  (** [note ctx key value] records a per-copy parameter on this node —
      e.g. a heterogeneous copy's rate multiplier. Notes surface in
      {!info} as {!info.params} (declaration order), where the symmetry
      passes use them to explain why two copies of a Rep family are not
      exchangeable. Raises [Invalid_argument] on a duplicate [key] for
      the same node. *)
end

val replicate : Ctx.t -> string -> n:int -> (Ctx.t -> int -> 'a) -> 'a array
(** [replicate ctx label ~n build] creates [n] child contexts
    [label[0] .. label[n-1]] and applies [build] to each: the Rep node.
    Places the children create are local to each copy; places from [ctx]
    (or above) that [build] captures are the Rep node's shared places. *)

val join : Ctx.t -> string -> (Ctx.t -> 'a) -> 'a
(** [join ctx label build] creates one named child context: a branch of a
    Join node. Distinct branches of a Join are expressed as successive
    [join] calls on the same parent. *)

val structure : Ctx.t -> string
(** Rendering of the composition tree rooted at this node (indented, one
    node per line, with Rep cardinalities), computed from the
    [replicate]/[join] calls performed so far. *)

(** Introspection snapshot of one composition-tree node: which places and
    activities were created {e at} this node (places at an internal node
    are that node's shared places), and the children below it. Consumed
    by the [analysis] library's shared-place audit. *)
type info = {
  path : string;  (** dotted path, [""] for the root *)
  label : string;
  rep_copies : int option;  (** [Some n] on a Rep child *)
  places : San.Place.any list;  (** created via {!Ctx.int_place}/{!Ctx.float_place} *)
  activities : string list;  (** qualified names, declaration order *)
  params : (string * string) list;
      (** per-copy parameters recorded via {!Ctx.note}, declaration
          order *)
  children : info list;
}

val info : Ctx.t -> info
(** Snapshot of the tree rooted at this node, reflecting the
    [replicate]/[join] calls and declarations performed so far. *)

val render_info : info -> string
(** The {!structure} rendering, computed from an {!info} snapshot. The
    top node renders as the root; [structure ctx] is
    [render_info (info ctx)], so a composition tree reloaded from disk
    ([Serial]) prints identically to one built in-process. *)

val rep_families : info -> (string * info list) list
(** [rep_families n] groups the {e direct} Rep children of [n] into
    label families, in first-appearance order: one [replicate] call
    produces one family [("label", [copy 0; ...; copy n-1])]. Consumed
    by the [analysis] library's symmetry pass, which checks whether the
    copies of a family are structurally exchangeable. *)
