type node = {
  label : string;
  kind : kind;
  mutable children : node list;  (* reversed *)
}

and kind = Root | Rep of int | Join_branch

module Ctx = struct
  type t = { b : San.Model.Builder.t; path : string list; node : node }

  let root b name = { b; path = []; node = { label = name; kind = Root; children = [] } }

  let builder ctx = ctx.b

  let path ctx = String.concat "." (List.rev ctx.path)

  let qualify ctx s =
    match ctx.path with [] -> s | _ -> path ctx ^ "." ^ s

  let int_place ctx ?init s =
    San.Model.Builder.int_place ctx.b ?init (qualify ctx s)

  let float_place ctx ?init s =
    San.Model.Builder.float_place ctx.b ?init (qualify ctx s)

  let timed ctx ~name ?policy ~dist ~enabled ~reads cases =
    San.Model.Builder.timed ctx.b ~name:(qualify ctx name) ?policy ~dist
      ~enabled ~reads cases

  let timed_exp ctx ~name ?policy ~rate ~enabled ~reads effect =
    San.Model.Builder.timed_exp ctx.b ~name:(qualify ctx name) ?policy ~rate
      ~enabled ~reads effect

  let timed_exp_cases ctx ~name ?policy ~rate ~enabled ~reads cases =
    San.Model.Builder.timed_exp_cases ctx.b ~name:(qualify ctx name) ?policy
      ~rate ~enabled ~reads cases

  let instantaneous ctx ~name ~enabled ~reads effect =
    San.Model.Builder.instantaneous ctx.b ~name:(qualify ctx name) ~enabled
      ~reads effect

  let child ctx label kind =
    let node = { label; kind; children = [] } in
    ctx.node.children <- node :: ctx.node.children;
    { b = ctx.b; path = label :: ctx.path; node }
end

let replicate ctx label ~n build =
  if n <= 0 then invalid_arg "Compose.replicate: n must be >= 1";
  Array.init n (fun i ->
      let child = Ctx.child ctx (Printf.sprintf "%s[%d]" label i) (Rep n) in
      build child i)

let join ctx label build = build (Ctx.child ctx label Join_branch)

let structure ctx =
  let buf = Buffer.create 256 in
  let rec render indent node =
    let prefix = String.make indent ' ' in
    let suffix =
      match node.kind with
      | Root -> ""
      | Rep n -> Printf.sprintf " (Rep, %d copies)" n
      | Join_branch -> " (Join branch)"
    in
    Buffer.add_string buf (prefix ^ node.label ^ suffix ^ "\n");
    (* Collapse structurally identical Rep siblings: print the first copy
       of each label family and note the count. *)
    let children = List.rev node.children in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun c ->
        let family =
          match String.index_opt c.label '[' with
          | Some i -> String.sub c.label 0 i
          | None -> c.label
        in
        match c.kind with
        | Rep _ when Hashtbl.mem seen family -> ()
        | Rep _ ->
            Hashtbl.add seen family ();
            render (indent + 2) c
        | Root | Join_branch -> render (indent + 2) c)
      children
  in
  render 0 ctx.Ctx.node;
  Buffer.contents buf
