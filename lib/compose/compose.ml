type node = {
  label : string;
  kind : kind;
  mutable children : node list;  (* reversed *)
  mutable node_places : San.Place.any list;  (* reversed *)
  mutable node_activities : string list;  (* reversed *)
  mutable node_params : (string * string) list;  (* reversed *)
}

and kind = Root | Rep of int | Join_branch

module Ctx = struct
  type t = { b : San.Model.Builder.t; path : string list; node : node }

  let make_node label kind =
    {
      label;
      kind;
      children = [];
      node_places = [];
      node_activities = [];
      node_params = [];
    }

  let root b name = { b; path = []; node = make_node name Root }

  let builder ctx = ctx.b

  let path ctx = String.concat "." (List.rev ctx.path)

  let qualify ctx s =
    match ctx.path with [] -> s | _ -> path ctx ^ "." ^ s

  let int_place ctx ?init s =
    let p = San.Model.Builder.int_place ctx.b ?init (qualify ctx s) in
    ctx.node.node_places <- San.Place.P p :: ctx.node.node_places;
    p

  let float_place ctx ?init s =
    let p = San.Model.Builder.float_place ctx.b ?init (qualify ctx s) in
    ctx.node.node_places <- San.Place.F p :: ctx.node.node_places;
    p

  let record_activity ctx name =
    ctx.node.node_activities <- name :: ctx.node.node_activities

  let note ctx key value =
    if List.mem_assoc key ctx.node.node_params then
      invalid_arg
        (Printf.sprintf "Compose.Ctx.note: duplicate parameter %S" key);
    ctx.node.node_params <- (key, value) :: ctx.node.node_params

  let timed ctx ~name ?policy ~dist ~enabled ~reads cases =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.timed ctx.b ~name ?policy ~dist ~enabled ~reads cases

  let timed_exp ctx ~name ?policy ~rate ~enabled ~reads effect =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.timed_exp ctx.b ~name ?policy ~rate ~enabled ~reads
      effect

  let timed_exp_cases ctx ~name ?policy ~rate ~enabled ~reads cases =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.timed_exp_cases ctx.b ~name ?policy ~rate ~enabled
      ~reads cases

  let instantaneous ctx ~name ~enabled ~reads effect =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.instantaneous ctx.b ~name ~enabled ~reads effect

  let timed_exp_rate_ir ctx ~name ?policy ~rate ~guard ~reads effect =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.timed_exp_rate_ir ctx.b ~name ?policy ~rate ~guard
      ~reads effect

  let timed_exp_cases_rate_ir ctx ~name ?policy ~rate ~guard ~reads cases =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.timed_exp_cases_rate_ir ctx.b ~name ?policy ~rate
      ~guard ~reads cases

  let instantaneous_ir ctx ~name ~guard ~reads effect =
    let name = qualify ctx name in
    record_activity ctx name;
    San.Model.Builder.instantaneous_ir ctx.b ~name ~guard ~reads effect

  let child ctx label kind =
    let node = make_node label kind in
    ctx.node.children <- node :: ctx.node.children;
    { b = ctx.b; path = label :: ctx.path; node }
end

let replicate ctx label ~n build =
  if n <= 0 then invalid_arg "Compose.replicate: n must be >= 1";
  Array.init n (fun i ->
      let child = Ctx.child ctx (Printf.sprintf "%s[%d]" label i) (Rep n) in
      build child i)

let join ctx label build = build (Ctx.child ctx label Join_branch)

type info = {
  path : string;
  label : string;
  rep_copies : int option;
  places : San.Place.any list;
  activities : string list;
  params : (string * string) list;
  children : info list;
}

let info ctx =
  let rec of_node rev_path node =
    let rev_path =
      match node.kind with Root -> rev_path | _ -> node.label :: rev_path
    in
    {
      path = String.concat "." (List.rev rev_path);
      label = node.label;
      rep_copies = (match node.kind with Rep n -> Some n | _ -> None);
      places = List.rev node.node_places;
      activities = List.rev node.node_activities;
      params = List.rev node.node_params;
      children = List.rev_map (of_node rev_path) node.children;
    }
  in
  of_node [] ctx.Ctx.node

let rep_families (n : info) =
  let fam_of label =
    match String.index_opt label '[' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (c : info) ->
      if c.rep_copies <> None then begin
        let f = fam_of c.label in
        if not (Hashtbl.mem tbl f) then begin
          Hashtbl.add tbl f [];
          order := f :: !order
        end;
        Hashtbl.replace tbl f (c :: Hashtbl.find tbl f)
      end)
    n.children;
  List.rev_map (fun f -> (f, List.rev (Hashtbl.find tbl f))) !order

(* Render from the [info] snapshot so a tree parsed back from disk
   ([Serial]) prints identically to one built in-process. *)
let render_info (top : info) =
  let buf = Buffer.create 256 in
  let fam_of label =
    match String.index_opt label '[' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  let rec render indent ~root (n : info) =
    let prefix = String.make indent ' ' in
    let suffix =
      if root then ""
      else
        match n.rep_copies with
        | Some c -> Printf.sprintf " (Rep, %d copies)" c
        | None -> " (Join branch)"
    in
    Buffer.add_string buf (prefix ^ n.label ^ suffix ^ "\n");
    (* Collapse structurally identical Rep siblings: print the first copy
       of each label family and note the count. *)
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (c : info) ->
        match c.rep_copies with
        | Some _ when Hashtbl.mem seen (fam_of c.label) -> ()
        | Some _ ->
            Hashtbl.add seen (fam_of c.label) ();
            render (indent + 2) ~root:false c
        | None -> render (indent + 2) ~root:false c)
      n.children
  in
  render 0 ~root:true top;
  Buffer.contents buf

let structure ctx = render_info (info ctx)
