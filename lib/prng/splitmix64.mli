(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).

    A tiny, fast generator with a 64-bit state and period 2^64. It is not
    used as the main simulation generator; its role is to expand user seeds
    into well-mixed state for {!Xoshiro256}, and to derive independent
    substream seeds. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from an arbitrary 64-bit seed. Every
    seed, including [0L], is valid. *)

val next : t -> int64
(** [next g] advances the state and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix z] is the stateless SplitMix64 finalizer: a bijective mixing
    function on 64-bit integers. [mix] of sequential integers has good
    equidistribution properties, which makes it suitable for hashing stream
    indices into seeds. *)
