(** Random-number streams for simulation.

    A {!t} wraps a xoshiro256++ generator and exposes the sampling
    primitives the simulator and the distribution library need. Streams are
    deterministic functions of their seed, so every simulation run is
    reproducible, and {!substream} derives provably non-overlapping streams
    for independent replications (one jump-indexed stream per replication). *)

type t
(** A mutable stream of pseudo-random numbers. *)

val create : seed:int64 -> t
(** [create ~seed] builds the root stream for [seed]. *)

val of_int_seed : int -> t
(** [of_int_seed seed] is [create ~seed:(Int64.of_int seed)]. *)

val substream : t -> int -> t
(** [substream root i] is the [i]-th independent stream derived from
    [root]'s seed: the root generator state advanced by [i] jumps of 2^128
    steps. [substream] does not disturb [root]; [i] must be
    non-negative. Streams for distinct [i] never overlap (for fewer than
    2^128 draws each). For large [i] this costs [i] jump operations, so
    replication runners should derive substreams incrementally; see
    {!successor}. *)

val successor : t -> t
(** [successor s] is a fresh stream positioned one jump (2^128 draws) past
    [s]'s current state; [s] itself is not disturbed. Repeatedly applying
    [successor] enumerates the same family as {!substream} at O(1) jumps per
    stream. *)

val split : t -> t
(** [split s] deterministically derives a stream whose seed is a hash of
    [s]'s next output, and advances [s] by one draw. Unlike {!substream},
    the result carries no non-overlap guarantee, but it is useful to hand a
    statistically independent stream to a component without sharing
    state. *)

val bits64 : t -> int64
(** [bits64 s] returns 64 uniformly random bits. *)

val float : t -> float
(** [float s] is uniform on [\[0, 1)], using the top 53 bits of one draw,
    so every value is a multiple of 2^-53 and 1.0 is never returned. *)

val float_pos : t -> float
(** [float_pos s] is uniform on [(0, 1]]: [1.0 -. float s]. Safe as an
    argument to [log]. *)

val float_range : t -> float -> float -> float
(** [float_range s lo hi] is uniform on [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int s n] is uniform on [{0, ..., n-1}], without modulo bias.
    Requires [0 < n <= 2^62]. *)

val bool : t -> bool
(** [bool s] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli s p] is [true] with probability [p]. Requires
    [0 <= p <= 1]. *)

val categorical : t -> float array -> int
(** [categorical s w] picks index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with a positive sum. *)

val choose : t -> 'a array -> 'a
(** [choose s a] is a uniformly random element of [a]. [a] must be
    non-empty. *)

val choose_list : t -> 'a list -> 'a
(** [choose_list s l] is a uniformly random element of [l]. [l] must be
    non-empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle of the array, uniformly over permutations. *)

val seed_of : t -> int64
(** [seed_of s] returns the seed the stream family was created from (shared
    by all substreams); useful for logging reproducibility information. *)
