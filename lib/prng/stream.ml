type t = { gen : Xoshiro256.t; seed : int64 }

let create ~seed = { gen = Xoshiro256.of_seed seed; seed }

let of_int_seed seed = create ~seed:(Int64.of_int seed)

let substream root i =
  if i < 0 then invalid_arg "Stream.substream: negative index";
  let gen = Xoshiro256.copy root.gen in
  for _ = 1 to i do
    Xoshiro256.jump gen
  done;
  { gen; seed = root.seed }

let successor s =
  let gen = Xoshiro256.copy s.gen in
  Xoshiro256.jump gen;
  { gen; seed = s.seed }

let bits64 s = Xoshiro256.next s.gen

let split s =
  let derived = Splitmix64.mix (bits64 s) in
  { gen = Xoshiro256.of_seed derived; seed = s.seed }

(* Top 53 bits of a draw, scaled by 2^-53: uniform on [0,1). *)
let float s =
  let bits = Int64.shift_right_logical (bits64 s) 11 in
  Int64.to_float bits *. 0x1p-53

let float_pos s = 1.0 -. float s

let float_range s lo hi =
  if not (lo <= hi) then invalid_arg "Stream.float_range: lo > hi";
  lo +. ((hi -. lo) *. float s)

(* Lemire-style rejection on the top bits to avoid modulo bias. *)
let int s n =
  if n <= 0 then invalid_arg "Stream.int: bound must be positive";
  let n64 = Int64.of_int n in
  (* Draw 62-bit non-negative values; reject those above the largest
     multiple of n to keep the result exactly uniform. *)
  let max62 = Int64.shift_right_logical Int64.minus_one 2 in
  let limit = Int64.sub max62 (Int64.rem max62 n64) in
  let rec draw () =
    let v = Int64.shift_right_logical (bits64 s) 2 in
    if v >= limit then draw () else Int64.to_int (Int64.rem v n64)
  in
  draw ()

let bool s = Int64.logand (bits64 s) 1L = 1L

let bernoulli s p =
  if not (0.0 <= p && p <= 1.0) then
    invalid_arg "Stream.bernoulli: probability out of range";
  float s < p

let categorical s w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if not (total > 0.0) then
    invalid_arg "Stream.categorical: weights must have positive sum";
  let u = float s *. total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let choose s a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stream.choose: empty array";
  a.(int s n)

let choose_list s l =
  match l with
  | [] -> invalid_arg "Stream.choose_list: empty list"
  | _ -> List.nth l (int s (List.length l))

let shuffle_in_place s a =
  for i = Array.length a - 1 downto 1 do
    let j = int s (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let seed_of s = s.seed
