(** xoshiro256++ pseudo-random number generator (Blackman & Vigna 2019).

    256-bit state, period 2^256 - 1, excellent statistical quality, and a
    jump function that advances the state by 2^128 steps, giving up to 2^128
    provably non-overlapping subsequences. This is the workhorse generator
    behind {!Stream}. *)

type t
(** Mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed seed] expands [seed] into a full 256-bit state using
    SplitMix64, as recommended by the xoshiro authors. The resulting state
    is never all-zero. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val next : t -> int64
(** [next g] returns the next 64-bit output and advances the state. *)

val jump : t -> unit
(** [jump g] advances [g] by 2^128 steps of [next]. Calling [jump] [i]
    times from a common origin yields generator number [i] of a family of
    non-overlapping streams, each of length 2^128. *)
