(** The full model check: space + facts + every pass, as one report.

    This is the entry point the [itua_sim check] subcommand and the
    tests use:

    {[
      let report = Analysis.Check.run ~composition model in
      Format.printf "%a" Analysis.Check.pp report;
      exit (if Analysis.Check.has_errors report then 1 else 0)
    ]} *)

type t = {
  model_name : string;
  mode : Space.mode;
  n_stable : int;
  n_vanishing : int;
  truncated : bool;
  fallback : string option;  (** why exhaustive walking was abandoned *)
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
  structure : Structure.t;
      (** the structural certificate (incidence modes, semiflows,
          declared-law verdicts, bounds) — always computed; the CLI
          prints it only under [--invariants] *)
  incidence : string;
      (** ["exact"] (delta rows read symbolically off the effect IR) or
          ["observed"] (closure effects fired on sampled markings) *)
  sampled_fallbacks : string list;
      (** {!Structure.sampled_fallbacks} — the exactness gate: empty
          iff the incidence and every declared-law verdict are exact *)
}

val run :
  ?composition:Compose.info ->
  ?laws:Structure.law list ->
  ?max_states:int ->
  ?runs:int ->
  ?horizon:float ->
  ?max_markings:int ->
  ?seed:int64 ->
  San.Model.t ->
  t
(** Builds the marking space (see {!Space.build} for the defaults and
    the exhaustive/sampled fallback), gathers facts, runs every pass —
    the shared-place audit only when [composition] is supplied, the
    A012 declared-invariant pass only when [laws] is. Deterministic
    for fixed arguments. *)

val has_errors : t -> bool

val errors : t -> Diagnostic.t list

val count : Diagnostic.severity -> t -> int

val exit_code : ?strict:bool -> t -> int
(** The process exit status the CLI uses: [1] on any error-severity
    diagnostic, else [1] when [strict] and the report holds at least
    one warning, else [0]. *)

val pp : Format.formatter -> t -> unit
(** Header line (model, mode, coverage), one line per diagnostic, and a
    severity tally. *)

val to_json : t -> Report.Json.t
(** Deterministic object: model, mode, coverage counts, severity
    tallies, and the diagnostics array. *)
