(** The full model check: space + facts + every pass, as one report.

    This is the entry point the [itua_sim check] subcommand and the
    tests use:

    {[
      let report = Analysis.Check.run ~composition model in
      Format.printf "%a" Analysis.Check.pp report;
      exit (if Analysis.Check.has_errors report then 1 else 0)
    ]} *)

type t = {
  model_name : string;
  mode : Space.mode;
  n_stable : int;
  n_vanishing : int;
  truncated : bool;
  fallback : string option;  (** why exhaustive walking was abandoned *)
  diagnostics : Diagnostic.t list;  (** sorted by {!Diagnostic.compare} *)
}

val run :
  ?composition:Compose.info ->
  ?max_states:int ->
  ?runs:int ->
  ?horizon:float ->
  ?max_markings:int ->
  ?seed:int64 ->
  San.Model.t ->
  t
(** Builds the marking space (see {!Space.build} for the defaults and
    the exhaustive/sampled fallback), gathers facts, runs every pass —
    the shared-place audit only when [composition] is supplied.
    Deterministic for fixed arguments. *)

val has_errors : t -> bool

val errors : t -> Diagnostic.t list

val count : Diagnostic.severity -> t -> int

val pp : Format.formatter -> t -> unit
(** Header line (model, mode, coverage), one line per diagnostic, and a
    severity tally. *)

val to_json : t -> Report.Json.t
(** Deterministic object: model, mode, coverage counts, severity
    tallies, and the diagnostics array. *)
