(** Human- and machine-readable dump of the compiled effect IR.

    The [itua_sim check --ir-dump] flag prints, per activity, the arc
    structure the exact analysis reads off the syntax tree: guard reads,
    static effect read/write sets, and — per case — the exact delta
    rows {!Symbolic.read_case} extracts (the same atoms the incidence
    matrix is built from), with unresolved places and opaque escapes
    marked. The output is deterministic for a fixed model: activities
    in declaration order, places by name, rows in extraction order. *)

type case_dump = {
  cd_index : int;
  cd_rows : (string * int) list list;
      (** exact delta rows, places by name *)
  cd_unresolved : string list;
      (** places written with statically unresolvable deltas *)
  cd_float : bool;  (** the case writes float places *)
  cd_opaque : bool;  (** the case effect contains an [Opaque] closure *)
}

type activity_dump = {
  ad_name : string;
  ad_timing : string;  (** ["timed"] or ["instantaneous"] *)
  ad_guard_reads : string list;  (** places the IR guard reads *)
  ad_reads : string list option;
      (** static effect read set over all cases; [None] if any case is
          opaque *)
  ad_writes : string list option;  (** likewise for writes *)
  ad_cases : case_dump list;
}

type t = { model : string; activities : activity_dump list }

val dump : San.Model.t -> t

val pp : Format.formatter -> t -> unit

val to_json : t -> Report.Json.t
(** Deterministic object under the ["itua-analysis/1"] schema
    envelope. *)
