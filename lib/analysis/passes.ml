type via = Enabled | Dist | Weight | Effect

let via_index = function Enabled -> 0 | Dist -> 1 | Weight -> 2 | Effect -> 3

let via_name = function
  | Enabled -> "enabled"
  | Dist -> "dist"
  | Weight -> "weight"
  | Effect -> "effect"

type facts = {
  space : Space.t;
  n_acts : int;
  n_uids : int;
  act_name : string array;  (* activity id -> name *)
  place_name : string array;  (* place uid -> name *)
  declared : Bytes.t array;  (* activity id -> declared-reads uid set *)
  traced_reads : Bytes.t array;  (* 4 * id + via_index -> traced uid set *)
  traced_writes : Bytes.t array;  (* activity id -> attempted-write uid set *)
  ever_enabled : bool array;
  negative : (int * int * string) list;  (* activity id, case, message *)
  ties : string list list;  (* distinct simultaneous-enabled name sets *)
}

let space f = f.space

let gather (space : Space.t) =
  let model = space.Space.model in
  let acts = San.Model.activities model in
  let n_acts = Array.length acts in
  let n_uids = San.Model.n_places model in
  let place_name = Array.make n_uids "" in
  Array.iter
    (fun p -> place_name.(San.Place.uid p) <- San.Place.name p)
    (San.Model.places model);
  Array.iter
    (fun p -> place_name.(San.Place.fuid p) <- San.Place.fname p)
    (San.Model.float_places model);
  let act_name = Array.map (fun (a : San.Activity.t) -> a.name) acts in
  let declared =
    Array.map
      (fun (a : San.Activity.t) ->
        let b = Bytes.make n_uids '\000' in
        List.iter (fun p -> Bytes.set b (San.Place.any_uid p) '\001') a.reads;
        b)
      acts
  in
  let traced_reads =
    Array.init (4 * n_acts) (fun _ -> Bytes.make n_uids '\000')
  in
  let traced_writes = Array.init n_acts (fun _ -> Bytes.make n_uids '\000') in
  let ever_enabled = Array.make n_acts false in
  let negative = Hashtbl.create 8 in
  let ties = Hashtbl.create 8 in
  let record set uids =
    List.iter (fun uid -> Bytes.set set uid '\001') uids
  in
  let ctx = space.Space.ctx in
  List.iter
    (fun m ->
      let inst = Ctmc.Walker.enabled_instantaneous model m in
      (match inst with
      | _ :: _ :: _ ->
          let names =
            List.map (fun (a : San.Activity.t) -> a.name) inst
            |> List.sort String.compare
          in
          Hashtbl.replace ties names ()
      | _ -> ());
      let stable = inst = [] in
      Array.iter
        (fun (a : San.Activity.t) ->
          let en, reads = San.Marking.trace_reads m (fun () -> a.enabled m) in
          record traced_reads.((4 * a.id) + via_index Enabled) reads;
          if en then begin
            ever_enabled.(a.id) <- true;
            (match a.timing with
            | San.Activity.Instantaneous -> ()
            | San.Activity.Timed { dist; _ } ->
                let (_ : Dist.t), reads =
                  San.Marking.trace_reads m (fun () -> dist m)
                in
                record traced_reads.((4 * a.id) + via_index Dist) reads);
            let weights =
              if Array.length a.cases > 1 then
                Array.map
                  (fun (c : San.Activity.case) ->
                    let w, reads =
                      San.Marking.trace_reads m (fun () -> c.case_weight m)
                    in
                    record traced_reads.((4 * a.id) + via_index Weight) reads;
                    w)
                  a.cases
              else [| 1.0 |]
            in
            (* Fire only where the executor could: timed activities at
               stable markings, instantaneous ones at vanishing markings
               (an enabled instantaneous activity implies the marking is
               vanishing). *)
            if stable || San.Activity.is_instantaneous a then
              Array.iteri
                (fun case (c : San.Activity.case) ->
                  if weights.(case) > 0.0 then begin
                    let mc = San.Marking.copy m in
                    match
                      San.Marking.trace_writes mc (fun () ->
                          San.Marking.trace_reads mc (fun () ->
                              c.effect ctx mc))
                    with
                    | ((), reads), writes ->
                        record traced_reads.((4 * a.id) + via_index Effect)
                          reads;
                        record traced_writes.(a.id) writes
                    | exception Invalid_argument msg ->
                        if not (Hashtbl.mem negative (a.id, case)) then
                          Hashtbl.add negative (a.id, case) msg
                  end)
                a.cases
          end)
        acts)
    space.Space.markings;
  let negative =
    Hashtbl.fold (fun (id, case) msg acc -> (id, case, msg) :: acc) negative []
    |> List.sort (fun (a, b, _) (c, d, _) ->
           if a <> c then Int.compare a c else Int.compare b d)
  in
  let ties =
    Hashtbl.fold (fun names () acc -> names :: acc) ties []
    |> List.sort Stdlib.compare
  in
  {
    space;
    n_acts;
    n_uids;
    act_name;
    place_name;
    declared;
    traced_reads;
    traced_writes;
    ever_enabled;
    negative;
    ties;
  }

let traced f id via uid =
  Bytes.get f.traced_reads.((4 * id) + via_index via) uid = '\001'

let is_declared f id uid = Bytes.get f.declared.(id) uid = '\001'

let undeclared_reads f =
  let out = ref [] in
  for id = 0 to f.n_acts - 1 do
    List.iter
      (fun via ->
        for uid = 0 to f.n_uids - 1 do
          if traced f id via uid && not (is_declared f id uid) then begin
            let severity =
              match via with
              | Effect -> Diagnostic.Warning
              | Enabled | Dist | Weight -> Diagnostic.Error
            in
            out :=
              Diagnostic.v ~code:Diagnostic.undeclared_read ~severity
                ~source:(Diagnostic.Activity f.act_name.(id))
                (Printf.sprintf "%s reads undeclared place %S" (via_name via)
                   f.place_name.(uid))
              :: !out
          end
        done)
      [ Enabled; Dist; Weight; Effect ]
  done;
  !out

let undeclared_writes f =
  let out = ref [] in
  for w = 0 to f.n_acts - 1 do
    for uid = 0 to f.n_uids - 1 do
      if Bytes.get f.traced_writes.(w) uid = '\001' then begin
        let readers = ref [] in
        for r = f.n_acts - 1 downto 0 do
          if
            (not (is_declared f r uid))
            && (traced f r Enabled uid || traced f r Dist uid
              || traced f r Weight uid)
          then readers := f.act_name.(r) :: !readers
        done;
        if !readers <> [] then
          out :=
            Diagnostic.v ~code:Diagnostic.undeclared_write
              ~severity:Diagnostic.Error
              ~source:(Diagnostic.Activity f.act_name.(w))
              (Printf.sprintf
                 "effect writes %S, which %s read(s) without declaring — \
                  this firing cannot wake them"
                 f.place_name.(uid)
                 (String.concat ", " !readers))
            :: !out
      end
    done
  done;
  !out

let negative_writes f =
  List.map
    (fun (id, case, msg) ->
      Diagnostic.v ~code:Diagnostic.negative_write ~severity:Diagnostic.Error
        ~source:(Diagnostic.Activity f.act_name.(id))
        (Printf.sprintf "case %d effect drives a marking negative (%s)" case
           msg))
    f.negative

let liveness f =
  let severity =
    match f.space.Space.mode with
    | Space.Exhaustive -> Diagnostic.Warning
    | Space.Sampled -> Diagnostic.Info
  in
  let coverage =
    match f.space.Space.mode with
    | Space.Exhaustive ->
        Printf.sprintf "any of the %d reachable markings"
          (Space.n_markings f.space)
    | Space.Sampled ->
        Printf.sprintf "any of the %d sampled markings"
          (Space.n_markings f.space)
  in
  let out = ref [] in
  for id = 0 to f.n_acts - 1 do
    if not f.ever_enabled.(id) then
      out :=
        Diagnostic.v ~code:Diagnostic.dead_activity ~severity
          ~source:(Diagnostic.Activity f.act_name.(id))
          (Printf.sprintf "never enabled in %s" coverage)
        :: !out
  done;
  let written = Bytes.make f.n_uids '\000' in
  let read = Bytes.make f.n_uids '\000' in
  for id = 0 to f.n_acts - 1 do
    for uid = 0 to f.n_uids - 1 do
      if Bytes.get f.traced_writes.(id) uid = '\001' then
        Bytes.set written uid '\001';
      if
        traced f id Enabled uid || traced f id Dist uid
        || traced f id Weight uid || traced f id Effect uid
      then Bytes.set read uid '\001'
    done
  done;
  for uid = 0 to f.n_uids - 1 do
    if Bytes.get written uid = '\000' then
      out :=
        Diagnostic.v ~code:Diagnostic.never_written_place ~severity
          ~source:(Diagnostic.Place f.place_name.(uid))
          (Printf.sprintf "never written by any effect in %s" coverage)
        :: !out;
    if Bytes.get read uid = '\000' then
      out :=
        Diagnostic.v ~code:Diagnostic.never_read_place ~severity
          ~source:(Diagnostic.Place f.place_name.(uid))
          (Printf.sprintf
             "never read by any activity function in %s (measures may still \
              read it)"
             coverage)
        :: !out
  done;
  !out

let instantaneous f =
  let loops =
    match f.space.Space.loop with
    | Some msg ->
        [
          Diagnostic.v ~code:Diagnostic.instantaneous_loop
            ~severity:Diagnostic.Error ~source:Diagnostic.Model msg;
        ]
    | None -> []
  in
  let ties =
    List.map
      (fun names ->
        Diagnostic.v ~code:Diagnostic.instantaneous_tie
          ~severity:Diagnostic.Warning ~source:Diagnostic.Model
          (Printf.sprintf
             "instantaneous activities enabled simultaneously (executor \
              tie-breaks uniformly): %s"
             (String.concat ", " names)))
      f.ties
  in
  loops @ ties

let composition f (root : Compose.info) =
  let model = f.space.Space.model in
  let touched id uid =
    is_declared f id uid
    || Bytes.get f.traced_writes.(id) uid = '\001'
    || traced f id Enabled uid || traced f id Dist uid
    || traced f id Weight uid || traced f id Effect uid
  in
  let out = ref [] in
  let rec subtree_ids (n : Compose.info) =
    let own =
      List.filter_map
        (fun name ->
          match San.Model.find_activity model name with
          | a -> Some a.San.Activity.id
          | exception Not_found -> None)
        n.activities
    in
    own @ List.concat_map subtree_ids n.children
  in
  let all_ids = List.init f.n_acts (fun id -> id) in
  let rec walk (n : Compose.info) =
    if n.children <> [] then begin
      (* Subtrees that declared their activities outside the composition
         contexts record none; attribution is then impossible, so degrade
         to "unused by the whole model" rather than flagging everything. *)
      let ids =
        match subtree_ids n with [] -> all_ids | ids -> ids
      in
      List.iter
        (fun p ->
          let uid = San.Place.any_uid p in
          if not (List.exists (fun id -> touched id uid) ids) then
            out :=
              Diagnostic.v ~code:Diagnostic.unused_shared_place
                ~severity:Diagnostic.Warning
                ~source:
                  (Diagnostic.Composition
                     (if n.path = "" then n.label else n.path))
                (Printf.sprintf
                   "shared place %S is never read or written by any \
                    activity in this subtree"
                   (San.Place.any_name p))
              :: !out)
        n.places
    end;
    List.iter walk n.children
  in
  walk root;
  !out

let all ?composition:tree f =
  List.concat
    [
      undeclared_reads f;
      undeclared_writes f;
      negative_writes f;
      liveness f;
      instantaneous f;
      (match tree with None -> [] | Some info -> composition f info);
    ]
  |> List.sort_uniq Diagnostic.compare
