type via = Enabled | Dist | Weight | Effect

let via_index = function Enabled -> 0 | Dist -> 1 | Weight -> 2 | Effect -> 3

let via_name = function
  | Enabled -> "enabled"
  | Dist -> "dist"
  | Weight -> "weight"
  | Effect -> "effect"

type facts = {
  space : Space.t;
  n_acts : int;
  n_uids : int;
  act_name : string array;  (* activity id -> name *)
  place_name : string array;  (* place uid -> name *)
  declared : Bytes.t array;  (* activity id -> declared-reads uid set *)
  traced_reads : Bytes.t array;  (* 4 * id + via_index -> traced uid set *)
  traced_writes : Bytes.t array;  (* activity id -> attempted-write uid set *)
  ever_enabled : bool array;
  negative : (int * int * string) list;  (* activity id, case, message *)
  ties : string list list;  (* distinct simultaneous-enabled name sets *)
  has_guard : bool array;  (* activity id -> declarative guard present *)
  ir_all : bool array;  (* activity id -> every case effect is pure IR *)
}

let space f = f.space

let gather (space : Space.t) =
  let model = space.Space.model in
  let acts = San.Model.activities model in
  let n_acts = Array.length acts in
  let n_uids = San.Model.n_places model in
  let place_name = Array.make n_uids "" in
  Array.iter
    (fun p -> place_name.(San.Place.uid p) <- San.Place.name p)
    (San.Model.places model);
  Array.iter
    (fun p -> place_name.(San.Place.fuid p) <- San.Place.fname p)
    (San.Model.float_places model);
  let act_name = Array.map (fun (a : San.Activity.t) -> a.name) acts in
  let declared =
    Array.map
      (fun (a : San.Activity.t) ->
        let b = Bytes.make n_uids '\000' in
        List.iter (fun p -> Bytes.set b (San.Place.any_uid p) '\001') a.reads;
        b)
      acts
  in
  let traced_reads =
    Array.init (4 * n_acts) (fun _ -> Bytes.make n_uids '\000')
  in
  let traced_writes = Array.init n_acts (fun _ -> Bytes.make n_uids '\000') in
  let ever_enabled = Array.make n_acts false in
  let negative = Hashtbl.create 8 in
  let ties = Hashtbl.create 8 in
  let record set uids =
    List.iter (fun uid -> Bytes.set set uid '\001') uids
  in
  let has_guard =
    Array.map (fun (a : San.Activity.t) -> a.guard <> None) acts
  in
  let ir_all =
    Array.map
      (fun (a : San.Activity.t) ->
        Array.for_all
          (fun (c : San.Activity.case) -> San.Effect.is_pure c.effect)
          a.cases)
      acts
  in
  (* Static prefill: what the IR syntax proves is read or written counts
     as traced even if sampling never reaches a marking exercising it —
     liveness (A005/A006) and composition coverage become exact for IR
     activities. *)
  Array.iter
    (fun (a : San.Activity.t) ->
      (match a.guard with
      | Some g ->
          record traced_reads.((4 * a.id) + via_index Enabled)
            (San.Effect.cond_reads g)
      | None -> ());
      Array.iter
        (fun (c : San.Activity.case) ->
          match
            ( San.Effect.static_reads c.effect,
              San.Effect.static_writes c.effect )
          with
          | Some reads, Some writes ->
              record traced_reads.((4 * a.id) + via_index Effect) reads;
              record traced_writes.(a.id) writes
          | _ -> ())
        a.cases)
    acts;
  let ctx = space.Space.ctx in
  List.iter
    (fun m ->
      let inst = Ctmc.Walker.enabled_instantaneous model m in
      (match inst with
      | _ :: _ :: _ ->
          let names =
            List.map (fun (a : San.Activity.t) -> a.name) inst
            |> List.sort String.compare
          in
          Hashtbl.replace ties names ()
      | _ -> ());
      let stable = inst = [] in
      Array.iter
        (fun (a : San.Activity.t) ->
          let en, reads = San.Marking.trace_reads m (fun () -> a.enabled m) in
          record traced_reads.((4 * a.id) + via_index Enabled) reads;
          if en then begin
            ever_enabled.(a.id) <- true;
            (match a.timing with
            | San.Activity.Instantaneous -> ()
            | San.Activity.Timed { dist; _ } ->
                let (_ : Dist.t), reads =
                  San.Marking.trace_reads m (fun () -> dist m)
                in
                record traced_reads.((4 * a.id) + via_index Dist) reads);
            let weights =
              if Array.length a.cases > 1 then
                Array.map
                  (fun (c : San.Activity.case) ->
                    let w, reads =
                      San.Marking.trace_reads m (fun () -> c.case_weight m)
                    in
                    record traced_reads.((4 * a.id) + via_index Weight) reads;
                    w)
                  a.cases
              else [| 1.0 |]
            in
            (* Fire only where the executor could: timed activities at
               stable markings, instantaneous ones at vanishing markings
               (an enabled instantaneous activity implies the marking is
               vanishing). *)
            if stable || San.Activity.is_instantaneous a then
              Array.iteri
                (fun case (c : San.Activity.case) ->
                  if weights.(case) > 0.0 then begin
                    let mc = San.Marking.copy m in
                    match
                      San.Marking.trace_writes mc (fun () ->
                          San.Marking.trace_reads mc (fun () ->
                              San.Effect.apply ctx c.San.Activity.effect mc))
                    with
                    | ((), reads), writes ->
                        record traced_reads.((4 * a.id) + via_index Effect)
                          reads;
                        record traced_writes.(a.id) writes
                    | exception Invalid_argument msg ->
                        if not (Hashtbl.mem negative (a.id, case)) then
                          Hashtbl.add negative (a.id, case) msg
                    | exception Failure _ ->
                        (* The effect needed randomness the space's ctx
                           cannot supply (e.g. a wide Pick during an
                           exhaustive walk); the static prefill already
                           recorded its reads and writes. *)
                        ()
                  end)
                a.cases
          end)
        acts)
    space.Space.markings;
  let negative =
    Hashtbl.fold (fun (id, case) msg acc -> (id, case, msg) :: acc) negative []
    |> List.sort (fun (a, b, _) (c, d, _) ->
           if a <> c then Int.compare a c else Int.compare b d)
  in
  let ties =
    Hashtbl.fold (fun names () acc -> names :: acc) ties []
    |> List.sort Stdlib.compare
  in
  {
    space;
    n_acts;
    n_uids;
    act_name;
    place_name;
    declared;
    traced_reads;
    traced_writes;
    ever_enabled;
    negative;
    ties;
    has_guard;
    ir_all;
  }

let traced f id via uid =
  Bytes.get f.traced_reads.((4 * id) + via_index via) uid = '\001'

let is_declared f id uid = Bytes.get f.declared.(id) uid = '\001'

let undeclared_reads f =
  let out = ref [] in
  for id = 0 to f.n_acts - 1 do
    List.iter
      (fun via ->
        (* A013 subsumes the sampled trace with an exact static check:
           guard reads when a declarative guard is present, effect reads
           when every case is IR. *)
        let subsumed =
          match via with
          | Enabled -> f.has_guard.(id)
          | Effect -> f.ir_all.(id)
          | Dist | Weight -> false
        in
        if not subsumed then
          for uid = 0 to f.n_uids - 1 do
            if traced f id via uid && not (is_declared f id uid) then begin
              let severity =
                match via with
                | Effect -> Diagnostic.Warning
                | Enabled | Dist | Weight -> Diagnostic.Error
              in
              out :=
                Diagnostic.v ~code:Diagnostic.undeclared_read ~severity
                  ~source:(Diagnostic.Activity f.act_name.(id))
                  (Printf.sprintf "%s reads undeclared place %S"
                     (via_name via) f.place_name.(uid))
                :: !out
            end
          done)
      [ Enabled; Dist; Weight; Effect ]
  done;
  !out

let undeclared_writes f =
  let out = ref [] in
  for w = 0 to f.n_acts - 1 do
    (* IR writers are covered exactly by the A013 stale-wake-up check. *)
    if not f.ir_all.(w) then
    for uid = 0 to f.n_uids - 1 do
      if Bytes.get f.traced_writes.(w) uid = '\001' then begin
        let readers = ref [] in
        for r = f.n_acts - 1 downto 0 do
          if
            (not (is_declared f r uid))
            && (traced f r Enabled uid || traced f r Dist uid
              || traced f r Weight uid)
          then readers := f.act_name.(r) :: !readers
        done;
        if !readers <> [] then
          out :=
            Diagnostic.v ~code:Diagnostic.undeclared_write
              ~severity:Diagnostic.Error
              ~source:(Diagnostic.Activity f.act_name.(w))
              (Printf.sprintf
                 "effect writes %S, which %s read(s) without declaring — \
                  this firing cannot wake them"
                 f.place_name.(uid)
                 (String.concat ", " !readers))
            :: !out
      end
    done
  done;
  !out

let negative_writes f =
  List.map
    (fun (id, case, msg) ->
      Diagnostic.v ~code:Diagnostic.negative_write ~severity:Diagnostic.Error
        ~source:(Diagnostic.Activity f.act_name.(id))
        (Printf.sprintf "case %d effect drives a marking negative (%s)" case
           msg))
    f.negative

(* {2 A013: exact IR declaration checks}

   For activities with a declarative guard and/or pure-IR effects the
   declared-reads contract is checked against the syntax tree itself —
   exact, no sampling. Three findings:

   - a guard reading an undeclared place is an {e Error}: the executor
     re-evaluates [enabled] only when a declared read changes, so the
     guard can go stale (same failure mode as A001 via [enabled], but
     proven rather than observed);
   - effect reads beyond the declared list are one aggregated {e Info}
     per activity: effect reads cannot cause missed wake-ups (effects
     run at firing time), so per-place warnings would be noise;
   - a write to a place some other activity reads without declaring is
     an {e Error} (stale wake-up), computed from the static write sets —
     the exact replacement for A002 on IR writers. *)

let ir_decls f =
  let model = f.space.Space.model in
  let acts = San.Model.activities model in
  let out = ref [] in
  Array.iter
    (fun (a : San.Activity.t) ->
      let id = a.San.Activity.id in
      (match a.guard with
      | None -> ()
      | Some g ->
          List.iter
            (fun uid ->
              if not (is_declared f id uid) then
                out :=
                  Diagnostic.v ~code:Diagnostic.ir_mismatch
                    ~severity:Diagnostic.Error
                    ~source:(Diagnostic.Activity f.act_name.(id))
                    (Printf.sprintf
                       "guard reads place %S, which is missing from the \
                        declared reads list (exact: marking changes there \
                        cannot wake the activity)"
                       f.place_name.(uid))
                  :: !out)
            (San.Effect.cond_reads g));
      if f.ir_all.(id) then begin
        let extra = Hashtbl.create 8 in
        Array.iter
          (fun (c : San.Activity.case) ->
            match San.Effect.static_reads c.effect with
            | Some reads ->
                List.iter
                  (fun uid ->
                    if not (is_declared f id uid) then
                      Hashtbl.replace extra uid ())
                  reads
            | None -> ())
          a.cases;
        let extra =
          Hashtbl.fold (fun uid () acc -> uid :: acc) extra []
          |> List.sort Int.compare
        in
        (match extra with
        | [] -> ()
        | uids ->
            let n = List.length uids in
            let shown = List.filteri (fun k _ -> k < 12) uids in
            let names =
              String.concat ", "
                (List.map (fun uid -> f.place_name.(uid)) shown)
            in
            let names =
              if n > List.length shown then
                Printf.sprintf "%s, ... and %d more" names
                  (n - List.length shown)
              else names
            in
            out :=
              Diagnostic.v ~code:Diagnostic.ir_mismatch
                ~severity:Diagnostic.Info
                ~source:(Diagnostic.Activity f.act_name.(id))
                (Printf.sprintf
                   "IR effects read %d place(s) beyond the declared reads \
                    list: %s (exact; effect reads run at firing time and \
                    cannot miss wake-ups)"
                   n names)
              :: !out);
        (* Stale-wake-up writes, from the static write sets. *)
        for uid = 0 to f.n_uids - 1 do
          if Bytes.get f.traced_writes.(id) uid = '\001' then begin
            let readers = ref [] in
            for r = f.n_acts - 1 downto 0 do
              if
                (not (is_declared f r uid))
                && (traced f r Enabled uid || traced f r Dist uid
                  || traced f r Weight uid)
              then readers := f.act_name.(r) :: !readers
            done;
            if !readers <> [] then
              out :=
                Diagnostic.v ~code:Diagnostic.ir_mismatch
                  ~severity:Diagnostic.Error
                  ~source:(Diagnostic.Activity f.act_name.(id))
                  (Printf.sprintf
                     "IR effect writes %S, which %s read(s) without \
                      declaring — this firing cannot wake them (exact)"
                     f.place_name.(uid)
                     (String.concat ", " !readers))
                :: !out
          end
        done
      end)
    acts;
  !out

(* {2 A016: IR / reference-closure divergence}

   [Checked] pairs an IR term with the closure it was migrated from.
   Differential replay: on every collected marking, run the case effect
   once with IR semantics and once with each [Checked] node replaced by
   its reference closure, driving both from freshly created streams with
   the same seed — identical draws, so any snapshot difference (or a
   one-sided exception) is a real semantic divergence. *)

let checked_divergence f =
  let model = f.space.Space.model in
  let acts = San.Model.activities model in
  let rec has_checked (e : San.Effect.t) =
    match e with
    | San.Effect.Skip | San.Effect.Ops _ | San.Effect.Opaque _ -> false
    | San.Effect.Seq es -> List.exists has_checked es
    | San.Effect.If (_, a, b) -> has_checked a || has_checked b
    | San.Effect.Pick bs -> List.exists (fun (_, e) -> has_checked e) bs
    | San.Effect.Checked _ -> true
  in
  let rec to_reference (e : San.Effect.t) : San.Effect.t =
    match e with
    | San.Effect.Skip | San.Effect.Ops _ | San.Effect.Opaque _ -> e
    | San.Effect.Seq es -> San.Effect.Seq (List.map to_reference es)
    | San.Effect.If (c, a, b) ->
        San.Effect.If (c, to_reference a, to_reference b)
    | San.Effect.Pick bs ->
        San.Effect.Pick (List.map (fun (c, e) -> (c, to_reference e)) bs)
    | San.Effect.Checked { reference; _ } -> San.Effect.Opaque reference
  in
  let watched =
    Array.to_list acts
    |> List.concat_map (fun (a : San.Activity.t) ->
           Array.to_list
             (Array.mapi
                (fun case (c : San.Activity.case) -> (a, case, c))
                a.cases)
           |> List.filter (fun (_, _, c) ->
                  has_checked c.San.Activity.effect))
  in
  if watched = [] then []
  else begin
    let diverged = Hashtbl.create 4 in
    List.iteri
      (fun mi m ->
        List.iter
          (fun ((a : San.Activity.t), case, (c : San.Activity.case)) ->
            if (not (Hashtbl.mem diverged (a.id, case))) && a.enabled m then begin
              let seed = (((mi * 8191) + (a.id * 127) + case) * 2) + 1 in
              let run eff =
                let mc = San.Marking.copy m in
                let ctx =
                  {
                    San.Effect.time = 0.0;
                    stream = Some (Prng.Stream.of_int_seed seed);
                  }
                in
                match San.Effect.apply ctx eff mc with
                | () -> Ok mc
                | exception e -> Error (Printexc.to_string e)
              in
              let ir = run c.effect
              and ref_ = run (to_reference c.effect) in
              let divergence =
                match (ir, ref_) with
                | Ok m1, Ok m2 ->
                    if
                      San.Marking.diff ~before:m1 m2 <> []
                      || San.Marking.float_changed ~before:m1 m2
                    then Some "the final markings differ"
                    else None
                | Error e, Ok _ ->
                    Some (Printf.sprintf "only the IR path raised (%s)" e)
                | Ok _, Error e ->
                    Some
                      (Printf.sprintf "only the reference path raised (%s)" e)
                | Error e1, Error e2 ->
                    if e1 = e2 then None
                    else
                      Some
                        (Printf.sprintf "both paths raised differently \
                                         (%s vs %s)" e1 e2)
              in
              match divergence with
              | Some why ->
                  Hashtbl.replace diverged (a.id, case)
                    (Diagnostic.v ~code:Diagnostic.ir_divergence
                       ~severity:Diagnostic.Error
                       ~source:(Diagnostic.Activity a.San.Activity.name)
                       (Printf.sprintf
                          "case %d: IR and reference closure diverge under \
                           differential replay — %s"
                          case why))
              | None -> ()
            end)
          watched)
      f.space.Space.markings;
    Hashtbl.fold (fun _ d acc -> d :: acc) diverged []
  end

let liveness f =
  let severity =
    match f.space.Space.mode with
    | Space.Exhaustive -> Diagnostic.Warning
    | Space.Sampled -> Diagnostic.Info
  in
  let coverage =
    match f.space.Space.mode with
    | Space.Exhaustive ->
        Printf.sprintf "any of the %d reachable markings"
          (Space.n_markings f.space)
    | Space.Sampled ->
        Printf.sprintf "any of the %d sampled markings"
          (Space.n_markings f.space)
  in
  let out = ref [] in
  for id = 0 to f.n_acts - 1 do
    if not f.ever_enabled.(id) then
      out :=
        Diagnostic.v ~code:Diagnostic.dead_activity ~severity
          ~source:(Diagnostic.Activity f.act_name.(id))
          (Printf.sprintf "never enabled in %s" coverage)
        :: !out
  done;
  let written = Bytes.make f.n_uids '\000' in
  let read = Bytes.make f.n_uids '\000' in
  for id = 0 to f.n_acts - 1 do
    for uid = 0 to f.n_uids - 1 do
      if Bytes.get f.traced_writes.(id) uid = '\001' then
        Bytes.set written uid '\001';
      if
        traced f id Enabled uid || traced f id Dist uid
        || traced f id Weight uid || traced f id Effect uid
      then Bytes.set read uid '\001'
    done
  done;
  for uid = 0 to f.n_uids - 1 do
    if Bytes.get written uid = '\000' then
      out :=
        Diagnostic.v ~code:Diagnostic.never_written_place ~severity
          ~source:(Diagnostic.Place f.place_name.(uid))
          (Printf.sprintf "never written by any effect in %s" coverage)
        :: !out;
    if Bytes.get read uid = '\000' then
      out :=
        Diagnostic.v ~code:Diagnostic.never_read_place ~severity
          ~source:(Diagnostic.Place f.place_name.(uid))
          (Printf.sprintf
             "never read by any activity function in %s (measures may still \
              read it)"
             coverage)
        :: !out
  done;
  !out

let instantaneous f =
  let loops =
    match f.space.Space.loop with
    | Some msg ->
        [
          Diagnostic.v ~code:Diagnostic.instantaneous_loop
            ~severity:Diagnostic.Error ~source:Diagnostic.Model msg;
        ]
    | None -> []
  in
  let ties =
    List.map
      (fun names ->
        Diagnostic.v ~code:Diagnostic.instantaneous_tie
          ~severity:Diagnostic.Warning ~source:Diagnostic.Model
          (Printf.sprintf
             "instantaneous activities enabled simultaneously (executor \
              tie-breaks uniformly): %s"
             (String.concat ", " names)))
      f.ties
  in
  loops @ ties

let composition f (root : Compose.info) =
  let model = f.space.Space.model in
  let touched id uid =
    is_declared f id uid
    || Bytes.get f.traced_writes.(id) uid = '\001'
    || traced f id Enabled uid || traced f id Dist uid
    || traced f id Weight uid || traced f id Effect uid
  in
  let out = ref [] in
  let rec subtree_ids (n : Compose.info) =
    let own =
      List.filter_map
        (fun name ->
          match San.Model.find_activity model name with
          | a -> Some a.San.Activity.id
          | exception Not_found -> None)
        n.activities
    in
    own @ List.concat_map subtree_ids n.children
  in
  let all_ids = List.init f.n_acts (fun id -> id) in
  let rec walk (n : Compose.info) =
    if n.children <> [] then begin
      (* Subtrees that declared their activities outside the composition
         contexts record none; attribution is then impossible, so degrade
         to "unused by the whole model" rather than flagging everything. *)
      let ids =
        match subtree_ids n with [] -> all_ids | ids -> ids
      in
      List.iter
        (fun p ->
          let uid = San.Place.any_uid p in
          if not (List.exists (fun id -> touched id uid) ids) then
            out :=
              Diagnostic.v ~code:Diagnostic.unused_shared_place
                ~severity:Diagnostic.Warning
                ~source:
                  (Diagnostic.Composition
                     (if n.path = "" then n.label else n.path))
                (Printf.sprintf
                   "shared place %S is never read or written by any \
                    activity in this subtree"
                   (San.Place.any_name p))
              :: !out)
        n.places
    end;
    List.iter walk n.children
  in
  walk root;
  !out

let all ?composition:tree f =
  List.concat
    [
      undeclared_reads f;
      undeclared_writes f;
      negative_writes f;
      ir_decls f;
      checked_divergence f;
      liveness f;
      instantaneous f;
      (match tree with None -> [] | Some info -> composition f info);
    ]
  |> List.sort_uniq Diagnostic.compare
