(** Exact symbolic reading of {!San.Effect} IR terms.

    For closure-free (pure-IR) models the incidence structure does not
    have to be observed by firing effects on sampled markings: it can be
    read off the IR syntax tree. This module provides the three exact
    readings {!Structure} builds its certificates from:

    {ul
    {- {b Atoms} ({!read_case}): every [Ops] block of a case effect,
       specialized by the guard conditions dominating it, yields one
       exact delta row. The set of atom rows spans every net marking
       change any firing of the case can produce, so semiflows computed
       against them are sound for {e all} reachable behavior — no
       marking enumeration. Deltas that depend on the marking in a way
       guard pinning cannot resolve (e.g. [Set p e] with unknown prior
       value, or [Inc p e] with a non-constant [e]) mark the place
       {e unresolved}; {!Structure} adds a synthetic unit row for such a
       place, which soundly forces its coefficient to zero in every
       semiflow.}
    {- {b Law drifts} ({!case_drifts}): a small abstract interpreter
       over canonical polynomials (in the pre-firing marking and
       indicator atoms [Ind c]) proves that a firing leaves a weighted
       sum [sum k_p . p] unchanged — for {e every} marking and {e every}
       random choice, including effects whose per-branch deltas only
       cancel in combination (conditional increments against a
       guard-summed counter). This is what makes declared-law
       verification exact for IR models.}
    {- {b Branch liveness and range data}: statically dead [If]/[Pick]
       branches (diagnostic A014) and negative increments with their
       guard-pinned priors (input to A015) fall out of the same
       traversal.}} *)

type verdict =
  | Proven  (** drift is identically zero for every marking and path *)
  | Drift of int  (** drift is the same nonzero constant on every path *)
  | Unproven of string  (** the interpreter could not decide; why *)

val case_drifts :
  n_int:int ->
  guard:San.Effect.cond option ->
  (int * int) list array ->
  San.Effect.t ->
  verdict array
(** [case_drifts ~n_int ~guard laws eff] symbolically executes [eff]
    (guard refinements applied first) and returns one verdict per law.
    Each law is a sorted [(int place index, coefficient)] list. *)

type case_ir = {
  ci_deltas : (int * int) list list;
      (** exact atom delta rows: sorted [(place index, delta)] lists,
          zero entries dropped, empty rows dropped *)
  ci_unresolved : int list;
      (** sorted indexes of places written with a statically
          unresolvable delta *)
  ci_float : bool;  (** the effect writes some float place *)
  ci_dead : string list;
      (** one message per statically dead non-[Skip] branch (A014) *)
  ci_decs : (int * int * int option) list;
      (** [(place index, negative delta, guard-pinned prior value)] for
          every resolved decrement — A015 input *)
}

val read_case :
  n_int:int -> guard:San.Effect.cond option -> San.Effect.t -> case_ir
(** Exact atom extraction for one case effect. Callers should only rely
    on the result when the effect {!San.Effect.is_pure}; [Opaque] nodes
    make every place unresolvable and are reported as a dead end in
    [ci_unresolved] by the caller's own means. *)

val set_only_bounds : San.Model.t -> int option array
(** Per int place index: an upper bound valid in every reachable
    marking, derived purely from write shapes — a place whose every
    write anywhere in the model is [Set p (Int k)] can never exceed
    [max(initial, max k)]. [None] where no such bound exists (any
    increment, computed set, or opaque closure that could write it).
    Exact only for {!San.Model.pure_ir} models; on mixed models every
    entry is [None]. *)
