type t = {
  model_name : string;
  mode : Space.mode;
  n_stable : int;
  n_vanishing : int;
  truncated : bool;
  fallback : string option;
  diagnostics : Diagnostic.t list;
  structure : Structure.t;
  incidence : string;  (** ["exact"] or ["observed"] *)
  sampled_fallbacks : string list;
      (** {!Structure.sampled_fallbacks}: empty iff the incidence and
          every law verdict are exact *)
}

let run ?composition ?laws ?max_states ?runs ?horizon ?max_markings ?seed
    model =
  let space =
    Space.build ?max_states ?runs ?horizon ?max_markings ?seed model
  in
  let facts = Passes.gather space in
  let structure = Structure.analyse ?laws space in
  let diagnostics =
    Passes.all ?composition facts @ Structure.diagnostics structure
    |> List.sort_uniq Diagnostic.compare
  in
  {
    model_name = San.Model.name model;
    mode = space.Space.mode;
    n_stable = space.Space.n_stable;
    n_vanishing = space.Space.n_vanishing;
    truncated = space.Space.truncated;
    fallback = space.Space.fallback;
    diagnostics;
    structure;
    incidence =
      (match structure.Structure.incidence with
      | Structure.Exact -> "exact"
      | Structure.Observed -> "observed");
    sampled_fallbacks = Structure.sampled_fallbacks structure;
  }

let count sev t =
  List.length
    (List.filter (fun d -> d.Diagnostic.severity = sev) t.diagnostics)

let errors t =
  List.filter (fun d -> d.Diagnostic.severity = Diagnostic.Error) t.diagnostics

let has_errors t = errors t <> []

let exit_code ?(strict = false) t =
  if has_errors t then 1
  else if strict && count Diagnostic.Warning t > 0 then 1
  else 0

let pp ppf t =
  let coverage =
    match t.mode with
    | Space.Exhaustive ->
        Printf.sprintf "exhaustive, %d stable markings (+ %d vanishing)"
          t.n_stable t.n_vanishing
    | Space.Sampled ->
        Printf.sprintf "sampled, %d distinct markings%s" t.n_stable
          (if t.truncated then ", truncated" else "")
  in
  Format.fprintf ppf "model %S: %s; incidence %s@." t.model_name coverage
    t.incidence;
  (match t.fallback with
  | Some why -> Format.fprintf ppf "  (exhaustive walk unavailable: %s)@." why
  | None -> ());
  List.iter
    (fun why -> Format.fprintf ppf "  sampled fallback: %s@." why)
    t.sampled_fallbacks;
  List.iter
    (fun d -> Format.fprintf ppf "  %a@." Diagnostic.pp d)
    t.diagnostics;
  let e = count Diagnostic.Error t
  and w = count Diagnostic.Warning t
  and i = count Diagnostic.Info t in
  if e + w + i = 0 then Format.fprintf ppf "no diagnostics@."
  else Format.fprintf ppf "%d error(s), %d warning(s), %d note(s)@." e w i

let to_json t =
  let open Report.Json in
  Obj
    [
      ("schema", Str "itua-analysis/1");
      ("model", Str t.model_name);
      ( "mode",
        Str
          (match t.mode with
          | Space.Exhaustive -> "exhaustive"
          | Space.Sampled -> "sampled") );
      ("stable_markings", int t.n_stable);
      ("vanishing_markings", int t.n_vanishing);
      ("truncated", Bool t.truncated);
      ("incidence", Str t.incidence);
      ( "sampled_fallbacks",
        Arr (List.map (fun s -> Str s) t.sampled_fallbacks) );
      ( "fallback",
        match t.fallback with None -> Null | Some why -> Str why );
      ( "summary",
        Obj
          [
            ("errors", int (count Diagnostic.Error t));
            ("warnings", int (count Diagnostic.Warning t));
            ("infos", int (count Diagnostic.Info t));
          ] );
      ("diagnostics", Arr (List.map Diagnostic.to_json t.diagnostics));
      ("structure", Structure.to_json t.structure);
    ]
