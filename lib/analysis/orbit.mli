(** Automorphism orbits of Replicate families: partial-symmetry
    detection with machine-checkable certificates.

    {!Analysis.Symmetry} lumps a Rep family only when {e all} of its
    copies are exchangeable, and its static check stops at structural
    shape — behavioral asymmetries (a per-copy rate multiplier, an
    identity coupling like the ITUA model's [on_host] host ids) are
    invisible to it, so its whole-family sort silently assumes what it
    cannot see. This pass closes both gaps for pure-IR models, in the
    spirit of non-anonymous replication (Chiaradonna, Di Giandomenico &
    Masetti, arXiv:1608.05874): it computes the {e orbits} of the
    model's automorphism group restricted to copy permutations, so a
    partially symmetric family (five hosts at one attack rate, five at
    another) still lumps within each orbit.

    The algorithm is a partition refinement over the colored
    place/activity incidence structure read off the effect IR:

    {ol
    {- {b Initial coloring.} Copies of a family are partitioned by
       structural signature ({!Symmetry.copy_signature}: relative place
       layout, kinds, initial markings, relative activity names) and by
       the per-copy parameters recorded with {!Compose.Ctx.note}. Copies
       with different colors can never share an orbit.}
    {- {b Refinement by certificate.} Within a color class, copy [c]
       joins the orbit of representative [r] iff the copy transposition
       [(r c)] is a verified automorphism: renaming every place of [r]
       to its aligned counterpart in [c] (and vice versa) throughout
       every activity's guard, rate expression, timing distribution,
       case weights and effect terms — then normalizing commutative
       structure (integer [Add]/[Mul] chains, [All]/[Any] conjunct
       order, [Pick] branch order, independent [Ops] blocks; float
       arithmetic is {e never} reassociated, so verified rates are
       bit-identical) — must reproduce the model's activity multiset
       exactly. Verified transpositions are the generator witnesses of
       diagnostic A017; since they share the representative, they
       generate the full symmetric group on the orbit.}}

    A transposition that fails to verify splits the orbit and yields an
    A018 diagnostic naming the activity (and first differing component:
    guard, rate, effect, ...) that breaks the symmetry — for the full
    ITUA model that is the [on_host] identity coupling, reported
    honestly instead of silently mis-lumped.

    {!canon} maps a state key to the representative of its orbit under
    the {e verified} group only: per family (deepest first), per orbit,
    the member sub-vectors are sorted — copies in different orbits are
    never mixed. Feed it to {!Ctmc.Explore.explore}'s [?canon]
    (optionally with [~audit:true], which cross-checks one-step
    lumpability on every encountered state). {!check_canon} audits a
    {e caller-supplied} canon against the computed orbits and returns
    A019 errors when it merges states the refinement distinguishes —
    e.g. {!Symmetry.canon}'s whole-family sort applied to a
    heterogeneous family. *)

(** One orbit of exchangeable copies within a family. *)
type orbit = {
  ob_members : int list;  (** copy indices, ascending *)
  ob_int_slots : int array array;
      (** per member (in [ob_members] order): the marking-array indices
          of the copy's int places, aligned across members *)
  ob_float_slots : int array array;
}

(** Why two specific copies do not share an orbit. *)
type break_ = {
  bk_copy_a : int;
  bk_copy_b : int;
  bk_reason : string;
      (** names the place, activity, rate or parameter that splits the
          orbit *)
}

type family = {
  fa_path : string;  (** the family's dotted path, e.g. ["domain"] *)
  fa_copies : int;
  fa_depth : int;  (** nesting depth; deeper families canonicalize first *)
  fa_orbits : orbit list;
      (** a partition of [0 .. fa_copies-1], ordered by smallest
          member *)
  fa_witnesses : (int * int) list;
      (** verified transpositions [(r, c)], the A017 generator
          witnesses; transpositions sharing [r] generate the full
          symmetric group on [r]'s orbit *)
  fa_breaks : break_ list;
}

type report = {
  families : family list;  (** deepest first — the {!canon} order *)
  pure : bool;
      (** the whole model is declaratively readable (pure IR, no closure
          guards/dists/weights); orbits of an impure model are all
          singletons *)
  blockers : string list;
      (** when not {!pure}: which activities block static reading *)
  n_int : int;
      (** length of the marking's int vector — {!check_canon} builds its
          witness states from these sizes *)
  n_float : int;
}

val analyse : San.Model.t -> Compose.info -> report
(** Computes the orbit partition of every Rep family with two or more
    copies. Deterministic: depends only on the model and composition
    tree. *)

val canon :
  report -> int array * float array -> int array * float array
(** The orbit-restricted canonical representative: for each family,
    deepest first, each orbit's member sub-vectors are sorted
    lexicographically. Pure — input arrays are not mutated. Sound by
    construction: only verified exchangeability is exploited, so it can
    be fed to {!Ctmc.Explore.explore} without the lumped-vs-unlumped
    validation {!Symmetry.canon} requires (running it anyway, as the
    bench gate does, validates this module instead). *)

val trivial : report -> bool
(** No family has an orbit with two or more members — {!canon} is the
    identity and lumping cannot shrink the chain. *)

val check_canon :
  report ->
  (int array * float array -> int array * float array) ->
  Diagnostic.t list
(** Audits a caller-supplied canonicalization against the computed
    orbits: for every family with at least two orbits, a witness state
    pair distinguished by the refinement (the same perturbation applied
    to copies in different orbits) is passed through the canon; mapping
    both to one representative yields an A019 error diagnostic. Returns
    [[]] when no unsound merge is detected. *)

val diagnostics : report -> Diagnostic.t list
(** The certificate as diagnostics: one A017 orbit report per analysed
    family (orbit classes + generator witnesses), one A018 per broken
    symmetry, each with the family's composition path as source.
    Sorted by {!Diagnostic.compare}. *)

val describe : report -> string
(** Human-readable summary, one family per line plus break details. *)

val to_json : report -> Report.Json.t
(** Deterministic JSON of the full report (families, orbits, witnesses,
    breaks) — embedded by [itua_sim check --symmetry --json]. *)
