(** Structural (incidence-based) analysis: P/T-semiflows, conservation
    certificates, boundedness.

    Classic Petri-net structure theory applied to SAN models. The
    incidence matrix is obtained one of two ways, recorded in
    {!incidence}:

    {ul
    {- {b Exact} — for {!San.Model.pure_ir} models the delta rows are
       read off the effect IR syntax trees by {!Symbolic.read_case}:
       one row per guard-specialized [Ops] block, covering {e every}
       marking change any firing can produce, with no marking
       enumeration and no sampling. Places whose delta cannot be
       resolved statically are listed in [unresolved] and receive a
       synthetic unit row, which soundly forces their coefficient to
       zero in every semiflow. Declared laws are verified symbolically
       ({!Symbolic.case_drifts}) or recognized as implied by the
       computed invariant basis, in which case the redundant
       re-validation pass is skipped and the certificate says so.}
    {- {b Observed} — models containing [Opaque] closure effects fall
       back to the historical scheme: every enabled (activity, case)
       pair is fired on a copy of every marking in a {!Space.t} and
       the distinct net marking changes — the {e modes} of the
       high-level net — are collected via {!San.Marking.diff}. On an
       {!Space.Exhaustive} space the mode set is complete for the
       reachable behavior; on a {!Space.Sampled} space certificates
       are validated against the observed sample only, and the report
       says so.}}

    From the mode matrix [C] (places x modes) the analysis computes:

    {ul
    {- {b P-semiflows}: minimal non-negative integer vectors [y] with
       [y . C = 0] (Farkas' algorithm) — weighted token conservation
       laws, each with its conserved value [y . M0];}
    {- {b T-semiflows}: minimal non-negative integer vectors [x] with
       [C . x = 0] — firing-count vectors that return the marking to
       where it started;}
    {- the {b rank} of [C] over the rationals and, for small models,
       a full rational basis of the left nullspace (all P-invariants,
       including mixed-sign ones) via exact Gaussian elimination
       ({!Rat});}
    {- {b boundedness certificates}: a structural bound
       [y . M0 / y_p] for every place covered by a semiflow, plus the
       observed maximum (an exhaustion proof in exhaustive mode);}
    {- verification of caller-{b declared} conservation laws (e.g.
       {!Itua.Invariant.conservation_laws}) against every mode, the
       basis of the A012 diagnostic and of the [itua_sim check
       --invariants] certificate.}}

    Farkas' algorithm is worst-case exponential, so semiflow
    enumeration is skipped (with the reason recorded in
    [flows_skipped]) when the mode matrix exceeds the configured
    caps; declared-law verification and rank are cheap and always
    run. *)

type incidence =
  | Exact  (** delta rows read symbolically off the effect IR *)
  | Observed  (** delta rows observed by firing effects on markings *)

type law = {
  law_name : string;
  law_terms : (San.Place.t * int) list;
      (** weighted int places; the conserved value is the weighted sum
          at the initial marking *)
}
(** A caller-declared conservation law. *)

type mode = {
  act_id : int;
  activity : string;
  case : int;
  label : string;
      (** unique display label: activity name, plus [/cN] for case N > 0
          and [/vN] when one case shows several distinct deltas *)
  delta : (int * int) list;
      (** net int-place change [(index, change)], ascending index,
          unchanged places omitted *)
  float_delta : bool;  (** the firing changed some float place *)
}
(** One observed net effect of an (activity, case) pair. A
    marking-dependent effect can contribute several modes. *)

type flow = {
  flow_terms : (int * int) list;
      (** [(int place index, coefficient)], coefficients > 0,
          ascending index *)
  flow_value : int;  (** conserved value: terms weighted at [M0] *)
}
(** A P-semiflow. *)

type tflow = (int * int) list
(** A T-semiflow: [(mode position, coefficient)], coefficients > 0. *)

type law_report = {
  lr_name : string;
  lr_terms : (int * int) list;  (** [(int place index, coefficient)] *)
  lr_value : int;  (** weighted sum at the initial marking *)
  lr_violations : (string * int * int) list;
      (** [(activity, case, drift)] for every mode (or, exactly, every
          symbolically derived constant drift) that changes the
          weighted sum; empty means the law holds *)
  lr_how : string;
      (** how the verdict was reached: symbolic proof, implication by
          the invariant basis (re-validation skipped), exhaustive mode
          check, or sampled validation *)
  lr_unproven : (string * int * string) list;
      (** [(activity, case, reason)] for cases the symbolic engine
          could not decide; such laws fall back to marking validation
          and are excluded from structural bounds *)
}

type t = {
  incidence : incidence;
  space_mode : Space.mode;
  n_markings : int;  (** markings the modes were extracted from *)
  n_int : int;  (** int places (marking-array slots) *)
  place_names : string array;  (** by int place index *)
  initial : int array;  (** [M0], by int place index *)
  modes : mode array;  (** sorted by (activity id, case, delta) *)
  fired : bool array;
      (** by activity id: some case executed without raising *)
  active : int list;  (** int places some mode changes, ascending *)
  constant : int list;
      (** int places no mode changes — trivially conserved *)
  rank : int;  (** rank of the mode matrix over the rationals *)
  invariant_dim : int;
      (** dimension of the left nullspace over the {e active} places:
          [|active| - rank] independent P-invariants *)
  p_basis : (int * Rat.t) list list option;
      (** rational left-nullspace basis (sparse, by place index);
          [None] when the model exceeds [max_basis_places] *)
  p_semiflows : flow list;
  t_semiflows : tflow list;
  flows_skipped : string option;
      (** semiflow enumeration was skipped or aborted: why *)
  laws : law_report list;
  observed_max : int array;
      (** by int place index: max value over the space's markings *)
  structural_bound : int option array;
      (** by int place index: best bound [flow_value / coeff] over
          covering semiflows, verified non-negative declared laws and
          (exact mode) {!Symbolic.set_only_bounds} *)
  unresolved : int list;
      (** exact mode: ascending int place indexes written with a
          statically unresolvable delta; always [[]] in observed mode *)
  ir_diags : Diagnostic.t list;
      (** exact mode: A014 (statically dead branch) and A015
          (negative-capable delta) findings, returned by
          {!diagnostics} *)
}

val analyse :
  ?laws:law list ->
  ?max_flow_modes:int ->
  ?max_flow_rows:int ->
  ?max_basis_places:int ->
  Space.t ->
  t
(** [analyse space] extracts the delta rows and computes every
    certificate. {!San.Model.pure_ir} models take the exact path
    ({!Symbolic.read_case}); others fall back to observed extraction,
    whose firing discipline matches the executor (and
    {!Passes.gather}): timed activities fire at stable markings,
    instantaneous ones at vanishing markings, cases with non-positive
    weight are skipped, and effects raising [Invalid_argument]
    (negative marking — an A003) contribute no mode. Semiflow
    enumeration is skipped when there are more than [max_flow_modes]
    (default 512) rows or when Farkas' elimination exceeds
    [max_flow_rows] (default 4096) rows; the rational basis is
    computed when at most [max_basis_places] (default 64) places are
    active. Deterministic for a fixed space. *)

val covered : t -> int -> bool
(** [covered t i]: int place [i] is conserved or bounded by the
    computed structure — it is constant, in the support of a
    P-semiflow, in a verified declared law with non-negative
    coefficients, or carries a structural bound. Meaningful only when
    [flows_skipped = None]. *)

val sampled_fallbacks : t -> string list
(** The exactness gate: every way this certificate falls short of a
    symbolic proof — observed incidence (closure effects), and
    declared laws whose symbolic proof was incomplete. Cap aborts
    ([flows_skipped]) and a sampled marking space do {e not} count:
    they limit optional enumeration and liveness coverage, not the
    exactness of the incidence or law verdicts. Empty for a fully
    exact certificate. *)

val diagnostics : t -> Diagnostic.t list
(** The structural diagnostics: A010 (potentially unbounded place —
    never in exhaustive space mode, where the walk itself is a
    boundedness proof; in exact mode an uncovered place with a proven
    increasing delta warns while an unresolved-delta-only place is
    informational), A011 (dead effect: a fired activity whose every
    delta row changes nothing), A012 (an effect violates a declared
    conservation law), plus the stashed exact-mode A014/A015 findings.
    Unsorted; {!Check.run} merges and sorts. *)

val pp : Format.formatter -> t -> unit
(** The human-readable certificate: coverage, rank, semiflows with
    conserved values, declared-law verdicts, place bounds. *)

val to_json : t -> Report.Json.t
(** Deterministic JSON rendering, embedded by {!Check.to_json} under
    the ["structure"] key (the [itua-analysis/1] extension). *)

exception Invariant_violation of string
(** Raised by a {!guard} when a declared law does not hold. *)

val guard : laws:law list -> San.Model.t -> San.Marking.t -> unit
(** [guard ~laws model] precomputes each law's expected value from the
    model's initial marking and returns a checker suitable for
    {!Sim.Executor}'s [?check_invariants]: it raises
    {!Invariant_violation} naming the law, the expected and the actual
    value when a marking breaks a law. O(total law terms) per call. *)
