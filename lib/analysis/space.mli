(** The set of markings a checking pass evaluates over.

    The checker wants to see every marking the model can visit. Two ways
    to get them:

    {ul
    {- {b Exhaustive}: {!Ctmc.Walker.reachable} enumerates every stable
       marking reachable from the initial marking, and the walk's
       [on_vanishing] hook additionally collects every {e vanishing}
       marking (instantaneous activity enabled) crossed on the way.
       Works for any timing distributions — reachability never looks at
       rates — but requires effects that are deterministic functions of
       the marking and a state space below [max_states].}
    {- {b Sampled}: when the exhaustive walk fails (an effect draws
       randomness, the space is too large, or instantaneous firings
       loop), fall back to collecting the distinct markings visited by a
       few short simulation runs. Coverage is then partial, which is why
       liveness-style passes downgrade their findings to [Info] in this
       mode.}}

    The fallback is automatic; {!t} records which mode was used and why,
    so reports can say how much trust to put in "never happened"
    findings. *)

type mode = Exhaustive | Sampled

type t = {
  model : San.Model.t;
  mode : mode;
  markings : San.Marking.t list;
      (** Exhaustive: all stable markings (walk order), then all
          vanishing markings. Sampled: distinct visited markings, visit
          order, starting with the raw initial marking. *)
  n_stable : int;
      (** Exhaustive: stable-marking (CTMC state) count. Sampled: total
          distinct markings collected. *)
  n_vanishing : int;  (** Exhaustive only; [0] in sampled mode. *)
  ctx : San.Activity.ctx;
      (** Evaluation context for effects: no stream in exhaustive mode,
          a dedicated stream in sampled mode (so stream-drawing effects
          still run). *)
  loop : string option;
      (** Evidence that instantaneous firings failed to stabilize,
          from either the exhaustive walk or a diverged sample run. *)
  truncated : bool;  (** Sampled mode hit [max_markings]. *)
  fallback : string option;
      (** Why the exhaustive walk was abandoned; [None] when
          [mode = Exhaustive]. *)
}

val build :
  ?max_states:int ->
  ?max_work:int ->
  ?runs:int ->
  ?horizon:float ->
  ?max_markings:int ->
  ?seed:int64 ->
  San.Model.t ->
  t
(** [build model] tries the exhaustive walk (bounded by [max_states],
    default 200_000, and by [max_work] vanishing-resolution visits,
    default 25_000 — a deliberately tight effort bound, because the
    checker would rather sample than spend minutes enumerating a model
    whose per-state resolution cost explodes; see
    {!Ctmc.Walker.Work_budget}) and falls back to sampling: [runs] (default 3)
    runs to [horizon] (default 10.0) with root seed [seed] (default
    7), keeping at most [max_markings] (default 500) distinct
    markings. Sampling tolerates per-run [Stabilization_diverged]
    (recorded in [loop]) and [Invalid_argument] (negative marking —
    the sweep re-detects and reports it); both end that run early but
    keep its markings. Deterministic for fixed arguments. *)

val n_markings : t -> int
(** [List.length markings]. *)

val describe : t -> string
(** One line for report headers, e.g.
    ["exhaustive: 9 stable markings (+ 3 vanishing)"]. *)
