module E = San.Effect

(* {2 Canonical polynomials}

   Multivariate polynomials over two kinds of atoms: the pre-traversal
   value of an int place ([AMark]) and the indicator of a canonical
   comparison ([AInd]). Indicators are idempotent (Ind^2 = Ind), which
   monomial multiplication exploits; marking atoms are ordinary
   variables. [All]/[Any]/[Not] are eliminated algebraically
   (product / inclusion-exclusion / 1 - x), so two syntactically
   different spellings of the same boolean structure meet in one
   canonical form and cancel. Growth is capped: any operation whose
   result would exceed [max_monos] monomials raises [Blowup], which
   callers turn into "unproven". *)

exception Blowup

type atom = AMark of int | AInd of ccond
and ccond = CEq of pol | CLt of pol  (* pol = 0 / pol < 0 *)
and mono = atom list (* sorted, AInd-deduplicated *)
and pol = (mono * int) list (* sorted by mono, nonzero coefficients *)

let max_monos = 96

let pzero : pol = []
let pconst k : pol = if k = 0 then [] else [ ([], k) ]
let pvar i : pol = [ ([ AMark i ], 1) ]

let pnorm terms : pol =
  let sorted =
    List.sort (fun (m1, _) (m2, _) -> Stdlib.compare m1 m2) terms
  in
  let rec merge = function
    | [] -> []
    | [ (m, c) ] -> if c = 0 then [] else [ (m, c) ]
    | (m1, c1) :: (m2, c2) :: rest ->
        if m1 = m2 then merge ((m1, c1 + c2) :: rest)
        else if c1 = 0 then merge ((m2, c2) :: rest)
        else (m1, c1) :: merge ((m2, c2) :: rest)
  in
  let r = merge sorted in
  if List.length r > max_monos then raise Blowup;
  r

let padd (a : pol) (b : pol) = pnorm (a @ b)
let pneg (a : pol) : pol = List.map (fun (m, c) -> (m, -c)) a
let psub a b = padd a (pneg b)
let pscale k (a : pol) : pol = if k = 0 then [] else List.map (fun (m, c) -> (m, k * c)) a

(* Monomial product: merge the sorted atom lists, collapsing duplicate
   indicator atoms (idempotence) but keeping repeated marking atoms. *)
let mono_mul (m1 : mono) (m2 : mono) : mono =
  let merged = List.merge Stdlib.compare m1 m2 in
  let rec dedup = function
    | AInd a :: AInd b :: rest when a = b -> dedup (AInd a :: rest)
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  dedup merged

let pmul (a : pol) (b : pol) : pol =
  pnorm
    (List.concat_map
       (fun (m1, c1) -> List.map (fun (m2, c2) -> (mono_mul m1 m2, c1 * c2)) b)
       a)

let pconst_val : pol -> int option = function
  | [] -> Some 0
  | [ ([], c) ] -> Some c
  | _ -> None

(* Indicators of canonical comparisons. Equalities are sign-normalized
   (leading coefficient positive) so [a - b = 0] and [b - a = 0] agree. *)
let ind_eq (d : pol) : pol =
  match pconst_val d with
  | Some 0 -> pconst 1
  | Some _ -> pconst 0
  | None ->
      let d = match d with (_, c0) :: _ when c0 < 0 -> pneg d | _ -> d in
      [ ([ AInd (CEq d) ], 1) ]

let ind_lt (d : pol) : pol =
  match pconst_val d with
  | Some v -> pconst (if v < 0 then 1 else 0)
  | None -> [ ([ AInd (CLt d) ], 1) ]

(* {2 Substitution}

   [env.(i)] is the current symbolic value of int place [i] as a
   polynomial over the pre-traversal marking, or [None] once it became
   untrackable. Reading a [None] place raises [Blowup]. *)

let rec ipol env (e : E.iexpr) : pol =
  match e with
  | E.Int k -> pconst k
  | E.Mark p -> (
      match env.(San.Place.index p) with Some v -> v | None -> raise Blowup)
  | E.Add (a, b) -> padd (ipol env a) (ipol env b)
  | E.Sub (a, b) -> psub (ipol env a) (ipol env b)
  | E.Mul (a, b) -> pmul (ipol env a) (ipol env b)
  | E.Ind c -> cpol env c

and cpol env (c : E.cond) : pol =
  match c with
  | E.Const true -> pconst 1
  | E.Const false -> pconst 0
  | E.Cmp (a, rel, b) -> (
      let d = psub (ipol env a) (ipol env b) in
      match rel with
      | E.Eq -> ind_eq d
      | E.Ne -> psub (pconst 1) (ind_eq d)
      | E.Lt -> ind_lt d
      | E.Gt -> ind_lt (pneg d)
      | E.Le -> psub (pconst 1) (ind_lt (pneg d))
      | E.Ge -> psub (pconst 1) (ind_lt d))
  | E.All cs ->
      List.fold_left (fun acc c -> pmul acc (cpol env c)) (pconst 1) cs
  | E.Any cs ->
      psub (pconst 1)
        (List.fold_left
           (fun acc c -> pmul acc (psub (pconst 1) (cpol env c)))
           (pconst 1) cs)
  | E.Not c -> psub (pconst 1) (cpol env c)

(* Entering a branch where [c] holds: pin places the condition fixes
   outright. Only [Mark p = k] (and conjunctions thereof) pin — enough
   for the [pe]-style guards models are built from — and only when the
   place is still at its pre-traversal symbolic value, so a pin can
   never contradict an earlier write. *)
let rec refine env (c : E.cond) =
  match c with
  | E.Cmp (E.Mark p, E.Eq, E.Int k) | E.Cmp (E.Int k, E.Eq, E.Mark p) ->
      let i = San.Place.index p in
      (match env.(i) with
      | Some v when v = pvar i -> env.(i) <- Some (pconst k)
      | _ -> ())
  | E.All cs -> List.iter (refine env) cs
  | _ -> ()

(* {2 Law drift} *)

type verdict = Proven | Drift of int | Unproven of string

let case_drifts ~n_int ~guard (laws : (int * int) list array) (eff : E.t) :
    verdict array =
  let nl = Array.length laws in
  (* coeffs.(l).(i): law l's coefficient on place i (0 when absent). *)
  let coeffs = Array.make_matrix nl n_int 0 in
  Array.iteri
    (fun l terms -> List.iter (fun (i, k) -> coeffs.(l).(i) <- k) terms)
    laws;
  let zero_drift () = Array.make nl (Some pzero) in
  let dadd d l (p : pol) =
    match d.(l) with
    | None -> ()
    | Some acc -> d.(l) <- (try Some (padd acc p) with Blowup -> None)
  in
  let dmerge ic da db =
    Array.init nl (fun l ->
        match (da.(l), db.(l)) with
        | Some a, Some b when a = b -> Some a
        | Some a, Some b -> (
            match ic with
            | None -> None
            | Some ic -> (
                try Some (padd (pmul ic a) (pmul (psub (pconst 1) ic) b))
                with Blowup -> None))
        | _ -> None)
  in
  let dsum da db =
    Array.init nl (fun l ->
        match (da.(l), db.(l)) with
        | Some a, Some b -> ( try Some (padd a b) with Blowup -> None)
        | _ -> None)
  in
  let apply_op env d (op : E.op) =
    match op with
    | E.Set (p, e) ->
        let i = San.Place.index p in
        let ve = try Some (ipol env e) with Blowup -> None in
        (match (ve, env.(i)) with
        | Some v, Some old ->
            for l = 0 to nl - 1 do
              let k = coeffs.(l).(i) in
              if k <> 0 then dadd d l (pscale k (psub v old))
            done
        | _ ->
            for l = 0 to nl - 1 do
              if coeffs.(l).(i) <> 0 then d.(l) <- None
            done);
        env.(i) <- ve
    | E.Inc (p, e) ->
        let i = San.Place.index p in
        let ve = try Some (ipol env e) with Blowup -> None in
        (match ve with
        | Some v ->
            for l = 0 to nl - 1 do
              let k = coeffs.(l).(i) in
              if k <> 0 then dadd d l (pscale k v)
            done;
            env.(i) <-
              (match env.(i) with
              | Some old -> ( try Some (padd old v) with Blowup -> None)
              | None -> None)
        | None ->
            for l = 0 to nl - 1 do
              if coeffs.(l).(i) <> 0 then d.(l) <- None
            done;
            env.(i) <- None)
    | E.FSet _ | E.FInc _ -> ()
  in
  let join_env env enva envb ic =
    for i = 0 to n_int - 1 do
      if enva.(i) = envb.(i) then env.(i) <- enva.(i)
      else
        env.(i) <-
          (match (ic, enva.(i), envb.(i)) with
          | Some ic, Some va, Some vb -> (
              try
                Some (padd (pmul ic va) (pmul (psub (pconst 1) ic) vb))
              with Blowup -> None)
          | _ -> None)
    done
  in
  let rec go env (eff : E.t) : pol option array =
    match eff with
    | E.Skip -> zero_drift ()
    | E.Ops ops ->
        let d = zero_drift () in
        List.iter (apply_op env d) ops;
        d
    | E.Seq es ->
        List.fold_left (fun acc e -> dsum acc (go env e)) (zero_drift ()) es
    | E.If (c, a, b) ->
        let ic = try Some (cpol env c) with Blowup -> None in
        (match ic with
        | Some p -> (
            (* Statically decided branch: only one side executes. *)
            match pconst_val p with
            | Some 0 -> go env b
            | Some _ -> go env a
            | None ->
                let enva = Array.copy env and envb = Array.copy env in
                refine enva c;
                let da = go enva a and db = go envb b in
                let d = dmerge ic da db in
                join_env env enva envb ic;
                d)
        | None ->
            let enva = Array.copy env and envb = Array.copy env in
            refine enva c;
            let da = go enva a and db = go envb b in
            let d = dmerge None da db in
            join_env env enva envb None;
            d)
    | E.Pick branches ->
        (* The executor chooses uniformly among feasible branches; the
           drift is provable only when every branch drifts identically
           (feasibility cannot be decided statically). *)
        let results =
          List.map
            (fun (c, e) ->
              let envc = Array.copy env in
              refine envc c;
              (envc, go envc e))
            branches
        in
        let d =
          Array.init nl (fun l ->
              match results with
              | [] -> Some pzero
              | (_, d0) :: rest ->
                  if
                    List.for_all
                      (fun (_, dl) -> dl.(l) <> None && dl.(l) = d0.(l))
                      rest
                  then d0.(l)
                  else None)
        in
        for i = 0 to n_int - 1 do
          match results with
          | [] -> ()
          | (env0, _) :: rest ->
              env.(i) <-
                (if List.for_all (fun (e, _) -> e.(i) = env0.(i)) rest then
                   env0.(i)
                 else None)
        done;
        d
    | E.Opaque _ ->
        Array.fill env 0 n_int None;
        Array.make nl None
    | E.Checked { ir; _ } -> go env ir
  in
  let env = Array.init n_int (fun i -> Some (pvar i)) in
  (match guard with None -> () | Some g -> refine env g);
  let d = go env eff in
  Array.map
    (function
      | None -> Unproven "symbolic drift not derivable (expression blow-up)"
      | Some p -> (
          match pconst_val p with
          | Some 0 -> Proven
          | Some k -> Drift k
          | None -> Unproven "drift depends on the marking"))
    d

(* {2 Atoms: exact incidence rows}

   A linear traversal (no path multiplication): every [Ops] block yields
   one delta row, evaluated under the integer pins accumulated from the
   guard and the [If]/[Pick] conditions dominating it. Branches of one
   [If] never see each other's pins; after a join, places written in
   either branch are unpinned. *)

type case_ir = {
  ci_deltas : (int * int) list list;
  ci_unresolved : int list;
  ci_float : bool;
  ci_dead : string list;
  ci_decs : (int * int * int option) list;
}

let rec pin_facts pins (c : E.cond) =
  match c with
  | E.Cmp (E.Mark p, E.Eq, E.Int k) | E.Cmp (E.Int k, E.Eq, E.Mark p) ->
      pins.(San.Place.index p) <- Some k
  | E.All cs -> List.iter (pin_facts pins) cs
  | _ -> ()

let rec ieval pins (e : E.iexpr) : int option =
  match e with
  | E.Int k -> Some k
  | E.Mark p -> pins.(San.Place.index p)
  | E.Add (a, b) -> (
      match (ieval pins a, ieval pins b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | E.Sub (a, b) -> (
      match (ieval pins a, ieval pins b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | E.Mul (a, b) -> (
      match (ieval pins a, ieval pins b) with
      | Some x, Some y -> Some (x * y)
      | _ -> None)
  | E.Ind c -> (
      match ceval pins c with
      | Some b -> Some (if b then 1 else 0)
      | None -> None)

and ceval pins (c : E.cond) : bool option =
  match c with
  | E.Const b -> Some b
  | E.Cmp (a, rel, b) -> (
      match (ieval pins a, ieval pins b) with
      | Some x, Some y ->
          Some
            (match rel with
            | E.Eq -> x = y
            | E.Ne -> x <> y
            | E.Lt -> x < y
            | E.Le -> x <= y
            | E.Gt -> x > y
            | E.Ge -> x >= y)
      | _ -> None)
  | E.All cs ->
      let vs = List.map (ceval pins) cs in
      if List.exists (fun v -> v = Some false) vs then Some false
      else if List.for_all (fun v -> v = Some true) vs then Some true
      else None
  | E.Any cs ->
      let vs = List.map (ceval pins) cs in
      if List.exists (fun v -> v = Some true) vs then Some true
      else if List.for_all (fun v -> v = Some false) vs then Some false
      else None
  | E.Not c -> Option.map not (ceval pins c)

let short_cond c =
  let s = Format.asprintf "%a" E.pp_cond c in
  if String.length s > 96 then String.sub s 0 93 ^ "..." else s

let read_case ~n_int ~guard (eff : E.t) : case_ir =
  let deltas = ref [] in
  let unresolved = Hashtbl.create 8 in
  let float_w = ref false in
  let dead = ref [] in
  let decs = ref [] in
  let emit_ops pins ops =
    (* One atom: the net delta of this [Ops] block, threading pins. *)
    let delta = Hashtbl.create 8 in
    let bump i d =
      Hashtbl.replace delta i (d + Option.value ~default:0 (Hashtbl.find_opt delta i))
    in
    let written = ref [] in
    List.iter
      (fun (op : E.op) ->
        match op with
        | E.Set (p, e) ->
            let i = San.Place.index p in
            written := i :: !written;
            let ev = ieval pins e in
            (match (ev, pins.(i)) with
            | Some v, Some old ->
                bump i (v - old);
                if v - old < 0 then decs := (i, v - old, Some old) :: !decs
            | _ ->
                Hashtbl.remove delta i;
                Hashtbl.replace unresolved i ());
            pins.(i) <- ev
        | E.Inc (p, e) ->
            let i = San.Place.index p in
            written := i :: !written;
            (match ieval pins e with
            | Some v ->
                bump i v;
                if v < 0 then decs := (i, v, pins.(i)) :: !decs;
                pins.(i) <-
                  (match pins.(i) with Some o -> Some (o + v) | None -> None)
            | None ->
                Hashtbl.remove delta i;
                Hashtbl.replace unresolved i ();
                pins.(i) <- None)
        | E.FSet _ | E.FInc _ -> float_w := true)
      ops;
    let row =
      Hashtbl.fold (fun i d acc -> if d = 0 then acc else (i, d) :: acc) delta []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    if row <> [] then deltas := row :: !deltas;
    !written
  in
  let rec walk pins (eff : E.t) : int list =
    match eff with
    | E.Skip -> []
    | E.Ops ops -> emit_ops pins ops
    | E.Seq es ->
        List.concat_map (fun e -> walk pins e) es
    | E.If (c, a, b) -> (
        match ceval pins c with
        | Some true ->
            if b <> E.Skip then
              dead := ("else branch of If " ^ short_cond c) :: !dead;
            walk pins a
        | Some false ->
            if a <> E.Skip then
              dead := ("then branch of If " ^ short_cond c) :: !dead;
            walk pins b
        | None ->
            let pa = Array.copy pins and pb = Array.copy pins in
            pin_facts pa c;
            let wa = walk pa a and wb = walk pb b in
            let w = wa @ wb in
            List.iter (fun i -> pins.(i) <- None) w;
            w)
    | E.Pick branches ->
        let written = ref [] in
        List.iter
          (fun (c, e) ->
            match ceval pins c with
            | Some false ->
                if e <> E.Skip then
                  dead := ("Pick branch guarded by " ^ short_cond c) :: !dead
            | _ ->
                let pc = Array.copy pins in
                pin_facts pc c;
                written := walk pc e @ !written)
          branches;
        List.iter (fun i -> pins.(i) <- None) !written;
        !written
    | E.Opaque _ ->
        (* Callers only use atoms on pure effects; be safe anyway. *)
        for i = 0 to n_int - 1 do
          Hashtbl.replace unresolved i ()
        done;
        []
    | E.Checked { ir; _ } -> walk pins ir
  in
  let pins = Array.make n_int None in
  (match guard with None -> () | Some g -> pin_facts pins g);
  let (_ : int list) = walk pins eff in
  {
    ci_deltas = List.rev !deltas;
    ci_unresolved =
      Hashtbl.fold (fun i () acc -> i :: acc) unresolved []
      |> List.sort Int.compare;
    ci_float = !float_w;
    ci_dead = List.rev !dead;
    ci_decs = List.rev !decs;
  }

(* {2 Set-only value bounds} *)

let set_only_bounds model =
  let n_int = Array.length (San.Model.places model) in
  let bound = Array.make n_int None in
  if not (San.Model.pure_ir model) then bound
  else begin
    let max_set = Array.make n_int min_int in
    let spoiled = Array.make n_int false in
    let rec scan (eff : E.t) =
      match eff with
      | E.Skip -> ()
      | E.Ops ops ->
          List.iter
            (fun (op : E.op) ->
              match op with
              | E.Set (p, E.Int k) ->
                  let i = San.Place.index p in
                  if k > max_set.(i) then max_set.(i) <- k
              | E.Set (p, _) | E.Inc (p, _) ->
                  spoiled.(San.Place.index p) <- true
              | E.FSet _ | E.FInc _ -> ())
            ops
      | E.Seq es -> List.iter scan es
      | E.If (_, a, b) ->
          scan a;
          scan b
      | E.Pick branches -> List.iter (fun (_, e) -> scan e) branches
      | E.Opaque _ -> Array.fill spoiled 0 n_int true
      | E.Checked { ir; _ } -> scan ir
    in
    Array.iter
      (fun (a : San.Activity.t) ->
        Array.iter
          (fun (c : San.Activity.case) -> scan c.San.Activity.effect)
          a.San.Activity.cases)
      (San.Model.activities model);
    let initial =
      San.Marking.int_snapshot (San.Model.initial_marking model)
    in
    Array.iteri
      (fun i _ ->
        if not spoiled.(i) then
          bound.(i) <- Some (max initial.(i) (max max_set.(i) initial.(i))))
      bound;
    bound
  end
