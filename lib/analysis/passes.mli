(** Checking passes over a marking space.

    The passes share one {e facts sweep} ({!gather}): every activity
    function — enabling predicate, firing distribution, case weights,
    case effects — is evaluated on every marking in the {!Space.t} under
    {!San.Marking.trace_reads} and {!San.Marking.trace_writes}, and the
    traces are accumulated into dense per-activity bitsets (place uids
    are dense, so a set of places is a [Bytes.t]). Each pass is then a
    pure scan over the facts.

    Effects are evaluated on scratch copies, for every case with
    positive weight, but only where the executor could actually fire
    them: timed activities at stable markings, instantaneous activities
    at vanishing ones. An effect that raises [Invalid_argument]
    (negative marking) is recorded as a fact rather than propagated. *)

type facts

val gather : Space.t -> facts
(** One evaluation sweep over [space.markings]. Deterministic for a
    fixed space. *)

val space : facts -> Space.t

val undeclared_reads : facts -> Diagnostic.t list
(** [A001]: an activity function read a place not in the activity's
    [reads] list. [Error] for reads from [enabled], the firing
    distribution, or a case weight — the executor will miss wake-ups.
    [Warning] for reads from an effect: firing-time reads are always
    current, but the omission breaks the input-gate discipline and
    hides the dependency from {!undeclared_writes}. *)

val undeclared_writes : facts -> Diagnostic.t list
(** [A002]: some effect of activity [W] writes a place that another
    activity reads — from [enabled], its distribution, or a weight —
    {e without declaring it}. [W]'s firings will not wake the reader:
    the staleness [A001] reports from the reader's side, pinpointed to
    the writes that trigger it. Needs the write traces, hence the
    {!San.Marking.trace_writes} hook. *)

val negative_writes : facts -> Diagnostic.t list
(** [A003]: an effect drove an int place negative ([Invalid_argument]
    from {!San.Marking.set}) on a visited marking where the executor
    could have fired it. Always [Error]. *)

val ir_decls : facts -> Diagnostic.t list
(** [A013]: exact declaration checking for IR activities, subsuming
    A001/A002 where the syntax tree is available. A guard reading an
    undeclared place and an IR write that cannot wake an undeclaring
    reader are [Error]s; effect reads beyond the declared list are one
    aggregated [Info] per activity (firing-time reads cannot miss
    wake-ups). For these activities the corresponding sampled A001/A002
    findings are suppressed. *)

val checked_divergence : facts -> Diagnostic.t list
(** [A016]: differential replay of [San.Effect.Checked] nodes. On every
    collected marking where the activity is enabled, the case effect
    runs once with IR semantics and once with each [Checked] node
    replaced by its reference closure, both driven by fresh same-seeded
    streams; any marking difference or one-sided exception is an
    [Error], at most one per (activity, case). *)

val liveness : facts -> Diagnostic.t list
(** [A004] dead activity (never enabled), [A005] never-written place,
    [A006] never-read place. [Warning] in exhaustive mode — over the
    full reachable space these are proofs; [Info] in sampled mode,
    where absence of evidence is weaker. *)

val instantaneous : facts -> Diagnostic.t list
(** [A007]: instantaneous firings failed to stabilize (vanishing-loop
    or executor divergence evidence in the space) — [Error]. [A008]: a
    visited marking enables two or more instantaneous activities at
    once, so behavior depends on the executor's uniform tie-break —
    [Warning], one diagnostic per distinct enabled set. *)

val composition : facts -> Compose.info -> Diagnostic.t list
(** [A009]: a place created at an {e internal} composition-tree node —
    a shared place — is neither declared, read, nor written by any
    activity in that node's subtree. The sharing the composition
    promises never happens. [Warning]. When a subtree recorded no
    activities (they were declared directly on the builder rather than
    through {!Compose.Ctx}), attribution is impossible and the audit
    degrades to checking the place against every activity in the
    model. *)

val all : ?composition:Compose.info -> facts -> Diagnostic.t list
(** Every pass, concatenated (the composition audit only when a tree is
    supplied), deduplicated and sorted by {!Diagnostic.compare}. *)
