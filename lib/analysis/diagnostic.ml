type severity = Error | Warning | Info

type source =
  | Model
  | Activity of string
  | Place of string
  | Composition of string

type t = {
  code : string;
  severity : severity;
  source : source;
  message : string;
}

let v ~code ~severity ~source message = { code; severity; source; message }

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let source_to_string = function
  | Model -> "model"
  | Activity a -> Printf.sprintf "activity %S" a
  | Place p -> Printf.sprintf "place %S" p
  | Composition p -> Printf.sprintf "composition node %S" p

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = String.compare a.code b.code in
  if c <> 0 then c
  else
    let c =
      String.compare (source_to_string a.source) (source_to_string b.source)
    in
    if c <> 0 then c
    else
      let c = String.compare a.message b.message in
      if c <> 0 then c
      else Int.compare (severity_rank a.severity) (severity_rank b.severity)

let pp ppf d =
  Format.fprintf ppf "[%s] %s %s: %s"
    (severity_to_string d.severity)
    d.code
    (source_to_string d.source)
    d.message

let to_json d =
  let kind, name =
    match d.source with
    | Model -> ("model", "")
    | Activity a -> ("activity", a)
    | Place p -> ("place", p)
    | Composition p -> ("composition", p)
  in
  Report.Json.Obj
    [
      ("code", Report.Json.Str d.code);
      ("severity", Report.Json.Str (severity_to_string d.severity));
      ("source_kind", Report.Json.Str kind);
      ("source", Report.Json.Str name);
      ("message", Report.Json.Str d.message);
    ]

let undeclared_read = "A001-undeclared-read"
let undeclared_write = "A002-undeclared-write"
let negative_write = "A003-negative-write"
let dead_activity = "A004-dead-activity"
let never_written_place = "A005-never-written-place"
let never_read_place = "A006-never-read-place"
let instantaneous_loop = "A007-instantaneous-loop"
let instantaneous_tie = "A008-instantaneous-tie"
let unused_shared_place = "A009-unused-shared-place"
let unbounded_place = "A010-unbounded-place"
let dead_effect = "A011-dead-effect"
let invariant_violated = "A012-invariant-violated"
let ir_mismatch = "A013-ir-declaration-mismatch"
let dead_branch = "A014-dead-branch"
let negative_capable = "A015-negative-capable-delta"
let ir_divergence = "A016-ir-divergence"
let orbit_report = "A017-orbit-report"
let broken_symmetry = "A018-broken-symmetry"
let unsound_canon = "A019-unsound-canon"

let catalogue =
  [
    ( undeclared_read,
      "an activity function reads a place missing from its reads list" );
    ( undeclared_write,
      "an effect writes a place some activity reads without declaring it" );
    (negative_write, "an effect drives an int place negative");
    (dead_activity, "an activity is never enabled in any visited marking");
    (never_written_place, "no effect ever writes this place");
    (never_read_place, "no activity function ever reads this place");
    (instantaneous_loop, "a chain of instantaneous firings never stabilizes");
    ( instantaneous_tie,
      "several instantaneous activities are enabled at the same instant" );
    ( unused_shared_place,
      "a shared place is never touched by the subtree it belongs to" );
    ( unbounded_place,
      "no covering P-semiflow and exploration could not bound the place" );
    (dead_effect, "a fired activity never changes the marking");
    (invariant_violated, "an effect breaks a declared conservation law");
    ( ir_mismatch,
      "an IR activity's declared reads/writes disagree with its effect \
       syntax (exact; subsumes A001/A002 for IR effects)" );
    ( dead_branch,
      "an If/Pick branch is statically dead under the dominating guards \
       (informational: guarded cascade helpers legitimately specialize)" );
    ( negative_capable,
      "a resolved IR delta can drive a place negative under its \
       guard-pinned value or structural bound" );
    ( ir_divergence,
      "a Checked effect's IR and reference closure disagree on some \
       marking (differential replay)" );
    ( orbit_report,
      "automorphism-orbit certificate for a Replicate family: the \
       exchangeable copy classes, with verified transposition witnesses" );
    ( broken_symmetry,
      "a Replicate family's copies are not exchangeable; names the \
       place, activity or rate that splits the orbit" );
    ( unsound_canon,
      "a caller-supplied canonicalization merges states the orbit \
       refinement distinguishes (the quotient would be unsound)" );
  ]
