(** Diagnostics emitted by the model checker.

    Every finding carries a stable code (["A001-undeclared-read"], ...),
    a severity, a source (the model element it is about), and a
    human-readable message. Codes are stable across releases so CI
    configurations and suppression lists can match on them; message
    wording is not. [doc/ANALYSIS.md] catalogues every code with a
    minimal trigger and the usual fix. *)

type severity = Error | Warning | Info
(** [Error]: the model's observable behavior is wrong (stale wake-ups,
    crashes, diverging stabilization). [Warning]: almost certainly a
    modeling mistake, but behavior is well defined. [Info]: worth a
    look; routinely legitimate (e.g. accumulator places that only
    measures read). *)

(** The model element a diagnostic is about. *)
type source =
  | Model  (** the model as a whole (e.g. an instantaneous tie) *)
  | Activity of string
  | Place of string
  | Composition of string  (** a composition-tree node, by dotted path *)

type t = {
  code : string;
  severity : severity;
  source : source;
  message : string;
}

val v : code:string -> severity:severity -> source:source -> string -> t
(** [v ~code ~severity ~source message] builds a diagnostic. *)

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val source_to_string : source -> string
(** E.g. [{|activity "server.arrive"|}]. *)

val compare : t -> t -> int
(** Total order: code, then source, then message — the deterministic
    report order. *)

val pp : Format.formatter -> t -> unit
(** One line: [[error] A001-undeclared-read activity "x": ...]. *)

val to_json : t -> Report.Json.t
(** Object with [code], [severity], [source_kind], [source], [message]. *)

(** {2 Codes}

    One constant per diagnostic code, so passes and tests never spell
    the strings twice. *)

val undeclared_read : string
val undeclared_write : string
val negative_write : string
val dead_activity : string
val never_written_place : string
val never_read_place : string
val instantaneous_loop : string
val instantaneous_tie : string
val unused_shared_place : string
val unbounded_place : string
val dead_effect : string
val invariant_violated : string
val ir_mismatch : string
val dead_branch : string
val negative_capable : string
val ir_divergence : string
val orbit_report : string
val broken_symmetry : string
val unsound_canon : string

val catalogue : (string * string) list
(** Every code with a one-line description, in code order. *)
