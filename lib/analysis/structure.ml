type incidence = Exact | Observed

type law = {
  law_name : string;
  law_terms : (San.Place.t * int) list;
}

type mode = {
  act_id : int;
  activity : string;
  case : int;
  label : string;
  delta : (int * int) list;
  float_delta : bool;
}

type flow = { flow_terms : (int * int) list; flow_value : int }
type tflow = (int * int) list

type law_report = {
  lr_name : string;
  lr_terms : (int * int) list;
  lr_value : int;
  lr_violations : (string * int * int) list;
  lr_how : string;
  lr_unproven : (string * int * string) list;
}

type t = {
  incidence : incidence;
  space_mode : Space.mode;
  n_markings : int;
  n_int : int;
  place_names : string array;
  initial : int array;
  modes : mode array;
  fired : bool array;
  active : int list;
  constant : int list;
  rank : int;
  invariant_dim : int;
  p_basis : (int * Rat.t) list list option;
  p_semiflows : flow list;
  t_semiflows : tflow list;
  flows_skipped : string option;
  laws : law_report list;
  observed_max : int array;
  structural_bound : int option array;
  unresolved : int list;
  ir_diags : Diagnostic.t list;
}

exception Invariant_violation of string

let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* {2 Mode extraction}

   Fire every enabled (activity, case) pair on a copy of every marking
   in the space — the same firing discipline as [Passes.gather] — and
   collect the distinct net deltas. *)

let extract_modes (space : Space.t) =
  let model = space.Space.model in
  let acts = San.Model.activities model in
  let n_acts = Array.length acts in
  let fired = Array.make n_acts false in
  let seen = Hashtbl.create 64 in
  let ctx = space.Space.ctx in
  List.iter
    (fun m ->
      let stable = Ctmc.Walker.enabled_instantaneous model m = [] in
      Array.iter
        (fun (a : San.Activity.t) ->
          if
            a.enabled m && (stable || San.Activity.is_instantaneous a)
          then begin
            let weights =
              if Array.length a.cases > 1 then
                Array.map
                  (fun (c : San.Activity.case) -> c.case_weight m)
                  a.cases
              else [| 1.0 |]
            in
            Array.iteri
              (fun case (c : San.Activity.case) ->
                if weights.(case) > 0.0 then begin
                  let record m' =
                    fired.(a.id) <- true;
                    let delta = San.Marking.diff ~before:m m' in
                    let fd = San.Marking.float_changed ~before:m m' in
                    Hashtbl.replace seen (a.id, case, delta, fd) ()
                  in
                  let mc = San.Marking.copy m in
                  match
                    San.Effect.outcomes ~ctx c.San.Activity.effect mc
                  with
                  | outs -> List.iter (fun (_, m') -> record m') outs
                  | exception Invalid_argument _ ->
                      (* Negative marking: an A003, reported by the
                         negative-write pass; no mode to record. *)
                      ()
                  | exception San.Effect.Too_many_outcomes -> (
                      (* Fork tree too wide to enumerate: record the one
                         outcome a sampled application produces. *)
                      let mc = San.Marking.copy m in
                      match San.Effect.apply ctx c.San.Activity.effect mc with
                      | () -> record mc
                      | exception Invalid_argument _ -> ()
                      | exception Failure _ -> ())
                end)
              a.cases
          end)
        acts)
    space.Space.markings;
  let keys =
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
    |> List.sort Stdlib.compare
  in
  (* Label modes uniquely: activity name, "/cN" when the activity has
     several cases, "/vN" when one case produced several deltas. *)
  let variants = Hashtbl.create 16 in
  List.iter
    (fun (id, case, _, _) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt variants (id, case)) in
      Hashtbl.replace variants (id, case) (n + 1))
    keys;
  let ordinal = Hashtbl.create 16 in
  let modes =
    List.map
      (fun (id, case, delta, fd) ->
        let a = acts.(id) in
        let label = a.San.Activity.name in
        let label =
          if Array.length a.San.Activity.cases > 1 then
            Printf.sprintf "%s/c%d" label case
          else label
        in
        let label =
          if Hashtbl.find variants (id, case) > 1 then begin
            let n =
              Option.value ~default:0 (Hashtbl.find_opt ordinal (id, case))
            in
            Hashtbl.replace ordinal (id, case) (n + 1);
            Printf.sprintf "%s/v%d" label n
          end
          else label
        in
        {
          act_id = id;
          activity = a.San.Activity.name;
          case;
          label;
          delta;
          float_delta = fd;
        })
      keys
  in
  (Array.of_list modes, fired)

(* {2 Exact mode extraction}

   For pure-IR models the delta rows are read off the effect syntax
   trees: one row per guard-specialized [Ops] block ([Symbolic.read_case]).
   No marking is fired. Alongside the rows we collect everything the
   traversal proves statically: unresolved places, per-row completeness
   (for T-semiflow soundness), dead branches (A014) and resolved
   decrements (A015 input, judged later once bounds are known). *)

type exact_extra = {
  ex_unresolved : int list;  (** ascending place indexes *)
  ex_incomplete : bool array;  (** by mode position *)
  ex_dead : Diagnostic.t list;  (** A014 *)
  ex_decs : (string * int * int * int * int option) list;
      (** activity, case, place, delta < 0, guard-pinned prior *)
}

let extract_modes_exact (space : Space.t) =
  let model = space.Space.model in
  let acts = San.Model.activities model in
  let n_int =
    Array.length (San.Marking.int_snapshot (San.Model.initial_marking model))
  in
  let fired = Array.make (Array.length acts) false in
  let modes = ref [] in
  let incomplete = ref [] in
  let unresolved = Hashtbl.create 8 in
  let dead = ref [] in
  let decs = ref [] in
  Array.iter
    (fun (a : San.Activity.t) ->
      let n_cases = Array.length a.San.Activity.cases in
      if n_cases > 0 then fired.(a.San.Activity.id) <- true;
      Array.iteri
        (fun case (c : San.Activity.case) ->
          let ci =
            Symbolic.read_case ~n_int ~guard:a.San.Activity.guard
              c.San.Activity.effect
          in
          List.iter
            (fun i -> Hashtbl.replace unresolved i ())
            ci.Symbolic.ci_unresolved;
          List.iter
            (fun msg ->
              dead :=
                Diagnostic.v ~code:Diagnostic.dead_branch
                  ~severity:Diagnostic.Info
                  ~source:(Diagnostic.Activity a.San.Activity.name)
                  (Printf.sprintf "case %d: %s is statically dead" case msg)
                :: !dead)
            ci.Symbolic.ci_dead;
          List.iter
            (fun (i, d, prior) ->
              decs := (a.San.Activity.name, case, i, d, prior) :: !decs)
            ci.Symbolic.ci_decs;
          let base = a.San.Activity.name in
          let base =
            if n_cases > 1 then Printf.sprintf "%s/c%d" base case else base
          in
          let rows =
            match ci.Symbolic.ci_deltas with
            | [] -> [ [] ]  (* keep an empty row so A011 can see the case *)
            | rows -> rows
          in
          let multi = List.length rows > 1 in
          List.iteri
            (fun k delta ->
              let label =
                if multi then Printf.sprintf "%s/a%d" base k else base
              in
              modes :=
                {
                  act_id = a.San.Activity.id;
                  activity = a.San.Activity.name;
                  case;
                  label;
                  delta;
                  float_delta = ci.Symbolic.ci_float;
                }
                :: !modes;
              incomplete := (ci.Symbolic.ci_unresolved <> []) :: !incomplete)
            rows)
        a.San.Activity.cases)
    acts;
  let extra =
    {
      ex_unresolved =
        Hashtbl.fold (fun i () acc -> i :: acc) unresolved []
        |> List.sort Int.compare;
      ex_incomplete = Array.of_list (List.rev !incomplete);
      ex_dead = List.rev !dead;
      ex_decs = List.rev !decs;
    }
  in
  (Array.of_list (List.rev !modes), fired, extra)

(* {2 Rank and rational nullspace basis}

   Sparse rational Gaussian elimination over the mode rows. Rows are
   [(place index, coefficient)] lists, ascending, zero-free. *)

let row_sub_scaled r c p =
  (* [r - c * p], both rows sorted by index. *)
  let rec go r p =
    match (r, p) with
    | [], [] -> []
    | r, [] -> r
    | [], (j, v) :: p -> (j, Rat.neg (Rat.mul c v)) :: go [] p
    | (i, a) :: r', (j, v) :: p' ->
        if i < j then (i, a) :: go r' p
        else if j < i then (j, Rat.neg (Rat.mul c v)) :: go r p'
        else
          let x = Rat.sub a (Rat.mul c v) in
          if Rat.is_zero x then go r' p' else (i, x) :: go r' p'
  in
  go r p

let normalize_row = function
  | [] -> []
  | (_, lead) :: _ as row -> List.map (fun (i, x) -> (i, Rat.div x lead)) row

let rank_and_basis ~max_basis_places ~active rows =
  let pivots = Hashtbl.create 64 in
  let rank = ref 0 in
  let rec reduce row =
    match row with
    | [] -> ()
    | (j, c) :: _ -> (
        match Hashtbl.find_opt pivots j with
        | Some prow -> reduce (row_sub_scaled row c prow)
        | None ->
            Hashtbl.add pivots j (normalize_row row);
            incr rank)
  in
  List.iter
    (fun delta ->
      reduce (List.map (fun (i, d) -> (i, Rat.of_int d)) delta))
    rows;
  let rank = !rank in
  let basis =
    if List.length active > max_basis_places then None
    else begin
      let pcols =
        Hashtbl.fold (fun k _ acc -> k :: acc) pivots []
        |> List.sort Int.compare |> Array.of_list
      in
      let rows = Array.map (Hashtbl.find pivots) pcols in
      (* Back-substitute to reduced row-echelon form. *)
      for i = Array.length rows - 1 downto 0 do
        for k = 0 to i - 1 do
          match List.assoc_opt pcols.(i) rows.(k) with
          | None -> ()
          | Some c -> rows.(k) <- row_sub_scaled rows.(k) c rows.(i)
        done
      done;
      let is_pivot i = Array.exists (fun p -> p = i) pcols in
      let free = List.filter (fun i -> not (is_pivot i)) active in
      (* One basis vector of the left nullspace per free column: the
         invariant y with y_free = 1 and y_pivot = -entry. *)
      Some
        (List.map
           (fun f ->
             let terms = ref [ (f, Rat.one) ] in
             Array.iteri
               (fun i p ->
                 match List.assoc_opt f rows.(i) with
                 | None -> ()
                 | Some e -> terms := (p, Rat.neg e) :: !terms)
               pcols;
             ( f,
               List.sort (fun (a, _) (b, _) -> Int.compare a b) !terms ))
           free)
    end
  in
  (rank, basis)

(* {2 Farkas' algorithm}

   Minimal non-negative integer solutions of [rows . x = 0], column by
   column: at each step every row with a zero in the chosen column
   survives, and every (positive, negative) row pair contributes their
   cancelling positive combination. The [y] part starts as the
   identity, so at the end it holds the semiflows. Row growth is
   capped; exceeding the cap aborts the enumeration (reported, never
   silent). *)

type frow = { c : int array; y : (int * int) list }

let normalize_frow r =
  let g = Array.fold_left (fun g v -> igcd g (abs v)) 0 r.c in
  let g = List.fold_left (fun g (_, v) -> igcd g (abs v)) g r.y in
  if g <= 1 then r
  else
    {
      c = Array.map (fun v -> v / g) r.c;
      y = List.map (fun (i, v) -> (i, v / g)) r.y;
    }

let merge_y ~la a ~lb b =
  let rec go a b =
    match (a, b) with
    | [], [] -> []
    | (i, v) :: a', [] -> (i, la * v) :: go a' []
    | [], (j, w) :: b' -> (j, lb * w) :: go [] b'
    | (i, v) :: a', (j, w) :: b' ->
        if i < j then (i, la * v) :: go a' b
        else if j < i then (j, lb * w) :: go a b'
        else (i, (la * v) + (lb * w)) :: go a' b'
  in
  go a b

let farkas ~n_cols ~max_rows rows =
  let remaining = ref (List.init n_cols Fun.id) in
  let rows = ref rows in
  let aborted = ref None in
  while !remaining <> [] && !aborted = None do
    let score j =
      List.fold_left
        (fun (p, n) r ->
          if r.c.(j) > 0 then (p + 1, n)
          else if r.c.(j) < 0 then (p, n + 1)
          else (p, n))
        (0, 0) !rows
    in
    let best, _ =
      List.fold_left
        (fun (bj, bs) j ->
          let p, n = score j in
          let s = p * n in
          if s < bs then (j, s) else (bj, bs))
        (List.hd !remaining, max_int)
        !remaining
    in
    remaining := List.filter (fun j -> j <> best) !remaining;
    let zeros, pos, neg =
      List.fold_left
        (fun (z, p, n) r ->
          if r.c.(best) = 0 then (r :: z, p, n)
          else if r.c.(best) > 0 then (z, r :: p, n)
          else (z, p, r :: n))
        ([], [], []) !rows
    in
    let combos = ref [] in
    let count = ref (List.length zeros) in
    (try
       List.iter
         (fun rp ->
           List.iter
             (fun rn ->
               incr count;
               if !count > max_rows then raise Exit;
               let a = rp.c.(best) and b = rn.c.(best) in
               let g = igcd a (-b) in
               let la = -b / g and lb = a / g in
               let c =
                 Array.init n_cols (fun j ->
                     (la * rp.c.(j)) + (lb * rn.c.(j)))
               in
               combos :=
                 normalize_frow { c; y = merge_y ~la rp.y ~lb rn.y }
                 :: !combos)
             neg)
         pos;
       rows :=
         List.sort_uniq Stdlib.compare (List.rev_append !combos zeros)
     with Exit ->
       aborted :=
         Some
           (Printf.sprintf "Farkas row count exceeded the %d cap" max_rows))
  done;
  match !aborted with
  | Some why -> Error why
  | None ->
      (* Keep minimal-support solutions only. *)
      let support y = List.map fst y in
      let rec subset a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: a', y :: b' ->
            if x = y then subset a' b'
            else if y < x then subset a b'
            else false
      in
      let ys = List.sort_uniq Stdlib.compare (List.map (fun r -> r.y) !rows) in
      Ok
        (List.filter
           (fun y ->
             let s = support y in
             not
               (List.exists
                  (fun y' -> y' <> y && subset (support y') s && support y' <> s)
                  ys))
           ys)

(* {2 The analysis} *)

let analyse ?(laws = []) ?(max_flow_modes = 512) ?(max_flow_rows = 4096)
    ?(max_basis_places = 64) (space : Space.t) =
  let model = space.Space.model in
  let exact = San.Model.pure_ir model in
  let modes, fired, extra =
    if exact then extract_modes_exact space
    else
      let modes, fired = extract_modes space in
      ( modes,
        fired,
        {
          ex_unresolved = [];
          ex_incomplete = Array.make (Array.length modes) false;
          ex_dead = [];
          ex_decs = [];
        } )
  in
  let initial =
    San.Marking.int_snapshot (San.Model.initial_marking model)
  in
  let n_int = Array.length initial in
  let place_names = Array.make n_int "" in
  Array.iter
    (fun p -> place_names.(San.Place.index p) <- San.Place.name p)
    (San.Model.places model);
  let touched = Array.make n_int false in
  Array.iter
    (fun md -> List.iter (fun (i, _) -> touched.(i) <- true) md.delta)
    modes;
  (* A statically unresolved write touches its place even though it
     contributes no delta row — it must count as active. *)
  List.iter (fun i -> touched.(i) <- true) extra.ex_unresolved;
  let active = ref [] and constant = ref [] in
  for i = n_int - 1 downto 0 do
    if touched.(i) then active := i :: !active else constant := i :: !constant
  done;
  let active = !active and constant = !constant in
  let snapshots =
    List.map San.Marking.int_snapshot space.Space.markings
  in
  let observed_max = Array.copy initial in
  List.iter
    (fun snap ->
      Array.iteri
        (fun i v -> if v > observed_max.(i) then observed_max.(i) <- v)
        snap)
    snapshots;
  (* Unresolved places get a synthetic unit row: it enters the rank and
     (as an extra incidence column) the Farkas enumeration, forcing
     every P-semiflow and basis invariant to zero coefficient there —
     the sound reading of "we cannot say how this place moves". *)
  let synthetic = List.map (fun i -> [ (i, 1) ]) extra.ex_unresolved in
  let rank, tagged_basis =
    rank_and_basis ~max_basis_places ~active
      (Array.to_list (Array.map (fun md -> md.delta) modes) @ synthetic)
  in
  let p_basis = Option.map (List.map snd) tagged_basis in
  let n_active = List.length active in
  let n_modes = Array.length modes in
  let n_unres = List.length extra.ex_unresolved in
  let flows_skipped, p_semiflows, t_semiflows =
    if n_modes > max_flow_modes then
      ( Some
          (Printf.sprintf "%d modes exceed the %d semiflow-enumeration cap"
             n_modes max_flow_modes),
        [],
        [] )
    else if n_active > max_flow_rows then
      ( Some
          (Printf.sprintf "%d active places exceed the %d row cap" n_active
             max_flow_rows),
        [],
        [] )
    else begin
      let col_of = Array.make n_int (-1) in
      List.iteri (fun j i -> col_of.(i) <- j) active;
      (* P-semiflows: one row per active place, over the mode columns
         plus one synthetic column per unresolved place. *)
      let prows =
        List.map
          (fun i ->
            let c = Array.make (n_modes + n_unres) 0 in
            Array.iteri
              (fun j md ->
                match List.assoc_opt i md.delta with
                | Some d -> c.(j) <- d
                | None -> ())
              modes;
            List.iteri
              (fun k u -> if u = i then c.(n_modes + k) <- 1)
              extra.ex_unresolved;
            { c; y = [ (i, 1) ] })
          active
      in
      (* T-semiflows: one row per marking-changing mode over the active
         place columns. Modes with an empty delta are trivially
         repetitive and excluded as noise; in exact mode, rows of a
         case with unresolved writes are incomplete and excluded —
         a firing-count claim over them would be unsound. *)
      let trows = ref [] in
      Array.iteri
        (fun pos md ->
          if md.delta <> [] && not extra.ex_incomplete.(pos) then begin
            let c = Array.make n_active 0 in
            List.iter (fun (i, d) -> c.(col_of.(i)) <- d) md.delta;
            trows := { c; y = [ (pos, 1) ] } :: !trows
          end)
        modes;
      let trows = List.rev !trows in
      match
        ( farkas ~n_cols:(n_modes + n_unres) ~max_rows:max_flow_rows prows,
          farkas ~n_cols:n_active ~max_rows:max_flow_rows trows )
      with
      | Ok ps, Ok ts ->
          let flows =
            List.map
              (fun y ->
                {
                  flow_terms = y;
                  flow_value =
                    List.fold_left
                      (fun s (i, k) -> s + (k * initial.(i)))
                      0 y;
                })
              ps
          in
          (* Under observed sampling the mode set may be incomplete, so
             a computed semiflow can be spurious: require every flow to
             hold on every collected (reachable) marking, which refutes
             and drops the spurious ones. Exact rows cover every firing
             by construction, so exact-mode flows need no filtering. *)
          let flows =
            if exact then flows
            else
              List.filter
                (fun f ->
                  List.for_all
                    (fun snap ->
                      List.fold_left
                        (fun s (i, k) -> s + (k * snap.(i)))
                        0 f.flow_terms
                      = f.flow_value)
                    snapshots)
                flows
          in
          (None, flows, ts)
      | Error why, _ | _, Error why -> (Some why, [], [])
    end
  in
  (* {3 Declared laws}

     Exact path: a law already implied by the computed invariant basis
     needs no second pass (satellite fix — the certificate says so);
     otherwise the symbolic drift interpreter proves it per case, and
     only if some case defeats the interpreter do we fall back to
     validating on the space's markings. Observed path: the historical
     per-mode drift check. *)
  let law_terms_of l =
    List.map (fun (p, k) -> (San.Place.index p, k)) l.law_terms
    |> List.sort Stdlib.compare
  in
  let implied_by_basis terms =
    match tagged_basis with
    | None -> false
    | Some basis ->
        let law_active =
          List.filter (fun (i, _) -> List.mem i active) terms
        in
        let coeff i =
          Rat.of_int (Option.value ~default:0 (List.assoc_opt i law_active))
        in
        (* Each basis vector has its free column with coefficient 1 and
           zero in every other vector, so membership in the span has a
           closed form: the candidate combination scaled by the law's
           free-column coefficients must reproduce the law exactly. *)
        let acc = Hashtbl.create 16 in
        List.iter
          (fun (f, bterms) ->
            let c = coeff f in
            if not (Rat.is_zero c) then
              List.iter
                (fun (i, r) ->
                  let cur =
                    Option.value ~default:Rat.zero (Hashtbl.find_opt acc i)
                  in
                  Hashtbl.replace acc i (Rat.add cur (Rat.mul c r)))
                bterms)
          basis;
        let candidate =
          Hashtbl.fold
            (fun i r l -> if Rat.is_zero r then l else (i, r) :: l)
            acc []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        let law_rat =
          List.filter_map
            (fun (i, k) -> if k = 0 then None else Some (i, Rat.of_int k))
            law_active
        in
        List.length candidate = List.length law_rat
        && List.for_all2
             (fun (i, a) (j, b) -> i = j && Rat.equal a b)
             candidate law_rat
  in
  let laws =
    if exact then begin
      let reports =
        List.map
          (fun l ->
            let terms = law_terms_of l in
            let value =
              List.fold_left (fun s (i, k) -> s + (k * initial.(i))) 0 terms
            in
            (l, terms, value, implied_by_basis terms))
          laws
      in
      (* One symbolic sweep proves every not-yet-implied law at once. *)
      let pending =
        List.filter (fun (_, _, _, implied) -> not implied) reports
      in
      let pending_terms =
        Array.of_list (List.map (fun (_, t, _, _) -> t) pending)
      in
      let violations = Array.make (List.length pending) [] in
      let unproven = Array.make (List.length pending) [] in
      if pending <> [] then
        Array.iter
          (fun (a : San.Activity.t) ->
            Array.iteri
              (fun case (c : San.Activity.case) ->
                let verdicts =
                  Symbolic.case_drifts ~n_int ~guard:a.San.Activity.guard
                    pending_terms c.San.Activity.effect
                in
                Array.iteri
                  (fun li v ->
                    match v with
                    | Symbolic.Proven -> ()
                    | Symbolic.Drift d ->
                        violations.(li) <-
                          (a.San.Activity.name, case, d) :: violations.(li)
                    | Symbolic.Unproven why ->
                        unproven.(li) <-
                          (a.San.Activity.name, case, why) :: unproven.(li))
                  verdicts)
              a.San.Activity.cases)
          (San.Model.activities model);
      let li = ref (-1) in
      List.map
        (fun (l, terms, value, implied) ->
          if implied then
            {
              lr_name = l.law_name;
              lr_terms = terms;
              lr_value = value;
              lr_violations = [];
              lr_how = "implied by the invariant basis; re-validation skipped";
              lr_unproven = [];
            }
          else begin
            incr li;
            let vs = List.rev violations.(!li) in
            let unp = List.rev unproven.(!li) in
            let vs, how =
              if unp = [] then
                (vs, "proven symbolically over the effect IR")
              else begin
                (* Backstop: the symbolic engine gave up on some case —
                   validate the law on every collected marking so a
                   plainly broken law is still reported. *)
                let marking_bad =
                  List.exists
                    (fun snap ->
                      List.fold_left
                        (fun s (i, k) -> s + (k * snap.(i)))
                        0 terms
                      <> value)
                    snapshots
                in
                ( (if marking_bad then vs @ [ ("(marking)", 0, 0) ] else vs),
                  Printf.sprintf
                    "symbolic proof incomplete; validated on %d markings"
                    (List.length snapshots) )
              end
            in
            {
              lr_name = l.law_name;
              lr_terms = terms;
              lr_value = value;
              lr_violations = vs;
              lr_how = how;
              lr_unproven = unp;
            }
          end)
        reports
    end
    else
      List.map
        (fun l ->
          let terms = law_terms_of l in
          let value =
            List.fold_left (fun s (i, k) -> s + (k * initial.(i))) 0 terms
          in
          let violations =
            Array.fold_left
              (fun acc md ->
                let drift =
                  List.fold_left
                    (fun s (i, d) ->
                      match List.assoc_opt i terms with
                      | Some k -> s + (k * d)
                      | None -> s)
                    0 md.delta
                in
                if drift = 0 then acc
                else (md.activity, md.case, drift) :: acc)
              [] modes
            |> List.sort_uniq Stdlib.compare
          in
          {
            lr_name = l.law_name;
            lr_terms = terms;
            lr_value = value;
            lr_violations = violations;
            lr_how =
              (match space.Space.mode with
              | Space.Exhaustive -> "proven over the exhaustive mode set"
              | Space.Sampled ->
                  Printf.sprintf "validated against modes observed on %d \
                                  markings"
                    (List.length snapshots));
            lr_unproven = [];
          })
        laws
  in
  let structural_bound = Array.make n_int None in
  let apply_flow terms value =
    List.iter
      (fun (i, k) ->
        if k > 0 then begin
          let b = value / k in
          structural_bound.(i) <-
            Some
              (match structural_bound.(i) with
              | None -> b
              | Some x -> min x b)
        end)
      terms
  in
  List.iter (fun f -> apply_flow f.flow_terms f.flow_value) p_semiflows;
  List.iter
    (fun lr ->
      if
        lr.lr_violations = [] && lr.lr_unproven = []
        && List.for_all (fun (_, k) -> k >= 0) lr.lr_terms
      then apply_flow lr.lr_terms lr.lr_value)
    laws;
  if exact then
    Array.iteri
      (fun i b ->
        match b with
        | None -> ()
        | Some b ->
            structural_bound.(i) <-
              Some
                (match structural_bound.(i) with
                | None -> b
                | Some x -> min x b))
      (Symbolic.set_only_bounds model);
  (* A015: a resolved decrement that provably under-runs its place —
     the guard-pinned prior already goes negative, or the delta exceeds
     what the structural bound allows the place to hold. *)
  let a015 =
    List.filter_map
      (fun (act, case, i, d, prior) ->
        let fire, why =
          match prior with
          | Some pv ->
              ( pv + d < 0,
                Printf.sprintf "guard pins it at %d and the delta is %d" pv d )
          | None -> (
              match structural_bound.(i) with
              | Some b ->
                  ( b < -d,
                    Printf.sprintf
                      "the delta is %d but its structural bound is %d" d b )
              | None -> (false, ""))
        in
        if fire then
          Some
            (Diagnostic.v ~code:Diagnostic.negative_capable
               ~severity:Diagnostic.Warning
               ~source:(Diagnostic.Place place_names.(i))
               (Printf.sprintf "%s case %d can drive it negative: %s" act case
                  why))
        else None)
      extra.ex_decs
  in
  {
    incidence = (if exact then Exact else Observed);
    space_mode = space.Space.mode;
    n_markings = Space.n_markings space;
    n_int;
    place_names;
    initial;
    modes;
    fired;
    active;
    constant;
    rank;
    invariant_dim = n_active - rank;
    p_basis;
    p_semiflows;
    t_semiflows;
    flows_skipped;
    laws;
    observed_max;
    structural_bound;
    unresolved = extra.ex_unresolved;
    ir_diags = extra.ex_dead @ a015;
  }

let verified_nonneg lr =
  lr.lr_violations = [] && lr.lr_unproven = []
  && List.for_all (fun (_, k) -> k >= 0) lr.lr_terms

let covered t i =
  (not (List.mem i t.active))
  || t.structural_bound.(i) <> None
  || List.exists (fun f -> List.mem_assoc i f.flow_terms) t.p_semiflows
  || List.exists
       (fun lr ->
         verified_nonneg lr
         && match List.assoc_opt i lr.lr_terms with
            | Some k -> k > 0
            | None -> false)
       t.laws

let sampled_fallbacks t =
  let incid =
    match t.incidence with
    | Exact -> []
    | Observed ->
        [ "incidence observed by firing closure effects on sampled markings" ]
  in
  incid
  @ List.filter_map
      (fun lr ->
        if lr.lr_unproven = [] then None
        else
          Some
            (Printf.sprintf
               "law %S: symbolic proof incomplete, validated on markings only"
               lr.lr_name))
      t.laws

(* {2 Diagnostics} *)

let diagnostics t =
  let out = ref [] in
  let n_acts = Array.length t.fired in
  let has_mode = Array.make n_acts false in
  let all_noop = Array.make n_acts true in
  let name = Array.make n_acts "" in
  Array.iter
    (fun md ->
      has_mode.(md.act_id) <- true;
      name.(md.act_id) <- md.activity;
      if md.delta <> [] || md.float_delta then all_noop.(md.act_id) <- false)
    t.modes;
  for id = 0 to n_acts - 1 do
    if has_mode.(id) && all_noop.(id) then
      out :=
        Diagnostic.v ~code:Diagnostic.dead_effect
          ~severity:Diagnostic.Warning
          ~source:(Diagnostic.Activity name.(id))
          "every observed firing leaves the marking unchanged (dead effect)"
        :: !out
  done;
  List.iter
    (fun lr ->
      List.iter
        (fun (act, case, drift) ->
          out :=
            Diagnostic.v ~code:Diagnostic.invariant_violated
              ~severity:Diagnostic.Error
              ~source:(Diagnostic.Activity act)
              (Printf.sprintf
                 "case %d effect changes declared invariant %S by %+d" case
                 lr.lr_name drift)
            :: !out)
        lr.lr_violations)
    t.laws;
  (* A010: never in exhaustive space mode — the walk itself bounds
     every place. In exact mode an uncovered place warns only when the
     IR proves an increasing delta; a place that is merely written with
     an unresolved delta gets an informational note. *)
  if t.space_mode = Space.Sampled && t.flows_skipped = None then
    List.iter
      (fun i ->
        if not (covered t i) then begin
          let increasing =
            Array.exists
              (fun md -> List.exists (fun (j, d) -> j = i && d > 0) md.delta)
              t.modes
          in
          match t.incidence with
          | Observed ->
              if increasing then
                out :=
                  Diagnostic.v ~code:Diagnostic.unbounded_place
                    ~severity:Diagnostic.Warning
                    ~source:(Diagnostic.Place t.place_names.(i))
                    "no covering P-semiflow and some effect increases it; \
                     sampled exploration cannot bound it (potentially \
                     unbounded)"
                  :: !out
          | Exact ->
              if increasing then
                out :=
                  Diagnostic.v ~code:Diagnostic.unbounded_place
                    ~severity:Diagnostic.Warning
                    ~source:(Diagnostic.Place t.place_names.(i))
                    "no covering P-semiflow or structural bound and the \
                     effect IR shows an increasing delta (potentially \
                     unbounded)"
                  :: !out
              else if List.mem i t.unresolved then
                out :=
                  Diagnostic.v ~code:Diagnostic.unbounded_place
                    ~severity:Diagnostic.Info
                    ~source:(Diagnostic.Place t.place_names.(i))
                    "written with a statically unresolved delta and not \
                     covered by any semiflow or bound; boundedness unknown"
                  :: !out
        end)
      t.active;
  t.ir_diags @ !out

(* {2 Rendering} *)

let pp_terms ppf (names, terms) =
  List.iteri
    (fun k (i, coeff) ->
      if k > 0 then Format.fprintf ppf " + ";
      if coeff <> 1 then Format.fprintf ppf "%d*" coeff;
      Format.fprintf ppf "%s" names.(i))
    terms

let pp ppf t =
  (match t.incidence with
  | Exact ->
      Format.fprintf ppf
        "structural certificate (exact: incidence derived symbolically \
         from the effect IR; %d markings sampled for validation)@."
        t.n_markings
  | Observed ->
      let mode_s, verb =
        match t.space_mode with
        | Space.Exhaustive -> ("exhaustive", "proven over all")
        | Space.Sampled -> ("sampled", "validated on")
      in
      Format.fprintf ppf
        "structural certificate (%s: incidence %s %d markings)@." mode_s verb
        t.n_markings);
  (match t.unresolved with
  | [] -> ()
  | us ->
      Format.fprintf ppf
        "  statically unresolved places (excluded from semiflows):";
      List.iter (fun i -> Format.fprintf ppf " %s" t.place_names.(i)) us;
      Format.fprintf ppf "@.");
  Format.fprintf ppf
    "  int places: %d (%d active, %d constant); modes: %d; rank %d; \
     independent P-invariants: %d@."
    t.n_int (List.length t.active)
    (List.length t.constant)
    (Array.length t.modes) t.rank t.invariant_dim;
  (match t.flows_skipped with
  | Some why -> Format.fprintf ppf "  semiflow enumeration skipped: %s@." why
  | None ->
      (match t.p_semiflows with
      | [] -> Format.fprintf ppf "  P-semiflows: none@."
      | fs ->
          let n = List.length fs in
          let shown = List.filteri (fun k _ -> k < 16) fs in
          Format.fprintf ppf "  P-semiflows (conserved weighted sums, %d):@."
            n;
          List.iter
            (fun f ->
              Format.fprintf ppf "    %a = %d@." pp_terms
                (t.place_names, f.flow_terms)
                f.flow_value)
            shown;
          if n > List.length shown then
            Format.fprintf ppf "    ... and %d more (see the JSON report)@."
              (n - List.length shown));
      match t.t_semiflows with
      | [] -> Format.fprintf ppf "  T-semiflows: none@."
      | ts ->
          let labels = Array.map (fun md -> md.label) t.modes in
          let n = List.length ts in
          let shown = List.filteri (fun k _ -> k < 16) ts in
          Format.fprintf ppf
            "  T-semiflows (firing counts with zero net effect, %d):@." n;
          List.iter
            (fun tf ->
              Format.fprintf ppf "    %a@." pp_terms (labels, tf))
            shown;
          if n > List.length shown then
            Format.fprintf ppf "    ... and %d more (see the JSON report)@."
              (n - List.length shown));
  (match t.laws with
  | [] -> ()
  | laws ->
      Format.fprintf ppf "  declared invariants:@.";
      List.iter
        (fun lr ->
          if lr.lr_violations = [] then
            Format.fprintf ppf "    %s: %a = %d — holds (%s)@." lr.lr_name
              pp_terms
              (t.place_names, lr.lr_terms)
              lr.lr_value lr.lr_how
          else begin
            Format.fprintf ppf "    %s: VIOLATED@." lr.lr_name;
            List.iter
              (fun (act, case, drift) ->
                Format.fprintf ppf "      %s (case %d) drifts it by %+d@." act
                  case drift)
              lr.lr_violations
          end;
          List.iter
            (fun (act, case, why) ->
              Format.fprintf ppf "      unproven for %s (case %d): %s@." act
                case why)
            lr.lr_unproven)
        laws);
  let bounded =
    List.filter (fun i -> t.structural_bound.(i) <> None) t.active
  in
  match (t.space_mode, bounded) with
  | Space.Exhaustive, _ ->
      Format.fprintf ppf
        "  boundedness: every place is bounded by exhaustion of the \
         reachable space@."
  | Space.Sampled, [] -> ()
  | Space.Sampled, bounded ->
      let n = List.length bounded in
      let shown = List.filteri (fun k _ -> k < 12) bounded in
      Format.fprintf ppf "  structural place bounds (%d):@." n;
      List.iter
        (fun i ->
          match t.structural_bound.(i) with
          | Some b ->
              Format.fprintf ppf "    %s <= %d (observed max %d)@."
                t.place_names.(i) b t.observed_max.(i)
          | None -> ())
        shown;
      if n > List.length shown then
        Format.fprintf ppf "    ... and %d more (see the JSON report)@."
          (n - List.length shown)

let to_json t =
  let open Report.Json in
  let terms_json names terms =
    Arr
      (List.map
         (fun (i, k) ->
           Obj [ ("name", Str names.(i)); ("coeff", int k) ])
         terms)
  in
  let labels = Array.map (fun md -> md.label) t.modes in
  Obj
    [
      ( "incidence",
        Str (match t.incidence with Exact -> "exact" | Observed -> "observed")
      );
      ( "mode",
        Str
          (match t.space_mode with
          | Space.Exhaustive -> "exhaustive"
          | Space.Sampled -> "sampled") );
      ("markings", int t.n_markings);
      ( "unresolved_places",
        Arr (List.map (fun i -> Str t.place_names.(i)) t.unresolved) );
      ("int_places", int t.n_int);
      ("active_places", int (List.length t.active));
      ("constant_places", int (List.length t.constant));
      ("modes", int (Array.length t.modes));
      ("rank", int t.rank);
      ("invariant_dimension", int t.invariant_dim);
      ( "p_semiflows",
        Arr
          (List.map
             (fun f ->
               Obj
                 [
                   ("terms", terms_json t.place_names f.flow_terms);
                   ("value", int f.flow_value);
                 ])
             t.p_semiflows) );
      ( "t_semiflows",
        Arr
          (List.map (fun tf -> terms_json labels tf) t.t_semiflows) );
      ( "flows_skipped",
        match t.flows_skipped with None -> Null | Some why -> Str why );
      ( "invariant_basis",
        match t.p_basis with
        | None -> Null
        | Some basis ->
            Arr
              (List.map
                 (fun terms ->
                   Arr
                     (List.map
                        (fun (i, r) ->
                          Obj
                            [
                              ("name", Str t.place_names.(i));
                              ("num", int r.Rat.num);
                              ("den", int r.Rat.den);
                            ])
                        terms))
                 basis) );
      ( "declared",
        Arr
          (List.map
             (fun lr ->
               Obj
                 [
                   ("name", Str lr.lr_name);
                   ("terms", terms_json t.place_names lr.lr_terms);
                   ("value", int lr.lr_value);
                   ("holds", Bool (lr.lr_violations = []));
                   ("how", Str lr.lr_how);
                   ( "unproven",
                     Arr
                       (List.map
                          (fun (act, case, why) ->
                            Obj
                              [
                                ("activity", Str act);
                                ("case", int case);
                                ("reason", Str why);
                              ])
                          lr.lr_unproven) );
                   ( "violations",
                     Arr
                       (List.map
                          (fun (act, case, drift) ->
                            Obj
                              [
                                ("activity", Str act);
                                ("case", int case);
                                ("drift", int drift);
                              ])
                          lr.lr_violations) );
                 ])
             t.laws) );
      ( "bounds",
        Arr
          (List.filter_map
             (fun i ->
               match (t.space_mode, t.structural_bound.(i)) with
               | Space.Sampled, None -> None
               | _, sb ->
                   Some
                     (Obj
                        [
                          ("name", Str t.place_names.(i));
                          ( "structural",
                            match sb with None -> Null | Some b -> int b );
                          ("observed", int t.observed_max.(i));
                        ]))
             t.active) );
    ]

(* {2 Runtime guard} *)

let guard ~laws model =
  let m0 = San.Model.initial_marking model in
  let compiled =
    List.map
      (fun l ->
        let expect =
          List.fold_left
            (fun s (p, k) -> s + (k * San.Marking.get m0 p))
            0 l.law_terms
        in
        (l.law_name, l.law_terms, expect))
      laws
  in
  fun m ->
    List.iter
      (fun (name, terms, expect) ->
        let got =
          List.fold_left
            (fun s (p, k) -> s + (k * San.Marking.get m p))
            0 terms
        in
        if got <> expect then
          raise
            (Invariant_violation
               (Printf.sprintf "invariant %S violated: expected %d, got %d"
                  name expect got)))
      compiled
