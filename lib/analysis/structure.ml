type law = {
  law_name : string;
  law_terms : (San.Place.t * int) list;
}

type mode = {
  act_id : int;
  activity : string;
  case : int;
  label : string;
  delta : (int * int) list;
  float_delta : bool;
}

type flow = { flow_terms : (int * int) list; flow_value : int }
type tflow = (int * int) list

type law_report = {
  lr_name : string;
  lr_terms : (int * int) list;
  lr_value : int;
  lr_violations : (string * int * int) list;
}

type t = {
  space_mode : Space.mode;
  n_markings : int;
  n_int : int;
  place_names : string array;
  initial : int array;
  modes : mode array;
  fired : bool array;
  active : int list;
  constant : int list;
  rank : int;
  invariant_dim : int;
  p_basis : (int * Rat.t) list list option;
  p_semiflows : flow list;
  t_semiflows : tflow list;
  flows_skipped : string option;
  laws : law_report list;
  observed_max : int array;
  structural_bound : int option array;
}

exception Invariant_violation of string

let rec igcd a b = if b = 0 then a else igcd b (a mod b)

(* {2 Mode extraction}

   Fire every enabled (activity, case) pair on a copy of every marking
   in the space — the same firing discipline as [Passes.gather] — and
   collect the distinct net deltas. *)

let extract_modes (space : Space.t) =
  let model = space.Space.model in
  let acts = San.Model.activities model in
  let n_acts = Array.length acts in
  let fired = Array.make n_acts false in
  let seen = Hashtbl.create 64 in
  let ctx = space.Space.ctx in
  List.iter
    (fun m ->
      let stable = Ctmc.Walker.enabled_instantaneous model m = [] in
      Array.iter
        (fun (a : San.Activity.t) ->
          if
            a.enabled m && (stable || San.Activity.is_instantaneous a)
          then begin
            let weights =
              if Array.length a.cases > 1 then
                Array.map
                  (fun (c : San.Activity.case) -> c.case_weight m)
                  a.cases
              else [| 1.0 |]
            in
            Array.iteri
              (fun case (c : San.Activity.case) ->
                if weights.(case) > 0.0 then begin
                  let mc = San.Marking.copy m in
                  match c.effect ctx mc with
                  | () ->
                      fired.(a.id) <- true;
                      let delta = San.Marking.diff ~before:m mc in
                      let fd = San.Marking.float_changed ~before:m mc in
                      Hashtbl.replace seen (a.id, case, delta, fd) ()
                  | exception Invalid_argument _ ->
                      (* Negative marking: an A003, reported by the
                         negative-write pass; no mode to record. *)
                      ()
                end)
              a.cases
          end)
        acts)
    space.Space.markings;
  let keys =
    Hashtbl.fold (fun k () acc -> k :: acc) seen []
    |> List.sort Stdlib.compare
  in
  (* Label modes uniquely: activity name, "/cN" when the activity has
     several cases, "/vN" when one case produced several deltas. *)
  let variants = Hashtbl.create 16 in
  List.iter
    (fun (id, case, _, _) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt variants (id, case)) in
      Hashtbl.replace variants (id, case) (n + 1))
    keys;
  let ordinal = Hashtbl.create 16 in
  let modes =
    List.map
      (fun (id, case, delta, fd) ->
        let a = acts.(id) in
        let label = a.San.Activity.name in
        let label =
          if Array.length a.San.Activity.cases > 1 then
            Printf.sprintf "%s/c%d" label case
          else label
        in
        let label =
          if Hashtbl.find variants (id, case) > 1 then begin
            let n =
              Option.value ~default:0 (Hashtbl.find_opt ordinal (id, case))
            in
            Hashtbl.replace ordinal (id, case) (n + 1);
            Printf.sprintf "%s/v%d" label n
          end
          else label
        in
        {
          act_id = id;
          activity = a.San.Activity.name;
          case;
          label;
          delta;
          float_delta = fd;
        })
      keys
  in
  (Array.of_list modes, fired)

(* {2 Rank and rational nullspace basis}

   Sparse rational Gaussian elimination over the mode rows. Rows are
   [(place index, coefficient)] lists, ascending, zero-free. *)

let row_sub_scaled r c p =
  (* [r - c * p], both rows sorted by index. *)
  let rec go r p =
    match (r, p) with
    | [], [] -> []
    | r, [] -> r
    | [], (j, v) :: p -> (j, Rat.neg (Rat.mul c v)) :: go [] p
    | (i, a) :: r', (j, v) :: p' ->
        if i < j then (i, a) :: go r' p
        else if j < i then (j, Rat.neg (Rat.mul c v)) :: go r p'
        else
          let x = Rat.sub a (Rat.mul c v) in
          if Rat.is_zero x then go r' p' else (i, x) :: go r' p'
  in
  go r p

let normalize_row = function
  | [] -> []
  | (_, lead) :: _ as row -> List.map (fun (i, x) -> (i, Rat.div x lead)) row

let rank_and_basis ~max_basis_places ~active modes =
  let pivots = Hashtbl.create 64 in
  let rank = ref 0 in
  let rec reduce row =
    match row with
    | [] -> ()
    | (j, c) :: _ -> (
        match Hashtbl.find_opt pivots j with
        | Some prow -> reduce (row_sub_scaled row c prow)
        | None ->
            Hashtbl.add pivots j (normalize_row row);
            incr rank)
  in
  Array.iter
    (fun md ->
      reduce (List.map (fun (i, d) -> (i, Rat.of_int d)) md.delta))
    modes;
  let rank = !rank in
  let basis =
    if List.length active > max_basis_places then None
    else begin
      let pcols =
        Hashtbl.fold (fun k _ acc -> k :: acc) pivots []
        |> List.sort Int.compare |> Array.of_list
      in
      let rows = Array.map (Hashtbl.find pivots) pcols in
      (* Back-substitute to reduced row-echelon form. *)
      for i = Array.length rows - 1 downto 0 do
        for k = 0 to i - 1 do
          match List.assoc_opt pcols.(i) rows.(k) with
          | None -> ()
          | Some c -> rows.(k) <- row_sub_scaled rows.(k) c rows.(i)
        done
      done;
      let is_pivot i = Array.exists (fun p -> p = i) pcols in
      let free = List.filter (fun i -> not (is_pivot i)) active in
      (* One basis vector of the left nullspace per free column: the
         invariant y with y_free = 1 and y_pivot = -entry. *)
      Some
        (List.map
           (fun f ->
             let terms = ref [ (f, Rat.one) ] in
             Array.iteri
               (fun i p ->
                 match List.assoc_opt f rows.(i) with
                 | None -> ()
                 | Some e -> terms := (p, Rat.neg e) :: !terms)
               pcols;
             List.sort (fun (a, _) (b, _) -> Int.compare a b) !terms)
           free)
    end
  in
  (rank, basis)

(* {2 Farkas' algorithm}

   Minimal non-negative integer solutions of [rows . x = 0], column by
   column: at each step every row with a zero in the chosen column
   survives, and every (positive, negative) row pair contributes their
   cancelling positive combination. The [y] part starts as the
   identity, so at the end it holds the semiflows. Row growth is
   capped; exceeding the cap aborts the enumeration (reported, never
   silent). *)

type frow = { c : int array; y : (int * int) list }

let normalize_frow r =
  let g = Array.fold_left (fun g v -> igcd g (abs v)) 0 r.c in
  let g = List.fold_left (fun g (_, v) -> igcd g (abs v)) g r.y in
  if g <= 1 then r
  else
    {
      c = Array.map (fun v -> v / g) r.c;
      y = List.map (fun (i, v) -> (i, v / g)) r.y;
    }

let merge_y ~la a ~lb b =
  let rec go a b =
    match (a, b) with
    | [], [] -> []
    | (i, v) :: a', [] -> (i, la * v) :: go a' []
    | [], (j, w) :: b' -> (j, lb * w) :: go [] b'
    | (i, v) :: a', (j, w) :: b' ->
        if i < j then (i, la * v) :: go a' b
        else if j < i then (j, lb * w) :: go a b'
        else (i, (la * v) + (lb * w)) :: go a' b'
  in
  go a b

let farkas ~n_cols ~max_rows rows =
  let remaining = ref (List.init n_cols Fun.id) in
  let rows = ref rows in
  let aborted = ref None in
  while !remaining <> [] && !aborted = None do
    let score j =
      List.fold_left
        (fun (p, n) r ->
          if r.c.(j) > 0 then (p + 1, n)
          else if r.c.(j) < 0 then (p, n + 1)
          else (p, n))
        (0, 0) !rows
    in
    let best, _ =
      List.fold_left
        (fun (bj, bs) j ->
          let p, n = score j in
          let s = p * n in
          if s < bs then (j, s) else (bj, bs))
        (List.hd !remaining, max_int)
        !remaining
    in
    remaining := List.filter (fun j -> j <> best) !remaining;
    let zeros, pos, neg =
      List.fold_left
        (fun (z, p, n) r ->
          if r.c.(best) = 0 then (r :: z, p, n)
          else if r.c.(best) > 0 then (z, r :: p, n)
          else (z, p, r :: n))
        ([], [], []) !rows
    in
    let combos = ref [] in
    let count = ref (List.length zeros) in
    (try
       List.iter
         (fun rp ->
           List.iter
             (fun rn ->
               incr count;
               if !count > max_rows then raise Exit;
               let a = rp.c.(best) and b = rn.c.(best) in
               let g = igcd a (-b) in
               let la = -b / g and lb = a / g in
               let c =
                 Array.init n_cols (fun j ->
                     (la * rp.c.(j)) + (lb * rn.c.(j)))
               in
               combos :=
                 normalize_frow { c; y = merge_y ~la rp.y ~lb rn.y }
                 :: !combos)
             neg)
         pos;
       rows :=
         List.sort_uniq Stdlib.compare (List.rev_append !combos zeros)
     with Exit ->
       aborted :=
         Some
           (Printf.sprintf "Farkas row count exceeded the %d cap" max_rows))
  done;
  match !aborted with
  | Some why -> Error why
  | None ->
      (* Keep minimal-support solutions only. *)
      let support y = List.map fst y in
      let rec subset a b =
        match (a, b) with
        | [], _ -> true
        | _, [] -> false
        | x :: a', y :: b' ->
            if x = y then subset a' b'
            else if y < x then subset a b'
            else false
      in
      let ys = List.sort_uniq Stdlib.compare (List.map (fun r -> r.y) !rows) in
      Ok
        (List.filter
           (fun y ->
             let s = support y in
             not
               (List.exists
                  (fun y' -> y' <> y && subset (support y') s && support y' <> s)
                  ys))
           ys)

(* {2 The analysis} *)

let analyse ?(laws = []) ?(max_flow_modes = 512) ?(max_flow_rows = 4096)
    ?(max_basis_places = 64) (space : Space.t) =
  let model = space.Space.model in
  let modes, fired = extract_modes space in
  let initial =
    San.Marking.int_snapshot (San.Model.initial_marking model)
  in
  let n_int = Array.length initial in
  let place_names = Array.make n_int "" in
  Array.iter
    (fun p -> place_names.(San.Place.index p) <- San.Place.name p)
    (San.Model.places model);
  let touched = Array.make n_int false in
  Array.iter
    (fun md -> List.iter (fun (i, _) -> touched.(i) <- true) md.delta)
    modes;
  let active = ref [] and constant = ref [] in
  for i = n_int - 1 downto 0 do
    if touched.(i) then active := i :: !active else constant := i :: !constant
  done;
  let active = !active and constant = !constant in
  let snapshots =
    List.map San.Marking.int_snapshot space.Space.markings
  in
  let observed_max = Array.copy initial in
  List.iter
    (fun snap ->
      Array.iteri
        (fun i v -> if v > observed_max.(i) then observed_max.(i) <- v)
        snap)
    snapshots;
  let rank, p_basis = rank_and_basis ~max_basis_places ~active modes in
  let n_active = List.length active in
  let n_modes = Array.length modes in
  let flows_skipped, p_semiflows, t_semiflows =
    if n_modes > max_flow_modes then
      ( Some
          (Printf.sprintf "%d modes exceed the %d semiflow-enumeration cap"
             n_modes max_flow_modes),
        [],
        [] )
    else if n_active > max_flow_rows then
      ( Some
          (Printf.sprintf "%d active places exceed the %d row cap" n_active
             max_flow_rows),
        [],
        [] )
    else begin
      let col_of = Array.make n_int (-1) in
      List.iteri (fun j i -> col_of.(i) <- j) active;
      (* P-semiflows: one row per active place over the mode columns. *)
      let prows =
        List.map
          (fun i ->
            let c = Array.make n_modes 0 in
            Array.iteri
              (fun j md ->
                match List.assoc_opt i md.delta with
                | Some d -> c.(j) <- d
                | None -> ())
              modes;
            { c; y = [ (i, 1) ] })
          active
      in
      (* T-semiflows: one row per marking-changing mode over the active
         place columns (modes with an empty delta are trivially
         repetitive and excluded as noise). *)
      let trows = ref [] in
      Array.iteri
        (fun pos md ->
          if md.delta <> [] then begin
            let c = Array.make n_active 0 in
            List.iter (fun (i, d) -> c.(col_of.(i)) <- d) md.delta;
            trows := { c; y = [ (pos, 1) ] } :: !trows
          end)
        modes;
      let trows = List.rev !trows in
      match
        ( farkas ~n_cols:n_modes ~max_rows:max_flow_rows prows,
          farkas ~n_cols:n_active ~max_rows:max_flow_rows trows )
      with
      | Ok ps, Ok ts ->
          let flows =
            List.map
              (fun y ->
                {
                  flow_terms = y;
                  flow_value =
                    List.fold_left
                      (fun s (i, k) -> s + (k * initial.(i)))
                      0 y;
                })
              ps
          in
          (* Under sampling the observed modes may be incomplete, so a
             computed semiflow can be spurious: require every flow to
             hold on every collected (reachable) marking, which refutes
             and drops the spurious ones. Exhaustively extracted flows
             pass by construction. *)
          let flows =
            List.filter
              (fun f ->
                List.for_all
                  (fun snap ->
                    List.fold_left
                      (fun s (i, k) -> s + (k * snap.(i)))
                      0 f.flow_terms
                    = f.flow_value)
                  snapshots)
              flows
          in
          (None, flows, ts)
      | Error why, _ | _, Error why -> (Some why, [], [])
    end
  in
  let laws =
    List.map
      (fun l ->
        let terms =
          List.map (fun (p, k) -> (San.Place.index p, k)) l.law_terms
          |> List.sort Stdlib.compare
        in
        let value =
          List.fold_left (fun s (i, k) -> s + (k * initial.(i))) 0 terms
        in
        let violations =
          Array.fold_left
            (fun acc md ->
              let drift =
                List.fold_left
                  (fun s (i, d) ->
                    match List.assoc_opt i terms with
                    | Some k -> s + (k * d)
                    | None -> s)
                  0 md.delta
              in
              if drift = 0 then acc
              else (md.activity, md.case, drift) :: acc)
            [] modes
          |> List.sort_uniq Stdlib.compare
        in
        {
          lr_name = l.law_name;
          lr_terms = terms;
          lr_value = value;
          lr_violations = violations;
        })
      laws
  in
  let structural_bound = Array.make n_int None in
  let apply_flow terms value =
    List.iter
      (fun (i, k) ->
        if k > 0 then begin
          let b = value / k in
          structural_bound.(i) <-
            Some
              (match structural_bound.(i) with
              | None -> b
              | Some x -> min x b)
        end)
      terms
  in
  List.iter (fun f -> apply_flow f.flow_terms f.flow_value) p_semiflows;
  List.iter
    (fun lr ->
      if
        lr.lr_violations = []
        && List.for_all (fun (_, k) -> k >= 0) lr.lr_terms
      then apply_flow lr.lr_terms lr.lr_value)
    laws;
  {
    space_mode = space.Space.mode;
    n_markings = Space.n_markings space;
    n_int;
    place_names;
    initial;
    modes;
    fired;
    active;
    constant;
    rank;
    invariant_dim = n_active - rank;
    p_basis;
    p_semiflows;
    t_semiflows;
    flows_skipped;
    laws;
    observed_max;
    structural_bound;
  }

let verified_nonneg lr =
  lr.lr_violations = [] && List.for_all (fun (_, k) -> k >= 0) lr.lr_terms

let covered t i =
  (not (List.mem i t.active))
  || List.exists (fun f -> List.mem_assoc i f.flow_terms) t.p_semiflows
  || List.exists
       (fun lr ->
         verified_nonneg lr
         && match List.assoc_opt i lr.lr_terms with
            | Some k -> k > 0
            | None -> false)
       t.laws

(* {2 Diagnostics} *)

let diagnostics t =
  let out = ref [] in
  let n_acts = Array.length t.fired in
  let has_mode = Array.make n_acts false in
  let all_noop = Array.make n_acts true in
  let name = Array.make n_acts "" in
  Array.iter
    (fun md ->
      has_mode.(md.act_id) <- true;
      name.(md.act_id) <- md.activity;
      if md.delta <> [] || md.float_delta then all_noop.(md.act_id) <- false)
    t.modes;
  for id = 0 to n_acts - 1 do
    if has_mode.(id) && all_noop.(id) then
      out :=
        Diagnostic.v ~code:Diagnostic.dead_effect
          ~severity:Diagnostic.Warning
          ~source:(Diagnostic.Activity name.(id))
          "every observed firing leaves the marking unchanged (dead effect)"
        :: !out
  done;
  List.iter
    (fun lr ->
      List.iter
        (fun (act, case, drift) ->
          out :=
            Diagnostic.v ~code:Diagnostic.invariant_violated
              ~severity:Diagnostic.Error
              ~source:(Diagnostic.Activity act)
              (Printf.sprintf
                 "case %d effect changes declared invariant %S by %+d" case
                 lr.lr_name drift)
            :: !out)
        lr.lr_violations)
    t.laws;
  if t.space_mode = Space.Sampled && t.flows_skipped = None then
    List.iter
      (fun i ->
        let increasing =
          Array.exists
            (fun md -> List.exists (fun (j, d) -> j = i && d > 0) md.delta)
            t.modes
        in
        if increasing && not (covered t i) then
          out :=
            Diagnostic.v ~code:Diagnostic.unbounded_place
              ~severity:Diagnostic.Warning
              ~source:(Diagnostic.Place t.place_names.(i))
              "no covering P-semiflow and some effect increases it; sampled \
               exploration cannot bound it (potentially unbounded)"
            :: !out)
      t.active;
  !out

(* {2 Rendering} *)

let pp_terms ppf (names, terms) =
  List.iteri
    (fun k (i, coeff) ->
      if k > 0 then Format.fprintf ppf " + ";
      if coeff <> 1 then Format.fprintf ppf "%d*" coeff;
      Format.fprintf ppf "%s" names.(i))
    terms

let pp ppf t =
  let mode_s, verb =
    match t.space_mode with
    | Space.Exhaustive -> ("exhaustive", "proven over all")
    | Space.Sampled -> ("sampled", "validated on")
  in
  Format.fprintf ppf "structural certificate (%s: incidence %s %d markings)@."
    mode_s verb t.n_markings;
  Format.fprintf ppf
    "  int places: %d (%d active, %d constant); modes: %d; rank %d; \
     independent P-invariants: %d@."
    t.n_int (List.length t.active)
    (List.length t.constant)
    (Array.length t.modes) t.rank t.invariant_dim;
  (match t.flows_skipped with
  | Some why -> Format.fprintf ppf "  semiflow enumeration skipped: %s@." why
  | None ->
      (match t.p_semiflows with
      | [] -> Format.fprintf ppf "  P-semiflows: none@."
      | fs ->
          let n = List.length fs in
          let shown = List.filteri (fun k _ -> k < 16) fs in
          Format.fprintf ppf "  P-semiflows (conserved weighted sums, %d):@."
            n;
          List.iter
            (fun f ->
              Format.fprintf ppf "    %a = %d@." pp_terms
                (t.place_names, f.flow_terms)
                f.flow_value)
            shown;
          if n > List.length shown then
            Format.fprintf ppf "    ... and %d more (see the JSON report)@."
              (n - List.length shown));
      match t.t_semiflows with
      | [] -> Format.fprintf ppf "  T-semiflows: none@."
      | ts ->
          let labels = Array.map (fun md -> md.label) t.modes in
          let n = List.length ts in
          let shown = List.filteri (fun k _ -> k < 16) ts in
          Format.fprintf ppf
            "  T-semiflows (firing counts with zero net effect, %d):@." n;
          List.iter
            (fun tf ->
              Format.fprintf ppf "    %a@." pp_terms (labels, tf))
            shown;
          if n > List.length shown then
            Format.fprintf ppf "    ... and %d more (see the JSON report)@."
              (n - List.length shown));
  (match t.laws with
  | [] -> ()
  | laws ->
      Format.fprintf ppf "  declared invariants:@.";
      List.iter
        (fun lr ->
          if lr.lr_violations = [] then
            Format.fprintf ppf "    %s: %a = %d — holds across all %d modes@."
              lr.lr_name pp_terms
              (t.place_names, lr.lr_terms)
              lr.lr_value (Array.length t.modes)
          else begin
            Format.fprintf ppf "    %s: VIOLATED@." lr.lr_name;
            List.iter
              (fun (act, case, drift) ->
                Format.fprintf ppf "      %s (case %d) drifts it by %+d@." act
                  case drift)
              lr.lr_violations
          end)
        laws);
  let bounded =
    List.filter (fun i -> t.structural_bound.(i) <> None) t.active
  in
  match (t.space_mode, bounded) with
  | Space.Exhaustive, _ ->
      Format.fprintf ppf
        "  boundedness: every place is bounded by exhaustion of the \
         reachable space@."
  | Space.Sampled, [] -> ()
  | Space.Sampled, bounded ->
      let n = List.length bounded in
      let shown = List.filteri (fun k _ -> k < 12) bounded in
      Format.fprintf ppf "  structural place bounds (%d):@." n;
      List.iter
        (fun i ->
          match t.structural_bound.(i) with
          | Some b ->
              Format.fprintf ppf "    %s <= %d (observed max %d)@."
                t.place_names.(i) b t.observed_max.(i)
          | None -> ())
        shown;
      if n > List.length shown then
        Format.fprintf ppf "    ... and %d more (see the JSON report)@."
          (n - List.length shown)

let to_json t =
  let open Report.Json in
  let terms_json names terms =
    Arr
      (List.map
         (fun (i, k) ->
           Obj [ ("name", Str names.(i)); ("coeff", int k) ])
         terms)
  in
  let labels = Array.map (fun md -> md.label) t.modes in
  Obj
    [
      ( "mode",
        Str
          (match t.space_mode with
          | Space.Exhaustive -> "exhaustive"
          | Space.Sampled -> "sampled") );
      ("markings", int t.n_markings);
      ("int_places", int t.n_int);
      ("active_places", int (List.length t.active));
      ("constant_places", int (List.length t.constant));
      ("modes", int (Array.length t.modes));
      ("rank", int t.rank);
      ("invariant_dimension", int t.invariant_dim);
      ( "p_semiflows",
        Arr
          (List.map
             (fun f ->
               Obj
                 [
                   ("terms", terms_json t.place_names f.flow_terms);
                   ("value", int f.flow_value);
                 ])
             t.p_semiflows) );
      ( "t_semiflows",
        Arr
          (List.map (fun tf -> terms_json labels tf) t.t_semiflows) );
      ( "flows_skipped",
        match t.flows_skipped with None -> Null | Some why -> Str why );
      ( "invariant_basis",
        match t.p_basis with
        | None -> Null
        | Some basis ->
            Arr
              (List.map
                 (fun terms ->
                   Arr
                     (List.map
                        (fun (i, r) ->
                          Obj
                            [
                              ("name", Str t.place_names.(i));
                              ("num", int r.Rat.num);
                              ("den", int r.Rat.den);
                            ])
                        terms))
                 basis) );
      ( "declared",
        Arr
          (List.map
             (fun lr ->
               Obj
                 [
                   ("name", Str lr.lr_name);
                   ("terms", terms_json t.place_names lr.lr_terms);
                   ("value", int lr.lr_value);
                   ("holds", Bool (lr.lr_violations = []));
                   ( "violations",
                     Arr
                       (List.map
                          (fun (act, case, drift) ->
                            Obj
                              [
                                ("activity", Str act);
                                ("case", int case);
                                ("drift", int drift);
                              ])
                          lr.lr_violations) );
                 ])
             t.laws) );
      ( "bounds",
        Arr
          (List.filter_map
             (fun i ->
               match (t.space_mode, t.structural_bound.(i)) with
               | Space.Sampled, None -> None
               | _, sb ->
                   Some
                     (Obj
                        [
                          ("name", Str t.place_names.(i));
                          ( "structural",
                            match sb with None -> Null | Some b -> int b );
                          ("observed", int t.observed_max.(i));
                        ]))
             t.active) );
    ]

(* {2 Runtime guard} *)

let guard ~laws model =
  let m0 = San.Model.initial_marking model in
  let compiled =
    List.map
      (fun l ->
        let expect =
          List.fold_left
            (fun s (p, k) -> s + (k * San.Marking.get m0 p))
            0 l.law_terms
        in
        (l.law_name, l.law_terms, expect))
      laws
  in
  fun m ->
    List.iter
      (fun (name, terms, expect) ->
        let got =
          List.fold_left
            (fun s (p, k) -> s + (k * San.Marking.get m p))
            0 terms
        in
        if got <> expect then
          raise
            (Invariant_violation
               (Printf.sprintf "invariant %S violated: expected %d, got %d"
                  name expect got)))
      compiled
