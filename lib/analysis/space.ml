type mode = Exhaustive | Sampled

type t = {
  model : San.Model.t;
  mode : mode;
  markings : San.Marking.t list;
  n_stable : int;
  n_vanishing : int;
  ctx : San.Activity.ctx;
  loop : string option;
  truncated : bool;
  fallback : string option;
}

let n_markings t = List.length t.markings

let sampled ~runs ~horizon ~max_markings ~seed ~fallback ~loop model =
  let seen = Hashtbl.create 256 in
  let samples = ref [] in
  let count = ref 0 in
  let loop_msg = ref loop in
  let consider m =
    if !count < max_markings then begin
      let key = (San.Marking.int_snapshot m, San.Marking.float_snapshot m) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        samples := San.Marking.copy m :: !samples;
        incr count
      end
    end
  in
  (* The raw initial marking: on_init only reports it after t = 0
     stabilization, but the checker wants to evaluate the setup
     instantaneous activities too. *)
  consider (San.Model.initial_marking model);
  let root = Prng.Stream.create ~seed in
  for i = 0 to runs - 1 do
    let observer =
      {
        Sim.Observer.nop with
        on_init = (fun _ m -> consider m);
        on_fire = (fun _ _ _ m -> consider m);
        on_finish = (fun _ m -> consider m);
      }
    in
    let cfg = Sim.Executor.config ~max_inst_chain:10_000 ~horizon () in
    match
      Sim.Executor.run ~model ~config:cfg
        ~stream:(Prng.Stream.substream root i)
        ~observer ()
    with
    | (_ : Sim.Executor.outcome) -> ()
    | exception Sim.Executor.Stabilization_diverged msg ->
        if !loop_msg = None then loop_msg := Some msg
    | exception Invalid_argument _ -> ()
  done;
  {
    model;
    mode = Sampled;
    markings = List.rev !samples;
    n_stable = !count;
    n_vanishing = 0;
    ctx =
      { San.Activity.time = 0.0; stream = Some (Prng.Stream.substream root runs) };
    loop = !loop_msg;
    truncated = !count >= max_markings;
    fallback = Some fallback;
  }

let build ?(max_states = 200_000) ?(max_work = 25_000) ?(runs = 3)
    ?(horizon = 10.0) ?(max_markings = 500) ?(seed = 7L) model =
  let vanishing = ref [] in
  let n_vanishing = ref 0 in
  let seen_vanishing = Hashtbl.create 64 in
  let on_vanishing m (_ : San.Activity.t list) =
    if !n_vanishing < max_states then begin
      let k = Ctmc.Walker.key_of_marking m in
      if not (Hashtbl.mem seen_vanishing k) then begin
        Hashtbl.add seen_vanishing k ();
        vanishing := San.Marking.copy m :: !vanishing;
        incr n_vanishing
      end
    end
  in
  let fall fallback loop =
    sampled ~runs ~horizon ~max_markings ~seed ~fallback ~loop model
  in
  match Ctmc.Walker.reachable ~max_states ~max_work ~on_vanishing model with
  | keys ->
      let stable =
        Array.to_list (Array.map (Ctmc.Walker.restore model) keys)
      in
      {
        model;
        mode = Exhaustive;
        markings = stable @ List.rev !vanishing;
        n_stable = Array.length keys;
        n_vanishing = !n_vanishing;
        ctx = Ctmc.Walker.default_ctx;
        loop = None;
        truncated = false;
        fallback = None;
      }
  | exception Failure msg ->
      fall (Printf.sprintf "an effect draws randomness (%s)" msg) None
  | exception Ctmc.Walker.Too_many_states n ->
      fall (Printf.sprintf "state space exceeds %d markings" n) None
  | exception Ctmc.Walker.Work_budget n ->
      fall
        (Printf.sprintf
           "exhaustive walk exceeded its work budget (%d marking visits)" n)
        None
  | exception Ctmc.Walker.Vanishing_loop msg -> fall msg (Some msg)

let describe t =
  match t.mode with
  | Exhaustive ->
      Printf.sprintf "exhaustive: %d stable markings (+ %d vanishing)"
        t.n_stable t.n_vanishing
  | Sampled ->
      Printf.sprintf "sampled: %d distinct markings%s" t.n_stable
        (if t.truncated then ", truncated" else "")
