module E = San.Effect
module A = San.Activity
module P = San.Place
module J = Report.Json

type orbit = {
  ob_members : int list;
  ob_int_slots : int array array;
  ob_float_slots : int array array;
}

type break_ = { bk_copy_a : int; bk_copy_b : int; bk_reason : string }

type family = {
  fa_path : string;
  fa_copies : int;
  fa_depth : int;
  fa_orbits : orbit list;
  fa_witnesses : (int * int) list;
  fa_breaks : break_ list;
}

type report = {
  families : family list;
  pure : bool;
  blockers : string list;
  n_int : int;
  n_float : int;
}

exception Unverifiable of string

let truncate n s = if String.length s <= n then s else String.sub s 0 n ^ "..."

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let strip_prefix prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    String.sub s pl (String.length s - pl)
  else s

(* ------------------------------------------------------------------ *)
(* Declarative-readability scan: the verification below can only reason
   about what it can read. One closure anywhere and every certificate
   would be a guess, so the whole model must be pure IR. *)

let blockers_of model =
  let out = ref [] in
  let add name what = out := Printf.sprintf "activity %S: %s" name what :: !out in
  Array.iter
    (fun (a : A.t) ->
      (match a.A.timing with
      | A.Instantaneous -> ()
      | A.Timed { dist_ir = None; _ } ->
          add a.A.name "closure-only timing distribution"
      | A.Timed { dist_ir = Some _; _ } -> ());
      (match a.A.guard with
      | None -> add a.A.name "closure-only enabling predicate"
      | Some _ -> ());
      Array.iter
        (fun (c : A.case) ->
          (match c.A.weight_ir with
          | None -> add a.A.name "closure-only case weight"
          | Some _ -> ());
          if not (E.is_pure c.A.effect) then add a.A.name "opaque effect closure")
        a.A.cases)
    (San.Model.activities model);
  List.sort_uniq Stdlib.compare !out

(* ------------------------------------------------------------------ *)
(* Per-copy parameter signature: every Ctx.note binding in the copy's
   subtree, rendered relative to the copy root. The initial coloring of
   the refinement — copies with different parameters never share an
   orbit (and the first differing binding names the A018 reason). *)

let rec params_nodes (n : Compose.info) =
  List.map (fun (k, v) -> (n.Compose.path, k, v)) n.Compose.params
  @ List.concat_map params_nodes n.Compose.children

let params_sig (copy : Compose.info) =
  let prefix = copy.Compose.path ^ "." in
  List.map
    (fun (p, k, v) ->
      let rel = if p = copy.Compose.path then "" else strip_prefix prefix p in
      Printf.sprintf "%s:%s=%s" rel k v)
    (params_nodes copy)

(* ------------------------------------------------------------------ *)
(* Renaming: substitute place descriptors throughout an IR term. The
   substitution holds only the swapped slots; everything else maps to
   itself. Renamed descriptors carry the partner copy's names, so the
   pretty-printed shapes below compare renamed-vs-identity textually. *)

type sub = { si : (int, P.t) Hashtbl.t; sf : (int, P.fl) Hashtbl.t }

let id_sub = { si = Hashtbl.create 1; sf = Hashtbl.create 1 }

let map_ip sub p =
  match Hashtbl.find_opt sub.si (P.index p) with Some q -> q | None -> p

let map_fp sub p =
  match Hashtbl.find_opt sub.sf (P.findex p) with Some q -> q | None -> p

let rec r_ie sub (e : E.iexpr) : E.iexpr =
  match e with
  | E.Int _ -> e
  | E.Mark p -> E.Mark (map_ip sub p)
  | E.Add (a, b) -> E.Add (r_ie sub a, r_ie sub b)
  | E.Sub (a, b) -> E.Sub (r_ie sub a, r_ie sub b)
  | E.Mul (a, b) -> E.Mul (r_ie sub a, r_ie sub b)
  | E.Ind c -> E.Ind (r_cond sub c)

and r_cond sub (c : E.cond) : E.cond =
  match c with
  | E.Const _ -> c
  | E.Cmp (a, rel, b) -> E.Cmp (r_ie sub a, rel, r_ie sub b)
  | E.All cs -> E.All (List.map (r_cond sub) cs)
  | E.Any cs -> E.Any (List.map (r_cond sub) cs)
  | E.Not c -> E.Not (r_cond sub c)

let rec r_fe sub (e : E.fexpr) : E.fexpr =
  match e with
  | E.Flt _ -> e
  | E.FMark p -> E.FMark (map_fp sub p)
  | E.OfInt i -> E.OfInt (r_ie sub i)
  | E.FAdd (a, b) -> E.FAdd (r_fe sub a, r_fe sub b)
  | E.FSub (a, b) -> E.FSub (r_fe sub a, r_fe sub b)
  | E.FMul (a, b) -> E.FMul (r_fe sub a, r_fe sub b)
  | E.FDiv (a, b) -> E.FDiv (r_fe sub a, r_fe sub b)

let rec r_re sub (r : E.rexpr) : E.rexpr =
  match r with
  | E.RConst _ -> r
  | E.RExpr f -> E.RExpr (r_fe sub f)
  | E.RIf (c, a, b) -> E.RIf (r_cond sub c, r_re sub a, r_re sub b)

let r_op sub (op : E.op) : E.op =
  match op with
  | E.Set (p, e) -> E.Set (map_ip sub p, r_ie sub e)
  | E.Inc (p, e) -> E.Inc (map_ip sub p, r_ie sub e)
  | E.FSet (p, e) -> E.FSet (map_fp sub p, r_fe sub e)
  | E.FInc (p, e) -> E.FInc (map_fp sub p, r_fe sub e)

let rec r_eff sub (t : E.t) : E.t =
  match t with
  | E.Skip -> E.Skip
  | E.Ops ops -> E.Ops (List.map (r_op sub) ops)
  | E.Seq ts -> E.Seq (List.map (r_eff sub) ts)
  | E.If (c, a, b) -> E.If (r_cond sub c, r_eff sub a, r_eff sub b)
  | E.Pick bs -> E.Pick (List.map (fun (c, t) -> (r_cond sub c, r_eff sub t)) bs)
  | E.Checked { ir; _ } -> r_eff sub ir
  | E.Opaque o -> raise (Unverifiable ("opaque effect " ^ o.E.oname))

(* ------------------------------------------------------------------ *)
(* Normalization: canonicalize commutative structure so that two terms
   written in different (but equivalent) orders render identically.
   Only exactly-semantics-preserving rewrites are applied:

   - integer [Add]/[Mul] chains are flattened and sorted (exact);
   - [All]/[Any] conjunct lists are flattened and sorted (exact);
   - float [FAdd]/[FMul] swap their two operands into canonical order
     (IEEE-754 + and * are commutative bit-for-bit) but chains are
     NEVER reassociated — a verified rate is the bit-identical float
     program, which the lumped-vs-unlumped measure gates rely on;
   - [Pick] branches are order-free by semantics and sorted;
   - [Seq] is flattened and [Skip] dropped;
   - an [Ops] block is sorted only when its ops are pairwise
     independent (no op writes a place another op reads or writes) —
     otherwise journal order matters and is preserved. *)

let rec flat_add e acc =
  match e with E.Add (a, b) -> flat_add a (flat_add b acc) | e -> e :: acc

let rec flat_mul e acc =
  match e with E.Mul (a, b) -> flat_mul a (flat_mul b acc) | e -> e :: acc

let rebuild mk = function
  | [] -> assert false
  | x :: rest -> List.fold_left mk x rest

let rec n_ie (e : E.iexpr) : E.iexpr =
  match e with
  | E.Int _ | E.Mark _ -> e
  | E.Add _ ->
      flat_add e [] |> List.map n_ie
      |> List.sort Stdlib.compare
      |> rebuild (fun a b -> E.Add (a, b))
  | E.Mul _ ->
      flat_mul e [] |> List.map n_ie
      |> List.sort Stdlib.compare
      |> rebuild (fun a b -> E.Mul (a, b))
  | E.Sub (a, b) -> E.Sub (n_ie a, n_ie b)
  | E.Ind c -> E.Ind (n_cond c)

and n_cond (c : E.cond) : E.cond =
  let rec flat_all cs =
    List.concat_map (function E.All cs -> flat_all cs | c -> [ c ]) cs
  in
  let rec flat_any cs =
    List.concat_map (function E.Any cs -> flat_any cs | c -> [ c ]) cs
  in
  match c with
  | E.Const _ -> c
  | E.Cmp (a, rel, b) -> E.Cmp (n_ie a, rel, n_ie b)
  | E.All cs -> E.All (flat_all cs |> List.map n_cond |> List.sort Stdlib.compare)
  | E.Any cs -> E.Any (flat_any cs |> List.map n_cond |> List.sort Stdlib.compare)
  | E.Not c -> E.Not (n_cond c)

let comm mk a b = if Stdlib.compare a b <= 0 then mk a b else mk b a

let rec n_fe (e : E.fexpr) : E.fexpr =
  match e with
  | E.Flt _ | E.FMark _ -> e
  | E.OfInt i -> E.OfInt (n_ie i)
  | E.FAdd (a, b) -> comm (fun a b -> E.FAdd (a, b)) (n_fe a) (n_fe b)
  | E.FMul (a, b) -> comm (fun a b -> E.FMul (a, b)) (n_fe a) (n_fe b)
  | E.FSub (a, b) -> E.FSub (n_fe a, n_fe b)
  | E.FDiv (a, b) -> E.FDiv (n_fe a, n_fe b)

let rec n_re (r : E.rexpr) : E.rexpr =
  match r with
  | E.RConst _ -> r
  | E.RExpr f -> E.RExpr (n_fe f)
  | E.RIf (c, a, b) -> E.RIf (n_cond c, n_re a, n_re b)

let n_op (op : E.op) : E.op =
  match op with
  | E.Set (p, e) -> E.Set (p, n_ie e)
  | E.Inc (p, e) -> E.Inc (p, n_ie e)
  | E.FSet (p, e) -> E.FSet (p, n_fe e)
  | E.FInc (p, e) -> E.FInc (p, n_fe e)

let independent_ops ops =
  let rw op =
    let t = E.Ops [ op ] in
    ( Option.value (E.static_reads t) ~default:[],
      Option.value (E.static_writes t) ~default:[] )
  in
  let rws = List.mapi (fun i op -> (i, rw op)) ops in
  let disjoint a b = List.for_all (fun x -> not (List.mem x b)) a in
  List.for_all
    (fun (i, (_, wi)) ->
      List.for_all
        (fun (j, (rj, wj)) -> i = j || (disjoint wi rj && disjoint wi wj))
        rws)
    rws

let rec n_eff (t : E.t) : E.t =
  match t with
  | E.Skip -> E.Skip
  | E.Ops ops ->
      let ops = List.map n_op ops in
      let ops = if independent_ops ops then List.sort Stdlib.compare ops else ops in
      E.Ops ops
  | E.Seq ts -> (
      let parts =
        List.concat_map
          (fun t ->
            match n_eff t with E.Skip -> [] | E.Seq inner -> inner | t -> [ t ])
          ts
      in
      match parts with [] -> E.Skip | [ t ] -> t | parts -> E.Seq parts)
  | E.If (c, a, b) -> E.If (n_cond c, n_eff a, n_eff b)
  | E.Pick bs ->
      E.Pick
        (List.map (fun (c, t) -> (n_cond c, n_eff t)) bs
        |> List.sort Stdlib.compare)
  | E.Checked { ir; _ } -> n_eff ir
  | E.Opaque o -> raise (Unverifiable ("opaque effect " ^ o.E.oname))

(* ------------------------------------------------------------------ *)
(* Shapes: an activity's renamed-and-normalized content rendered to
   labelled component strings (the activity's own name is deliberately
   excluded; the name correspondence is checked by the partner lookup
   in [verify]). *)

let render pp v =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  pp fmt v;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

let str_dist sub (d : A.dist_ir) =
  let r x = render E.pp_rexpr (n_re (r_re sub x)) in
  match d with
  | A.DExp x -> "exp(" ^ r x ^ ")"
  | A.DDet x -> "det(" ^ r x ^ ")"
  | A.DUniform (a, b) -> "uniform(" ^ r a ^ ", " ^ r b ^ ")"
  | A.DErlang (k, x) -> Printf.sprintf "erlang(%d, %s)" k (r x)
  | A.DGamma (a, b) -> "gamma(" ^ r a ^ ", " ^ r b ^ ")"
  | A.DWeibull (a, b) -> "weibull(" ^ r a ^ ", " ^ r b ^ ")"
  | A.DLognormal (a, b) -> "lognormal(" ^ r a ^ ", " ^ r b ^ ")"
  | A.DNormal (a, b) -> "normal(" ^ r a ^ ", " ^ r b ^ ")"

let shape_of sub (a : A.t) : (string * string) list =
  let timing, dist =
    match a.A.timing with
    | A.Instantaneous -> ("instantaneous", "-")
    | A.Timed { policy; dist_ir = Some d; _ } ->
        ( (match policy with
          | A.Keep -> "timed/keep"
          | A.Resample -> "timed/resample"),
          str_dist sub d )
    | A.Timed { dist_ir = None; _ } ->
        raise (Unverifiable ("closure-only timing of " ^ a.A.name))
  in
  let guard =
    match a.A.guard with
    | Some g -> render E.pp_cond (n_cond (r_cond sub g))
    | None -> raise (Unverifiable ("closure-only guard of " ^ a.A.name))
  in
  let reads =
    List.map
      (function
        | P.P p -> "I:" ^ P.name (map_ip sub p)
        | P.F p -> "F:" ^ P.fname (map_fp sub p))
      a.A.reads
    |> List.sort_uniq Stdlib.compare
    |> String.concat ","
  in
  let cases =
    Array.to_list a.A.cases
    |> List.map (fun (c : A.case) ->
           let w =
             match c.A.weight_ir with
             | Some w -> render E.pp_rexpr (n_re (r_re sub w))
             | None ->
                 raise (Unverifiable ("closure-only case weight of " ^ a.A.name))
           in
           "w=" ^ w ^ "; eff=" ^ render E.pp (n_eff (r_eff sub c.A.effect)))
    |> List.sort Stdlib.compare
    |> String.concat " | "
  in
  [
    ("timing", timing);
    ("distribution", dist);
    ("guard", guard);
    ("reads", reads);
    ("cases", cases);
  ]

(* ------------------------------------------------------------------ *)
(* Verifying one copy transposition (r c): rename every activity of the
   whole model under the swap and require each renamed shape to equal
   the identity shape of its name-mapped partner. Activities under
   neither copy map to themselves, so a parent-level activity reading
   the two copies asymmetrically fails here (and is named). Stricter
   than a bare multiset comparison — the name correspondence is part of
   the certificate — and never unsound. *)

let verify model id_shapes sub ~rpath ~cpath =
  let swap_prefix a b name =
    let ap = a ^ "." in
    if starts_with ~prefix:ap name then
      b ^ "." ^ String.sub name (String.length ap) (String.length name - String.length ap)
    else name
  in
  let partner name =
    let mapped = swap_prefix rpath cpath name in
    if mapped <> name then mapped else swap_prefix cpath rpath name
  in
  let exception Break of string in
  try
    Array.iter
      (fun (a : A.t) ->
        let pname = partner a.A.name in
        match Hashtbl.find_opt id_shapes pname with
        | None ->
            raise
              (Break
                 (Printf.sprintf "activity %S has no counterpart %S" a.A.name
                    pname))
        | Some expected ->
            let got = shape_of sub a in
            if got <> expected then begin
              let comp, mine, theirs =
                match
                  List.find_opt
                    (fun ((_, x), (_, y)) -> (x : string) <> y)
                    (List.combine got expected)
                with
                | Some ((k, x), (_, y)) -> (k, x, y)
                | None -> ("shape", "?", "?")
              in
              raise
                (Break
                   (Printf.sprintf
                      "activity %S is not exchangeable with %S: %s differs (%s vs %s)"
                      a.A.name pname comp (truncate 120 mine)
                      (truncate 120 theirs)))
            end)
      (San.Model.activities model);
    Ok ()
  with
  | Break r -> Error r
  | Unverifiable r -> Error r

(* ------------------------------------------------------------------ *)

let transposition_sub int_by_index float_by_index (ir, fr) (ic, fc) =
  let si = Hashtbl.create 16 and sf = Hashtbl.create 16 in
  Array.iteri
    (fun k a ->
      let b = ic.(k) in
      if a <> b then begin
        Hashtbl.replace si a (Hashtbl.find int_by_index b);
        Hashtbl.replace si b (Hashtbl.find int_by_index a)
      end)
    ir;
  Array.iteri
    (fun k a ->
      let b = fc.(k) in
      if a <> b then begin
        Hashtbl.replace sf a (Hashtbl.find float_by_index b);
        Hashtbl.replace sf b (Hashtbl.find float_by_index a)
      end)
    fr;
  { si; sf }

let sig_diff_reason pa pb (sa : string list * string list)
    (sb : string list * string list) =
  let rec first xs ys =
    match (xs, ys) with
    | x :: xs, y :: ys -> if (x : string) = y then first xs ys else Some (x, y)
    | [], [] -> None
    | x :: _, [] -> Some (x, "<missing>")
    | [], y :: _ -> Some ("<missing>", y)
  in
  let detail =
    match first (fst sa) (fst sb) with
    | Some (x, y) -> Printf.sprintf "place layout differs (%s vs %s)" x y
    | None -> (
        match first (snd sa) (snd sb) with
        | Some (x, y) -> Printf.sprintf "activity set differs (%s vs %s)" x y
        | None -> "structural signature differs")
  in
  Printf.sprintf "copy %s vs %s: %s" pa pb detail

let params_diff_reason pa pb la lb =
  let rec first xs ys =
    match (xs, ys) with
    | x :: xs, y :: ys -> if (x : string) = y then first xs ys else Some (x, y)
    | [], [] -> None
    | x :: _, [] -> Some (x, "<missing>")
    | [], y :: _ -> Some ("<missing>", y)
  in
  match first la lb with
  | Some (x, y) ->
      Printf.sprintf "copy %s vs %s: parameter differs (%s vs %s)" pa pb x y
  | None -> Printf.sprintf "copy %s vs %s: parameters differ" pa pb

let analyse model (root : Compose.info) =
  let blockers = blockers_of model in
  let pure = blockers = [] in
  let ints = San.Model.places model in
  let floats = San.Model.float_places model in
  let int_by_index = Hashtbl.create 64 in
  let float_by_index = Hashtbl.create 64 in
  Array.iter (fun p -> Hashtbl.replace int_by_index (P.index p) p) ints;
  Array.iter (fun p -> Hashtbl.replace float_by_index (P.findex p) p) floats;
  let id_shapes = Hashtbl.create 64 in
  if pure then
    Array.iter
      (fun (a : A.t) -> Hashtbl.replace id_shapes a.A.name (shape_of id_sub a))
      (San.Model.activities model);
  let families = ref [] in
  let rec walk depth (n : Compose.info) =
    List.iter
      (fun (label, members) ->
        match members with
        | [] | [ _ ] -> ()
        | _ ->
            let fa_path =
              if n.Compose.path = "" then label
              else n.Compose.path ^ "." ^ label
            in
            let members = Array.of_list members in
            let ncopies = Array.length members in
            let sigs =
              Array.map (fun c -> Symmetry.copy_signature model c) members
            in
            let slots = Array.map Symmetry.copy_slots members in
            let prms = Array.map params_sig members in
            let orbits : (int * int list ref) list ref = ref [] in
            let witnesses = ref [] and breaks = ref [] in
            for c = 0 to ncopies - 1 do
              if not pure then orbits := !orbits @ [ (c, ref [ c ]) ]
              else begin
                let first_reason = ref None in
                let rec try_join = function
                  | [] -> false
                  | (r, ms) :: rest ->
                      let fail reason =
                        if !first_reason = None then
                          first_reason := Some (r, reason);
                        try_join rest
                      in
                      if sigs.(r) <> sigs.(c) then
                        fail
                          (sig_diff_reason members.(r).Compose.path
                             members.(c).Compose.path sigs.(r) sigs.(c))
                      else if prms.(r) <> prms.(c) then
                        fail
                          (params_diff_reason members.(r).Compose.path
                             members.(c).Compose.path prms.(r) prms.(c))
                      else begin
                        let sub =
                          transposition_sub int_by_index float_by_index
                            slots.(r) slots.(c)
                        in
                        match
                          verify model id_shapes sub
                            ~rpath:members.(r).Compose.path
                            ~cpath:members.(c).Compose.path
                        with
                        | Ok () ->
                            ms := c :: !ms;
                            witnesses := (r, c) :: !witnesses;
                            true
                        | Error reason -> fail reason
                      end
                in
                if not (try_join !orbits) then begin
                  orbits := !orbits @ [ (c, ref [ c ]) ];
                  match !first_reason with
                  | Some (r, reason) ->
                      breaks :=
                        { bk_copy_a = r; bk_copy_b = c; bk_reason = reason }
                        :: !breaks
                  | None -> ()
                end
              end
            done;
            let fa_orbits =
              List.map
                (fun (_, ms) ->
                  let mem = List.sort Int.compare !ms in
                  {
                    ob_members = mem;
                    ob_int_slots =
                      Array.of_list (List.map (fun c -> fst slots.(c)) mem);
                    ob_float_slots =
                      Array.of_list (List.map (fun c -> snd slots.(c)) mem);
                  })
                !orbits
            in
            families :=
              {
                fa_path;
                fa_copies = ncopies;
                fa_depth = depth;
                fa_orbits;
                fa_witnesses = List.rev !witnesses;
                fa_breaks = List.rev !breaks;
              }
              :: !families)
      (Compose.rep_families n);
    List.iter (walk (depth + 1)) n.Compose.children
  in
  walk 0 root;
  let families =
    List.rev !families
    |> List.stable_sort (fun a b -> Int.compare b.fa_depth a.fa_depth)
  in
  {
    families;
    pure;
    blockers;
    n_int = Array.length ints;
    n_float = Array.length floats;
  }

(* ------------------------------------------------------------------ *)

let canon report (ints0, floats0) =
  let ints = Array.copy ints0 and floats = Array.copy floats0 in
  List.iter
    (fun fam ->
      List.iter
        (fun ob ->
          let k = Array.length ob.ob_int_slots in
          if k > 1 then begin
            let subs =
              Array.init k (fun m ->
                  ( Array.map (fun i -> ints.(i)) ob.ob_int_slots.(m),
                    Array.map (fun i -> floats.(i)) ob.ob_float_slots.(m) ))
            in
            Array.sort Stdlib.compare subs;
            Array.iteri
              (fun m (iv, fv) ->
                Array.iteri (fun j v -> ints.(ob.ob_int_slots.(m).(j)) <- v) iv;
                Array.iteri
                  (fun j v -> floats.(ob.ob_float_slots.(m).(j)) <- v)
                  fv)
              subs
          end)
        fam.fa_orbits)
    report.families;
  (ints, floats)

let trivial report =
  List.for_all
    (fun f -> List.for_all (fun o -> List.length o.ob_members < 2) f.fa_orbits)
    report.families

let members_str ms = String.concat "," (List.map string_of_int ms)

let check_canon report f =
  let out = ref [] in
  List.iter
    (fun fam ->
      match fam.fa_orbits with
      | [] | [ _ ] -> ()
      | o0 :: rest ->
          let bump o =
            let ints = Array.make report.n_int 0 in
            let floats = Array.make report.n_float 0.0 in
            if Array.length o.ob_int_slots.(0) > 0 then
              ints.(o.ob_int_slots.(0).(0)) <- 1
            else if Array.length o.ob_float_slots.(0) > 0 then
              floats.(o.ob_float_slots.(0).(0)) <- 1.0;
            (ints, floats)
          in
          List.iter
            (fun ok ->
              let k0 = bump o0 and k1 = bump ok in
              if k0 <> k1 && f k0 = f k1 then
                out :=
                  Diagnostic.v ~code:Diagnostic.unsound_canon
                    ~severity:Diagnostic.Error
                    ~source:(Diagnostic.Composition fam.fa_path)
                    (Printf.sprintf
                       "canonicalization merges copy %d (orbit {%s}) with copy %d (orbit {%s}): the orbit refinement distinguishes them, so the quotient would be unsound"
                       (List.hd o0.ob_members)
                       (members_str o0.ob_members)
                       (List.hd ok.ob_members)
                       (members_str ok.ob_members))
                  :: !out)
            rest)
    report.families;
  List.sort Diagnostic.compare !out

(* ------------------------------------------------------------------ *)

let diagnostics report =
  let ds =
    List.concat_map
      (fun fam ->
        let orbit_str =
          String.concat " "
            (List.map (fun o -> "{" ^ members_str o.ob_members ^ "}") fam.fa_orbits)
        in
        let wit =
          match fam.fa_witnesses with
          | [] -> ""
          | ws ->
              "; witnesses "
              ^ String.concat ""
                  (List.map (fun (a, b) -> Printf.sprintf "(%d %d)" a b) ws)
        in
        let n = List.length fam.fa_orbits in
        let head =
          Diagnostic.v ~code:Diagnostic.orbit_report ~severity:Diagnostic.Info
            ~source:(Diagnostic.Composition fam.fa_path)
            (Printf.sprintf "%d orbit%s over %d copies: %s%s" n
               (if n = 1 then "" else "s")
               fam.fa_copies orbit_str wit)
        in
        let breaks =
          List.map
            (fun b ->
              Diagnostic.v ~code:Diagnostic.broken_symmetry
                ~severity:Diagnostic.Warning
                ~source:(Diagnostic.Composition fam.fa_path)
                (Printf.sprintf "copies %d and %d are not exchangeable: %s"
                   b.bk_copy_a b.bk_copy_b b.bk_reason))
            fam.fa_breaks
        in
        let impure =
          if report.pure then []
          else
            [
              Diagnostic.v ~code:Diagnostic.broken_symmetry
                ~severity:Diagnostic.Warning
                ~source:(Diagnostic.Composition fam.fa_path)
                (Printf.sprintf
                   "copies cannot be verified exchangeable: the model is not fully declarative (%s)"
                   (truncate 200 (String.concat "; " report.blockers)));
            ]
        in
        (head :: breaks) @ impure)
      report.families
  in
  List.sort Diagnostic.compare ds

let describe report =
  let header =
    if report.pure then []
    else
      "model is not fully declarative; orbits degraded to singletons:"
      :: List.map (fun b -> "  " ^ b)
           (List.filteri (fun i _ -> i < 5) report.blockers)
  in
  let fams =
    List.map
      (fun fam ->
        let n = List.length fam.fa_orbits in
        let base =
          Printf.sprintf "%s: %d copies -> %d orbit%s %s" fam.fa_path
            fam.fa_copies n
            (if n = 1 then "" else "s")
            (String.concat " "
               (List.map
                  (fun o -> "{" ^ members_str o.ob_members ^ "}")
                  fam.fa_orbits))
        in
        let breaks =
          List.map
            (fun b ->
              Printf.sprintf "  break (%d,%d): %s" b.bk_copy_a b.bk_copy_b
                b.bk_reason)
            fam.fa_breaks
        in
        String.concat "\n" (base :: breaks))
      report.families
  in
  String.concat "\n" (header @ fams)

let to_json report =
  J.Obj
    [
      ("schema", J.Str "itua-orbits/1");
      ("pure", J.Bool report.pure);
      ("blockers", J.Arr (List.map (fun s -> J.Str s) report.blockers));
      ( "families",
        J.Arr
          (List.map
             (fun fam ->
               J.Obj
                 [
                   ("family", J.Str fam.fa_path);
                   ("copies", J.int fam.fa_copies);
                   ("depth", J.int fam.fa_depth);
                   ( "orbits",
                     J.Arr
                       (List.map
                          (fun o -> J.Arr (List.map J.int o.ob_members))
                          fam.fa_orbits) );
                   ( "witnesses",
                     J.Arr
                       (List.map
                          (fun (a, b) -> J.Arr [ J.int a; J.int b ])
                          fam.fa_witnesses) );
                   ( "breaks",
                     J.Arr
                       (List.map
                          (fun b ->
                            J.Obj
                              [
                                ("copy_a", J.int b.bk_copy_a);
                                ("copy_b", J.int b.bk_copy_b);
                                ("reason", J.Str b.bk_reason);
                              ])
                          fam.fa_breaks) );
                 ])
             report.families) );
    ]
