type case_dump = {
  cd_index : int;
  cd_rows : (string * int) list list;
  cd_unresolved : string list;
  cd_float : bool;
  cd_opaque : bool;
}

type activity_dump = {
  ad_name : string;
  ad_timing : string;  (** ["timed"] or ["instantaneous"] *)
  ad_guard_reads : string list;
  ad_reads : string list option;
  ad_writes : string list option;
  ad_cases : case_dump list;
}

type t = { model : string; activities : activity_dump list }

let dump model =
  let places = San.Model.places model in
  let n_int = Array.length places in
  let pname i =
    if i >= 0 && i < n_int then San.Place.name places.(i)
    else Printf.sprintf "?%d" i
  in
  let names = List.map pname in
  let acts =
    Array.to_list (San.Model.activities model)
    |> List.map (fun (a : San.Activity.t) ->
           let guard_reads =
             match a.San.Activity.guard with
             | None -> []
             | Some c -> names (San.Effect.cond_reads c)
           in
           let merge acc l =
             match (acc, l) with
             | Some acc, Some l -> Some (List.sort_uniq compare (acc @ l))
             | _ -> None
           in
           let all_reads = ref (Some []) and all_writes = ref (Some []) in
           let cases =
             Array.to_list a.San.Activity.cases
             |> List.mapi (fun i (c : San.Activity.case) ->
                    let eff = c.San.Activity.effect in
                    all_reads := merge !all_reads (San.Effect.static_reads eff);
                    all_writes :=
                      merge !all_writes (San.Effect.static_writes eff);
                    let ir =
                      Symbolic.read_case ~n_int ~guard:a.San.Activity.guard eff
                    in
                    {
                      cd_index = i;
                      cd_rows =
                        List.map
                          (List.map (fun (p, d) -> (pname p, d)))
                          ir.Symbolic.ci_deltas;
                      cd_unresolved = names ir.Symbolic.ci_unresolved;
                      cd_float = ir.Symbolic.ci_float;
                      cd_opaque = not (San.Effect.is_pure eff);
                    })
           in
           {
             ad_name = a.San.Activity.name;
             ad_timing =
               (match a.San.Activity.timing with
               | San.Activity.Instantaneous -> "instantaneous"
               | San.Activity.Timed _ -> "timed");
             ad_guard_reads = guard_reads;
             ad_reads = Option.map names !all_reads;
             ad_writes = Option.map names !all_writes;
             ad_cases = cases;
           })
  in
  { model = San.Model.name model; activities = acts }

let pp_row ppf row =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun (p, d) -> Printf.sprintf "%s%+d" p d) row))

let pp ppf t =
  Format.fprintf ppf "compiled effect IR for model %S@." t.model;
  List.iter
    (fun ad ->
      Format.fprintf ppf "  %s (%s)@." ad.ad_name ad.ad_timing;
      (match ad.ad_guard_reads with
      | [] -> ()
      | l ->
          Format.fprintf ppf "    guard reads: %s@." (String.concat ", " l));
      (match ad.ad_reads with
      | Some l ->
          Format.fprintf ppf "    effect reads: %s@."
            (if l = [] then "-" else String.concat ", " l)
      | None -> Format.fprintf ppf "    effect reads: opaque@.");
      (match ad.ad_writes with
      | Some l ->
          Format.fprintf ppf "    effect writes: %s@."
            (if l = [] then "-" else String.concat ", " l)
      | None -> Format.fprintf ppf "    effect writes: opaque@.");
      List.iter
        (fun cd ->
          Format.fprintf ppf "    case %d:%s%s@." cd.cd_index
            (if cd.cd_opaque then " [opaque]" else "")
            (if cd.cd_float then " [float writes]" else "");
          List.iter
            (fun row -> Format.fprintf ppf "      delta %a@." pp_row row)
            cd.cd_rows;
          match cd.cd_unresolved with
          | [] -> ()
          | l ->
              Format.fprintf ppf "      unresolved: %s@."
                (String.concat ", " l))
        ad.ad_cases)
    t.activities

let to_json t =
  let open Report.Json in
  let strs l = Arr (List.map (fun s -> Str s) l) in
  let opt_strs = function None -> Null | Some l -> strs l in
  Obj
    [
      ("schema", Str "itua-analysis/1");
      ("model", Str t.model);
      ( "activities",
        Arr
          (List.map
             (fun ad ->
               Obj
                 [
                   ("name", Str ad.ad_name);
                   ("timing", Str ad.ad_timing);
                   ("guard_reads", strs ad.ad_guard_reads);
                   ("effect_reads", opt_strs ad.ad_reads);
                   ("effect_writes", opt_strs ad.ad_writes);
                   ( "cases",
                     Arr
                       (List.map
                          (fun cd ->
                            Obj
                              [
                                ("case", int cd.cd_index);
                                ("opaque", Bool cd.cd_opaque);
                                ("float_writes", Bool cd.cd_float);
                                ( "deltas",
                                  Arr
                                    (List.map
                                       (fun row ->
                                         Obj
                                           (List.map
                                              (fun (p, d) -> (p, int d))
                                              row))
                                       cd.cd_rows) );
                                ("unresolved", strs cd.cd_unresolved);
                              ])
                          ad.ad_cases) );
                 ])
             t.activities) );
    ]
