module M = San.Marking

type group = {
  family : string;
  copies : int;
  int_slots : int array array;
  float_slots : int array array;
  depth : int;
}

let rec places_of (n : Compose.info) =
  n.places @ List.concat_map places_of n.children

let rec acts_of (n : Compose.info) =
  n.activities @ List.concat_map acts_of n.children

let strip_prefix prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    String.sub s pl (String.length s - pl)
  else s

(* A copy's structural signature: relative place names with kind and
   initial value, in declaration order, plus relative activity names.
   Two copies with equal signatures hold the same state shape, so their
   sub-state vectors are comparable slot by slot. *)
let signature m0 (copy : Compose.info) =
  let prefix = copy.Compose.path ^ "." in
  let places =
    List.map
      (fun p ->
        match p with
        | San.Place.P ip ->
            Printf.sprintf "I:%s=%d"
              (strip_prefix prefix (San.Place.name ip))
              (M.get m0 ip)
        | San.Place.F fp ->
            Printf.sprintf "F:%s=%h"
              (strip_prefix prefix (San.Place.fname fp))
              (M.fget m0 fp))
      (places_of copy)
  in
  let acts = List.map (strip_prefix prefix) (acts_of copy) in
  (places, acts)

let slots_of copy =
  let ints = ref [] and floats = ref [] in
  List.iter
    (fun p ->
      match p with
      | San.Place.P ip -> ints := San.Place.index ip :: !ints
      | San.Place.F fp -> floats := San.Place.findex fp :: !floats)
    (places_of copy);
  ( Array.of_list (List.rev !ints),
    Array.of_list (List.rev !floats) )

let copy_signature model copy = signature (San.Model.initial_marking model) copy
let copy_slots = slots_of

let detect model (root : Compose.info) =
  let m0 = San.Model.initial_marking model in
  let groups = ref [] in
  let rec walk depth (n : Compose.info) =
    List.iter
      (fun (label, members) ->
        match members with
        | [] | [ _ ] -> ()
        | first :: rest ->
            let sig0 = signature m0 first in
            if List.for_all (fun c -> signature m0 c = sig0) rest then begin
              let family =
                if n.Compose.path = "" then label
                else n.Compose.path ^ "." ^ label
              in
              let slots = List.map slots_of members in
              groups :=
                {
                  family;
                  copies = List.length members;
                  int_slots = Array.of_list (List.map fst slots);
                  float_slots = Array.of_list (List.map snd slots);
                  depth;
                }
                :: !groups
            end)
      (Compose.rep_families n);
    List.iter (walk (depth + 1)) n.Compose.children
  in
  walk 0 root;
  List.rev !groups
  |> List.stable_sort (fun a b -> Int.compare b.depth a.depth)

let canon groups (ints, floats) =
  let ints = Array.copy ints and floats = Array.copy floats in
  List.iter
    (fun g ->
      let copies =
        Array.init g.copies (fun k ->
            ( Array.map (fun i -> ints.(i)) g.int_slots.(k),
              Array.map (fun i -> floats.(i)) g.float_slots.(k) ))
      in
      Array.sort Stdlib.compare copies;
      Array.iteri
        (fun k (iv, fv) ->
          Array.iteri (fun j v -> ints.(g.int_slots.(k).(j)) <- v) iv;
          Array.iteri (fun j v -> floats.(g.float_slots.(k).(j)) <- v) fv)
        copies)
    groups;
  (ints, floats)

let describe groups =
  String.concat "\n"
    (List.map
       (fun g ->
         Printf.sprintf
           "%s: %d exchangeable copies (%d int + %d float places each)"
           g.family g.copies
           (Array.length g.int_slots.(0))
           (Array.length g.float_slots.(0)))
       groups)
