(** Replicate-symmetry detection and canonical-ordering CTMC lumping.

    The copies of a [Compose.replicate] family are {e structurally}
    identical by construction. When they are also {e behaviorally}
    exchangeable — no place stores another copy's identity and every
    rate/weight closure treats copies alike — the CTMC is lumpable by
    the symmetric group acting on copies: two states that differ only
    by a permutation of copy sub-states have identical futures, so one
    canonical representative per orbit suffices. Sorting each family's
    per-copy sub-state vectors into lexicographic order picks that
    representative, shrinking a replicated submodel's generator from
    [k^n] toward [C(n + k - 1, n)] states while every transient and
    steady measure on symmetric reward functions is preserved exactly.

    {!detect} checks the {e static} half of the story: for each family
    it verifies that copies declare the same places (same relative
    names, kinds and initial values, in the same order) and the same
    activities. The {e behavioral} half — rate closures that do not
    depend on the copy index, no cross-copy identity coupling like the
    ITUA model's [on_host] host ids — is invisible to introspection:
    validate a detected group by comparing lumped against unlumped
    measures on a small configuration before trusting it at scale
    (the test suite and the bench gate do exactly that). *)

type group = {
  family : string;
      (** the family's dotted path, e.g. ["domain"] or
          ["app[1].replica"] *)
  copies : int;
  int_slots : int array array;
      (** per copy: the marking-array indices of the copy's int places,
          in subtree declaration order (aligned across copies) *)
  float_slots : int array array;
  depth : int;  (** nesting depth; deeper groups are canonicalized first *)
}

val copy_signature :
  San.Model.t -> Compose.info -> string list * string list
(** A copy's structural signature: relative place renderings (name,
    kind, initial marking, declaration order) and relative activity
    names. Two copies with equal signatures hold the same state shape,
    so their sub-state vectors are comparable slot by slot. Shared by
    {!detect} and the orbit pass ([Analysis.Orbit]). *)

val copy_slots : Compose.info -> int array * int array
(** The marking-array indices (int, float) of every place in the copy's
    subtree, in declaration order — aligned across copies of equal
    {!copy_signature}. *)

val detect : San.Model.t -> Compose.info -> group list
(** [detect model root] walks the composition tree and returns every
    Rep family (two or more copies) whose copies are structurally
    exchangeable: equal relative place names, kinds, initial markings
    and declaration order, and equal relative activity names. Families
    failing the test are silently omitted. Nested families are
    reported per enclosing copy, deepest first — the order {!canon}
    needs. *)

val canon :
  group list -> int array * float array -> int array * float array
(** [canon groups key] is the canonical representative of [key]'s
    orbit: for each group, deepest first, the per-copy sub-vectors are
    sorted lexicographically (ints, then floats). Pure — the input
    arrays are not mutated. Feed it to {!Ctmc.Explore.explore}'s
    [?canon] to build the lumped chain. *)

val describe : group list -> string
(** One line per group: family, copy count, places per copy. *)
