(** Exact rational arithmetic on native integers.

    The structural passes ({!Structure}) do linear algebra over the
    rationals: P-invariant ranks and nullspace bases must be exact —
    floating point would turn "conserved" into "conserved up to
    epsilon". Incidence entries are small (a firing moves a handful of
    tokens), so native 63-bit integers with eager gcd normalization are
    plenty; no [Zarith] dependency. Overflow is the caller's
    responsibility and is unreachable for the coefficient magnitudes
    SAN incidence matrices produce. *)

type t = private { num : int; den : int }
(** Normalized: [den > 0] and [gcd (abs num) den = 1]. *)

val zero : t
val one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] normalizes; raises [Division_by_zero] on [den = 0]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t
val inv : t -> t
val is_zero : t -> bool

val sign : t -> int
(** [-1], [0] or [1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** ["3"], ["-2/5"]. *)

val pp : Format.formatter -> t -> unit
