(** Probability distributions for activity firing times.

    Stochastic activity networks attach a (possibly marking-dependent)
    firing-time distribution to every timed activity. Möbius supports a
    catalogue of standard distributions; this module provides the ones the
    ITUA study and the test models need, each with a sampler, moments and
    (where it exists in closed or special-function form) a CDF.

    All distributions here describe non-negative durations except
    {!constructor-Normal}, which is provided for completeness of the
    statistics tests; using it as a firing time requires the caller to
    guarantee positivity (e.g. by truncation). *)

type t =
  | Exponential of { rate : float }
      (** Memoryless; mean [1/rate]. The only distribution the analytical
          CTMC path accepts. *)
  | Deterministic of { value : float }  (** A fixed delay. *)
  | Uniform of { lo : float; hi : float }
  | Erlang of { k : int; rate : float }
      (** Sum of [k] independent exponentials of the given rate. *)
  | Gamma of { shape : float; rate : float }
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }
      (** [exp (mu + sigma·Z)] for standard normal Z. *)
  | Normal of { mean : float; stddev : float }

val validate : t -> (unit, string) result
(** [validate d] checks parameter constraints (positive rates and shapes,
    ordered uniform bounds, ...). *)

val check : t -> t
(** [check d] is [d] if valid, otherwise raises [Invalid_argument] with the
    message from {!validate}. *)

val sample : t -> Prng.Stream.t -> float
(** [sample d s] draws one value, consuming randomness from [s]. Raises
    [Invalid_argument] for invalid parameters. *)

val mean : t -> float
val variance : t -> float

val cdf : t -> float -> float
(** [cdf d x] is P(X <= x). *)

val quantile : t -> float -> float
(** [quantile d p] is the smallest [x] with [cdf d x >= p], for
    [0 < p < 1]. Closed form where available (exponential, uniform,
    Weibull, deterministic, lognormal, normal), bisection + Newton on
    {!cdf} otherwise. Satisfies [cdf d (quantile d p) = p] up to 1e-9 for
    continuous distributions. *)

val is_exponential : t -> bool

val rate_of_exponential : t -> float option
(** [Some rate] for [Exponential], [None] otherwise. Used by the CTMC
    generator to reject non-Markovian models. *)

val scale : t -> float -> t
(** [scale d c] multiplies the distribution by [c > 0]: the distribution of
    [c·X]. Exponential and Weibull rescale their rate/scale parameters;
    others rescale their natural parameters. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
