type t =
  | Exponential of { rate : float }
  | Deterministic of { value : float }
  | Uniform of { lo : float; hi : float }
  | Erlang of { k : int; rate : float }
  | Gamma of { shape : float; rate : float }
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }
  | Normal of { mean : float; stddev : float }

let validate = function
  | Exponential { rate } ->
      if rate > 0.0 then Ok () else Error "Exponential: rate must be > 0"
  | Deterministic { value } ->
      if value >= 0.0 then Ok () else Error "Deterministic: value must be >= 0"
  | Uniform { lo; hi } ->
      if lo <= hi then Ok () else Error "Uniform: requires lo <= hi"
  | Erlang { k; rate } ->
      if k <= 0 then Error "Erlang: k must be >= 1"
      else if rate > 0.0 then Ok ()
      else Error "Erlang: rate must be > 0"
  | Gamma { shape; rate } ->
      if shape > 0.0 && rate > 0.0 then Ok ()
      else Error "Gamma: shape and rate must be > 0"
  | Weibull { shape; scale } ->
      if shape > 0.0 && scale > 0.0 then Ok ()
      else Error "Weibull: shape and scale must be > 0"
  | Lognormal { mu = _; sigma } ->
      if sigma > 0.0 then Ok () else Error "Lognormal: sigma must be > 0"
  | Normal { mean = _; stddev } ->
      if stddev > 0.0 then Ok () else Error "Normal: stddev must be > 0"

let check d =
  match validate d with Ok () -> d | Error msg -> invalid_arg ("Dist: " ^ msg)

let sample_exponential rate s = -.log (Prng.Stream.float_pos s) /. rate

(* Polar (Marsaglia) method; consumes a variable number of draws. *)
let rec sample_std_normal s =
  let u = Prng.Stream.float_range s (-1.0) 1.0 in
  let v = Prng.Stream.float_range s (-1.0) 1.0 in
  let r2 = (u *. u) +. (v *. v) in
  if r2 >= 1.0 || r2 = 0.0 then sample_std_normal s
  else u *. sqrt (-2.0 *. log r2 /. r2)

(* Marsaglia & Tsang (2000) for shape >= 1; boosting for shape < 1. *)
let rec sample_gamma shape rate s =
  if shape < 1.0 then begin
    let boost = Prng.Stream.float_pos s ** (1.0 /. shape) in
    boost *. sample_gamma (shape +. 1.0) rate s
  end
  else begin
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = sample_std_normal s in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then draw ()
      else begin
        let v3 = v *. v *. v in
        let u = Prng.Stream.float_pos s in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v3
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v3 +. log v3)) then
          d *. v3
        else draw ()
      end
    in
    draw () /. rate
  end

let sample d s =
  match check d with
  | Exponential { rate } -> sample_exponential rate s
  | Deterministic { value } -> value
  | Uniform { lo; hi } -> Prng.Stream.float_range s lo hi
  | Erlang { k; rate } ->
      let acc = ref 0.0 in
      for _ = 1 to k do
        acc := !acc +. sample_exponential rate s
      done;
      !acc
  | Gamma { shape; rate } -> sample_gamma shape rate s
  | Weibull { shape; scale } ->
      scale *. ((-.log (Prng.Stream.float_pos s)) ** (1.0 /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sample_std_normal s))
  | Normal { mean; stddev } -> mean +. (stddev *. sample_std_normal s)

let mean d =
  match check d with
  | Exponential { rate } -> 1.0 /. rate
  | Deterministic { value } -> value
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Erlang { k; rate } -> float_of_int k /. rate
  | Gamma { shape; rate } -> shape /. rate
  | Weibull { shape; scale } ->
      scale *. exp (Stats.Specfun.log_gamma (1.0 +. (1.0 /. shape)))
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.0))
  | Normal { mean; stddev = _ } -> mean

let variance d =
  match check d with
  | Exponential { rate } -> 1.0 /. (rate *. rate)
  | Deterministic _ -> 0.0
  | Uniform { lo; hi } ->
      let w = hi -. lo in
      w *. w /. 12.0
  | Erlang { k; rate } -> float_of_int k /. (rate *. rate)
  | Gamma { shape; rate } -> shape /. (rate *. rate)
  | Weibull { shape; scale } ->
      let g1 = exp (Stats.Specfun.log_gamma (1.0 +. (1.0 /. shape))) in
      let g2 = exp (Stats.Specfun.log_gamma (1.0 +. (2.0 /. shape))) in
      scale *. scale *. (g2 -. (g1 *. g1))
  | Lognormal { mu; sigma } ->
      let s2 = sigma *. sigma in
      (exp s2 -. 1.0) *. exp ((2.0 *. mu) +. s2)
  | Normal { mean = _; stddev } -> stddev *. stddev

let cdf d x =
  match check d with
  | Exponential { rate } -> if x <= 0.0 then 0.0 else 1.0 -. exp (-.rate *. x)
  | Deterministic { value } -> if x >= value then 1.0 else 0.0
  | Uniform { lo; hi } ->
      if x <= lo then 0.0
      else if x >= hi then 1.0
      else if hi = lo then 1.0
      else (x -. lo) /. (hi -. lo)
  | Erlang { k; rate } ->
      if x <= 0.0 then 0.0 else Stats.Specfun.gamma_p (float_of_int k) (rate *. x)
  | Gamma { shape; rate } ->
      if x <= 0.0 then 0.0 else Stats.Specfun.gamma_p shape (rate *. x)
  | Weibull { shape; scale } ->
      if x <= 0.0 then 0.0 else 1.0 -. exp (-.((x /. scale) ** shape))
  | Lognormal { mu; sigma } ->
      if x <= 0.0 then 0.0
      else Stats.Specfun.std_normal_cdf ((log x -. mu) /. sigma)
  | Normal { mean; stddev } ->
      Stats.Specfun.std_normal_cdf ((x -. mean) /. stddev)

(* Monotone root solve of cdf(x) = p on [0, inf) for distributions with
   positive support and no closed-form inverse (Erlang, Gamma). *)
let quantile_by_search d p =
  let lo = ref 0.0 in
  let hi = ref (Float.max (mean d) 1e-9) in
  while cdf d !hi < p do
    hi := !hi *. 2.0
  done;
  for _ = 1 to 200 do
    let mid = 0.5 *. (!lo +. !hi) in
    if cdf d mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let quantile d p =
  if not (0.0 < p && p < 1.0) then
    invalid_arg "Dist.quantile: requires 0 < p < 1";
  match check d with
  | Exponential { rate } -> -.log (1.0 -. p) /. rate
  | Deterministic { value } -> value
  | Uniform { lo; hi } -> lo +. (p *. (hi -. lo))
  | Weibull { shape; scale } -> scale *. ((-.log (1.0 -. p)) ** (1.0 /. shape))
  | Lognormal { mu; sigma } ->
      exp (mu +. (sigma *. Stats.Specfun.std_normal_quantile p))
  | Normal { mean; stddev } ->
      mean +. (stddev *. Stats.Specfun.std_normal_quantile p)
  | Erlang _ | Gamma _ -> quantile_by_search d p

let is_exponential = function Exponential _ -> true | _ -> false

let rate_of_exponential = function
  | Exponential { rate } -> Some rate
  | Deterministic _ | Uniform _ | Erlang _ | Gamma _ | Weibull _ | Lognormal _
  | Normal _ ->
      None

let scale d c =
  if c <= 0.0 then invalid_arg "Dist.scale: factor must be > 0";
  match check d with
  | Exponential { rate } -> Exponential { rate = rate /. c }
  | Deterministic { value } -> Deterministic { value = value *. c }
  | Uniform { lo; hi } -> Uniform { lo = lo *. c; hi = hi *. c }
  | Erlang { k; rate } -> Erlang { k; rate = rate /. c }
  | Gamma { shape; rate } -> Gamma { shape; rate = rate /. c }
  | Weibull { shape; scale } -> Weibull { shape; scale = scale *. c }
  | Lognormal { mu; sigma } -> Lognormal { mu = mu +. log c; sigma }
  | Normal { mean; stddev } -> Normal { mean = mean *. c; stddev = stddev *. c }

let pp ppf = function
  | Exponential { rate } -> Format.fprintf ppf "Exp(rate=%g)" rate
  | Deterministic { value } -> Format.fprintf ppf "Det(%g)" value
  | Uniform { lo; hi } -> Format.fprintf ppf "Unif[%g,%g)" lo hi
  | Erlang { k; rate } -> Format.fprintf ppf "Erlang(k=%d,rate=%g)" k rate
  | Gamma { shape; rate } -> Format.fprintf ppf "Gamma(a=%g,rate=%g)" shape rate
  | Weibull { shape; scale } ->
      Format.fprintf ppf "Weibull(k=%g,scale=%g)" shape scale
  | Lognormal { mu; sigma } ->
      Format.fprintf ppf "Lognormal(mu=%g,sigma=%g)" mu sigma
  | Normal { mean; stddev } -> Format.fprintf ppf "N(%g,%g)" mean stddev

let equal a b = a = b
