module J = Report.Json

let schema = "itua-model/1"

exception Unportable of string

let unportable act what =
  raise (Unportable (Printf.sprintf "activity %S: %s" act what))

(* Aggregated portability scan, run before any emission: one [Unportable]
   naming EVERY offending activity with all of its reasons, so a model
   with several closure escapes is fixed in one round trip instead of
   one error per attempt. The per-site [unportable] raises in the
   emitters below remain as backstops but are unreachable after this. *)
let rec opaque_names (t : San.Effect.t) =
  match t with
  | San.Effect.Skip | San.Effect.Ops _ -> []
  | San.Effect.Seq es -> List.concat_map opaque_names es
  | San.Effect.If (_, a, b) -> opaque_names a @ opaque_names b
  | San.Effect.Pick bs -> List.concat_map (fun (_, e) -> opaque_names e) bs
  | San.Effect.Checked { ir; _ } -> opaque_names ir
  | San.Effect.Opaque { oname; _ } -> [ oname ]

let check_portable model =
  let problems =
    Array.to_list (San.Model.activities model)
    |> List.filter_map (fun (a : San.Activity.t) ->
           let ps = ref [] in
           let add what = ps := what :: !ps in
           (match a.timing with
           | San.Activity.Timed { dist_ir = None; _ } ->
               add "closure-only timing distribution"
           | _ -> ());
           (match a.guard with
           | None -> add "closure enabling predicate"
           | Some _ -> ());
           Array.iteri
             (fun i (c : San.Activity.case) ->
               (match c.weight_ir with
               | None -> add (Printf.sprintf "closure weight of case %d" i)
               | Some _ -> ());
               List.iter
                 (fun o ->
                   add (Printf.sprintf "opaque effect %S in case %d" o i))
                 (opaque_names c.effect))
             a.cases;
           match List.rev !ps with
           | [] -> None
           | ps ->
               Some
                 (Printf.sprintf "activity %S: %s" a.name
                    (String.concat ", " ps)))
  in
  match problems with
  | [] -> ()
  | ps ->
      raise
        (Unportable
           (Printf.sprintf "%d unportable activit%s — %s" (List.length ps)
              (if List.length ps = 1 then "y" else "ies")
              (String.concat "; " ps)))

(* ------------------------------------------------------------------ *)
(* Emission.  Key order is fixed so equal models produce equal bytes. *)
(* ------------------------------------------------------------------ *)

let rel_str = function
  | San.Effect.Eq -> "="
  | San.Effect.Ne -> "!="
  | San.Effect.Lt -> "<"
  | San.Effect.Le -> "<="
  | San.Effect.Gt -> ">"
  | San.Effect.Ge -> ">="

let rec iexpr_json = function
  | San.Effect.Int n -> J.int n
  | San.Effect.Mark p -> J.Obj [ ("mark", J.Str (San.Place.name p)) ]
  | San.Effect.Add (a, b) -> J.Arr [ J.Str "+"; iexpr_json a; iexpr_json b ]
  | San.Effect.Sub (a, b) -> J.Arr [ J.Str "-"; iexpr_json a; iexpr_json b ]
  | San.Effect.Mul (a, b) -> J.Arr [ J.Str "*"; iexpr_json a; iexpr_json b ]
  | San.Effect.Ind c -> J.Arr [ J.Str "ind"; cond_json c ]

and cond_json = function
  | San.Effect.Const b -> J.Bool b
  | San.Effect.Cmp (a, r, b) ->
      J.Arr [ J.Str (rel_str r); iexpr_json a; iexpr_json b ]
  | San.Effect.All cs -> J.Arr (J.Str "all" :: List.map cond_json cs)
  | San.Effect.Any cs -> J.Arr (J.Str "any" :: List.map cond_json cs)
  | San.Effect.Not c -> J.Arr [ J.Str "not"; cond_json c ]

let rec fexpr_json = function
  | San.Effect.Flt x -> J.Num x
  | San.Effect.FMark p -> J.Obj [ ("fmark", J.Str (San.Place.fname p)) ]
  | San.Effect.OfInt e -> J.Arr [ J.Str "of_int"; iexpr_json e ]
  | San.Effect.FAdd (a, b) -> J.Arr [ J.Str "+."; fexpr_json a; fexpr_json b ]
  | San.Effect.FSub (a, b) -> J.Arr [ J.Str "-."; fexpr_json a; fexpr_json b ]
  | San.Effect.FMul (a, b) -> J.Arr [ J.Str "*."; fexpr_json a; fexpr_json b ]
  | San.Effect.FDiv (a, b) -> J.Arr [ J.Str "/."; fexpr_json a; fexpr_json b ]

(* [RExpr (Flt x)] and [RConst x] both emit as a bare number and parse
   back as [RConst x]; the two evaluate and compile identically, so the
   normalization is invisible to simulation and analysis. *)
let rec rexpr_json = function
  | San.Effect.RConst x -> J.Num x
  | San.Effect.RExpr e -> fexpr_json e
  | San.Effect.RIf (c, a, b) ->
      J.Arr [ J.Str "if"; cond_json c; rexpr_json a; rexpr_json b ]

let op_json = function
  | San.Effect.Set (p, e) ->
      J.Arr [ J.Str "set"; J.Str (San.Place.name p); iexpr_json e ]
  | San.Effect.Inc (p, e) ->
      J.Arr [ J.Str "inc"; J.Str (San.Place.name p); iexpr_json e ]
  | San.Effect.FSet (p, e) ->
      J.Arr [ J.Str "fset"; J.Str (San.Place.fname p); fexpr_json e ]
  | San.Effect.FInc (p, e) ->
      J.Arr [ J.Str "finc"; J.Str (San.Place.fname p); fexpr_json e ]

let rec effect_json ~act = function
  | San.Effect.Skip -> J.Str "skip"
  | San.Effect.Ops ops -> J.Obj [ ("ops", J.Arr (List.map op_json ops)) ]
  | San.Effect.Seq es ->
      J.Obj [ ("seq", J.Arr (List.map (effect_json ~act) es)) ]
  | San.Effect.If (c, t, San.Effect.Skip) ->
      J.Obj [ ("if", cond_json c); ("then", effect_json ~act t) ]
  | San.Effect.If (c, t, e) ->
      J.Obj
        [
          ("if", cond_json c);
          ("then", effect_json ~act t);
          ("else", effect_json ~act e);
        ]
  | San.Effect.Pick branches ->
      J.Obj
        [
          ( "pick",
            J.Arr
              (List.map
                 (fun (c, e) -> J.Arr [ cond_json c; effect_json ~act e ])
                 branches) );
        ]
  | San.Effect.Checked { ir; _ } ->
      J.Obj [ ("checked", effect_json ~act ir) ]
  | San.Effect.Opaque { oname; _ } ->
      unportable act (Printf.sprintf "opaque effect %S" oname)

let dist_json d =
  let kind k fields = J.Obj (("kind", J.Str k) :: fields) in
  match d with
  | San.Activity.DExp r -> kind "exponential" [ ("rate", rexpr_json r) ]
  | San.Activity.DDet r -> kind "deterministic" [ ("delay", rexpr_json r) ]
  | San.Activity.DUniform (lo, hi) ->
      kind "uniform" [ ("lo", rexpr_json lo); ("hi", rexpr_json hi) ]
  | San.Activity.DErlang (k, r) ->
      kind "erlang" [ ("k", J.int k); ("rate", rexpr_json r) ]
  | San.Activity.DGamma (a, b) ->
      kind "gamma" [ ("shape", rexpr_json a); ("rate", rexpr_json b) ]
  | San.Activity.DWeibull (a, b) ->
      kind "weibull" [ ("shape", rexpr_json a); ("scale", rexpr_json b) ]
  | San.Activity.DLognormal (a, b) ->
      kind "lognormal" [ ("mu", rexpr_json a); ("sigma", rexpr_json b) ]
  | San.Activity.DNormal (a, b) ->
      kind "normal" [ ("mean", rexpr_json a); ("stddev", rexpr_json b) ]

let timing_json ~act = function
  | San.Activity.Instantaneous -> J.Obj [ ("type", J.Str "instantaneous") ]
  | San.Activity.Timed { dist_ir = None; _ } ->
      unportable act "closure-only timing distribution"
  | San.Activity.Timed { dist_ir = Some d; policy; _ } ->
      J.Obj
        [
          ("type", J.Str "timed");
          ( "policy",
            J.Str
              (match policy with
              | San.Activity.Resample -> "resample"
              | San.Activity.Keep -> "keep") );
          ("dist", dist_json d);
        ]

let activity_json (a : San.Activity.t) =
  let act = a.name in
  let guard =
    match a.guard with
    | Some g -> cond_json g
    | None -> unportable act "closure enabling predicate"
  in
  let case_json (c : San.Activity.case) =
    let w =
      match c.weight_ir with
      | Some r -> rexpr_json r
      | None -> unportable act "closure case weight"
    in
    J.Obj [ ("weight", w); ("effect", effect_json ~act c.effect) ]
  in
  J.Obj
    [
      ("name", J.Str act);
      ("timing", timing_json ~act a.timing);
      ("guard", guard);
      ( "reads",
        J.Arr (List.map (fun p -> J.Str (San.Place.any_name p)) a.reads) );
      ("cases", J.Arr (Array.to_list (Array.map case_json a.cases)));
    ]

(* One array in uid (creation) order, both kinds interleaved: the parser
   re-creates places through the builder in array order, so the rebuilt
   model assigns identical uids and indices — a requirement for
   bit-identical journals and trajectories. *)
let places_json ~bounds model =
  let m0 = San.Model.initial_marking model in
  let ints =
    Array.to_list
      (Array.map
         (fun p ->
           let name = San.Place.name p in
           let fields =
             [
               ("name", J.Str name);
               ("kind", J.Str "int");
               ("init", J.int (San.Marking.get m0 p));
             ]
           in
           let fields =
             match List.assoc_opt name bounds with
             | Some b -> fields @ [ ("bound", J.int b) ]
             | None -> fields
           in
           (San.Place.uid p, J.Obj fields))
         (San.Model.places model))
  in
  let floats =
    Array.to_list
      (Array.map
         (fun p ->
           ( San.Place.fuid p,
             J.Obj
               [
                 ("name", J.Str (San.Place.fname p));
                 ("kind", J.Str "float");
                 ("init", J.Num (San.Marking.fget m0 p));
               ] ))
         (San.Model.float_places model))
  in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) (ints @ floats)
  |> List.map snd

let rec info_json (n : Compose.info) =
  J.Obj
    ((("label", J.Str n.label)
      :: (match n.rep_copies with
         | Some c -> [ ("rep", J.int c) ]
         | None -> []))
    @ [
        ( "places",
          J.Arr (List.map (fun p -> J.Str (San.Place.any_name p)) n.places) );
        ("activities", J.Arr (List.map (fun s -> J.Str s) n.activities));
      ]
    (* Per-copy parameters ([Compose.Ctx.note]); the key is omitted when
       empty so parameter-free models keep their historical bytes. *)
    @ (match n.params with
      | [] -> []
      | ps -> [ ("params", J.Obj (List.map (fun (k, v) -> (k, J.Str v)) ps)) ])
    @ [ ("children", J.Arr (List.map info_json n.children)) ])

let to_json ?(bounds = []) ?composition ?(annotations = []) model =
  check_portable model;
  List.iter
    (fun (n, _) ->
      match San.Model.find_place_opt model n with
      | Some _ -> ()
      | None ->
          invalid_arg
            (Printf.sprintf "Serial.to_json: bound for unknown int place %S" n))
    bounds;
  J.Obj
    (("schema", J.Str schema)
     :: ("name", J.Str (San.Model.name model))
     :: ("places", J.Arr (places_json ~bounds model))
     :: ( "activities",
          J.Arr
            (Array.to_list
               (Array.map activity_json (San.Model.activities model))) )
     :: (match composition with
        | Some c -> [ ("composition", info_json c) ]
        | None -> [])
    @ match annotations with [] -> [] | l -> [ ("annotations", J.Obj l) ])

let emit ?bounds ?composition ?annotations model =
  J.to_string (to_json ?bounds ?composition ?annotations model)

let save path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string j);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parsing.  Every error carries a JSON-pointer-style path rooted at   *)
(* [$], e.g. [$.activities[3].cases[0].effect.ops[1]].                 *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let fail at fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (at ^ ": " ^ s))) fmt

let key at k = at ^ "." ^ k
let idx at i = Printf.sprintf "%s[%d]" at i

let short j =
  let s = J.to_string j in
  if String.length s > 60 then String.sub s 0 57 ^ "..." else s

let get_obj at = function
  | J.Obj kvs -> kvs
  | j -> fail at "expected an object, got %s" (short j)

let get_arr at = function
  | J.Arr l -> l
  | j -> fail at "expected an array, got %s" (short j)

let get_str at = function
  | J.Str s -> s
  | j -> fail at "expected a string, got %s" (short j)

let get_num at = function
  | J.Num x -> x
  | j -> fail at "expected a number, got %s" (short j)

let get_int at j =
  let x = get_num at j in
  if Float.is_integer x && Float.abs x <= 1e15 then int_of_float x
  else fail at "expected an integer, got %s" (short j)

let field at kvs k =
  match List.assoc_opt k kvs with
  | Some v -> v
  | None -> fail at "missing field %S" k

let opt_field kvs k = List.assoc_opt k kvs

let any_place_ref places at name =
  match Hashtbl.find_opt places name with
  | Some p -> p
  | None -> fail at "unknown place %S" name

let int_place_ref places at name =
  match Hashtbl.find_opt places name with
  | Some (San.Place.P p) -> p
  | Some (San.Place.F _) ->
      fail at "place %S is a float place, expected an int place" name
  | None -> fail at "unknown place %S" name

let float_place_ref places at name =
  match Hashtbl.find_opt places name with
  | Some (San.Place.F p) -> p
  | Some (San.Place.P _) ->
      fail at "place %S is an int place, expected a float place" name
  | None -> fail at "unknown place %S" name

let rel_of at = function
  | "=" -> San.Effect.Eq
  | "!=" -> San.Effect.Ne
  | "<" -> San.Effect.Lt
  | "<=" -> San.Effect.Le
  | ">" -> San.Effect.Gt
  | ">=" -> San.Effect.Ge
  | s -> fail at "unknown comparison operator %S" s

let rec p_iexpr places at j =
  match j with
  | J.Num _ -> San.Effect.Int (get_int at j)
  | J.Obj [ ("mark", v) ] ->
      let kat = key at "mark" in
      San.Effect.Mark (int_place_ref places kat (get_str kat v))
  | J.Arr [ J.Str "ind"; c ] -> San.Effect.Ind (p_cond places (idx at 1) c)
  | J.Arr [ J.Str (("+" | "-" | "*") as t); a; b ] ->
      let a = p_iexpr places (idx at 1) a
      and b = p_iexpr places (idx at 2) b in
      (match t with
      | "+" -> San.Effect.Add (a, b)
      | "-" -> San.Effect.Sub (a, b)
      | _ -> San.Effect.Mul (a, b))
  | j -> fail at "cannot parse integer expression %s" (short j)

and p_cond places at j =
  match j with
  | J.Bool b -> San.Effect.Const b
  | J.Arr (J.Str "all" :: cs) ->
      San.Effect.All (List.mapi (fun i c -> p_cond places (idx at (i + 1)) c) cs)
  | J.Arr (J.Str "any" :: cs) ->
      San.Effect.Any (List.mapi (fun i c -> p_cond places (idx at (i + 1)) c) cs)
  | J.Arr [ J.Str "not"; c ] -> San.Effect.Not (p_cond places (idx at 1) c)
  | J.Arr [ J.Str (("=" | "!=" | "<" | "<=" | ">" | ">=") as r); a; b ] ->
      San.Effect.Cmp
        (p_iexpr places (idx at 1) a, rel_of at r, p_iexpr places (idx at 2) b)
  | j -> fail at "cannot parse condition %s" (short j)

let rec p_fexpr places at j =
  match j with
  | J.Num x -> San.Effect.Flt x
  | J.Obj [ ("fmark", v) ] ->
      let kat = key at "fmark" in
      San.Effect.FMark (float_place_ref places kat (get_str kat v))
  | J.Arr [ J.Str "of_int"; e ] -> San.Effect.OfInt (p_iexpr places (idx at 1) e)
  | J.Arr [ J.Str (("+." | "-." | "*." | "/.") as t); a; b ] ->
      let a = p_fexpr places (idx at 1) a
      and b = p_fexpr places (idx at 2) b in
      (match t with
      | "+." -> San.Effect.FAdd (a, b)
      | "-." -> San.Effect.FSub (a, b)
      | "*." -> San.Effect.FMul (a, b)
      | _ -> San.Effect.FDiv (a, b))
  | j -> fail at "cannot parse float expression %s" (short j)

let rec p_rexpr places at j =
  match j with
  | J.Num x -> San.Effect.RConst x
  | J.Arr [ J.Str "if"; c; a; b ] ->
      San.Effect.RIf
        ( p_cond places (idx at 1) c,
          p_rexpr places (idx at 2) a,
          p_rexpr places (idx at 3) b )
  | j -> San.Effect.RExpr (p_fexpr places at j)

let p_op places at j =
  match j with
  | J.Arr [ J.Str (("set" | "inc") as t); n; e ] ->
      let p = int_place_ref places (idx at 1) (get_str (idx at 1) n) in
      let e = p_iexpr places (idx at 2) e in
      if t = "set" then San.Effect.Set (p, e) else San.Effect.Inc (p, e)
  | J.Arr [ J.Str (("fset" | "finc") as t); n; e ] ->
      let p = float_place_ref places (idx at 1) (get_str (idx at 1) n) in
      let e = p_fexpr places (idx at 2) e in
      if t = "fset" then San.Effect.FSet (p, e) else San.Effect.FInc (p, e)
  | j -> fail at "cannot parse marking op %s" (short j)

(* [{"checked": E}] parses to the bare IR: the reference closure cannot
   be reconstructed from disk, so a reloaded model re-emits the inner
   effect without the tag (and diagnostic A016 has nothing to replay). *)
let rec p_effect places at j =
  match j with
  | J.Str "skip" -> San.Effect.Skip
  | J.Obj [ ("ops", v) ] ->
      let oat = key at "ops" in
      San.Effect.Ops
        (List.mapi (fun i o -> p_op places (idx oat i) o) (get_arr oat v))
  | J.Obj [ ("seq", v) ] ->
      let sat = key at "seq" in
      San.Effect.Seq
        (List.mapi (fun i e -> p_effect places (idx sat i) e) (get_arr sat v))
  | J.Obj (("if", c) :: rest) -> (
      let c = p_cond places (key at "if") c in
      match rest with
      | [ ("then", t) ] ->
          San.Effect.If (c, p_effect places (key at "then") t, San.Effect.Skip)
      | [ ("then", t); ("else", e) ] ->
          San.Effect.If
            ( c,
              p_effect places (key at "then") t,
              p_effect places (key at "else") e )
      | _ ->
          fail at "an \"if\" effect needs \"then\" and an optional \"else\"")
  | J.Obj [ ("pick", v) ] ->
      let pat = key at "pick" in
      San.Effect.Pick
        (List.mapi
           (fun i b ->
             let bat = idx pat i in
             match b with
             | J.Arr [ c; e ] ->
                 (p_cond places (idx bat 0) c, p_effect places (idx bat 1) e)
             | j -> fail bat "expected a [condition, effect] pair, got %s"
                      (short j))
           (get_arr pat v))
  | J.Obj [ ("checked", v) ] -> p_effect places (key at "checked") v
  | j -> fail at "cannot parse effect %s" (short j)

let p_dist places at kvs =
  let r k = p_rexpr places (key at k) (field at kvs k) in
  match get_str (key at "kind") (field at kvs "kind") with
  | "exponential" -> San.Activity.DExp (r "rate")
  | "deterministic" -> San.Activity.DDet (r "delay")
  | "uniform" -> San.Activity.DUniform (r "lo", r "hi")
  | "erlang" ->
      San.Activity.DErlang (get_int (key at "k") (field at kvs "k"), r "rate")
  | "gamma" -> San.Activity.DGamma (r "shape", r "rate")
  | "weibull" -> San.Activity.DWeibull (r "shape", r "scale")
  | "lognormal" -> San.Activity.DLognormal (r "mu", r "sigma")
  | "normal" -> San.Activity.DNormal (r "mean", r "stddev")
  | k -> fail (key at "kind") "unknown distribution kind %S" k

let p_timing places at j =
  let kvs = get_obj at j in
  match get_str (key at "type") (field at kvs "type") with
  | "instantaneous" -> San.Activity.Instantaneous
  | "timed" ->
      let policy =
        match get_str (key at "policy") (field at kvs "policy") with
        | "resample" -> San.Activity.Resample
        | "keep" -> San.Activity.Keep
        | s -> fail (key at "policy") "unknown reactivation policy %S" s
      in
      let dat = key at "dist" in
      let d = p_dist places dat (get_obj dat (field at kvs "dist")) in
      San.Activity.Timed
        { dist = San.Activity.dist_fn d; policy; dist_ir = Some d }
  | s -> fail (key at "type") "unknown timing type %S" s

let p_place b places bounds at j =
  let kvs = get_obj at j in
  let name = get_str (key at "name") (field at kvs "name") in
  try
    match get_str (key at "kind") (field at kvs "kind") with
    | "int" ->
        let init =
          match opt_field kvs "init" with
          | Some v -> get_int (key at "init") v
          | None -> 0
        in
        let p = San.Model.Builder.int_place b ~init name in
        Hashtbl.replace places name (San.Place.P p);
        (match opt_field kvs "bound" with
        | Some v -> bounds := (name, get_int (key at "bound") v) :: !bounds
        | None -> ())
    | "float" ->
        let init =
          match opt_field kvs "init" with
          | Some v -> get_num (key at "init") v
          | None -> 0.0
        in
        let p = San.Model.Builder.float_place b ~init name in
        Hashtbl.replace places name (San.Place.F p)
    | k -> fail (key at "kind") "unknown place kind %S" k
  with Invalid_argument msg -> fail at "%s" msg

let p_activity b places at j =
  let kvs = get_obj at j in
  let name = get_str (key at "name") (field at kvs "name") in
  let timing = p_timing places (key at "timing") (field at kvs "timing") in
  let guard = p_cond places (key at "guard") (field at kvs "guard") in
  let rat = key at "reads" in
  let reads =
    List.mapi
      (fun i r -> any_place_ref places (idx rat i) (get_str (idx rat i) r))
      (get_arr rat (field at kvs "reads"))
  in
  let cat = key at "cases" in
  let cases =
    List.mapi
      (fun i c ->
        let cat = idx cat i in
        let ckvs = get_obj cat c in
        let w = p_rexpr places (key cat "weight") (field cat ckvs "weight") in
        let eff = p_effect places (key cat "effect") (field cat ckvs "effect") in
        San.Activity.make_case ~weight_ir:w eff)
      (get_arr cat (field at kvs "cases"))
  in
  try San.Model.Builder.activity_ir b ~name ~timing ~guard ~reads cases
  with Invalid_argument msg -> fail at "%s" msg

let p_composition model places at j =
  let rec node parent_path ~root at j =
    let kvs = get_obj at j in
    let label = get_str (key at "label") (field at kvs "label") in
    let path =
      if root then ""
      else if parent_path = "" then label
      else parent_path ^ "." ^ label
    in
    let rep_copies =
      match opt_field kvs "rep" with
      | Some v -> Some (get_int (key at "rep") v)
      | None -> None
    in
    let pat = key at "places" in
    let node_places =
      List.mapi
        (fun i p -> any_place_ref places (idx pat i) (get_str (idx pat i) p))
        (get_arr pat (field at kvs "places"))
    in
    let aat = key at "activities" in
    let activities =
      List.mapi
        (fun i a ->
          let n = get_str (idx aat i) a in
          match San.Model.find_activity model n with
          | _ -> n
          | exception Not_found -> fail (idx aat i) "unknown activity %S" n)
        (get_arr aat (field at kvs "activities"))
    in
    let params =
      match opt_field kvs "params" with
      | None -> []
      | Some v ->
          let pat = key at "params" in
          List.map
            (fun (k, v) -> (k, get_str (key pat k) v))
            (get_obj pat v)
    in
    let chat = key at "children" in
    let children =
      List.mapi
        (fun i c -> node path ~root:false (idx chat i) c)
        (get_arr chat (field at kvs "children"))
    in
    { Compose.path; label; rep_copies; places = node_places; activities;
      params; children }
  in
  node "" ~root:true at j

type loaded = {
  model : San.Model.t;
  composition : Compose.info option;
  bounds : (string * int) list;
  annotations : (string * J.t) list;
}

let of_json j =
  try
    let at = "$" in
    let kvs = get_obj at j in
    let s = get_str (key at "schema") (field at kvs "schema") in
    if s <> schema then
      fail (key at "schema") "unsupported schema %S (this reader reads %S)" s
        schema;
    let name = get_str (key at "name") (field at kvs "name") in
    let b = San.Model.Builder.create name in
    let places = Hashtbl.create 64 in
    let bounds = ref [] in
    let pat = key at "places" in
    List.iteri
      (fun i p -> p_place b places bounds (idx pat i) p)
      (get_arr pat (field at kvs "places"));
    let aat = key at "activities" in
    List.iteri
      (fun i a -> p_activity b places (idx aat i) a)
      (get_arr aat (field at kvs "activities"));
    let model = San.Model.Builder.build b in
    let composition =
      match opt_field kvs "composition" with
      | Some c -> Some (p_composition model places (key at "composition") c)
      | None -> None
    in
    let annotations =
      match opt_field kvs "annotations" with
      | None -> []
      | Some (J.Obj l) -> l
      | Some j -> fail (key at "annotations") "expected an object, got %s"
                    (short j)
    in
    Ok { model; composition; bounds = List.rev !bounds; annotations }
  with Parse_error msg -> Error msg

let parse s = Result.bind (J.of_string s) of_json

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Structural diff.                                                   *)
(* ------------------------------------------------------------------ *)

module Diff = struct
  type entry = { at : string; change : string }

  let named at n = Printf.sprintf "%s[%S]" at n

  (* [Some names] when every element is an object with a string "name" —
     the shape of the places and activities arrays, which then match by
     name instead of position. *)
  let named_arr l =
    let name_of = function
      | J.Obj kvs -> (
          match List.assoc_opt "name" kvs with
          | Some (J.Str s) -> Some s
          | _ -> None)
      | _ -> None
    in
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | x :: tl -> (
          match name_of x with Some n -> go (n :: acc) tl | None -> None)
    in
    go [] l

  let rec walk acc at a b =
    if a = b then acc
    else
      match (a, b) with
      | J.Obj ka, J.Obj kb ->
          let acc =
            List.fold_left
              (fun acc (k, va) ->
                match List.assoc_opt k kb with
                | Some vb -> walk acc (key at k) va vb
                | None ->
                    { at = key at k; change = "removed (was " ^ short va ^ ")" }
                    :: acc)
              acc ka
          in
          List.fold_left
            (fun acc (k, vb) ->
              if List.mem_assoc k ka then acc
              else { at = key at k; change = "added: " ^ short vb } :: acc)
            acc kb
      | J.Arr la, J.Arr lb -> (
          match (named_arr la, named_arr lb) with
          | Some na, Some nb ->
              let pa = List.combine na la and pb = List.combine nb lb in
              let acc =
                List.fold_left
                  (fun acc (n, va) ->
                    match List.assoc_opt n pb with
                    | Some vb -> walk acc (named at n) va vb
                    | None ->
                        {
                          at = named at n;
                          change = "removed (was " ^ short va ^ ")";
                        }
                        :: acc)
                  acc pa
              in
              let acc =
                List.fold_left
                  (fun acc (n, vb) ->
                    if List.mem_assoc n pa then acc
                    else { at = named at n; change = "added: " ^ short vb }
                         :: acc)
                  acc pb
              in
              let ca = List.filter (fun n -> List.mem n nb) na in
              let cb = List.filter (fun n -> List.mem n na) nb in
              if ca <> cb then { at; change = "order changed" } :: acc else acc
          | _ ->
              let rec go acc i la lb =
                match (la, lb) with
                | [], [] -> acc
                | va :: ta, vb :: tb -> go (walk acc (idx at i) va vb) (i + 1) ta tb
                | va :: ta, [] ->
                    go
                      ({
                         at = idx at i;
                         change = "removed (was " ^ short va ^ ")";
                       }
                      :: acc)
                      (i + 1) ta []
                | [], vb :: tb ->
                    go
                      ({ at = idx at i; change = "added: " ^ short vb } :: acc)
                      (i + 1) [] tb
              in
              go acc 0 la lb)
      | _ ->
          { at; change = "changed: " ^ short a ^ " -> " ^ short b } :: acc

  let diff a b = List.rev (walk [] "$" a b)

  let pp ppf entries =
    List.iter (fun e -> Format.fprintf ppf "%s: %s@." e.at e.change) entries

  let to_json entries =
    J.Arr
      (List.map
         (fun e ->
           J.Obj [ ("path", J.Str e.at); ("change", J.Str e.change) ])
         entries)
end
