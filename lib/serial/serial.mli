(** Versioned on-disk model format ([itua-model/1]) and structural diff.

    The declarative effect IR ({!San.Effect}) made effects comparable
    data; this module completes the round trip: a {!San.Model.t} whose
    guards, timing distributions, case weights, and effects are all
    declarative serializes to a versioned, {e deterministic} JSON
    document over {!Report.Json} — equal models always produce equal
    bytes — and parses back to a model that simulates bit-identically
    (same trajectories under the same seeds) and analyses identically
    (same A001–A016 diagnostics and invariant certificates).

    The full specification of the format lives in [doc/FORMAT.md].
    Highlights the caller must know:

    {ul
    {- Places serialize in uid (creation) order, so the rebuilt model
       assigns identical uids and indices — journal order, dependents,
       and therefore trajectories are preserved exactly.}
    {- {!San.Effect.Opaque} effects, closure enabling predicates,
       closure timing distributions, and closure case weights are
       {e not} portable: {!to_json} raises {!Unportable} naming the
       offending activity. Build with the [*_rate_ir]/[timed_dist_ir]
       entry points of {!San.Model.Builder} to stay portable.}
    {- [Checked] effects serialize as their IR under a ["checked"] tag;
       the reference closure is dropped, so diagnostic A016 cannot run
       on a reloaded model (documented caveat).}
    {- The format reserves an optional per-place ["bound"] (declared
       capacity, informational — e.g. from a structural certificate);
       it round-trips through {!loaded.bounds} without affecting the
       model.}} *)

val schema : string
(** ["itua-model/1"]. *)

exception Unportable of string
(** Raised by {!to_json}/{!emit} when the model contains a closure
    (opaque effect, closure guard/distribution/weight) that cannot be
    represented in the format. The message aggregates {e every}
    offending activity with all of its reasons (guard, timing, case
    weights, opaque effects by name), so one round trip surfaces the
    full porting worklist rather than the first blocker. *)

val to_json :
  ?bounds:(string * int) list ->
  ?composition:Compose.info ->
  ?annotations:(string * Report.Json.t) list ->
  San.Model.t ->
  Report.Json.t
(** Serialize a model. [bounds] attaches declared capacities to int
    places by name; [composition] embeds the Replicate/Join tree;
    [annotations] is an opaque key/value envelope section (e.g. the
    ITUA parameter block) passed through verbatim.
    Raises {!Unportable}. *)

val emit :
  ?bounds:(string * int) list ->
  ?composition:Compose.info ->
  ?annotations:(string * Report.Json.t) list ->
  San.Model.t ->
  string
(** [Report.Json.to_string] of {!to_json}: compact, single-line,
    deterministic. Raises {!Unportable}. *)

type loaded = {
  model : San.Model.t;
  composition : Compose.info option;
  bounds : (string * int) list;  (** declared int-place bounds, file order *)
  annotations : (string * Report.Json.t) list;
}
(** A parsed document. [composition] is present when the file embedded
    the Replicate/Join tree (validated against the model's place and
    activity names). *)

val of_json : Report.Json.t -> (loaded, string) result
(** Validate and rebuild. Errors carry a JSON-pointer-style location,
    e.g. ["$.activities[12].cases[0].effect.ops[3]: unknown place
    \"foo\""]. *)

val parse : string -> (loaded, string) result
(** [of_json] after [Report.Json.of_string]; syntax errors carry the
    byte offset. *)

val load : string -> (loaded, string) result
(** [parse] on a file's contents. *)

val save : string -> Report.Json.t -> unit
(** Write a document ({!to_json} output) to a file, with a trailing
    newline. *)

(** Structural diff between two serialized models. The differ walks the
    canonical JSON trees; arrays whose elements are named objects
    (places, activities) match by ["name"], so an inserted place
    reports as one addition instead of shifting every later element.
    Paths use the same JSON-pointer style as parse errors,
    with named-array elements keyed by name:
    [places["app[0].corrupt"].init]. *)
module Diff : sig
  type entry = {
    at : string;  (** path into the document, e.g. [activities["x"].guard] *)
    change : string;  (** [changed: a -> b], [added: v], [removed (was v)], [order changed] *)
  }

  val diff : Report.Json.t -> Report.Json.t -> entry list
  (** Entries in document order; [[]] iff the documents are
      structurally identical. *)

  val pp : Format.formatter -> entry list -> unit
  (** One entry per line. *)

  val to_json : entry list -> Report.Json.t
  (** [[{"path":...,"change":...}, ...]] — deterministic. *)
end
