type value = Attack | Retreat

let default_value = Retreat

let pp_value ppf = function
  | Attack -> Format.pp_print_string ppf "attack"
  | Retreat -> Format.pp_print_string ppf "retreat"

type strategy = path:int list -> receiver:int -> value -> value

let loyal_strategy ~path:_ ~receiver:_ v = v
let inverting_strategy ~path:_ ~receiver:_ = function
  | Attack -> Retreat
  | Retreat -> Attack

let split_strategy ~path:_ ~receiver v =
  ignore v;
  if receiver mod 2 = 0 then Attack else Retreat

let random_strategy stream ~path:_ ~receiver:_ v =
  ignore v;
  if Prng.Stream.bool stream then Attack else Retreat

let majority votes =
  let attack = List.length (List.filter (fun v -> v = Attack) votes) in
  let retreat = List.length votes - attack in
  if attack > retreat then Attack
  else if retreat > attack then Retreat
  else default_value

module Om = struct
  (* [om] returns each lieutenant's adopted value for the sub-protocol in
     which [commander] broadcasts [value] to [lieutenants]; [path] is the
     relay chain above the commander (for the traitor strategy). *)
  let rec om ~traitors ~strategy ~rounds ~commander ~lieutenants ~path ~value =
    let path = path @ [ commander ] in
    (* Evaluate each send exactly once: a strategy may be stateful (e.g.
       coin-flipping), but a given message has one value — the lieutenant
       relays exactly what it received. *)
    let received =
      List.map
        (fun receiver ->
          let v =
            if traitors.(commander) then strategy ~path ~receiver value
            else value
          in
          (receiver, v))
        lieutenants
    in
    let sent receiver = List.assoc receiver received in
    if rounds = 0 then sent
    else begin
      (* Step 2: every lieutenant relays its received value to the others
         through OM(rounds - 1). *)
      let relays =
        List.map
          (fun j ->
            let others = List.filter (fun l -> l <> j) lieutenants in
            ( j,
              om ~traitors ~strategy ~rounds:(rounds - 1) ~commander:j
                ~lieutenants:others ~path ~value:(sent j) ))
          lieutenants
      in
      (* Step 3: lieutenant l takes the majority of its own received value
         and the relayed values. *)
      fun l ->
        let votes =
          List.map (fun (j, relay) -> if j = l then sent l else relay l) relays
        in
        majority votes
    end

  let decide ~n ~rounds ~traitors ~strategy ~commander_value =
    if n < 2 then invalid_arg "Byzantine.Om.decide: n must be >= 2";
    if rounds < 0 then invalid_arg "Byzantine.Om.decide: rounds must be >= 0";
    if Array.length traitors <> n then
      invalid_arg "Byzantine.Om.decide: traitors array must have length n";
    let lieutenants = List.init (n - 1) (fun i -> i + 1) in
    let adopted =
      om ~traitors ~strategy ~rounds ~commander:0 ~lieutenants ~path:[]
        ~value:commander_value
    in
    Array.init n (fun i -> if i = 0 then commander_value else adopted i)

  let interactive_consistency ~decisions ~traitors ~commander_value =
    let loyal_lieutenants =
      List.filter
        (fun i -> not traitors.(i))
        (List.init (Array.length decisions - 1) (fun i -> i + 1))
    in
    match loyal_lieutenants with
    | [] -> true
    | first :: rest ->
        let v = decisions.(first) in
        let ic1 = List.for_all (fun i -> decisions.(i) = v) rest in
        let ic2 = traitors.(0) || v = commander_value in
        ic1 && ic2
end

module Sm = struct
  (* A message is a value plus its (unforgeable) signature chain; the
     first signer is the commander, so a value is bound to its chain. *)
  type message = { v : value; chain : int list }

  let decide ~n ~rounds ~traitors ~strategy ~commander_value =
    if n < 2 then invalid_arg "Byzantine.Sm.decide: n must be >= 2";
    if rounds < 0 then invalid_arg "Byzantine.Sm.decide: rounds must be >= 0";
    if Array.length traitors <> n then
      invalid_arg "Byzantine.Sm.decide: traitors array must have length n";
    (* Accepted value sets and the frontier of fresh messages per process. *)
    let accepted = Array.make n [] in
    let fresh = Array.make n [] in
    let accept i msg =
      if not (List.mem msg.v accepted.(i)) then
        accepted.(i) <- msg.v :: accepted.(i);
      fresh.(i) <- msg :: fresh.(i)
    in
    (* Round 0: the commander signs and sends.  A traitorous commander may
       sign different orders for different receivers. *)
    for i = 1 to n - 1 do
      let v =
        if traitors.(0) then strategy ~path:[ 0 ] ~receiver:i commander_value
        else commander_value
      in
      accept i { v; chain = [ 0 ] }
    done;
    (* Rounds 1..rounds: relay fresh messages with one more signature.
       Loyal processes relay faithfully; a traitor relays selectively (it
       cannot alter a signed value, only withhold it). *)
    for _ = 1 to rounds do
      let outgoing = Array.map (fun msgs -> msgs) fresh in
      Array.iteri (fun i _ -> fresh.(i) <- []) fresh;
      Array.iteri
        (fun sender msgs ->
          if sender > 0 then
            List.iter
              (fun msg ->
                let chain = msg.chain @ [ sender ] in
                for receiver = 1 to n - 1 do
                  if (not (List.mem receiver chain)) && receiver <> sender then begin
                    let forward =
                      if traitors.(sender) then
                        (* Selective forwarding: the strategy agreeing with
                           the signed value means "forward". *)
                        strategy ~path:chain ~receiver msg.v = msg.v
                      else true
                    in
                    if forward then accept receiver { msg with chain }
                  end
                done)
              msgs)
        outgoing
    done;
    Array.init n (fun i ->
        if i = 0 then commander_value
        else
          match List.sort_uniq compare accepted.(i) with
          | [ v ] -> v
          | [] | _ :: _ -> default_value)
end
