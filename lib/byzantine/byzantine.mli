(** Byzantine agreement substrate.

    The ITUA model assumes "Byzantine fault tolerance using authenticated
    Byzantine agreement": a group reaches consensus whenever fewer than a
    third of its currently active members are corrupt, which is the
    [3·corrupt < running] predicate appearing in the replication-group and
    manager-group logic. This library implements the two classical
    Lamport–Shostak–Pease algorithms that justify that abstraction:

    {ul
    {- {!Om}: the oral-messages algorithm OM(m), which satisfies the
       interactive-consistency conditions exactly when [n > 3m] — the
       origin of the one-third threshold;}
    {- {!Sm}: the signed-messages algorithm SM(m), which tolerates any
       number of traitors — the "authenticated" strengthening the ITUA
       middleware relies on to always convict misbehaving replicas whose
       messages carry valid signatures.}}

    Processes are numbered [0 .. n-1]; process 0 is the commander. A
    {e traitor strategy} decides what a corrupt process sends in place of
    each relayed value, as a function of the message path; loyal processes
    follow the protocol. The implementations favour clarity over message
    complexity (OM(m) is inherently exponential). *)

type value = Attack | Retreat

val default_value : value
(** The fallback order, [Retreat] (the paper's "default" value). *)

val pp_value : Format.formatter -> value -> unit

type strategy = path:int list -> receiver:int -> value -> value
(** What a traitor sends: given the chain of relayers so far ([path],
    commander first), the receiver, and the value a loyal process would
    have sent, produce the value actually sent. Loyal processes ignore
    the strategy. *)

val loyal_strategy : strategy
(** Sends what the protocol dictates (used for loyal processes). *)

val inverting_strategy : strategy
(** Always sends the opposite value. *)

val split_strategy : strategy
(** Sends [Attack] to even receivers, [Retreat] to odd — the classic
    three-generals counterexample strategy. *)

val random_strategy : Prng.Stream.t -> strategy
(** Flips a fair coin per message. *)

(** Oral messages: OM(m). *)
module Om : sig
  val decide :
    n:int ->
    rounds:int ->
    traitors:bool array ->
    strategy:strategy ->
    commander_value:value ->
    value array
  (** [decide ~n ~rounds ~traitors ~strategy ~commander_value] runs
      OM(rounds) among [n] processes ([traitors.(i)] marks process [i]
      corrupt) and returns each process's decision. Entries of traitors
      are their own (meaningless) decisions; read only loyal entries.
      Requires [n >= 2], [rounds >= 0], [Array.length traitors = n]. *)

  val interactive_consistency :
    decisions:value array -> traitors:bool array ->
    commander_value:value -> bool
  (** Checks IC1 (all loyal lieutenants agree) and IC2 (if the commander
      is loyal, they agree on its value). *)
end

(** Signed messages: SM(m). Signatures are unforgeable by construction —
    a traitor can extend a signature chain only with its own id. *)
module Sm : sig
  val decide :
    n:int ->
    rounds:int ->
    traitors:bool array ->
    strategy:strategy ->
    commander_value:value ->
    value array
  (** [decide ~n ~rounds ...] runs SM(rounds). With [rounds >= number of
      traitors], IC1 and IC2 hold for {e any} number of traitors. A
      traitorous commander may sign both orders; loyal processes that see
      two differently-signed orders fall back to {!default_value} —
      together. *)
end
