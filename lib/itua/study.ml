type config = { reps : int; seed : int64; domains : int }

let default_config =
  { reps = 2000; seed = 20030622L; domains = Sim.Runner.default_domains () }

let quick_config = { default_config with reps = 300 }

let ci_cell (r : Sim.Runner.result) =
  if r.Sim.Runner.n_defined = 0 then None else Some r.Sim.Runner.ci

(* Run one parameter point and return its measures keyed by reward name. *)
let run_point cfg params rewards =
  let h = Model.build params in
  let horizon =
    List.fold_left
      (fun acc spec -> Float.max acc (Sim.Reward.latest_time spec))
      1.0 (rewards h)
  in
  let spec = Sim.Runner.spec ~model:h.Model.model ~horizon (rewards h) in
  Sim.Runner.run ~domains:cfg.domains ~seed:cfg.seed ~reps:cfg.reps spec

(* --- Study 4.1 --- *)

let fig3_distributions = [ (12, 1); (6, 2); (4, 3); (3, 4); (2, 6); (1, 12) ]
let fig3_app_counts = [ 2; 4; 6; 8 ]

let fig3 ?(config = default_config) () =
  let series = List.map (Printf.sprintf "%d applications") fig3_app_counts in
  let table title =
    Report.create ~title ~x_label:"hosts/domain" ~series
  in
  let ta = table "Fig 3(a): unavailability for the first 5 hours" in
  let tb = table "Fig 3(b): unreliability for the first 5 hours" in
  let tc = table "Fig 3(c): fraction of corrupt hosts in an excluded domain" in
  let td = table "Fig 3(d): fraction of domains excluded at t=5" in
  List.iter
    (fun (nd, nh) ->
      let results =
        List.map
          (fun na ->
            let params =
              { Params.default with
                Params.num_domains = nd;
                hosts_per_domain = nh;
                num_apps = na;
              }
            in
            run_point config params (fun h ->
                [
                  Measures.unavailability h ~until:5.0;
                  Measures.unreliability h ~until:5.0;
                  Measures.fraction_corrupt_in_excluded h;
                  Measures.fraction_domains_excluded h ~at:5.0;
                ]))
          fig3_app_counts
      in
      let col i = List.map (fun rs -> ci_cell (List.nth rs i)) results in
      Report.add_row ta ~x:(float_of_int nh) (col 0);
      Report.add_row tb ~x:(float_of_int nh) (col 1);
      Report.add_row tc ~x:(float_of_int nh) (col 2);
      Report.add_row td ~x:(float_of_int nh) (col 3))
    fig3_distributions;
  [ ("fig3a", ta); ("fig3b", tb); ("fig3c", tc); ("fig3d", td) ]

(* --- Study 4.2 --- *)

let fig4 ?(config = default_config) () =
  let ta =
    Report.create ~title:"Fig 4(a): unavailability (10 domains)"
      ~x_label:"hosts/domain" ~series:[ "[0,5]"; "[0,10]" ]
  in
  let tb =
    Report.create ~title:"Fig 4(b): unreliability (10 domains)"
      ~x_label:"hosts/domain" ~series:[ "[0,5]"; "[0,10]" ]
  in
  let tc =
    Report.create
      ~title:"Fig 4(c): fraction of corrupt hosts in excluded domains (long run)"
      ~x_label:"hosts/domain" ~series:[ "long run" ]
  in
  let td =
    Report.create ~title:"Fig 4(d): fraction of domains excluded"
      ~x_label:"hosts/domain" ~series:[ "at t=5"; "at t=10" ]
  in
  List.iter
    (fun nh ->
      let params =
        { Params.default with
          Params.num_domains = 10;
          hosts_per_domain = nh;
          num_apps = 4;
        }
      in
      let rs =
        run_point config params (fun h ->
            [
              Measures.unavailability h ~until:5.0;
              Measures.unavailability h ~until:10.0;
              Measures.unreliability h ~until:5.0;
              Measures.unreliability h ~until:10.0;
              Measures.fraction_corrupt_in_excluded h;
              Measures.fraction_domains_excluded h ~at:5.0;
              Measures.fraction_domains_excluded h ~at:10.0;
            ])
      in
      let cell i = ci_cell (List.nth rs i) in
      let x = float_of_int nh in
      Report.add_row ta ~x [ cell 0; cell 1 ];
      Report.add_row tb ~x [ cell 2; cell 3 ];
      Report.add_row tc ~x [ cell 4 ];
      Report.add_row td ~x [ cell 5; cell 6 ])
    [ 1; 2; 3; 4 ];
  [ ("fig4a", ta); ("fig4b", tb); ("fig4c", tc); ("fig4d", td) ]

(* --- Study 4.3 --- *)

let fig5_spreads = [ 0.0; 2.0; 4.0; 6.0; 8.0; 10.0 ]

let fig5_params ~policy ~spread =
  {
    Params.default with
    Params.num_domains = 10;
    hosts_per_domain = 3;
    num_apps = 4;
    policy;
    corruption_multiplier = 5.0;
    spread_rate_domain = spread;
    spread_effect_domain = spread;
    (* Study 3 runs at the literal reading of the cumulative rates; see
       the interface documentation and EXPERIMENTS.md. *)
    rate_scale = 1.0;
  }

let fig5 ?(config = default_config) () =
  let series = [ "Host exclusion"; "Domain exclusion" ] in
  let table title = Report.create ~title ~x_label:"spread rate" ~series in
  let ta = table "Fig 5(a): unavailability for the first 5 hours" in
  let tb = table "Fig 5(b): unavailability for the first 10 hours" in
  let tc = table "Fig 5(c): unreliability for the first 5 hours" in
  let td = table "Fig 5(d): unreliability for the first 10 hours" in
  List.iter
    (fun spread ->
      let results =
        List.map
          (fun policy ->
            run_point config (fig5_params ~policy ~spread) (fun h ->
                [
                  Measures.unavailability h ~until:5.0;
                  Measures.unavailability h ~until:10.0;
                  Measures.unreliability h ~until:5.0;
                  Measures.unreliability h ~until:10.0;
                ]))
          [ Params.Host_exclusion; Params.Domain_exclusion ]
      in
      let col i = List.map (fun rs -> ci_cell (List.nth rs i)) results in
      Report.add_row ta ~x:spread (col 0);
      Report.add_row tb ~x:spread (col 1);
      Report.add_row tc ~x:spread (col 2);
      Report.add_row td ~x:spread (col 3))
    fig5_spreads;
  [ ("fig5a", ta); ("fig5b", tb); ("fig5c", tc); ("fig5d", td) ]

let all ?(config = default_config) () =
  fig3 ~config () @ fig4 ~config () @ fig5 ~config ()

(* --- heterogeneous fleet (partial-symmetry configuration) --- *)

let hetero_fleet_params () =
  Params.check
    {
      Params.default with
      Params.num_domains = 10;
      hosts_per_domain = 1;
      host_rate_multipliers =
        [| 1.0; 1.0; 1.0; 1.0; 1.0; 2.5; 2.5; 2.5; 2.5; 2.5 |];
    }

let hetero_fleet ?(config = default_config) () =
  let t =
    Report.create
      ~title:
        "Heterogeneous fleet: 10 domains x 1 host, soft hosts at x2.5 attack \
         rate"
      ~x_label:"soft hosts"
      ~series:
        [
          "unavailability [0,10]";
          "unreliability [0,10]";
          "domains excluded at t=10";
        ]
  in
  List.iter
    (fun soft ->
      let params =
        Params.check
          {
            Params.default with
            Params.num_domains = 10;
            hosts_per_domain = 1;
            host_rate_multipliers =
              (if soft = 0 then [||]
               else
                 Array.init 10 (fun g -> if g < 10 - soft then 1.0 else 2.5));
          }
      in
      let rs =
        run_point config params (fun h ->
            [
              Measures.unavailability h ~until:10.0;
              Measures.unreliability h ~until:10.0;
              Measures.fraction_domains_excluded h ~at:10.0;
            ])
      in
      let cell i = ci_cell (List.nth rs i) in
      Report.add_row t ~x:(float_of_int soft) [ cell 0; cell 1; cell 2 ])
    [ 0; 5 ];
  [ ("hetero_fleet", t) ]

(* --- sensitivity sweeps --- *)

let two_measures config params =
  let rs =
    run_point config params (fun h ->
        [
          Measures.unavailability h ~until:10.0;
          Measures.unreliability h ~until:10.0;
        ])
  in
  List.map ci_cell rs

let sensitivity ?(config = default_config) () =
  let series = [ "unavailability [0,10]"; "unreliability [0,10]" ] in
  let sweep title x_label xs params_of =
    let t = Report.create ~title ~x_label ~series in
    List.iter
      (fun x -> Report.add_row t ~x (two_measures config (params_of x)))
      xs;
    t
  in
  let base = Params.default in
  [
    ( "sens_detect",
      sweep "Sensitivity: host IDS detection probabilities (scaled together)"
        "scale" [ 0.25; 0.5; 0.75; 1.0 ]
        (fun s ->
          { base with
            Params.p_detect_script = s *. 0.90;
            p_detect_exploratory = s *. 0.75;
            p_detect_innovative = s *. 0.40;
          }) );
    ( "sens_recovery",
      sweep "Sensitivity: management recovery rate (per hour)" "rate"
        [ 1.0; 10.0; 100.0; 1000.0 ]
        (fun r -> { base with Params.recovery_rate = r }) );
    ( "sens_misbehave",
      sweep "Sensitivity: replication-group misbehaviour detection rate"
        "rate" [ 0.0; 1.0; 2.0; 4.0; 8.0 ]
        (fun r -> { base with Params.misbehave_rate = r }) );
    ( "sens_multiplier",
      sweep "Sensitivity: corruption multiplier on corrupt hosts"
        "multiplier" [ 1.0; 2.0; 5.0; 10.0 ]
        (fun x -> { base with Params.corruption_multiplier = x }) );
  ]

let ablation ?(config = default_config) () =
  let hot =
    {
      (fig5_params ~policy:Params.Host_exclusion ~spread:8.0) with
      Params.rate_scale = 1.0;
    }
  in
  let variants =
    [
      ("baseline (study 4.3, spread 8, host exclusion)", hot);
      ("retrying IDS misses", { hot with Params.ids_misses_sticky = false });
      ("spread quenched on exclusion",
        { hot with Params.spread_outlives_host = false });
      ("recovery not quorum-gated",
        { hot with Params.quorum_gates_recovery = false });
    ]
  in
  let legend =
    String.concat "; "
      (List.mapi (fun i (name, _) -> Printf.sprintf "%d = %s" i name) variants)
  in
  let t =
    Report.create
      ~title:("Ablations (" ^ legend ^ ")")
      ~x_label:"variant"
      ~series:[ "unavailability [0,10]"; "unreliability [0,10]" ]
  in
  List.iteri
    (fun i (_, params) ->
      Report.add_row t ~x:(float_of_int i) (two_measures config params))
    variants;
  [ ("ablation", t) ]

(* --- time trajectories --- *)

let trajectory ?(config = default_config) () =
  let hours = List.init 10 (fun i -> float_of_int (i + 1)) in
  let panel (id, label, policy) =
    let params = { Params.default with Params.policy } in
    let h = Model.build params in
    let rewards =
      List.concat_map
        (fun t ->
          [
            Measures.fraction_domains_excluded h ~at:t;
            Measures.replicas_running h ~at:t;
            Measures.unavailability h ~until:t;
          ])
        hours
    in
    let spec = Sim.Runner.spec ~model:h.Model.model ~horizon:10.0 rewards in
    let results =
      Array.of_list
        (Sim.Runner.run ~domains:config.domains ~seed:config.seed
           ~reps:config.reps spec)
    in
    let t =
      Report.create
        ~title:
          (Printf.sprintf
             "Trajectory (%s): measures over the first 10 hours" label)
        ~x_label:"hour"
        ~series:
          [ "fraction domains excluded"; "replicas running";
            "unavailability [0,t]" ]
    in
    List.iteri
      (fun i hour ->
        let cell k = ci_cell results.((3 * i) + k) in
        Report.add_row t ~x:hour [ cell 0; cell 1; cell 2 ])
      hours;
    (id, t)
  in
  List.map panel
    [
      ("traj_domain", "domain exclusion", Params.Domain_exclusion);
      ("traj_host", "host exclusion", Params.Host_exclusion);
    ]

(* --- rare-event (splitting) estimation --- *)

type rare_measure = Unreliability | Unavailability

let rare_point ?(config = default_config) ?(levels = Rare.default_levels)
    ?(clones = 4) ?initial ?(measure = Unreliability) ?(app = 0) ?handles
    ~params ~until () =
  let initial = Option.value initial ~default:config.reps in
  let h = match handles with Some h -> h | None -> Model.build params in
  let importance =
    match measure with
    | Unreliability -> Rare.unreliability ~app h ~levels
    | Unavailability -> Rare.unavailability ~app h ~levels
  in
  let cfg = Sim.Executor.config ~horizon:until () in
  Sim.Splitting.run ~domains:config.domains ~model:h.Model.model ~config:cfg
    ~importance ~levels ~clones ~initial ~seed:config.seed ()

let fig4b_rare ?(config = default_config) ?levels ?clones ?initial () =
  let t =
    Report.create
      ~title:
        "Fig 4(b) rare-event appendix: unreliability [0,5], crude MC vs \
         splitting"
      ~x_label:"hosts/domain"
      ~series:[ "crude MC"; "splitting" ]
  in
  List.iter
    (fun nh ->
      let params =
        { Params.default with
          Params.num_domains = 10;
          hosts_per_domain = nh;
          num_apps = 4;
        }
      in
      let crude =
        List.hd
          (run_point config params (fun h ->
               [ Measures.unreliability h ~until:5.0 ]))
      in
      let split =
        rare_point ~config ?levels ?clones ?initial ~measure:Unreliability
          ~params ~until:5.0 ()
      in
      Report.add_row t ~x:(float_of_int nh)
        [ ci_cell crude; Some split.Sim.Splitting.estimate.Stats.Splitting.ci ])
    [ 1; 2; 3; 4 ];
  [ ("fig4b_rare", t) ]

(* --- qualitative acceptance checks --- *)

let mean_of table ~x ~series =
  match Report.value table ~x ~series with
  | Some ci -> ci.Stats.Ci.mean
  | None -> nan

let series_means table series =
  List.map (fun x -> mean_of table ~x ~series) (Report.x_values table)

let increasing xs =
  let rec go = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && go rest
    | _ -> true
  in
  go xs

let decreasing xs = increasing (List.rev xs)

let peak_at xs ~index =
  let arr = Array.of_list xs in
  let best = ref 0 in
  Array.iteri (fun i v -> if v > arr.(!best) then best := i) arr;
  !best = index

let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let shape_checks panels =
  let find id = List.assoc_opt id panels in
  let check id label f acc =
    match find id with Some t -> (label, f t) :: acc | None -> acc
  in
  List.rev
    ([]
    |> check "fig3a" "fig3a: unavailability increases with hosts/domain"
         (fun t ->
           List.for_all
             (fun s -> increasing (series_means t s))
             [ "2 applications"; "4 applications"; "6 applications";
               "8 applications" ])
    |> check "fig3b" "fig3b: unreliability peaks at 4 hosts/domain" (fun t ->
           (* x values are [1;2;3;4;6;12]; the peak must be at index 3. *)
           List.for_all
             (fun s -> peak_at (series_means t s) ~index:3)
             [ "4 applications"; "6 applications"; "8 applications" ])
    |> check "fig3c"
         "fig3c: corrupt fraction decreases with hosts/domain, < 1 at x=1"
         (fun t ->
           List.for_all
             (fun s ->
               let means = series_means t s in
               decreasing means && List.hd means < 1.0)
             [ "2 applications"; "4 applications"; "6 applications";
               "8 applications" ])
    |> check "fig3d" "fig3d: excluded fraction increases with hosts/domain"
         (fun t ->
           List.for_all
             (fun s -> increasing (series_means t s))
             [ "2 applications"; "4 applications"; "6 applications";
               "8 applications" ])
    |> check "fig4a" "fig4a: [0,10] above [0,5]; small variation" (fun t ->
           let m5 = series_means t "[0,5]" and m10 = series_means t "[0,10]" in
           List.for_all2 (fun a b -> a <= b) m5 m10)
    |> check "fig4c" "fig4c: corrupt fraction decreases with hosts/domain"
         (fun t -> decreasing (series_means t "long run"))
    |> check "fig4d" "fig4d: excluded fraction rises end-to-end; t=10 above t=5"
         (fun t ->
           (* The paper's increase over 1..4 hosts/domain is mild, so only
              the endpoints are compared (within simulation noise). *)
           let ends xs = (List.hd xs, List.nth xs (List.length xs - 1)) in
           let m5 = series_means t "at t=5" and m10 = series_means t "at t=10" in
           let f5, l5 = ends m5 and f10, l10 = ends m10 in
           l5 >= f5 -. 0.02 && l10 >= f10 -. 0.02
           && List.for_all2 (fun a b -> a <= b) m5 m10)
    |> check "fig5c" "fig5c: host-exclusion unreliability rises with spread"
         (fun t ->
           let host = series_means t "Host exclusion" in
           List.nth host (List.length host - 1) > List.hd host)
    |> check "fig5d"
         "fig5d: domain-exclusion flat in spread; host-exclusion crosses it"
         (fun t ->
           let host = series_means t "Host exclusion" in
           let dom = series_means t "Domain exclusion" in
           let dom_avg = avg dom in
           let dom_flat =
             List.for_all (fun v -> Float.abs (v -. dom_avg) < 0.6 *. dom_avg) dom
           in
           let crosses =
             List.hd host < List.hd dom
             && List.nth host (List.length host - 1)
                > List.nth dom (List.length dom - 1)
           in
           dom_flat && crosses))

