(** The intrusion-tolerance measures defined on the ITUA model
    (paper Section 4), as simulator reward variables.

    Unavailability integrates {!Model.unavailable} (Byzantine fault or no
    replicas left); unreliability is the first-passage probability of
    {!Model.improper} (the Byzantine-fault latch — a starved application
    is unavailable but cannot become unreliable, which is what produces
    the Figure 3(b) peak). Per-application measures are averaged over all
    applications within each replication — applications are exchangeable,
    so this estimates the same quantity as observing one application with
    lower variance. *)

val unavailability : Model.handles -> until:float -> Sim.Reward.spec
(** Fraction of [\[0, until\]] during which service was not properly
    delivered (averaged over applications). *)

val unreliability : Model.handles -> until:float -> Sim.Reward.spec
(** Probability that service was improper at least once in [\[0, until\]]
    (per-application indicators averaged over applications). *)

val replicas_running : Model.handles -> at:float -> Sim.Reward.spec
(** Number of replicas of an application still running at [at] (averaged
    over applications). *)

val load_per_host : Model.handles -> at:float -> Sim.Reward.spec
(** Mean number of replicas per live host at [at]; undefined ([nan]) when
    no host is alive. *)

val fraction_corrupt_in_excluded : Model.handles -> Sim.Reward.spec
(** Mean over this replication's domain exclusions of the fraction of the
    domain's hosts that were corrupt when it was excluded; undefined when
    no domain was excluded. (Only meaningful under domain exclusion.) *)

val fraction_domains_excluded : Model.handles -> at:float -> Sim.Reward.spec
(** Fraction of security domains excluded by time [at]. *)

val all :
  Model.handles -> until:float -> Sim.Reward.spec list
(** The standard bundle used by the studies: unavailability, unreliability,
    fraction of corrupt hosts in an excluded domain, fraction of domains
    excluded at [until], and replicas running at [until]. *)
