module M = San.Marking

let default_levels = 6

let any_host_ever_attacked h m =
  Array.exists
    (fun (dp : Model.domain_places) ->
      Array.exists
        (fun (hp : Model.host_places) -> M.get m hp.Model.ever_attacked > 0)
        dp.Model.hosts)
    h.Model.domains

(* Apps the importance function ranges over: one, or all of them. *)
let app_indices ?app h =
  match app with
  | Some a ->
      let na = Array.length h.Model.apps in
      if a < 0 || a >= na then
        invalid_arg (Printf.sprintf "Itua.Rare: app %d of %d" a na);
      [| a |]
  | None -> Array.init (Array.length h.Model.apps) Fun.id

let check_levels levels =
  if levels < 1 then invalid_arg "Itua.Rare: levels must be >= 1"

let unreliability ?app h ~levels =
  check_levels levels;
  let apps = app_indices ?app h in
  fun m ->
    if Array.exists (fun a -> Model.improper h a m) apps then levels
    else begin
      let corrupt = ref 0 in
      Array.iter
        (fun a ->
          let c = M.get m h.Model.apps.(a).Model.rep_corr_undetected in
          if c > !corrupt then corrupt := c)
        apps;
      let foothold = if any_host_ever_attacked h m then 1 else 0 in
      Int.min (levels - 1) ((2 * !corrupt) + foothold)
    end

let unavailability ?app h ~levels =
  check_levels levels;
  let apps = app_indices ?app h in
  let toward_improper = unreliability ?app h ~levels in
  let nd = h.Model.params.Params.num_domains in
  fun m ->
    if Array.exists (fun a -> Model.unavailable h a m) apps then levels
    else begin
      let excluded = M.get m h.Model.excl_domains in
      let toward_starved = (levels - 1) * excluded / nd in
      Int.min (levels - 1) (Int.max (toward_improper m) toward_starved)
    end
