type event =
  | Host_intrusion of { domain : int; host : int; klass : string; time : float }
  | Host_detected of { domain : int; host : int; time : float }
  | Host_missed of { domain : int; host : int; time : float }
  | Manager_corrupted of { domain : int; host : int; time : float }
  | Manager_detected of { domain : int; host : int; time : float }
  | Replica_corrupted of { app : int; replica : int; time : float }
  | Replica_convicted of { app : int; replica : int; time : float }
  | Host_excluded of { domain : int; host : int; time : float }
  | Domain_excluded of {
      domain : int;
      corrupt : int;
      hosts : int;
      time : float;
    }
  | Recovery of { app : int; time : float }
  | App_improper of { app : int; corrupt : int; running : int; time : float }
  | App_starved of { app : int; time : float }

let event_time = function
  | Host_intrusion { time; _ }
  | Host_detected { time; _ }
  | Host_missed { time; _ }
  | Manager_corrupted { time; _ }
  | Manager_detected { time; _ }
  | Replica_corrupted { time; _ }
  | Replica_convicted { time; _ }
  | Host_excluded { time; _ }
  | Domain_excluded { time; _ }
  | Recovery { time; _ }
  | App_improper { time; _ }
  | App_starved { time; _ } ->
      time

type chain = {
  rep : int;
  matched : bool;
  horizon : float;
  events : event list;
  time_to_failure : float option;
}

(* Name-pattern matching against the model's composed place names.
   sscanf raises on mismatch; [scan] turns that into an option. *)
let scan name fmt f =
  try Some (Scanf.sscanf name fmt f)
  with Scanf.Scan_failure _ | End_of_file | Failure _ -> None

let attack_class v =
  if v = 1.0 then "script"
  else if v = 2.0 then "exploratory"
  else if v = 3.0 then "innovative"
  else Printf.sprintf "class %g" v

let chain_of_trajectory (t : Sim.Trajectory.t) =
  let state : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let get name = Option.value (Hashtbl.find_opt state name) ~default:0.0 in
  let set name v = Hashtbl.replace state name v in
  List.iter (fun (c : Sim.Trajectory.change) -> set c.place c.value) t.init;
  let events = ref [] in
  let emit e = events := e :: !events in
  let app_place a field = Printf.sprintf "apps.app[%d].%s" a field in
  List.iter
    (fun (s : Sim.Trajectory.step) ->
      let time = s.time in
      (* Apply the whole step first: each changed place appears once with
         its post-firing value, and derived numbers (quorum counts,
         exclusion tallies) should reflect the post-step state. *)
      let changed =
        List.map
          (fun (c : Sim.Trajectory.change) ->
            let old = get c.place in
            set c.place c.value;
            (c.place, old, c.value))
          s.changes
      in
      let delta name =
        match List.find_opt (fun (n, _, _) -> n = name) changed with
        | Some (_, old, v) -> int_of_float (v -. old)
        | None -> 0
      in
      (match scan s.activity "app[%d].management.recovery%!" (fun a -> a) with
      | Some a -> emit (Recovery { app = a; time })
      | None -> ());
      List.iter
        (fun (name, old, v) ->
          let rose = old = 0.0 && v > 0.0 in
          match
            scan name "security_domains.domain[%d].host[%d].%s" (fun d h f ->
                (d, h, f))
          with
          | Some (domain, host, field) -> (
              match field with
              | "attacked" when rose ->
                  emit
                    (Host_intrusion
                       { domain; host; klass = attack_class v; time })
              | "host_detected" when rose ->
                  emit (Host_detected { domain; host; time })
              | "host_id_missed" when rose ->
                  emit (Host_missed { domain; host; time })
              | "mgr_corrupt" when rose ->
                  emit (Manager_corrupted { domain; host; time })
              | "mgr_detected" when rose ->
                  emit (Manager_detected { domain; host; time })
              | "alive" when old > 0.0 && v = 0.0 ->
                  emit (Host_excluded { domain; host; time })
              | _ -> ())
          | None -> (
              match
                scan name "security_domains.domain[%d].%s" (fun d f -> (d, f))
              with
              | Some (domain, "excluded") when rose ->
                  (* The exclusion effect updates the measure accumulators
                     in the same firing; their same-step deltas are this
                     exclusion's tallies. *)
                  emit
                    (Domain_excluded
                       {
                         domain;
                         corrupt = delta "excluded_corrupt_hosts";
                         hosts = delta "excluded_hosts";
                         time;
                       })
              | Some _ -> ()
              | None -> (
                  match
                    scan name "apps.app[%d].replica[%d].%s" (fun a r f ->
                        (a, r, f))
                  with
                  | Some (app, replica, "corrupt") when rose ->
                      emit (Replica_corrupted { app; replica; time })
                  | Some (app, replica, "convicted") when rose ->
                      emit (Replica_convicted { app; replica; time })
                  | Some _ -> ()
                  | None -> (
                      match scan name "apps.app[%d].%s" (fun a f -> (a, f)) with
                      | Some (app, "rep_grp_failure") when rose ->
                          emit
                            (App_improper
                               {
                                 app;
                                 corrupt =
                                   int_of_float
                                     (get (app_place app "rep_corr_undetected"));
                                 running =
                                   int_of_float
                                     (get (app_place app "replicas_running"));
                                 time;
                               })
                      | Some (app, "replicas_running")
                        when old > 0.0 && v = 0.0 ->
                          emit (App_starved { app; time })
                      | _ -> ()))))
        changed)
    t.steps;
  let events = List.rev !events in
  let time_to_failure =
    List.find_map
      (function
        | App_improper { time; _ } | App_starved { time; _ } -> Some time
        | _ -> None)
      events
  in
  { rep = t.rep; matched = t.matched; horizon = t.horizon; events;
    time_to_failure }

type summary = {
  chains : int;
  failed : int;
  ttf_mean : float;
  ttf_min : float;
  ttf_max : float;
}

let summarize chains =
  let ttfs = List.filter_map (fun c -> c.time_to_failure) chains in
  let n = List.length ttfs in
  let fold f = function [] -> Float.nan | x :: rest -> List.fold_left f x rest in
  {
    chains = List.length chains;
    failed = n;
    ttf_mean =
      (if n = 0 then Float.nan
       else List.fold_left ( +. ) 0.0 ttfs /. float_of_int n);
    ttf_min = fold Float.min ttfs;
    ttf_max = fold Float.max ttfs;
  }

let failed_now (h : Model.handles) m =
  let napps = h.Model.params.Params.num_apps in
  let rec go a = a < napps && (Model.improper h a m || go (a + 1)) in
  go 0

let pp_event ppf = function
  | Host_intrusion { domain; host; klass; time } ->
      Format.fprintf ppf "host d%d.h%d intruded (%s) @%.2fh" domain host klass
        time
  | Host_detected { domain; host; time } ->
      Format.fprintf ppf "intrusion on host d%d.h%d detected @%.2fh" domain
        host time
  | Host_missed { domain; host; time } ->
      Format.fprintf ppf "intrusion on host d%d.h%d missed by IDS @%.2fh"
        domain host time
  | Manager_corrupted { domain; host; time } ->
      Format.fprintf ppf "manager on d%d.h%d corrupted @%.2fh" domain host time
  | Manager_detected { domain; host; time } ->
      Format.fprintf ppf "manager corruption on d%d.h%d detected @%.2fh" domain
        host time
  | Replica_corrupted { app; replica; time } ->
      Format.fprintf ppf "app %d replica %d corrupted @%.2fh" app replica time
  | Replica_convicted { app; replica; time } ->
      Format.fprintf ppf "app %d replica %d convicted @%.2fh" app replica time
  | Host_excluded { domain; host; time } ->
      Format.fprintf ppf "host d%d.h%d shut down @%.2fh" domain host time
  | Domain_excluded { domain; corrupt; hosts; time } ->
      Format.fprintf ppf "domain %d excluded (%d/%d hosts corrupt) @%.2fh"
        domain corrupt hosts time
  | Recovery { app; time } ->
      Format.fprintf ppf "app %d recovery @%.2fh" app time
  | App_improper { app; corrupt; running; time } ->
      Format.fprintf ppf "app %d improper (%d corrupt of %d running) @%.2fh"
        app corrupt running time
  | App_starved { app; time } ->
      Format.fprintf ppf "app %d starved @%.2fh" app time

let pp_chain ppf c =
  let label =
    match c.time_to_failure with
    | Some t -> Printf.sprintf "failed @%.2fh" t
    | None -> if c.matched then "matched" else "no failure"
  in
  Format.fprintf ppf "@[<hov 2>rep %d (%s):" c.rep label;
  if c.events = [] then Format.fprintf ppf " no notable events"
  else
    List.iteri
      (fun i e ->
        if i > 0 then Format.fprintf ppf " \xe2\x86\x92@ " else
          Format.fprintf ppf "@ ";
        pp_event ppf e)
      c.events;
  Format.fprintf ppf "@]"

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>chains: %d (%d failed)@," s.chains s.failed;
  if s.failed > 0 then
    Format.fprintf ppf
      "time to failure: mean %.2fh, min %.2fh, max %.2fh@," s.ttf_mean
      s.ttf_min s.ttf_max;
  Format.fprintf ppf "@]"