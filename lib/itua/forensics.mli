(** Failure forensics: compress a recorded trajectory into a labeled
    attack chain.

    {!chain_of_trajectory} replays a {!Sim.Trajectory.t} of an ITUA model
    run against the model's place-naming scheme and emits the
    ITUA-meaningful transitions as {!event}s, in chronological order —
    host intrusions (with the attack class), IDS detections and misses,
    manager and replica corruption, convictions, exclusions (with the
    corrupt-host count the exclusion effect recorded), recoveries, and
    the failure conditions behind the paper's measures (a replication
    group turning improper, an application starving). The result renders
    as a one-line arrow chain, e.g.:

    {v rep 1723 (failed @3.91h): host d0.h2 intruded (exploratory) @2.10h
    → intrusion on host d0.h2 missed by IDS @2.41h → … → domain 0
    excluded (1/3 hosts corrupt) @3.40h → app 2 improper (1 corrupt of 2
    running) @3.91h v}

    The replay needs only the trajectory — places it never saw change are
    taken as zero, matching the recorder's contract that [init] lists
    every place that is non-zero after setup. *)

type event =
  | Host_intrusion of { domain : int; host : int; klass : string; time : float }
      (** [klass] is ["script"], ["exploratory"] or ["innovative"] *)
  | Host_detected of { domain : int; host : int; time : float }
  | Host_missed of { domain : int; host : int; time : float }
      (** the IDS missed the intrusion — final, per the sticky-miss rule *)
  | Manager_corrupted of { domain : int; host : int; time : float }
  | Manager_detected of { domain : int; host : int; time : float }
  | Replica_corrupted of { app : int; replica : int; time : float }
  | Replica_convicted of { app : int; replica : int; time : float }
  | Host_excluded of { domain : int; host : int; time : float }
      (** the host was shut down (by either exclusion policy) *)
  | Domain_excluded of {
      domain : int;
      corrupt : int;  (** corrupt hosts among those shut down *)
      hosts : int;  (** hosts shut down by this exclusion *)
      time : float;
    }
  | Recovery of { app : int; time : float }
  | App_improper of {
      app : int;
      corrupt : int;  (** undetected corrupt replicas *)
      running : int;  (** running replicas *)
      time : float;
    }  (** the Byzantine latch ([rep_grp_failure]) was set *)
  | App_starved of { app : int; time : float }
      (** the application lost its last running replica *)

val event_time : event -> float

type chain = {
  rep : int;
  matched : bool;  (** as recorded by the capturing sink's predicate *)
  horizon : float;
  events : event list;  (** chronological *)
  time_to_failure : float option;
      (** time of the first {!App_improper} or {!App_starved}, if any *)
}

val chain_of_trajectory : Sim.Trajectory.t -> chain

type summary = {
  chains : int;
  failed : int;  (** chains with a defined [time_to_failure] *)
  ttf_mean : float;  (** over failed chains; [nan] when none *)
  ttf_min : float;
  ttf_max : float;
}

val summarize : chain list -> summary

val failed_now : Model.handles -> San.Marking.t -> bool
(** [failed_now h m]: some application is currently improper
    ({!Model.improper}) — the live capture predicate behind
    [--record-failures]. Combined with the recorder's latch semantics it
    retains exactly the runs whose unreliability indicator would be 1. *)

val pp_event : Format.formatter -> event -> unit

val pp_chain : Format.formatter -> chain -> unit
(** One wrapped line: header, then the events joined with [→]. *)

val pp_summary : Format.formatter -> summary -> unit
