(** Runtime invariant checking for the ITUA model.

    The checker is an observer that re-derives every shared counter from
    the per-slot / per-host ground truth after each firing and raises
    {!Violation} on any inconsistency. It is O(model size) per event, so
    it is meant for the test suite and for debugging model changes, not
    for production benchmark runs. *)

exception Violation of string

val check_now : Model.handles -> San.Marking.t -> unit
(** One-shot check of a marking. *)

val conservation_laws : Model.handles -> Analysis.Structure.law list
(** The ITUA model's declared linear invariants, for the structural
    checker ([Analysis.Check.run ~laws]) and the executor's
    invariant-guard mode ({!Analysis.Structure.guard}):

    {ul
    {- [hosts-conserved]: every host is alive or accounted for in
       [excluded_hosts] — the paper's "hosts are only removed by
       exclusion";}
    {- [app[i]-replicas-conserved]: each application's replicas are
       running, awaiting recovery, or awaiting placement;}
    {- [managers-consistent] / [domain-managers-consistent] /
       [corrupt-managers-consistent]: the shared manager-group counters
       agree with the per-host and per-domain ground truth.}}

    Each law holds with zero drift on {e every} activity effect, not
    just at stable markings, so the A012 pass can verify them against
    the extracted incidence modes. *)

val observer : Model.handles -> unit -> Sim.Observer.t
(** Per-replication observer that checks after initialization, after every
    firing, and at the end of the run — pass to
    {!Sim.Runner.spec}'s [extra_observers]. *)
