(** Runtime invariant checking for the ITUA model.

    The checker is an observer that re-derives every shared counter from
    the per-slot / per-host ground truth after each firing and raises
    {!Violation} on any inconsistency. It is O(model size) per event, so
    it is meant for the test suite and for debugging model changes, not
    for production benchmark runs. *)

exception Violation of string

val check_now : Model.handles -> San.Marking.t -> unit
(** One-shot check of a marking. *)

val observer : Model.handles -> unit -> Sim.Observer.t
(** Per-replication observer that checks after initialization, after every
    firing, and at the end of the run — pass to
    {!Sim.Runner.spec}'s [extra_observers]. *)
