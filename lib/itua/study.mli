(** The paper's design studies (Section 4): one function per figure,
    each returning one result table per panel.

    Runner defaults: 2000 replications, seed 20030622, one OCaml domain
    per available core (capped at 8). Every panel of a figure is computed
    from the same set of simulation runs (one run measures all its
    windows), like the paper's Möbius studies.

    Calibration: studies 1 and 2 (Figures 3 and 4) run at the default
    {!Params.t.rate_scale} of 0.4; study 3 (Figure 5) runs at the literal
    reading [rate_scale = 1.0] — the regime where the host-exclusion
    scheme's spread sensitivity and the long-run unreliability crossover
    match the paper. EXPERIMENTS.md discusses the sensitivity of each
    panel to this factor. *)

type config = {
  reps : int;
  seed : int64;
  domains : int;  (** OCaml domains for parallel replications *)
}

val default_config : config

val quick_config : config
(** 300 replications — for tests and smoke runs. *)

val fig3 : ?config:config -> unit -> (string * Report.table) list
(** Study 4.1: 12 hosts distributed into 1, 2, 3, 4, 6 or 12 domains;
    2/4/6/8 applications × 7 replicas; domain exclusion; first 5 hours.
    Panels [fig3a] unavailability, [fig3b] unreliability, [fig3c] fraction
    of corrupt hosts in an excluded domain, [fig3d] fraction of domains
    excluded at t = 5. X-axis: hosts per domain. *)

val fig4 : ?config:config -> unit -> (string * Report.table) list
(** Study 4.2: 10 domains × 1..4 hosts; 4 applications × 7 replicas.
    Panels [fig4a] unavailability and [fig4b] unreliability for [0,5] and
    [0,10], [fig4c] long-run fraction of corrupt hosts in excluded domains
    (measured at t = 10), [fig4d] fraction of domains excluded at t = 5
    and t = 10. *)

val fig5 : ?config:config -> unit -> (string * Report.table) list
(** Study 4.3: 10 domains × 3 hosts, 4 applications × 7 replicas, ×5
    corruption multiplier, within-domain spread rate swept over
    0..10, host- vs domain-exclusion. Panels [fig5a]/[fig5b]
    unavailability for [0,5]/[0,10], [fig5c]/[fig5d] unreliability for
    [0,5]/[0,10]. *)

val all : ?config:config -> unit -> (string * Report.table) list
(** Every panel of every figure, in paper order. *)

val hetero_fleet_params : unit -> Params.t
(** The heterogeneous validation configuration: 10 domains × 1 host,
    4 applications × 7 replicas, with five hosts at the baseline attack
    rate and five "soft" hosts at 2.5× ({!Params.t.host_rate_multipliers}
    [= [|1;1;1;1;1;2.5;2.5;2.5;2.5;2.5|]]). The orbit pass partitions
    this fleet into two partial orbits of five hosts each — the
    configuration the bench's heterogeneous lumping gate and
    [itua_sim check --symmetry] exercise. *)

val hetero_fleet : ?config:config -> unit -> (string * Report.table) list
(** Simulation panel for the heterogeneous fleet: homogeneous 10×1
    baseline (row [x = 0] soft hosts) against the {!hetero_fleet_params}
    split (row [x = 5]) — unavailability and unreliability over [0,10]
    and the fraction of domains excluded at t = 10. Softening half the
    fleet must worsen all three, which full-symmetry lumping would have
    averaged away. *)

val sensitivity : ?config:config -> unit -> (string * Report.table) list
(** Parameter-sensitivity sweeps on the Section 4.2 baseline, in the
    spirit of the paper's "we have also tried to explore the system's
    sensitivity to variations in these parameters": host detection
    probability (scaling the three class probabilities together),
    recovery rate, misbehaviour-detection rate, and the corruption
    multiplier — each against unavailability and unreliability over
    [0,10]. *)

val ablation : ?config:config -> unit -> (string * Report.table) list
(** Modeling-choice ablations on the study-4.3 high-spread host-exclusion
    configuration: sticky vs retrying IDS misses, persistent vs quenched
    attack spread, quorum-gated vs ungated recovery (rows in that order,
    after the baseline). *)

val trajectory : ?config:config -> unit -> (string * Report.table) list
(** Time evolution of the key measures on the Section 4.2 baseline over
    [0, 10] hours, one panel per exclusion policy ([traj_domain] /
    [traj_host]): fraction of domains excluded, replicas still running
    (per application), and cumulative unavailability [0,t] at each hour.
    The paper reports only end-of-interval values; these tables show the
    dynamics behind them. *)

(** {1 Rare-event estimation} *)

type rare_measure = Unreliability | Unavailability

val rare_point :
  ?config:config ->
  ?levels:int ->
  ?clones:int ->
  ?initial:int ->
  ?measure:rare_measure ->
  ?app:int ->
  ?handles:Model.handles ->
  params:Params.t ->
  until:float ->
  unit ->
  Sim.Splitting.result
(** One splitting run ({!Sim.Splitting}) of the tail probability that
    application [app] (default 0) ever fails within [\[0, until\]] —
    improper for [Unreliability], improper-or-starved for
    [Unavailability] — using the {!Rare} importance functions. By
    exchangeability over applications this equals the mean the crude-MC
    panels report (see {!Rare.unreliability}). Defaults: [levels] from
    {!Rare.default_levels}, [clones] 4, [initial] = [config.reps], seed
    and OCaml domains from [config]. [handles] simulates that prebuilt
    model — e.g. one reloaded from disk ([itua_sim rare --model]) —
    instead of building one from [params]; the two must describe the
    same configuration. *)

val fig4b_rare :
  ?config:config ->
  ?levels:int ->
  ?clones:int ->
  ?initial:int ->
  unit ->
  (string * Report.table) list
(** The EXPERIMENTS.md rare-event appendix panel: the Study 4.2
    unreliability [0,5] column re-estimated by splitting, side by side
    with the crude-MC estimate from the same number of initial
    replications. *)

val shape_checks : (string * Report.table) list -> (string * bool) list
(** Qualitative acceptance checks on computed panels (monotonicities, the
    Figure 3(b) peak at 4 hosts/domain, Figure 5's spread sensitivity and
    long-run crossover). Returns a labelled pass/fail list; panels absent
    from the input are skipped. *)
