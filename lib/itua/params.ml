type exclusion_policy = Domain_exclusion | Host_exclusion

type t = {
  num_domains : int;
  hosts_per_domain : int;
  num_apps : int;
  num_reps : int;
  policy : exclusion_policy;
  attack_rate_system : float;
  attack_share_host : float;
  attack_share_replica : float;
  attack_share_manager : float;
  frac_script : float;
  frac_exploratory : float;
  frac_innovative : float;
  corruption_multiplier : float;
  spread_rate_domain : float;
  spread_effect_domain : float;
  spread_rate_system : float;
  spread_effect_system : float;
  spread_slope : float;
  false_alarm_rate_system : float;
  false_alarm_share_host : float;
  p_detect_script : float;
  p_detect_exploratory : float;
  p_detect_innovative : float;
  p_detect_replica : float;
  p_detect_manager : float;
  ids_decision_rate : float;
  ids_latency_stages : int;
  ids_misses_sticky : bool;
  misbehave_rate : float;
  recovery_rate : float;
  quorum_gates_recovery : bool;
  spread_outlives_host : bool;
  rate_scale : float;
  host_rate_multipliers : float array;
}

let default =
  {
    num_domains = 10;
    hosts_per_domain = 3;
    num_apps = 4;
    num_reps = 7;
    policy = Domain_exclusion;
    attack_rate_system = 3.0;
    attack_share_host = 0.70;
    attack_share_replica = 0.15;
    attack_share_manager = 0.15;
    frac_script = 0.80;
    frac_exploratory = 0.15;
    frac_innovative = 0.05;
    corruption_multiplier = 2.0;
    spread_rate_domain = 1.0;
    spread_effect_domain = 1.0;
    spread_rate_system = 0.1;
    spread_effect_system = 0.1;
    spread_slope = 1.0;
    false_alarm_rate_system = 2.0;
    false_alarm_share_host = 0.5;
    p_detect_script = 0.90;
    p_detect_exploratory = 0.75;
    p_detect_innovative = 0.40;
    p_detect_replica = 0.80;
    p_detect_manager = 0.80;
    ids_decision_rate = 4.0;
    ids_latency_stages = 1;
    ids_misses_sticky = true;
    misbehave_rate = 2.0;
    recovery_rate = 100.0;
    quorum_gates_recovery = true;
    spread_outlives_host = true;
    rate_scale = 0.4;
    host_rate_multipliers = [||];
  }

let is_prob x = 0.0 <= x && x <= 1.0

let validate p =
  let err msg = Error msg in
  if p.num_domains < 1 then err "num_domains must be >= 1"
  else if p.hosts_per_domain < 1 then err "hosts_per_domain must be >= 1"
  else if p.num_apps < 1 then err "num_apps must be >= 1"
  else if p.num_reps < 1 then err "num_reps must be >= 1"
  else if not (p.attack_rate_system > 0.0) then
    err "attack_rate_system must be > 0"
  else if
    not
      (is_prob p.attack_share_host && is_prob p.attack_share_replica
     && is_prob p.attack_share_manager)
  then err "attack shares must be probabilities"
  else if
    Float.abs
      (p.attack_share_host +. p.attack_share_replica
      +. p.attack_share_manager -. 1.0)
    > 1e-9
  then err "attack shares must sum to 1"
  else if p.false_alarm_rate_system < 0.0 then
    err "false_alarm_rate_system must be >= 0"
  else if not (is_prob p.false_alarm_share_host) then
    err "false_alarm_share_host must be in [0, 1]"
  else if
    not
      (is_prob p.frac_script && is_prob p.frac_exploratory
     && is_prob p.frac_innovative)
  then err "attack class fractions must be probabilities"
  else if
    Float.abs (p.frac_script +. p.frac_exploratory +. p.frac_innovative -. 1.0)
    > 1e-9
  then err "attack class fractions must sum to 1"
  else if p.corruption_multiplier < 1.0 then
    err "corruption_multiplier must be >= 1"
  else if p.spread_rate_domain < 0.0 || p.spread_rate_system < 0.0 then
    err "spread rates must be >= 0"
  else if p.spread_effect_domain < 0.0 || p.spread_effect_system < 0.0 then
    err "spread effects must be >= 0"
  else if p.spread_slope < 0.0 then err "spread_slope must be >= 0"
  else if
    not
      (is_prob p.p_detect_script && is_prob p.p_detect_exploratory
     && is_prob p.p_detect_innovative && is_prob p.p_detect_replica
     && is_prob p.p_detect_manager)
  then err "detection probabilities must be in [0, 1]"
  else if not (p.ids_decision_rate > 0.0) then
    err "ids_decision_rate must be > 0"
  else if p.ids_latency_stages < 1 then
    err "ids_latency_stages must be >= 1"
  else if p.misbehave_rate < 0.0 then err "misbehave_rate must be >= 0"
  else if not (p.recovery_rate > 0.0) then err "recovery_rate must be > 0"
  else if not (p.rate_scale > 0.0) then err "rate_scale must be > 0"
  else if
    Array.length p.host_rate_multipliers <> 0
    && Array.length p.host_rate_multipliers
       <> p.num_domains * p.hosts_per_domain
  then err "host_rate_multipliers must be empty or have one entry per host"
  else if
    not
      (Array.for_all
         (fun x -> x > 0.0 && Float.is_finite x)
         p.host_rate_multipliers)
  then err "host_rate_multipliers must be positive and finite"
  else Ok ()

let check p =
  match validate p with
  | Ok () -> p
  | Error msg -> invalid_arg ("Itua.Params: " ^ msg)

let num_hosts p = p.num_domains * p.hosts_per_domain
let placed_replicas_per_app p = Int.min p.num_domains p.num_reps
let total_placed_replicas p = p.num_apps * placed_replicas_per_app p

(* Per-entity rates are constant across configurations ("the probability
   of a successful intrusion into a host is assumed to be the same in all
   experiments", Section 4.2): the cumulative rates describe the paper's
   baseline system of Sections 4.2/4.3 — 10 domains x 3 hosts and
   4 applications x 7 replicas — and are split across target classes by
   the share parameters, then evenly over that reference population. *)
let reference_hosts = 30.0
let reference_replicas = 28.0

let host_attack_rate p =
  p.rate_scale *. p.attack_rate_system *. p.attack_share_host
  /. reference_hosts

let host_rate_multiplier p g =
  if Array.length p.host_rate_multipliers = 0 then 1.0
  else p.host_rate_multipliers.(g)

let host_attack_rate_of p g = host_attack_rate p *. host_rate_multiplier p g

let host_spread_slope p =
  p.spread_slope *. p.attack_rate_system /. reference_hosts

let replica_attack_rate p =
  p.rate_scale *. p.attack_rate_system *. p.attack_share_replica
  /. reference_replicas

let manager_attack_rate p =
  p.rate_scale *. p.attack_rate_system *. p.attack_share_manager
  /. reference_hosts

(* False alarms concern host OS/manager infiltration and replica
   corruption; the cumulative rate is split by class, then evenly over the
   same reference population as the attacks. *)
let host_false_alarm_rate p =
  p.rate_scale *. p.false_alarm_rate_system *. p.false_alarm_share_host
  /. reference_hosts

let replica_false_alarm_rate p =
  p.rate_scale *. p.false_alarm_rate_system
  *. (1.0 -. p.false_alarm_share_host)
  /. reference_replicas

(* JSON round trip, used by [itua_sim save]/[--model] to carry the
   parameter block inside a serialized model's annotations.  Field order
   follows the record so equal parameter sets emit equal bytes. *)

let to_json p =
  let module J = Report.Json in
  J.Obj
    [
      ("num_domains", J.int p.num_domains);
      ("hosts_per_domain", J.int p.hosts_per_domain);
      ("num_apps", J.int p.num_apps);
      ("num_reps", J.int p.num_reps);
      ( "policy",
        J.Str
          (match p.policy with
          | Domain_exclusion -> "domain"
          | Host_exclusion -> "host") );
      ("attack_rate_system", J.Num p.attack_rate_system);
      ("attack_share_host", J.Num p.attack_share_host);
      ("attack_share_replica", J.Num p.attack_share_replica);
      ("attack_share_manager", J.Num p.attack_share_manager);
      ("frac_script", J.Num p.frac_script);
      ("frac_exploratory", J.Num p.frac_exploratory);
      ("frac_innovative", J.Num p.frac_innovative);
      ("corruption_multiplier", J.Num p.corruption_multiplier);
      ("spread_rate_domain", J.Num p.spread_rate_domain);
      ("spread_effect_domain", J.Num p.spread_effect_domain);
      ("spread_rate_system", J.Num p.spread_rate_system);
      ("spread_effect_system", J.Num p.spread_effect_system);
      ("spread_slope", J.Num p.spread_slope);
      ("false_alarm_rate_system", J.Num p.false_alarm_rate_system);
      ("false_alarm_share_host", J.Num p.false_alarm_share_host);
      ("p_detect_script", J.Num p.p_detect_script);
      ("p_detect_exploratory", J.Num p.p_detect_exploratory);
      ("p_detect_innovative", J.Num p.p_detect_innovative);
      ("p_detect_replica", J.Num p.p_detect_replica);
      ("p_detect_manager", J.Num p.p_detect_manager);
      ("ids_decision_rate", J.Num p.ids_decision_rate);
      ("ids_latency_stages", J.int p.ids_latency_stages);
      ("ids_misses_sticky", J.Bool p.ids_misses_sticky);
      ("misbehave_rate", J.Num p.misbehave_rate);
      ("recovery_rate", J.Num p.recovery_rate);
      ("quorum_gates_recovery", J.Bool p.quorum_gates_recovery);
      ("spread_outlives_host", J.Bool p.spread_outlives_host);
      ("rate_scale", J.Num p.rate_scale);
      ( "host_rate_multipliers",
        J.Arr
          (Array.to_list (Array.map (fun x -> J.Num x) p.host_rate_multipliers))
      );
    ]

let of_json j =
  let module J = Report.Json in
  let exception Bad of string in
  try
    let kvs =
      match j with
      | J.Obj kvs -> kvs
      | _ -> raise (Bad "expected an object")
    in
    let get k =
      match List.assoc_opt k kvs with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "missing field %S" k))
    in
    let num k =
      match get k with
      | J.Num x -> x
      | _ -> raise (Bad (Printf.sprintf "field %S must be a number" k))
    in
    let int k =
      let x = num k in
      if Float.is_integer x then int_of_float x
      else raise (Bad (Printf.sprintf "field %S must be an integer" k))
    in
    let bool k =
      match get k with
      | J.Bool b -> b
      | _ -> raise (Bad (Printf.sprintf "field %S must be a boolean" k))
    in
    (* Optional with default: absent in itua-model/1 files written before
       heterogeneous fleets existed; emitting it unconditionally keeps
       to_json deterministic going forward. *)
    let host_rate_multipliers =
      match List.assoc_opt "host_rate_multipliers" kvs with
      | None -> [||]
      | Some (J.Arr xs) ->
          Array.of_list
            (List.map
               (function
                 | J.Num x -> x
                 | _ ->
                     raise
                       (Bad "field \"host_rate_multipliers\" must hold numbers"))
               xs)
      | Some _ ->
          raise (Bad "field \"host_rate_multipliers\" must be an array")
    in
    let policy =
      match get "policy" with
      | J.Str "domain" -> Domain_exclusion
      | J.Str "host" -> Host_exclusion
      | _ -> raise (Bad "field \"policy\" must be \"domain\" or \"host\"")
    in
    let p =
      {
        num_domains = int "num_domains";
        hosts_per_domain = int "hosts_per_domain";
        num_apps = int "num_apps";
        num_reps = int "num_reps";
        policy;
        attack_rate_system = num "attack_rate_system";
        attack_share_host = num "attack_share_host";
        attack_share_replica = num "attack_share_replica";
        attack_share_manager = num "attack_share_manager";
        frac_script = num "frac_script";
        frac_exploratory = num "frac_exploratory";
        frac_innovative = num "frac_innovative";
        corruption_multiplier = num "corruption_multiplier";
        spread_rate_domain = num "spread_rate_domain";
        spread_effect_domain = num "spread_effect_domain";
        spread_rate_system = num "spread_rate_system";
        spread_effect_system = num "spread_effect_system";
        spread_slope = num "spread_slope";
        false_alarm_rate_system = num "false_alarm_rate_system";
        false_alarm_share_host = num "false_alarm_share_host";
        p_detect_script = num "p_detect_script";
        p_detect_exploratory = num "p_detect_exploratory";
        p_detect_innovative = num "p_detect_innovative";
        p_detect_replica = num "p_detect_replica";
        p_detect_manager = num "p_detect_manager";
        ids_decision_rate = num "ids_decision_rate";
        ids_latency_stages = int "ids_latency_stages";
        ids_misses_sticky = bool "ids_misses_sticky";
        misbehave_rate = num "misbehave_rate";
        recovery_rate = num "recovery_rate";
        quorum_gates_recovery = bool "quorum_gates_recovery";
        spread_outlives_host = bool "spread_outlives_host";
        rate_scale = num "rate_scale";
        host_rate_multipliers;
      }
    in
    match validate p with Ok () -> Ok p | Error msg -> Error msg
  with Bad msg -> Error msg

let pp ppf p =
  Format.fprintf ppf
    "@[<v>ITUA parameters:@,\
     topology: %d domains x %d hosts, %d apps x %d replicas, %s@,\
     attack: %.3g/h cumulative (%.4g/%.4g/%.4g per host/replica/manager), \
     classes %g/%g/%g, multiplier x%g@,\
     spread: domain %g/h (effect %g), system %g/h (effect %g)@,\
     detection: probs %g/%g/%g hosts, %g replicas, %g managers; decision \
     %g/h; false alarms %g/h@,\
     misbehavior %g/h; recovery %g/h@]"
    p.num_domains p.hosts_per_domain p.num_apps p.num_reps
    (match p.policy with
    | Domain_exclusion -> "domain-exclusion"
    | Host_exclusion -> "host-exclusion")
    p.attack_rate_system (host_attack_rate p) (replica_attack_rate p)
    (manager_attack_rate p) p.frac_script
    p.frac_exploratory p.frac_innovative p.corruption_multiplier
    p.spread_rate_domain p.spread_effect_domain p.spread_rate_system
    p.spread_effect_system p.p_detect_script p.p_detect_exploratory
    p.p_detect_innovative p.p_detect_replica p.p_detect_manager
    p.ids_decision_rate p.false_alarm_rate_system p.misbehave_rate
    p.recovery_rate
