module P = San.Place
module M = San.Marking
module E = San.Effect
module B = San.Model.Builder

type slot_places = {
  running : P.t;
  corrupt : P.t;
  convicted : P.t;
  convicted_by_ids : P.t;
  id_missed : P.t;
  on_host : P.t;
}

type app_places = {
  replicas_running : P.t;
  rep_corr_undetected : P.t;
  rep_grp_failure : P.t;
  need_recovery : P.t;
  to_start : P.t;
  slots : slot_places array;
}

type host_places = {
  alive : P.t;
  attacked : P.t;
  ever_attacked : P.t;
  host_id_missed : P.t;
  host_detected : P.t;
  mgr_running : P.t;
  mgr_corrupt : P.t;
  mgr_id_missed : P.t;
  mgr_detected : P.t;
  num_replicas : P.t;
  prop_dom_done : P.t;
  prop_sys_done : P.t;
}

type domain_places = {
  excluded : P.t;
  spread : P.fl;
  dom_mgrs_running : P.t;
  dom_mgrs_corrupt : P.t;
  has_app : P.t array;
  hosts : host_places array;
}

type handles = {
  params : Params.t;
  model : San.Model.t;
  apps : app_places array;
  domains : domain_places array;
  mgrs_running : P.t;
  undetected_corr_mgrs : P.t;
  spread_system : P.fl;
  excl_domains : P.t;
  excl_hosts : P.t;
  excl_corrupt_hosts : P.t;
  excl_frac_sum : P.fl;
  structure : string;
  composition : Compose.info;
}

(* The handles minus the built model, used while declaring activities. *)
type skeleton = {
  p : Params.t;
  s_apps : app_places array;
  s_domains : domain_places array;
  s_mgrs_running : P.t;
  s_undetected : P.t;
  s_spread_sys : P.fl;
  s_excl_domains : P.t;
  s_excl_hosts : P.t;
  s_excl_corrupt : P.t;
  s_excl_frac : P.fl;
}

let nh sk = sk.p.Params.hosts_per_domain
let host_places_of sk g = sk.s_domains.(g / nh sk).hosts.(g mod nh sk)
let domain_idx sk g = g / nh sk

(* --- state predicates (marking closures, public API) --- *)

let dom_group_ok sk d m =
  let dp = sk.s_domains.(d) in
  3 * M.get m dp.dom_mgrs_corrupt < M.get m dp.dom_mgrs_running

let quorum_ok sk m =
  3 * M.get m sk.s_undetected < M.get m sk.s_mgrs_running

let app_improper sk a m =
  let ap = sk.s_apps.(a) in
  let corrupt = M.get m ap.rep_corr_undetected in
  corrupt > 0 && 3 * corrupt >= M.get m ap.replicas_running

(* --- IR condition vocabulary ---

   The same predicates as declarative {!San.Effect.cond} terms, so both
   activity guards and effect branches are exactly readable by
   structural analysis. *)

let pe p k = E.Cmp (E.Mark p, E.Eq, E.Int k)
let pgt p k = E.Cmp (E.Mark p, E.Gt, E.Int k)

let sum_exprs = function
  | [] -> E.Int 0
  | e :: es -> List.fold_left (fun a b -> E.Add (a, b)) e es

let dom_group_ok_c sk d =
  let dp = sk.s_domains.(d) in
  E.Cmp
    (E.Mul (E.Int 3, E.Mark dp.dom_mgrs_corrupt), E.Lt, E.Mark dp.dom_mgrs_running)

let quorum_ok_c sk =
  E.Cmp (E.Mul (E.Int 3, E.Mark sk.s_undetected), E.Lt, E.Mark sk.s_mgrs_running)

let app_improper_c sk a =
  let ap = sk.s_apps.(a) in
  E.All
    [
      pgt ap.rep_corr_undetected 0;
      E.Cmp
        ( E.Mul (E.Int 3, E.Mark ap.rep_corr_undetected),
          E.Ge,
          E.Mark ap.replicas_running );
    ]

let host_is_corrupt_c sk g =
  let hp = host_places_of sk g in
  E.Any [ pgt hp.attacked 0; pe hp.mgr_corrupt 1; pe hp.mgr_detected 1 ]

(* --- effect IR helpers (the exclusion cascade) ---

   Op order inside every helper reproduces the historical closure
   effects write-for-write: the marking journal is first-change-ordered
   and drives both dependency propagation and [Resample] re-draws, so
   preserving write order preserves bit-identical trajectories. *)

let check_byzantine_e sk a =
  E.If
    ( app_improper_c sk a,
      E.Ops [ E.Set (sk.s_apps.(a).rep_grp_failure, E.Int 1) ],
      E.Skip )

(* Kill the replica in slot [r] of app [a], known to run on host [g]. *)
let kill_replica_e sk a r g =
  let ap = sk.s_apps.(a) in
  let sl = ap.slots.(r) in
  E.Seq
    [
      E.Ops [ E.Set (sl.running, E.Int 0); E.Inc (ap.replicas_running, E.Int (-1)) ];
      E.If
        ( pe sl.corrupt 1,
          E.Ops
            [
              E.Set (sl.corrupt, E.Int 0);
              E.Inc (ap.rep_corr_undetected, E.Int (-1));
            ],
          E.Skip );
      E.Ops
        [
          E.Set (sl.convicted, E.Int 0);
          E.Set (sl.convicted_by_ids, E.Int 0);
          E.Set (sl.id_missed, E.Int 0);
          E.Set (sl.on_host, E.Int 0);
          E.Inc ((host_places_of sk g).num_replicas, E.Int (-1));
          E.Set (sk.s_domains.(domain_idx sk g).has_app.(a), E.Int 0);
          E.Inc (ap.need_recovery, E.Int 1);
        ];
      check_byzantine_e sk a;
    ]

let kill_host_e sk g =
  let hp = host_places_of sk g in
  let d = domain_idx sk g in
  let dp = sk.s_domains.(d) in
  (* Kill every replica running on this host. *)
  let kill_reps =
    Array.to_list
      (Array.mapi
         (fun a ap ->
           Array.to_list
             (Array.mapi
                (fun r sl ->
                  E.If
                    ( E.All [ pe sl.running 1; pe sl.on_host (g + 1) ],
                      kill_replica_e sk a r g,
                      E.Skip ))
                ap.slots))
         sk.s_apps)
    |> List.concat
  in
  (* Remove the manager from both group counts, then clear the host. *)
  E.Seq
    (kill_reps
    @ [
        E.If
          ( pe hp.mgr_running 1,
            E.Seq
              [
                E.Ops
                  [
                    E.Inc (sk.s_mgrs_running, E.Int (-1));
                    E.Inc (dp.dom_mgrs_running, E.Int (-1));
                  ];
                E.If
                  ( pe hp.mgr_corrupt 1,
                    E.Ops
                      [
                        E.Inc (sk.s_undetected, E.Int (-1));
                        E.Inc (dp.dom_mgrs_corrupt, E.Int (-1));
                      ],
                    E.Skip );
                E.Ops [ E.Set (hp.mgr_running, E.Int 0) ];
              ],
            E.Skip );
        E.Ops
          [
            E.Set (hp.alive, E.Int 0);
            E.Set (hp.attacked, E.Int 0);
            E.Set (hp.mgr_corrupt, E.Int 0);
            E.Set (hp.host_detected, E.Int 0);
            E.Set (hp.host_id_missed, E.Int 0);
            E.Set (hp.mgr_detected, E.Int 0);
            E.Set (hp.mgr_id_missed, E.Int 0);
          ];
      ])

let exclude_domain_e sk d =
  let dp = sk.s_domains.(d) in
  (* Measure accounting first: fraction of corrupt hosts at exclusion,
     counted by indicator sums evaluated before any host is killed. *)
  let alive_cnt =
    sum_exprs
      (Array.to_list (Array.map (fun hp -> E.Ind (pe hp.alive 1)) dp.hosts))
  in
  let corrupt_cnt =
    sum_exprs
      (Array.to_list
         (Array.mapi
            (fun h hp ->
              E.Ind
                (E.All [ pe hp.alive 1; host_is_corrupt_c sk ((d * nh sk) + h) ]))
            dp.hosts))
  in
  E.If
    ( pe dp.excluded 0,
      E.Seq
        ([
           E.Ops
             [
               E.Inc (sk.s_excl_domains, E.Int 1);
               E.Inc (sk.s_excl_hosts, alive_cnt);
               E.Inc (sk.s_excl_corrupt, corrupt_cnt);
             ];
           E.If
             ( E.Cmp (alive_cnt, E.Gt, E.Int 0),
               E.Ops
                 [
                   E.FInc
                     ( sk.s_excl_frac,
                       E.FDiv (E.OfInt corrupt_cnt, E.OfInt alive_cnt) );
                 ],
               E.Skip );
         ]
        @ Array.to_list
            (Array.mapi
               (fun h hp ->
                 E.If (pe hp.alive 1, kill_host_e sk ((d * nh sk) + h), E.Skip))
               dp.hosts)
        @ [ E.Ops [ E.Set (dp.excluded, E.Int 1) ] ]),
      E.Skip )

let exclude_host_e sk g =
  let hp = host_places_of sk g in
  E.If
    ( pe hp.alive 1,
      E.Seq
        [
          E.Ops [ E.Inc (sk.s_excl_hosts, E.Int 1) ];
          E.If
            ( host_is_corrupt_c sk g,
              E.Ops [ E.Inc (sk.s_excl_corrupt, E.Int 1) ],
              E.Skip );
          kill_host_e sk g;
        ],
      E.Skip )

(* Management response to a detection concerning host [g]. *)
let respond_e sk g =
  match sk.p.Params.policy with
  | Params.Domain_exclusion -> exclude_domain_e sk (domain_idx sk g)
  | Params.Host_exclusion -> exclude_host_e sk g

(* Start one replica of application [a] on host [g]: a [Pick] over the
   free slots (uniform; slots are exchangeable, and a single free slot
   consumes no randomness — the paper's enable_rep race does the same). *)
let start_replica_e sk a g =
  let ap = sk.s_apps.(a) in
  E.Pick
    (Array.to_list
       (Array.mapi
          (fun _r sl ->
            ( pe sl.running 0,
              E.Ops
                [
                  E.Set (sl.running, E.Int 1);
                  E.Set (sl.on_host, E.Int (g + 1));
                  E.Inc (ap.replicas_running, E.Int 1);
                  E.Inc ((host_places_of sk g).num_replicas, E.Int 1);
                  E.Set (sk.s_domains.(domain_idx sk g).has_app.(a), E.Int 1);
                  E.Inc (ap.to_start, E.Int (-1));
                ] ))
          ap.slots))

(* --- model construction --- *)

let build params =
  let p = Params.check params in
  let nd = p.Params.num_domains in
  let nhosts = p.Params.hosts_per_domain in
  let na = p.Params.num_apps in
  let nr = p.Params.num_reps in
  let b = B.create "itua" in
  let root = Compose.Ctx.root b "itua" in

  (* System-wide shared places. *)
  let mgrs_running =
    Compose.Ctx.int_place root ~init:(nd * nhosts) "mgrs_running"
  in
  let undetected = Compose.Ctx.int_place root "undetected_corr_mgrs" in
  let spread_sys = Compose.Ctx.float_place root "attack_spread_system" in
  let excl_domains = Compose.Ctx.int_place root "excluded_domains" in
  let excl_hosts = Compose.Ctx.int_place root "excluded_hosts" in
  let excl_corrupt = Compose.Ctx.int_place root "excluded_corrupt_hosts" in
  let excl_frac = Compose.Ctx.float_place root "excluded_corrupt_fraction_sum" in

  (* Composition tree, phase 1: places.  Activities are added afterwards
     because Replica and Host submodels read each other's shared state. *)
  let apps =
    Compose.join root "apps" (fun apps_ctx ->
        Compose.replicate apps_ctx "app" ~n:na (fun app_ctx _a ->
            let replicas_running =
              Compose.Ctx.int_place app_ctx "replicas_running"
            in
            let rep_corr_undetected =
              Compose.Ctx.int_place app_ctx "rep_corr_undetected"
            in
            let rep_grp_failure =
              Compose.Ctx.int_place app_ctx "rep_grp_failure"
            in
            let need_recovery = Compose.Ctx.int_place app_ctx "need_recovery" in
            let to_start = Compose.Ctx.int_place app_ctx ~init:nr "to_start" in
            let slots =
              Compose.replicate app_ctx "replica" ~n:nr (fun r_ctx _r ->
                  {
                    running = Compose.Ctx.int_place r_ctx "running";
                    corrupt = Compose.Ctx.int_place r_ctx "corrupt";
                    convicted = Compose.Ctx.int_place r_ctx "convicted";
                    convicted_by_ids =
                      Compose.Ctx.int_place r_ctx "convicted_by_ids";
                    id_missed = Compose.Ctx.int_place r_ctx "id_missed";
                    on_host = Compose.Ctx.int_place r_ctx "on_host";
                  })
            in
            {
              replicas_running;
              rep_corr_undetected;
              rep_grp_failure;
              need_recovery;
              to_start;
              slots;
            }))
  in
  let domains =
    Compose.join root "security_domains" (fun doms_ctx ->
        Compose.replicate doms_ctx "domain" ~n:nd (fun d_ctx d ->
            let excluded = Compose.Ctx.int_place d_ctx "excluded" in
            let spread = Compose.Ctx.float_place d_ctx "attack_spread_domain" in
            let dom_mgrs_running =
              Compose.Ctx.int_place d_ctx ~init:nhosts "dom_mgrs_running"
            in
            let dom_mgrs_corrupt =
              Compose.Ctx.int_place d_ctx "dom_mgrs_corrupt"
            in
            let has_app =
              Array.init na (fun a ->
                  Compose.Ctx.int_place d_ctx (Printf.sprintf "has_app[%d]" a))
            in
            let hosts =
              Compose.replicate d_ctx "host" ~n:nhosts (fun h_ctx h ->
                  (* A heterogeneous fleet is declared per copy: the orbit
                     pass reads these notes as the copies' coloring, so
                     hosts split into partial orbits by multiplier instead
                     of being silently assumed exchangeable. *)
                  if Array.length p.Params.host_rate_multipliers <> 0 then
                    Compose.Ctx.note h_ctx "host_rate_multiplier"
                      (Report.Json.float_to_string
                         (Params.host_rate_multiplier p ((d * nhosts) + h)));
                  {
                    alive = Compose.Ctx.int_place h_ctx ~init:1 "alive";
                    attacked = Compose.Ctx.int_place h_ctx "attacked";
                    ever_attacked =
                      Compose.Ctx.int_place h_ctx "ever_attacked";
                    host_id_missed =
                      Compose.Ctx.int_place h_ctx "host_id_missed";
                    host_detected = Compose.Ctx.int_place h_ctx "host_detected";
                    mgr_running =
                      Compose.Ctx.int_place h_ctx ~init:1 "mgr_running";
                    mgr_corrupt = Compose.Ctx.int_place h_ctx "mgr_corrupt";
                    mgr_id_missed = Compose.Ctx.int_place h_ctx "mgr_id_missed";
                    mgr_detected = Compose.Ctx.int_place h_ctx "mgr_detected";
                    num_replicas = Compose.Ctx.int_place h_ctx "num_replicas";
                    prop_dom_done = Compose.Ctx.int_place h_ctx "prop_dom_done";
                    prop_sys_done = Compose.Ctx.int_place h_ctx "prop_sys_done";
                  })
            in
            {
              excluded;
              spread;
              dom_mgrs_running;
              dom_mgrs_corrupt;
              has_app;
              hosts;
            }))
  in
  let structure = Compose.structure root in
  let sk =
    {
      p;
      s_apps = apps;
      s_domains = domains;
      s_mgrs_running = mgrs_running;
      s_undetected = undetected;
      s_spread_sys = spread_sys;
      s_excl_domains = excl_domains;
      s_excl_hosts = excl_hosts;
      s_excl_corrupt = excl_corrupt;
      s_excl_frac = excl_frac;
    }
  in

  (* Dependency lists shared by many activities. *)
  let all_attacked =
    List.concat_map
      (fun dp -> Array.to_list (Array.map (fun hp -> P.P hp.attacked) dp.hosts))
      (Array.to_list domains)
  in
  let mgr_group_reads =
    P.P mgrs_running :: P.P undetected
    :: List.concat_map
         (fun dp -> [ P.P dp.dom_mgrs_running; P.P dp.dom_mgrs_corrupt ])
         (Array.to_list domains)
  in
  let placement_reads =
    List.concat
      [
        List.concat_map
          (fun ap -> [ P.P ap.to_start ])
          (Array.to_list apps);
        List.concat_map
          (fun dp ->
            P.P dp.excluded
            :: (Array.to_list (Array.map (fun pl -> P.P pl) dp.has_app)
               @ Array.to_list (Array.map (fun hp -> P.P hp.alive) dp.hosts)))
          (Array.to_list domains);
      ]
  in

  (* IDS decision latency: Erlang with the configured stage count and
     mean 1/ids_decision_rate (exponential when stages = 1). *)
  let ids_latency_dist =
    if p.Params.ids_latency_stages = 1 then
      San.Activity.DExp (E.RConst p.Params.ids_decision_rate)
    else
      San.Activity.DErlang
        ( p.Params.ids_latency_stages,
          E.RConst
            (float_of_int p.Params.ids_latency_stages
            *. p.Params.ids_decision_rate) )
  in
  let ids_cases b ~name ~guard ~reads cases =
    B.timed_dist_ir b ~name ~dist:ids_latency_dist ~guard ~reads
      (List.map
         (fun (w, eff) -> San.Activity.make_case ~weight_ir:(E.RConst w) eff)
         cases)
  in
  (* Is the replica's host corrupt?  Only meaningful while running.  The
     disjunction short-circuits host by host, reading the same places as
     the historical closure [on_host matches before attacked is read]. *)
  let slot_host_corrupt_c sl =
    E.Any
      (List.init (nd * nhosts) (fun g ->
           E.All
             [ pe sl.on_host (g + 1); pgt (host_places_of sk g).attacked 0 ]))
  in

  (* [by_ids] records whether the conviction came from the host's IDS
     (an infiltration detected on the host itself) or from the replication
     group; under host exclusion only the former takes the host down. *)
  let convict_e ~by_ids a sl =
    E.Seq
      [
        E.Ops
          (E.Set (sl.convicted, E.Int 1)
          :: (if by_ids then [ E.Set (sl.convicted_by_ids, E.Int 1) ] else []));
        E.If
          ( pe sl.corrupt 1,
            E.Ops
              [
                E.Set (sl.corrupt, E.Int 0);
                E.Inc (apps.(a).rep_corr_undetected, E.Int (-1));
              ],
            E.Skip );
      ]
  in
  (* The miss branch of an IDS decision latches [id_missed] only when
     misses are sticky — otherwise the decision is retried. *)
  let miss_e pl =
    if p.Params.ids_misses_sticky then E.Ops [ E.Set (pl, E.Int 1) ] else E.Skip
  in
  (* Dispatch on the (dynamic) host a replica runs on: an if-else chain
     over [on_host], which structural analysis reads as guarded branches
     with statically known deltas. *)
  let dispatch_host sl eff_of_g =
    let rec chain g =
      if g >= nd * nhosts then E.Skip
      else E.If (pe sl.on_host (g + 1), eff_of_g g, chain (g + 1))
    in
    chain 0
  in
  let on_host_in_domain sl d =
    E.All
      [
        E.Cmp (E.Mark sl.on_host, E.Ge, E.Int ((d * nhosts) + 1));
        E.Cmp (E.Mark sl.on_host, E.Le, E.Int ((d + 1) * nhosts));
      ]
  in
  let dispatch_domain sl eff_of_d =
    let rec chain d =
      if d >= nd then E.Skip
      else E.If (on_host_in_domain sl d, eff_of_d d, chain (d + 1))
    in
    chain 0
  in

  (* --- Replica submodel activities --- *)
  let replica_name a r s = Printf.sprintf "app[%d].replica[%d].%s" a r s in
  Array.iteri
    (fun a ap ->
      Array.iteri
        (fun r sl ->
          let slot_reads =
            [ P.P sl.running; P.P sl.corrupt; P.P sl.convicted; P.P sl.on_host ]
          in
          (* attack_rep: successful attack on the replica; faster when its
             host is corrupt. *)
          B.timed_exp_rate_ir b
            ~name:(replica_name a r "attack_rep")
            ~rate:
              (let base = Params.replica_attack_rate p in
               E.RIf
                 ( slot_host_corrupt_c sl,
                   E.RConst (base *. p.Params.corruption_multiplier),
                   E.RConst (base *. 1.0) ))
            ~guard:(E.All [ pe sl.running 1; pe sl.corrupt 0; pe sl.convicted 0 ])
            ~reads:(slot_reads @ all_attacked)
            (E.Seq
               [
                 E.Ops
                   [
                     E.Set (sl.corrupt, E.Int 1);
                     E.Inc (ap.rep_corr_undetected, E.Int 1);
                   ];
                 check_byzantine_e sk a;
               ]);
          (* valid_ID: the host IDS decides; a miss is final. *)
          ids_cases b
            ~name:(replica_name a r "valid_ID")
            ~guard:
              (E.All [ pe sl.corrupt 1; pe sl.convicted 0; pe sl.id_missed 0 ])
            ~reads:[ P.P sl.corrupt; P.P sl.convicted; P.P sl.id_missed ]
            [
              (p.Params.p_detect_replica, convict_e ~by_ids:true a sl);
              (1.0 -. p.Params.p_detect_replica, miss_e sl.id_missed);
            ];
          (* rep_misbehave: anomalous behaviour during group communication
             is always caught while the group can reach agreement. *)
          if p.Params.misbehave_rate > 0.0 then
            B.timed_exp_rate_ir b
              ~name:(replica_name a r "rep_misbehave")
              ~rate:(E.RConst p.Params.misbehave_rate)
              ~guard:
                (E.All
                   [
                     pe sl.corrupt 1;
                     pe sl.convicted 0;
                     E.Cmp
                       ( E.Mul (E.Int 3, E.Mark ap.rep_corr_undetected),
                         E.Lt,
                         E.Mark ap.replicas_running );
                   ])
              ~reads:
                [
                  P.P sl.corrupt; P.P sl.convicted;
                  P.P ap.rep_corr_undetected; P.P ap.replicas_running;
                ]
              (convict_e ~by_ids:false a sl);
          (* false_ID: per the paper this activity is enabled only once
             the replica has been intruded — an additional, unconditional
             IDS flagging channel for corrupt replicas (it can catch one
             that valid_ID missed).  Host-level false alarms, by contrast,
             really do hit clean hosts; see false_ID on the Host SAN. *)
          if Params.replica_false_alarm_rate p > 0.0 then
            B.timed_exp_rate_ir b
              ~name:(replica_name a r "false_ID")
              ~rate:(E.RConst (Params.replica_false_alarm_rate p))
              ~guard:(E.All [ pe sl.corrupt 1; pe sl.convicted 0 ])
              ~reads:[ P.P sl.corrupt; P.P sl.convicted ]
              (convict_e ~by_ids:true a sl);
          (* Response to a conviction.  Domain exclusion always convicts
             the domain that had the corrupt replica; host exclusion takes
             the host down only when the infiltration was detected on it
             (IDS conviction) and otherwise just kills and replaces the
             convicted replica. *)
          B.instantaneous_ir b
            ~name:(replica_name a r "respond_conviction")
            ~guard:
              (E.All
                 [
                   pe sl.convicted 1;
                   pe sl.running 1;
                   E.Any
                     (quorum_ok_c sk
                     :: List.init nd (fun d ->
                            E.All [ on_host_in_domain sl d; dom_group_ok_c sk d ]));
                 ])
            ~reads:(slot_reads @ mgr_group_reads)
            (match p.Params.policy with
            | Params.Domain_exclusion ->
                dispatch_domain sl (fun d -> exclude_domain_e sk d)
            | Params.Host_exclusion ->
                E.If
                  ( pe sl.convicted_by_ids 1,
                    dispatch_host sl (fun g -> exclude_host_e sk g),
                    dispatch_host sl (fun g -> kill_replica_e sk a r g) )))
        ap.slots)
    apps;

  (* --- Management submodel activities (one per application) --- *)
  Array.iteri
    (fun a ap ->
      ignore a;
      B.timed_exp_rate_ir b
        ~name:(Printf.sprintf "app[%d].management.recovery" a)
        ~rate:(E.RConst p.Params.recovery_rate)
        ~guard:
          (if p.Params.quorum_gates_recovery then
             E.All [ pgt ap.need_recovery 0; quorum_ok_c sk ]
           else pgt ap.need_recovery 0)
        ~reads:(P.P ap.need_recovery :: mgr_group_reads)
        (E.Ops
           [ E.Inc (ap.need_recovery, E.Int (-1)); E.Inc (ap.to_start, E.Int 1) ]))
    apps;

  (* --- Replica placement (the Host SANs' start_replica race) --- *)
  let domain_qualifies_c d a =
    let dp = domains.(d) in
    E.All
      [
        pe dp.excluded 0;
        pe dp.has_app.(a) 0;
        E.Any (Array.to_list (Array.map (fun hp -> pe hp.alive 1) dp.hosts));
      ]
  in
  (* Pick a qualifying domain uniformly, a live host within it uniformly,
     then start a replica there for every application with a pending
     replica and no replica in that domain.  Forced choices (singleton
     [Pick] branches) consume no randomness, so configurations whose
     placement is deterministic (e.g. one domain with one host) remain
     explorable by the analytical CTMC path. *)
  B.instantaneous_ir b ~name:"place_replicas"
    ~guard:
      (E.Any
         (List.init na (fun a ->
              E.All
                [
                  pgt apps.(a).to_start 0;
                  E.Any (List.init nd (fun d -> domain_qualifies_c d a));
                ])))
    ~reads:placement_reads
    (E.Pick
       (List.init nd (fun d ->
            ( E.Any
                (List.init na (fun a ->
                     E.All [ pgt apps.(a).to_start 0; domain_qualifies_c d a ])),
              E.Pick
                (List.init nhosts (fun h ->
                     ( pe domains.(d).hosts.(h).alive 1,
                       E.Seq
                         (List.init na (fun a ->
                              E.If
                                ( E.All
                                    [
                                      pgt apps.(a).to_start 0;
                                      domain_qualifies_c d a;
                                    ],
                                  start_replica_e sk a ((d * nhosts) + h),
                                  E.Skip )))) )) ))));

  (* --- Host submodel activities --- *)
  let host_name g s = Printf.sprintf "domain[%d].host[%d].%s" (g / nhosts) (g mod nhosts) s in
  for g = 0 to (nd * nhosts) - 1 do
    let d = domain_idx sk g in
    let dp = domains.(d) in
    let hp = host_places_of sk g in
    (* attack_host: three attack classes; the rate grows linearly with the
       accumulated intra-domain and system-wide spread. *)
    B.timed_exp_cases_rate_ir b
      ~name:(host_name g "attack_host")
      ~rate:
        (E.RExpr
           (E.FAdd
              ( E.Flt (Params.host_attack_rate_of p g),
                E.FMul
                  ( E.Flt (Params.host_spread_slope p),
                    E.FAdd (E.FMark dp.spread, E.FMark spread_sys) ) )))
      ~guard:(E.All [ pe hp.alive 1; pe hp.attacked 0 ])
      ~reads:[ P.P hp.alive; P.P hp.attacked; P.F dp.spread; P.F spread_sys ]
      (let corrupt_as cls =
         E.Ops
           [ E.Set (hp.attacked, E.Int cls); E.Set (hp.ever_attacked, E.Int 1) ]
       in
       [
         (p.Params.frac_script, corrupt_as 1);
         (p.Params.frac_exploratory, corrupt_as 2);
         (p.Params.frac_innovative, corrupt_as 3);
       ]);
    (* Attack spread, exactly once per corrupted host.  Keyed on
       [ever_attacked], not on the host's survival: what spreads is the
       attacker's knowledge gained from the successful intrusion, which
       excluding the compromised host does not erase. *)
    if p.Params.spread_rate_domain > 0.0 then
      B.timed_exp_rate_ir b
        ~name:(host_name g "propagate_domain")
        ~rate:(E.RConst p.Params.spread_rate_domain)
        ~guard:
          (let base = [ pe hp.ever_attacked 1; pe hp.prop_dom_done 0 ] in
           E.All
             (if p.Params.spread_outlives_host then base
              else base @ [ pe hp.alive 1 ]))
        ~reads:[ P.P hp.ever_attacked; P.P hp.prop_dom_done; P.P hp.alive ]
        (E.Ops
           [
             E.FInc (dp.spread, E.Flt p.Params.spread_effect_domain);
             E.Set (hp.prop_dom_done, E.Int 1);
           ]);
    if p.Params.spread_rate_system > 0.0 then
      B.timed_exp_rate_ir b
        ~name:(host_name g "propagate_sys")
        ~rate:(E.RConst p.Params.spread_rate_system)
        ~guard:
          (let base = [ pe hp.ever_attacked 1; pe hp.prop_sys_done 0 ] in
           E.All
             (if p.Params.spread_outlives_host then base
              else base @ [ pe hp.alive 1 ]))
        ~reads:[ P.P hp.ever_attacked; P.P hp.prop_sys_done; P.P hp.alive ]
        (E.Ops
           [
             E.FInc (spread_sys, E.Flt p.Params.spread_effect_system);
             E.Set (hp.prop_sys_done, E.Int 1);
           ]);
    (* Host-level IDS, one activity per attack class. *)
    List.iter
      (fun (suffix, cls, prob) ->
        ids_cases b
          ~name:(host_name g suffix)
          ~guard:
            (E.All
               [
                 pe hp.alive 1;
                 pe hp.attacked cls;
                 pe hp.host_id_missed 0;
                 pe hp.host_detected 0;
               ])
          ~reads:
            [
              P.P hp.alive; P.P hp.attacked; P.P hp.host_id_missed;
              P.P hp.host_detected;
            ]
          [
            (prob, E.Ops [ E.Set (hp.host_detected, E.Int 1) ]);
            (1.0 -. prob, miss_e hp.host_id_missed);
          ])
      [
        ("valid_ID_scp", 1, p.Params.p_detect_script);
        ("valid_ID_exp", 2, p.Params.p_detect_exploratory);
        ("valid_ID_inv", 3, p.Params.p_detect_innovative);
      ];
    (* False alarms of host/manager infiltration. *)
    if Params.host_false_alarm_rate p > 0.0 then
      B.timed_exp_rate_ir b
        ~name:(host_name g "false_ID")
        ~rate:(E.RConst (Params.host_false_alarm_rate p))
        ~guard:
          (E.All
             [
               pe hp.alive 1;
               pe hp.attacked 0;
               pe hp.mgr_corrupt 0;
               pe hp.host_detected 0;
             ])
        ~reads:
          [
            P.P hp.alive; P.P hp.attacked; P.P hp.mgr_corrupt;
            P.P hp.host_detected;
          ]
        (E.Ops [ E.Set (hp.host_detected, E.Int 1) ]);
    (* Response to a host-level detection requires a trustworthy local
       manager and domain manager group (Section 3.4). *)
    B.instantaneous_ir b
      ~name:(host_name g "respond_host_detect")
      ~guard:
        (E.All
           [
             pe hp.host_detected 1;
             pe hp.alive 1;
             pe hp.mgr_corrupt 0;
             dom_group_ok_c sk d;
           ])
      ~reads:
        ([ P.P hp.host_detected; P.P hp.alive; P.P hp.mgr_corrupt ]
        @ mgr_group_reads)
      (respond_e sk g);
    (* attack_mgmt: attacks against the manager on this host. *)
    B.timed_exp_rate_ir b
      ~name:(host_name g "attack_mgmt")
      ~rate:
        (let base = Params.manager_attack_rate p in
         E.RIf
           ( pgt hp.attacked 0,
             E.RConst (base *. p.Params.corruption_multiplier),
             E.RConst (base *. 1.0) ))
      ~guard:
        (E.All
           [
             pe hp.alive 1;
             pe hp.mgr_running 1;
             pe hp.mgr_corrupt 0;
             pe hp.mgr_detected 0;
           ])
      ~reads:
        [
          P.P hp.alive; P.P hp.attacked; P.P hp.mgr_running;
          P.P hp.mgr_corrupt; P.P hp.mgr_detected;
        ]
      (E.Ops
         [
           E.Set (hp.mgr_corrupt, E.Int 1);
           E.Inc (undetected, E.Int 1);
           E.Inc (dp.dom_mgrs_corrupt, E.Int 1);
         ]);
    (* valid_ID_mgr: IDS detection of manager infiltration. *)
    ids_cases b
      ~name:(host_name g "valid_ID_mgr")
      ~guard:
        (E.All
           [
             pe hp.alive 1;
             pe hp.mgr_corrupt 1;
             pe hp.mgr_id_missed 0;
             pe hp.mgr_detected 0;
           ])
      ~reads:
        [
          P.P hp.alive; P.P hp.mgr_corrupt; P.P hp.mgr_id_missed;
          P.P hp.mgr_detected;
        ]
      [
        ( p.Params.p_detect_manager,
          E.Ops
            [
              E.Set (hp.mgr_detected, E.Int 1);
              E.Set (hp.mgr_corrupt, E.Int 0);
              E.Inc (undetected, E.Int (-1));
              E.Inc (dp.dom_mgrs_corrupt, E.Int (-1));
            ] );
        (1.0 -. p.Params.p_detect_manager, miss_e hp.mgr_id_missed);
      ];
    (* Response to a detected corrupt manager: the replication/management
       groups know, so the domain group or the global quorum suffices. *)
    B.instantaneous_ir b
      ~name:(host_name g "respond_mgr_detect")
      ~guard:
        (E.All
           [
             pe hp.mgr_detected 1;
             pe hp.alive 1;
             E.Any [ dom_group_ok_c sk d; quorum_ok_c sk ];
           ])
      ~reads:([ P.P hp.mgr_detected; P.P hp.alive ] @ mgr_group_reads)
      (respond_e sk g)
  done;

  let model = B.build b in
  {
    params = p;
    model;
    apps;
    domains;
    mgrs_running;
    undetected_corr_mgrs = undetected;
    spread_system = spread_sys;
    excl_domains;
    excl_hosts;
    excl_corrupt_hosts = excl_corrupt;
    excl_frac_sum = excl_frac;
    structure;
    composition = Compose.info root;
  }

(* --- rebinding a deserialized model --- *)

(* [build] names every place deterministically from its position in the
   composition tree, so a model reloaded from disk (same parameters) can
   have its handles reconstructed by pure name lookup: the descriptors
   found in the reloaded model carry that model's indices, and every
   measure/predicate works on it unchanged. *)
let rebind params ~model ~composition =
  let p = Params.check params in
  let nd = p.Params.num_domains in
  let nhosts = p.Params.hosts_per_domain in
  let na = p.Params.num_apps in
  let nr = p.Params.num_reps in
  let ip name =
    match San.Model.find_place_opt model name with
    | Some pl -> pl
    | None ->
        invalid_arg
          (Printf.sprintf "Itua.Model.rebind: model has no int place %S" name)
  in
  let fp name =
    match San.Model.find_float_place_opt model name with
    | Some pl -> pl
    | None ->
        invalid_arg
          (Printf.sprintf "Itua.Model.rebind: model has no float place %S"
             name)
  in
  let slot a r =
    let n field = Printf.sprintf "apps.app[%d].replica[%d].%s" a r field in
    {
      running = ip (n "running");
      corrupt = ip (n "corrupt");
      convicted = ip (n "convicted");
      convicted_by_ids = ip (n "convicted_by_ids");
      id_missed = ip (n "id_missed");
      on_host = ip (n "on_host");
    }
  in
  let app a =
    let n field = Printf.sprintf "apps.app[%d].%s" a field in
    {
      replicas_running = ip (n "replicas_running");
      rep_corr_undetected = ip (n "rep_corr_undetected");
      rep_grp_failure = ip (n "rep_grp_failure");
      need_recovery = ip (n "need_recovery");
      to_start = ip (n "to_start");
      slots = Array.init nr (slot a);
    }
  in
  let host d h =
    let n field =
      Printf.sprintf "security_domains.domain[%d].host[%d].%s" d h field
    in
    {
      alive = ip (n "alive");
      attacked = ip (n "attacked");
      ever_attacked = ip (n "ever_attacked");
      host_id_missed = ip (n "host_id_missed");
      host_detected = ip (n "host_detected");
      mgr_running = ip (n "mgr_running");
      mgr_corrupt = ip (n "mgr_corrupt");
      mgr_id_missed = ip (n "mgr_id_missed");
      mgr_detected = ip (n "mgr_detected");
      num_replicas = ip (n "num_replicas");
      prop_dom_done = ip (n "prop_dom_done");
      prop_sys_done = ip (n "prop_sys_done");
    }
  in
  let domain d =
    let n field = Printf.sprintf "security_domains.domain[%d].%s" d field in
    {
      excluded = ip (n "excluded");
      spread = fp (n "attack_spread_domain");
      dom_mgrs_running = ip (n "dom_mgrs_running");
      dom_mgrs_corrupt = ip (n "dom_mgrs_corrupt");
      has_app =
        Array.init na (fun a -> ip (n (Printf.sprintf "has_app[%d]" a)));
      hosts = Array.init nhosts (host d);
    }
  in
  {
    params = p;
    model;
    apps = Array.init na app;
    domains = Array.init nd domain;
    mgrs_running = ip "mgrs_running";
    undetected_corr_mgrs = ip "undetected_corr_mgrs";
    spread_system = fp "attack_spread_system";
    excl_domains = ip "excluded_domains";
    excl_hosts = ip "excluded_hosts";
    excl_corrupt_hosts = ip "excluded_corrupt_hosts";
    excl_frac_sum = fp "excluded_corrupt_fraction_sum";
    structure = Compose.render_info composition;
    composition;
  }

(* --- public predicates on handles --- *)

let skeleton_of h =
  {
    p = h.params;
    s_apps = h.apps;
    s_domains = h.domains;
    s_mgrs_running = h.mgrs_running;
    s_undetected = h.undetected_corr_mgrs;
    s_spread_sys = h.spread_system;
    s_excl_domains = h.excl_domains;
    s_excl_hosts = h.excl_hosts;
    s_excl_corrupt = h.excl_corrupt_hosts;
    s_excl_frac = h.excl_frac_sum;
  }

let improper h a m = app_improper (skeleton_of h) a m

let starved h a m = M.get m h.apps.(a).replicas_running = 0

let unavailable h a m = improper h a m || starved h a m

let host_of h g =
  h.domains.(g / h.params.Params.hosts_per_domain).hosts.(g mod h.params.Params.hosts_per_domain)

let domain_of_host h g = g / h.params.Params.hosts_per_domain
let num_hosts h = h.params.Params.num_domains * h.params.Params.hosts_per_domain

let global_quorum_ok h m = quorum_ok (skeleton_of h) m
let domain_group_ok h d m = dom_group_ok (skeleton_of h) d m
