module P = San.Place
module M = San.Marking
module B = San.Model.Builder

type slot_places = {
  running : P.t;
  corrupt : P.t;
  convicted : P.t;
  convicted_by_ids : P.t;
  id_missed : P.t;
  on_host : P.t;
}

type app_places = {
  replicas_running : P.t;
  rep_corr_undetected : P.t;
  rep_grp_failure : P.t;
  need_recovery : P.t;
  to_start : P.t;
  slots : slot_places array;
}

type host_places = {
  alive : P.t;
  attacked : P.t;
  ever_attacked : P.t;
  host_id_missed : P.t;
  host_detected : P.t;
  mgr_running : P.t;
  mgr_corrupt : P.t;
  mgr_id_missed : P.t;
  mgr_detected : P.t;
  num_replicas : P.t;
  prop_dom_done : P.t;
  prop_sys_done : P.t;
}

type domain_places = {
  excluded : P.t;
  spread : P.fl;
  dom_mgrs_running : P.t;
  dom_mgrs_corrupt : P.t;
  has_app : P.t array;
  hosts : host_places array;
}

type handles = {
  params : Params.t;
  model : San.Model.t;
  apps : app_places array;
  domains : domain_places array;
  mgrs_running : P.t;
  undetected_corr_mgrs : P.t;
  spread_system : P.fl;
  excl_domains : P.t;
  excl_hosts : P.t;
  excl_corrupt_hosts : P.t;
  excl_frac_sum : P.fl;
  structure : string;
  composition : Compose.info;
}

(* The handles minus the built model, used while declaring activities. *)
type skeleton = {
  p : Params.t;
  s_apps : app_places array;
  s_domains : domain_places array;
  s_mgrs_running : P.t;
  s_undetected : P.t;
  s_spread_sys : P.fl;
  s_excl_domains : P.t;
  s_excl_hosts : P.t;
  s_excl_corrupt : P.t;
  s_excl_frac : P.fl;
}

let nh sk = sk.p.Params.hosts_per_domain
let host_places_of sk g = sk.s_domains.(g / nh sk).hosts.(g mod nh sk)
let domain_idx sk g = g / nh sk

(* --- state predicates --- *)

let dom_group_ok sk d m =
  let dp = sk.s_domains.(d) in
  3 * M.get m dp.dom_mgrs_corrupt < M.get m dp.dom_mgrs_running

let quorum_ok sk m =
  3 * M.get m sk.s_undetected < M.get m sk.s_mgrs_running

let app_improper sk a m =
  let ap = sk.s_apps.(a) in
  let corrupt = M.get m ap.rep_corr_undetected in
  corrupt > 0 && 3 * corrupt >= M.get m ap.replicas_running

(* --- effect helpers (the exclusion cascade) --- *)

let check_byzantine sk a m =
  if app_improper sk a m then M.set m sk.s_apps.(a).rep_grp_failure 1

let kill_replica sk a r m =
  let ap = sk.s_apps.(a) in
  let sl = ap.slots.(r) in
  let g = M.get m sl.on_host - 1 in
  assert (g >= 0);
  M.set m sl.running 0;
  M.add m ap.replicas_running (-1);
  if M.get m sl.corrupt = 1 then begin
    M.set m sl.corrupt 0;
    M.add m ap.rep_corr_undetected (-1)
  end;
  M.set m sl.convicted 0;
  M.set m sl.convicted_by_ids 0;
  M.set m sl.id_missed 0;
  M.set m sl.on_host 0;
  M.add m (host_places_of sk g).num_replicas (-1);
  M.set m sk.s_domains.(domain_idx sk g).has_app.(a) 0;
  M.add m ap.need_recovery 1;
  check_byzantine sk a m

let host_is_corrupt sk g m =
  let hp = host_places_of sk g in
  M.get m hp.attacked > 0
  || M.get m hp.mgr_corrupt = 1
  || M.get m hp.mgr_detected = 1

let kill_host sk g m =
  let hp = host_places_of sk g in
  let d = domain_idx sk g in
  (* Kill every replica running on this host. *)
  Array.iteri
    (fun a ap ->
      Array.iteri
        (fun r sl ->
          if M.get m sl.running = 1 && M.get m sl.on_host = g + 1 then
            kill_replica sk a r m)
        ap.slots)
    sk.s_apps;
  (* Remove the manager from both group counts. *)
  if M.get m hp.mgr_running = 1 then begin
    M.add m sk.s_mgrs_running (-1);
    M.add m sk.s_domains.(d).dom_mgrs_running (-1);
    if M.get m hp.mgr_corrupt = 1 then begin
      M.add m sk.s_undetected (-1);
      M.add m sk.s_domains.(d).dom_mgrs_corrupt (-1)
    end;
    M.set m hp.mgr_running 0
  end;
  M.set m hp.alive 0;
  M.set m hp.attacked 0;
  M.set m hp.mgr_corrupt 0;
  M.set m hp.host_detected 0;
  M.set m hp.host_id_missed 0;
  M.set m hp.mgr_detected 0;
  M.set m hp.mgr_id_missed 0

let exclude_domain sk d m =
  let dp = sk.s_domains.(d) in
  if M.get m dp.excluded = 0 then begin
    (* Measure accounting first: fraction of corrupt hosts at exclusion. *)
    let alive_count = ref 0 and corrupt_count = ref 0 in
    Array.iteri
      (fun h hp ->
        if M.get m hp.alive = 1 then begin
          incr alive_count;
          let g = (d * nh sk) + h in
          if host_is_corrupt sk g m then incr corrupt_count
        end)
      dp.hosts;
    M.add m sk.s_excl_domains 1;
    M.add m sk.s_excl_hosts !alive_count;
    M.add m sk.s_excl_corrupt !corrupt_count;
    if !alive_count > 0 then
      M.fadd m sk.s_excl_frac
        (float_of_int !corrupt_count /. float_of_int !alive_count);
    Array.iteri
      (fun h hp ->
        if M.get m hp.alive = 1 then kill_host sk ((d * nh sk) + h) m)
      dp.hosts;
    M.set m dp.excluded 1
  end

let exclude_host sk g m =
  let hp = host_places_of sk g in
  if M.get m hp.alive = 1 then begin
    M.add m sk.s_excl_hosts 1;
    if host_is_corrupt sk g m then M.add m sk.s_excl_corrupt 1;
    kill_host sk g m
  end

(* Management response to a detection concerning host [g]. *)
let respond sk g m =
  match sk.p.Params.policy with
  | Params.Domain_exclusion -> exclude_domain sk (domain_idx sk g) m
  | Params.Host_exclusion -> exclude_host sk g m

(* Start one replica of application [a] on host [g], choosing a free slot
   uniformly at random (slots are exchangeable; the paper's enable_rep
   race does the same).  [pick] chooses uniformly from a non-empty list,
   consuming randomness only when there is an actual choice. *)
let start_replica sk a g pick m =
  let ap = sk.s_apps.(a) in
  let free = ref [] in
  Array.iteri
    (fun r sl -> if M.get m sl.running = 0 then free := r :: !free)
    ap.slots;
  let r = pick (List.rev !free) in
  let sl = ap.slots.(r) in
  M.set m sl.running 1;
  M.set m sl.on_host (g + 1);
  M.add m ap.replicas_running 1;
  M.add m (host_places_of sk g).num_replicas 1;
  M.set m sk.s_domains.(domain_idx sk g).has_app.(a) 1;
  M.add m ap.to_start (-1)

(* --- model construction --- *)

let build params =
  let p = Params.check params in
  let nd = p.Params.num_domains in
  let nhosts = p.Params.hosts_per_domain in
  let na = p.Params.num_apps in
  let nr = p.Params.num_reps in
  let b = B.create "itua" in
  let root = Compose.Ctx.root b "itua" in

  (* System-wide shared places. *)
  let mgrs_running =
    Compose.Ctx.int_place root ~init:(nd * nhosts) "mgrs_running"
  in
  let undetected = Compose.Ctx.int_place root "undetected_corr_mgrs" in
  let spread_sys = Compose.Ctx.float_place root "attack_spread_system" in
  let excl_domains = Compose.Ctx.int_place root "excluded_domains" in
  let excl_hosts = Compose.Ctx.int_place root "excluded_hosts" in
  let excl_corrupt = Compose.Ctx.int_place root "excluded_corrupt_hosts" in
  let excl_frac = Compose.Ctx.float_place root "excluded_corrupt_fraction_sum" in

  (* Composition tree, phase 1: places.  Activities are added afterwards
     because Replica and Host submodels read each other's shared state. *)
  let apps =
    Compose.join root "apps" (fun apps_ctx ->
        Compose.replicate apps_ctx "app" ~n:na (fun app_ctx _a ->
            let replicas_running =
              Compose.Ctx.int_place app_ctx "replicas_running"
            in
            let rep_corr_undetected =
              Compose.Ctx.int_place app_ctx "rep_corr_undetected"
            in
            let rep_grp_failure =
              Compose.Ctx.int_place app_ctx "rep_grp_failure"
            in
            let need_recovery = Compose.Ctx.int_place app_ctx "need_recovery" in
            let to_start = Compose.Ctx.int_place app_ctx ~init:nr "to_start" in
            let slots =
              Compose.replicate app_ctx "replica" ~n:nr (fun r_ctx _r ->
                  {
                    running = Compose.Ctx.int_place r_ctx "running";
                    corrupt = Compose.Ctx.int_place r_ctx "corrupt";
                    convicted = Compose.Ctx.int_place r_ctx "convicted";
                    convicted_by_ids =
                      Compose.Ctx.int_place r_ctx "convicted_by_ids";
                    id_missed = Compose.Ctx.int_place r_ctx "id_missed";
                    on_host = Compose.Ctx.int_place r_ctx "on_host";
                  })
            in
            {
              replicas_running;
              rep_corr_undetected;
              rep_grp_failure;
              need_recovery;
              to_start;
              slots;
            }))
  in
  let domains =
    Compose.join root "security_domains" (fun doms_ctx ->
        Compose.replicate doms_ctx "domain" ~n:nd (fun d_ctx _d ->
            let excluded = Compose.Ctx.int_place d_ctx "excluded" in
            let spread = Compose.Ctx.float_place d_ctx "attack_spread_domain" in
            let dom_mgrs_running =
              Compose.Ctx.int_place d_ctx ~init:nhosts "dom_mgrs_running"
            in
            let dom_mgrs_corrupt =
              Compose.Ctx.int_place d_ctx "dom_mgrs_corrupt"
            in
            let has_app =
              Array.init na (fun a ->
                  Compose.Ctx.int_place d_ctx (Printf.sprintf "has_app[%d]" a))
            in
            let hosts =
              Compose.replicate d_ctx "host" ~n:nhosts (fun h_ctx _h ->
                  {
                    alive = Compose.Ctx.int_place h_ctx ~init:1 "alive";
                    attacked = Compose.Ctx.int_place h_ctx "attacked";
                    ever_attacked =
                      Compose.Ctx.int_place h_ctx "ever_attacked";
                    host_id_missed =
                      Compose.Ctx.int_place h_ctx "host_id_missed";
                    host_detected = Compose.Ctx.int_place h_ctx "host_detected";
                    mgr_running =
                      Compose.Ctx.int_place h_ctx ~init:1 "mgr_running";
                    mgr_corrupt = Compose.Ctx.int_place h_ctx "mgr_corrupt";
                    mgr_id_missed = Compose.Ctx.int_place h_ctx "mgr_id_missed";
                    mgr_detected = Compose.Ctx.int_place h_ctx "mgr_detected";
                    num_replicas = Compose.Ctx.int_place h_ctx "num_replicas";
                    prop_dom_done = Compose.Ctx.int_place h_ctx "prop_dom_done";
                    prop_sys_done = Compose.Ctx.int_place h_ctx "prop_sys_done";
                  })
            in
            {
              excluded;
              spread;
              dom_mgrs_running;
              dom_mgrs_corrupt;
              has_app;
              hosts;
            }))
  in
  let structure = Compose.structure root in
  let sk =
    {
      p;
      s_apps = apps;
      s_domains = domains;
      s_mgrs_running = mgrs_running;
      s_undetected = undetected;
      s_spread_sys = spread_sys;
      s_excl_domains = excl_domains;
      s_excl_hosts = excl_hosts;
      s_excl_corrupt = excl_corrupt;
      s_excl_frac = excl_frac;
    }
  in

  (* Dependency lists shared by many activities. *)
  let all_attacked =
    List.concat_map
      (fun dp -> Array.to_list (Array.map (fun hp -> P.P hp.attacked) dp.hosts))
      (Array.to_list domains)
  in
  let mgr_group_reads =
    P.P mgrs_running :: P.P undetected
    :: List.concat_map
         (fun dp -> [ P.P dp.dom_mgrs_running; P.P dp.dom_mgrs_corrupt ])
         (Array.to_list domains)
  in
  let placement_reads =
    List.concat
      [
        List.concat_map
          (fun ap -> [ P.P ap.to_start ])
          (Array.to_list apps);
        List.concat_map
          (fun dp ->
            P.P dp.excluded
            :: (Array.to_list (Array.map (fun pl -> P.P pl) dp.has_app)
               @ Array.to_list (Array.map (fun hp -> P.P hp.alive) dp.hosts)))
          (Array.to_list domains);
      ]
  in

  (* IDS decision latency: Erlang with the configured stage count and
     mean 1/ids_decision_rate (exponential when stages = 1). *)
  let ids_latency_dist =
    if p.Params.ids_latency_stages = 1 then
      Dist.Exponential { rate = p.Params.ids_decision_rate }
    else
      Dist.Erlang
        {
          k = p.Params.ids_latency_stages;
          rate = float_of_int p.Params.ids_latency_stages
                 *. p.Params.ids_decision_rate;
        }
  in
  let ids_cases b ~name ~enabled ~reads cases =
    B.timed b ~name ~dist:(fun _ -> ids_latency_dist) ~enabled ~reads
      (List.map
         (fun (w, effect) ->
           { San.Activity.case_weight = (fun _ -> w); effect })
         cases)
  in
  let slot_host_corrupt sl m =
    (* Is the replica's host corrupt?  Only meaningful while running. *)
    let g = M.get m sl.on_host - 1 in
    g >= 0 && M.get m (host_places_of sk g).attacked > 0
  in

  (* [by_ids] records whether the conviction came from the host's IDS
     (an infiltration detected on the host itself) or from the replication
     group; under host exclusion only the former takes the host down. *)
  let convict ~by_ids a sl m =
    M.set m sl.convicted 1;
    if by_ids then M.set m sl.convicted_by_ids 1;
    if M.get m sl.corrupt = 1 then begin
      M.set m sl.corrupt 0;
      M.add m apps.(a).rep_corr_undetected (-1)
    end
  in

  (* --- Replica submodel activities --- *)
  let replica_name a r s = Printf.sprintf "app[%d].replica[%d].%s" a r s in
  Array.iteri
    (fun a ap ->
      Array.iteri
        (fun r sl ->
          let slot_reads =
            [ P.P sl.running; P.P sl.corrupt; P.P sl.convicted; P.P sl.on_host ]
          in
          (* attack_rep: successful attack on the replica; faster when its
             host is corrupt. *)
          B.timed_exp b
            ~name:(replica_name a r "attack_rep")
            ~rate:(fun m ->
              Params.replica_attack_rate p
              *.
              if slot_host_corrupt sl m then p.Params.corruption_multiplier
              else 1.0)
            ~enabled:(fun m ->
              M.get m sl.running = 1
              && M.get m sl.corrupt = 0
              && M.get m sl.convicted = 0)
            ~reads:(slot_reads @ all_attacked)
            (fun _ m ->
              M.set m sl.corrupt 1;
              M.add m ap.rep_corr_undetected 1;
              check_byzantine sk a m);
          (* valid_ID: the host IDS decides; a miss is final. *)
          ids_cases b
            ~name:(replica_name a r "valid_ID")
            ~enabled:(fun m ->
              M.get m sl.corrupt = 1
              && M.get m sl.convicted = 0
              && M.get m sl.id_missed = 0)
            ~reads:[ P.P sl.corrupt; P.P sl.convicted; P.P sl.id_missed ]
            [
              (p.Params.p_detect_replica, fun _ m -> convict ~by_ids:true a sl m);
              ( 1.0 -. p.Params.p_detect_replica,
                fun _ m ->
                  if p.Params.ids_misses_sticky then M.set m sl.id_missed 1 );
            ];
          (* rep_misbehave: anomalous behaviour during group communication
             is always caught while the group can reach agreement. *)
          if p.Params.misbehave_rate > 0.0 then
            B.timed_exp b
              ~name:(replica_name a r "rep_misbehave")
              ~rate:(fun _ -> p.Params.misbehave_rate)
              ~enabled:(fun m ->
                M.get m sl.corrupt = 1
                && M.get m sl.convicted = 0
                && 3 * M.get m ap.rep_corr_undetected
                   < M.get m ap.replicas_running)
              ~reads:
                [
                  P.P sl.corrupt; P.P sl.convicted;
                  P.P ap.rep_corr_undetected; P.P ap.replicas_running;
                ]
              (fun _ m -> convict ~by_ids:false a sl m);
          (* false_ID: per the paper this activity is enabled only once
             the replica has been intruded — an additional, unconditional
             IDS flagging channel for corrupt replicas (it can catch one
             that valid_ID missed).  Host-level false alarms, by contrast,
             really do hit clean hosts; see false_ID on the Host SAN. *)
          if Params.replica_false_alarm_rate p > 0.0 then
            B.timed_exp b
              ~name:(replica_name a r "false_ID")
              ~rate:(fun _ -> Params.replica_false_alarm_rate p)
              ~enabled:(fun m ->
                M.get m sl.corrupt = 1 && M.get m sl.convicted = 0)
              ~reads:[ P.P sl.corrupt; P.P sl.convicted ]
              (fun _ m -> convict ~by_ids:true a sl m);
          (* The managers respond to the conviction once enough of them are
             trustworthy, excluding the domain (or host). *)
          (* Response to a conviction.  Domain exclusion always convicts
             the domain that had the corrupt replica; host exclusion takes
             the host down only when the infiltration was detected on it
             (IDS conviction) and otherwise just kills and replaces the
             convicted replica. *)
          B.instantaneous b
            ~name:(replica_name a r "respond_conviction")
            ~enabled:(fun m ->
              M.get m sl.convicted = 1
              && M.get m sl.running = 1
              &&
              let d = domain_idx sk (M.get m sl.on_host - 1) in
              dom_group_ok sk d m || quorum_ok sk m)
            ~reads:(slot_reads @ mgr_group_reads)
            (fun _ m ->
              let g = M.get m sl.on_host - 1 in
              match p.Params.policy with
              | Params.Domain_exclusion -> exclude_domain sk (domain_idx sk g) m
              | Params.Host_exclusion ->
                  if M.get m sl.convicted_by_ids = 1 then exclude_host sk g m
                  else kill_replica sk a r m))
        ap.slots)
    apps;

  (* --- Management submodel activities (one per application) --- *)
  Array.iteri
    (fun a ap ->
      B.timed_exp b
        ~name:(Printf.sprintf "app[%d].management.recovery" a)
        ~rate:(fun _ -> p.Params.recovery_rate)
        ~enabled:(fun m ->
          M.get m ap.need_recovery > 0
          && ((not p.Params.quorum_gates_recovery) || quorum_ok sk m))
        ~reads:(P.P ap.need_recovery :: mgr_group_reads)
        (fun _ m ->
          M.add m ap.need_recovery (-1);
          M.add m ap.to_start 1))
    apps;

  (* --- Replica placement (the Host SANs' start_replica race) --- *)
  let domain_qualifies m d a =
    let dp = domains.(d) in
    M.get m dp.excluded = 0
    && M.get m dp.has_app.(a) = 0
    && Array.exists (fun hp -> M.get m hp.alive = 1) dp.hosts
  in
  B.instantaneous b ~name:"place_replicas"
    ~enabled:(fun m ->
      Array.exists
        (fun a ->
          M.get m apps.(a).to_start > 0
          && Array.exists (fun d -> domain_qualifies m d a) (Array.init nd Fun.id))
        (Array.init na Fun.id))
    ~reads:placement_reads
    (fun ctx m ->
      (* Sampling is avoided when a choice is forced, so configurations
         whose placement is deterministic (e.g. one domain with one host)
         remain explorable by the analytical CTMC path. *)
      let pick = function
        | [ only ] -> only
        | choices -> Prng.Stream.choose_list (San.Activity.stream_exn ctx) choices
      in
      let pending =
        List.filter
          (fun a -> M.get m apps.(a).to_start > 0)
          (List.init na Fun.id)
      in
      let qualifying =
        List.filter
          (fun d -> List.exists (fun a -> domain_qualifies m d a) pending)
          (List.init nd Fun.id)
      in
      let d = pick qualifying in
      let live_hosts =
        List.filter
          (fun h -> M.get m domains.(d).hosts.(h).alive = 1)
          (List.init nhosts Fun.id)
      in
      let h = pick live_hosts in
      let g = (d * nhosts) + h in
      List.iter
        (fun a -> if domain_qualifies m d a then start_replica sk a g pick m)
        pending);

  (* --- Host submodel activities --- *)
  let host_name g s = Printf.sprintf "domain[%d].host[%d].%s" (g / nhosts) (g mod nhosts) s in
  for g = 0 to (nd * nhosts) - 1 do
    let d = domain_idx sk g in
    let dp = domains.(d) in
    let hp = host_places_of sk g in
    (* attack_host: three attack classes; the rate grows linearly with the
       accumulated intra-domain and system-wide spread. *)
    B.timed_exp_cases b
      ~name:(host_name g "attack_host")
      ~rate:(fun m ->
        Params.host_attack_rate p
        +. Params.host_spread_slope p
           *. (M.fget m dp.spread +. M.fget m spread_sys))
      ~enabled:(fun m -> M.get m hp.alive = 1 && M.get m hp.attacked = 0)
      ~reads:[ P.P hp.alive; P.P hp.attacked; P.F dp.spread; P.F spread_sys ]
      (let corrupt_as cls _ m =
         M.set m hp.attacked cls;
         M.set m hp.ever_attacked 1
       in
       [
         (p.Params.frac_script, corrupt_as 1);
         (p.Params.frac_exploratory, corrupt_as 2);
         (p.Params.frac_innovative, corrupt_as 3);
       ]);
    (* Attack spread, exactly once per corrupted host.  Keyed on
       [ever_attacked], not on the host's survival: what spreads is the
       attacker's knowledge gained from the successful intrusion, which
       excluding the compromised host does not erase. *)
    if p.Params.spread_rate_domain > 0.0 then
      B.timed_exp b
        ~name:(host_name g "propagate_domain")
        ~rate:(fun _ -> p.Params.spread_rate_domain)
        ~enabled:(fun m ->
          M.get m hp.ever_attacked = 1
          && M.get m hp.prop_dom_done = 0
          && (p.Params.spread_outlives_host || M.get m hp.alive = 1))
        ~reads:[ P.P hp.ever_attacked; P.P hp.prop_dom_done; P.P hp.alive ]
        (fun _ m ->
          M.fadd m dp.spread p.Params.spread_effect_domain;
          M.set m hp.prop_dom_done 1);
    if p.Params.spread_rate_system > 0.0 then
      B.timed_exp b
        ~name:(host_name g "propagate_sys")
        ~rate:(fun _ -> p.Params.spread_rate_system)
        ~enabled:(fun m ->
          M.get m hp.ever_attacked = 1
          && M.get m hp.prop_sys_done = 0
          && (p.Params.spread_outlives_host || M.get m hp.alive = 1))
        ~reads:[ P.P hp.ever_attacked; P.P hp.prop_sys_done; P.P hp.alive ]
        (fun _ m ->
          M.fadd m spread_sys p.Params.spread_effect_system;
          M.set m hp.prop_sys_done 1);
    (* Host-level IDS, one activity per attack class. *)
    List.iter
      (fun (suffix, cls, prob) ->
        ids_cases b
          ~name:(host_name g suffix)
          ~enabled:(fun m ->
            M.get m hp.alive = 1
            && M.get m hp.attacked = cls
            && M.get m hp.host_id_missed = 0
            && M.get m hp.host_detected = 0)
          ~reads:
            [
              P.P hp.alive; P.P hp.attacked; P.P hp.host_id_missed;
              P.P hp.host_detected;
            ]
          [
            (prob, fun _ m -> M.set m hp.host_detected 1);
            ( 1.0 -. prob,
              fun _ m ->
                if p.Params.ids_misses_sticky then
                  M.set m hp.host_id_missed 1 );
          ])
      [
        ("valid_ID_scp", 1, p.Params.p_detect_script);
        ("valid_ID_exp", 2, p.Params.p_detect_exploratory);
        ("valid_ID_inv", 3, p.Params.p_detect_innovative);
      ];
    (* False alarms of host/manager infiltration. *)
    if Params.host_false_alarm_rate p > 0.0 then
      B.timed_exp b
        ~name:(host_name g "false_ID")
        ~rate:(fun _ -> Params.host_false_alarm_rate p)
        ~enabled:(fun m ->
          M.get m hp.alive = 1
          && M.get m hp.attacked = 0
          && M.get m hp.mgr_corrupt = 0
          && M.get m hp.host_detected = 0)
        ~reads:
          [
            P.P hp.alive; P.P hp.attacked; P.P hp.mgr_corrupt;
            P.P hp.host_detected;
          ]
        (fun _ m -> M.set m hp.host_detected 1);
    (* Response to a host-level detection requires a trustworthy local
       manager and domain manager group (Section 3.4). *)
    B.instantaneous b
      ~name:(host_name g "respond_host_detect")
      ~enabled:(fun m ->
        M.get m hp.host_detected = 1
        && M.get m hp.alive = 1
        && M.get m hp.mgr_corrupt = 0
        && dom_group_ok sk d m)
      ~reads:
        ([ P.P hp.host_detected; P.P hp.alive; P.P hp.mgr_corrupt ]
        @ mgr_group_reads)
      (fun _ m -> respond sk g m);
    (* attack_mgmt: attacks against the manager on this host. *)
    B.timed_exp b
      ~name:(host_name g "attack_mgmt")
      ~rate:(fun m ->
        Params.manager_attack_rate p
        *.
        if M.get m hp.attacked > 0 then p.Params.corruption_multiplier
        else 1.0)
      ~enabled:(fun m ->
        M.get m hp.alive = 1
        && M.get m hp.mgr_running = 1
        && M.get m hp.mgr_corrupt = 0
        && M.get m hp.mgr_detected = 0)
      ~reads:
        [
          P.P hp.alive; P.P hp.attacked; P.P hp.mgr_running;
          P.P hp.mgr_corrupt; P.P hp.mgr_detected;
        ]
      (fun _ m ->
        M.set m hp.mgr_corrupt 1;
        M.add m undetected 1;
        M.add m dp.dom_mgrs_corrupt 1);
    (* valid_ID_mgr: IDS detection of manager infiltration. *)
    ids_cases b
      ~name:(host_name g "valid_ID_mgr")
      ~enabled:(fun m ->
        M.get m hp.alive = 1
        && M.get m hp.mgr_corrupt = 1
        && M.get m hp.mgr_id_missed = 0
        && M.get m hp.mgr_detected = 0)
      ~reads:
        [
          P.P hp.alive; P.P hp.mgr_corrupt; P.P hp.mgr_id_missed;
          P.P hp.mgr_detected;
        ]
      [
        ( p.Params.p_detect_manager,
          fun _ m ->
            M.set m hp.mgr_detected 1;
            M.set m hp.mgr_corrupt 0;
            M.add m undetected (-1);
            M.add m dp.dom_mgrs_corrupt (-1) );
        ( 1.0 -. p.Params.p_detect_manager,
          fun _ m ->
            if p.Params.ids_misses_sticky then M.set m hp.mgr_id_missed 1 );
      ];
    (* Response to a detected corrupt manager: the replication/management
       groups know, so the domain group or the global quorum suffices. *)
    B.instantaneous b
      ~name:(host_name g "respond_mgr_detect")
      ~enabled:(fun m ->
        M.get m hp.mgr_detected = 1
        && M.get m hp.alive = 1
        && (dom_group_ok sk d m || quorum_ok sk m))
      ~reads:([ P.P hp.mgr_detected; P.P hp.alive ] @ mgr_group_reads)
      (fun _ m -> respond sk g m)
  done;

  let model = B.build b in
  {
    params = p;
    model;
    apps;
    domains;
    mgrs_running;
    undetected_corr_mgrs = undetected;
    spread_system = spread_sys;
    excl_domains;
    excl_hosts;
    excl_corrupt_hosts = excl_corrupt;
    excl_frac_sum = excl_frac;
    structure;
    composition = Compose.info root;
  }

(* --- public predicates on handles --- *)

let skeleton_of h =
  {
    p = h.params;
    s_apps = h.apps;
    s_domains = h.domains;
    s_mgrs_running = h.mgrs_running;
    s_undetected = h.undetected_corr_mgrs;
    s_spread_sys = h.spread_system;
    s_excl_domains = h.excl_domains;
    s_excl_hosts = h.excl_hosts;
    s_excl_corrupt = h.excl_corrupt_hosts;
    s_excl_frac = h.excl_frac_sum;
  }

let improper h a m = app_improper (skeleton_of h) a m

let starved h a m = M.get m h.apps.(a).replicas_running = 0

let unavailable h a m = improper h a m || starved h a m

let host_of h g =
  h.domains.(g / h.params.Params.hosts_per_domain).hosts.(g mod h.params.Params.hosts_per_domain)

let domain_of_host h g = g / h.params.Params.hosts_per_domain
let num_hosts h = h.params.Params.num_domains * h.params.Params.hosts_per_domain

let global_quorum_ok h m = quorum_ok (skeleton_of h) m
let domain_group_ok h d m = dom_group_ok (skeleton_of h) d m
