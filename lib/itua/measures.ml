module M = San.Marking

let mean_over_apps h f m =
  let na = Array.length h.Model.apps in
  let acc = ref 0.0 in
  for a = 0 to na - 1 do
    acc := !acc +. f a m
  done;
  !acc /. float_of_int na

let unavailability h ~until =
  Sim.Reward.time_average ~name:(Printf.sprintf "unavailability[0,%g]" until)
    ~until
    (mean_over_apps h (fun a m -> if Model.unavailable h a m then 1.0 else 0.0))

(* Per-application "ever improper" latches, averaged at the end. *)
let unreliability h ~until =
  let na = Array.length h.Model.apps in
  Sim.Reward.custom
    ~name:(Printf.sprintf "unreliability[0,%g]" until)
    ~window:until
    (fun () ->
      let hit = Array.make na false in
      let check t m =
        if t <= until then
          for a = 0 to na - 1 do
            if (not hit.(a)) && Model.improper h a m then hit.(a) <- true
          done
      in
      let observer =
        {
          Sim.Observer.nop with
          on_init = check;
          on_fire = (fun t _ _ m -> check t m);
        }
      in
      let value () =
        let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 hit in
        float_of_int n /. float_of_int na
      in
      (observer, value))

let replicas_running h ~at =
  Sim.Reward.instant ~name:(Printf.sprintf "replicas_running@%g" at) ~at
    (mean_over_apps h (fun a m ->
         float_of_int (M.get m h.Model.apps.(a).Model.replicas_running)))

let load_per_host h ~at =
  Sim.Reward.instant ~name:(Printf.sprintf "load_per_host@%g" at) ~at (fun m ->
      let alive = ref 0 and replicas = ref 0 in
      Array.iter
        (fun dp ->
          Array.iter
            (fun hp ->
              if M.get m hp.Model.alive = 1 then begin
                incr alive;
                replicas := !replicas + M.get m hp.Model.num_replicas
              end)
            dp.Model.hosts)
        h.Model.domains;
      if !alive = 0 then nan
      else float_of_int !replicas /. float_of_int !alive)

let fraction_corrupt_in_excluded h =
  Sim.Reward.final ~name:"fraction_corrupt_in_excluded" (fun m ->
      let n = M.get m h.Model.excl_domains in
      if n = 0 then nan
      else M.fget m h.Model.excl_frac_sum /. float_of_int n)

let fraction_domains_excluded h ~at =
  let nd = float_of_int h.Model.params.Params.num_domains in
  Sim.Reward.instant
    ~name:(Printf.sprintf "fraction_domains_excluded@%g" at)
    ~at
    (fun m -> float_of_int (M.get m h.Model.excl_domains) /. nd)

let all h ~until =
  [
    unavailability h ~until;
    unreliability h ~until;
    fraction_corrupt_in_excluded h;
    fraction_domains_excluded h ~at:until;
    replicas_running h ~at:until;
  ]
