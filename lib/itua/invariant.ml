module M = San.Marking

exception Violation of string

let fail fmt = Format.kasprintf (fun s -> raise (Violation s)) fmt

let check_now (h : Model.handles) m =
  let p = h.Model.params in
  let nd = p.Params.num_domains and nh = p.Params.hosts_per_domain in
  let na = p.Params.num_apps in
  (* Per-slot consistency and per-app counters. *)
  Array.iteri
    (fun a (ap : Model.app_places) ->
      let running = ref 0 and corrupt = ref 0 in
      Array.iteri
        (fun r (sl : Model.slot_places) ->
          let is_running = M.get m sl.Model.running = 1 in
          let is_corrupt = M.get m sl.Model.corrupt = 1 in
          let on_host = M.get m sl.Model.on_host in
          if is_running then begin
            incr running;
            if is_corrupt then incr corrupt;
            if on_host = 0 then fail "app %d slot %d: running but no host" a r;
            let g = on_host - 1 in
            if g >= Model.num_hosts h then
              fail "app %d slot %d: host id %d out of range" a r g;
            if M.get m (Model.host_of h g).Model.alive <> 1 then
              fail "app %d slot %d: running on dead host %d" a r g
          end
          else begin
            if is_corrupt then fail "app %d slot %d: corrupt but not running" a r;
            if M.get m sl.Model.convicted = 1 then
              fail "app %d slot %d: convicted but not running" a r;
            if on_host <> 0 then
              fail "app %d slot %d: not running but on host" a r
          end)
        ap.Model.slots;
      if M.get m ap.Model.replicas_running <> !running then
        fail "app %d: replicas_running=%d but %d slots running" a
          (M.get m ap.Model.replicas_running)
          !running;
      if M.get m ap.Model.rep_corr_undetected <> !corrupt then
        fail "app %d: rep_corr_undetected=%d but %d corrupt slots" a
          (M.get m ap.Model.rep_corr_undetected)
          !corrupt;
      (* Conservation: every replica is running, waiting for recovery, or
         waiting for placement. *)
      let accounted =
        !running + M.get m ap.Model.need_recovery + M.get m ap.Model.to_start
      in
      if accounted <> p.Params.num_reps then
        fail "app %d: %d replicas accounted for (want %d)" a accounted
          p.Params.num_reps)
    h.Model.apps;
  (* Per-domain manager counts, exclusion state and per-host load. *)
  let mgrs_total = ref 0 and undetected_total = ref 0 in
  Array.iteri
    (fun d (dp : Model.domain_places) ->
      let running = ref 0 and corrupt = ref 0 in
      Array.iteri
        (fun hh (hp : Model.host_places) ->
          let g = (d * nh) + hh in
          let alive = M.get m hp.Model.alive = 1 in
          if M.get m hp.Model.mgr_running = 1 then begin
            if not alive then fail "host %d: manager running on dead host" g;
            incr running;
            if M.get m hp.Model.mgr_corrupt = 1 then incr corrupt
          end
          else if M.get m hp.Model.mgr_corrupt = 1 then
            fail "host %d: corrupt manager not running" g;
          if alive && M.get m hp.Model.mgr_running = 0 then
            fail "host %d: alive host without manager" g;
          (* Count the replicas that claim to run on this host. *)
          let here = ref 0 in
          Array.iter
            (fun (ap : Model.app_places) ->
              Array.iter
                (fun (sl : Model.slot_places) ->
                  if M.get m sl.Model.running = 1
                     && M.get m sl.Model.on_host = g + 1
                  then incr here)
                ap.Model.slots)
            h.Model.apps;
          if M.get m hp.Model.num_replicas <> !here then
            fail "host %d: num_replicas=%d but %d slots claim it" g
              (M.get m hp.Model.num_replicas)
              !here;
          if (not alive) && !here > 0 then
            fail "host %d: dead host with replicas" g)
        dp.Model.hosts;
      if M.get m dp.Model.dom_mgrs_running <> !running then
        fail "domain %d: dom_mgrs_running=%d, actual %d" d
          (M.get m dp.Model.dom_mgrs_running)
          !running;
      if M.get m dp.Model.dom_mgrs_corrupt <> !corrupt then
        fail "domain %d: dom_mgrs_corrupt=%d, actual %d" d
          (M.get m dp.Model.dom_mgrs_corrupt)
          !corrupt;
      mgrs_total := !mgrs_total + !running;
      undetected_total := !undetected_total + !corrupt;
      (* Exclusion implies every host is dead (under domain exclusion a
         domain dies only as a whole). *)
      if M.get m dp.Model.excluded = 1 then
        Array.iteri
          (fun hh hp ->
            if M.get m hp.Model.alive = 1 then
              fail "domain %d: excluded but host %d alive" d hh)
          dp.Model.hosts;
      (* has_app agrees with actual placement. *)
      for a = 0 to na - 1 do
        let placed = ref 0 in
        Array.iter
          (fun (sl : Model.slot_places) ->
            let oh = M.get m sl.Model.on_host in
            if M.get m sl.Model.running = 1 && oh > 0 && (oh - 1) / nh = d then
              incr placed)
          h.Model.apps.(a).Model.slots;
        if !placed > 1 then
          fail "domain %d: %d replicas of app %d (constraint is one)" d !placed
            a;
        if M.get m dp.Model.has_app.(a) <> !placed then
          fail "domain %d app %d: has_app=%d but %d placed" d a
            (M.get m dp.Model.has_app.(a))
            !placed
      done)
    h.Model.domains;
  if M.get m h.Model.mgrs_running <> !mgrs_total then
    fail "mgrs_running=%d, actual %d" (M.get m h.Model.mgrs_running) !mgrs_total;
  if M.get m h.Model.undetected_corr_mgrs <> !undetected_total then
    fail "undetected_corr_mgrs=%d, actual %d"
      (M.get m h.Model.undetected_corr_mgrs)
      !undetected_total;
  (* Measure accumulators stay within their trivial bounds. *)
  if M.get m h.Model.excl_domains > nd then fail "excluded_domains > num_domains";
  if M.get m h.Model.excl_corrupt_hosts > M.get m h.Model.excl_hosts then
    fail "excluded corrupt hosts exceed excluded hosts"

(* Linear conservation laws for the structural checker (A012 / the
   [--invariants] certificate). Each law's value is fixed by the initial
   marking; every effect in the model preserves it because the cascades
   update both sides inside one output gate (e.g. [kill_host] decrements
   [alive] and the exclusion that calls it increments [excl_hosts] in the
   same firing). *)
let conservation_laws (h : Model.handles) =
  let all_hosts f =
    Array.to_list h.Model.domains
    |> List.concat_map (fun (dp : Model.domain_places) ->
           Array.to_list dp.Model.hosts |> List.map f)
  in
  let hosts =
    {
      Analysis.Structure.law_name = "hosts-conserved";
      law_terms =
        (h.Model.excl_hosts, 1)
        :: all_hosts (fun (hp : Model.host_places) -> (hp.Model.alive, 1));
    }
  in
  let apps =
    Array.to_list h.Model.apps
    |> List.mapi (fun a (ap : Model.app_places) ->
           {
             Analysis.Structure.law_name =
               Printf.sprintf "app[%d]-replicas-conserved" a;
             law_terms =
               [
                 (ap.Model.replicas_running, 1);
                 (ap.Model.need_recovery, 1);
                 (ap.Model.to_start, 1);
               ];
           })
  in
  let managers =
    {
      Analysis.Structure.law_name = "managers-consistent";
      law_terms =
        (h.Model.mgrs_running, 1)
        :: all_hosts (fun (hp : Model.host_places) ->
               (hp.Model.mgr_running, -1));
    }
  in
  let domain_managers =
    {
      Analysis.Structure.law_name = "domain-managers-consistent";
      law_terms =
        (h.Model.mgrs_running, 1)
        :: (Array.to_list h.Model.domains
           |> List.map (fun (dp : Model.domain_places) ->
                  (dp.Model.dom_mgrs_running, -1)));
    }
  in
  let corrupt_managers =
    {
      Analysis.Structure.law_name = "corrupt-managers-consistent";
      law_terms =
        (h.Model.undetected_corr_mgrs, 1)
        :: (Array.to_list h.Model.domains
           |> List.map (fun (dp : Model.domain_places) ->
                  (dp.Model.dom_mgrs_corrupt, -1)));
    }
  in
  (hosts :: apps) @ [ managers; domain_managers; corrupt_managers ]

let observer h () =
  let monotone = ref (-1) in
  let check _t m =
    check_now h m;
    let e = M.get m h.Model.excl_domains in
    if e < !monotone then fail "excluded_domains decreased";
    monotone := e
  in
  {
    Sim.Observer.nop with
    on_init = check;
    on_fire = (fun t _ _ m -> check t m);
    on_finish = check;
  }
