(** The ITUA replication-system SAN model (paper Sections 2–3).

    {!build} constructs the composed model of Figure 2(a): a [Replica] SAN
    replicated [num_reps] times and joined with a [Management] SAN per
    application, an application group replicated [num_apps] times, a
    [Host] SAN replicated into security domains, and everything joined
    through shared places. The returned {!handles} exposes the shared
    places the measures and the invariant checker need.

    Modeling notes (deviations from the Möbius encoding are listed in
    DESIGN.md):

    {ul
    {- Replica slots store the host they run on in an int place [on_host]
       (host id + 1; 0 = not placed) instead of the paper's application-id
       bit vectors.}
    {- Replica placement ([place_replicas]) picks a qualifying domain
       uniformly at random, then a live host within it uniformly, and
       starts a replica there for {e every} application that has a pending
       replica and no replica in that domain — the batching described for
       the Host SAN's [start_replica].}
    {- The exclusion cascade (shut down hosts, kill their replicas, convict
       their managers, request recoveries) runs inside one output-gate
       effect, preserving the paper's zero-time semantics.}
    {- IDS detection activities have a {e miss} case that latches
       [id_missed], so a missed intrusion is not retried; a missed corrupt
       replica can still be convicted by its replication group
       ([rep_misbehave]).}
    {- A detection whose management response condition does not currently
       hold stays pending and fires as soon as the condition holds (it is
       usually instantaneous anyway).}} *)

(** Places of one application replica slot. *)
type slot_places = {
  running : San.Place.t;  (** 1 while the replica is active *)
  corrupt : San.Place.t;  (** 1 while corrupt and undetected *)
  convicted : San.Place.t;  (** 1 while convicted, awaiting exclusion *)
  convicted_by_ids : San.Place.t;
      (** the conviction came from the host IDS (infiltration detected on
          the host) rather than from the replication group; under host
          exclusion only IDS convictions take the host down *)
  id_missed : San.Place.t;  (** IDS missed this corruption *)
  on_host : San.Place.t;  (** host id + 1; 0 when not placed *)
}

(** Shared places of one application (replication group + management). *)
type app_places = {
  replicas_running : San.Place.t;
  rep_corr_undetected : San.Place.t;
  rep_grp_failure : San.Place.t;
      (** latched on Byzantine failure, as in the paper *)
  need_recovery : San.Place.t;
  to_start : San.Place.t;  (** replicas awaiting placement *)
  slots : slot_places array;
}

(** Places of one host. *)
type host_places = {
  alive : San.Place.t;
  attacked : San.Place.t;
      (** 0 = clean, 1/2/3 = script / exploratory / innovative intrusion *)
  ever_attacked : San.Place.t;
      (** latched on the first intrusion; drives attack-spread propagation,
          which outlives the host's exclusion (the attacker's knowledge is
          not erased by shutting the host down) *)
  host_id_missed : San.Place.t;
  host_detected : San.Place.t;  (** detection pending a response *)
  mgr_running : San.Place.t;
  mgr_corrupt : San.Place.t;  (** manager corrupt and undetected *)
  mgr_id_missed : San.Place.t;
  mgr_detected : San.Place.t;
  num_replicas : San.Place.t;  (** replicas running on this host *)
  prop_dom_done : San.Place.t;
  prop_sys_done : San.Place.t;
}

(** Shared places of one security domain. *)
type domain_places = {
  excluded : San.Place.t;
  spread : San.Place.fl;  (** the paper's [attack_spread_domain] *)
  dom_mgrs_running : San.Place.t;
  dom_mgrs_corrupt : San.Place.t;
  has_app : San.Place.t array;
      (** per application: 1 if this domain hosts one of its replicas *)
  hosts : host_places array;
}

type handles = {
  params : Params.t;
  model : San.Model.t;
  apps : app_places array;
  domains : domain_places array;
  (* system-wide shared places *)
  mgrs_running : San.Place.t;
  undetected_corr_mgrs : San.Place.t;
  spread_system : San.Place.fl;
  (* measure accumulators, written by the exclusion effects *)
  excl_domains : San.Place.t;  (** number of domains excluded so far *)
  excl_hosts : San.Place.t;  (** hosts shut down by exclusions *)
  excl_corrupt_hosts : San.Place.t;
      (** of those, hosts that were corrupt (OS or manager) when shut *)
  excl_frac_sum : San.Place.fl;
      (** sum over domain exclusions of the corrupt-host fraction *)
  structure : string;  (** rendering of the composition tree *)
  composition : Compose.info;
      (** introspectable composition tree, for the shared-place audit *)
}

val build : Params.t -> handles

val rebind : Params.t -> model:San.Model.t -> composition:Compose.info -> handles
(** Reconstruct {!handles} for a model {e reloaded from disk} ([Serial],
    [itua_sim --model]) instead of built in-process. [build] names every
    place deterministically from its position in the composition tree,
    so pure name lookup recovers every shared-place descriptor; the
    measures and predicates then work on the reloaded model unchanged.
    [params] must be the parameter set the file was built with (carried
    in its ["params"] annotation) — a place expected by that topology
    but missing from [model] raises [Invalid_argument]. *)

(* Derived state predicates used by measures and studies. *)

val improper : handles -> int -> San.Marking.t -> bool
(** [improper h a m]: application [a] suffers a Byzantine fault — at least
    one replica is corrupt (undetected) and the corrupt replicas are a
    third or more of the currently active ones
    ([corrupt > 0 && 3·corrupt >= running]). This is the event behind the
    paper's latched [rep_grp_failure] (set only by attacks on live
    replicas) and drives the {e unreliability} measure, whose Figure 3(b)
    peak at 4 hosts/domain exists precisely because a starved application
    cannot fail this way. *)

val starved : handles -> int -> San.Marking.t -> bool
(** [starved h a m]: application [a] has no running replicas (every domain
    able to host one has been excluded). *)

val unavailable : handles -> int -> San.Marking.t -> bool
(** [improper || starved]: service is not delivered properly, either
    through a Byzantine fault or because no replica is left. This drives
    the {e unavailability} measure — it is what links unavailability to
    running out of domains in Figure 3(a). *)

val host_of : handles -> int -> host_places
(** [host_of h g] is host [g] (global index [domain · hosts_per_domain +
    host]). *)

val domain_of_host : handles -> int -> int
val num_hosts : handles -> int

val global_quorum_ok : handles -> San.Marking.t -> bool
(** Fewer than a third of the currently running managers are (undetected)
    corrupt. *)

val domain_group_ok : handles -> int -> San.Marking.t -> bool
(** The domain's manager group is not corrupt. *)
