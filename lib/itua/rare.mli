(** Importance functions for rare-event (splitting) estimation of the
    ITUA failure measures.

    An importance function maps markings to integer levels
    [0 .. levels]; {!Sim.Splitting} estimates the probability that a
    replication ever reaches the top level before the horizon. The top
    level is the failure predicate itself; the intermediate levels grade
    the attacker's progress toward it, so that trajectories which have
    made partial progress are cloned and the deep tail is reached by
    accumulated conditional steps instead of one lucky run. See
    [doc/RARE_EVENTS.md] for how these functions were chosen.

    Both functions are evaluated by the engine on stable markings only,
    which matches {!Ctmc.Measure.ever} exactly (vanishing markings are
    skipped by both); the crude-MC {!Measures.unreliability} latch can
    additionally observe markings between two instantaneous firings —
    see the "instantaneous activities at level boundaries" pitfall in
    [doc/RARE_EVENTS.md]. *)

val default_levels : int
(** [6]: enough graduation for the studies' 7-replica groups without
    starving the upper stages. *)

val unreliability :
  ?app:int -> Model.handles -> levels:int -> San.Marking.t -> int
(** Progress toward {!Model.improper} — the unreliability failure event.
    Level [levels] iff the app is improper; below that,
    [min (levels-1) (2·corrupt + attacked)] where [corrupt] is the app's
    undetected-corrupt replica count and [attacked] is 1 when any host
    has ever been intruded (the attacker has a foothold, which speeds
    further corruption up by the corruption multiplier).

    [app] restricts the target to one application's failure; by the
    model's exchangeability over applications,
    [P(app 0 ever improper) = E(fraction of apps ever improper)], the
    quantity the Figure 3/4 unreliability panels report — so splitting
    runs targeting app 0 are directly comparable to the crude-MC panel
    numbers. Omit [app] to target "any application improper". *)

val unavailability :
  ?app:int -> Model.handles -> levels:int -> San.Marking.t -> int
(** Progress toward {!Model.unavailable} ([improper || starved]). Takes
    the maximum of the {!unreliability} progress and an
    excluded-domain term [(levels-1)·excluded/num_domains] (starvation
    requires every domain able to host the app to be excluded, so
    exclusions are progress toward it). Level [levels] iff unavailable. *)
