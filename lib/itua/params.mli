(** Parameters of the ITUA replication-system model.

    Defaults follow Section 4 of the paper (one time unit = one hour):
    cumulative base attack rate 3/h, cumulative false-alarm rate 2/h,
    attack-class split 80/15/5, detection probabilities 0.90/0.75/0.40 for
    hosts and 0.80 for replicas and managers, domain propagation rate (and
    spread effect) 1, system-wide 0.1, corruption multiplier 2, misbehavior
    rate 2/h.

    Two rates the paper does not state are exposed as explicit knobs with
    documented defaults: [ids_decision_rate] (time from an intrusion to
    the IDS detect/miss decision, default 4/h) and [recovery_rate] (the
    management "high-rate" recovery decision, default 100/h).

    The cumulative system-wide attack rate is split across the three
    target classes by the [attack_share_*] fractions (default 70% hosts,
    15% replicas, 15% managers — direct attacks on replicas and managers
    are assumed rarer than OS/service exploits, the multiplier being their
    main corruption path), then evenly over a fixed {e reference}
    population: the Section 4.2/4.3 baseline of 30 hosts and 28 placed
    replicas. The false-alarm rate is divided the same way
    ([false_alarm_share_host]). Per-entity exposure is therefore a
    constant, identical in every configuration of every study — the
    normalization Section 4.2 states ("the probability of a successful
    intrusion into a host is assumed to be the same in all
    experiments"). *)

type exclusion_policy = Domain_exclusion | Host_exclusion

type t = {
  (* topology *)
  num_domains : int;
  hosts_per_domain : int;
  num_apps : int;
  num_reps : int;  (** replicas the middleware starts per application *)
  policy : exclusion_policy;
  (* attack process *)
  attack_rate_system : float;  (** cumulative successful attacks per hour *)
  attack_share_host : float;
      (** share of the cumulative rate aimed at host OS/services *)
  attack_share_replica : float;
  attack_share_manager : float;
  frac_script : float;
  frac_exploratory : float;
  frac_innovative : float;
  corruption_multiplier : float;
      (** factor on replica/manager attack rates when their host is
          corrupt *)
  spread_rate_domain : float;
  spread_effect_domain : float;
  spread_rate_system : float;
  spread_effect_system : float;
  spread_slope : float;
      (** increase of a host's attack rate per unit of accumulated spread
          marking, in multiples of [attack_rate_system / num_hosts]; the
          paper specifies only that the rate "increases linearly with the
          markings" *)
  (* detection *)
  false_alarm_rate_system : float;
  false_alarm_share_host : float;
      (** share of the cumulative false-alarm rate concerning host/manager
          infiltration; the rest are replica-corruption alarms (which, per
          the paper's replica [false_ID] enabling condition, only concern
          already-intruded replicas) *)
  p_detect_script : float;
  p_detect_exploratory : float;
  p_detect_innovative : float;
  p_detect_replica : float;
  p_detect_manager : float;
  ids_decision_rate : float;
  ids_latency_stages : int;
      (** Erlang stages of the IDS decision latency; 1 (default) is
          exponential. Higher values keep the same mean decision time
          [1/ids_decision_rate] but make it less variable. The paper notes
          its model used "non-exponentially distributed firing times for
          some activities", which is why it was simulated rather than
          solved; this knob reproduces that regime (the CTMC path rejects
          models with [ids_latency_stages > 1]). *)
  ids_misses_sticky : bool;
      (** ablation switch. [true] (the model default): a missed detection
          is final — the IDS never reconsiders that intrusion. [false]:
          the detection activity keeps retrying, so every intrusion is
          eventually detected and the detection probabilities only stretch
          the time to detection. *)
  misbehave_rate : float;
  (* management *)
  recovery_rate : float;
  quorum_gates_recovery : bool;
      (** ablation switch. [true] (the model default): starting replacement
          replicas requires a trustworthy global manager quorum (fewer than
          a third of running managers corrupt). [false]: recovery proceeds
          regardless, isolating the contribution of management-consensus
          loss to the measures. *)
  spread_outlives_host : bool;
      (** ablation switch. [true] (the model default): attack-spread
          propagation is keyed on the latched ever_attacked flag and
          survives the host's exclusion. [false]: propagation requires the
          corrupted host to still be alive, so fast exclusion quenches the
          spread. *)
  (* calibration *)
  rate_scale : float;
      (** factor applied to every derived per-entity attack and
          false-alarm rate. The thesis behind the paper (its ref. [13])
          holds the exact per-activity rates and is not public; the
          literal per-entity division of the stated cumulative rates
          ([rate_scale = 1.0]) drives domain exclusions ≈2.5× faster than
          the trajectories reported in Figures 3(d)/4(d), which saturates
          the Figure 3 curves. The default 0.4 calibrates the exclusion
          rate to the paper's regime; all shape conclusions are insensitive
          to this factor (see EXPERIMENTS.md). *)
  host_rate_multipliers : float array;
      (** per-host factors on the base host attack rate, indexed by global
          host id (domain-major, [num_hosts] entries) — a heterogeneous
          fleet in which some hosts are harder targets than others. [[||]]
          (the default) means homogeneous (all 1.0). A non-empty array
          makes the model builder record each host's multiplier as a
          per-copy composition parameter ([Compose.Ctx.note]), so the
          orbit pass ([Analysis.Orbit]) partitions hosts into partial
          orbits by multiplier instead of assuming full exchangeability. *)
}

val default : t
(** The Section 4 baseline: 10 domains × 3 hosts, 4 applications × 7
    replicas, domain exclusion, and the rates above. *)

val validate : t -> (unit, string) result
val check : t -> t
(** [check p] returns [p] or raises [Invalid_argument]. *)

(* Derived quantities. *)

val num_hosts : t -> int
val placed_replicas_per_app : t -> int
(** [min num_domains num_reps]: one replica per domain per application. *)

val total_placed_replicas : t -> int

val host_attack_rate : t -> float
(** Per-host base rate of successful attacks on the host OS/services
    (constant across topologies; see the normalization note above). *)

val host_rate_multiplier : t -> int -> float
(** [host_rate_multiplier p g] is host [g]'s entry of
    [host_rate_multipliers], or 1.0 when the array is empty. *)

val host_attack_rate_of : t -> int -> float
(** [host_attack_rate_of p g = host_attack_rate p *. host_rate_multiplier
    p g] — the per-host base attack rate of global host [g]. *)

val host_spread_slope : t -> float
(** Increase of the per-host attack rate per unit of accumulated attack
    spread: [spread_slope · attack_rate_system / num_hosts]. Deliberately
    {e not} multiplied by [rate_scale]: the calibration factor applies to
    the spontaneous base rates, while the spread mechanism keeps the
    paper-specified linear law with this slope. *)

val replica_attack_rate : t -> float
val manager_attack_rate : t -> float
val host_false_alarm_rate : t -> float
val replica_false_alarm_rate : t -> float

val to_json : t -> Report.Json.t
(** Every field, in record order (deterministic bytes under
    [Report.Json.to_string]); [policy] renders as ["domain"]/["host"].
    Carried in a serialized model's annotations so [itua_sim --model]
    can rebind the handles ({!Model.rebind}). *)

val of_json : Report.Json.t -> (t, string) result
(** Inverse of {!to_json}. Every field except [host_rate_multipliers]
    (absent means [[||]], for files written before it existed) is
    required; the result is {!validate}d. *)

val pp : Format.formatter -> t -> unit
