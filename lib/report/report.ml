type cell = Stats.Ci.t option

type table = {
  title : string;
  x_label : string;
  series : string list;
  mutable rows : (float * cell list) list;  (* reversed *)
}

let create ~title ~x_label ~series =
  if series = [] then invalid_arg "Report.create: no series";
  { title; x_label; series; rows = [] }

let add_row t ~x cells =
  if List.length cells <> List.length t.series then
    invalid_arg "Report.add_row: cell count does not match series";
  t.rows <- (x, cells) :: t.rows

let title t = t.title

let rows t = List.rev t.rows

let x_values t = List.map fst (rows t)

let value t ~x ~series =
  let cells = List.assoc x (rows t) in
  let rec find names cells =
    match (names, cells) with
    | n :: _, c :: _ when n = series -> c
    | _ :: names, _ :: cells -> find names cells
    | _ -> raise Not_found
  in
  find t.series cells

let pp_cell ppf = function
  | None -> Format.fprintf ppf "%14s" "-"
  | Some (ci : Stats.Ci.t) ->
      Format.fprintf ppf "%8.5f±%-5.3f" ci.Stats.Ci.mean ci.Stats.Ci.half_width

let pp_text ppf t =
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%10s" t.x_label;
  List.iter (fun s -> Format.fprintf ppf " %14s" s) t.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun (x, cells) ->
      Format.fprintf ppf "%10g" x;
      List.iter (fun c -> Format.fprintf ppf " %a" pp_cell c) cells;
      Format.fprintf ppf "@.")
    (rows t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let pp_csv ppf t =
  Format.fprintf ppf "%s" (csv_escape t.x_label);
  List.iter
    (fun s ->
      Format.fprintf ppf ",%s,%s_halfwidth" (csv_escape s) (csv_escape s))
    t.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun (x, cells) ->
      Format.fprintf ppf "%g" x;
      List.iter
        (fun c ->
          match c with
          | None -> Format.fprintf ppf ",,"
          | Some (ci : Stats.Ci.t) ->
              Format.fprintf ppf ",%.8g,%.8g" ci.Stats.Ci.mean
                ci.Stats.Ci.half_width)
        cells;
      Format.fprintf ppf "@.")
    (rows t)

let with_out_file path f =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try f ppf
   with e ->
     close_out_noerr oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc

let write_csv path t = with_out_file path (fun ppf -> pp_csv ppf t)

let pp_csv_rows ~header ppf rows =
  if header = [] then invalid_arg "Report.pp_csv_rows: empty header";
  let columns = List.length header in
  let pp_row ppf row =
    if List.length row <> columns then
      invalid_arg "Report.pp_csv_rows: row width does not match header";
    Format.fprintf ppf "%s@."
      (String.concat "," (List.map csv_escape row))
  in
  pp_row ppf header;
  List.iter (pp_row ppf) rows

let write_csv_rows path ~header rows =
  with_out_file path (fun ppf -> pp_csv_rows ~header ppf rows)
