type cell = Stats.Ci.t option

type table = {
  title : string;
  x_label : string;
  series : string list;
  mutable rows : (float * cell list) list;  (* reversed *)
}

let create ~title ~x_label ~series =
  if series = [] then invalid_arg "Report.create: no series";
  { title; x_label; series; rows = [] }

let add_row t ~x cells =
  if List.length cells <> List.length t.series then
    invalid_arg "Report.add_row: cell count does not match series";
  t.rows <- (x, cells) :: t.rows

let title t = t.title

let rows t = List.rev t.rows

let x_values t = List.map fst (rows t)

let value t ~x ~series =
  let cells = List.assoc x (rows t) in
  let rec find names cells =
    match (names, cells) with
    | n :: _, c :: _ when n = series -> c
    | _ :: names, _ :: cells -> find names cells
    | _ -> raise Not_found
  in
  find t.series cells

let pp_cell ppf = function
  | None -> Format.fprintf ppf "%14s" "-"
  | Some (ci : Stats.Ci.t) ->
      Format.fprintf ppf "%8.5f±%-5.3f" ci.Stats.Ci.mean ci.Stats.Ci.half_width

let pp_text ppf t =
  Format.fprintf ppf "%s@." t.title;
  Format.fprintf ppf "%10s" t.x_label;
  List.iter (fun s -> Format.fprintf ppf " %14s" s) t.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun (x, cells) ->
      Format.fprintf ppf "%10g" x;
      List.iter (fun c -> Format.fprintf ppf " %a" pp_cell c) cells;
      Format.fprintf ppf "@.")
    (rows t)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let pp_csv ppf t =
  Format.fprintf ppf "%s" (csv_escape t.x_label);
  List.iter
    (fun s ->
      Format.fprintf ppf ",%s,%s_halfwidth" (csv_escape s) (csv_escape s))
    t.series;
  Format.fprintf ppf "@.";
  List.iter
    (fun (x, cells) ->
      Format.fprintf ppf "%g" x;
      List.iter
        (fun c ->
          match c with
          | None -> Format.fprintf ppf ",,"
          | Some (ci : Stats.Ci.t) ->
              Format.fprintf ppf ",%.8g,%.8g" ci.Stats.Ci.mean
                ci.Stats.Ci.half_width)
        cells;
      Format.fprintf ppf "@.")
    (rows t)

let with_out_file path f =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try f ppf
   with e ->
     close_out_noerr oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc

let write_csv path t = with_out_file path (fun ppf -> pp_csv ppf t)

let pp_csv_rows ~header ppf rows =
  if header = [] then invalid_arg "Report.pp_csv_rows: empty header";
  let columns = List.length header in
  let pp_row ppf row =
    if List.length row <> columns then
      invalid_arg "Report.pp_csv_rows: row width does not match header";
    Format.fprintf ppf "%s@."
      (String.concat "," (List.map csv_escape row))
  in
  pp_row ppf header;
  List.iter (pp_row ppf) rows

let write_csv_rows path ~header rows =
  with_out_file path (fun ppf -> pp_csv_rows ~header ppf rows)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let int n = Num (float_of_int n)

  (* Deterministic float rendering: integral values print without a
     fraction, everything else with the shortest of %.15g/%.17g that
     round-trips through [float_of_string]. Determinism is load-bearing:
     trajectory JSONL is compared byte-for-byte across core counts. *)
  let float_to_string f =
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else
      let s = Printf.sprintf "%.15g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let escape_string b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let rec emit b = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f ->
        (* JSON has no nan/infinity; null is the conventional stand-in. *)
        if Float.is_finite f then Buffer.add_string b (float_to_string f)
        else Buffer.add_string b "null"
    | Str s -> escape_string b s
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            emit b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            emit b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    emit b t;
    Buffer.contents b

  exception Parse_error of string

  let utf8_of_code b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %C" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "unterminated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'; incr pos
            | '\\' -> Buffer.add_char b '\\'; incr pos
            | '/' -> Buffer.add_char b '/'; incr pos
            | 'b' -> Buffer.add_char b '\b'; incr pos
            | 'f' -> Buffer.add_char b '\012'; incr pos
            | 'n' -> Buffer.add_char b '\n'; incr pos
            | 'r' -> Buffer.add_char b '\r'; incr pos
            | 't' -> Buffer.add_char b '\t'; incr pos
            | 'u' ->
                if !pos + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  match int_of_string_opt ("0x" ^ hex) with
                  | Some c -> c
                  | None -> fail "bad \\u escape"
                in
                (* Surrogate pairs are not recombined; our writer never
                   emits code points above U+001F as escapes. *)
                utf8_of_code b code;
                pos := !pos + 5
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin
            incr pos;
            Obj []
          end
          else begin
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin
            incr pos;
            Arr []
          end
          else begin
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elements (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            Arr (elements [])
          end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') ->
          let start = !pos in
          while
            !pos < n
            &&
            match s.[!pos] with
            | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
            | _ -> false
          do
            incr pos
          done;
          let tok = String.sub s start (!pos - start) in
          (match float_of_string_opt tok with
          | Some f -> Num f
          | None -> fail (Printf.sprintf "bad number %S" tok))
      | Some c -> fail (Printf.sprintf "unexpected character %C" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
  let str = function Str s -> Some s | _ -> None
  let num = function Num f -> Some f | _ -> None
  let arr = function Arr xs -> Some xs | _ -> None
  let bool = function Bool b -> Some b | _ -> None
end

let write_jsonl path lines =
  let oc = open_out path in
  (try
     List.iter
       (fun j ->
         output_string oc (Json.to_string j);
         output_char oc '\n')
       lines
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc

let read_jsonl path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go (lineno + 1) acc
        | line -> (
            match Json.of_string line with
            | Ok j -> go (lineno + 1) (j :: acc)
            | Error e -> Error (Printf.sprintf "%s:%d: %s" path lineno e))
      in
      let r = go 1 [] in
      close_in_noerr ic;
      r
