(** Result tables for the experiment harness.

    A {!table} is a labelled grid: one row per x-value of a parameter
    sweep, one column per data series (e.g. one per application count in
    Figure 3, or one per exclusion policy in Figure 5). Cells hold
    confidence intervals. Tables render as aligned text (the form the
    bench harness prints) or CSV (for external plotting). *)

type cell = Stats.Ci.t option
(** [None] when the measure was undefined in every replication. *)

type table

val create :
  title:string -> x_label:string -> series:string list -> table
(** Column layout; rows are appended with {!add_row}. *)

val add_row : table -> x:float -> cell list -> unit
(** Appends a row. The number of cells must match the series count. *)

val title : table -> string

val x_values : table -> float list

val value : table -> x:float -> series:string -> cell
(** Lookup a cell; raises [Not_found] for unknown coordinates. *)

val pp_text : Format.formatter -> table -> unit
(** Aligned, human-readable rendering with ± half-widths. *)

val pp_csv : Format.formatter -> table -> unit
(** CSV: header [x,<series>,<series>_hw,...], one row per x. *)

val write_csv : string -> table -> unit
(** [write_csv path t] saves {!pp_csv} output to [path]. *)

val pp_csv_rows :
  header:string list -> Format.formatter -> string list list -> unit
(** Generic CSV for tables that are not CI grids (engine telemetry,
    bench records): a header row followed by the given rows, each
    escaped. Every row must match the header's width
    ([Invalid_argument] otherwise). *)

val write_csv_rows : string -> header:string list -> string list list -> unit
(** [write_csv_rows path ~header rows] saves {!pp_csv_rows} to [path]. *)

(** Minimal JSON values, for the line-oriented records the harness writes
    (trajectory JSONL, bench records).

    The printer is compact (one line, no spaces) and {e deterministic}:
    floats render as the shortest [%.15g]/[%.17g] form that round-trips,
    so equal values always produce equal bytes — trajectory files are
    compared byte-for-byte across core counts. Non-finite numbers render
    as [null]. The parser accepts any standard JSON text ([\u] escapes
    are decoded to UTF-8; surrogate pairs are not recombined). *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val int : int -> t
  (** [int n] is [Num (float_of_int n)]. *)

  val float_to_string : float -> string
  (** The deterministic float rendering used by {!to_string}: integral
      values without a fraction, otherwise the shortest of [%.15g]/[%.17g]
      that round-trips through [float_of_string]. *)

  val to_string : t -> string
  (** Compact, deterministic, single-line rendering. *)

  val of_string : string -> (t, string) result
  (** Parses a complete JSON text; the error carries a byte offset. *)

  val member : string -> t -> t option
  (** Object field lookup; [None] on missing field or non-object. *)

  val str : t -> string option
  val num : t -> float option
  val arr : t -> t list option
  val bool : t -> bool option
  (** Shape accessors; [None] on kind mismatch. *)
end

val write_jsonl : string -> Json.t list -> unit
(** [write_jsonl path lines] writes one compact JSON value per line. *)

val read_jsonl : string -> (Json.t list, string) result
(** Reads a JSONL file back (blank lines are skipped). The error carries
    [file:line] of the first unparsable line, or the [Sys_error] text if
    the file cannot be opened. *)
