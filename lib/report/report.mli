(** Result tables for the experiment harness.

    A {!table} is a labelled grid: one row per x-value of a parameter
    sweep, one column per data series (e.g. one per application count in
    Figure 3, or one per exclusion policy in Figure 5). Cells hold
    confidence intervals. Tables render as aligned text (the form the
    bench harness prints) or CSV (for external plotting). *)

type cell = Stats.Ci.t option
(** [None] when the measure was undefined in every replication. *)

type table

val create :
  title:string -> x_label:string -> series:string list -> table
(** Column layout; rows are appended with {!add_row}. *)

val add_row : table -> x:float -> cell list -> unit
(** Appends a row. The number of cells must match the series count. *)

val title : table -> string

val x_values : table -> float list

val value : table -> x:float -> series:string -> cell
(** Lookup a cell; raises [Not_found] for unknown coordinates. *)

val pp_text : Format.formatter -> table -> unit
(** Aligned, human-readable rendering with ± half-widths. *)

val pp_csv : Format.formatter -> table -> unit
(** CSV: header [x,<series>,<series>_hw,...], one row per x. *)

val write_csv : string -> table -> unit
(** [write_csv path t] saves {!pp_csv} output to [path]. *)

val pp_csv_rows :
  header:string list -> Format.formatter -> string list list -> unit
(** Generic CSV for tables that are not CI grids (engine telemetry,
    bench records): a header row followed by the given rows, each
    escaped. Every row must match the header's width
    ([Invalid_argument] otherwise). *)

val write_csv_rows : string -> header:string list -> string list list -> unit
(** [write_csv_rows path ~header rows] saves {!pp_csv_rows} to [path]. *)
