(** Markings: the mutable state of a SAN.

    A marking assigns a non-negative integer to every int place and a float
    to every extended place. The simulator needs to know which places an
    activity's firing changed, so writes are journalled: between
    {!clear_journal} and {!journal}, every place whose value actually
    changed is recorded (once) by uid.

    Int markings are checked to stay non-negative, which catches effect
    bugs (e.g. killing a replica twice) early. *)

type t

val create : ints:int -> floats:int -> t
(** Fresh marking with the given numbers of slots, all zero. *)

val copy : t -> t
(** Deep copy (journal not copied). Used for state-space exploration. *)

val get : t -> Place.t -> int
val set : t -> Place.t -> int -> unit
(** [set m p v] writes [v]; raises [Invalid_argument] if [v < 0]. *)

val add : t -> Place.t -> int -> unit
(** [add m p d] is [set m p (get m p + d)]. *)

val fget : t -> Place.fl -> float
val fset : t -> Place.fl -> float -> unit
val fadd : t -> Place.fl -> float -> unit

val clear_journal : t -> unit
val journal : t -> int list
(** Uids of places changed since the last {!clear_journal}, most recent
    first, each at most once. *)

val trace_reads : t -> (unit -> 'a) -> 'a * int list
(** [trace_reads m f] runs [f] while recording which places [f] reads
    through this marking (each uid once), and returns [f]'s result with
    the read set. Used by the [analysis] library to detect activities
    whose enabling predicate, rate, case weights or effects read places
    missing from their declared [reads] list. Not reentrant. *)

val trace_writes : t -> (unit -> 'a) -> 'a * int list
(** [trace_writes m f] runs [f] while recording which places [f] writes
    through this marking (each uid once), and returns [f]'s result with
    the write set. Unlike the journal, the trace records {e attempted}
    writes: a write that leaves the value unchanged (which the journal
    skips) and the write that raises on a negative marking are both
    recorded. Not reentrant, but may be nested with {!trace_reads} to
    observe an effect's reads and writes in one evaluation. *)

val int_snapshot : t -> int array
val float_snapshot : t -> float array
(** Copies of the raw state, used for hashing markings during state-space
    exploration and for invariant checks. *)

val diff : before:t -> t -> (int * int) list
(** [diff ~before after] is the sparse int-place delta [after - before]:
    [(index, change)] pairs (marking-array indices, not uids) in
    ascending index order, omitting unchanged places. The primitive
    under the [analysis] library's incidence-matrix extraction. Raises
    [Invalid_argument] when the markings have different shapes. *)

val float_changed : before:t -> t -> bool
(** [float_changed ~before after]: some float place differs (exact
    comparison — extraction only needs "touched", not "by how much"). *)

val equal : t -> t -> bool
val hash : t -> int
