(** Places of a stochastic activity network.

    A place holds part of the model state (its {e marking}). Standard SAN
    places hold non-negative integers; following Möbius's {e extended
    places}, we also support float-valued places, which the ITUA model uses
    for the fractional attack-spread accumulators.

    Values of this module are descriptors (name + slot index); the actual
    state lives in {!Marking.t}. Places are created through
    {!Model.Builder} and are immutable. *)

type t
(** An int-valued place. *)

type fl
(** A float-valued (extended) place. *)

type any = P of t | F of fl
(** Either kind, used in activity dependency lists. *)

val name : t -> string
val fname : fl -> string

val index : t -> int
(** Slot in the marking's int array. *)

val findex : fl -> int
(** Slot in the marking's float array. *)

val uid : t -> int
val fuid : fl -> int
(** Unique id across both kinds, used for dependency indexing. *)

val any_uid : any -> int
val any_name : any -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_fl : Format.formatter -> fl -> unit

(**/**)

val make_int : name:string -> index:int -> uid:int -> t
val make_float : name:string -> index:int -> uid:int -> fl
(** Internal constructors used by {!Model.Builder}. *)
