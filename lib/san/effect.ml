type ctx = { time : float; stream : Prng.Stream.t option }

let stream_exn ctx =
  match ctx.stream with
  | Some s -> s
  | None ->
      failwith
        "Effect.stream_exn: effect requires randomness; this model cannot \
         be explored analytically"

let null_ctx = { time = 0.0; stream = None }

type rel = Eq | Ne | Lt | Le | Gt | Ge

type iexpr =
  | Int of int
  | Mark of Place.t
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Ind of cond

and cond =
  | Const of bool
  | Cmp of iexpr * rel * iexpr
  | All of cond list
  | Any of cond list
  | Not of cond

type fexpr =
  | Flt of float
  | FMark of Place.fl
  | OfInt of iexpr
  | FAdd of fexpr * fexpr
  | FSub of fexpr * fexpr
  | FMul of fexpr * fexpr
  | FDiv of fexpr * fexpr

type rexpr =
  | RConst of float
  | RExpr of fexpr
  | RIf of cond * rexpr * rexpr

type op =
  | Set of Place.t * iexpr
  | Inc of Place.t * iexpr
  | FSet of Place.fl * fexpr
  | FInc of Place.fl * fexpr

type opaque = { oname : string; run : ctx -> Marking.t -> unit }

type t =
  | Skip
  | Ops of op list
  | Seq of t list
  | If of cond * t * t
  | Pick of (cond * t) list
  | Opaque of opaque
  | Checked of { ir : t; reference : opaque }

(* Evaluation *)

let rel_holds rel a b =
  match rel with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let rec eval m = function
  | Int k -> k
  | Mark p -> Marking.get m p
  | Add (a, b) -> eval m a + eval m b
  | Sub (a, b) -> eval m a - eval m b
  | Mul (a, b) -> eval m a * eval m b
  | Ind c -> if holds m c then 1 else 0

and holds m = function
  | Const b -> b
  | Cmp (a, rel, b) -> rel_holds rel (eval m a) (eval m b)
  | All cs -> List.for_all (holds m) cs
  | Any cs -> List.exists (holds m) cs
  | Not c -> not (holds m c)

let rec feval m = function
  | Flt x -> x
  | FMark p -> Marking.fget m p
  | OfInt e -> float_of_int (eval m e)
  | FAdd (a, b) -> feval m a +. feval m b
  | FSub (a, b) -> feval m a -. feval m b
  | FMul (a, b) -> feval m a *. feval m b
  | FDiv (a, b) -> feval m a /. feval m b

let rec reval m = function
  | RConst x -> x
  | RExpr e -> feval m e
  | RIf (c, a, b) -> if holds m c then reval m a else reval m b

let apply_op m = function
  | Set (p, e) -> Marking.set m p (eval m e)
  | Inc (p, e) -> Marking.add m p (eval m e)
  | FSet (p, e) -> Marking.fset m p (feval m e)
  | FInc (p, e) -> Marking.fadd m p (feval m e)

let rec apply ctx eff m =
  match eff with
  | Skip -> ()
  | Ops ops -> List.iter (apply_op m) ops
  | Seq es -> List.iter (fun e -> apply ctx e m) es
  | If (c, a, b) -> if holds m c then apply ctx a m else apply ctx b m
  | Pick branches -> (
      let feasible =
        List.filter_map
          (fun (c, e) -> if holds m c then Some e else None)
          branches
      in
      match feasible with
      | [] -> failwith "Effect.apply: Pick with no feasible branch"
      | [ only ] -> apply ctx only m
      | choices ->
          apply ctx (Prng.Stream.choose_list (stream_exn ctx) choices) m)
  | Opaque o -> o.run ctx m
  | Checked { ir; _ } -> apply ctx ir m

exception Too_many_outcomes

let outcomes ?(ctx = null_ctx) ?(max_outcomes = 4096) eff m =
  let count = ref 1 in
  let rec go eff (w, m) =
    match eff with
    | Skip -> [ (w, m) ]
    | Ops ops ->
        List.iter (apply_op m) ops;
        [ (w, m) ]
    | Seq es ->
        List.fold_left
          (fun acc e -> List.concat_map (fun wm -> go e wm) acc)
          [ (w, m) ] es
    | If (c, a, b) -> if holds m c then go a (w, m) else go b (w, m)
    | Pick branches -> (
        let feasible =
          List.filter_map
            (fun (c, e) -> if holds m c then Some e else None)
            branches
        in
        match feasible with
        | [] -> failwith "Effect.outcomes: Pick with no feasible branch"
        | [ only ] -> go only (w, m)
        | choices ->
            let k = List.length choices in
            count := !count + k - 1;
            if !count > max_outcomes then raise Too_many_outcomes;
            let wk = w /. float_of_int k in
            List.concat_map
              (fun e -> go e (wk, Marking.copy m))
              (List.tl choices)
            @ go (List.hd choices) (wk, m))
    | Opaque o ->
        o.run ctx m;
        [ (w, m) ]
    | Checked { ir; _ } -> go ir (w, m)
  in
  go eff (1.0, m)

(* Static structure *)

let rec is_pure = function
  | Skip | Ops _ -> true
  | Seq es -> List.for_all is_pure es
  | If (_, a, b) -> is_pure a && is_pure b
  | Pick bs -> List.for_all (fun (_, e) -> is_pure e) bs
  | Opaque _ -> false
  | Checked _ -> true

module Uids = Set.Make (Int)

let rec iexpr_reads acc = function
  | Int _ -> acc
  | Mark p -> Uids.add (Place.uid p) acc
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> iexpr_reads (iexpr_reads acc a) b
  | Ind c -> cond_reads_acc acc c

and cond_reads_acc acc = function
  | Const _ -> acc
  | Cmp (a, _, b) -> iexpr_reads (iexpr_reads acc a) b
  | All cs | Any cs -> List.fold_left cond_reads_acc acc cs
  | Not c -> cond_reads_acc acc c

let rec fexpr_reads acc = function
  | Flt _ -> acc
  | FMark p -> Uids.add (Place.fuid p) acc
  | OfInt e -> iexpr_reads acc e
  | FAdd (a, b) | FSub (a, b) | FMul (a, b) | FDiv (a, b) ->
      fexpr_reads (fexpr_reads acc a) b

let cond_reads c = Uids.elements (cond_reads_acc Uids.empty c)

let rec rexpr_reads_acc acc = function
  | RConst _ -> acc
  | RExpr e -> fexpr_reads acc e
  | RIf (c, a, b) ->
      rexpr_reads_acc (rexpr_reads_acc (cond_reads_acc acc c) a) b

let rexpr_reads r = Uids.elements (rexpr_reads_acc Uids.empty r)

(* An increment reads its target (Marking.add = get + set), a set does
   not — matching what the dynamic read/write tracer observes. *)
let op_reads acc = function
  | Set (_, e) -> iexpr_reads acc e
  | Inc (p, e) -> iexpr_reads (Uids.add (Place.uid p) acc) e
  | FSet (_, e) -> fexpr_reads acc e
  | FInc (p, e) -> fexpr_reads (Uids.add (Place.fuid p) acc) e

let op_writes acc = function
  | Set (p, _) | Inc (p, _) -> Uids.add (Place.uid p) acc
  | FSet (p, _) | FInc (p, _) -> Uids.add (Place.fuid p) acc

exception Opaque_found

let static_sets per_op eff =
  let rec go acc = function
    | Skip -> acc
    | Ops ops -> List.fold_left per_op acc ops
    | Seq es -> List.fold_left go acc es
    | If (c, a, b) -> go (go (cond_reads_acc acc c) a) b
    | Pick bs ->
        List.fold_left (fun acc (c, e) -> go (cond_reads_acc acc c) e) acc bs
    | Opaque _ -> raise Opaque_found
    | Checked { ir; _ } -> go acc ir
  in
  match go Uids.empty eff with
  | s -> Some (Uids.elements s)
  | exception Opaque_found -> None

let static_reads eff = static_sets op_reads eff

let static_writes eff =
  (* write sets must not pick up guard reads *)
  let rec strip = function
    | (Skip | Ops _ | Opaque _) as e -> e
    | Seq es -> Seq (List.map strip es)
    | If (_, a, b) -> If (Const true, strip a, strip b)
    | Pick bs -> Pick (List.map (fun (_, e) -> (Const true, strip e)) bs)
    | Checked { ir; reference } -> Checked { ir = strip ir; reference }
  in
  static_sets (fun acc op -> op_writes acc op) (strip eff)

(* Compilation *)

type cop =
  | CAdd of Place.t * int
  | CSet of Place.t * int
  | CAddE of Place.t * iexpr
  | CSetE of Place.t * iexpr
  | CFSet of Place.fl * fexpr
  | CFAdd of Place.fl * fexpr

type pcond =
  | KConst of bool
  | KCmpc of Place.t * rel * int
  | KGen of cond

type prog =
  | PSkip
  | PAddc of (Place.t * int) array
  | POps of cop array
  | PSeq of prog array
  | PIf of pcond * prog * prog
  | PPick of (pcond * prog) array
  | PRun of opaque

let rec const_iexpr = function
  | Int k -> Some k
  | Mark _ -> None
  | Add (a, b) -> (
      match (const_iexpr a, const_iexpr b) with
      | Some x, Some y -> Some (x + y)
      | _ -> None)
  | Sub (a, b) -> (
      match (const_iexpr a, const_iexpr b) with
      | Some x, Some y -> Some (x - y)
      | _ -> None)
  | Mul (a, b) -> (
      match (const_iexpr a, const_iexpr b) with
      | Some x, Some y -> Some (x * y)
      | _ -> None)
  | Ind _ -> None

let compile_op op =
  match op with
  | Set (p, e) -> (
      match const_iexpr e with
      | Some k -> CSet (p, k)
      | None -> CSetE (p, e))
  | Inc (p, e) -> (
      match const_iexpr e with
      | Some k -> CAdd (p, k)
      | None -> CAddE (p, e))
  | FSet (p, e) -> CFSet (p, e)
  | FInc (p, e) -> CFAdd (p, e)

let compile_cond c =
  match c with
  | Const b -> KConst b
  | Cmp (Mark p, rel, e) -> (
      match const_iexpr e with Some k -> KCmpc (p, rel, k) | None -> KGen c)
  | _ -> KGen c

let rec compile eff =
  match eff with
  | Skip -> PSkip
  | Ops ops -> (
      let cops = List.map compile_op ops in
      let all_addc =
        List.for_all (function CAdd _ -> true | _ -> false) cops
      in
      if all_addc && cops <> [] then
        PAddc
          (Array.of_list
             (List.map (function CAdd (p, k) -> (p, k) | _ -> assert false)
                cops))
      else
        match cops with [] -> PSkip | _ -> POps (Array.of_list cops))
  | Seq es -> (
      let progs =
        List.concat_map
          (fun e ->
            match compile e with
            | PSkip -> []
            | PSeq ps -> Array.to_list ps
            | p -> [ p ])
          es
      in
      match progs with
      | [] -> PSkip
      | [ p ] -> p
      | ps -> PSeq (Array.of_list ps))
  | If (c, a, b) -> (
      match compile_cond c with
      | KConst true -> compile a
      | KConst false -> compile b
      | k -> PIf (k, compile a, compile b))
  | Pick bs ->
      PPick
        (Array.of_list (List.map (fun (c, e) -> (compile_cond c, compile e)) bs))
  | Opaque o -> PRun o
  | Checked { ir; _ } -> compile ir

let pcond_holds m = function
  | KConst b -> b
  | KCmpc (p, rel, k) -> rel_holds rel (Marking.get m p) k
  | KGen c -> holds m c

let run_cop m = function
  | CAdd (p, k) -> Marking.add m p k
  | CSet (p, k) -> Marking.set m p k
  | CAddE (p, e) -> Marking.add m p (eval m e)
  | CSetE (p, e) -> Marking.set m p (eval m e)
  | CFSet (p, e) -> Marking.fset m p (feval m e)
  | CFAdd (p, e) -> Marking.fadd m p (feval m e)

let rec run_prog ctx prog m =
  match prog with
  | PSkip -> ()
  | PAddc arcs ->
      for i = 0 to Array.length arcs - 1 do
        let p, k = Array.unsafe_get arcs i in
        Marking.add m p k
      done
  | POps cops ->
      for i = 0 to Array.length cops - 1 do
        run_cop m (Array.unsafe_get cops i)
      done
  | PSeq ps ->
      for i = 0 to Array.length ps - 1 do
        run_prog ctx (Array.unsafe_get ps i) m
      done
  | PIf (c, a, b) ->
      if pcond_holds m c then run_prog ctx a m else run_prog ctx b m
  | PPick branches -> (
      let feasible = ref [] in
      for i = Array.length branches - 1 downto 0 do
        let c, p = Array.unsafe_get branches i in
        if pcond_holds m c then feasible := p :: !feasible
      done;
      match !feasible with
      | [] -> failwith "Effect.run_prog: Pick with no feasible branch"
      | [ only ] -> run_prog ctx only m
      | choices ->
          run_prog ctx (Prng.Stream.choose_list (stream_exn ctx) choices) m)
  | PRun o -> o.run ctx m

(* Guards sit on the executor's re-evaluation hot path, so compile the
   condition tree to nested closures instead of interpreting it: small
   conjunctions/disjunctions become direct [&&]/[||] chains, leaf
   comparisons specialize per relation. *)
let rec cond_fn c =
  match c with
  | Const b -> fun _ -> b
  | Cmp (Mark p, rel, Int k) -> (
      match rel with
      | Eq -> fun m -> Marking.get m p = k
      | Ne -> fun m -> Marking.get m p <> k
      | Lt -> fun m -> Marking.get m p < k
      | Le -> fun m -> Marking.get m p <= k
      | Gt -> fun m -> Marking.get m p > k
      | Ge -> fun m -> Marking.get m p >= k)
  | Cmp (a, rel, b) -> fun m -> rel_holds rel (eval m a) (eval m b)
  | All cs -> (
      match List.map cond_fn cs with
      | [] -> fun _ -> true
      | [ f ] -> f
      | [ f; g ] -> fun m -> f m && g m
      | [ f; g; h ] -> fun m -> f m && g m && h m
      | [ f; g; h; i ] -> fun m -> f m && g m && h m && i m
      | fs -> fun m -> List.for_all (fun f -> f m) fs)
  | Any cs -> (
      match List.map cond_fn cs with
      | [] -> fun _ -> false
      | [ f ] -> f
      | [ f; g ] -> fun m -> f m || g m
      | [ f; g; h ] -> fun m -> f m || g m || h m
      | fs -> fun m -> List.exists (fun f -> f m) fs)
  | Not c ->
      let f = cond_fn c in
      fun m -> not (f m)

(* Rate expressions compile the same way: constants become constant
   closures (the builder then folds them into preallocated [Dist.t]
   records), branches reuse [cond_fn]. [rexpr_fn r m = reval m r]
   bit-for-bit: both arms perform the identical float operations in the
   identical order. *)
let rec rexpr_fn = function
  | RConst x -> fun _ -> x
  | RExpr e -> fun m -> feval m e
  | RIf (c, a, b) ->
      let c = cond_fn c and a = rexpr_fn a and b = rexpr_fn b in
      fun m -> if c m then a m else b m

(* Pretty-printing *)

let pp_rel ppf rel =
  Format.pp_print_string ppf
    (match rel with
    | Eq -> "="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let rec pp_iexpr ppf = function
  | Int k -> Format.pp_print_int ppf k
  | Mark p -> Format.pp_print_string ppf (Place.name p)
  | Add (a, b) -> Format.fprintf ppf "(%a + %a)" pp_iexpr a pp_iexpr b
  | Sub (a, b) -> Format.fprintf ppf "(%a - %a)" pp_iexpr a pp_iexpr b
  | Mul (a, b) -> Format.fprintf ppf "(%a * %a)" pp_iexpr a pp_iexpr b
  | Ind c -> Format.fprintf ppf "[%a]" pp_cond c

and pp_cond ppf = function
  | Const b -> Format.pp_print_bool ppf b
  | Cmp (a, rel, b) ->
      Format.fprintf ppf "%a %a %a" pp_iexpr a pp_rel rel pp_iexpr b
  | All cs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " && ")
           pp_cond)
        cs
  | Any cs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " || ")
           pp_cond)
        cs
  | Not c -> Format.fprintf ppf "!%a" pp_cond c

let rec pp_fexpr ppf = function
  | Flt x -> Format.fprintf ppf "%g" x
  | FMark p -> Format.pp_print_string ppf (Place.fname p)
  | OfInt e -> Format.fprintf ppf "float(%a)" pp_iexpr e
  | FAdd (a, b) -> Format.fprintf ppf "(%a +. %a)" pp_fexpr a pp_fexpr b
  | FSub (a, b) -> Format.fprintf ppf "(%a -. %a)" pp_fexpr a pp_fexpr b
  | FMul (a, b) -> Format.fprintf ppf "(%a *. %a)" pp_fexpr a pp_fexpr b
  | FDiv (a, b) -> Format.fprintf ppf "(%a /. %a)" pp_fexpr a pp_fexpr b

let rec pp_rexpr ppf = function
  | RConst x -> Format.fprintf ppf "%g" x
  | RExpr e -> pp_fexpr ppf e
  | RIf (c, a, b) ->
      Format.fprintf ppf "(if %a then %a else %a)" pp_cond c pp_rexpr a
        pp_rexpr b

let pp_op ppf = function
  | Set (p, e) -> Format.fprintf ppf "%s := %a" (Place.name p) pp_iexpr e
  | Inc (p, Int k) when k < 0 ->
      Format.fprintf ppf "%s -= %d" (Place.name p) (-k)
  | Inc (p, e) -> Format.fprintf ppf "%s += %a" (Place.name p) pp_iexpr e
  | FSet (p, e) -> Format.fprintf ppf "%s := %a" (Place.fname p) pp_fexpr e
  | FInc (p, e) -> Format.fprintf ppf "%s += %a" (Place.fname p) pp_fexpr e

let rec pp ppf = function
  | Skip -> Format.pp_print_string ppf "skip"
  | Ops ops ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
        pp_op ppf ops
  | Seq es ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
        pp ppf es
  | If (c, a, Skip) ->
      Format.fprintf ppf "@[<v 2>if %a {@ %a@]@ }" pp_cond c pp a
  | If (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if %a {@ %a@]@ @[<v 2>} else {@ %a@]@ }"
        pp_cond c pp a pp b
  | Pick bs ->
      Format.fprintf ppf "@[<v 2>pick {@ %a@]@ }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ | ")
           (fun ppf (c, e) ->
             Format.fprintf ppf "@[<hv 2>%a ->@ %a@]" pp_cond c pp e))
        bs
  | Opaque o -> Format.fprintf ppf "<opaque:%s>" o.oname
  | Checked { ir; reference } ->
      Format.fprintf ppf "@[<v 2>checked(%s) {@ %a@]@ }" reference.oname pp ir
