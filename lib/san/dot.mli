(** GraphViz export of a SAN's structure.

    Since gates are opaque OCaml functions, the exported edges are the
    declared dependency arcs ([reads] lists), which correspond to the
    input-arc structure of the net. Useful for eyeballing generated
    models, e.g. a small ITUA configuration. *)

val to_dot : ?firings:(string * int) list -> Format.formatter -> Model.t -> unit
(** Writes a [digraph]: places as ellipses (extended places as dashed
    ellipses), timed activities as hollow boxes, instantaneous activities
    as filled boxes, and an edge from each place to each activity that
    reads it.

    [firings] overlays simulation heat: per-activity firing totals (as
    [(activity name, count)] pairs, e.g. zipped from
    [Sim.Metrics.names]/[firings]). Activities render with a pen width
    growing logarithmically with their count (1–6pt) and a
    ["<n> firings"] tooltip; activities that never fired are thin and
    grey. Activities absent from the list are treated as never fired. *)

val write_file : ?firings:(string * int) list -> string -> Model.t -> unit
(** [write_file path model] writes {!to_dot} output to [path]. *)
