(** GraphViz export of a SAN's structure.

    Since gates are opaque OCaml functions, the exported edges are the
    declared dependency arcs ([reads] lists), which correspond to the
    input-arc structure of the net. Useful for eyeballing generated
    models, e.g. a small ITUA configuration. *)

val to_dot : Format.formatter -> Model.t -> unit
(** Writes a [digraph]: places as ellipses (extended places as dashed
    ellipses), timed activities as hollow boxes, instantaneous activities
    as filled boxes, and an edge from each place to each activity that
    reads it. *)

val write_file : string -> Model.t -> unit
(** [write_file path model] writes {!to_dot} output to [path]. *)
