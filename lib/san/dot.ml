let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ?firings ppf model =
  let heat =
    match firings with
    | None -> None
    | Some counts ->
        let tbl = Hashtbl.create 64 in
        List.iter (fun (name, c) -> Hashtbl.replace tbl name c) counts;
        let max_count = List.fold_left (fun m (_, c) -> Int.max m c) 0 counts in
        Some (tbl, Float.max 1.0 (log1p (float_of_int max_count)))
  in
  Format.fprintf ppf "digraph %S {@." (Model.name model);
  Format.fprintf ppf "  rankdir=LR;@.";
  Array.iter
    (fun p ->
      Format.fprintf ppf "  \"p_%s\" [label=\"%s\" shape=ellipse];@."
        (escape (Place.name p))
        (escape (Place.name p)))
    (Model.places model);
  Array.iter
    (fun p ->
      Format.fprintf ppf
        "  \"p_%s\" [label=\"%s\" shape=ellipse style=dashed];@."
        (escape (Place.fname p))
        (escape (Place.fname p)))
    (Model.float_places model);
  Array.iter
    (fun (a : Activity.t) ->
      let style =
        if Activity.is_instantaneous a then
          "shape=box style=filled fillcolor=black fontcolor=white height=0.1"
        else "shape=box"
      in
      let overlay =
        match heat with
        | None -> ""
        | Some (tbl, log_max) -> (
            match Hashtbl.find_opt tbl a.name with
            | None | Some 0 ->
                (* never fired: thin and greyed out *)
                " penwidth=0.5 color=gray60 tooltip=\"0 firings\""
            | Some c ->
                Printf.sprintf " penwidth=%.2f tooltip=\"%d firings\""
                  (1.0 +. (5.0 *. log1p (float_of_int c) /. log_max))
                  c)
      in
      Format.fprintf ppf "  \"a_%s\" [label=\"%s\" %s%s];@." (escape a.name)
        (escape a.name) style overlay;
      List.iter
        (fun pl ->
          Format.fprintf ppf "  \"p_%s\" -> \"a_%s\";@."
            (escape (Place.any_name pl))
            (escape a.name))
        a.reads)
    (Model.activities model);
  Format.fprintf ppf "}@."

let write_file ?firings path model =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try to_dot ?firings ppf model
   with e ->
     close_out_noerr oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc
