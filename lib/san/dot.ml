let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_dot ppf model =
  Format.fprintf ppf "digraph %S {@." (Model.name model);
  Format.fprintf ppf "  rankdir=LR;@.";
  Array.iter
    (fun p ->
      Format.fprintf ppf "  \"p_%s\" [label=\"%s\" shape=ellipse];@."
        (escape (Place.name p))
        (escape (Place.name p)))
    (Model.places model);
  Array.iter
    (fun p ->
      Format.fprintf ppf
        "  \"p_%s\" [label=\"%s\" shape=ellipse style=dashed];@."
        (escape (Place.fname p))
        (escape (Place.fname p)))
    (Model.float_places model);
  Array.iter
    (fun (a : Activity.t) ->
      let style =
        if Activity.is_instantaneous a then
          "shape=box style=filled fillcolor=black fontcolor=white height=0.1"
        else "shape=box"
      in
      Format.fprintf ppf "  \"a_%s\" [label=\"%s\" %s];@." (escape a.name)
        (escape a.name) style;
      List.iter
        (fun pl ->
          Format.fprintf ppf "  \"p_%s\" -> \"a_%s\";@."
            (escape (Place.any_name pl))
            (escape a.name))
        a.reads)
    (Model.activities model);
  Format.fprintf ppf "}@."

let write_file path model =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  (try to_dot ppf model
   with e ->
     close_out_noerr oc;
     raise e);
  Format.pp_print_flush ppf ();
  close_out oc
