type t = { name : string; index : int; uid : int }
type fl = { fl_name : string; fl_index : int; fl_uid : int }
type any = P of t | F of fl

let name p = p.name
let fname p = p.fl_name
let index p = p.index
let findex p = p.fl_index
let uid p = p.uid
let fuid p = p.fl_uid

let any_uid = function P p -> p.uid | F p -> p.fl_uid
let any_name = function P p -> p.name | F p -> p.fl_name

let equal a b = a.uid = b.uid
let compare a b = Int.compare a.uid b.uid
let pp ppf p = Format.pp_print_string ppf p.name
let pp_fl ppf p = Format.pp_print_string ppf p.fl_name

let make_int ~name ~index ~uid = { name; index; uid }
let make_float ~name ~index ~uid = { fl_name = name; fl_index = index; fl_uid = uid }
