type ctx = Effect.ctx = { time : float; stream : Prng.Stream.t option }

let stream_exn = Effect.stream_exn

type policy = Keep | Resample

type timing =
  | Instantaneous
  | Timed of { dist : Marking.t -> Dist.t; policy : policy }

type case = {
  case_weight : Marking.t -> float;
  effect : Effect.t;
  prog : Effect.prog;
}

type t = {
  id : int;
  name : string;
  timing : timing;
  enabled : Marking.t -> bool;
  guard : Effect.cond option;
  reads : Place.any list;
  cases : case array;
}

let make_case ?(weight = fun _ -> 1.0) effect =
  { case_weight = weight; effect; prog = Effect.compile effect }

let closure_case ?weight ~name run =
  make_case ?weight (Effect.Opaque { Effect.oname = name; run })

let is_instantaneous a =
  match a.timing with Instantaneous -> true | Timed _ -> false

let pure_ir a =
  Array.for_all (fun c -> Effect.is_pure c.effect) a.cases

let pp ppf a =
  Format.fprintf ppf "%s(%s)" a.name
    (if is_instantaneous a then "inst" else "timed")
