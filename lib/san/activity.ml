type ctx = { time : float; stream : Prng.Stream.t option }

let stream_exn ctx =
  match ctx.stream with
  | Some s -> s
  | None ->
      failwith
        "Activity.stream_exn: effect requires randomness; this model cannot \
         be explored analytically"

type policy = Keep | Resample

type timing =
  | Instantaneous
  | Timed of { dist : Marking.t -> Dist.t; policy : policy }

type case = {
  case_weight : Marking.t -> float;
  effect : ctx -> Marking.t -> unit;
}

type t = {
  id : int;
  name : string;
  timing : timing;
  enabled : Marking.t -> bool;
  reads : Place.any list;
  cases : case array;
}

let is_instantaneous a =
  match a.timing with Instantaneous -> true | Timed _ -> false

let pp ppf a =
  Format.fprintf ppf "%s(%s)" a.name
    (if is_instantaneous a then "inst" else "timed")
