type ctx = Effect.ctx = { time : float; stream : Prng.Stream.t option }

let stream_exn = Effect.stream_exn

type policy = Keep | Resample

type dist_ir =
  | DExp of Effect.rexpr
  | DDet of Effect.rexpr
  | DUniform of Effect.rexpr * Effect.rexpr
  | DErlang of int * Effect.rexpr
  | DGamma of Effect.rexpr * Effect.rexpr
  | DWeibull of Effect.rexpr * Effect.rexpr
  | DLognormal of Effect.rexpr * Effect.rexpr
  | DNormal of Effect.rexpr * Effect.rexpr

(* All-constant parameters fold to one preallocated [Dist.t]; otherwise
   each parameter compiles via [Effect.rexpr_fn] and a fresh record is
   built per evaluation, exactly like the historical closures did. *)
let dist_fn ir =
  let open Effect in
  let constant =
    match ir with
    | DExp (RConst rate) -> Some (Dist.Exponential { rate })
    | DDet (RConst value) -> Some (Dist.Deterministic { value })
    | DUniform (RConst lo, RConst hi) -> Some (Dist.Uniform { lo; hi })
    | DErlang (k, RConst rate) -> Some (Dist.Erlang { k; rate })
    | DGamma (RConst shape, RConst rate) -> Some (Dist.Gamma { shape; rate })
    | DWeibull (RConst shape, RConst scale) ->
        Some (Dist.Weibull { shape; scale })
    | DLognormal (RConst mu, RConst sigma) ->
        Some (Dist.Lognormal { mu; sigma })
    | DNormal (RConst mean, RConst stddev) ->
        Some (Dist.Normal { mean; stddev })
    | _ -> None
  in
  match constant with
  | Some d -> fun _ -> d
  | None -> (
      match ir with
      | DExp r ->
          let r = rexpr_fn r in
          fun m -> Dist.Exponential { rate = r m }
      | DDet v ->
          let v = rexpr_fn v in
          fun m -> Dist.Deterministic { value = v m }
      | DUniform (lo, hi) ->
          let lo = rexpr_fn lo and hi = rexpr_fn hi in
          fun m -> Dist.Uniform { lo = lo m; hi = hi m }
      | DErlang (k, r) ->
          let r = rexpr_fn r in
          fun m -> Dist.Erlang { k; rate = r m }
      | DGamma (shape, rate) ->
          let shape = rexpr_fn shape and rate = rexpr_fn rate in
          fun m -> Dist.Gamma { shape = shape m; rate = rate m }
      | DWeibull (shape, scale) ->
          let shape = rexpr_fn shape and scale = rexpr_fn scale in
          fun m -> Dist.Weibull { shape = shape m; scale = scale m }
      | DLognormal (mu, sigma) ->
          let mu = rexpr_fn mu and sigma = rexpr_fn sigma in
          fun m -> Dist.Lognormal { mu = mu m; sigma = sigma m }
      | DNormal (mean, stddev) ->
          let mean = rexpr_fn mean and stddev = rexpr_fn stddev in
          fun m -> Dist.Normal { mean = mean m; stddev = stddev m })

let dist_ir_reads ir =
  let module Uids = Set.Make (Int) in
  let add acc r = List.fold_left (fun s u -> Uids.add u s) acc (Effect.rexpr_reads r) in
  let acc =
    match ir with
    | DExp r | DDet r | DErlang (_, r) -> add Uids.empty r
    | DUniform (a, b)
    | DGamma (a, b)
    | DWeibull (a, b)
    | DLognormal (a, b)
    | DNormal (a, b) ->
        add (add Uids.empty a) b
  in
  Uids.elements acc

type timing =
  | Instantaneous
  | Timed of {
      dist : Marking.t -> Dist.t;
      policy : policy;
      dist_ir : dist_ir option;
    }

type case = {
  case_weight : Marking.t -> float;
  weight_ir : Effect.rexpr option;
  effect : Effect.t;
  prog : Effect.prog;
}

type t = {
  id : int;
  name : string;
  timing : timing;
  enabled : Marking.t -> bool;
  guard : Effect.cond option;
  reads : Place.any list;
  cases : case array;
}

let make_case ?weight ?weight_ir effect =
  let case_weight, weight_ir =
    match (weight, weight_ir) with
    | Some w, ir -> (w, ir)
    | None, Some r -> (Effect.rexpr_fn r, Some r)
    | None, None -> ((fun _ -> 1.0), Some (Effect.RConst 1.0))
  in
  { case_weight; weight_ir; effect; prog = Effect.compile effect }

let closure_case ?weight ~name run =
  make_case ?weight (Effect.Opaque { Effect.oname = name; run })

let is_instantaneous a =
  match a.timing with Instantaneous -> true | Timed _ -> false

let pure_ir a =
  Array.for_all (fun c -> Effect.is_pure c.effect) a.cases

let pp ppf a =
  Format.fprintf ppf "%s(%s)" a.name
    (if is_instantaneous a then "inst" else "timed")
