(** Activities of a stochastic activity network.

    An activity fires when its enabling predicate (the conjunction of its
    input-gate predicates in SAN terms) holds. {e Timed} activities fire
    after a random delay drawn from a marking-dependent distribution;
    {e instantaneous} activities fire in zero time and have priority over
    all timed activities. An activity completes through one of its
    {e cases}, chosen with marking-dependent weights; the case's effect
    function (input + output gate functions) transforms the marking.

    Semantics implemented by the executor, stated here because the model
    author must know them:

    {ul
    {- An enabled timed activity keeps its sampled completion time while it
       remains enabled, unless its reactivation {!policy} says otherwise.}
    {- [Resample] re-draws the completion time whenever a place in
       {!reads} changes while the activity stays enabled. For exponential
       distributions this yields exact competing-risk semantics under
       marking-dependent rates, and is the right default for models (like
       ITUA) whose rates depend on the marking.}
    {- An activity disabled by a marking change is aborted; if re-enabled
       later it samples a fresh delay (no age memory).}
    {- When several instantaneous activities are enabled, the executor
       picks one uniformly at random, matching the "equally likely to fire
       first" convention used throughout the ITUA paper.}} *)

type ctx = { time : float; stream : Prng.Stream.t option }
(** Firing context passed to effect functions: current simulation time and,
    in simulation mode, the replication's random stream. Analytical
    (CTMC) exploration passes [None]; an effect that needs randomness must
    obtain it via {!stream_exn}, which makes non-enumerable models fail
    loudly rather than silently linearize. *)

val stream_exn : ctx -> Prng.Stream.t
(** The context's random stream; raises [Failure] in analytical mode. *)

type policy =
  | Keep  (** hold the sampled time while continuously enabled *)
  | Resample  (** re-draw whenever a dependency changes (see above) *)

type timing =
  | Instantaneous
  | Timed of { dist : Marking.t -> Dist.t; policy : policy }

type case = {
  case_weight : Marking.t -> float;
      (** Non-negative, marking-dependent; normalized over the activity's
          cases at firing time. *)
  effect : ctx -> Marking.t -> unit;
}

type t = {
  id : int;
  name : string;
  timing : timing;
  enabled : Marking.t -> bool;
  reads : Place.any list;
      (** Every place whose marking can influence [enabled], the firing
          distribution, or the case weights. Omissions make the executor
          miss wake-ups; the model checker ([Analysis.Check], diagnostic
          A001) detects them. *)
  cases : case array;
}

val is_instantaneous : t -> bool
val pp : Format.formatter -> t -> unit
