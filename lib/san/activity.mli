(** Activities of a stochastic activity network.

    An activity fires when its enabling predicate (the conjunction of its
    input-gate predicates in SAN terms) holds. {e Timed} activities fire
    after a random delay drawn from a marking-dependent distribution;
    {e instantaneous} activities fire in zero time and have priority over
    all timed activities. An activity completes through one of its
    {e cases}, chosen with marking-dependent weights; the case's effect —
    a declarative {!Effect.t} term (input + output gate functions in SAN
    terms) — transforms the marking.

    Semantics implemented by the executor, stated here because the model
    author must know them:

    {ul
    {- An enabled timed activity keeps its sampled completion time while it
       remains enabled, unless its reactivation {!policy} says otherwise.}
    {- [Resample] re-draws the completion time whenever a place in
       {!reads} changes while the activity stays enabled. For exponential
       distributions this yields exact competing-risk semantics under
       marking-dependent rates, and is the right default for models (like
       ITUA) whose rates depend on the marking.}
    {- An activity disabled by a marking change is aborted; if re-enabled
       later it samples a fresh delay (no age memory).}
    {- When several instantaneous activities are enabled, the executor
       picks one uniformly at random, matching the "equally likely to fire
       first" convention used throughout the ITUA paper.}} *)

type ctx = Effect.ctx = { time : float; stream : Prng.Stream.t option }
(** Re-export of {!Effect.ctx} (historical home of the type). *)

val stream_exn : ctx -> Prng.Stream.t
(** The context's random stream; raises [Failure] in analytical mode. *)

type policy =
  | Keep  (** hold the sampled time while continuously enabled *)
  | Resample  (** re-draw whenever a dependency changes (see above) *)

(** Declarative timing distribution: a {!Dist.t} shape whose parameters
    are {!Effect.rexpr} rate expressions. This is the serializable
    counterpart of the [Marking.t -> Dist.t] closure; {!dist_fn}
    compiles it back to one (folding all-constant parameters into a
    single preallocated distribution record). *)
type dist_ir =
  | DExp of Effect.rexpr  (** exponential, by rate *)
  | DDet of Effect.rexpr  (** deterministic delay *)
  | DUniform of Effect.rexpr * Effect.rexpr  (** lo, hi *)
  | DErlang of int * Effect.rexpr  (** k stages, per-stage rate *)
  | DGamma of Effect.rexpr * Effect.rexpr  (** shape, rate *)
  | DWeibull of Effect.rexpr * Effect.rexpr  (** shape, scale *)
  | DLognormal of Effect.rexpr * Effect.rexpr  (** mu, sigma *)
  | DNormal of Effect.rexpr * Effect.rexpr  (** mean, stddev *)

val dist_fn : dist_ir -> Marking.t -> Dist.t
(** Compile a declarative distribution to the closure form the executor
    samples from. Evaluates each parameter with {!Effect.rexpr_fn}, so
    a ported closure rate yields bit-identical samples. *)

val dist_ir_reads : dist_ir -> int list
(** Sorted uids of places the distribution's parameters can read. *)

type timing =
  | Instantaneous
  | Timed of {
      dist : Marking.t -> Dist.t;
      policy : policy;
      dist_ir : dist_ir option;
          (** When present, the declarative form of [dist] (builders
              derive [dist] from it via {!dist_fn}). [None] marks a
              closure-only distribution, which serialization rejects. *)
    }

type case = {
  case_weight : Marking.t -> float;
      (** Non-negative, marking-dependent; normalized over the activity's
          cases at firing time. *)
  weight_ir : Effect.rexpr option;
      (** When present, the declarative form of [case_weight] (builders
          derive [case_weight] from it). [None] marks a closure-only
          weight, which serialization rejects. *)
  effect : Effect.t;
  prog : Effect.prog;
      (** [effect] compiled once at construction time; the executor's hot
          path runs this instead of interpreting [effect]. Keep the two
          in sync by building cases with {!make_case}. *)
}

type t = {
  id : int;
  name : string;
  timing : timing;
  enabled : Marking.t -> bool;
  guard : Effect.cond option;
      (** When present, the declarative form of [enabled] (the two must
          agree on every marking; builders derive [enabled] from the
          guard). [None] marks a closure-only enabling predicate, which
          structural analysis can only observe. *)
  reads : Place.any list;
      (** Every place whose marking can influence [enabled], the firing
          distribution, or the case weights. Omissions make the executor
          miss wake-ups; the model checker ([Analysis.Check], diagnostics
          A001/A013) detects them. *)
  cases : case array;
}

val make_case :
  ?weight:(Marking.t -> float) -> ?weight_ir:Effect.rexpr -> Effect.t -> case
(** Build a case, compiling the effect. With [weight_ir] (and no
    [weight]) the closure weight is derived from it; with neither, the
    weight is the constant 1.0 (recorded declaratively). An explicit
    [weight] closure wins and leaves [weight_ir] as passed (default
    [None], i.e. non-portable). *)

val closure_case :
  ?weight:(Marking.t -> float) -> name:string -> (ctx -> Marking.t -> unit) -> case
(** Escape hatch: a case whose effect is an {!Effect.Opaque} closure. *)

val is_instantaneous : t -> bool

val pure_ir : t -> bool
(** Every case effect is closure-free IR (see {!Effect.is_pure}). *)

val pp : Format.formatter -> t -> unit
