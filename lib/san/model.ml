type t = {
  name : string;
  int_places : Place.t array;
  float_places : Place.fl array;
  initial_ints : int array;
  initial_floats : float array;
  activities : Activity.t array;
  by_place_name : (string, Place.any) Hashtbl.t;
  by_activity_name : (string, Activity.t) Hashtbl.t;
  dependents : int array array;  (* place uid -> activity ids *)
}

module Builder = struct
  type _model = t

  type t = {
    bname : string;
    mutable ints : (Place.t * int) list;  (* reversed *)
    mutable floats : (Place.fl * float) list;
    mutable acts : Activity.t list;
    names : (string, unit) Hashtbl.t;
    act_names : (string, unit) Hashtbl.t;
    mutable next_uid : int;
    mutable built : bool;
  }

  let create bname =
    {
      bname;
      ints = [];
      floats = [];
      acts = [];
      names = Hashtbl.create 64;
      act_names = Hashtbl.create 64;
      next_uid = 0;
      built = false;
    }

  let check_fresh b what tbl name =
    if b.built then invalid_arg "Model.Builder: builder already built";
    if Hashtbl.mem tbl name then
      invalid_arg (Printf.sprintf "Model.Builder: duplicate %s %S" what name);
    Hashtbl.add tbl name ()

  let int_place b ?(init = 0) name =
    check_fresh b "place" b.names name;
    if init < 0 then
      invalid_arg
        (Printf.sprintf "Model.Builder: place %S initial marking < 0" name);
    let p = Place.make_int ~name ~index:(List.length b.ints) ~uid:b.next_uid in
    b.next_uid <- b.next_uid + 1;
    b.ints <- (p, init) :: b.ints;
    p

  let float_place b ?(init = 0.0) name =
    check_fresh b "place" b.names name;
    let p =
      Place.make_float ~name ~index:(List.length b.floats) ~uid:b.next_uid
    in
    b.next_uid <- b.next_uid + 1;
    b.floats <- (p, init) :: b.floats;
    p

  let add_activity b ~name ~timing ~enabled ~guard ~reads cases =
    check_fresh b "activity" b.act_names name;
    if cases = [] then
      invalid_arg
        (Printf.sprintf "Model.Builder: activity %S needs at least one case"
           name);
    let act =
      {
        Activity.id = List.length b.acts;
        name;
        timing;
        enabled;
        guard;
        reads;
        cases = Array.of_list cases;
      }
    in
    b.acts <- act :: b.acts

  let activity b ~name ~timing ~enabled ~reads cases =
    add_activity b ~name ~timing ~enabled ~guard:None ~reads cases

  let timed b ~name ?(policy = Activity.Resample) ~dist ~enabled ~reads cases
      =
    activity b ~name
      ~timing:(Activity.Timed { dist; policy; dist_ir = None })
      ~enabled ~reads cases

  let opaque_case ?weight ~act_name run =
    Activity.closure_case ?weight ~name:(act_name ^ ".effect") run

  let one_case ~act_name effect = [ opaque_case ~act_name effect ]

  let timed_exp b ~name ?policy ~rate ~enabled ~reads effect =
    timed b ~name ?policy
      ~dist:(fun m -> Dist.Exponential { rate = rate m })
      ~enabled ~reads
      (one_case ~act_name:name effect)

  let check_weight name w =
    if w < 0.0 then
      invalid_arg
        (Printf.sprintf
           "Model.Builder: activity %S has negative case probability" name)

  let timed_exp_cases b ~name ?policy ~rate ~enabled ~reads cases =
    let cases =
      List.map
        (fun (w, effect) ->
          check_weight name w;
          opaque_case ~weight:(fun _ -> w) ~act_name:name effect)
        cases
    in
    timed b ~name ?policy
      ~dist:(fun m -> Dist.Exponential { rate = rate m })
      ~enabled ~reads cases

  let instantaneous b ~name ~enabled ~reads effect =
    activity b ~name ~timing:Activity.Instantaneous ~enabled ~reads
      (one_case ~act_name:name effect)

  (* IR entry points: the enabling predicate is a declarative guard
     (compiled to the [enabled] closure) and effects are [Effect.t]
     terms, so structural analysis reads the activity exactly. *)

  let activity_ir b ~name ~timing ~guard ~reads cases =
    add_activity b ~name ~timing ~enabled:(Effect.cond_fn guard)
      ~guard:(Some guard) ~reads cases

  let timed_ir b ~name ?(policy = Activity.Resample) ~dist ~guard ~reads cases
      =
    activity_ir b ~name
      ~timing:(Activity.Timed { dist; policy; dist_ir = None })
      ~guard ~reads cases

  let timed_exp_ir b ~name ?policy ~rate ~guard ~reads effect =
    timed_ir b ~name ?policy
      ~dist:(fun m -> Dist.Exponential { rate = rate m })
      ~guard ~reads
      [ Activity.make_case effect ]

  let timed_exp_cases_ir b ~name ?policy ~rate ~guard ~reads cases =
    let cases =
      List.map
        (fun (w, effect) ->
          check_weight name w;
          Activity.make_case ~weight:(fun _ -> w) effect)
        cases
    in
    timed_ir b ~name ?policy
      ~dist:(fun m -> Dist.Exponential { rate = rate m })
      ~guard ~reads cases

  (* Fully-declarative entry points: the timing distribution (and case
     weights) are data, so the activity serializes. The derived
     closures evaluate the same float operations in the same order as a
     hand-written closure, keeping trajectories bit-identical when a
     model is ported (or reloaded from disk). *)

  let timed_dist_ir b ~name ?(policy = Activity.Resample) ~dist ~guard ~reads
      cases =
    activity_ir b ~name
      ~timing:
        (Activity.Timed
           { dist = Activity.dist_fn dist; policy; dist_ir = Some dist })
      ~guard ~reads cases

  let timed_exp_rate_ir b ~name ?policy ~rate ~guard ~reads effect =
    timed_dist_ir b ~name ?policy ~dist:(Activity.DExp rate) ~guard ~reads
      [ Activity.make_case effect ]

  let timed_exp_cases_rate_ir b ~name ?policy ~rate ~guard ~reads cases =
    let cases =
      List.map
        (fun (w, effect) ->
          check_weight name w;
          Activity.make_case ~weight_ir:(Effect.RConst w) effect)
        cases
    in
    timed_dist_ir b ~name ?policy ~dist:(Activity.DExp rate) ~guard ~reads
      cases

  let instantaneous_ir b ~name ~guard ~reads effect =
    activity_ir b ~name ~timing:Activity.Instantaneous ~guard ~reads
      [ Activity.make_case effect ]

  let build b =
    if b.built then invalid_arg "Model.Builder.build: already built";
    b.built <- true;
    let ints = Array.of_list (List.rev b.ints) in
    let floats = Array.of_list (List.rev b.floats) in
    let activities = Array.of_list (List.rev b.acts) in
    let by_place_name = Hashtbl.create (Array.length ints) in
    Array.iter
      (fun (p, _) -> Hashtbl.replace by_place_name (Place.name p) (Place.P p))
      ints;
    Array.iter
      (fun (p, _) -> Hashtbl.replace by_place_name (Place.fname p) (Place.F p))
      floats;
    let by_activity_name = Hashtbl.create (Array.length activities) in
    Array.iter
      (fun (a : Activity.t) -> Hashtbl.replace by_activity_name a.name a)
      activities;
    let n_uids = b.next_uid in
    let deps = Array.make n_uids [] in
    Array.iter
      (fun (a : Activity.t) ->
        List.iter
          (fun pl ->
            let uid = Place.any_uid pl in
            deps.(uid) <- a.Activity.id :: deps.(uid))
          a.Activity.reads)
      activities;
    {
      name = b.bname;
      int_places = Array.map fst ints;
      float_places = Array.map fst floats;
      initial_ints = Array.map snd ints;
      initial_floats = Array.map snd floats;
      activities;
      by_place_name;
      by_activity_name;
      dependents = Array.map (fun l -> Array.of_list (List.rev l)) deps;
    }
end

let name m = m.name
let places m = m.int_places
let float_places m = m.float_places
let activities m = m.activities
let n_places m = Array.length m.int_places + Array.length m.float_places

let find_place_opt m s =
  match Hashtbl.find_opt m.by_place_name s with
  | Some (Place.P p) -> Some p
  | Some (Place.F _) | None -> None

let find_float_place_opt m s =
  match Hashtbl.find_opt m.by_place_name s with
  | Some (Place.F p) -> Some p
  | Some (Place.P _) | None -> None

let find_place m s =
  match find_place_opt m s with Some p -> p | None -> raise Not_found

let find_activity m s =
  match Hashtbl.find_opt m.by_activity_name s with
  | Some a -> a
  | None -> raise Not_found

let initial_marking m =
  let mk =
    Marking.create
      ~ints:(Array.length m.int_places)
      ~floats:(Array.length m.float_places)
  in
  Array.iteri (fun i p -> Marking.set mk p m.initial_ints.(i)) m.int_places;
  Array.iteri (fun i p -> Marking.fset mk p m.initial_floats.(i)) m.float_places;
  Marking.clear_journal mk;
  mk

let dependents m uid =
  if uid < 0 || uid >= Array.length m.dependents then []
  else
    Array.to_list (Array.map (fun id -> m.activities.(id)) m.dependents.(uid))

let pure_ir m = Array.for_all Activity.pure_ir m.activities

let all_exponential m =
  let mk = initial_marking m in
  Array.for_all
    (fun (a : Activity.t) ->
      match a.timing with
      | Activity.Instantaneous -> true
      | Activity.Timed { dist; _ } -> Dist.is_exponential (dist mk))
    m.activities

let pp_summary ppf m =
  let inst =
    Array.fold_left
      (fun acc a -> if Activity.is_instantaneous a then acc + 1 else acc)
      0 m.activities
  in
  Format.fprintf ppf
    "model %S: %d int places, %d float places, %d activities (%d inst.)"
    m.name
    (Array.length m.int_places)
    (Array.length m.float_places)
    (Array.length m.activities)
    inst
