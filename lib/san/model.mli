(** SAN models and their builder.

    A model is an immutable collection of places and activities together
    with an initial marking. Models are built once through {!Builder} and
    can then be simulated ({!Sim.Executor} in the [sim] library) or
    converted to a CTMC ([ctmc] library) any number of times, including
    concurrently from several domains: nothing in a built model is
    mutated by execution. *)

type t

(** Imperative model construction. *)
module Builder : sig
  type model := t
  type t

  val create : string -> t
  (** [create name] starts an empty model. *)

  val int_place : t -> ?init:int -> string -> Place.t
  (** Declares an int place with initial marking [init] (default 0). Place
      names must be unique within the model; [Invalid_argument]
      otherwise. *)

  val float_place : t -> ?init:float -> string -> Place.fl

  val activity :
    t ->
    name:string ->
    timing:Activity.timing ->
    enabled:(Marking.t -> bool) ->
    reads:Place.any list ->
    Activity.case list ->
    unit
  (** Declares an activity. At least one case is required; activity names
      must be unique. *)

  val timed :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    dist:(Marking.t -> Dist.t) ->
    enabled:(Marking.t -> bool) ->
    reads:Place.any list ->
    Activity.case list ->
    unit
  (** Timed activity; [policy] defaults to {!Activity.Resample} (see
      {!Activity.policy} for why that is the safe default under
      marking-dependent rates). *)

  val timed_exp :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:(Marking.t -> float) ->
    enabled:(Marking.t -> bool) ->
    reads:Place.any list ->
    (Activity.ctx -> Marking.t -> unit) ->
    unit
  (** Single-case exponential activity, the most common shape. *)

  val timed_exp_cases :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:(Marking.t -> float) ->
    enabled:(Marking.t -> bool) ->
    reads:Place.any list ->
    (float * (Activity.ctx -> Marking.t -> unit)) list ->
    unit
  (** Exponential activity with constant-probability cases, e.g. the
      three-way attack-class split of [attack_host]. *)

  val instantaneous :
    t ->
    name:string ->
    enabled:(Marking.t -> bool) ->
    reads:Place.any list ->
    (Activity.ctx -> Marking.t -> unit) ->
    unit
  (** Single-case instantaneous activity. *)

  (** {2 Declarative (IR) activities}

      These variants take an {!Effect.cond} guard instead of an enabling
      closure (the closure is compiled from the guard) and {!Effect.t}
      effects, making the activity fully readable by structural
      analysis. Prefer them; the closure entry points above remain as
      the escape hatch (their effects are wrapped in {!Effect.Opaque}). *)

  val activity_ir :
    t ->
    name:string ->
    timing:Activity.timing ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Activity.case list ->
    unit

  val timed_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    dist:(Marking.t -> Dist.t) ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Activity.case list ->
    unit

  val timed_exp_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:(Marking.t -> float) ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Effect.t ->
    unit

  val timed_exp_cases_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:(Marking.t -> float) ->
    guard:Effect.cond ->
    reads:Place.any list ->
    (float * Effect.t) list ->
    unit

  val instantaneous_ir :
    t ->
    name:string ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Effect.t ->
    unit

  (** {2 Fully-declarative activities}

      These variants additionally take the timing distribution as
      {!Activity.dist_ir} data (and case weights as {!Effect.rexpr}),
      so the whole activity — guard, timing, weights, effects — is
      serializable ([Serial], [itua_sim save]). The derived sampling
      closures are bit-identical to hand-written ones. *)

  val timed_dist_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    dist:Activity.dist_ir ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Activity.case list ->
    unit

  val timed_exp_rate_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:Effect.rexpr ->
    guard:Effect.cond ->
    reads:Place.any list ->
    Effect.t ->
    unit
  (** Single-case exponential activity with a declarative rate. *)

  val timed_exp_cases_rate_ir :
    t ->
    name:string ->
    ?policy:Activity.policy ->
    rate:Effect.rexpr ->
    guard:Effect.cond ->
    reads:Place.any list ->
    (float * Effect.t) list ->
    unit
  (** Exponential activity with constant-probability cases; each weight
      is recorded declaratively as [Effect.RConst]. *)

  val build : t -> model
  (** Freezes the builder. The builder must not be reused afterwards. *)
end

val name : t -> string
val places : t -> Place.t array
val float_places : t -> Place.fl array
val activities : t -> Activity.t array

val n_places : t -> int
(** Total number of places (both kinds). *)

val find_place : t -> string -> Place.t
(** Lookup by exact name; raises [Not_found]. *)

val find_place_opt : t -> string -> Place.t option
val find_float_place_opt : t -> string -> Place.fl option

val find_activity : t -> string -> Activity.t
(** Lookup by exact name; raises [Not_found]. *)

val initial_marking : t -> Marking.t
(** A fresh marking set to the model's initial state. *)

val dependents : t -> int -> Activity.t list
(** [dependents model uid] lists the activities that declared the place
    with uid [uid] in their [reads]. *)

val pure_ir : t -> bool
(** Every case effect of every activity is closure-free IR, i.e. the
    incidence structure of the whole model is exactly readable. *)

val all_exponential : t -> bool
(** True when every timed activity's distribution is exponential in every
    reachable marking the caller has checked — practically: evaluated on
    the initial marking. The CTMC generator re-checks per state. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line summary: name, place count, activity count. *)
