(** Declarative effect IR.

    Activity effects were historically opaque OCaml closures
    [ctx -> Marking.t -> unit]. Closures can only be {e observed}: the
    analysis layer had to fire every (activity, case) pair on copies of
    every visited marking and degrade to sampled fallbacks whenever an
    effect drew randomness. This module replaces them with a small
    declarative IR — integer/float expressions over the marking,
    set/increment ops, marking-guarded branches, and uniform picks — that

    {ul
    {- the executor compiles to flat arc/delta arrays applied without
       closure dispatch ({!compile}, {!run_prog});}
    {- structural analysis reads {e exactly} (symbolic incidence, no
       marking enumeration, no sampled modes);}
    {- analytical exploration enumerates without randomness: a [Pick]
       forks into its feasible branches with uniform weights
       ({!outcomes}).}}

    Closures remain available as an explicit {!Opaque} escape hatch (the
    model keeps simulating, but analysis falls back to observation for
    that effect), and [Checked] pairs an IR term with a reference closure
    so the analysis layer can replay both and report divergence (A016). *)

type ctx = { time : float; stream : Prng.Stream.t option }
(** Firing context: current simulation time and, in simulation mode, the
    replication's random stream. Analytical (CTMC) exploration passes
    [None]; an effect that needs randomness must obtain it via
    {!stream_exn}, which makes non-enumerable models fail loudly rather
    than silently linearize. *)

val stream_exn : ctx -> Prng.Stream.t
(** The context's random stream; raises [Failure] in analytical mode. *)

val null_ctx : ctx
(** [{ time = 0.; stream = None }] — for analytical evaluation. *)

type rel = Eq | Ne | Lt | Le | Gt | Ge

type iexpr =
  | Int of int
  | Mark of Place.t  (** current marking of an int place *)
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Ind of cond  (** 1 when the condition holds, else 0 *)

and cond =
  | Const of bool
  | Cmp of iexpr * rel * iexpr
  | All of cond list  (** conjunction; [All []] is true *)
  | Any of cond list  (** disjunction; [Any []] is false *)
  | Not of cond

type fexpr =
  | Flt of float
  | FMark of Place.fl
  | OfInt of iexpr
  | FAdd of fexpr * fexpr
  | FSub of fexpr * fexpr
  | FMul of fexpr * fexpr
  | FDiv of fexpr * fexpr

type rexpr =
  | RConst of float  (** a constant rate/weight/parameter *)
  | RExpr of fexpr  (** a marking-dependent expression *)
  | RIf of cond * rexpr * rexpr
      (** marking-dependent branch. Unlike an arithmetic encoding
          ([base * (1 + (mult-1)*ind)]), a branch keeps the exact float
          of each arm, so closure rates of the form
          [if c then base *. mult else base] port bit-identically. *)
(** Declarative rate expression: the marking-dependent scalar feeding a
    timing distribution's parameter or a case weight. This is the
    serializable counterpart of the historical [Marking.t -> float]
    closures. *)

type op =
  | Set of Place.t * iexpr  (** [p := e]; raises if the value is negative *)
  | Inc of Place.t * iexpr  (** [p := p + e]; reads and writes [p] *)
  | FSet of Place.fl * fexpr
  | FInc of Place.fl * fexpr

type opaque = { oname : string; run : ctx -> Marking.t -> unit }
(** Escape hatch: a named closure. Analysis treats it as unobservable
    and degrades to observation for the enclosing effect. *)

type t =
  | Skip
  | Ops of op list  (** executed in order (journal order matters) *)
  | Seq of t list
  | If of cond * t * t
  | Pick of (cond * t) list
      (** Uniform choice among the branches whose condition holds in the
          current marking. No feasible branch is an error. Exactly one
          feasible branch short-circuits without consuming randomness
          (matching the historical [choose_list] idiom); otherwise one
          random draw selects uniformly among the feasible branches. *)
  | Opaque of opaque
  | Checked of { ir : t; reference : opaque }
      (** Semantics of [ir]; [reference] is a closure the analysis layer
          replays differentially against [ir] (diagnostic A016). The
          executor runs only [ir]. *)

(** {1 Evaluation} *)

val eval : Marking.t -> iexpr -> int
val holds : Marking.t -> cond -> bool
val feval : Marking.t -> fexpr -> float

val reval : Marking.t -> rexpr -> float
(** Evaluate a rate expression; performs the same float operations in
    the same order as {!rexpr_fn}. *)

val apply : ctx -> t -> Marking.t -> unit
(** Interpret the effect on the marking. [Pick] with zero feasible
    branches and negative [Set] values raise, mirroring closure-effect
    error behaviour. *)

exception Too_many_outcomes

val outcomes :
  ?ctx:ctx -> ?max_outcomes:int -> t -> Marking.t -> (float * Marking.t) list
(** [outcomes t m] applies [t] analytically, forking at every [Pick] with
    more than one feasible branch (uniform weights). The input marking is
    consumed (it becomes one of the results); forked branches work on
    copies whose journals do not extend the input's journal. Weights sum
    to 1. [Opaque] closures run with [ctx] (default {!null_ctx}).
    Raises {!Too_many_outcomes} when the fork tree exceeds
    [max_outcomes] (default 4096). *)

(** {1 Static structure} *)

val is_pure : t -> bool
(** No [Opaque] anywhere ([Checked] counts as pure: its executable
    semantics is the IR term). *)

val cond_reads : cond -> int list
(** Sorted uids of places the condition reads. *)

val rexpr_reads : rexpr -> int list
(** Sorted uids of (int and float) places the rate expression can
    read. *)

val static_reads : t -> int list option
(** Sorted uids of places the effect can read (guards, expressions, and
    [Inc]/[FInc] targets — an increment reads its target, matching the
    dynamic trace semantics). [None] when the effect contains an
    [Opaque] closure. *)

val static_writes : t -> int list option
(** Sorted uids of places the effect can write. [None] on [Opaque]. *)

(** {1 Compilation} *)

type cop =
  | CAdd of Place.t * int
  | CSet of Place.t * int
  | CAddE of Place.t * iexpr
  | CSetE of Place.t * iexpr
  | CFSet of Place.fl * fexpr
  | CFAdd of Place.fl * fexpr

type pcond =
  | KConst of bool
  | KCmpc of Place.t * rel * int  (** [m(p) rel k] — the common guard *)
  | KGen of cond

type prog =
  | PSkip
  | PAddc of (Place.t * int) array
      (** flat constant-increment arc array — the hot path *)
  | POps of cop array
  | PSeq of prog array
  | PIf of pcond * prog * prog
  | PPick of (pcond * prog) array
  | PRun of opaque

val compile : t -> prog
(** Compile once at model-build time; constant expressions are folded and
    all-constant-increment op lists become flat {!PAddc} arc arrays. *)

val run_prog : ctx -> prog -> Marking.t -> unit
(** Execute a compiled program. Equivalent to {!apply} on the source term
    (bit-identical marking trajectory and random-stream consumption). *)

val cond_fn : cond -> Marking.t -> bool
(** Compile a guard condition to a predicate closure (for
    [Activity.enabled]). *)

val rexpr_fn : rexpr -> Marking.t -> float
(** Compile a rate expression to a closure. [rexpr_fn r m = reval m r]
    bit-for-bit; [RConst] compiles to a constant function. *)

(** {1 Pretty-printing} *)

val pp_rel : Format.formatter -> rel -> unit
val pp_iexpr : Format.formatter -> iexpr -> unit
val pp_cond : Format.formatter -> cond -> unit
val pp_fexpr : Format.formatter -> fexpr -> unit
val pp_rexpr : Format.formatter -> rexpr -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
