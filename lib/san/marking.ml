type t = {
  ints : int array;
  floats : float array;
  mutable journal : int list;
  journalled : Bytes.t;  (* one flag per uid to dedupe journal entries *)
  mutable tracing : bool;
  mutable reads : int list;
  read_flags : Bytes.t;
  mutable wtracing : bool;
  mutable writes : int list;
  write_flags : Bytes.t;
}

let create ~ints ~floats =
  {
    ints = Array.make ints 0;
    floats = Array.make floats 0.0;
    journal = [];
    journalled = Bytes.make (ints + floats) '\000';
    tracing = false;
    reads = [];
    read_flags = Bytes.make (ints + floats) '\000';
    wtracing = false;
    writes = [];
    write_flags = Bytes.make (ints + floats) '\000';
  }

let copy m =
  {
    ints = Array.copy m.ints;
    floats = Array.copy m.floats;
    journal = [];
    journalled = Bytes.make (Bytes.length m.journalled) '\000';
    tracing = false;
    reads = [];
    read_flags = Bytes.make (Bytes.length m.read_flags) '\000';
    wtracing = false;
    writes = [];
    write_flags = Bytes.make (Bytes.length m.write_flags) '\000';
  }

let record_read m uid =
  if Bytes.get m.read_flags uid = '\000' then begin
    Bytes.set m.read_flags uid '\001';
    m.reads <- uid :: m.reads
  end

let trace_reads m f =
  if m.tracing then invalid_arg "Marking.trace_reads: not reentrant";
  m.tracing <- true;
  m.reads <- [];
  let result =
    try f ()
    with e ->
      m.tracing <- false;
      List.iter (fun uid -> Bytes.set m.read_flags uid '\000') m.reads;
      m.reads <- [];
      raise e
  in
  m.tracing <- false;
  let reads = m.reads in
  List.iter (fun uid -> Bytes.set m.read_flags uid '\000') reads;
  m.reads <- [];
  (result, reads)

let record_write m uid =
  if Bytes.get m.write_flags uid = '\000' then begin
    Bytes.set m.write_flags uid '\001';
    m.writes <- uid :: m.writes
  end

let trace_writes m f =
  if m.wtracing then invalid_arg "Marking.trace_writes: not reentrant";
  m.wtracing <- true;
  m.writes <- [];
  let result =
    try f ()
    with e ->
      m.wtracing <- false;
      List.iter (fun uid -> Bytes.set m.write_flags uid '\000') m.writes;
      m.writes <- [];
      raise e
  in
  m.wtracing <- false;
  let writes = m.writes in
  List.iter (fun uid -> Bytes.set m.write_flags uid '\000') writes;
  m.writes <- [];
  (result, writes)

let record m uid =
  if Bytes.get m.journalled uid = '\000' then begin
    Bytes.set m.journalled uid '\001';
    m.journal <- uid :: m.journal
  end

let get m p =
  if m.tracing then record_read m (Place.uid p);
  m.ints.(Place.index p)

let set m p v =
  if m.wtracing then record_write m (Place.uid p);
  if v < 0 then
    invalid_arg
      (Printf.sprintf "Marking.set: place %s would become negative (%d)"
         (Place.name p) v);
  if m.ints.(Place.index p) <> v then begin
    m.ints.(Place.index p) <- v;
    record m (Place.uid p)
  end

let add m p d = set m p (get m p + d)

let fget m p =
  if m.tracing then record_read m (Place.fuid p);
  m.floats.(Place.findex p)

let fset m p v =
  if m.wtracing then record_write m (Place.fuid p);
  if m.floats.(Place.findex p) <> v then begin
    m.floats.(Place.findex p) <- v;
    record m (Place.fuid p)
  end

let fadd m p d = fset m p (fget m p +. d)

let clear_journal m =
  List.iter (fun uid -> Bytes.set m.journalled uid '\000') m.journal;
  m.journal <- []

let journal m = m.journal

let int_snapshot m = Array.copy m.ints
let float_snapshot m = Array.copy m.floats

let diff ~before after =
  if Array.length before.ints <> Array.length after.ints then
    invalid_arg "Marking.diff: markings are from different models";
  let out = ref [] in
  for i = Array.length before.ints - 1 downto 0 do
    let d = after.ints.(i) - before.ints.(i) in
    if d <> 0 then out := (i, d) :: !out
  done;
  !out

let float_changed ~before after = before.floats <> after.floats

let equal a b = a.ints = b.ints && a.floats = b.floats

let hash m = Hashtbl.hash (m.ints, m.floats)
