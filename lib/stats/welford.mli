(** Numerically stable streaming moments (Welford's algorithm).

    Accumulates count, mean, and sum of squared deviations in one pass,
    with exact merging of partial accumulators (Chan et al.), which the
    multicore replication runner relies on. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** [add acc x] folds one observation into the accumulator. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having observed both
    [a]'s and [b]'s samples. [a] and [b] are not modified. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance (divides by n-1); [nan] when count < 2. *)

val stddev : t -> float
(** Square root of {!variance}. *)

val sem : t -> float
(** Standard error of the mean, [stddev / sqrt count]. *)

val min_value : t -> float
val max_value : t -> float
(** Extremes of the observations; [nan] when empty. *)

val pp : Format.formatter -> t -> unit
(** Prints count, mean and standard deviation. *)
