(** Student's t distribution, used for confidence intervals over small
    numbers of simulation replications. *)

val cdf : df:float -> float -> float
(** [cdf ~df x] is P(T <= x) for a t-distributed variable with [df > 0]
    degrees of freedom. *)

val quantile : df:float -> float -> float
(** [quantile ~df p] is the [p]-quantile (inverse CDF), [0 < p < 1].
    Computed by bisection + Newton on {!cdf}; accurate to ~1e-10. *)

val critical : df:float -> confidence:float -> float
(** [critical ~df ~confidence] is the two-sided critical value [t] such
    that a t-distributed variable lands in [\[-t, t\]] with probability
    [confidence]; e.g. [critical ~df:29.0 ~confidence:0.95] is 2.045....
    Requires [0 < confidence < 1]. *)
