(** Special functions needed by the statistics and distribution layers.

    All implementations are classical series / continued-fraction
    expansions (Lanczos, Numerical-Recipes-style Lentz continued fractions,
    Acklam's normal quantile) with double-precision accuracy around 1e-10
    or better on the domains used here. *)

val log_gamma : float -> float
(** [log_gamma x] is ln Γ(x) for [x > 0] (Lanczos approximation,
    g = 7, n = 9; relative error below 1e-13). *)

val gamma_p : float -> float -> float
(** [gamma_p a x] is the regularized lower incomplete gamma function
    P(a, x) = γ(a, x) / Γ(a), for [a > 0] and [x >= 0]. *)

val gamma_q : float -> float -> float
(** [gamma_q a x] = 1 - P(a, x). *)

val beta_inc : float -> float -> float -> float
(** [beta_inc a b x] is the regularized incomplete beta function
    I_x(a, b), for [a, b > 0] and [0 <= x <= 1]. *)

val erf : float -> float
(** Error function. *)

val erfc : float -> float
(** Complementary error function. *)

val std_normal_cdf : float -> float
(** Φ(x), the standard normal cumulative distribution function. *)

val std_normal_quantile : float -> float
(** [std_normal_quantile p] is Φ⁻¹(p) for [0 < p < 1] (Acklam's rational
    approximation refined by one Halley step; absolute error below
    1e-13). *)
