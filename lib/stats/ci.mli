(** Confidence intervals for simulation output (independent replications).

    Intervals use the Student-t critical value for the accumulated sample
    size, the standard approach for terminating-simulation estimators. *)

type t = {
  mean : float;
  half_width : float;  (** half of the interval width; [nan] if n < 2 *)
  confidence : float;  (** e.g. 0.95 *)
  n : int;  (** number of replications *)
}

val of_welford : ?confidence:float -> Welford.t -> t
(** [of_welford ~confidence acc] builds the interval
    mean ± t*(n-1) · s/√n. Default confidence 0.95. *)

val of_samples : ?confidence:float -> float array -> t
(** Convenience over {!of_welford}. *)

val lower : t -> float
val upper : t -> float

val contains : t -> float -> bool
(** [contains ci x] is true when [x] lies within the interval. False when
    the half width is [nan]. *)

val relative_half_width : t -> float
(** [half_width /. |mean|]; [infinity] when the mean is zero. *)

val pp : Format.formatter -> t -> unit
(** Prints as ["0.1234 ±0.0021 (95%, n=2000)"]. *)
