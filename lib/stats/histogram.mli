(** Fixed-bin histograms, used for distribution tests and for inspecting
    simulation output (e.g. the per-host load measure). *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width bins
    plus underflow and overflow counters. Requires [lo < hi] and
    [bins > 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of observations, including under/overflow. *)

val bin_count : t -> int -> int
(** [bin_count h i] is the number of observations in bin [i]. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** [(lo, hi)] bounds of bin [i]. *)

val fraction_below : t -> float -> float
(** [fraction_below h x] approximates the empirical CDF at [x] assuming
    observations are uniform within each bin. *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per bin. *)
