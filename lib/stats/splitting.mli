(** Tail-probability estimation from multilevel-splitting stage counts.

    A fixed-splitting (RESTART) run partitions the rare event
    [{importance >= L}] into [L] nested level crossings and reports, for
    each stage [k], how many trials were started from level-[k] state and
    how many of them reached level [k+1]. The product of the per-stage
    hit ratios is an unbiased estimator of the tail probability, and the
    delta method over the log of the product gives its confidence
    interval. See [doc/RARE_EVENTS.md] for the derivation and the
    independence approximation the interval relies on. *)

type stage = {
  trials : int;  (** trials started at this stage; > 0 *)
  hits : int;  (** trials that reached the next level; in [0, trials] *)
}

type estimate = {
  probability : float;  (** product of the per-stage hit ratios *)
  ci : Ci.t;
      (** delta-method interval; on an all-zero final stage the interval
          degenerates to [0, upper] with a rule-of-three style bound *)
  rel_variance : float;
      (** estimated relative variance Var(γ̂)/γ̂²; [nan] when
          [probability = 0] *)
  stages : stage array;  (** the input, for reporting *)
}

val estimate : ?confidence:float -> stage array -> estimate
(** [estimate stages] combines per-stage counts into a tail-probability
    estimate with a [confidence] (default 0.95) interval.

    The point estimate is γ̂ = ∏ₖ hitsₖ/trialsₖ. Treating the stages as
    independent binomials, the delta method gives
    Var(γ̂)/γ̂² ≈ Σₖ (1 − p̂ₖ)/(trialsₖ · p̂ₖ), and the interval is
    γ̂ · (1 ± t·√(Σ…)) with the Student-t critical value at the smallest
    stage's degrees of freedom (conservative).

    If some stage has zero hits, γ̂ = 0; the interval's upper bound is
    then the product of the ratios before the first zero stage times the
    one-sided binomial bound [-ln(1 − confidence) / trials] for that
    stage (the "rule of three" at 95%).

    Raises [Invalid_argument] on an empty array, non-positive trials,
    hits outside [0, trials], or a zero-hit stage followed by a stage
    with trials (the run should have stopped there). *)

val variance : estimate -> float
(** Absolute delta-method variance [rel_variance · probability²]; [0.0]
    when the probability estimate is zero. Used for work-normalized
    comparisons against crude Monte Carlo. *)
