let statistic ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ks.statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let d = ref 0.0 in
  let nf = float_of_int n in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. nf) -. f in
      let below = f -. (float_of_int i /. nf) in
      if above > !d then d := above;
      if below > !d then d := below)
    sorted;
  !d

(* Asymptotic Kolmogorov tail with Stephens' finite-n adjustment:
   P(D > d) ~ Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2). *)
let significance ~n d =
  if n <= 0 then invalid_arg "Ks.significance: n must be positive";
  let sqrt_n = sqrt (float_of_int n) in
  let lambda = (sqrt_n +. 0.12 +. (0.11 /. sqrt_n)) *. d in
  if lambda < 1e-3 then 1.0
  else begin
    let acc = ref 0.0 in
    let sign = ref 1.0 in
    (try
       for k = 1 to 100 do
         let term = exp (-2.0 *. float_of_int (k * k) *. lambda *. lambda) in
         acc := !acc +. (!sign *. term);
         sign := -. !sign;
         if term < 1e-12 then raise Exit
       done
     with Exit -> ());
    Float.max 0.0 (Float.min 1.0 (2.0 *. !acc))
  end
