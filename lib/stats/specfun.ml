(* Lanczos approximation, g = 7, n = 9 coefficients (Boost / GSL values). *)
let lanczos_g = 7.0

let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x <= 0.0 then invalid_arg "Specfun.log_gamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos sum in its accurate region. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coef.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos_coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc
  end

let max_iter = 500
let eps = 3e-15
let fp_min = 1e-300

(* Series expansion for P(a,x), accurate for x < a + 1. *)
let gamma_p_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let finished = ref false in
  let iter = ref 0 in
  while (not !finished) && !iter < max_iter do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if Float.abs !del < Float.abs !sum *. eps then finished := true
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. log_gamma a)

(* Modified Lentz continued fraction for Q(a,x), accurate for x >= a + 1. *)
let gamma_q_cf a x =
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fp_min) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let finished = ref false in
  while (not !finished) && !i < max_iter do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if Float.abs !d < fp_min then d := fp_min;
    c := !b +. (an /. !c);
    if Float.abs !c < fp_min then c := fp_min;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then finished := true;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. log_gamma a) *. !h

let gamma_p a x =
  if a <= 0.0 then invalid_arg "Specfun.gamma_p: requires a > 0";
  if x < 0.0 then invalid_arg "Specfun.gamma_p: requires x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gamma_p_series a x
  else 1.0 -. gamma_q_cf a x

let gamma_q a x = 1.0 -. gamma_p a x

(* Continued fraction for the incomplete beta function (Lentz). *)
let beta_cf a b x =
  let qab = a +. b in
  let qap = a +. 1.0 in
  let qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fp_min then d := fp_min;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fp_min then d := fp_min;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fp_min then c := fp_min;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fp_min then d := fp_min;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fp_min then c := fp_min;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then finished := true;
    incr m
  done;
  !h

let beta_inc a b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Specfun.beta_inc: requires a, b > 0";
  if x < 0.0 || x > 1.0 then
    invalid_arg "Specfun.beta_inc: requires 0 <= x <= 1";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else begin
    let ln_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x)
      +. (b *. log (1.0 -. x))
    in
    let front = exp ln_front in
    (* Use the symmetry relation to stay in the fast-converging region. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. beta_cf a b x /. a
    else 1.0 -. (front *. beta_cf b a (1.0 -. x) /. b)
  end

let erf x =
  if x >= 0.0 then gamma_p 0.5 (x *. x) else -.gamma_p 0.5 (x *. x)

let erfc x = 1.0 -. erf x

let sqrt2 = sqrt 2.0

let std_normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Horner evaluation, highest-degree coefficient first. *)
let polyeval coeffs x =
  Array.fold_left (fun acc c -> (acc *. x) +. c) 0.0 coeffs

(* Acklam's inverse normal CDF, then one Halley refinement step. *)
let std_normal_quantile p =
  if not (0.0 < p && p < 1.0) then
    invalid_arg "Specfun.std_normal_quantile: requires 0 < p < 1";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01; 1.0 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00; 1.0 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then
      let q = sqrt (-2.0 *. log p) in
      polyeval c q /. polyeval d q
    else if p <= 1.0 -. p_low then
      let q = p -. 0.5 in
      let r = q *. q in
      polyeval a r *. q /. polyeval b r
    else
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.(polyeval c q /. polyeval d q)
  in
  (* One Halley step against the accurate CDF. *)
  let e = std_normal_cdf x -. p in
  let u = e *. sqrt (2.0 *. Float.pi) *. exp (x *. x /. 2.0) in
  x -. (u /. (1.0 +. (x *. u /. 2.0)))
