type stage = { trials : int; hits : int }

type estimate = {
  probability : float;
  ci : Ci.t;
  rel_variance : float;
  stages : stage array;
}

let validate stages =
  if Array.length stages = 0 then
    invalid_arg "Splitting.estimate: no stages";
  Array.iteri
    (fun k { trials; hits } ->
      if trials <= 0 then
        invalid_arg
          (Printf.sprintf "Splitting.estimate: stage %d has %d trials" k
             trials);
      if hits < 0 || hits > trials then
        invalid_arg
          (Printf.sprintf "Splitting.estimate: stage %d has %d hits of %d"
             k hits trials);
      if k > 0 && stages.(k - 1).hits = 0 then
        invalid_arg
          (Printf.sprintf
             "Splitting.estimate: stage %d follows a zero-hit stage" k))
    stages

let estimate ?(confidence = 0.95) stages =
  validate stages;
  let prob =
    Array.fold_left
      (fun acc { trials; hits } -> acc *. (float_of_int hits /. float_of_int trials))
      1.0 stages
  in
  let n0 = stages.(0).trials in
  if prob = 0.0 then begin
    (* Some stage went dry. The point estimate is 0; bound the tail from
       above by the product of the ratios reached so far times a
       one-sided binomial upper bound for the dry stage: if X ~ B(n, p)
       and X = 0 was observed, p <= -ln(1 - confidence)/n at the given
       confidence (the "rule of three" when confidence = 0.95). *)
    let upper = ref 1.0 in
    (try
       Array.iter
         (fun { trials; hits } ->
           if hits = 0 then begin
             upper :=
               !upper *. (-.log (1.0 -. confidence) /. float_of_int trials);
             raise Exit
           end
           else
             upper := !upper *. (float_of_int hits /. float_of_int trials))
         stages
     with Exit -> ());
    {
      probability = 0.0;
      ci =
        {
          Ci.mean = 0.0;
          half_width = !upper;
          confidence;
          n = n0;
        };
      rel_variance = Float.nan;
      stages;
    }
  end
  else begin
    (* Delta method on ln γ̂ = Σ ln p̂ₖ with independent binomial stages:
       Var(ln p̂ₖ) ≈ (1 - p̂ₖ)/(nₖ p̂ₖ), so Var(γ̂)/γ̂² ≈ Σₖ (1-p̂ₖ)/(nₖ p̂ₖ). *)
    let rel_var =
      Array.fold_left
        (fun acc { trials; hits } ->
          let n = float_of_int trials and h = float_of_int hits in
          let p = h /. n in
          acc +. ((1.0 -. p) /. (n *. p)))
        0.0 stages
    in
    let min_trials =
      Array.fold_left (fun acc { trials; _ } -> min acc trials) max_int
        stages
    in
    let t =
      Student_t.critical ~df:(float_of_int (min_trials - 1)) ~confidence
    in
    {
      probability = prob;
      ci =
        {
          Ci.mean = prob;
          half_width = t *. prob *. sqrt rel_var;
          confidence;
          n = n0;
        };
      rel_variance = rel_var;
      stages;
    }
  end

let variance e =
  if e.probability = 0.0 then 0.0
  else e.rel_variance *. e.probability *. e.probability
