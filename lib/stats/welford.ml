type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min_v = nan; max_v = nan }

let add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mean in
  acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
  if acc.n = 1 then begin
    acc.min_v <- x;
    acc.max_v <- x
  end
  else begin
    if x < acc.min_v then acc.min_v <- x;
    if x > acc.max_v then acc.max_v <- x
  end

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. nb /. (na +. nb)) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. (na +. nb)) in
    {
      n;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }
  end

let count acc = acc.n
let mean acc = if acc.n = 0 then nan else acc.mean

let variance acc =
  if acc.n < 2 then nan else acc.m2 /. float_of_int (acc.n - 1)

let stddev acc = sqrt (variance acc)

let sem acc =
  if acc.n < 2 then nan else stddev acc /. sqrt (float_of_int acc.n)

let min_value acc = acc.min_v
let max_value acc = acc.max_v

let pp ppf acc =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.6g" acc.n (mean acc) (stddev acc)
