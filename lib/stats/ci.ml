type t = { mean : float; half_width : float; confidence : float; n : int }

let of_welford ?(confidence = 0.95) acc =
  let n = Welford.count acc in
  let mean = Welford.mean acc in
  let half_width =
    if n < 2 then nan
    else
      let tstar =
        Student_t.critical ~df:(float_of_int (n - 1)) ~confidence
      in
      tstar *. Welford.sem acc
  in
  { mean; half_width; confidence; n }

let of_samples ?confidence samples =
  let acc = Welford.create () in
  Array.iter (Welford.add acc) samples;
  of_welford ?confidence acc

let lower ci = ci.mean -. ci.half_width
let upper ci = ci.mean +. ci.half_width

let contains ci x =
  (not (Float.is_nan ci.half_width)) && lower ci <= x && x <= upper ci

let relative_half_width ci =
  if ci.mean = 0.0 then infinity else Float.abs (ci.half_width /. ci.mean)

let pp ppf ci =
  Format.fprintf ppf "%.6g ±%.2g (%g%%, n=%d)" ci.mean ci.half_width
    (100.0 *. ci.confidence) ci.n
