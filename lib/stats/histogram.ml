type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    under = 0;
    over = 0;
    total = 0;
  }

let add h x =
  h.total <- h.total + 1;
  if x < h.lo then h.under <- h.under + 1
  else if x >= h.hi then h.over <- h.over + 1
  else begin
    let i = int_of_float ((x -. h.lo) /. h.width) in
    let i = if i >= Array.length h.counts then Array.length h.counts - 1 else i in
    h.counts.(i) <- h.counts.(i) + 1
  end

let count h = h.total
let bin_count h i = h.counts.(i)
let underflow h = h.under
let overflow h = h.over

let bin_bounds h i =
  let lo = h.lo +. (float_of_int i *. h.width) in
  (lo, lo +. h.width)

let fraction_below h x =
  if h.total = 0 then nan
  else begin
    let below = ref (float_of_int h.under) in
    Array.iteri
      (fun i c ->
        let blo, bhi = bin_bounds h i in
        if bhi <= x then below := !below +. float_of_int c
        else if blo < x then
          below := !below +. (float_of_int c *. ((x -. blo) /. h.width)))
      h.counts;
    !below /. float_of_int h.total
  end

let pp ppf h =
  let max_count = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      let blo, bhi = bin_bounds h i in
      let bar = 50 * c / max_count in
      Format.fprintf ppf "[%8.3g, %8.3g) %6d %s@." blo bhi c
        (String.make bar '#'))
    h.counts;
  if h.under > 0 then Format.fprintf ppf "underflow %d@." h.under;
  if h.over > 0 then Format.fprintf ppf "overflow %d@." h.over
