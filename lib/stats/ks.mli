(** One-sample Kolmogorov–Smirnov goodness-of-fit testing, used by the
    distribution tests to compare samplers against their own CDFs. *)

val statistic : cdf:(float -> float) -> float array -> float
(** [statistic ~cdf xs] is D_n = sup |F_n(x) - cdf(x)| over the sample
    (computed at the jump points of the empirical CDF). The sample is
    sorted internally; it must be non-empty. *)

val significance : n:int -> float -> float
(** [significance ~n d] approximates the p-value
    P(D_n > d) via the asymptotic Kolmogorov distribution with the
    standard finite-n correction (Stephens). Small values reject the fit;
    e.g. below 0.001 at n = 10000 indicates a real mismatch. *)
