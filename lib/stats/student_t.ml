let cdf ~df x =
  if df <= 0.0 then invalid_arg "Student_t.cdf: requires df > 0";
  if Float.is_nan x then nan
  else if x = 0.0 then 0.5
  else begin
    let t2 = x *. x in
    let ib = Specfun.beta_inc (df /. 2.0) 0.5 (df /. (df +. t2)) in
    if x > 0.0 then 1.0 -. (0.5 *. ib) else 0.5 *. ib
  end

let pdf ~df x =
  let half = (df +. 1.0) /. 2.0 in
  let ln =
    Specfun.log_gamma half
    -. Specfun.log_gamma (df /. 2.0)
    -. (0.5 *. log (df *. Float.pi))
    -. (half *. log (1.0 +. (x *. x /. df)))
  in
  exp ln

let quantile ~df p =
  if df <= 0.0 then invalid_arg "Student_t.quantile: requires df > 0";
  if not (0.0 < p && p < 1.0) then
    invalid_arg "Student_t.quantile: requires 0 < p < 1";
  (* Start from the normal quantile, widen brackets, then bisect with a
     Newton polish.  The CDF is monotone so this always converges. *)
  let target = p in
  let x0 = Specfun.std_normal_quantile p in
  let lo = ref (Float.min (x0 *. 4.0) (-1.0)) in
  let hi = ref (Float.max (x0 *. 4.0) 1.0) in
  while cdf ~df !lo > target do
    lo := !lo *. 2.0
  done;
  while cdf ~df !hi < target do
    hi := !hi *. 2.0
  done;
  let x = ref (Float.max !lo (Float.min !hi x0)) in
  for _ = 1 to 100 do
    let f = cdf ~df !x -. target in
    if f > 0.0 then hi := !x else lo := !x;
    let deriv = pdf ~df !x in
    let newton = !x -. (f /. deriv) in
    x :=
      if deriv > 0.0 && newton > !lo && newton < !hi then newton
      else 0.5 *. (!lo +. !hi)
  done;
  !x

let critical ~df ~confidence =
  if not (0.0 < confidence && confidence < 1.0) then
    invalid_arg "Student_t.critical: requires 0 < confidence < 1";
  quantile ~df (1.0 -. ((1.0 -. confidence) /. 2.0))
