(** Engine telemetry: cheap counters collected by the executor.

    A [Metrics.t] is a passive sink: pass one to {!Executor.run} (or to
    {!Runner.run} / {!Runner.run_until}, which thread one per domain and
    merge) and it accumulates, across every run recorded into it:

    {ul
    {- per-activity firing, cancellation (disabled-abort) and resample
       counts — the first thing to look at when a model misbehaves (a
       never-firing activity is usually a missing read or a wrong
       enabling predicate);}
    {- instantaneous-stabilization chain statistics (chains, total steps,
       longest chain);}
    {- event-heap statistics (pops, stale pops from lazy cancellation,
       mean and maximum depth);}
    {- wall-clock time, added by the caller via {!add_wall}, from which
       {!events_per_sec} derives the engine's throughput.}}

    The executor counts unconditionally into run-local scratch and folds
    it into the sink once per run, so simulation with no metrics attached
    pays nothing on the hot path. A sink is not domain-safe: give each
    domain its own (as {!Runner} does) and {!merge} afterwards. *)

type t = {
  names : string array;  (** activity names, indexed by activity id *)
  firings : int array;
      (** per-activity completions, t = 0 setup firings included *)
  cancellations : int array;
      (** per-activity aborts of a scheduled completion by disabling *)
  resamples : int array;
      (** per-activity re-draws under the [Resample] policy *)
  mutable runs : int;  (** executor runs recorded *)
  mutable events : int;  (** firings as counted by {!Executor.outcome} *)
  mutable setup_events : int;  (** t = 0 setup stabilization firings *)
  mutable chains : int;  (** stabilization episodes with >= 1 firing *)
  mutable chain_steps : int;  (** total instantaneous steps in chains *)
  mutable max_chain : int;  (** longest single stabilization chain *)
  mutable pops : int;  (** event-heap pops (stale entries included) *)
  mutable stale_pops : int;  (** pops discarded by version mismatch *)
  mutable depth_sum : int;  (** sum over pops of the pre-pop heap size *)
  mutable max_depth : int;  (** largest pre-pop heap size seen *)
  mutable wall_seconds : float;  (** wall time added via {!add_wall} *)
  run_events : int array;
      (** base-2 log-bucketed histogram of per-run event counts *)
  mutable min_run_events : int;  (** smallest per-run event count *)
  mutable max_run_events : int;  (** largest per-run event count *)
}

val create : model:San.Model.t -> t
(** A zeroed sink sized for (and labelled with) [model]'s activities. *)

val reset : t -> unit
(** Zero every counter, keeping the activity names. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds every counter of [src] into [into]. The two
    sinks must come from models with the same activity count
    ([Invalid_argument] otherwise). *)

val add_wall : t -> float -> unit
(** Add elapsed wall-clock seconds (callers time the enclosing run). *)

val record_run :
  t ->
  firings:int array ->
  cancellations:int array ->
  resamples:int array ->
  events:int ->
  setup_events:int ->
  chains:int ->
  chain_steps:int ->
  max_chain:int ->
  pops:int ->
  stale_pops:int ->
  depth_sum:int ->
  max_depth:int ->
  unit
(** Fold one executor run into the sink. Called by {!Executor.run};
    rarely useful directly. *)

val events_per_sec : t -> float
(** [events / wall_seconds]; [nan] while no wall time was added, and
    [nan] (never [inf] or timer garbage) when the recorded wall time is
    below a microsecond — snapshot writers render that as [null]. *)

val mean_chain_length : t -> float
(** Mean instantaneous steps per non-empty stabilization chain; [nan]
    when no chain occurred. *)

val mean_heap_depth : t -> float
(** Mean pre-pop heap size; [nan] before the first pop. *)

val stale_fraction : t -> float
(** Fraction of heap pops discarded as stale; [nan] before the first
    pop. Persistently high values mean the model cancels far more than
    it fires (lots of [Resample] churn). *)

val never_fired : t -> string list
(** Names of activities that never fired in any recorded run, in model
    order. With enough replications behind the sink, a structurally
    relevant activity in this list is usually a modeling bug. *)

val csv_header : string list
(** Header for {!csv_rows}:
    [activity,firings,cancellations,resamples]. *)

val csv_rows : t -> string list list
(** One row per activity, in model order, matching {!csv_header}. Write
    with {!Report.write_csv_rows}. *)

val pp_summary : Format.formatter -> t -> unit
(** Multi-line engine summary: runs, events, events/sec, stabilization
    and heap statistics. *)

val pp_activities : ?limit:int -> Format.formatter -> t -> unit
(** Per-activity table sorted by firing count (descending), activities
    that never fired summarized on a final line. [limit] caps the number
    of table rows (default: all). *)

val export : t -> into:Obs.Registry.t -> unit
(** Dump the sink into a metrics registry: deterministic engine
    counters and the per-run event histogram into scope ["engine"],
    per-activity counters into scope ["activity"], and wall-derived
    throughput figures as volatile gauges. Exporting several sinks into
    one registry accumulates, mirroring {!merge}. *)
