(** Trace observer: pretty-prints every firing of a run, for debugging
    models. Attach via {!Runner.spec}'s [extra_observers] or directly to
    {!Executor.run}. *)

val observer :
  ?show_marking:bool -> model:San.Model.t -> Format.formatter -> Observer.t
(** [observer ~model ppf] logs one line per firing:
    ["t=1.2345 fire host[3].attack_host case 1"]. With [~show_marking:true]
    it also dumps the non-zero places after each firing (verbose; intended
    for very small models). *)
