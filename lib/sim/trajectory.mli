(** Trajectory recording: capture the runs that break.

    A {!sink} attaches to replications as an {!Observer.t} and records
    every firing into a reusable scratch buffer — time, activity, case,
    and the marking deltas the firing caused (read from the marking
    journal, which is still valid when [on_fire] runs). At the end of
    each replication, {!offer} decides whether to {e retain} the run:
    trajectories matching the sink's predicate (e.g. "some application
    latched a Byzantine failure") and those that don't are kept in two
    separate bounded samples of at most [k] each, so memory stays bounded
    at any replication count.

    Retention is a deterministic reservoir: replication [i] survives iff
    its priority [Splitmix64.mix i] is among the [k] smallest of its
    class. Priorities depend only on the replication index, so the
    retained set is independent of domain count and merge order — the
    property behind the bit-identical [--cores 1] vs [--cores N]
    guarantee (see {!Runner.run}'s [?record]).

    Alongside retained runs the sink accumulates {e occupancy statistics}
    per place — time-weighted mean and max tokens, and first-hit times
    (when the place first became non-zero) — over {e all} replications,
    not just retained ones.

    A sink is not domain-safe; like {!Metrics}, the runner gives each
    segment of replications its own {!fork} and {!merge}s them back in a
    fixed global order. *)

type change = { place : string; value : float }
(** A place's {e new} value after a firing (or at setup, for {!t.init}). *)

type step = {
  time : float;
  activity : string;
  case : int;
  changes : change list;  (** one entry per place the firing changed *)
}

type t = {
  rep : int;  (** replication index *)
  matched : bool;  (** the sink's predicate held at some point *)
  events : int;  (** total firings, including any beyond [max_steps] *)
  horizon : float;  (** the time [on_finish] observed *)
  init : change list;  (** non-zero places after t = 0 setup *)
  steps : step list;  (** at most [max_steps] recorded firings *)
}
(** One retained replication. [steps] is shorter than [events] only when
    the run exceeded the sink's [max_steps] cap. *)

type place_stats = {
  place : string;
  mean_tokens : float;  (** time-weighted mean over all replications *)
  max_tokens : float;  (** maximum value ever observed *)
  hit_runs : int;  (** replications where the place was ever non-zero *)
  mean_first_hit : float;
      (** mean time of first becoming non-zero, over [hit_runs]; [nan]
          when the place was never hit *)
}

type sink

val sink :
  ?k:int ->
  ?max_steps:int ->
  ?predicate:(San.Marking.t -> bool) ->
  model:San.Model.t ->
  unit ->
  sink
(** [k] bounds each retained sample (default 10; 0 disables retention but
    keeps occupancy statistics). [max_steps] caps recorded steps per run
    (default 100_000). [predicate] is evaluated after setup and after
    every firing with latch ("ever") semantics; without one, no run
    matches. [Invalid_argument] on negative [k]/[max_steps] or a model
    with no places. *)

val observer : sink -> Observer.t
(** The recording observer. Attach exactly one per concurrently running
    replication — the sink's scratch state is per-run. *)

val offer : sink -> rep:int -> unit
(** Account the just-finished replication (it must have run to
    [on_finish] under {!observer}) and retain its trajectory if its
    priority qualifies. [rep] must be unique across all offers into a
    merged family of sinks. *)

val fork : sink -> sink
(** A fresh empty sink with the same configuration, sharing no mutable
    state — safe to use from another domain. *)

val merge : into:sink -> sink -> unit
(** Folds retained samples and occupancy totals of the source into
    [into]. Retention commutes (bottom-[k] of a union); occupancy floats
    add in call order, so merge in a fixed order for reproducible sums.
    [Invalid_argument] if the sinks were built for different models. *)

val runs : sink -> int
val matched_runs : sink -> int

val matching : sink -> t list
(** Retained predicate-matching trajectories, by replication index. *)

val non_matching : sink -> t list

val retained : sink -> t list
(** [matching @ non_matching], sorted by replication index. *)

val occupancy : sink -> place_stats list
(** Per-place statistics over all replications, in model (uid) order. *)

(** {1 JSON}

    The schema used in [--record-failures] JSONL files (documented in
    [doc/OBSERVABILITY.md]): [init] and [changes] are arrays of
    [["place", value]] pairs; steps are
    [{"t":..,"act":..,"case":..,"changes":[..]}]. *)

val to_json : t -> Report.Json.t

val of_json : Report.Json.t -> (t, string) result
(** Round-trips {!to_json} exactly (the deterministic float rendering of
    {!Report.Json} loses no precision). *)

val occupancy_to_json : place_stats list -> Report.Json.t

val occupancy_of_json : Report.Json.t -> (place_stats list, string) result
