(** RESTART / multilevel importance splitting for rare-event estimation.

    Estimates the probability that a replication's marking {e ever}
    reaches importance level [levels] before the horizon, where an
    {e importance function} maps markings to integer levels
    [0 .. levels] and level [levels] is the rare event of interest
    (e.g. "some application group is improper" for ITUA unreliability).

    The engine runs stage by stage. Stage 0 launches [initial]
    replications from the model's initial marking and halts each the
    moment it up-crosses level 1, checkpointing its full state
    ({!Executor.checkpoint}). Every checkpoint is then cloned [clones]
    times with fresh, non-overlapping PRNG substreams and raced toward
    level 2, and so on until level [levels]. The per-stage hit ratios
    multiply into an unbiased estimate of the tail probability
    ({!Stats.Splitting.estimate}); see [doc/RARE_EVENTS.md] for the
    method, how to choose importance functions, and its pitfalls.

    Determinism matches {!Runner}: trial [i] of the whole run (numbered
    across stages in a fixed order) always executes on substream [i] of
    [seed], and stage results are collected in trial order, so the
    result is bit-identical for every [?domains] value. *)

type result = {
  estimate : Stats.Splitting.estimate;
      (** tail-probability estimate with delta-method CI *)
  total_trials : int;  (** trials across all stages *)
  total_events : int;  (** activity firings across all trials *)
  levels : int;
  clones : int;
}

val run :
  ?domains:int ->
  ?confidence:float ->
  ?max_stage_trials:int ->
  model:San.Model.t ->
  config:Executor.config ->
  importance:(San.Marking.t -> int) ->
  levels:int ->
  clones:int ->
  initial:int ->
  seed:int64 ->
  unit ->
  result
(** [run ~model ~config ~importance ~levels ~clones ~initial ~seed ()]
    estimates [P(max over stable markings of importance >= levels)]
    within [config.horizon].

    [importance] must be cheap (it runs after every timed firing), must
    map the initial marking below [levels] for the estimate to be
    non-trivial, and need not change by single steps: a jump across
    several levels is handled by the immediate re-crossing of each
    intermediate stage. A stage whose every source already sits at or
    above its threshold is recognized as a certain pass-through (ratio
    exactly 1) and is recorded without launching trials or cloning, so
    jumps do not multiply the population. It is evaluated on stable markings only, so
    levels touched transiently inside an instantaneous chain do not
    count (deliberately — the same convention as reward variables and
    {!Ctmc.Measure.ever}).

    [config.stop], if set, ends a trial early; such trials count as
    failures to reach the next level. [initial] must be at least 2,
    [levels] and [clones] at least 1.

    [max_stage_trials] (default [2^20]) bounds the number of trials any
    stage may launch; exceeding it raises [Invalid_argument] advising
    fewer clones — with [clones] well above the inverse of the typical
    level-passage probability the trial population grows geometrically,
    which is the classic RESTART failure mode.

    Raises like {!Executor.run} on model errors. *)

val export :
  ?convergence:Obs.Convergence.t ->
  ?confidence:float ->
  result ->
  into:Obs.Registry.t ->
  unit
(** Dump a finished run into a metrics registry: scope ["splitting"]
    gets total trials/events, per-stage trial and hit counters
    ([stageNNN.trials], [stageNNN.hits]) and the final estimate —
    everything a deterministic function of the seed, so none of it is
    volatile. [convergence], when given, receives the per-stage
    trajectory of measure ["splitting"]: point [k] is the estimate and
    delta-method half-width (at [confidence], default 0.95) supported by
    the first [k] stages, with [n] the cumulative trial count — how the
    tail-probability estimate sharpened as the run climbed levels. *)
