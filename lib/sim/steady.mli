(** Steady-state estimation by the method of batch means.

    Terminating measures use {!Runner} (independent replications); for
    long-run measures — like the paper's "steady state" fraction of
    corrupt hosts in excluded domains, or queueing stationary quantities —
    one long run is split into batches after a warmup, the time-average of
    the reward is computed per batch, and a Student-t interval is formed
    over the batch means. With enough batches of sufficient length the
    batch means are approximately independent and the interval is
    honest. *)

type result = {
  ci : Stats.Ci.t;
  batch_means : float array;
  warmup_mean : float;  (** time-average over the discarded warmup *)
}

val estimate :
  ?confidence:float ->
  model:San.Model.t ->
  f:(San.Marking.t -> float) ->
  warmup:float ->
  batch_length:float ->
  batches:int ->
  stream:Prng.Stream.t ->
  unit ->
  result
(** [estimate ~model ~f ~warmup ~batch_length ~batches ~stream ()] runs
    one replication to [warmup + batches · batch_length] and returns the
    batch-means interval for the long-run average of [f]. Requires
    [batches >= 2] and positive lengths. *)
