type violation = { activity : string; place : string; via : string }

let pp_violation ppf v =
  Format.fprintf ppf "activity %s: %s reads undeclared place %s" v.activity
    v.via v.place

(* Collect up to [max_markings] distinct markings visited by a few runs. *)
let sample_markings ~runs ~horizon ~max_markings ~seed model =
  let seen = Hashtbl.create 256 in
  let samples = ref [] in
  let count = ref 0 in
  let consider m =
    if !count < max_markings then begin
      let key = (San.Marking.int_snapshot m, San.Marking.float_snapshot m) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        samples := San.Marking.copy m :: !samples;
        incr count
      end
    end
  in
  let root = Prng.Stream.create ~seed in
  for i = 0 to runs - 1 do
    let observer =
      {
        Observer.nop with
        on_init = (fun _ m -> consider m);
        on_fire = (fun _ _ _ m -> consider m);
        on_finish = (fun _ m -> consider m);
      }
    in
    let cfg = Executor.config ~horizon () in
    ignore
      (Executor.run ~model ~config:cfg
         ~stream:(Prng.Stream.substream root i)
         ~observer ())
  done;
  !samples

let place_name_of_uid model uid =
  let found = ref None in
  Array.iter
    (fun p -> if San.Place.uid p = uid then found := Some (San.Place.name p))
    (San.Model.places model);
  Array.iter
    (fun p -> if San.Place.fuid p = uid then found := Some (San.Place.fname p))
    (San.Model.float_places model);
  Option.value ~default:(Printf.sprintf "<uid %d>" uid) !found

let undeclared_reads ?(runs = 3) ?(horizon = 10.0) ?(max_markings = 500)
    ?(seed = 7L) model =
  let markings = sample_markings ~runs ~horizon ~max_markings ~seed model in
  let violations = Hashtbl.create 16 in
  let check (a : San.Activity.t) m via f =
    let declared = List.map San.Place.any_uid a.San.Activity.reads in
    let (_ : unit), reads = San.Marking.trace_reads m (fun () -> ignore (f ())) in
    List.iter
      (fun uid ->
        if not (List.mem uid declared) then
          let v =
            {
              activity = a.San.Activity.name;
              place = place_name_of_uid model uid;
              via;
            }
          in
          Hashtbl.replace violations v ())
      reads
  in
  List.iter
    (fun m ->
      Array.iter
        (fun (a : San.Activity.t) ->
          check a m "enabled" (fun () -> a.San.Activity.enabled m);
          (match a.San.Activity.timing with
          | San.Activity.Instantaneous -> ()
          | San.Activity.Timed { dist; _ } ->
              check a m "dist" (fun () -> dist m));
          if Array.length a.San.Activity.cases > 1 then
            Array.iter
              (fun c ->
                check a m "weight" (fun () -> c.San.Activity.case_weight m))
              a.San.Activity.cases)
        (San.Model.activities model))
    markings;
  Hashtbl.fold (fun v () acc -> v :: acc) violations []
  |> List.sort_uniq compare
