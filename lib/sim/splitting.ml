type result = {
  estimate : Stats.Splitting.estimate;
  total_trials : int;
  total_events : int;
  levels : int;
  clones : int;
}

(* Contiguous near-equal blocks covering [0, count), as in Runner. *)
let blocks_of ~domains ~count =
  let d = Int.max 1 (Int.min domains count) in
  let base = count / d and extra = count mod d in
  List.init d (fun i ->
      let c = base + if i < extra then 1 else 0 in
      let f = (i * base) + Int.min i extra in
      (f, c))

let run ?(domains = 1) ?(confidence = 0.95) ?(max_stage_trials = 1 lsl 20)
    ~model ~config ~importance ~levels ~clones ~initial ~seed () =
  if levels < 1 then invalid_arg "Splitting.run: levels must be >= 1";
  if clones < 1 then invalid_arg "Splitting.run: clones must be >= 1";
  if initial < 2 then invalid_arg "Splitting.run: initial must be >= 2";
  if domains < 1 then invalid_arg "Splitting.run: domains must be >= 1";
  if initial > max_stage_trials then
    invalid_arg "Splitting.run: initial exceeds max_stage_trials";
  let root = Prng.Stream.create ~seed in
  let total_events = ref 0 in
  let total_trials = ref 0 in
  (* Global trial counter: trial [stream_base + j] of the whole run uses
     substream [stream_base + j], whatever the stage or domain split. *)
  let stream_base = ref 0 in
  let stages = ref [] in
  (* One stage: race every source toward [threshold]; [None] sources
     start fresh (stage 0 only). Returns the captured checkpoints in
     trial order. *)
  let run_stage ~threshold (sources : Executor.checkpoint option array) =
    let n = Array.length sources in
    let first_global = !stream_base in
    stream_base := !stream_base + n;
    let run_block (first, count) =
      (* [base] stays pristine (never drawn from), so trial
         [first_global + first + i] always runs on exactly that
         substream of the seed, regardless of the domain split. *)
      let base = ref (Prng.Stream.substream root (first_global + first)) in
      Array.init count (fun i ->
          if i > 0 then base := Prng.Stream.successor !base;
          let stream = Prng.Stream.substream !base 0 in
          match
            Executor.run_to_level ?from_:sources.(first + i) ~model ~config
              ~stream ~observer:Observer.nop ~importance ~threshold ()
          with
          | Executor.Finished o -> (None, o.Executor.events)
          | Executor.Crossed { checkpoint; events } ->
              (Some checkpoint, events))
    in
    let blocks = blocks_of ~domains ~count:n in
    let results =
      match blocks with
      | [ b ] -> [ run_block b ]
      | bs ->
          List.map Domain.join
            (List.map (fun b -> Domain.spawn (fun () -> run_block b)) bs)
    in
    let flat = Array.concat results in
    total_trials := !total_trials + n;
    Array.iter (fun (_, ev) -> total_events := !total_events + ev) flat;
    let hits =
      Array.to_list flat |> List.filter_map fst |> Array.of_list
    in
    stages :=
      { Stats.Splitting.trials = n; hits = Array.length hits } :: !stages;
    hits
  in
  let sources = ref (Array.make initial None) in
  let threshold = ref 1 in
  let continue_ = ref true in
  while !continue_ do
    (* After a jump across several levels, every source of a stage can
       already sit at or above its threshold. Such a stage is a certain
       pass-through (ratio exactly 1, no events): record it and keep the
       population as is — cloning certain crossings would only multiply
       the trial count, not the information. *)
    let pass_through =
      Array.for_all
        (function
          | Some cp ->
              importance (Executor.checkpoint_marking cp) >= !threshold
          | None -> false)
        !sources
    in
    if pass_through then begin
      let n = Array.length !sources in
      total_trials := !total_trials + n;
      stages := { Stats.Splitting.trials = n; hits = n } :: !stages;
      if !threshold = levels then continue_ := false else incr threshold
    end
    else begin
      let hits = run_stage ~threshold:!threshold !sources in
      if Array.length hits = 0 || !threshold = levels then continue_ := false
      else begin
        let h = Array.length hits in
        if h * clones > max_stage_trials then
          invalid_arg
            (Printf.sprintf
               "Splitting.run: stage %d would launch %d trials (> %d); use \
                fewer clones per crossing"
               !threshold (h * clones) max_stage_trials);
        let next = Array.make (h * clones) (Some hits.(0)) in
        Array.iteri
          (fun j cp ->
            for c = 0 to clones - 1 do
              next.((j * clones) + c) <- Some cp
            done)
          hits;
        sources := next;
        incr threshold
      end
    end
  done;
  let stages = Array.of_list (List.rev !stages) in
  {
    estimate = Stats.Splitting.estimate ~confidence stages;
    total_trials = !total_trials;
    total_events = !total_events;
    levels;
    clones;
  }

(* Registry export plus the per-stage convergence trajectory. Stage
   counts and the final estimate are deterministic functions of the
   seed, so nothing here is volatile. The trajectory replays the run:
   point [k] is the estimate the first [k] stages support, with the
   delta-method half-width at that prefix — a zero-hit stage can only
   be the last one, so every proper prefix is a valid stage array. *)
let export ?convergence ?(confidence = 0.95) r ~into =
  let module R = Obs.Registry in
  let stages = r.estimate.Stats.Splitting.stages in
  let s = R.scope into "splitting" in
  R.add (R.counter s "stages") (Array.length stages);
  R.add (R.counter s "trials") r.total_trials;
  R.add (R.counter s "events") r.total_events;
  R.set (R.gauge s "levels") (float_of_int r.levels);
  R.set (R.gauge s "clones") (float_of_int r.clones);
  R.set (R.gauge s "probability") r.estimate.Stats.Splitting.probability;
  R.set (R.gauge s "rel_variance") r.estimate.Stats.Splitting.rel_variance;
  Array.iteri
    (fun k (st : Stats.Splitting.stage) ->
      let name = Printf.sprintf "stage%03d" (k + 1) in
      R.add (R.counter s (name ^ ".trials")) st.Stats.Splitting.trials;
      R.add (R.counter s (name ^ ".hits")) st.Stats.Splitting.hits)
    stages;
  match convergence with
  | None -> ()
  | Some conv ->
      let cumulative = ref 0 in
      Array.iteri
        (fun k (st : Stats.Splitting.stage) ->
          cumulative := !cumulative + st.Stats.Splitting.trials;
          let prefix =
            Stats.Splitting.estimate ~confidence (Array.sub stages 0 (k + 1))
          in
          Obs.Convergence.record conv ~measure:"splitting" ~n:!cumulative
            ~value:prefix.Stats.Splitting.probability
            ~half_width:prefix.Stats.Splitting.ci.Stats.Ci.half_width
            ~confidence)
        stages
