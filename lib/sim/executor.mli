(** The discrete-event executor for SAN models.

    Implements the activity semantics documented in {!San.Activity}:
    instantaneous activities complete before any time passes (one chosen
    uniformly at random when several are enabled), timed activities hold or
    resample their sampled completion times according to their reactivation
    policy, and activities disabled by a marking change are aborted.

    One call to {!run} is one replication: it allocates a fresh marking,
    so a model can be executed repeatedly (and concurrently from multiple
    domains). *)

exception Stabilization_diverged of string
(** Raised when a chain of instantaneous firings exceeds the configured
    bound — almost always a modeling error (an instantaneous activity that
    stays enabled after firing). *)

type config = {
  horizon : float;  (** end of observed time; must be > 0 *)
  max_events : int;  (** guard on total firings; default 10^9 *)
  max_inst_chain : int;
      (** guard on consecutive instantaneous firings; default 10^6 *)
  stop : (San.Marking.t -> bool) option;
      (** optional early-stop predicate, checked after every firing; the
          final marking is still reported as persisting to the horizon *)
}

val config : ?max_events:int -> ?max_inst_chain:int ->
  ?stop:(San.Marking.t -> bool) -> horizon:float -> unit -> config

type outcome = {
  end_time : float;  (** time of the last firing (or 0 if none) *)
  events : int;  (** number of firings, excluding t = 0 setup *)
  stopped_early : bool;  (** the stop predicate halted the run *)
  final : San.Marking.t;  (** marking at the horizon *)
}

val run :
  ?metrics:Metrics.t ->
  model:San.Model.t ->
  config:config ->
  stream:Prng.Stream.t ->
  observer:Observer.t ->
  unit ->
  outcome
(** Executes one replication. [metrics], when given, accumulates the
    run's telemetry (per-activity firing/cancellation/resample counters,
    stabilization-chain and event-heap statistics — see {!Metrics});
    without it the run pays no instrumentation cost beyond a handful of
    run-local integer bumps. *)
