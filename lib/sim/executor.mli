(** The discrete-event executor for SAN models.

    Implements the activity semantics documented in {!San.Activity}:
    instantaneous activities complete before any time passes (one chosen
    uniformly at random when several are enabled), timed activities hold or
    resample their sampled completion times according to their reactivation
    policy, and activities disabled by a marking change are aborted.

    One call to {!run} is one replication: it allocates a fresh marking,
    so a model can be executed repeatedly (and concurrently from multiple
    domains). *)

exception Stabilization_diverged of string
(** Raised when a chain of instantaneous firings exceeds the configured
    bound — almost always a modeling error (an instantaneous activity that
    stays enabled after firing). *)

type config = {
  horizon : float;  (** end of observed time; must be > 0 *)
  max_events : int;  (** guard on total firings; default 10^9 *)
  max_inst_chain : int;
      (** guard on consecutive instantaneous firings; default 10^6 *)
  stop : (San.Marking.t -> bool) option;
      (** optional early-stop predicate, checked after every firing; the
          final marking is still reported as persisting to the horizon *)
  compile_effects : bool;
      (** run compiled effect programs ({!San.Effect.run_prog}, flat
          arc/delta arrays — default) instead of interpreting the effect
          IR; both paths are bit-identical, the flag exists for the
          pinned equivalence test and benchmark *)
}

val config : ?max_events:int -> ?max_inst_chain:int ->
  ?stop:(San.Marking.t -> bool) -> ?compile_effects:bool ->
  horizon:float -> unit -> config

type outcome = {
  end_time : float;  (** time of the last firing (or 0 if none) *)
  events : int;  (** number of firings, excluding t = 0 setup *)
  stopped_early : bool;  (** the stop predicate halted the run *)
  final : San.Marking.t;  (** marking at the horizon *)
}

val run :
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?check_invariants:(San.Marking.t -> unit) ->
  model:San.Model.t ->
  config:config ->
  stream:Prng.Stream.t ->
  observer:Observer.t ->
  unit ->
  outcome
(** Executes one replication. [metrics], when given, accumulates the
    run's telemetry (per-activity firing/cancellation/resample counters,
    stabilization-chain and event-heap statistics — see {!Metrics});
    without it the run pays no instrumentation cost beyond a handful of
    run-local integer bumps.

    [profile], when given, attributes monotonic wall-clock self-time to
    the engine phases of {!Obs.Profile.phase} (delay sampling, heap push
    and pop, propagation, stabilization, checkpoint cloning). Without it
    each instrumented site costs a single option match. The profiler is
    not domain-safe: give each domain its own ({!Obs.Profile.fork}) and
    merge afterwards, as {!Runner} does.

    [check_invariants], when given, is the opt-in invariant-guard mode:
    it is called on every {e stable} marking — once after t = 0 setup
    and again after each timed firing's instantaneous chain settles —
    and is expected to raise (e.g.
    [Analysis.Structure.Invariant_violation]) when a marking breaks an
    invariant the structural analysis proved. Vanishing markings passed
    through during stabilization are never checked, matching the
    convention of reward variables. The guard adds one closure call per
    event; leave it off for production runs. *)

(** {1 Checkpointing}

    Support for the splitting engine ({!Splitting}): a run can be halted
    the moment its marking up-crosses an importance level, its state
    captured, and any number of independent clones resumed from the
    capture — each with its own PRNG stream, so the clones explore
    different continuations of the same prefix.

    A checkpoint snapshots everything that determines the future of a
    replication {e except} randomness: the marking, the pending-event
    heap (sampled completion times are part of the state), the
    lazy-cancellation bookkeeping, and the clock. It is immutable and
    safe to resume from concurrently — every resume works on private
    copies. *)

type checkpoint

val checkpoint_time : checkpoint -> float
(** Simulation clock at the moment of capture. *)

val checkpoint_marking : checkpoint -> San.Marking.t
(** The captured marking. The returned value is the checkpoint's own
    snapshot: treat it as read-only. *)

type split_outcome =
  | Finished of outcome  (** ran to horizon / stop without crossing *)
  | Crossed of { checkpoint : checkpoint; events : int }
      (** the importance threshold was reached at a stable marking;
          [events] counts firings executed by this (partial) run *)

val run_to_level :
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?from_:checkpoint ->
  ?check_invariants:(San.Marking.t -> unit) ->
  model:San.Model.t ->
  config:config ->
  stream:Prng.Stream.t ->
  observer:Observer.t ->
  importance:(San.Marking.t -> int) ->
  threshold:int ->
  unit ->
  split_outcome
(** Runs until [importance marking >= threshold], the horizon, the stop
    predicate, or event exhaustion — whichever comes first. Starts from
    the model's initial marking, or from [from_] when resuming a clone.

    [importance] is evaluated on {e stable} markings only: once at the
    start (so a checkpoint already at or above [threshold] crosses
    immediately, which is how multi-level jumps are handled), and after
    each timed firing once its instantaneous chain has stabilized.
    Markings that are merely passed through during stabilization are
    never measured — matching the convention of reward variables and
    {!Ctmc.Measure}.

    On [Crossed], the observer does {e not} receive the final horizon
    advance or [on_finish]: the trajectory is unfinished by design. *)

val resume :
  ?metrics:Metrics.t ->
  ?profile:Obs.Profile.t ->
  ?check_invariants:(San.Marking.t -> unit) ->
  model:San.Model.t ->
  config:config ->
  stream:Prng.Stream.t ->
  observer:Observer.t ->
  checkpoint ->
  outcome
(** Continues a checkpointed replication to the horizon with no further
    level checks. [outcome.events] counts only the resumed segment's
    firings; [end_time] is the last firing time (or the checkpoint time
    if nothing fires). Resuming the same checkpoint with the same stream
    is bit-reproducible, and a [run] is bit-identical to a
    [run_to_level] plus a [resume] driven by the same stream object. *)
